lib/runtime/engine.mli: Event Outcome Rf_events Rf_util Site Strategy
