(* Tests for vector clocks: lattice laws, ordering, concurrency. *)

open Rf_vclock

let vc = Alcotest.testable Vclock.pp Vclock.equal

let test_bottom () =
  Alcotest.(check bool) "bottom is bottom" true (Vclock.is_bottom Vclock.bottom);
  Alcotest.(check int) "get on bottom" 0 (Vclock.get Vclock.bottom 5)

let test_tick () =
  let c = Vclock.tick Vclock.bottom 3 in
  Alcotest.(check int) "ticked" 1 (Vclock.get c 3);
  Alcotest.(check int) "others zero" 0 (Vclock.get c 4);
  let c2 = Vclock.tick c 3 in
  Alcotest.(check int) "ticked twice" 2 (Vclock.get c2 3)

let test_join () =
  let a = Vclock.of_list [ (0, 3); (1, 1) ] in
  let b = Vclock.of_list [ (1, 4); (2, 2) ] in
  let j = Vclock.join a b in
  Alcotest.check vc "join componentwise max"
    (Vclock.of_list [ (0, 3); (1, 4); (2, 2) ])
    j

let test_leq () =
  let a = Vclock.of_list [ (0, 1); (1, 2) ] in
  let b = Vclock.of_list [ (0, 2); (1, 2) ] in
  Alcotest.(check bool) "a <= b" true (Vclock.leq a b);
  Alcotest.(check bool) "not b <= a" false (Vclock.leq b a);
  Alcotest.(check bool) "a < b" true (Vclock.lt a b);
  Alcotest.(check bool) "not a < a" false (Vclock.lt a a);
  Alcotest.(check bool) "a <= a" true (Vclock.leq a a)

let test_concurrent () =
  let a = Vclock.of_list [ (0, 2); (1, 0) ] in
  let b = Vclock.of_list [ (0, 0); (1, 2) ] in
  Alcotest.(check bool) "concurrent" true (Vclock.concurrent a b);
  Alcotest.(check bool) "not concurrent with self" false (Vclock.concurrent a a);
  Alcotest.(check bool) "ordered not concurrent" false
    (Vclock.concurrent a (Vclock.join a b))

let test_set_zero_removes () =
  let a = Vclock.set (Vclock.of_list [ (0, 1) ]) 0 0 in
  Alcotest.(check bool) "setting 0 yields bottom" true (Vclock.is_bottom a)

(* ------------------------------------------------------------------ *)
(* QCheck: lattice laws over random clocks                             *)

let gen_clock =
  QCheck.Gen.(
    map
      (fun l -> Vclock.of_list (List.map (fun (t, n) -> (t mod 6, (n mod 8) + 1)) l))
      (small_list (pair small_nat small_nat)))

let arb_clock = QCheck.make ~print:Vclock.to_string gen_clock

let prop_join_commutative =
  QCheck.Test.make ~name:"join commutative" ~count:300 (QCheck.pair arb_clock arb_clock)
    (fun (a, b) -> Vclock.equal (Vclock.join a b) (Vclock.join b a))

let prop_join_associative =
  QCheck.Test.make ~name:"join associative" ~count:300
    (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
      Vclock.equal
        (Vclock.join a (Vclock.join b c))
        (Vclock.join (Vclock.join a b) c))

let prop_join_idempotent =
  QCheck.Test.make ~name:"join idempotent" ~count:300 arb_clock (fun a ->
      Vclock.equal (Vclock.join a a) a)

let prop_join_unit =
  QCheck.Test.make ~name:"bottom is unit" ~count:300 arb_clock (fun a ->
      Vclock.equal (Vclock.join a Vclock.bottom) a)

let prop_join_is_lub =
  QCheck.Test.make ~name:"join is an upper bound" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      let j = Vclock.join a b in
      Vclock.leq a j && Vclock.leq b j)

let prop_leq_partial_order =
  QCheck.Test.make ~name:"leq antisymmetric + transitive-ish" ~count:300
    (QCheck.triple arb_clock arb_clock arb_clock) (fun (a, b, c) ->
      (* antisymmetry *)
      ((not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)
      (* transitivity *)
      && ((not (Vclock.leq a b && Vclock.leq b c)) || Vclock.leq a c))

let prop_concurrent_symmetric =
  QCheck.Test.make ~name:"concurrency symmetric and irreflexive" ~count:300
    (QCheck.pair arb_clock arb_clock) (fun (a, b) ->
      Vclock.concurrent a b = Vclock.concurrent b a && not (Vclock.concurrent a a))

let prop_tick_strictly_increases =
  QCheck.Test.make ~name:"tick strictly increases" ~count:300
    (QCheck.pair arb_clock QCheck.small_nat) (fun (a, t) ->
      Vclock.lt a (Vclock.tick a (t mod 6)))

let () =
  Alcotest.run "rf_vclock"
    [
      ( "unit",
        [
          Alcotest.test_case "bottom" `Quick test_bottom;
          Alcotest.test_case "tick" `Quick test_tick;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "leq/lt" `Quick test_leq;
          Alcotest.test_case "concurrent" `Quick test_concurrent;
          Alcotest.test_case "set zero removes" `Quick test_set_zero_removes;
        ] );
      ( "laws",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_join_commutative;
            prop_join_associative;
            prop_join_idempotent;
            prop_join_unit;
            prop_join_is_lub;
            prop_leq_partial_order;
            prop_concurrent_symmetric;
            prop_tick_strictly_increases;
          ] );
    ]
