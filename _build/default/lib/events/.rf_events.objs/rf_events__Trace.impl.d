lib/events/trace.ml: Array Event Fmt Hashtbl List
