(** O(1)-sample hybrid race detection with a computable miss bound.

    Full hybrid detection keeps up to [cap] access summaries per dynamic
    location; on hot locations (server caches, session tables) each
    summary pins a wide persistent vector clock and the detector's state
    dwarfs the program's.  This detector keeps a {e constant} [k] samples
    per location instead, chosen by deterministic reservoir sampling
    (algorithm R): the [m]-th access to a location replaces a uniformly
    chosen retained sample with probability [k/m], so after [n] accesses
    every past access is still retained with probability [k/n] — and the
    probability that a given racing pair went unobserved is at most
    [1 - k/n].  That per-location quantity, maximized over locations, is
    the run's {e miss bound}, reported alongside the pairs (see
    "Dynamic Race Detection with O(1) Samples", PAPERS.md).

    {2 Determinism across shards, domains and modes}

    Each reservoir decision is a pure function of
    [(sample seed, location hash, per-location access index)] — an
    FNV-1a fold of the three seeds one SplitMix64 draw.  No shared
    stream: in the sharded {!Offline} pipeline every location's memory
    events land wholly in one shard and its access indices are the same
    as inline, so sample sets, reported pairs and miss bounds are
    byte-identical across inline/offline modes, shard counts and domain
    counts.

    {2 Soundness}

    A reported pair is always a pair the full hybrid detector (ample
    cap) would report: the conflict predicate is the hybrid one, and if
    a retained sample conflicts with a fresh access then the hybrid
    bucket's corresponding summary (the latest same-thread/site/lockset
    access, which supersedes the sampled one) conflicts too.  Sampling
    only {e misses} pairs, and the miss bound quantifies exactly that.

    {2 Resource governance}

    One logical entry is charged per retained sample — worst case
    [k * locations], typically orders of magnitude below full tracking.
    Under a {!Rf_resource.Governor} the detector joins the ladder as the
    rung above Lockset-only: at {b Sampled} the reservoir shrinks
    ([k/2], min 1); at {b Lockset-only} clocks freeze and the predicate
    falls back to lockset disjointness.  Budget trips compact by
    evicting whole buckets (counters included), oldest last-touch epoch
    first; an evicted bucket's misses can no longer be bounded, so the
    run's miss bound saturates to [1.0]. *)

open Rf_util
open Rf_events
open Rf_vclock
open Rf_resource

type sample = {
  s_tid : int;
  s_site : Site.t;
  s_access : Event.access;
  s_lockset : Lockset.t;
  s_vc : Vclock.t;
}

type bucket = {
  mutable n_seen : int;  (* accesses to this location, ever *)
  mutable slots : sample list;  (* index = reservoir slot, |slots| <= k *)
  mutable b_epoch : int;  (* last-touch: value of [mem_events] *)
  b_id : int;  (* creation index; compaction tie-break *)
}

type t = {
  k : int;
  seed : int;
  clocks : Hbclock.t;
  governor : Governor.t option;
  buckets : bucket Loc.Tbl.t;
  mutable races : Race.t list;  (* newest first *)
  mutable reported : Site.Pair.Set.t;
  mutable mem_events : int;
  mutable truncations : int;  (* samples not retained / displaced *)
  mutable evicted_buckets : int;  (* whole buckets shed by compaction *)
  mutable next_bucket_id : int;
  mutable entries_charged : int;
}

let charge t n =
  t.entries_charged <- t.entries_charged + n;
  match t.governor with Some g -> Governor.charge g n | None -> ()

let evict t n =
  t.entries_charged <- max 0 (t.entries_charged - n);
  match t.governor with Some g -> Governor.evict g n | None -> ()

let level t =
  match t.governor with Some g -> Governor.level g | None -> Governor.Full

(* Effective reservoir size at each rung. *)
let k_at t = function
  | Governor.Full -> t.k
  | Governor.Sampled -> max 1 (t.k / 2)
  | Governor.Lockset_only -> 1

(* Evict whole buckets — samples and [n_seen] counter alike — oldest
   last-touch first, until the charged entries fit in half the budget.
   Collect-and-sort, never raw hashtable order (see Access_detector). *)
let compact t =
  match t.governor with
  | None -> ()
  | Some g ->
      let target =
        match Governor.budget g with
        | Some budget -> max 1 (budget / 2)
        | None -> max 1 (t.entries_charged / 2)
      in
      if t.entries_charged > target then begin
        let buckets =
          Loc.Tbl.fold (fun loc b acc -> (loc, b) :: acc) t.buckets []
        in
        let buckets =
          List.sort
            (fun (_, a) (_, b) ->
              match compare a.b_epoch b.b_epoch with
              | 0 -> compare a.b_id b.b_id
              | c -> c)
            buckets
        in
        List.iter
          (fun (loc, b) ->
            if t.entries_charged > target then begin
              let n = List.length b.slots in
              Loc.Tbl.remove t.buckets loc;
              evict t n;
              t.truncations <- t.truncations + n;
              t.evicted_buckets <- t.evicted_buckets + 1
            end)
          buckets
      end

let create ?(k = 4) ?(seed = 0) ?governor () =
  let t =
    {
      k = max 1 k;
      seed;
      clocks = Hbclock.create ?governor ~lock_edges:false ();
      governor;
      buckets = Loc.Tbl.create 256;
      races = [];
      reported = Site.Pair.Set.empty;
      mem_events = 0;
      truncations = 0;
      evicted_buckets = 0;
      next_bucket_id = 0;
      entries_charged = 0;
    }
  in
  (match governor with
  | Some g -> Governor.subscribe g (fun _level -> compact t)
  | None -> ());
  t

(* Hybrid predicate (O'Callahan–Choi): different threads, a write,
   disjoint locksets, concurrent under weak happens-before.  At the
   bottom rung clocks are frozen and only lock discipline remains. *)
let conflicting lv (old : sample) (fresh : sample) =
  old.s_tid <> fresh.s_tid
  && (Event.access_equal old.s_access Event.Write
     || Event.access_equal fresh.s_access Event.Write)
  && Lockset.disjoint old.s_lockset fresh.s_lockset
  &&
  match lv with
  | Governor.Lockset_only -> true
  | Governor.Full | Governor.Sampled ->
      Vclock.concurrent old.s_vc fresh.s_vc

(* The reservoir draw for the [m]-th access to [loc]: a pure function of
   (sample seed, location hash, m), so the decision is identical no
   matter which shard, domain or mode replays the access. *)
let slot_draw t ~loc ~m =
  let key =
    Fnv.(
      mask63
        (fold_int63 (fold_int63 (fold_int63 basis63 t.seed) (Loc.hash loc)) m))
  in
  Prng.int (Prng.create key) m

let feed t ev =
  let lv = level t in
  let vc =
    match lv with
    | Governor.Lockset_only -> Vclock.bottom
    | Governor.Full | Governor.Sampled -> Hbclock.feed t.clocks ev
  in
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } ->
      t.mem_events <- t.mem_events + 1;
      let fresh =
        { s_tid = tid; s_site = site; s_access = access; s_lockset = lockset; s_vc = vc }
      in
      let bucket =
        match Loc.Tbl.find_opt t.buckets loc with
        | Some b -> b
        | None ->
            let b =
              { n_seen = 0; slots = []; b_epoch = t.mem_events; b_id = t.next_bucket_id }
            in
            t.next_bucket_id <- t.next_bucket_id + 1;
            Loc.Tbl.add t.buckets loc b;
            b
      in
      bucket.b_epoch <- t.mem_events;
      bucket.n_seen <- bucket.n_seen + 1;
      List.iter
        (fun old ->
          if conflicting lv old fresh then begin
            let pair = Site.Pair.make old.s_site fresh.s_site in
            if not (Site.Pair.Set.mem pair t.reported) then begin
              t.reported <- Site.Pair.Set.add pair t.reported;
              t.races <-
                Race.make ~pair ~loc
                  ~tids:(old.s_tid, fresh.s_tid)
                  ~accesses:(old.s_access, fresh.s_access)
                :: t.races
            end
          end)
        bucket.slots;
      let k = k_at t lv in
      (* A degradation step can shrink [k] under a fuller reservoir;
         keeping a fixed prefix of the slots preserves uniformity (any
         fixed subset of reservoir positions is itself a uniform
         subsample), so the miss bound below stays valid. *)
      let slots = bucket.slots in
      let live = List.length slots in
      let slots =
        if live > k then begin
          t.truncations <- t.truncations + (live - k);
          evict t (live - k);
          List.filteri (fun i _ -> i < k) slots
        end
        else slots
      in
      if List.length slots < k then begin
        charge t 1;
        bucket.slots <- slots @ [ fresh ]
      end
      else begin
        t.truncations <- t.truncations + 1;
        let r = slot_draw t ~loc ~m:bucket.n_seen in
        bucket.slots <-
          (if r < k then List.mapi (fun i old -> if i = r then fresh else old) slots
           else slots)
      end
  | _ -> ()

let races t = List.rev t.races
let pairs t = t.reported
let race_count t = Site.Pair.Set.cardinal t.reported
let mem_events t = t.mem_events
let truncations t = t.truncations
let locations t = Loc.Tbl.length t.buckets
let state_entries t = t.entries_charged

(* Max over live buckets of 1 - retained/seen; saturated to 1 when a
   compaction shed a bucket wholesale (its misses are unbounded).  Max
   is order-independent, so the raw hashtable fold is safe here. *)
let miss_bound t =
  if t.evicted_buckets > 0 then 1.0
  else
    Loc.Tbl.fold
      (fun _ b acc ->
        let live = List.length b.slots in
        if b.n_seen <= live then acc
        else max acc (1.0 -. (float_of_int live /. float_of_int b.n_seen)))
      t.buckets 0.0
