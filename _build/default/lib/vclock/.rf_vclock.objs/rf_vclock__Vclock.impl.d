lib/vclock/vclock.ml: Fmt Int List Map
