lib/runtime/op.ml: Effect Event Fmt Handle Loc Lock Rf_events Rf_util Site
