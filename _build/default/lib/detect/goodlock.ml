(** Lock-order-cycle detection (Goodlock-style), the deadlock analogue of
    phase 1.

    The paper notes (§1) that the RaceFuzzer scheduler can be biased by
    any analysis that yields "a set of statements whose simultaneous
    execution could lead to a concurrency problem", explicitly including
    potential deadlocks.  This detector supplies those statements: it
    builds the runtime lock-order graph — an edge [l1 → l2] labelled with
    the acquiring statement whenever a thread acquires [l2] while holding
    [l1] — and reports every two-lock cycle acquired by distinct threads,
    as a pair of *inner* acquire statements for {!Racefuzzer.Deadlock_fuzzer}
    to target. *)

open Rf_util
open Rf_events

type edge = {
  outer : int;  (** lock already held *)
  inner : int;  (** lock being acquired *)
  inner_site : Site.t;  (** statement of the inner acquire *)
  e_tid : int;
}

type candidate = {
  locks : int list;  (** the cycle's locks, in order *)
  sites : Site.t list;  (** the inner-acquire statements to target *)
  tids : int list;  (** one thread per edge *)
}

(** The first two sites as a pair, for two-lock cycles and display. *)
let site_pair c =
  match c.sites with
  | a :: b :: _ -> Site.Pair.make a b
  | [ a ] -> Site.Pair.make a a
  | [] -> invalid_arg "Goodlock.site_pair: empty candidate"

type t = {
  (* per-thread stack of currently held locks *)
  held : (int, int list ref) Hashtbl.t;
  mutable edges : edge list;
  mutable seen_edges : (int * int * int * int) list;  (* dedup key *)
}

let create () = { held = Hashtbl.create 16; edges = []; seen_edges = [] }

let held_of t tid =
  match Hashtbl.find_opt t.held tid with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.add t.held tid l;
      l

let feed t ev =
  match ev with
  | Event.Acquire { tid; lock; site } ->
      let held = held_of t tid in
      List.iter
        (fun outer ->
          let key = (outer, lock, Site.id site, tid) in
          if not (List.mem key t.seen_edges) then begin
            t.seen_edges <- key :: t.seen_edges;
            t.edges <- { outer; inner = lock; inner_site = site; e_tid = tid } :: t.edges
          end)
        !held;
      held := lock :: !held
  | Event.Release { tid; lock; _ } ->
      let held = held_of t tid in
      held := List.filter (fun l -> l <> lock) !held
  | _ -> ()

(** Simple cycles in the lock-order graph, up to [max_len] locks, where
    every edge comes from a different thread (a thread cannot deadlock
    with itself).  Classic Goodlock; over-approximate as usual — gate-lock
    protected cycles are still reported, phase 2 rejects them. *)
let candidates ?(max_len = 4) t : candidate list =
  let cands = ref [] in
  let add (path : edge list) =
    (* path e1..en with e1.outer = en.inner: a cycle *)
    let locks = List.map (fun e -> e.outer) path in
    let sites = List.map (fun e -> e.inner_site) path in
    let tids = List.map (fun e -> e.e_tid) path in
    (* canonical form: rotate so the smallest lock id is first *)
    let rotate_to_min l s td =
      let n = List.length l in
      let min_idx =
        let rec go i best besti = function
          | [] -> besti
          | x :: rest -> if x < best then go (i + 1) x i rest else go (i + 1) best besti rest
        in
        match l with [] -> 0 | x :: rest -> go 1 x 0 rest
      in
      let rot lst = List.init n (fun i -> List.nth lst ((i + min_idx) mod n)) in
      (rot l, rot s, rot td)
    in
    let locks, sites, tids = rotate_to_min locks sites tids in
    let key = (locks, List.map Site.id sites) in
    if
      not
        (List.exists
           (fun c' -> (c'.locks, List.map Site.id c'.sites) = key)
           !cands)
    then cands := { locks; sites; tids } :: !cands
  in
  let rec extend (path : edge list) =
    let last = List.hd path in
    let first = List.nth path (List.length path - 1) in
    if last.inner = first.outer && List.length path >= 2 then add (List.rev path)
    else if List.length path < max_len then
      List.iter
        (fun e ->
          if
            e.outer = last.inner
            && (not (List.exists (fun p -> p.e_tid = e.e_tid) path))
            && not
                 (List.exists
                    (fun p -> p.outer = e.inner && e.inner <> first.outer)
                    path)
          then extend (e :: path))
        t.edges
  in
  List.iter (fun e -> extend [ e ]) t.edges;
  List.rev !cands

let pp_candidate ppf c =
  Fmt.pf ppf "potential deadlock: locks (%a) via %a (threads %a)"
    (Fmt.list ~sep:Fmt.comma (fun ppf l -> Fmt.pf ppf "L%d" l))
    c.locks
    (Fmt.list ~sep:Fmt.comma Site.pp)
    c.sites
    (Fmt.list ~sep:Fmt.comma (fun ppf t -> Fmt.pf ppf "t%d" t))
    c.tids
