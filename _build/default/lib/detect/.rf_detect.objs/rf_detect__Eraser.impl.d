lib/detect/eraser.ml: Event List Loc Lockset Race Rf_events Rf_util Site
