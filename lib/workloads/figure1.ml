(** The paper's Figure 1: "A program with a real race".

    {v
      Initially: x = y = z = 0
      thread1 {                thread2 {
        1: x = 1;                7:  z = 1;
        2: lock(L);              8:  lock(L);
        3: y = 1;                9:  if (y == 1) {
        4: unlock(L);            10:   if (x != 1) {
        5: if (z == 1)           11:     ERROR2;
        6:   ERROR1;             12:   }
      }                          13: }
                                 14: unlock(L);
                               }
    v}

    Ground truth (paper §3.1):
    - the accesses to [z] at statements 5 and 7 are a *real* race, and
      resolving it write-first reaches ERROR1;
    - the accesses to [x] at statements 1 and 10 look racy to hybrid
      detection (inconsistent locking) but are implicitly synchronized via
      [y]: statement 10 executes only after statement 3, which follows
      statement 1 in program order — a *false alarm* RaceFuzzer must reject;
    - [y] is consistently protected by [L]: never reported at all;
    - ERROR2 is unreachable in any schedule. *)

open Rf_util
open Rf_runtime

let file = "figure1"

let s n label = Site.make ~file ~line:n label

(* The racing statement sites, exported so tests and examples can build
   RaceSets without re-running phase 1. *)
let s1_write_x = s 1 "x=1"
let s3_write_y = s 3 "y=1"
let s5_read_z = s 5 "if(z==1)"
let s7_write_z = s 7 "z=1"
let s9_read_y = s 9 "if(y==1)"
let s10_read_x = s 10 "if(x!=1)"

let real_pair = Site.Pair.make s5_read_z s7_write_z
let false_pair = Site.Pair.make s1_write_x s10_read_x

let program () =
  let x = Api.Cell.global "x" 0 in
  let y = Api.Cell.global "y" 0 in
  let z = Api.Cell.global "z" 0 in
  let l = Lock.create ~name:"L" () in
  let thread1 () =
    Api.Cell.write ~site:s1_write_x x 1;
    Api.sync ~site:(s 2 "lock(L)") l (fun () -> Api.Cell.write ~site:s3_write_y y 1);
    if Api.Cell.read ~site:s5_read_z z = 1 then Api.error "ERROR1"
  in
  let thread2 () =
    Api.Cell.write ~site:s7_write_z z 1;
    Api.sync ~site:(s 8 "lock(L)") l (fun () ->
        if Api.Cell.read ~site:s9_read_y y = 1 then
          if Api.Cell.read ~site:s10_read_x x <> 1 then Api.error "ERROR2")
  in
  let h1 = Api.fork ~name:"thread1" thread1 in
  let h2 = Api.fork ~name:"thread2" thread2 in
  Api.join h1;
  Api.join h2

(* Ground-truth static model.  The soundness directions matter: [y] is
   consistently protected by [L] (both accesses carry the must-lock), so
   its pair is provably race-free; the [x] pair survives as Likely — the
   read side holds [L] but the write side does not, and implicit
   synchronization through [y] is exactly what a lockset analysis cannot
   see.  Phase 2, not the filter, refutes it. *)
let static_model =
  let open Rf_static.Static in
  let b = Model.create () in
  Model.access b ~site:s1_write_x ~var:"x" ~write:true ~thread:"thread1" ~locks:[];
  Model.access b ~site:s3_write_y ~var:"y" ~write:true ~thread:"thread1"
    ~locks:[ "L" ];
  Model.access b ~site:s5_read_z ~var:"z" ~write:false ~thread:"thread1" ~locks:[];
  Model.access b ~site:s7_write_z ~var:"z" ~write:true ~thread:"thread2" ~locks:[];
  Model.access b ~site:s9_read_y ~var:"y" ~write:false ~thread:"thread2"
    ~locks:[ "L" ];
  Model.access b ~site:s10_read_x ~var:"x" ~write:false ~thread:"thread2"
    ~locks:[ "L" ];
  Model.build b

let workload =
  Workload.make ~name:"figure1" ~descr:"paper Figure 1: one real race on z, one false alarm on x"
    ~sloc:14 ~expected_real:(Some 1) ~static:(Some static_model) program
