(** Shared concurrency utilities for the workload analogues: a cyclic
    barrier and a bounded blocking queue, both built on the runtime's
    monitors, plus the lock-guarded flag handshake that generates hybrid
    false positives.

    The handshake deserves explanation, since most workloads use it to
    plant *apparent* races.  Pattern (paper Figure 1, variable [x]):

    {v
      publisher:  data = v;              consumer:  sync(L) { f = flag; }
                  sync(L) { flag = 1; }             if (f == 1) read data;
    v}

    The data accesses carry disjoint locksets and no SND/RCV edge connects
    the threads, so hybrid detection reports (write data, read data) as a
    potential race — yet no schedule can make them adjacent: the consumer
    only touches [data] after observing [flag = 1], which the publisher set
    *after* writing [data].  RaceFuzzer must classify all of these as false
    alarms. *)

open Rf_util
open Rf_runtime

let file = "wl_common"
let s line label = Site.make ~file ~line label

(* ------------------------------------------------------------------ *)
(* Cyclic barrier                                                      *)

module Barrier = struct
  type t = {
    monitor : Lock.t;
    parties : int;
    count : int Api.Cell.t;
    generation : int Api.Cell.t;
  }

  let site_count_r = s 1 "barrier.count(read)"
  let site_count_w = s 2 "barrier.count(write)"
  let site_gen_r = s 3 "barrier.generation(read)"
  let site_gen_w = s 4 "barrier.generation(write)"
  let site_sync = s 5 "barrier.sync"
  let site_wait = s 6 "barrier.wait"
  let site_notify = s 7 "barrier.notifyAll"

  let create parties =
    {
      monitor = Lock.create ~name:"barrier" ();
      parties;
      count = Api.Cell.make ~name:"barrier.count" 0;
      generation = Api.Cell.make ~name:"barrier.generation" 0;
    }

  let await t =
    Api.sync ~site:site_sync t.monitor (fun () ->
        let gen = Api.Cell.read ~site:site_gen_r t.generation in
        let arrived = Api.Cell.read ~site:site_count_r t.count + 1 in
        Api.Cell.write ~site:site_count_w t.count arrived;
        if arrived = t.parties then begin
          Api.Cell.write ~site:site_count_w t.count 0;
          Api.Cell.write ~site:site_gen_w t.generation (gen + 1);
          Api.notify_all ~site:site_notify t.monitor
        end
        else
          while Api.Cell.read ~site:site_gen_r t.generation = gen do
            Api.wait ~site:site_wait t.monitor
          done)
end

(* ------------------------------------------------------------------ *)
(* Bounded blocking queue                                              *)

module Queue_ = struct
  type t = {
    monitor : Lock.t;
    items : int list Api.Cell.t;  (* FIFO: append at tail *)
    capacity : int;
  }

  let site_sync = s 10 "queue.sync"
  let site_items_r = s 11 "queue.items(read)"
  let site_items_w = s 12 "queue.items(write)"
  let site_wait = s 13 "queue.wait"
  let site_notify = s 14 "queue.notifyAll"

  let create ?(capacity = max_int) () =
    {
      monitor = Lock.create ~name:"queue" ();
      items = Api.Cell.make ~name:"queue.items" [];
      capacity;
    }

  let put t v =
    Api.sync ~site:site_sync t.monitor (fun () ->
        while List.length (Api.Cell.read ~site:site_items_r t.items) >= t.capacity do
          Api.wait ~site:site_wait t.monitor
        done;
        Api.Cell.write ~site:site_items_w t.items
          (Api.Cell.read ~site:site_items_r t.items @ [ v ]);
        Api.notify_all ~site:site_notify t.monitor)

  let take t =
    Api.sync ~site:site_sync t.monitor (fun () ->
        let rec loop () =
          match Api.Cell.read ~site:site_items_r t.items with
          | [] ->
              Api.wait ~site:site_wait t.monitor;
              loop ()
          | v :: rest ->
              Api.Cell.write ~site:site_items_w t.items rest;
              Api.notify_all ~site:site_notify t.monitor;
              v
        in
        loop ())

  (** Nonblocking poll: None when empty. *)
  let poll t =
    Api.sync ~site:site_sync t.monitor (fun () ->
        match Api.Cell.read ~site:site_items_r t.items with
        | [] -> None
        | v :: rest ->
            Api.Cell.write ~site:site_items_w t.items rest;
            Api.notify_all ~site:site_notify t.monitor;
            Some v)

  (** Unsynchronized size probe — a deliberate real race used by the
      weblech analogue's check-then-act bug. *)
  let size_unsync ~site t = List.length (Api.Cell.read ~site t.items)

  (** Unsynchronized pop — pairs with [size_unsync] for check-then-act. *)
  let pop_unsync ~rsite ~wsite t =
    match Api.Cell.read ~site:rsite t.items with
    | [] -> raise (Op.No_such_element "queue.pop on empty queue")
    | v :: rest ->
        Api.Cell.write ~site:wsite t.items rest;
        v
end

(* ------------------------------------------------------------------ *)
(* Lock-guarded flag handshake (hybrid false-positive generator)       *)

module Handshake = struct
  type t = {
    lock : Lock.t;
    flag : bool Api.Cell.t;
    data : int Api.Cell.t;
    write_site : Site.t;  (** the data write: one side of the false pair *)
    read_site : Site.t;  (** the data read: the other side *)
  }

  (** Each handshake needs its own sites so distinct instances contribute
      distinct potential pairs, like distinct statements in a big program. *)
  let create ~name ~write_site ~read_site () =
    {
      lock = Lock.create ~name:(name ^ ".lock") ();
      flag = Api.Cell.make ~name:(name ^ ".flag") false;
      data = Api.Cell.make ~name:(name ^ ".data") 0;
      write_site;
      read_site;
    }

  let publish t v =
    Api.Cell.write ~site:t.write_site t.data v;
    Api.sync t.lock (fun () -> Api.Cell.write ~site:(s 20 "hs.flag=1") t.flag true)

  (** Returns [Some data] if the flag was observed; the data read happens
      only under the observed flag, so it can never actually race with
      [publish]'s write. *)
  let consume t =
    let f = Api.sync t.lock (fun () -> Api.Cell.read ~site:(s 21 "hs.flag?") t.flag) in
    if f then Some (Api.Cell.read ~site:t.read_site t.data) else None

  let false_pair t = Site.Pair.make t.write_site t.read_site
end

(** A farm of [n] independent handshakes with distinct sites: contributes
    exactly [n] false-alarm pairs to a workload's potential-race count,
    standing in for the big programs' many implicitly-synchronized
    statement pairs. *)
module Farm = struct
  type t = Handshake.t list

  let create ~file ~base_line n : t =
    List.init n (fun i ->
        Handshake.create
          ~name:(Printf.sprintf "%s.hs%d" file i)
          ~write_site:
            (Site.make ~file ~line:(base_line + (2 * i)) (Printf.sprintf "hs%d.data(write)" i))
          ~read_site:
            (Site.make ~file
               ~line:(base_line + (2 * i) + 1)
               (Printf.sprintf "hs%d.data(read)" i))
          ())

  let publish (farm : t) base =
    List.iteri (fun i hs -> Handshake.publish hs (base + i)) farm

  (** Poll every handshake [rounds] times; consuming while producers are
      alive is what makes hybrid report the pairs. *)
  let consume_rounds (farm : t) rounds =
    let consumed = Array.make (List.length farm) false in
    for _ = 1 to rounds do
      List.iteri
        (fun i hs ->
          if not consumed.(i) then
            match Handshake.consume hs with
            | Some _ -> consumed.(i) <- true
            | None -> ())
        farm
    done

  let false_pairs (farm : t) = List.map Handshake.false_pair farm
end
