(** Analogue of [raytracer] (Java Grande, paper Table 1: 2 potential races,
    both real and previously known, no exceptions).

    The well-known raytracer race: worker threads render disjoint rows of
    the image but accumulate a validation [checksum] with an unsynchronized
    read-modify-write.  Both distinct statement pairs on the checksum —
    (read, write) and (write, write) — are real races; losing an update
    only perturbs the checksum, so they are benign (no exception). *)

open Rf_util
open Rf_runtime

let file = "raytracer"
let s line label = Site.make ~file ~line label

let site_scene_r = s 1 "scene[j](read)"
let site_row_w = s 2 "image[row](write)"
let site_checksum_r = s 3 "checksum(read)"
let site_checksum_w = s 4 "checksum+=(write)"

let real_pairs () =
  [
    Site.Pair.make site_checksum_r site_checksum_w;
    Site.Pair.make site_checksum_w site_checksum_w;
  ]

let program ?(nworkers = 3) ?(height = 9) ?(width = 8) () =
  (* the scene is built by main before forking: fork edges order it *)
  let scene = Api.Sarray.init 16 (fun i -> (i * i) + 3) in
  let image = Api.Sarray.make height 0 in
  let checksum = Api.Cell.make ~name:"checksum" 0 in
  let render_row row =
    let acc = ref 0 in
    for px = 0 to width - 1 do
      let sphere = Api.Sarray.get ~site:site_scene_r scene ((row + px) mod 16) in
      (* toy shading: deterministic integer ray math *)
      acc := !acc + ((sphere * (px + 1)) mod 255)
    done;
    Api.Sarray.set ~site:site_row_w image row !acc;
    (* the famous unsynchronized checksum accumulation *)
    Api.Cell.write ~site:site_checksum_w checksum
      (Api.Cell.read ~site:site_checksum_r checksum + !acc)
  in
  let worker w () =
    let row = ref w in
    while !row < height do
      render_row !row;
      row := !row + nworkers
    done
  in
  let hs =
    List.init nworkers (fun w -> Api.fork ~name:(Printf.sprintf "ray%d" w) (worker w))
  in
  List.iter Api.join hs

let workload =
  Workload.make ~name:"raytracer"
    ~descr:"Java Grande raytracer analogue: unsynchronized checksum accumulation"
    ~sloc:62 ~known_real_races:(Some 2) ~expected_real:(Some 2) (fun () -> program ())
