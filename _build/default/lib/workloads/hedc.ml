(** Analogue of [hedc] (ETH web-crawler application kernel, paper Table 1:
    9 potential races, 1 real and previously known, 1 exception pair).

    A coordinator feeds download tasks into a monitor-guarded queue
    consumed by worker threads.  The real race is in the shutdown path: the
    coordinator clears the shared connection handle *without
    synchronization* shortly after enqueueing the poison task, while a
    worker dereferences the handle when it processes that task.  Under
    normal schedules the worker wins comfortably (the coordinator has
    housekeeping to do first); RaceFuzzer postpones the worker's read until
    the coordinator's write arrives, and resolving the race write-first
    dereferences a cleared handle — the model's NullPointerException, an
    uncaught exception crashing the worker.

    A farm of lock-guarded handshakes (metadata published by the
    coordinator, polled by a monitor thread) supplies the 8 false-positive
    pairs. *)

open Rf_util
open Rf_runtime

let file = "hedc"
let s line label = Site.make ~file ~line label

let site_handle_w = s 1 "connection=null"
let site_handle_r = s 2 "connection.fetch()"
let site_hk_w = s 3 "stats[i]=..."

let real_pairs () = [ Site.Pair.make site_handle_w site_handle_r ]
let harmful_pair = Site.Pair.make site_handle_w site_handle_r

let program ?(nworkers = 2) ?(ntasks = 6) () =
  let farm = Common.Farm.create ~file ~base_line:60 8 in
  let queue = Common.Queue_.create () in
  let connection = Api.Cell.make ~name:"connection" (Some 0xC0) in
  let stats = Api.Sarray.make 8 0 in
  let results = Common.Queue_.create () in
  let worker w () =
    let stop = ref false in
    while not !stop do
      let task = Common.Queue_.take queue in
      if task < 0 then begin
        (* poison task: flush through the shared connection handle *)
        (match Api.Cell.read ~site:site_handle_r connection with
        | Some c -> Common.Queue_.put results (c + w)
        | None -> Api.error "NullPointerException: connection is null");
        stop := true
      end
      else
        (* ordinary fetch: hash the url id and record the result *)
        Common.Queue_.put results ((task * 31) mod 97)
    done
  in
  let mon =
    Api.fork ~name:"hedc-monitor" (fun () -> Common.Farm.consume_rounds farm 40)
  in
  let hs =
    List.init nworkers (fun w -> Api.fork ~name:(Printf.sprintf "hedc%d" w) (worker w))
  in
  Common.Farm.publish farm 42;
  for t = 1 to ntasks do
    Common.Queue_.put queue t
  done;
  (* shutdown: poison every worker, then tear the connection down after
     some housekeeping — the racy window *)
  for _ = 1 to nworkers do
    Common.Queue_.put queue (-1)
  done;
  for i = 0 to 7 do
    Api.Sarray.set ~site:site_hk_w stats i i
  done;
  Api.Cell.write ~site:site_handle_w connection None;
  List.iter Api.join hs;
  Api.join mon;
  (* drain results *)
  let rec drain () =
    match Common.Queue_.poll results with Some _ -> drain () | None -> ()
  in
  drain ()

let workload =
  Workload.make ~name:"hedc"
    ~descr:"ETH web-crawler kernel analogue: shutdown handle race crashes a worker"
    ~sloc:92 ~known_real_races:(Some 1) ~expected_real:(Some 1) (fun () -> program ())
