examples/quickstart.mli:
