(** Static checker for RFL: name resolution plus monomorphic type checking.
    Rejects unknown identifiers, shape errors (scalar vs array), arity and
    type mismatches, non-boolean conditions, [return] outside functions,
    non-constant [shared] initializers, duplicates, and thread-less
    programs. *)

exception Check_error of Token.pos * string

val check : Ast.program -> unit
(** Raises {!Check_error} on the first violation. *)
