(** Hand-written lexer for RFL (no ocamllex/menhir in this environment).
    Tracks line/column positions; supports [//] and [/* */] comments and
    escaped string literals. *)

exception Lex_error of Token.pos * string

type t

val create : string -> t
val next : t -> Token.t * Token.pos
(** Next token and its starting position; returns [EOF] at end of input. *)

val tokenize : string -> (Token.t * Token.pos) list
(** Whole input, ending with [EOF].  Raises {!Lex_error}. *)
