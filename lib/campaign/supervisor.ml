(* Worker supervision: run a fixed fleet of worker bodies on domains,
   detect crashes, respawn with exponential backoff, give up after a
   budget.

   Each worker slot gets one long-lived supervising domain; each *attempt*
   runs on a freshly spawned child domain, so a respawned worker starts
   with clean domain-local state exactly like the original.  A crash is an
   exception escaping the worker body (in OCaml a domain cannot die any
   other way short of taking the whole process with it). *)

type policy = {
  max_respawns : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  quarantine_crashes : int;
}

let default_policy =
  {
    max_respawns = 3;
    backoff_base = 0.01;
    backoff_factor = 2.0;
    backoff_max = 0.5;
    quarantine_crashes = 3;
  }

let backoff_delay policy attempt =
  min policy.backoff_max
    (policy.backoff_base *. (policy.backoff_factor ** float_of_int attempt))

type outcome = { crashes : int; gave_up : int }

let nothing1 ~domain:_ = ()
let nothing_crash ~domain:_ ~attempt:_ _ = ()
let nothing_respawn ~domain:_ ~attempt:_ ~backoff:_ = ()

let run_slot ~policy ~on_crash ~on_respawn ~on_give_up ~domain body =
  let rec go attempt crashes =
    let child =
      Domain.spawn (fun () ->
          match body ~domain with
          | () -> Ok ()
          | exception e -> Error e)
    in
    match Domain.join child with
    | Ok () -> (crashes, false)
    | Error e ->
        on_crash ~domain ~attempt e;
        if attempt >= policy.max_respawns then begin
          on_give_up ~domain;
          (crashes + 1, true)
        end
        else begin
          let backoff = backoff_delay policy attempt in
          if backoff > 0.0 then Unix.sleepf backoff;
          on_respawn ~domain ~attempt:(attempt + 1) ~backoff;
          go (attempt + 1) (crashes + 1)
        end
  in
  go 0 0

let supervise ?(policy = default_policy) ?(on_crash = nothing_crash)
    ?(on_respawn = nothing_respawn) ?(on_give_up = nothing1) ~domains body =
  let slots =
    List.init domains (fun domain ->
        Domain.spawn (fun () ->
            run_slot ~policy ~on_crash ~on_respawn ~on_give_up ~domain body))
  in
  let results = List.map Domain.join slots in
  {
    crashes = List.fold_left (fun acc (c, _) -> acc + c) 0 results;
    gave_up =
      List.fold_left (fun acc (_, g) -> acc + if g then 1 else 0) 0 results;
  }
