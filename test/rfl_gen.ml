(* QCheck generator of well-formed RFL programs.

   Programs are well-typed *by construction* (the checker must accept every
   generated program — itself one of the properties).  The shape is
   constrained to keep every execution finite and monitor-safe:
   - loops are literal-bounded [for] loops,
   - locking is block-structured ([sync], or a straight-line balanced
     lock/unlock triple),
   - division/modulo use non-zero literal divisors,
   - [wait] is generated rarely (deadlocks are legitimate outcomes the
     properties account for; step-bound timeouts are not).

   The generator is deliberately adversarial toward the static pre-filter
   ([Rf_static.Static]) — its differential soundness harness
   ([test_static.ml]) fuzzes these shapes looking for an Impossible verdict
   on a pair phase 2 can confirm:
   - conditionally-held locks (the same variable written locked in one
     branch, bare in the other);
   - lock aliasing (one variable "protected" by different locks at
     different sites, so no common must-lock exists);
   - a disciplined variable ([g2], always written under [L1]) so genuine
     Common_lock-Impossible pairs occur, not just vacuous ones;
   - fork/join chains via [thread t after ...] clauses, including data
     that is thread-local until a dependent thread starts;
   - every statement gets a distinct source position ([stamp_positions]),
     so distinct program points are distinct sites rather than one merged
     fact. *)

open QCheck.Gen

let pos : Rf_lang.Token.pos = { Rf_lang.Token.line = 0; col = 0 }

let e k : Rf_lang.Ast.expr = { Rf_lang.Ast.e = k; epos = pos }
let s k : Rf_lang.Ast.stmt = { Rf_lang.Ast.s = k; spos = pos }

(* fixed declaration pools *)
let int_globals = [ "g0"; "g1"; "g2" ]
let bool_globals = [ "b0"; "b1" ]
let arrays = [ ("arr0", 4) ]
let locks = [ "L0"; "L1" ]

type scope = { ints : string list; bools : string list; mutable fresh : int }

let new_scope () = { ints = []; bools = []; fresh = 0 }

let rec gen_int_expr scope depth =
  if depth <= 0 then
    frequency
      [
        (3, map (fun n -> e (Rf_lang.Ast.Eint (n mod 20))) small_nat);
        (2, map (fun v -> e (Rf_lang.Ast.Evar v)) (oneofl (int_globals @ scope.ints)));
      ]
  else
    frequency
      [
        (2, gen_int_expr scope 0);
        ( 2,
          let* op = oneofl [ Rf_lang.Ast.Add; Rf_lang.Ast.Sub; Rf_lang.Ast.Mul ] in
          let* l = gen_int_expr scope (depth - 1) in
          let* r = gen_int_expr scope (depth - 1) in
          return (e (Rf_lang.Ast.Ebin (op, l, r))) );
        ( 1,
          (* safe division: non-zero literal divisor *)
          let* op = oneofl [ Rf_lang.Ast.Div; Rf_lang.Ast.Mod ] in
          let* l = gen_int_expr scope (depth - 1) in
          let* d = map (fun n -> 1 + (n mod 7)) small_nat in
          return (e (Rf_lang.Ast.Ebin (op, l, e (Rf_lang.Ast.Eint d)))) );
        ( 1,
          let* a, n = oneofl arrays in
          let* i = map (fun i -> i mod n) small_nat in
          return (e (Rf_lang.Ast.Eindex (a, e (Rf_lang.Ast.Eint i)))) );
        (1, map (fun x -> e (Rf_lang.Ast.Eneg x)) (gen_int_expr scope (depth - 1)));
      ]

and gen_bool_expr scope depth =
  if depth <= 0 then
    frequency
      [
        (2, map (fun b -> e (Rf_lang.Ast.Ebool b)) bool);
        (2, map (fun v -> e (Rf_lang.Ast.Evar v)) (oneofl (bool_globals @ scope.bools)));
      ]
  else
    frequency
      [
        (2, gen_bool_expr scope 0);
        ( 3,
          let* op =
            oneofl
              [ Rf_lang.Ast.Lt; Rf_lang.Ast.Le; Rf_lang.Ast.Gt; Rf_lang.Ast.Ge;
                Rf_lang.Ast.Eq; Rf_lang.Ast.Neq ]
          in
          let* l = gen_int_expr scope (depth - 1) in
          let* r = gen_int_expr scope (depth - 1) in
          return (e (Rf_lang.Ast.Ebin (op, l, r))) );
        ( 1,
          let* op = oneofl [ Rf_lang.Ast.And; Rf_lang.Ast.Or ] in
          let* l = gen_bool_expr scope (depth - 1) in
          let* r = gen_bool_expr scope (depth - 1) in
          return (e (Rf_lang.Ast.Ebin (op, l, r))) );
        (1, map (fun x -> e (Rf_lang.Ast.Enot x)) (gen_bool_expr scope (depth - 1)));
      ]

(* Assignments target globals and arrays only: loop counters stay
   read-only so every generated loop is genuinely bounded.  [g2] is the
   disciplined variable: every write goes through [sync (L1)], so its
   write-write pairs are genuinely Impossible(Common_lock) — material for
   the filter to actually remove. *)
let gen_assign scope =
  frequency
    [
      ( 3,
        let* v = oneofl [ "g0"; "g1" ] in
        let* ex = gen_int_expr scope 1 in
        return (s (Rf_lang.Ast.Sassign (v, ex))) );
      ( 1,
        let* ex = gen_int_expr scope 1 in
        return
          (s (Rf_lang.Ast.Ssync ("L1", [ s (Rf_lang.Ast.Sassign ("g2", ex)) ]))) );
      ( 1,
        let* v = oneofl bool_globals in
        let* ex = gen_bool_expr scope 1 in
        return (s (Rf_lang.Ast.Sassign (v, ex))) );
      ( 1,
        let* a, n = oneofl arrays in
        let* i = map (fun i -> i mod n) small_nat in
        let* ex = gen_int_expr scope 1 in
        return (s (Rf_lang.Ast.Sindex_assign (a, e (Rf_lang.Ast.Eint i), ex))) );
    ]

(* Conditionally-held lock: the same variable is written under a lock in
   one branch and bare in the other.  A sound must-lockset joins branches
   by intersection; a filter that unions instead would wrongly prove
   Common_lock here. *)
let gen_cond_sync scope =
  let* l = oneofl locks in
  let* v = oneofl [ "g0"; "g1" ] in
  let* c = gen_bool_expr scope 1 in
  let* locked = gen_int_expr scope 1 in
  let* bare = gen_int_expr scope 1 in
  return
    (s
       (Rf_lang.Ast.Sif
          ( c,
            [ s (Rf_lang.Ast.Ssync (l, [ s (Rf_lang.Ast.Sassign (v, locked)) ])) ],
            Some [ s (Rf_lang.Ast.Sassign (v, bare)) ] )))

(* Lock aliasing: the same variable "protected" by whichever lock this
   occurrence happened to pick.  Across two threads the locks differ, the
   must-intersection is empty, and the pair must survive as Likely. *)
let gen_alias_sync scope =
  let* l = oneofl locks in
  let* v = oneofl [ "g0"; "g1" ] in
  let* ex = gen_int_expr scope 1 in
  return (s (Rf_lang.Ast.Ssync (l, [ s (Rf_lang.Ast.Sassign (v, ex)) ])))

(* Straight-line balanced lock/unlock triple: exercises the non-block
   [Slock]/[Sunlock] lock-stack tracking without risking an unbalanced
   thread exit. *)
let gen_lock_triple scope =
  let* l = oneofl locks in
  let* body = gen_assign scope in
  return
    [ s (Rf_lang.Ast.Slock l); body; s (Rf_lang.Ast.Sunlock l) ]

let rec gen_stmt scope depth =
  if depth <= 0 then gen_assign scope
  else
    frequency
      [
        (4, gen_assign scope);
        ( 2,
          (* bounded for loop over a fresh local *)
          let v = Printf.sprintf "i%d" scope.fresh in
          scope.fresh <- scope.fresh + 1;
          let inner = { scope with ints = v :: scope.ints } in
          let* bound = map (fun n -> 1 + (n mod 3)) small_nat in
          let* body = gen_block inner (depth - 1) in
          return
            (s
               (Rf_lang.Ast.Sfor
                  ( s (Rf_lang.Ast.Slet (v, e (Rf_lang.Ast.Eint 0))),
                    e
                      (Rf_lang.Ast.Ebin
                         (Rf_lang.Ast.Lt, e (Rf_lang.Ast.Evar v), e (Rf_lang.Ast.Eint bound))),
                    s
                      (Rf_lang.Ast.Sassign
                         ( v,
                           e
                             (Rf_lang.Ast.Ebin
                                (Rf_lang.Ast.Add, e (Rf_lang.Ast.Evar v), e (Rf_lang.Ast.Eint 1)))
                         )),
                    body ))) );
        ( 2,
          let* c = gen_bool_expr scope 1 in
          let* t = gen_block scope (depth - 1) in
          let* eo = opt (gen_block scope (depth - 1)) in
          return (s (Rf_lang.Ast.Sif (c, t, eo))) );
        ( 2,
          let* l = oneofl locks in
          let* b = gen_block scope (depth - 1) in
          return (s (Rf_lang.Ast.Ssync (l, b))) );
        (1, gen_cond_sync scope);
        (1, gen_alias_sync scope);
        ( 1,
          let* l = oneofl locks in
          return (s (Rf_lang.Ast.Snotify_all l)) );
        (1, return (s Rf_lang.Ast.Ssleep));
        (1, return (s Rf_lang.Ast.Sskip));
        ( 1,
          let* ex = gen_int_expr scope 1 in
          return (s (Rf_lang.Ast.Sprint ex)) );
      ]

and gen_block scope depth =
  let* n = map (fun n -> 1 + (n mod 3)) small_nat in
  let rec go k acc = if k = 0 then return (List.rev acc)
    else
      let* st = gen_stmt scope (depth - 1) in
      go (k - 1) (st :: acc)
  in
  let* stmts = go n [] in
  let* with_triple = frequency [ (4, return false); (1, return true) ] in
  if with_triple then
    let* triple = gen_lock_triple scope in
    return (stmts @ triple)
  else return stmts

(* [earlier] are the already-declared thread names: an optional [after]
   clause picks a nonempty subset, giving fork/join chains and diamonds
   the ordering analysis must get right. *)
let gen_thread ~earlier idx =
  let scope = new_scope () in
  let* body = gen_block scope 3 in
  let* after =
    if earlier = [] then return []
    else
      frequency
        [
          (2, return []);
          ( 1,
            let* keep = flatten_l (List.map (fun n -> pair (return n) bool) earlier) in
            let deps = List.filter_map (fun (n, k) -> if k then Some n else None) keep in
            if deps = [] then map (fun n -> [ n ]) (oneofl earlier) else return deps );
        ]
  in
  return
    {
      Rf_lang.Ast.tname = Printf.sprintf "t%d" idx;
      tafter = after;
      tbody = body;
      tpos = pos;
    }

(* Renumber every position with a fresh line so distinct program points
   are distinct {!Rf_util.Site.t}s (the generator builds everything at
   {0,0}, which would merge all same-label statements into one site).
   Positions are not part of {!Rf_lang.Pretty.program_equal}, so the
   print/parse round-trip property is unaffected. *)
let stamp_positions (p : Rf_lang.Ast.program) : Rf_lang.Ast.program =
  let open Rf_lang.Ast in
  let next = ref 0 in
  let fresh () =
    incr next;
    { Rf_lang.Token.line = !next; col = 0 }
  in
  let rec ex (x : expr) =
    let epos = fresh () in
    let e =
      match x.e with
      | (Eint _ | Ebool _ | Estring _ | Evar _) as k -> k
      | Eindex (a, i) -> Eindex (a, ex i)
      | Ebin (op, l, r) -> Ebin (op, ex l, ex r)
      | Eneg a -> Eneg (ex a)
      | Enot a -> Enot (ex a)
      | Ecall (f, args) -> Ecall (f, List.map ex args)
    in
    { e; epos }
  in
  let rec st (x : stmt) =
    let spos = fresh () in
    let s =
      match x.s with
      | Sassign (v, e1) -> Sassign (v, ex e1)
      | Sindex_assign (a, i, e1) -> Sindex_assign (a, ex i, ex e1)
      | Slet (v, e1) -> Slet (v, ex e1)
      | Sif (c, t, e1) -> Sif (ex c, blk t, Option.map blk e1)
      | Swhile (c, b) -> Swhile (ex c, blk b)
      | Sfor (i, c, stp, b) -> Sfor (st i, ex c, st stp, blk b)
      | Ssync (l, b) -> Ssync (l, blk b)
      | Sassert e1 -> Sassert (ex e1)
      | Sprint e1 -> Sprint (ex e1)
      | Sreturn eo -> Sreturn (Option.map ex eo)
      | Scall (f, args) -> Scall (f, List.map ex args)
      | (Slock _ | Sunlock _ | Swait _ | Snotify _ | Snotify_all _ | Ssleep
        | Serror _ | Sskip) as k ->
          k
    in
    { s; spos }
  and blk b = List.map st b in
  {
    p with
    shareds = List.map (fun g -> { g with gpos = fresh () }) p.shareds;
    locks = List.map (fun (l, _) -> (l, fresh ())) p.locks;
    funcs =
      List.map (fun f -> { f with fbody = blk f.fbody; fpos = fresh () }) p.funcs;
    threads =
      List.map (fun t -> { t with tbody = blk t.tbody; tpos = fresh () }) p.threads;
  }

let gen_program : Rf_lang.Ast.program t =
  let* nthreads = map (fun n -> 2 + (n mod 2)) small_nat in
  let rec threads k acc =
    if k = nthreads then return (List.rev acc)
    else
      let earlier = List.rev_map (fun t -> t.Rf_lang.Ast.tname) acc in
      let* t = gen_thread ~earlier k in
      threads (k + 1) (t :: acc)
  in
  let* threads = threads 0 [] in
  map stamp_positions
    (return
       {
      Rf_lang.Ast.file = "gen.rfl";
      shareds =
        List.map
          (fun name ->
            {
              Rf_lang.Ast.gname = name;
              gty = Rf_lang.Ast.Tint;
              ginit = e (Rf_lang.Ast.Eint 0);
              garray = None;
              gpos = pos;
            })
          int_globals
        @ List.map
            (fun name ->
              {
                Rf_lang.Ast.gname = name;
                gty = Rf_lang.Ast.Tbool;
                ginit = e (Rf_lang.Ast.Ebool false);
                garray = None;
                gpos = pos;
              })
            bool_globals
        @ List.map
            (fun (name, n) ->
              {
                Rf_lang.Ast.gname = name;
                gty = Rf_lang.Ast.Tint;
                ginit = e (Rf_lang.Ast.Eint 0);
                garray = Some n;
                gpos = pos;
              })
            arrays;
      locks = List.map (fun l -> (l, pos)) locks;
      funcs = [];
      threads;
    })

let arbitrary_program =
  QCheck.make ~print:Rf_lang.Pretty.program_to_string gen_program
