test/rfl_gen.ml: List Printf QCheck Rf_lang
