test/test_runtime.ml: Alcotest Api Engine List Lock Outcome Printexc Printf QCheck QCheck_alcotest Rf_events Rf_runtime Rf_util Site Strategy
