(** Stress-serve: a server-shaped resource-stress family (the jigsaw /
    weblech shapes scaled up ~100x).

    Each round, a dispatcher enqueues one backlog token per worker and
    forks a config reloader plus a pool of per-connection worker
    threads; every worker drains a backlog token (with the weblech
    check-then-act bug), then serves [reqs] requests against a shared
    session table, an unsynchronized hit counter, the hot-swapped
    config cell, and a lock-guarded LRU cache.  Joining the whole pool
    between rounds widens every later thread's vector clock by about
    [workers] components per round (the hybrid detector draws
    happens-before from fork/join and notify/wait only), so retained
    access-history entries get more expensive round over round —
    exactly the state-growth axis the sampling detector's O(1)-sample
    buckets bound.

    Race inventory (independent of the size parameters):
    - session table: unsynchronized read/write from every worker — real
      races, and the [slots]-location table is the memory driver: full
      tracking keeps one history entry per (worker, site) per slot.
    - hit counter: unsynchronized read-modify-write — real, benign.
    - config cell: reloader writes vs. worker reads, no lock — real.
    - backlog: [size_unsync]/[pop_unsync] check-then-act — real and
      {e harmful}: a lost race raises [Op.No_such_element].
    - LRU cache: all accesses under the cache lock — race-free; the
      static model proves these pairs Impossible.
    - handshake farm: [hs] lock-guarded flag handshakes — hybrid false
      positives that phase 2 must refute.

    The big [stress-serve] instance is sized so that ungoverned full
    tracking blows through a CI-sized address-space limit while
    [--detector sampling] finishes comfortably inside it;
    [stress-serve-small] keeps the same shape (and the same pair
    inventory) at test speed. *)

open Rf_util
open Rf_runtime

let file = "serve"
let s line label = Site.make ~file ~line label

(* Shared sites: one fixed set, so pair counts do not depend on size. *)
let site_sess_r = s 10 "session(read)"
let site_sess_w = s 11 "session(write)"
let site_hits_r = s 12 "stats.hits(read)"
let site_hits_w = s 13 "stats.hits(write)"
let site_conf_w = s 14 "config(write)"
let site_conf_r = s 15 "config(read)"
let site_cache_sync = s 16 "cache.sync"
let site_cache_r = s 17 "cache.line(read)"
let site_cache_w = s 18 "cache.line(write)"
let site_q_check = s 19 "backlog.size?"
let site_q_pop_r = s 20 "backlog.pop(read)"
let site_q_pop_w = s 21 "backlog.pop(write)"

let serve ?(workers = 8) ?(rounds = 2) ?(slots = 256) ?(reqs = 32)
    ?(cache_lines = 8) ?(hs = 4) () =
  let sessions = Api.Sarray.make slots 0 in
  let cache =
    Array.init cache_lines (fun i ->
        Api.Cell.make ~name:(Printf.sprintf "lru.%d" i) (-1))
  in
  let cache_lock = Lock.create ~name:"cache" () in
  let hits = Api.Cell.global "stats.hits" 0 in
  let config = Api.Cell.global "config" 0 in
  let backlog = Common.Queue_.create () in
  let farm = Common.Farm.create ~file ~base_line:100 hs in
  for round = 0 to rounds - 1 do
    (* dispatcher: one backlog token per worker, enqueued before the
       fork so only the workers' own check-then-act drains race *)
    for w = 0 to workers - 1 do
      Common.Queue_.put backlog ((round * workers) + w)
    done;
    let reloader =
      Api.fork ~name:(Printf.sprintf "reload%d" round) (fun () ->
          Api.Cell.write ~site:site_conf_w config ((2 * round) + 1);
          (* publish exactly once: a second round's data write would
             really race with a consumer that already saw the flag,
             turning the farm's false alarms into true ones *)
          if round = 0 then Common.Farm.publish farm 0;
          Api.Cell.write ~site:site_conf_w config ((2 * round) + 2))
    in
    let worker i () =
      for j = 0 to reqs - 1 do
        (* contiguous per-worker ranges overlapping mod [slots]: each
           slot is visited by ~workers*reqs/slots distinct workers *)
        let slot = ((i * reqs) + j) mod slots in
        let v = Api.Sarray.get ~site:site_sess_r sessions slot in
        Api.Sarray.set ~site:site_sess_w sessions slot (v + 1);
        Api.Cell.update ~rsite:site_hits_r ~wsite:site_hits_w hits succ;
        ignore (Api.Cell.read ~site:site_conf_r config);
        if j land 3 = 0 then
          Api.sync ~site:site_cache_sync cache_lock (fun () ->
              let line = cache.(slot mod cache_lines) in
              if Api.Cell.read ~site:site_cache_r line <> slot then
                Api.Cell.write ~site:site_cache_w line slot)
      done;
      if i = 0 then Common.Farm.consume_rounds farm 2;
      (* weblech-style check-then-act backlog drain, last so a lost race
         cannot suppress a worker's session traffic: every worker loops
         until the size probe fails, so the pool contends over the final
         tokens and a loser's pop raises No_such_element.  (At the big
         instance's scale the default engine step cap truncates the run
         before the drain; the small variant exercises it.) *)
      let draining = ref true in
      while !draining do
        if Common.Queue_.size_unsync ~site:site_q_check backlog > 0 then
          ignore
            (Common.Queue_.pop_unsync ~rsite:site_q_pop_r ~wsite:site_q_pop_w backlog)
        else draining := false
      done
    in
    let pool =
      List.init workers (fun i ->
          Api.fork ~name:(Printf.sprintf "serve%d.%d" round i) (worker i))
    in
    Api.join reloader;
    List.iter Api.join pool
  done

(* ------------------------------------------------------------------ *)
(* Static model.

   Two representative worker threads stand in for the whole pool (the
   filter only needs may-happen-in-parallel and must-lockset facts, both
   already saturated at two threads), plus the reloader.  Cache accesses
   carry the cache lock, so their pairs are provably Impossible; every
   unsynchronized access carries an empty lockset and survives to the
   fuzzed frontier.  The farm's flag handshakes are registered exactly
   like cache4j's. *)

let static_model ~hs =
  let open Rf_static.Static in
  let b = Model.create () in
  List.iter
    (fun thread ->
      Model.access b ~site:site_sess_r ~var:"session" ~write:false ~thread ~locks:[];
      Model.access b ~site:site_sess_w ~var:"session" ~write:true ~thread ~locks:[];
      Model.access b ~site:site_hits_r ~var:"stats.hits" ~write:false ~thread ~locks:[];
      Model.access b ~site:site_hits_w ~var:"stats.hits" ~write:true ~thread ~locks:[];
      Model.access b ~site:site_conf_r ~var:"config" ~write:false ~thread ~locks:[];
      Model.access b ~site:site_cache_r ~var:"lru" ~write:false ~thread
        ~locks:[ "cache" ];
      Model.access b ~site:site_cache_w ~var:"lru" ~write:true ~thread
        ~locks:[ "cache" ];
      Model.access b ~site:site_q_check ~var:"backlog.items" ~write:false ~thread
        ~locks:[];
      Model.access b ~site:site_q_pop_r ~var:"backlog.items" ~write:false ~thread
        ~locks:[];
      Model.access b ~site:site_q_pop_w ~var:"backlog.items" ~write:true ~thread
        ~locks:[])
    [ "serve0.0"; "serve0.1" ];
  Model.access b ~site:site_conf_w ~var:"config" ~write:true ~thread:"reload0"
    ~locks:[];
  (* the queue's own synchronized put, under the queue monitor *)
  Model.access b
    ~site:(Site.make ~file:"wl_common" ~line:11 "queue.items(read)")
    ~var:"backlog.items" ~write:false ~thread:"main" ~locks:[ "queue" ];
  Model.access b
    ~site:(Site.make ~file:"wl_common" ~line:12 "queue.items(write)")
    ~var:"backlog.items" ~write:true ~thread:"main" ~locks:[ "queue" ];
  (* handshake farm: flag under the per-handshake lock, data unlocked *)
  for i = 0 to hs - 1 do
    let data = Printf.sprintf "hs%d.data" i in
    let lock = Printf.sprintf "serve.hs%d.lock" i in
    Model.access b
      ~site:(Site.make ~file ~line:(100 + (2 * i)) (Printf.sprintf "hs%d.data(write)" i))
      ~var:data ~write:true ~thread:"reload0" ~locks:[];
    Model.access b
      ~site:(Site.make ~file ~line:(100 + (2 * i) + 1) (Printf.sprintf "hs%d.data(read)" i))
      ~var:data ~write:false ~thread:"serve0.0" ~locks:[];
    Model.access b
      ~site:(Site.make ~file:"wl_common" ~line:20 "hs.flag=1")
      ~var:(Printf.sprintf "hs%d.flag" i)
      ~write:true ~thread:"reload0" ~locks:[ lock ];
    Model.access b
      ~site:(Site.make ~file:"wl_common" ~line:21 "hs.flag?")
      ~var:(Printf.sprintf "hs%d.flag" i)
      ~write:false ~thread:"serve0.0" ~locks:[ lock ]
  done;
  Model.build b

(* ------------------------------------------------------------------ *)

let workloads =
  [
    Workload.make ~name:"stress-serve"
      ~descr:
        "server stress: 64 workers x 2 rounds over a 32k-slot session table; \
         full phase-1 tracking OOMs where sampling completes"
      ~sloc:90
      ~static:(Some (static_model ~hs:8))
      (serve ~workers:64 ~rounds:2 ~slots:32768 ~reqs:8192 ~cache_lines:64 ~hs:8);
  ]

(* Same shape at test speed: identical site set, so the potential-pair
   inventory matches the big instance. *)
let small =
  [
    Workload.make ~name:"stress-serve-small"
      ~descr:"server stress (6 workers x 2 rounds, 128 slots)" ~sloc:90
      ~expected_real:(Some 8)
      ~static:(Some (static_model ~hs:3))
      (serve ~workers:6 ~rounds:2 ~slots:128 ~reqs:32 ~cache_lines:8 ~hs:3);
  ]
