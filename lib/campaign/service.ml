(* The long-lived campaign service behind `racefuzzer serve`.

   Everything the scheduler knows lives in one sealed-JSONL ledger next
   to the corpus index, rewritten atomically after every verdict — the
   journal/corpus durability discipline applied to scheduling state, so
   a SIGKILL at any instant costs at most the verdict being computed,
   never one already settled.  Revalidation is exactly-once per cycle
   (ledger-gated); campaign waves are at-least-once (a wave killed
   mid-flight simply re-runs, and corpus dedup absorbs the repeats). *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer

(* ------------------------------------------------------------------ *)
(* Retry policy: deterministic exponential backoff with FNV jitter.    *)

module Retry = struct
  type policy = {
    rp_max_attempts : int;
    rp_base : float;
    rp_factor : float;
    rp_max : float;
    rp_jitter : float;
    rp_strikes : int;
  }

  let default =
    {
      rp_max_attempts = 3;
      rp_base = 0.01;
      rp_factor = 2.0;
      rp_max = 0.5;
      rp_jitter = 0.25;
      rp_strikes = 3;
    }

  (* Same 30-bit unit-interval construction as Chaos.unit_float: jitter
     is a pure function of (item key, attempt), so a retried item backs
     off identically on every run and every host. *)
  let jitter_unit ~key ~attempt =
    let h = Fnv.fold_string63 Fnv.basis63 key in
    let h = Fnv.mask63 (Fnv.fold_int63 h attempt) in
    float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

  let delay p ~key ~attempt =
    let raw = p.rp_base *. (p.rp_factor ** float_of_int (attempt - 1)) in
    let capped = Float.min p.rp_max raw in
    let u = jitter_unit ~key ~attempt in
    Float.max 0.0 (capped *. (1.0 +. (p.rp_jitter *. ((2.0 *. u) -. 1.0))))

  let exhausted p ~attempt = attempt >= p.rp_max_attempts
end

(* ------------------------------------------------------------------ *)
(* The scheduler ledger: corpus-index idiom, scheduling content.       *)

module Ledger = struct
  type verdict = Still_racy | Regressed | Fixed | Intact | Failed

  let verdict_to_string = function
    | Still_racy -> "still-racy"
    | Regressed -> "regressed"
    | Fixed -> "fixed"
    | Intact -> "intact"
    | Failed -> "failed"

  let verdict_of_string = function
    | "still-racy" -> Some Still_racy
    | "regressed" -> Some Regressed
    | "fixed" -> Some Fixed
    | "intact" -> Some Intact
    | "failed" -> Some Failed
    | _ -> None

  type item = {
    li_kind : string;
    li_key : string;
    li_verdict : verdict;
    li_cycle : int;
    li_attempts : int;
    li_strikes : int;
    li_quarantine : string;
  }

  type target = {
    lt_name : string;
    lt_tokens : float;
    lt_mtime : float;
    lt_campaigns : int;
    lt_confirmed : string;
  }

  type cycle = {
    lc_cycle : int;
    lc_fingerprint : string;
    lc_checked : int;
    lc_still : int;
    lc_fixed : int;
    lc_regressed : int;
    lc_intact : int;
    lc_failed : int;
    lc_campaigns : int;
    lc_wreq : int;
    lc_wact : int;
  }

  type t = {
    mutable l_cycle : int;
    l_items : (string * string, item) Hashtbl.t;
    l_targets : (string, target) Hashtbl.t;
    mutable l_cycles : cycle list;
  }

  let path dir = Filename.concat dir "serve.ledger.jsonl"
  let header_line = Event_log.seal {|{"ledger":1}|}

  let fresh () =
    {
      l_cycle = 1;
      l_items = Hashtbl.create 64;
      l_targets = Hashtbl.create 8;
      l_cycles = [];
    }

  let render_item (i : item) =
    Event_log.seal
      (Event_log.render_flat
         [
           ("rec", Event_log.S "item");
           ("kind", Event_log.S i.li_kind);
           ("key", Event_log.S i.li_key);
           ("verdict", Event_log.S (verdict_to_string i.li_verdict));
           ("cycle", Event_log.I i.li_cycle);
           ("attempts", Event_log.I i.li_attempts);
           ("strikes", Event_log.I i.li_strikes);
           ("quarantine", Event_log.S i.li_quarantine);
         ])

  let render_target (t : target) =
    Event_log.seal
      (Event_log.render_flat
         [
           ("rec", Event_log.S "target");
           ("name", Event_log.S t.lt_name);
           ("tokens", Event_log.F t.lt_tokens);
           ("mtime", Event_log.F t.lt_mtime);
           ("campaigns", Event_log.I t.lt_campaigns);
           ("confirmed", Event_log.S t.lt_confirmed);
         ])

  let render_cycle (c : cycle) =
    Event_log.seal
      (Event_log.render_flat
         [
           ("rec", Event_log.S "cycle");
           ("cycle", Event_log.I c.lc_cycle);
           ("fingerprint", Event_log.S c.lc_fingerprint);
           ("checked", Event_log.I c.lc_checked);
           ("still", Event_log.I c.lc_still);
           ("fixed", Event_log.I c.lc_fixed);
           ("regressed", Event_log.I c.lc_regressed);
           ("intact", Event_log.I c.lc_intact);
           ("failed", Event_log.I c.lc_failed);
           ("campaigns", Event_log.I c.lc_campaigns);
           ("wreq", Event_log.I c.lc_wreq);
           ("wact", Event_log.I c.lc_wact);
         ])

  let render_meta (t : t) =
    Event_log.seal
      (Event_log.render_flat
         [ ("rec", Event_log.S "meta"); ("cycle", Event_log.I t.l_cycle) ])

  let str fields k =
    match List.assoc_opt k fields with Some (Event_log.S s) -> Some s | _ -> None

  let int fields k =
    match List.assoc_opt k fields with Some (Event_log.I i) -> Some i | _ -> None

  let flt fields k =
    match List.assoc_opt k fields with
    | Some (Event_log.F f) -> Some f
    | Some (Event_log.I i) -> Some (float_of_int i)
    | _ -> None

  let item_of_fields fields =
    match
      ( str fields "kind",
        str fields "key",
        Option.bind (str fields "verdict") verdict_of_string,
        int fields "cycle" )
    with
    | Some li_kind, Some li_key, Some li_verdict, Some li_cycle ->
        Some
          {
            li_kind;
            li_key;
            li_verdict;
            li_cycle;
            li_attempts = Option.value ~default:1 (int fields "attempts");
            li_strikes = Option.value ~default:0 (int fields "strikes");
            li_quarantine = Option.value ~default:"" (str fields "quarantine");
          }
    | _ -> None

  let target_of_fields fields =
    match str fields "name" with
    | Some lt_name ->
        Some
          {
            lt_name;
            lt_tokens = Option.value ~default:0.0 (flt fields "tokens");
            lt_mtime = Option.value ~default:0.0 (flt fields "mtime");
            lt_campaigns = Option.value ~default:0 (int fields "campaigns");
            lt_confirmed = Option.value ~default:"" (str fields "confirmed");
          }
    | None -> None

  let cycle_of_fields fields =
    match (int fields "cycle", str fields "fingerprint") with
    | Some lc_cycle, Some lc_fingerprint ->
        let n k = Option.value ~default:0 (int fields k) in
        Some
          {
            lc_cycle;
            lc_fingerprint;
            lc_checked = n "checked";
            lc_still = n "still";
            lc_fixed = n "fixed";
            lc_regressed = n "regressed";
            lc_intact = n "intact";
            lc_failed = n "failed";
            lc_campaigns = n "campaigns";
            lc_wreq = n "wreq";
            lc_wact = n "wact";
          }
    | _ -> None

  let read_lines path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])

  (* Tolerant load, like Corpus.load: bad seals and torn lines are
     counted and skipped; the next save rewrites a clean file. *)
  let load dir =
    let file = path dir in
    if not (Sys.file_exists file) then (fresh (), 0)
    else begin
      let t = fresh () in
      let skipped = ref 0 in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Event_log.check_seal line with
            | Event_log.Sealed_bad | Event_log.Unsealed -> incr skipped
            | Event_log.Sealed_ok -> (
                match Event_log.parse_flat line with
                | None -> incr skipped
                | Some fields when List.mem_assoc "ledger" fields -> ()
                | Some fields -> (
                    match str fields "rec" with
                    | Some "meta" ->
                        Option.iter
                          (fun c -> t.l_cycle <- c)
                          (int fields "cycle")
                    | Some "item" ->
                        Option.iter
                          (fun i ->
                            Hashtbl.replace t.l_items (i.li_kind, i.li_key) i)
                          (item_of_fields fields)
                    | Some "target" ->
                        Option.iter
                          (fun tg -> Hashtbl.replace t.l_targets tg.lt_name tg)
                          (target_of_fields fields)
                    | Some "cycle" ->
                        Option.iter
                          (fun c -> t.l_cycles <- t.l_cycles @ [ c ])
                          (cycle_of_fields fields)
                    | _ -> ())))
        (read_lines file);
      if t.l_cycle < List.length t.l_cycles + 1 then
        t.l_cycle <- List.length t.l_cycles + 1;
      (t, !skipped)
    end

  let sorted_items t =
    Hashtbl.fold (fun _ i acc -> i :: acc) t.l_items []
    |> List.sort (fun a b ->
           compare (a.li_kind, a.li_key) (b.li_kind, b.li_key))

  let sorted_targets t =
    Hashtbl.fold (fun _ tg acc -> tg :: acc) t.l_targets []
    |> List.sort (fun a b -> compare a.lt_name b.lt_name)

  let save ~dir t =
    if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
    Atomic_file.write (path dir) (fun oc ->
        let line s =
          output_string oc s;
          output_char oc '\n'
        in
        line header_line;
        line (render_meta t);
        List.iter (fun i -> line (render_item i)) (sorted_items t);
        List.iter (fun tg -> line (render_target tg)) (sorted_targets t);
        List.iter (fun c -> line (render_cycle c)) t.l_cycles)
end

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

type config = {
  v_cycles : int;
  v_period : float;
  v_watch : bool;
  v_rate : float;
  v_burst : float;
  v_retry : Retry.policy;
  v_targets : string list;
  v_domains : int;
  v_phase1_seeds : int;
  v_seeds_per_pair : int;
  v_proc : Proc_pool.spec option;
  v_chaos : Chaos.plan option;
}

let default_config =
  {
    v_cycles = 0;
    v_period = 1.0;
    v_watch = false;
    v_rate = 1.0;
    v_burst = 2.0;
    v_retry = Retry.default;
    v_targets = [];
    v_domains = 1;
    v_phase1_seeds = 1;
    v_seeds_per_pair = 20;
    v_proc = None;
    v_chaos = None;
  }

(* ------------------------------------------------------------------ *)
(* Phase-1 recording cache: record once per target, re-analyze every
   wave.  The cache lives under the corpus but outside the index (the
   corpus' own trace ingestion keys files by basename, which collides
   across targets — the service needs one recording set per target). *)

let p1_cache_dir ~dir target =
  Filename.concat (Filename.concat dir "p1cache") (Fnv.hex63 target)

let p1_cache_file cdir seed = Filename.concat cdir (Printf.sprintf "trace-seed%d.rfbt" seed)

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let p1_cache_load cdir seeds =
  try
    if List.for_all (fun s -> Sys.file_exists (p1_cache_file cdir s)) seeds
    then
      Some (List.map (fun s -> Rf_events.Btrace.load (p1_cache_file cdir s)) seeds)
    else None
  with Rf_events.Btrace.Corrupt _ | Sys_error _ -> None

let p1_cache_invalidate cdir =
  if Sys.file_exists cdir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat cdir f) with Sys_error _ -> ())
      (Sys.readdir cdir)

(* Phase 1 for one wave: re-analyze the cached recordings when they are
   all present and intact, otherwise record afresh (caching the sealed
   recordings for the next wave) — either way the campaign itself never
   runs phase 1. *)
let phase1_for ~dir ~target ~seeds program =
  let cdir = p1_cache_dir ~dir target in
  match p1_cache_load cdir seeds with
  | Some recordings -> (Fuzzer.phase1_of_recordings recordings, true)
  | None ->
      mkdir_p cdir;
      let sink ~seed recording =
        Rf_events.Btrace.save (p1_cache_file cdir seed) recording
      in
      ( Fuzzer.phase1 ~seeds ~detect:(Fuzzer.Recorded { shards = 1 })
          ~trace_sink:sink program,
        false )

(* ------------------------------------------------------------------ *)
(* Revalidation: replay every corpus repro, integrity-check the rest.  *)

exception Check_failed of string

(* One replay attempt of an error entry's minimized schedule.  True iff
   the recorded error fingerprint is reproduced without divergence —
   the same criterion `racefuzzer replay` applies.  Any other problem
   (unreadable schedule, unresolvable target, divergence, mismatch)
   raises [Check_failed] so the retry loop can spend its budget. *)
let replay_once ~resolve path =
  let sched =
    try Rf_replay.Schedule.load path with
    | Rf_replay.Schedule.Format_error m -> raise (Check_failed m)
    | Sys_error m -> raise (Check_failed m)
  in
  let meta = sched.Rf_replay.Schedule.meta in
  match resolve meta.Rf_replay.Schedule.m_target with
  | Error m -> raise (Check_failed ("target: " ^ m))
  | Ok program -> (
      let o, status = Fuzzer.replay_schedule ~program sched in
      match status.Rf_replay.Replayer.divergence with
      | Some _ -> raise (Check_failed "replay diverged")
      | None ->
          Rf_replay.Schedule.error_fingerprint o
          = meta.Rf_replay.Schedule.m_error)

(* One integrity attempt of a non-replayable entry (degraded records,
   saved traces): artifact present with matching content CRC. *)
let intact_once ~dir (e : Corpus.entry) =
  if e.Corpus.e_file = "" then true
  else begin
    let f = Filename.concat dir e.Corpus.e_file in
    if not (Sys.file_exists f) then
      raise (Check_failed ("missing artifact " ^ e.Corpus.e_file));
    let ic = open_in_bin f in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    if e.Corpus.e_crc <> "" && Fnv.hex63 content <> e.Corpus.e_crc then
      raise (Check_failed ("content mismatch on " ^ e.Corpus.e_file));
    true
  end

(* ------------------------------------------------------------------ *)
(* The serve loop                                                      *)

let append_torn_line path =
  if Sys.file_exists path then begin
    let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
    output_string oc "{\"torn\":tru";
    (* no newline: a genuinely torn tail *)
    close_out oc
  end

let interruptible_sleep ~stop seconds =
  let t0 = Unix.gettimeofday () in
  while
    (not (Campaign.stop_requested stop))
    && Unix.gettimeofday () -. t0 < seconds
  do
    Unix.sleepf (Float.min 0.05 seconds)
  done

let pr fmt = Fmt.pr fmt

let serve ?(log = Event_log.null ()) ?stop config ~resolve ~dir =
  let stop = match stop with Some s -> s | None -> Campaign.stop_switch () in
  let retry = config.v_retry in
  let chaos = config.v_chaos in
  let ledger, lskipped = Ledger.load dir in
  if lskipped > 0 then
    pr "serve: %d corrupt ledger line(s) skipped (healed on next write)@."
      lskipped;
  if ledger.Ledger.l_cycle > 1 || Hashtbl.length ledger.Ledger.l_items > 0 then
    pr "serve: resuming at cycle %d (%d settled item(s) in the ledger)@."
      ledger.Ledger.l_cycle
      (Hashtbl.length ledger.Ledger.l_items);
  (* Chaos counters for this process run: items revalidated, cycles
     started.  Process-local on purpose — a die_reval kill/restart pair
     must not re-fire in the restarted process. *)
  let revalidated_this_run = ref 0 in
  let cycles_this_run = ref 0 in
  let chaos_n field =
    match chaos with None -> None | Some c -> field c
  in
  let seeds = List.init (max 1 config.v_phase1_seeds) Fun.id in
  let per_pair = List.init (max 1 config.v_seeds_per_pair) Fun.id in
  let completed () = List.length ledger.Ledger.l_cycles in
  let should_continue () =
    (not (Campaign.stop_requested stop))
    && (config.v_cycles = 0 || completed () < config.v_cycles)
  in

  let run_cycle () =
    let cycle = ledger.Ledger.l_cycle in
    incr cycles_this_run;
    pr "--- cycle %d ---@." cycle;

    (* 1. Chaos: torn lines appended before the heal step, so the heal
       is what the acceptance criteria exercise. *)
    if chaos_n (fun c -> c.Chaos.c_torn_index_cycle) = Some !cycles_this_run
    then begin
      pr "chaos: tearing corpus index@.";
      append_torn_line (Filename.concat dir "index.json")
    end;
    if chaos_n (fun c -> c.Chaos.c_torn_ledger_cycle) = Some !cycles_this_run
    then begin
      pr "chaos: tearing ledger@.";
      append_torn_line (Ledger.path dir)
    end;

    (* 2. Heal: a corpus that fails strict verification is rewritten
       from its tolerant read (Corpus.update with nothing to merge);
       the ledger heals by rewriting itself.  After this point both
       stores strictly verify, whatever the previous process left. *)
    (match Corpus.verify ~dir with
    | _ when not (Sys.file_exists (Filename.concat dir "index.json")) ->
        ()  (* nothing persisted yet — nothing to heal *)
    | Ok _ -> ()
    | Error problems ->
        pr "heal: corpus index failed strict verify (%d problem(s)) — rewriting@."
          (List.length problems);
        ignore (Corpus.update ~dir []));
    Ledger.save ~dir ledger;

    (* 3. Revalidation: exactly-once per cycle per corpus entry,
       ledger-gated.  Quarantined items are skipped; items settled by a
       previous incarnation of this cycle are skipped (crash resume). *)
    let entries = Corpus.load dir in
    let checked = ref 0 in
    let tally = Hashtbl.create 8 in
    let bump v =
      Hashtbl.replace tally v (1 + Option.value ~default:0 (Hashtbl.find_opt tally v))
    in
    List.iter
      (fun (e : Corpus.entry) ->
        if not (Campaign.stop_requested stop) then begin
          let key = (e.Corpus.e_kind, e.Corpus.e_key) in
          let prior = Hashtbl.find_opt ledger.Ledger.l_items key in
          let settled =
            match prior with
            | Some i -> i.Ledger.li_cycle >= cycle
            | None -> false
          in
          let quarantined =
            match prior with
            | Some i -> i.Ledger.li_quarantine <> ""
            | None -> false
          in
          if not (settled || quarantined) then begin
            incr revalidated_this_run;
            let self = !revalidated_this_run in
            let item_key = e.Corpus.e_kind ^ ":" ^ e.Corpus.e_key in
            let fail_all = chaos_n (fun c -> c.Chaos.c_fail_reval) = Some self in
            let attempt_once () =
              if fail_all then
                raise (Chaos.Injected_crash "chaos: injected revalidation failure");
              if e.Corpus.e_kind = "error" then
                replay_once ~resolve (Filename.concat dir e.Corpus.e_file)
              else intact_once ~dir e
            in
            (* Retry loop: a *completed* check (either answer) is
               definitive; only raised attempts retry, with the
               deterministic backoff between them. *)
            let rec attempt n =
              match attempt_once () with
              | ok -> Ok (ok, n)
              | exception exn ->
                  let msg =
                    match exn with
                    | Check_failed m -> m
                    | Chaos.Injected_crash m -> m
                    | exn -> Printexc.to_string exn
                  in
                  if Retry.exhausted retry ~attempt:n then Error (msg, n)
                  else begin
                    Unix.sleepf (Retry.delay retry ~key:item_key ~attempt:n);
                    attempt (n + 1)
                  end
            in
            let prev_verdict = Option.map (fun i -> i.Ledger.li_verdict) prior in
            let prev_strikes =
              match prior with Some i -> i.Ledger.li_strikes | None -> 0
            in
            let verdict, attempts, strikes, reason =
              match attempt 1 with
              | Ok (true, n) when e.Corpus.e_kind = "error" ->
                  let v =
                    if prev_verdict = Some Ledger.Fixed then Ledger.Regressed
                    else Ledger.Still_racy
                  in
                  (v, n, prev_strikes, "")
              | Ok (true, n) -> (Ledger.Intact, n, prev_strikes, "")
              | Ok (false, n) ->
                  (* replay completed but did not reproduce: the bug is
                     gone (or the repro rotted) — not a flake, no strike *)
                  (Ledger.Fixed, n, prev_strikes, "")
              | Error (msg, n) -> (Ledger.Failed, n, prev_strikes + 1, msg)
            in
            let quarantine =
              if strikes >= retry.Retry.rp_strikes then
                Printf.sprintf "%d consecutive failed cycle(s); last: %s"
                  strikes reason
              else ""
            in
            (* Chaos: die *before* persisting this verdict — the restart
               must redo exactly this item and nothing before it. *)
            if chaos_n (fun c -> c.Chaos.c_die_reval) = Some self then begin
              pr "chaos: SIGKILL before persisting verdict %d@." self;
              Unix.kill (Unix.getpid ()) Sys.sigkill
            end;
            Hashtbl.replace ledger.Ledger.l_items key
              {
                Ledger.li_kind = e.Corpus.e_kind;
                li_key = e.Corpus.e_key;
                li_verdict = verdict;
                li_cycle = cycle;
                li_attempts = attempts;
                li_strikes = strikes;
                li_quarantine = quarantine;
              };
            Ledger.save ~dir ledger;
            incr checked;
            bump verdict;
            if quarantine <> "" then
              pr "quarantined %s after %d strike(s): %s@." item_key strikes
                reason
            else if verdict = Ledger.Failed then
              pr "failed %s (attempt %d/%d): %s@." item_key attempts
                retry.Retry.rp_max_attempts reason
          end
        end)
      entries;

    (* 4. The cycle's verdict fingerprint: every item settled in this
       cycle (by this process or a killed predecessor), sorted, verdicts
       only — attempts excluded so retries don't perturb it. *)
    let settled_this_cycle =
      Ledger.sorted_items ledger
      |> List.filter (fun i -> i.Ledger.li_cycle = cycle)
    in
    let fingerprint =
      let h =
        List.fold_left
          (fun h (i : Ledger.item) ->
            let h = Fnv.fold_string63 h i.Ledger.li_kind in
            let h = Fnv.fold_string63 h i.Ledger.li_key in
            Fnv.fold_string63 h (Ledger.verdict_to_string i.Ledger.li_verdict))
          Fnv.basis63 settled_this_cycle
      in
      Printf.sprintf "%016x" (Fnv.mask63 h)
    in

    (* 5. Campaign wave: watched changes first (bypass the bucket, at
       most one re-run per target per cycle even under a watch storm),
       then token-paced fresh waves. *)
    let campaigns = ref 0 in
    let wact = ref (-1) in
    if not (Campaign.stop_requested stop) then begin
      let storm = chaos_n (fun c -> c.Chaos.c_watch_storm) = Some !cycles_this_run in
      if storm then pr "chaos: watch storm — every target reports changed@.";
      let corpus_targets =
        List.filter_map
          (fun (e : Corpus.entry) ->
            if e.Corpus.e_target = "" then None else Some e.Corpus.e_target)
          entries
      in
      let targets =
        List.sort_uniq compare (corpus_targets @ config.v_targets)
      in
      List.iter
        (fun name ->
          if not (Campaign.stop_requested stop) then begin
            let tg =
              match Hashtbl.find_opt ledger.Ledger.l_targets name with
              | Some tg -> tg
              | None ->
                  {
                    Ledger.lt_name = name;
                    lt_tokens = config.v_burst;
                    lt_mtime = 0.0;
                    lt_campaigns = 0;
                    lt_confirmed = "";
                  }
            in
            (* Watch: mtime polling for file targets; registry workloads
               have no file to poll and only change via storms. *)
            let mtime =
              if config.v_watch && Sys.file_exists name then
                try (Unix.stat name).Unix.st_mtime with Unix.Unix_error _ -> 0.0
              else 0.0
            in
            let changed =
              config.v_watch
              && (storm || (tg.Ledger.lt_mtime > 0.0 && mtime > tg.Ledger.lt_mtime))
            in
            let tokens =
              Float.min config.v_burst (tg.Ledger.lt_tokens +. config.v_rate)
            in
            let due = changed || tokens >= 1.0 in
            let tokens = if due && not changed then tokens -. 1.0 else tokens in
            let tg =
              { tg with Ledger.lt_tokens = tokens; lt_mtime = mtime }
            in
            let tg =
              if not due then tg
              else begin
                if changed then begin
                  pr "watch: %s changed — re-running (phase-1 cache invalidated)@."
                    name;
                  p1_cache_invalidate (p1_cache_dir ~dir name)
                end;
                match resolve name with
                | Error m ->
                    pr "serve: cannot resolve target %s: %s — skipping@." name m;
                    tg
                | Ok program ->
                    let p1, cached = phase1_for ~dir ~target:name ~seeds program in
                    pr "campaign: %s (%d candidate pair(s), phase 1 %s)@." name
                      (List.length p1.Fuzzer.potential)
                      (if cached then "from cache" else "recorded");
                    let proc =
                      Option.map
                        (fun sp -> { sp with Proc_pool.sp_target = name })
                        config.v_proc
                    in
                    let r =
                      Campaign.run ~domains:config.v_domains ~cutoff:true
                        ~seeds_per_pair:per_pair ~log ?chaos ~stop ?proc
                        ~target:name ~corpus:dir ~phase1:p1 program
                    in
                    incr campaigns;
                    let active = r.Campaign.stats.Campaign.s_proc_active in
                    wact :=
                      if !wact < 0 then active else Stdlib.min !wact active;
                    (match config.v_proc with
                    | Some sp when active < sp.Proc_pool.sp_workers ->
                        pr
                          "fleet degraded: %d/%d worker(s) — ran %s@."
                          active sp.Proc_pool.sp_workers
                          (if active = 0 then "in-process" else "under-width")
                    | _ -> ());
                    {
                      tg with
                      Ledger.lt_campaigns = tg.Ledger.lt_campaigns + 1;
                      lt_confirmed =
                        Campaign.confirmed_fingerprint r.Campaign.analysis;
                    }
              end
            in
            Hashtbl.replace ledger.Ledger.l_targets name tg;
            Ledger.save ~dir ledger
          end)
        targets
    end;

    (* 6. Seal the cycle.  Interrupted cycles are deliberately NOT
       sealed: the restart resumes them from the per-item ledger. *)
    if not (Campaign.stop_requested stop) then begin
      let wreq =
        match config.v_proc with Some sp -> sp.Proc_pool.sp_workers | None -> 0
      in
      let count v = Option.value ~default:0 (Hashtbl.find_opt tally v) in
      let c =
        {
          Ledger.lc_cycle = cycle;
          lc_fingerprint = fingerprint;
          lc_checked = List.length settled_this_cycle;
          lc_still = count Ledger.Still_racy;
          lc_fixed = count Ledger.Fixed;
          lc_regressed = count Ledger.Regressed;
          lc_intact = count Ledger.Intact;
          lc_failed = count Ledger.Failed;
          lc_campaigns = !campaigns;
          lc_wreq = wreq;
          lc_wact = (if !wact < 0 then wreq else !wact);
        }
      in
      ledger.Ledger.l_cycles <- ledger.Ledger.l_cycles @ [ c ];
      ledger.Ledger.l_cycle <- cycle + 1;
      Ledger.save ~dir ledger;
      pr
        "cycle %d done: revalidated %d of %d settled (still-racy %d, fixed %d, \
         regressed %d, intact %d, failed %d), %d campaign(s), fingerprint %s@."
        cycle !checked c.Ledger.lc_checked c.Ledger.lc_still c.Ledger.lc_fixed
        c.Ledger.lc_regressed c.Ledger.lc_intact c.Ledger.lc_failed !campaigns
        fingerprint
    end
  in

  while should_continue () do
    run_cycle ();
    if should_continue () && config.v_period > 0.0 then
      interruptible_sleep ~stop config.v_period
  done;
  if Campaign.stop_requested stop then
    pr "serve: stop requested — drained after %d completed cycle(s)@."
      (completed ())
  else pr "serve: cycle budget reached (%d) — exiting@." (completed ());
  0

(* ------------------------------------------------------------------ *)
(* serve status                                                        *)

let status ~dir =
  let ledger, lskipped = Ledger.load dir in
  let completed = List.length ledger.Ledger.l_cycles in
  pr "corpus:           %s@." dir;
  pr "cycles completed: %d@." completed;
  (match List.rev ledger.Ledger.l_cycles with
  | [] -> ()
  | last :: _ ->
      pr
        "last cycle:       #%d — %d checked: still-racy %d, fixed %d, \
         regressed %d, intact %d, failed %d@."
        last.Ledger.lc_cycle last.Ledger.lc_checked last.Ledger.lc_still
        last.Ledger.lc_fixed last.Ledger.lc_regressed last.Ledger.lc_intact
        last.Ledger.lc_failed;
      pr "verdict print:    %s@." last.Ledger.lc_fingerprint;
      pr "campaigns:        %d last cycle@." last.Ledger.lc_campaigns;
      if last.Ledger.lc_wreq > 0 then
        pr "fleet:            %d/%d worker(s)%s@." last.Ledger.lc_wact
          last.Ledger.lc_wreq
          (if last.Ledger.lc_wact < last.Ledger.lc_wreq then
             " — DEGRADED (in-process fallback)"
           else "")
      else pr "fleet:            in-process@.");
  let quarantined =
    Ledger.sorted_items ledger
    |> List.filter (fun i -> i.Ledger.li_quarantine <> "")
  in
  pr "quarantined:      %d@." (List.length quarantined);
  List.iter
    (fun (i : Ledger.item) ->
      pr "  %s:%s — %s@." i.Ledger.li_kind i.Ledger.li_key
        i.Ledger.li_quarantine)
    quarantined;
  if lskipped > 0 then pr "ledger:           %d corrupt line(s) skipped@." lskipped;
  match Corpus.verify ~dir with
  | Ok n ->
      pr "corpus verify:    OK (%d entries)@." n;
      0
  | Error problems ->
      pr "corpus verify:    FAILED (%d problem(s))@." (List.length problems);
      List.iter (fun p -> pr "  %s@." p) problems;
      1
