test/test_fuzz_rfl.ml: Alcotest Fun List QCheck QCheck_alcotest Racefuzzer Rf_detect Rf_events Rf_lang Rf_runtime Rf_util Rfl_gen Site
