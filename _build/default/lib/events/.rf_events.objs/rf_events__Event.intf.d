lib/events/event.mli: Format Loc Lockset Rf_util Site
