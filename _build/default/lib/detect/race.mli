(** Potential-race reports from phase-1 detectors: an unordered statement
    pair plus the dynamic witness (location, threads, access kinds) of its
    first detection. *)

open Rf_util
open Rf_events

type t = {
  pair : Site.Pair.t;
  loc : Loc.t;
  tids : int * int;
  accesses : Event.access * Event.access;
}

val make :
  pair:Site.Pair.t ->
  loc:Loc.t ->
  tids:int * int ->
  accesses:Event.access * Event.access ->
  t

val pair : t -> Site.Pair.t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val distinct_pairs : t list -> Site.Pair.Set.t
(** Deduplicate to distinct statement pairs — the unit Table 1 counts. *)
