(** RAPOS-style partial-order sampling (Sen, ASE 2007 [45]), the author's
    earlier undirected technique that the paper's §6 contrasts RaceFuzzer
    against.  Each round executes a randomly sampled maximal set of
    pairwise-independent pending operations, sampling partial orders
    rather than interleavings. *)

open Rf_runtime

val conflict : Op.pend -> Op.pend -> bool
(** Two pending operations are dependent: same location with a write, or
    same lock. *)

val strategy : unit -> Strategy.t
