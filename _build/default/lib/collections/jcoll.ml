(** Model of the JDK collection framework core, faithful to the concurrency
    structure of JDK 1.4.2 (paper §5.1, §5.3).

    Every collection is represented as a record of closures over
    instrumented shared cells, so the engine observes each field access the
    way the paper's tool observes bytecode field accesses.  Collections
    carry a [modCount] cell and fail-fast iterators that read it without
    any lock — exactly the JDK pattern whose races the paper reports: "the
    iterator accesses the modCount field of l2 without holding the lock on
    l2".

    The generic algorithms at the bottom replicate
    [AbstractCollection.containsAll]/[addAll]/[removeAll] and
    [AbstractList.equals]: when invoked through a synchronized wrapper (see
    {!Collections}) they hold the *receiver's* monitor but iterate the
    *argument* without its lock — the JDK 1.4.2 bug RaceFuzzer found
    exceptions for. *)

open Rf_runtime

exception Concurrent_modification = Op.Concurrent_modification
exception No_such_element = Op.No_such_element

(** Fail-fast iterator: [has_next]/[next], Java style. *)
type iter = { has_next : unit -> bool; next : unit -> int }

(** A collection "object".  All closures are *unsynchronized* unless the
    record was produced by a synchronized wrapper; [monitor] is the monitor
    a wrapper synchronizes on. *)
type t = {
  cname : string;  (** concrete class name, for reports *)
  monitor : Lock.t;
  size : unit -> int;
  is_empty : unit -> bool;
  add : int -> bool;  (** list: append (returns true); set: add-if-absent *)
  remove : int -> bool;  (** remove one occurrence by value *)
  contains : int -> bool;
  clear : unit -> unit;
  iterator : unit -> iter;
  to_list_dbg : unit -> int list;  (** uninstrumented snapshot, tests only *)
  synchronized : bool;
}


let fold_iter f init (it : iter) =
  let acc = ref init in
  while it.has_next () do
    acc := f !acc (it.next ())
  done;
  !acc

(** [containsAll c1 c2] — iterates [c2] via its iterator and probes [c1].
    No lock on [c2] is taken here, mirroring AbstractCollection. *)
let contains_all (c1 : t) (c2 : t) =
  let it = c2.iterator () in
  let ok = ref true in
  while !ok && it.has_next () do
    if not (c1.contains (it.next ())) then ok := false
  done;
  !ok

(** [addAll c1 c2] — appends every element of [c2] to [c1]. *)
let add_all (c1 : t) (c2 : t) =
  fold_iter
    (fun changed e ->
      let b = c1.add e in
      changed || b)
    false (c2.iterator ())

(** [removeAll c1 c2] — removes from [c1] every element present in [c2]. *)
let remove_all (c1 : t) (c2 : t) =
  fold_iter
    (fun changed e ->
      let b = c1.remove e in
      changed || b)
    false (c2.iterator ())

(** [equals c1 c2] — AbstractList.equals: lock-free lock-step iteration
    over both collections. *)
let equals (c1 : t) (c2 : t) =
  let i1 = c1.iterator () and i2 = c2.iterator () in
  let rec go () =
    match (i1.has_next (), i2.has_next ()) with
    | true, true -> if i1.next () = i2.next () then go () else false
    | false, false -> true
    | _ -> false
  in
  go ()

(** Drain an iterator into a list (instrumented). *)
let elements (c : t) = List.rev (fold_iter (fun acc e -> e :: acc) [] (c.iterator ()))
