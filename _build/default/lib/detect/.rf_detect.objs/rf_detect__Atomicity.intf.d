lib/detect/atomicity.mli: Format Loc Rf_events Rf_util Site
