(** Analogue of [jigsaw] (W3C's Jigsaw web server, paper Table 1: by far
    the most potential races — 547 — of which 36 were confirmed real, no
    exceptions, race-creation probability 0.90).

    Scaled to our model server: four handler threads serve statically
    assigned requests against a shared resource store.  Each handler has
    its own copy of the access-logging code (Jigsaw's handlers are distinct
    classes, so races land on distinct statement pairs), and the access
    counter is incremented with no lock — every cross-handler (read, write)
    and (write, write) statement pair on the counter is a *real* benign
    race, giving a large real set like Jigsaw's 36.  Some handlers serve
    only one request, so a directed scheduler occasionally finds its
    partner already past the racing statement: race-creation probability
    lands below 1.0, matching the paper's 0.90.  A configuration handshake
    farm supplies the false-positive bulk.  The resource store itself is
    properly synchronized. *)

open Rf_util
open Rf_runtime

let file = "jigsaw"
let s line label = Site.make ~file ~line label

let nhandlers = 4

(* per-handler logging sites: handler h executes only its own pair *)
let site_hits_r = Array.init nhandlers (fun h -> s (10 + (2 * h)) (Printf.sprintf "handler%d:hits(read)" h))
let site_hits_w = Array.init nhandlers (fun h -> s (11 + (2 * h)) (Printf.sprintf "handler%d:hits(write)" h))

let site_store_sync = s 1 "store.sync"
let site_store_r = s 2 "store[i](read)"
let site_store_w = s 3 "store[i](write)"

(* All cross-handler pairs on the hit counter are real. *)
let real_pairs () =
  let pairs = ref [] in
  for i = 0 to nhandlers - 1 do
    for j = 0 to nhandlers - 1 do
      if i <> j then
        pairs := Site.Pair.make site_hits_r.(i) site_hits_w.(j) :: !pairs;
      if i < j then pairs := Site.Pair.make site_hits_w.(i) site_hits_w.(j) :: !pairs
    done
  done;
  List.sort_uniq Site.Pair.compare !pairs

let program ?(nresources = 6) () =
  let farm = Common.Farm.create ~file ~base_line:100 20 in
  let store = Api.Sarray.init nresources (fun i -> 100 + i) in
  let store_lock = Lock.create ~name:"store" () in
  let hits = Api.Cell.make ~name:"hits" 0 in
  let serve h resource =
    (* properly synchronized resource access *)
    let body =
      Api.sync ~site:site_store_sync store_lock (fun () ->
          let v = Api.Sarray.get ~site:site_store_r store (resource mod nresources) in
          Api.Sarray.set ~site:site_store_w store (resource mod nresources) (v + 1);
          v)
    in
    (* Jigsaw's unsynchronized access counting, one code copy per handler *)
    Api.Cell.write ~site:site_hits_w.(h) hits
      (Api.Cell.read ~site:site_hits_r.(h) hits + 1);
    body
  in
  (* static request assignment: handlers 0-1 are busy, 2-3 serve once *)
  let requests h = match h with 0 -> [ 0; 2; 4 ] | 1 -> [ 1; 3; 5 ] | 2 -> [ 0 ] | _ -> [ 3 ] in
  let mon =
    Api.fork ~name:"config-monitor" (fun () -> Common.Farm.consume_rounds farm 35)
  in
  let hs =
    List.init nhandlers (fun h ->
        Api.fork ~name:(Printf.sprintf "handler%d" h) (fun () ->
            List.iter (fun r -> ignore (serve h r)) (requests h)))
  in
  Common.Farm.publish farm 8000;
  List.iter Api.join hs;
  Api.join mon

let workload =
  Workload.make ~name:"jigsaw"
    ~descr:"Jigsaw web-server analogue: per-handler counter races, config handshakes"
    ~sloc:96 ~expected_real:(Some 10) ~interactive:true (fun () -> program ())
