(** Unified detector interface and drivers.

    Wraps the concrete detectors behind one record type so callers (phase-1
    drivers, the CLI, benches) can treat them uniformly, either as engine
    listeners (online) or over a recorded trace (offline). *)

open Rf_util
open Rf_events

type stats = {
  st_entries : int;
  st_mem_events : int;
  st_miss_bound : float option;
}

type t = {
  dname : string;
  feed : Event.t -> unit;
  races : unit -> Race.t list;
  pairs : unit -> Site.Pair.Set.t;
  stats : unit -> stats;
}

let name t = t.dname
let feed t ev = t.feed ev
let races t = t.races ()
let pairs t = t.pairs ()
let race_count t = Site.Pair.Set.cardinal (t.pairs ())
let stats t = t.stats ()
let no_stats () = { st_entries = 0; st_mem_events = 0; st_miss_bound = None }

let hybrid ?cap ?governor () =
  let d = Hybrid.create ?cap ?governor () in
  {
    dname = "hybrid";
    feed = Hybrid.feed d;
    races = (fun () -> Hybrid.races d);
    pairs = (fun () -> Hybrid.pairs d);
    stats =
      (fun () ->
        {
          st_entries = Access_detector.state_entries d;
          st_mem_events = Hybrid.mem_events d;
          st_miss_bound = None;
        });
  }

let hb_precise ?cap ?governor () =
  let d = Hb_precise.create ?cap ?governor () in
  {
    dname = "happens-before";
    feed = Hb_precise.feed d;
    races = (fun () -> Hb_precise.races d);
    pairs = (fun () -> Hb_precise.pairs d);
    stats =
      (fun () ->
        {
          st_entries = Access_detector.state_entries d;
          st_mem_events = Hb_precise.mem_events d;
          st_miss_bound = None;
        });
  }

let fasttrack ?governor () =
  let d = Fasttrack.create ?governor () in
  {
    dname = "fasttrack";
    feed = Fasttrack.feed d;
    races = (fun () -> Fasttrack.races d);
    pairs = (fun () -> Fasttrack.pairs d);
    stats = no_stats;
  }

let eraser ?site_cap ?governor () =
  let d = Eraser.create ?site_cap ?governor () in
  {
    dname = "eraser";
    feed = Eraser.feed d;
    races = (fun () -> Eraser.races d);
    pairs = (fun () -> Eraser.pairs d);
    stats = no_stats;
  }

let sampling ?k ?seed ?governor () =
  let d = Sampling.create ?k ?seed ?governor () in
  {
    dname = "sampling";
    feed = Sampling.feed d;
    races = (fun () -> Sampling.races d);
    pairs = (fun () -> Sampling.pairs d);
    stats =
      (fun () ->
        {
          st_entries = Sampling.state_entries d;
          st_mem_events = Sampling.mem_events d;
          st_miss_bound = Some (Sampling.miss_bound d);
        });
  }

(** Feed a recorded trace through a detector (offline analysis). *)
let run_on_trace t trace =
  Trace.iter (fun ev -> feed t ev) trace;
  races t
