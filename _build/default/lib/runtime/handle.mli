(** Thread handles, returned by {!Api.fork} and consumed by {!Api.join} and
    {!Api.interrupt}. *)

type t

val make : tid:int -> name:string -> t
val tid : t -> int
val name : t -> string
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
