(** Lock-order-cycle detection (Goodlock-style): phase 1 of the
    deadlock-directed variant the paper's §1 sketches.  Builds the runtime
    lock-order graph and reports simple cycles acquired by distinct
    threads as sets of *inner* acquire statements for
    {!Racefuzzer.Deadlock_fuzzer} to target.  Over-approximate: gate-lock
    protected cycles are reported and left for phase 2 to reject. *)

open Rf_util
open Rf_events

type candidate = {
  locks : int list;  (** the cycle's locks, in canonical rotation *)
  sites : Site.t list;  (** the inner-acquire statements *)
  tids : int list;  (** witness thread per edge *)
}

type t

val create : unit -> t
val feed : t -> Event.t -> unit

val candidates : ?max_len:int -> t -> candidate list
(** Simple cycles up to [max_len] locks (default 4), each edge from a
    distinct thread, deduplicated by canonical rotation. *)

val site_pair : candidate -> Site.Pair.t
(** First two sites as a pair (for two-lock cycles and display). *)

val pp_candidate : Format.formatter -> candidate -> unit
