lib/collections/hash_set.ml: Api Jcoll List Lock Op Rf_runtime Rf_util Site
