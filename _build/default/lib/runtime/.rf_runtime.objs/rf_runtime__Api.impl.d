lib/runtime/api.ml: Array Fmt Fun Loc Op Rf_events Rf_util Site
