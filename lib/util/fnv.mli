(** FNV-1a-64 — the one hash used to seal every durable artifact.

    The campaign journal, binary trace frames, IPC frames, chaos keys,
    reservoir victim picks and the corpus index all seal or key their
    payloads with the same polynomial; this module is the single
    definition.  Two presentations are exposed:

    - {!hash64} / {!hash64_sub}: the full 64-bit digest, used for binary
      frame seals where the checksum is stored as a little-endian
      [int64];
    - the [*63] family: the historical native-[int] computation from a
      63-bit-truncated offset basis.  The journal [crc] field ({!hex63}),
      chaos fault keys and detector reservoir picks were written against
      this arithmetic before the module existed and must stay bit-for-bit
      stable, so the folds are exposed for callers to thread state
      through.  New binary formats should use {!hash64}. *)

val offset : int64
(** [0xCBF29CE484222325L], the FNV-1a-64 offset basis. *)

val prime : int64
(** [0x100000001B3L], the FNV-1a-64 prime. *)

val hash64_sub : string -> pos:int -> len:int -> int64
(** Digest of [len] bytes of the string starting at [pos]. *)

val hash64 : string -> int64
(** Digest of the whole string. *)

val basis63 : int
(** The offset basis truncated to OCaml's 63-bit [int]. *)

val prime63 : int
(** The FNV-1a-64 prime as a native [int]. *)

val fold_byte63 : int -> int -> int
(** [fold_byte63 h byte] absorbs the low 8 bits of [byte] into [h]. *)

val fold_int63 : int -> int -> int
(** Absorbs the 8 little-endian bytes of an [int] (arithmetic shift, so
    negative values mix their sign bits rather than truncating). *)

val fold_string63 : int -> string -> int
(** Absorbs every byte of the string. *)

val mask63 : int -> int
(** Masks a fold result to a non-negative [int] ([land max_int]). *)

val hex63 : string -> string
(** Whole-string 63-bit digest as 16 lowercase hex digits — the
    historical journal [crc] encoding. *)
