lib/runtime/lock.ml: Domain Fmt Int Printf
