(** Regeneration of the paper's Figure 1 walkthrough (§3.1): phase 1 must
    predict exactly the pairs {(5,7), (1,10)}; phase 2 must confirm (5,7)
    as a real, ERROR1-producing race and reject (1,10) as a false alarm. *)

open Rf_util
open Racefuzzer
module W = Rf_workloads

type result = {
  potential : Site.Pair.Set.t;
  real : Fuzzer.pair_result;  (** the (5,7) candidate *)
  false_alarm : Fuzzer.pair_result;  (** the (1,10) candidate *)
}

let generate ?(phase1_seeds = List.init 10 Fun.id) ?(trials = 100) () =
  let seeds = List.init trials Fun.id in
  let p1 = Fuzzer.phase1 ~seeds:phase1_seeds W.Figure1.program in
  {
    potential = Fuzzer.potential_pairs p1;
    real = Fuzzer.fuzz_pair ~seeds ~program:W.Figure1.program W.Figure1.real_pair;
    false_alarm =
      Fuzzer.fuzz_pair ~seeds ~program:W.Figure1.program W.Figure1.false_pair;
  }

let render ppf r =
  Fmt.pf ppf "phase 1 (hybrid) potential pairs:@.";
  Site.Pair.Set.iter (fun p -> Fmt.pf ppf "  %a@." Site.Pair.pp p) r.potential;
  let line tag (pr : Fuzzer.pair_result) =
    let n = List.length pr.Fuzzer.trials in
    Fmt.pf ppf "%s %a: race %d/%d (p=%.2f), ERROR %d/%d -> %s@." tag Site.Pair.pp
      pr.Fuzzer.pr_pair pr.Fuzzer.race_trials n pr.Fuzzer.probability
      pr.Fuzzer.error_trials n
      (if Fuzzer.is_real pr then
         if Fuzzer.is_harmful pr then "REAL RACE, HARMFUL" else "REAL RACE (benign)"
       else "false alarm rejected")
  in
  line "phase 2" r.real;
  line "phase 2" r.false_alarm
