lib/core/atom_fuzzer.ml: Algo Engine Fun Hashtbl List Op Outcome Prng Rf_detect Rf_events Rf_runtime Rf_util Site Strategy
