(* racefuzzer — command-line interface.

   Subcommands:
     run       execute an RFL program under a chosen scheduler
     detect    phase 1: report potential races in an RFL program
     fuzz      full two-phase analysis of an RFL program
     replay    re-run an execution: recorded schedule file, or RFL seed+pair
     shrink    minimize a recorded failing schedule by delta debugging
     deadlock  deadlock-directed testing (Goodlock cycles + postponement)
     atomicity atomicity-directed testing (split transactions)
     campaign  parallel whole-program campaign over a domain pool or
               crash-isolated worker processes (--workers)
     corpus    list/verify a persistent cross-campaign corpus
     offline   offline race detection over saved binary traces
     workload  analyze a built-in Table-1 workload analogue
     list      list built-in workloads
     table1    regenerate the paper's Table 1
     figure2   regenerate the paper's Figure 2 series *)

open Cmdliner
open Rf_util

let strategy_of_name = function
  | "random" -> Ok (Rf_runtime.Strategy.random ())
  | "round-robin" | "rr" -> Ok (Rf_runtime.Strategy.round_robin ())
  | "default" | "timesliced" -> Ok (Rf_runtime.Strategy.timesliced ())
  | "run-until-block" -> Ok (Rf_runtime.Strategy.run_until_block ())
  | "rapos" -> Ok (Racefuzzer.Rapos.strategy ())
  | s -> Error (Fmt.str "unknown strategy %S" s)

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"RFL source file.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed (replayable).")

let seeds_arg default =
  Arg.(
    value & opt int default
    & info [ "trials" ] ~docv:"N" ~doc:"Number of seeds/trials per experiment.")

let strategy_arg =
  Arg.(
    value
    & opt string "random"
    & info [ "strategy" ] ~docv:"NAME"
        ~doc:"Scheduler: random, round-robin, default, run-until-block, rapos.")

let load file =
  try Ok (Rf_lang.Lang.load_file file) with
  | Rf_lang.Lang.Error m -> Error m
  | Sys_error m -> Error m

(* Resource-governance flags, shared by 'fuzz' and 'campaign'. *)

let detector_budget_arg =
  Arg.(
    value & opt (some int) None
    & info [ "detector-budget" ] ~docv:"N"
        ~doc:
          "Cap detector analysis state at $(docv) logical entries.  Over budget, \
           the run steps down the degradation ladder (full -> sampled -> \
           lockset-only) and completes with explicitly degraded results instead \
           of growing without bound.  Deterministic: same seed, same ladder \
           level, same fingerprint, on any --domains.")

let mem_budget_arg =
  Arg.(
    value & opt (some float) None
    & info [ "mem-budget" ] ~docv:"MB"
        ~doc:
          "Heap watermark in megabytes, polled at the engine's watchdog points — \
           a physical backstop behind --detector-budget.  Crossing it degrades \
           the run one ladder rung (and cancels the trial once at the bottom \
           rung).  Unlike --detector-budget this is not determinism-preserving.")

let no_degrade_arg =
  Arg.(
    value & flag
    & info [ "no-degrade" ]
        ~doc:
          "Fail fast instead of degrading: the first budget trip cancels the \
           trial (campaign phase 2) or aborts the analysis (phase 1, exit 2).")

let pp_p1_degraded (a : Racefuzzer.Fuzzer.analysis) =
  match a.Racefuzzer.Fuzzer.a_phase1.Racefuzzer.Fuzzer.p1_degraded with
  | Some s ->
      Fmt.pr "DEGRADED: phase 1 completed at %s precision (resource budget)@."
        (Rf_resource.Governor.level_to_string s.Rf_resource.Governor.g_level)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let run_cmd =
  let trace_arg =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")
  in
  let action file seed strategy trace =
    match load file with
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
    | Ok prog -> (
        match strategy_of_name strategy with
        | Error m ->
            Fmt.epr "%s@." m;
            exit 1
        | Ok strat ->
            let main = Rf_lang.Lang.program prog in
            let o =
              Rf_runtime.Engine.run
                ~config:
                  { Rf_runtime.Engine.default_config with seed; record_trace = trace }
                ~strategy:strat main
            in
            Fmt.pr "%a@." Rf_runtime.Outcome.pp o;
            (match o.Rf_runtime.Outcome.trace with
            | Some tr when trace -> Fmt.pr "@.%a" Rf_events.Trace.pp tr
            | _ -> ());
            if not (Rf_runtime.Outcome.ok o) then exit 1)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute an RFL program under a chosen scheduler.")
    Term.(const action $ file_arg $ seed_arg $ strategy_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* detect                                                              *)

let detect_cmd =
  let detector_arg =
    Arg.(
      value & opt string "hybrid"
      & info [ "detector" ] ~docv:"NAME"
          ~doc:"hybrid, hb (precise), fasttrack, eraser, or sampling.")
  in
  let action file detector trials =
    match load file with
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
    | Ok prog ->
        let mk =
          match detector with
          | "hybrid" -> Rf_detect.Detector.hybrid ~cap:128
          | "hb" | "happens-before" -> Rf_detect.Detector.hb_precise ~cap:128
          | "fasttrack" -> Rf_detect.Detector.fasttrack
          | "eraser" -> Rf_detect.Detector.eraser ~site_cap:16
          | "sampling" -> Rf_detect.Detector.sampling ~k:4 ~seed:0
          | s ->
              Fmt.epr "unknown detector %S@." s;
              exit 1
        in
        let d = mk () in
        let main = Rf_lang.Lang.program ~print:ignore prog in
        List.iter
          (fun seed ->
            ignore
              (Rf_runtime.Engine.run
                 ~config:{ Rf_runtime.Engine.default_config with seed }
                 ~listeners:[ Rf_detect.Detector.feed d ]
                 ~strategy:(Rf_runtime.Strategy.random ()) main))
          (List.init trials Fun.id);
        let races = Rf_detect.Detector.races d in
        Fmt.pr "%s: %d potential racing statement pair(s)@."
          (Rf_detect.Detector.name d)
          (List.length races);
        List.iter (fun r -> Fmt.pr "  %a@." Rf_detect.Race.pp r) races;
        (match (Rf_detect.Detector.stats d).Rf_detect.Detector.st_miss_bound with
        | Some b -> Fmt.pr "miss bound <= %.6f@." b
        | None -> ())
  in
  Cmd.v
    (Cmd.info "detect" ~doc:"Phase 1: report potential races in an RFL program.")
    Term.(const action $ file_arg $ detector_arg $ seeds_arg 5)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let print_analysis (a : Racefuzzer.Fuzzer.analysis) =
  let potential = Racefuzzer.Fuzzer.potential_pairs a.Racefuzzer.Fuzzer.a_phase1 in
  Fmt.pr "phase 1: %d potential racing pair(s)@." (Site.Pair.Set.cardinal potential);
  List.iter
    (fun (r : Racefuzzer.Fuzzer.pair_result) ->
      let n = List.length r.Racefuzzer.Fuzzer.trials in
      let verdict =
        if Racefuzzer.Fuzzer.is_harmful r then "REAL RACE — HARMFUL"
        else if Racefuzzer.Fuzzer.is_real r then "REAL RACE (benign here)"
        else "false alarm"
      in
      Fmt.pr "  %a: race %d/%d, errors %d, deadlocks %d -> %s@." Site.Pair.pp
        r.Racefuzzer.Fuzzer.pr_pair r.Racefuzzer.Fuzzer.race_trials n
        r.Racefuzzer.Fuzzer.error_trials r.Racefuzzer.Fuzzer.deadlock_trials verdict;
      Option.iter
        (fun seed -> Fmt.pr "      replay race with:  --seed %d@." seed)
        r.Racefuzzer.Fuzzer.race_seed;
      Option.iter
        (fun seed -> Fmt.pr "      replay error with: --seed %d@." seed)
        r.Racefuzzer.Fuzzer.error_seed)
    a.Racefuzzer.Fuzzer.results;
  Fmt.pr "summary: %d real (%d harmful) of %d potential@."
    (Site.Pair.Set.cardinal a.Racefuzzer.Fuzzer.real_pairs)
    (Site.Pair.Set.cardinal a.Racefuzzer.Fuzzer.error_pairs)
    (Site.Pair.Set.cardinal potential)

let fuzz_cmd =
  let p1_arg =
    Arg.(
      value & opt int 5
      & info [ "phase1-seeds" ] ~docv:"N" ~doc:"Executions observed by hybrid detection.")
  in
  let static_filter_arg =
    Arg.(
      value & flag
      & info [ "static-filter" ]
          ~doc:
            "Statically analyze the program first and skip phase-2 fuzzing of \
             candidate pairs proved unable to race; surviving pairs are fuzzed \
             Likely-first.")
  in
  let action file p1 trials static_filter detector_budget mem_budget no_degrade =
    match load file with
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
    | Ok prog -> (
        let main = Rf_lang.Lang.program ~print:ignore prog in
        let static = Rf_static.Static.of_program prog in
        match
          Racefuzzer.Fuzzer.analyze
            ~phase1_seeds:(List.init p1 Fun.id)
            ~seeds_per_pair:(List.init trials Fun.id)
            ~static ~static_filter ?detector_budget ?mem_budget ~no_degrade main
        with
        | a ->
            pp_p1_degraded a;
            List.iter
              (fun (p, v) ->
                Fmt.pr "filtered: %a — %s@." Site.Pair.pp p
                  (Rf_static.Static.verdict_to_string v))
              a.Racefuzzer.Fuzzer.a_filtered;
            print_analysis a
        | exception Rf_resource.Governor.Budget_stop trigger ->
            Fmt.epr "resource budget exhausted (%s) under --no-degrade@."
              (Rf_resource.Governor.trigger_to_string trigger);
            exit 2
        | exception e ->
            (* The sequential driver is unsandboxed: a harness crash aborts
               the analysis.  Use 'campaign' for fault-tolerant runs. *)
            Fmt.epr "harness crash: %s@.%s@." (Printexc.to_string e)
              (Printexc.get_backtrace ());
            exit 2)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Full two-phase RaceFuzzer analysis of an RFL program. With \
          --detector-budget/--mem-budget, phase 1 runs resource-governed and \
          degrades gracefully instead of exhausting memory.")
    Term.(
      const action $ file_arg $ p1_arg $ seeds_arg 100 $ static_filter_arg
      $ detector_budget_arg $ mem_budget_arg $ no_degrade_arg)

(* ------------------------------------------------------------------ *)
(* replay / shrink                                                     *)

(* A recorded schedule names its target program; resolve it the same way
   'campaign' resolves its TARGET argument, so artifacts written by
   'campaign --repro-dir' replay without extra flags. *)
let resolve_target target =
  match Rf_workloads.Registry.find target with
  | Some w -> Ok w.Rf_workloads.Workload.program
  | None -> (
      if target = "" then
        Error "schedule records no target program (empty \"target\" field)"
      else
        match load target with
        | Ok prog -> Ok (Rf_lang.Lang.program ~print:ignore prog)
        | Error m ->
            Error
              (Fmt.str
                 "schedule target %S is neither a built-in workload (see \
                  'racefuzzer list') nor a loadable RFL file:@.%s" target m))

(* A *.sched.json positional is replayed from its recording; anything else
   is treated as an RFL file for the historical seed-based replay. *)
let is_schedule_file file =
  Filename.check_suffix file ".sched.json"
  ||
  match open_in_bin file with
  | ic ->
      let len = min 256 (in_channel_length ic) in
      let head = really_input_string ic len in
      close_in ic;
      let rec find i =
        i + 11 <= String.length head
        && (String.sub head i 11 = "rf-schedule" || find (i + 1))
      in
      find 0
  | exception Sys_error _ -> false

let replay_schedule_action file verbose =
  match Rf_replay.Schedule.load file with
  | exception Rf_replay.Schedule.Format_error m ->
      Fmt.epr "%s@." m;
      exit 4
  | exception Sys_error m ->
      Fmt.epr "%s@." m;
      exit 4
  | sched -> (
      let meta = sched.Rf_replay.Schedule.meta in
      match resolve_target meta.Rf_replay.Schedule.m_target with
      | Error m ->
          Fmt.epr "%s@." m;
          exit 1
      | Ok program ->
          Fmt.pr "%a@." Rf_replay.Schedule.pp sched;
          if verbose then Fmt.pr "@.%a@." Rf_replay.Schedule.pp_narrative sched;
          let o, status = Racefuzzer.Fuzzer.replay_schedule ~program sched in
          Fmt.pr "%a@." Rf_runtime.Outcome.pp o;
          let got = Rf_replay.Schedule.error_fingerprint o in
          (match status.Rf_replay.Replayer.divergence with
          | Some d ->
              Fmt.epr "DIVERGED at %a@." Rf_replay.Replayer.pp_divergence d;
              exit 4
          | None -> ());
          let want = meta.Rf_replay.Schedule.m_error in
          if got = want then
            Fmt.pr "reproduced: %s@."
              (match want with Some e -> e | None -> "clean run (no error recorded)")
          else begin
            Fmt.epr "MISMATCH: schedule records %s, replay produced %s@."
              (match want with Some e -> e | None -> "no error")
              (match got with Some e -> e | None -> "no error");
            exit 4
          end)

let replay_cmd =
  let pair_arg =
    Arg.(
      value
      & opt (some (pair ~sep:':' int int)) None
      & info [ "pair" ] ~docv:"L1:L2"
          ~doc:"Racing pair as two source line numbers (seed-replay mode).")
  in
  let verbose_arg =
    Arg.(
      value & flag
      & info [ "narrative" ] ~doc:"Print every scheduling decision before replaying.")
  in
  let action file seed pair_opt verbose =
    if is_schedule_file file then replay_schedule_action file verbose
    else
      match load file with
      | Error m ->
          Fmt.epr "%s@." m;
          exit 1
      | Ok prog -> (
          let l1, l2 =
            match pair_opt with
            | Some p -> p
            | None ->
                Fmt.epr "--pair L1:L2 is required to replay an RFL file from a seed \
                         (schedule files carry their pair)@.";
                exit 1
          in
          let base = Filename.basename file in
          (* sites are registered as statements execute: warm the registry
             with a few throwaway runs so line lookup sees all sites *)
          let warm = Rf_lang.Lang.program ~print:ignore prog in
          List.iter
            (fun s ->
              ignore
                (Rf_runtime.Engine.run
                   ~config:{ Rf_runtime.Engine.default_config with seed = s }
                   ~strategy:(Rf_runtime.Strategy.random ()) warm))
            [ 0; 1; 2 ];
          let sites_at l = Site.find_by_line ~file:base ~line:l in
          match (sites_at l1, sites_at l2) with
          | s1 :: _, s2 :: _ ->
              let main = Rf_lang.Lang.program prog in
              let pair = Site.Pair.make s1 s2 in
              let o, report = Racefuzzer.Fuzzer.replay ~seed ~program:main pair in
              List.iter
                (fun h -> Fmt.pr "%a@." Racefuzzer.Algo.pp_hit h)
                (Racefuzzer.Algo.hits report);
              Fmt.pr "%a@." Rf_runtime.Outcome.pp o
          | _ ->
              Fmt.epr "no statement sites found on lines %d/%d of %s@." l1 l2 base;
              exit 1)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay an execution: from a recorded *.sched.json schedule (step-exact, \
          validating each decision), or from an RFL file with --seed/--pair (paper \
          §2.2 seed replay). Exit status for schedules: 0 when the recorded error \
          fingerprint is reproduced without divergence, 4 on divergence, \
          fingerprint mismatch, or an unreadable/corrupt schedule file.")
    Term.(const action $ file_arg $ seed_arg $ pair_arg $ verbose_arg)

let shrink_cmd =
  let sched_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"SCHEDULE" ~doc:"Recorded *.sched.json schedule to minimize.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the minimized schedule to $(docv) (default: SCHEDULE with a \
                .min.sched.json suffix).")
  in
  let fuel_arg =
    Arg.(
      value & opt int 400
      & info [ "fuel" ] ~docv:"N" ~doc:"Maximum oracle executions spent minimizing.")
  in
  let action file out fuel =
    match Rf_replay.Schedule.load file with
    | exception Rf_replay.Schedule.Format_error m ->
        Fmt.epr "%s@." m;
        exit 4
    | exception Sys_error m ->
        Fmt.epr "%s@." m;
        exit 4
    | sched -> (
        let meta = sched.Rf_replay.Schedule.meta in
        match resolve_target meta.Rf_replay.Schedule.m_target with
        | Error m ->
            Fmt.epr "%s@." m;
            exit 1
        | Ok program -> (
            match Racefuzzer.Fuzzer.minimize_schedule ~fuel ~program sched with
            | None ->
                Fmt.epr "cannot reproduce the schedule's error (%s) — nothing to \
                         minimize@."
                  (match meta.Rf_replay.Schedule.m_error with
                  | Some e -> e
                  | None -> "none recorded");
                exit 4
            | Some (minimized, stats) ->
                let out =
                  match out with
                  | Some o -> o
                  | None ->
                      (if Filename.check_suffix file ".sched.json" then
                         Filename.chop_suffix file ".sched.json"
                       else file)
                      ^ ".min.sched.json"
                in
                Rf_replay.Schedule.save out minimized;
                Fmt.pr "%a@." Rf_replay.Shrinker.pp_stats stats;
                Fmt.pr "minimized schedule: %s@." out))
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Minimize a recorded failing schedule by delta debugging: shortest \
          reproducing prefix, ddmin chunk deletion and context-switch coalescing, \
          every candidate validated by re-execution. Exit status: 0 on success, 4 \
          when the schedule's error cannot be reproduced at all or the schedule \
          file is unreadable/corrupt.")
    Term.(const action $ sched_arg $ out_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* deadlock                                                            *)

let deadlock_cmd =
  let action file trials =
    match load file with
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
    | Ok prog ->
        let main = Rf_lang.Lang.program ~print:ignore prog in
        let results =
          Racefuzzer.Deadlock_fuzzer.analyze
            ~phase1_seeds:(List.init 5 Fun.id)
            ~seeds_per_candidate:(List.init trials Fun.id)
            main
        in
        if results = [] then Fmt.pr "no potential lock-order cycles found@."
        else
          List.iter
            (fun (r : Racefuzzer.Deadlock_fuzzer.candidate_result) ->
              Fmt.pr "%a@."
                Rf_detect.Goodlock.pp_candidate r.Racefuzzer.Deadlock_fuzzer.dc_candidate;
              Fmt.pr "  realized in %d/%d trials -> %s@."
                r.Racefuzzer.Deadlock_fuzzer.dc_deadlock_trials
                r.Racefuzzer.Deadlock_fuzzer.dc_trials
                (if Racefuzzer.Deadlock_fuzzer.is_real r then "REAL DEADLOCK"
                 else "false alarm");
              Option.iter
                (fun seed -> Fmt.pr "  replay with seed %d@." seed)
                r.Racefuzzer.Deadlock_fuzzer.dc_seed)
            results
  in
  Cmd.v
    (Cmd.info "deadlock"
       ~doc:
         "Deadlock-directed testing: find lock-order cycles and try to realize \
          them (paper §1 generalization).")
    Term.(const action $ file_arg $ seeds_arg 50)

(* ------------------------------------------------------------------ *)
(* atomicity                                                           *)

let atomicity_cmd =
  let action file trials =
    match load file with
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
    | Ok prog ->
        let main = Rf_lang.Lang.program ~print:ignore prog in
        let results =
          Racefuzzer.Atom_fuzzer.analyze
            ~phase1_seeds:(List.init 5 Fun.id)
            ~seeds_per_candidate:(List.init trials Fun.id)
            main
        in
        if results = [] then Fmt.pr "no split transactions found@."
        else
          List.iter
            (fun (r : Racefuzzer.Atom_fuzzer.candidate_result) ->
              Fmt.pr "%a@." Rf_detect.Atomicity.pp_candidate
                r.Racefuzzer.Atom_fuzzer.ac_candidate;
              Fmt.pr "  violated in %d/%d trials (%d with uncaught exceptions) -> %s@."
                r.Racefuzzer.Atom_fuzzer.ac_violation_trials
                r.Racefuzzer.Atom_fuzzer.ac_trials
                r.Racefuzzer.Atom_fuzzer.ac_error_trials
                (if Racefuzzer.Atom_fuzzer.is_harmful r then "REAL, HARMFUL"
                 else if Racefuzzer.Atom_fuzzer.is_real r then "REAL (benign here)"
                 else "not realized");
              Option.iter
                (fun seed -> Fmt.pr "  replay with seed %d@." seed)
                r.Racefuzzer.Atom_fuzzer.ac_seed)
            results
  in
  Cmd.v
    (Cmd.info "atomicity"
       ~doc:
         "Atomicity-directed testing: find split lock-protected transactions and \
          land interfering writes in the gap (paper §1 generalization).")
    Term.(const action $ file_arg $ seeds_arg 50)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)

let campaign_cmd =
  let target_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"TARGET" ~doc:"RFL source file or built-in workload name.")
  in
  let domains_arg =
    Arg.(
      value & opt int 4
      & info [ "domains" ] ~docv:"N" ~doc:"Worker domains draining the trial queue.")
  in
  let budget_arg =
    Arg.(
      value & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Total trial budget across all pairs; trials freed by early cutoff are \
             reallocated to unresolved pairs (default: pairs x trials).")
  in
  let log_arg =
    Arg.(
      value & opt (some string) None
      & info [ "log" ] ~docv:"FILE" ~doc:"Write a JSONL progress/event log to $(docv).")
  in
  let no_cutoff_arg =
    Arg.(
      value & flag
      & info [ "no-cutoff" ]
          ~doc:
            "Disable early cutoff: run every granted trial, making the result \
             bit-identical to the sequential 'fuzz' analysis.")
  in
  let p1_arg =
    Arg.(
      value & opt int 5
      & info [ "phase1-seeds" ] ~docv:"N" ~doc:"Executions observed by hybrid detection.")
  in
  let chaos_arg =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Inject deterministic faults (harness crashes, stalls, worker deaths) to \
             exercise the campaign's sandboxing, supervision and quarantine paths. \
             Faults are pure functions of --chaos-seed, so chaos runs are \
             reproducible.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"N" ~doc:"Seed for the chaos fault plan.")
  in
  let chaos_stop_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-stop-after" ] ~docv:"N"
          ~doc:
            "Request a graceful stop after N executed trials — a deterministic \
             'kill' for checkpoint/resume testing.")
  in
  let trial_deadline_arg =
    Arg.(
      value & opt (some float) None
      & info [ "trial-deadline" ] ~docv:"SECS"
          ~doc:"Cancel any single trial that runs longer than $(docv) wall-clock.")
  in
  let resume_arg =
    Arg.(
      value & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from the JSONL journal of an earlier interrupted run: trials it \
             already settled are replayed instead of re-executed, and the final \
             report is identical to an uninterrupted run's.")
  in
  let repro_dir_arg =
    Arg.(
      value & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "After the campaign, write one minimized reproduction schedule \
             (repro-*.sched.json, with a human-readable repro-*.txt narrative) per \
             distinct error fingerprint into $(docv); replay them with 'racefuzzer \
             replay FILE'.")
  in
  let repro_fuel_arg =
    Arg.(
      value & opt int 400
      & info [ "repro-fuel" ] ~docv:"N"
          ~doc:"Maximum oracle executions per schedule minimization.")
  in
  let static_filter_arg =
    Arg.(
      value & flag
      & info [ "static-filter" ]
          ~doc:
            "Skip phase-2 fuzzing of candidate pairs the static pre-filter proves \
             cannot race (consistent common lock, single thread, read-read, or \
             fork/join ordering).  Filtered pairs are journaled with their proof \
             reason; confirmed-race results are unchanged — the filter is sound \
             and only removes work.  Requires a static model: built-in workloads \
             carry one, RFL files are analyzed directly; without one the flag \
             warns and is a no-op.")
  in
  let offline_detect_arg =
    Arg.(
      value & flag
      & info [ "offline-detect" ]
          ~doc:
            "Run phase 1 record-then-detect: the engine executes detector-free, \
             writing a compact binary trace, and hybrid detection replays the \
             recording offline.  The candidate pair set — and both campaign \
             fingerprints — are identical to inline detection; only the cost \
             profile changes (near-baseline execution plus a separate, \
             shardable detection pass).")
  in
  let offline_shards_arg =
    Arg.(
      value & opt int 1
      & info [ "offline-shards" ] ~docv:"N"
          ~doc:
            "Shard the offline detection pass by memory location over $(docv) \
             parallel domains (requires --offline-detect).  Verdicts are \
             merged deterministically and equal the single-shard result.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Shard phase-2 trials across $(docv) supervised worker processes \
             (a hidden 'campaign-worker' mode of this executable) instead of \
             in-process domains.  Workers are crash-isolated — a segfault, \
             OOM or spin kills one worker, which is respawned with \
             exponential backoff while its trial is requeued — and results \
             merge deterministically: the campaign fingerprint is \
             byte-identical to an in-process run.  0 (the default) keeps the \
             in-process domain pool; when workers cannot be spawned the \
             campaign degrades to it silently.")
  in
  let worker_deadline_arg =
    Arg.(
      value & opt float Rf_campaign.Proc_pool.default_heartbeat
      & info [ "worker-deadline" ] ~docv:"SECS"
          ~doc:
            "Heartbeat deadline for --workers: a worker holding an \
             assignment longer than $(docv) without replying is SIGKILLed \
             and its trial requeued.")
  in
  let worker_mem_arg =
    Arg.(
      value & opt (some int) None
      & info [ "worker-mem" ] ~docv:"MB"
          ~doc:
            "Per-worker address-space rlimit (ulimit -v) in megabytes: a \
             worker allocating past it dies alone and its trial is journaled \
             as a crash, instead of taking the whole campaign down.")
  in
  let worker_cpu_arg =
    Arg.(
      value & opt (some int) None
      & info [ "worker-cpu" ] ~docv:"SECS"
          ~doc:"Per-worker CPU-seconds rlimit (ulimit -t).")
  in
  let corpus_arg =
    Arg.(
      value & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Accumulate campaign artifacts into a persistent cross-campaign \
             corpus at $(docv): every distinct error fingerprint (with its \
             minimized repro schedule), degraded-run record and saved trace \
             is stored once and deduplicated across runs.  Inspect with \
             'racefuzzer corpus list/verify'.")
  in
  let save_traces_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-traces" ] ~docv:"DIR"
          ~doc:
            "Persist phase-1 binary recordings (trace-seed<N>.rfbt) into \
             $(docv) for later re-analysis with 'racefuzzer offline'.  \
             Implies record-then-detect (--offline-detect).")
  in
  let chaos_kill_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-kill-assignment" ] ~docv:"N"
          ~doc:
            "Multi-process chaos: the worker receiving the Nth dispatched \
             assignment SIGKILLs itself — a real process death exercising \
             reap, requeue and respawn.  Liveness-only: results and \
             fingerprints are unchanged.  Usable without --chaos.")
  in
  let chaos_torn_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-torn-frame" ] ~docv:"N"
          ~doc:
            "Multi-process chaos: the worker holding the Nth assignment \
             replies with a deliberately corrupted IPC frame, which the \
             supervisor must reject with a precise checksum error and treat \
             as a worker death.  Liveness-only; usable without --chaos.")
  in
  let chaos_hang_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-hang-assignment" ] ~docv:"N"
          ~doc:
            "Multi-process chaos: the worker holding the Nth assignment \
             hangs forever, forcing the --worker-deadline SIGKILL path.  \
             Liveness-only; usable without --chaos.")
  in
  let p1_detector_arg =
    Arg.(
      value & opt string "hybrid"
      & info [ "detector" ] ~docv:"NAME"
          ~doc:
            "Phase-1 detector: $(b,hybrid) (full tracking, the default) or \
             $(b,sampling) — O(1) reservoir-sampled summaries per memory \
             location (see --sample-k).  Sampling reports a subset of \
             hybrid's candidate pairs plus a per-run miss-probability bound \
             (journal + report); confirmed results on the paper figures are \
             unchanged at a fraction of the detector memory.")
  in
  let sample_k_arg =
    Arg.(
      value & opt int 4
      & info [ "sample-k" ] ~docv:"K"
          ~doc:
            "Samples kept per memory location with --detector sampling.  \
             Larger $(docv) lowers the miss bound and raises memory \
             linearly.")
  in
  let sample_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "sample-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the reservoir-sampling PRNG (--detector sampling).  \
             Sample sets are a pure function of (seed, location, access \
             index): the same seed reproduces the same pairs and miss bound \
             on any domain count, shard count, or inline/offline mode.")
  in
  let action target domains budget logfile no_cutoff p1 trials chaos_flag chaos_seed
      chaos_stop trial_deadline resume repro_dir repro_fuel static_filter
      detector_budget mem_budget no_degrade offline_detect offline_shards workers
      worker_deadline worker_mem worker_cpu corpus save_traces chaos_kill
      chaos_torn chaos_hang p1_detector sample_k sample_seed =
    let program =
      match Rf_workloads.Registry.find target with
      | Some w ->
          Ok (w.Rf_workloads.Workload.program, w.Rf_workloads.Workload.static)
      | None -> (
          match load target with
          | Ok prog ->
              Ok
                ( Rf_lang.Lang.program ~print:ignore prog,
                  Some (Rf_static.Static.of_program prog) )
          | Error m ->
              Error
                (Fmt.str "%S is neither a built-in workload (see 'racefuzzer list') nor a \
                          loadable RFL file:@.%s" target m))
    in
    match program with
    | Error m ->
        Fmt.epr "%s@." m;
        exit 1
    | Ok (program, static) ->
        (* Resuming from the very file we are about to (re)write would
           truncate the journal before it can be read: move it aside. *)
        let resume =
          match (resume, logfile) with
          | Some r, Some l when r = l ->
              let prev = r ^ ".prev" in
              (try Sys.rename r prev
               with Sys_error m ->
                 Fmt.epr "cannot rotate journal for resume: %s@." m;
                 exit 1);
              Some prev
          | r, _ -> r
        in
        (match resume with
        | Some path when not (Sys.file_exists path) ->
            Fmt.epr "resume journal %S not found@." path;
            exit 4
        | _ -> ());
        let log =
          match logfile with
          | Some path -> (
              try Rf_campaign.Event_log.open_file path
              with Sys_error m ->
                Fmt.epr "cannot open event log: %s@." m;
                exit 1)
          | None -> Rf_campaign.Event_log.null ()
        in
        let chaos =
          (* Proc faults are liveness-only (they never change results), so
             they are usable without --chaos: alone they ride an otherwise
             empty plan, preserving fingerprint parity with fault-free
             runs. *)
          let proc_faults =
            chaos_kill <> None || chaos_torn <> None || chaos_hang <> None
          in
          if not (chaos_flag || proc_faults) then None
          else
            let base =
              if chaos_flag then Rf_campaign.Chaos.default chaos_seed
              else Rf_campaign.Chaos.plan chaos_seed
            in
            Some
              {
                base with
                Rf_campaign.Chaos.c_stop_after = chaos_stop;
                c_kill_assignment = chaos_kill;
                c_torn_frame = chaos_torn;
                c_hang_assignment = chaos_hang;
              }
        in
        let proc =
          if workers <= 0 then None
          else
            Some
              {
                Rf_campaign.Proc_pool.sp_cmd =
                  [| Sys.executable_name; "campaign-worker" |];
                sp_workers = workers;
                sp_heartbeat = worker_deadline;
                sp_rlimit_as_mb = worker_mem;
                sp_rlimit_cpu_s = worker_cpu;
                sp_policy = Rf_campaign.Supervisor.default_policy;
                sp_target = target;
              }
        in
        let static_filter =
          if static_filter && static = None then begin
            Fmt.epr
              "WARNING: --static-filter ignored — %S has no static model@."
              target;
            false
          end
          else static_filter
        in
        let detector =
          match p1_detector with
          | "hybrid" -> Racefuzzer.Fuzzer.Hybrid
          | "sampling" ->
              Racefuzzer.Fuzzer.Sampling { sample_k; sample_seed }
          | s ->
              Fmt.epr "unknown phase-1 detector %S (hybrid or sampling)@." s;
              exit 1
        in
        let stop = Rf_campaign.Campaign.stop_switch () in
        let on_signal =
          (* Graceful SIGINT/SIGTERM: in-process workers drain, worker
             processes are killed and reaped (no orphans) before the final
             checkpoint write, the journal is flushed, and a partial report
             is printed; a second ^C kills as usual once the process is
             back out of the campaign. *)
          Sys.Signal_handle (fun _ -> Rf_campaign.Campaign.request_stop stop)
        in
        let (_ : Sys.signal_behavior) = Sys.signal Sys.sigint on_signal in
        let (_ : Sys.signal_behavior) = Sys.signal Sys.sigterm on_signal in
        let r =
          try
            Rf_campaign.Campaign.run ~domains ~cutoff:(not no_cutoff) ?budget
              ~phase1_seeds:(List.init p1 Fun.id)
              ~seeds_per_pair:(List.init trials Fun.id)
              ~log ?chaos ?trial_deadline ?resume ~stop ?detector_budget
              ?mem_budget ~no_degrade ?repro_dir ~target ~repro_fuel ?static
              ~static_filter
              ?offline_detect:(if offline_detect then Some offline_shards else None)
              ?proc ?save_traces ?corpus ~detector program
          with
          | Rf_resource.Governor.Budget_stop trigger ->
              Rf_campaign.Event_log.close log;
              Fmt.epr "resource budget exhausted in phase 1 (%s) under --no-degrade@."
                (Rf_resource.Governor.trigger_to_string trigger);
              exit 2
          | Sys_error m ->
              Rf_campaign.Event_log.close log;
              Fmt.epr "cannot load campaign artifact: %s@." m;
              exit 4
        in
        Rf_campaign.Event_log.close log;
        Sys.set_signal Sys.sigint Sys.Signal_default;
        Sys.set_signal Sys.sigterm Sys.Signal_default;
        print_analysis r.Rf_campaign.Campaign.analysis;
        Fmt.pr "@.%a" Rf_report.Campaign_report.render r.Rf_campaign.Campaign.stats;
        Fmt.pr "%a" Rf_report.Campaign_report.precision r;
        Fmt.pr "%a" Rf_report.Repro_report.render r.Rf_campaign.Campaign.repro;
        Fmt.pr "fingerprint: %s@."
          (Rf_campaign.Campaign.fingerprint r.Rf_campaign.Campaign.analysis);
        Fmt.pr "confirmed:   %s@."
          (Rf_campaign.Campaign.confirmed_fingerprint
             r.Rf_campaign.Campaign.analysis);
        Option.iter (fun path -> Fmt.pr "event log:   %s@." path) logfile;
        Option.iter (fun dir -> Fmt.pr "traces:      %s@." dir) save_traces;
        Option.iter
          (fun dir ->
            Fmt.pr "corpus:      %s (%d entries)@." dir
              (List.length (Rf_campaign.Corpus.load dir)))
          corpus;
        let s = r.Rf_campaign.Campaign.stats in
        if s.Rf_campaign.Campaign.s_interrupted then begin
          Option.iter
            (fun path -> Fmt.pr "interrupted — resume with:  --resume %s@." path)
            logfile;
          exit 130
        end;
        if
          s.Rf_campaign.Campaign.s_quarantined > 0
          || s.Rf_campaign.Campaign.s_crashes > 0
        then exit 3
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Parallel whole-program campaign: schedule all (pair, seed) trials across a \
          domain pool — or, with --workers, across crash-isolated worker \
          processes — with deterministic aggregation, early cutoff, sandboxed \
          trials, supervised workers, resource governance \
          (--detector-budget/--mem-budget), checkpoint/resume and a persistent \
          cross-campaign --corpus. Exit status: 0 clean, 2 when phase 1 \
          exhausted its resource budget under --no-degrade, 3 when trials \
          crashed the harness or pairs were quarantined, 4 when a resume \
          journal or artifact cannot be loaded, 130 when interrupted (SIGINT, \
          SIGTERM or --chaos-stop-after).")
    Term.(
      const action $ target_arg $ domains_arg $ budget_arg $ log_arg $ no_cutoff_arg
      $ p1_arg $ seeds_arg 100 $ chaos_arg $ chaos_seed_arg $ chaos_stop_arg
      $ trial_deadline_arg $ resume_arg $ repro_dir_arg $ repro_fuel_arg
      $ static_filter_arg $ detector_budget_arg $ mem_budget_arg $ no_degrade_arg
      $ offline_detect_arg $ offline_shards_arg $ workers_arg
      $ worker_deadline_arg $ worker_mem_arg $ worker_cpu_arg $ corpus_arg
      $ save_traces_arg $ chaos_kill_arg $ chaos_torn_arg $ chaos_hang_arg
      $ p1_detector_arg $ sample_k_arg $ sample_seed_arg)

(* ------------------------------------------------------------------ *)
(* corpus                                                              *)

let corpus_cmd =
  let op_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("list", `List); ("verify", `Verify) ])) None
      & info [] ~docv:"OP" ~doc:"$(b,list) entries or $(b,verify) integrity.")
  in
  let dir_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Corpus directory (--corpus of 'campaign').")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable 'corpus list': one flat JSON object per entry \
             (fields kind, key, target, pair, seed, file, crc, seen), no \
             trailing count — diffable by tools without scraping the table.")
  in
  let action op dir json =
    match op with
    | `List when json ->
        List.iter
          (fun (e : Rf_campaign.Corpus.entry) ->
            print_endline
              (Rf_campaign.Event_log.render_flat
                 [
                   ("kind", Rf_campaign.Event_log.S e.Rf_campaign.Corpus.e_kind);
                   ("key", Rf_campaign.Event_log.S e.Rf_campaign.Corpus.e_key);
                   ( "target",
                     Rf_campaign.Event_log.S e.Rf_campaign.Corpus.e_target );
                   ("pair", Rf_campaign.Event_log.S e.Rf_campaign.Corpus.e_pair);
                   ("seed", Rf_campaign.Event_log.I e.Rf_campaign.Corpus.e_seed);
                   ("file", Rf_campaign.Event_log.S e.Rf_campaign.Corpus.e_file);
                   ("crc", Rf_campaign.Event_log.S e.Rf_campaign.Corpus.e_crc);
                   ("seen", Rf_campaign.Event_log.I e.Rf_campaign.Corpus.e_seen);
                 ]))
          (Rf_campaign.Corpus.load dir)
    | `List ->
        let entries = Rf_campaign.Corpus.load dir in
        if entries = [] then Fmt.pr "corpus %s: empty or missing@." dir
        else begin
          List.iter
            (fun (e : Rf_campaign.Corpus.entry) ->
              Fmt.pr "%-9s %-44s seen %d%s@." e.Rf_campaign.Corpus.e_kind
                e.Rf_campaign.Corpus.e_key e.Rf_campaign.Corpus.e_seen
                (if e.Rf_campaign.Corpus.e_file = "" then ""
                 else "  file " ^ e.Rf_campaign.Corpus.e_file))
            entries;
          let n = List.length entries in
          Fmt.pr "%d entr%s@." n (if n = 1 then "y" else "ies")
        end
    | `Verify -> (
        match Rf_campaign.Corpus.verify ~dir with
        | Ok n -> Fmt.pr "corpus %s: OK (%d entries)@." dir n
        | Error problems ->
            List.iter (fun p -> Fmt.epr "corpus %s: %s@." dir p) problems;
            exit 4)
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Inspect a persistent campaign corpus: 'corpus list DIR' prints the \
          entries (--json for one JSON object per entry), 'corpus verify DIR' \
          checks the index header, every line seal, every artifact's presence \
          and content CRC, and key uniqueness (exit 4 on any violation).")
    Term.(const action $ op_arg $ dir_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* offline                                                             *)

let offline_cmd =
  let dir_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR"
          ~doc:
            "Directory holding *.rfbt recordings ('campaign --save-traces', \
             or a corpus directory).")
  in
  let shards_arg =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Shard detection by memory location over $(docv) domains run in \
             parallel; merged verdicts equal the single-shard result.")
  in
  let detector_arg =
    Arg.(
      value & opt string "hybrid"
      & info [ "detector" ] ~docv:"NAME"
          ~doc:"hybrid, hb (precise), fasttrack, eraser, or sampling.")
  in
  let action dir shards detector =
    let mk =
      match detector with
      | "hybrid" -> Rf_detect.Detector.hybrid ~cap:128
      | "hb" | "happens-before" -> Rf_detect.Detector.hb_precise ~cap:128
      | "fasttrack" -> Rf_detect.Detector.fasttrack
      | "eraser" -> Rf_detect.Detector.eraser ~site_cap:16
      | "sampling" -> Rf_detect.Detector.sampling ~k:4 ~seed:0
      | s ->
          Fmt.epr "unknown detector %S@." s;
          exit 1
    in
    let files =
      match Sys.readdir dir with
      | names ->
          Array.to_list names
          |> List.filter (fun n -> Filename.check_suffix n ".rfbt")
          |> List.sort String.compare
          |> List.map (Filename.concat dir)
      | exception Sys_error m ->
          Fmt.epr "%s@." m;
          exit 4
    in
    if files = [] then begin
      Fmt.epr "no *.rfbt recordings in %s@." dir;
      exit 4
    end;
    match List.map Rf_events.Btrace.load files with
    | recordings ->
        let races, stats =
          Rf_detect.Offline.detect_stats ~shards:(max 1 shards)
            ~parallel:(shards > 1) ~make:mk recordings
        in
        Fmt.pr "%d recording(s), %d shard(s): %d potential racing statement pair(s)@."
          (List.length recordings) (max 1 shards) (List.length races);
        List.iter (fun r -> Fmt.pr "  %a@." Rf_detect.Race.pp r) races;
        (match stats.Rf_detect.Detector.st_miss_bound with
        | Some b -> Fmt.pr "miss bound <= %.6f@." b
        | None -> ())
    | exception Rf_events.Btrace.Corrupt m ->
        Fmt.epr "corrupt recording: %s@." m;
        exit 4
    | exception Sys_error m ->
        Fmt.epr "%s@." m;
        exit 4
  in
  Cmd.v
    (Cmd.info "offline"
       ~doc:
         "Offline race detection over saved binary traces: replay *.rfbt \
          recordings through a fresh detector, optionally sharded by memory \
          location across parallel domains (--shards).  Exit 4 when a \
          recording is corrupt or the directory holds none.")
    Term.(const action $ dir_arg $ shards_arg $ detector_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let serve_cmd =
  let pos0_arg =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"DIR|status"
          ~doc:
            "Corpus directory to serve, or the literal $(b,status) (followed \
             by the directory) for a one-shot report.")
  in
  let pos1_arg =
    Arg.(
      value & pos 1 (some string) None
      & info [] ~docv:"DIR" ~doc:"Corpus directory (status mode).")
  in
  let cycles_arg =
    Arg.(
      value & opt int 0
      & info [ "cycles" ] ~docv:"N"
          ~doc:
            "Exit 0 after $(docv) completed cycles (counted in the ledger, \
             so a restarted service finishes an interrupted cycle rather \
             than starting over); 0 = run until signalled.")
  in
  let period_arg =
    Arg.(
      value & opt float 1.0
      & info [ "period" ] ~docv:"SECS" ~doc:"Sleep between cycles.")
  in
  let watch_arg =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Poll file targets for mtime changes each cycle; a changed \
             target re-runs immediately (bypassing its token bucket, at \
             most once per cycle) with its phase-1 cache invalidated.")
  in
  let rate_arg =
    Arg.(
      value & opt float 1.0
      & info [ "rate" ] ~docv:"T"
          ~doc:"Token-bucket refill per target per cycle (campaign pacing).")
  in
  let burst_arg =
    Arg.(
      value & opt float 2.0
      & info [ "burst" ] ~docv:"T" ~doc:"Token-bucket capacity per target.")
  in
  let retry_max_arg =
    Arg.(
      value & opt int 3
      & info [ "retry-max" ] ~docv:"N"
          ~doc:"Replay attempts per corpus item per cycle before it fails.")
  in
  let retry_base_arg =
    Arg.(
      value & opt float 0.01
      & info [ "retry-base" ] ~docv:"SECS"
          ~doc:"First backoff delay; doubles per attempt, jittered, capped.")
  in
  let strikes_arg =
    Arg.(
      value & opt int 3
      & info [ "strikes" ] ~docv:"N"
          ~doc:"Failed cycles before an item is quarantined.")
  in
  let target_arg =
    Arg.(
      value & opt_all string []
      & info [ "target" ] ~docv:"NAME"
          ~doc:
            "Extra campaign target (workload name or RFL file) beyond those \
             the corpus already names; repeatable.")
  in
  let trials_arg =
    Arg.(
      value & opt int 20
      & info [ "trials" ] ~docv:"N" ~doc:"Seeds per pair in campaign waves.")
  in
  let p1_arg =
    Arg.(
      value & opt int 1
      & info [ "phase1-seeds" ] ~docv:"N"
          ~doc:
            "Executions recorded per target; recordings are cached under \
             DIR/p1cache and re-analyzed instead of re-run on later waves.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N" ~doc:"In-process campaign width.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Run campaign waves across $(docv) supervised worker processes; \
             a fleet that fails its handshake degrades to in-process (shown \
             in 'serve status').")
  in
  let worker_deadline_arg =
    Arg.(
      value & opt float Rf_campaign.Proc_pool.default_heartbeat
      & info [ "worker-deadline" ] ~docv:"SECS"
          ~doc:"Heartbeat deadline for --workers.")
  in
  let log_arg =
    Arg.(
      value & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:"JSONL event log shared by all campaign waves.")
  in
  let chaos_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "chaos-seed" ] ~docv:"N" ~doc:"Seed for the chaos fault plan.")
  in
  let chaos_kill_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-kill-assignment" ] ~docv:"N"
          ~doc:
            "Chaos: the worker receiving the Nth assignment of each \
             campaign wave SIGKILLs itself (liveness-only).")
  in
  let die_reval_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-die-reval" ] ~docv:"N"
          ~doc:
            "Chaos: SIGKILL the service just before persisting the Nth \
             re-validation verdict of this process run.")
  in
  let fail_reval_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-fail-reval" ] ~docv:"N"
          ~doc:
            "Chaos: every replay attempt of the Nth re-validated item \
             fails, driving retry exhaustion and (eventually) quarantine.")
  in
  let torn_index_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-torn-index-cycle" ] ~docv:"N"
          ~doc:"Chaos: tear the corpus index at the start of the Nth cycle.")
  in
  let torn_ledger_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-torn-ledger-cycle" ] ~docv:"N"
          ~doc:"Chaos: tear the ledger at the start of the Nth cycle.")
  in
  let watch_storm_arg =
    Arg.(
      value & opt (some int) None
      & info [ "chaos-watch-storm" ] ~docv:"N"
          ~doc:
            "Chaos: during the Nth cycle every watched target reports \
             changed at once (re-runs must coalesce to one per target).")
  in
  let action pos0 pos1 cycles period watch rate burst retry_max retry_base
      strikes targets trials p1 domains workers worker_deadline logfile
      chaos_seed chaos_kill die_reval fail_reval torn_index torn_ledger
      watch_storm =
    if pos0 = "status" then begin
      match pos1 with
      | None ->
          Fmt.epr "serve status: missing corpus directory@.";
          exit 1
      | Some dir -> exit (Rf_campaign.Service.status ~dir)
    end
    else begin
      let dir = pos0 in
      let log =
        match logfile with
        | Some path -> (
            try Rf_campaign.Event_log.open_file path
            with Sys_error m ->
              Fmt.epr "cannot open event log: %s@." m;
              exit 1)
        | None -> Rf_campaign.Event_log.null ()
      in
      let chaos =
        let any =
          chaos_kill <> None || die_reval <> None || fail_reval <> None
          || torn_index <> None || torn_ledger <> None || watch_storm <> None
        in
        if not any then None
        else
          Some
            {
              (Rf_campaign.Chaos.plan chaos_seed) with
              Rf_campaign.Chaos.c_kill_assignment = chaos_kill;
              c_die_reval = die_reval;
              c_fail_reval = fail_reval;
              c_torn_index_cycle = torn_index;
              c_torn_ledger_cycle = torn_ledger;
              c_watch_storm = watch_storm;
            }
      in
      let proc =
        if workers <= 0 then None
        else
          Some
            {
              Rf_campaign.Proc_pool.sp_cmd =
                [| Sys.executable_name; "campaign-worker" |];
              sp_workers = workers;
              sp_heartbeat = worker_deadline;
              sp_rlimit_as_mb = None;
              sp_rlimit_cpu_s = None;
              sp_policy = Rf_campaign.Supervisor.default_policy;
              sp_target = "";
            }
      in
      let config =
        {
          Rf_campaign.Service.v_cycles = max 0 cycles;
          v_period = period;
          v_watch = watch;
          v_rate = rate;
          v_burst = burst;
          v_retry =
            {
              Rf_campaign.Service.Retry.default with
              Rf_campaign.Service.Retry.rp_max_attempts = max 1 retry_max;
              rp_base = retry_base;
              rp_strikes = max 1 strikes;
            };
          v_targets = targets;
          v_domains = max 1 domains;
          v_phase1_seeds = max 1 p1;
          v_seeds_per_pair = max 1 trials;
          v_proc = proc;
          v_chaos = chaos;
        }
      in
      let stop = Rf_campaign.Campaign.stop_switch () in
      (* First SIGINT/SIGTERM: drain — finish the in-flight item, persist
         the ledger, exit 0.  Second: exit 130/143 immediately. *)
      let signalled = ref 0 in
      let on_signal signum =
        incr signalled;
        if !signalled > 1 then
          exit (if signum = Sys.sigterm then 143 else 130)
        else Rf_campaign.Campaign.request_stop stop
      in
      let (_ : Sys.signal_behavior) =
        Sys.signal Sys.sigint (Sys.Signal_handle on_signal)
      in
      let (_ : Sys.signal_behavior) =
        Sys.signal Sys.sigterm (Sys.Signal_handle on_signal)
      in
      let code =
        Rf_campaign.Service.serve ~log ~stop config
          ~resolve:resolve_target ~dir
      in
      Rf_campaign.Event_log.close log;
      exit code
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived campaign service over a corpus directory: each cycle \
          re-validates every corpus repro by replay (still-racy / fixed / \
          regressed, journaled in a crash-safe ledger), schedules fresh \
          campaign waves over the corpus' targets with token-bucket pacing, \
          and with --watch re-runs changed file targets reusing cached \
          phase-1 recordings.  SIGKILL + restart resumes mid-cycle from the \
          ledger with no lost or duplicated work.  'serve status DIR' prints \
          a one-shot report (exit 1 when the corpus fails strict verify).  \
          Exit status: 0 on clean drain (cycle budget reached or first \
          SIGINT/SIGTERM), 130/143 when a second signal forces exit.")
    Term.(
      const action $ pos0_arg $ pos1_arg $ cycles_arg $ period_arg $ watch_arg
      $ rate_arg $ burst_arg $ retry_max_arg $ retry_base_arg $ strikes_arg
      $ target_arg $ trials_arg $ p1_arg $ domains_arg $ workers_arg
      $ worker_deadline_arg $ log_arg $ chaos_seed_arg $ chaos_kill_arg
      $ die_reval_arg $ fail_reval_arg $ torn_index_arg $ torn_ledger_arg
      $ watch_storm_arg)

(* ------------------------------------------------------------------ *)
(* workloads                                                           *)

let workload_cmd =
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"Workload name.")
  in
  let action name trials =
    match Rf_workloads.Registry.find name with
    | None ->
        Fmt.epr "unknown workload %S (see 'racefuzzer list')@." name;
        exit 1
    | Some w ->
        Fmt.pr "%a@.@." Rf_workloads.Workload.pp w;
        let a =
          Racefuzzer.Fuzzer.analyze
            ~phase1_seeds:(List.init 5 Fun.id)
            ~seeds_per_pair:(List.init trials Fun.id)
            w.Rf_workloads.Workload.program
        in
        print_analysis a
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Analyze a built-in Table-1 workload analogue.")
    Term.(const action $ name_arg $ seeds_arg 100)

let list_cmd =
  let action () =
    List.iter
      (fun w -> Fmt.pr "%a@." Rf_workloads.Workload.pp w)
      (Rf_workloads.Registry.all @ Rf_workloads.Registry.litmus)
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads.") Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* experiments                                                         *)

let table1_cmd =
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Fewer trials.") in
  let action quick =
    let config =
      if quick then Rf_report.Table1.quick_config else Rf_report.Table1.default_config
    in
    Rf_report.Table1.render Fmt.stdout (Rf_report.Table1.generate ~config ())
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Regenerate the paper's Table 1.")
    Term.(const action $ quick_arg)

let figure2_cmd =
  let action trials =
    Rf_report.Figure2_exp.render Fmt.stdout (Rf_report.Figure2_exp.generate ~trials ())
  in
  Cmd.v
    (Cmd.info "figure2" ~doc:"Regenerate the paper's Figure 2 probability series.")
    Term.(const action $ seeds_arg 200)

let main_cmd =
  Cmd.group
    (Cmd.info "racefuzzer" ~version:"1.0.0"
       ~doc:"Race-directed random testing of concurrent programs (Sen, PLDI 2008).")
    [
      run_cmd; detect_cmd; fuzz_cmd; replay_cmd; shrink_cmd; deadlock_cmd;
      atomicity_cmd; campaign_cmd; corpus_cmd; offline_cmd; serve_cmd;
      workload_cmd; list_cmd; table1_cmd; figure2_cmd;
    ]

(* Hidden worker mode: 'racefuzzer campaign-worker' is exec'd by
   Proc_pool with sealed frames on stdin/stdout.  Dispatched before
   cmdliner so its stdout stays a clean frame stream (no usage text,
   no terminal pager).  Exit codes: 0 on shutdown/EOF, 2 when the init
   frame is corrupt or the target does not resolve. *)
let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "campaign-worker" then
    Rf_campaign.Proc_pool.worker_main
      ~resolve:(fun target ->
        match resolve_target target with Ok p -> Some p | Error _ -> None)
      ()

let () = exit (Cmd.eval main_cmd)
