lib/collections/array_list.ml: Api Jcoll List Lock Op Printf Rf_runtime Rf_util Site
