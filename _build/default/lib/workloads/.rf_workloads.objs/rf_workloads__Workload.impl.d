lib/workloads/workload.ml: Fmt
