(** Potential atomicity-violation detection (phase 1 for
    {!Racefuzzer.Atom_fuzzer}) — the paper's §1 names atomicity violations
    as another problem class the biased scheduler supports.

    Reports split transactions: a thread touching a location in one
    critical section of a lock and re-entering another section of the same
    lock later, while some other thread writes the location under that
    lock.  Lock-disciplined code like this is invisible to every race
    detector; the violation is about serializability, not races. *)

open Rf_util

type candidate = {
  av_lock : int;
  av_loc : Loc.t;  (** witness location *)
  first_site : Site.t;  (** access in the first critical section *)
  second_acquire : Site.t;  (** acquire statement of the second section *)
  interferer_site : Site.t;  (** conflicting write by another thread *)
  av_tid : int;
  av_interferer : int;
}

val pp_candidate : Format.formatter -> candidate -> unit

type t

val create : unit -> t
(** State is per-execution: use one detector per run (thread and lock ids
    restart each run). *)

val feed : t -> Rf_events.Event.t -> unit
val candidates : t -> candidate list
