(** Execution events.

    The paper (§2.1) models an execution as a sequence of events of three
    forms: [MEM(s, m, a, t, L)] — thread [t] performed access [a] to memory
    location [m] at statement [s] holding locks [L]; [SND(g, t)] and
    [RCV(g, t)] — synchronization messages with unique id [g] used to define
    happens-before (fork, join, notify→wait).

    We additionally record lock acquire/release events (needed by the
    precise happens-before detector, which unlike the hybrid detector treats
    release→acquire of the same lock as an ordering edge) and thread
    start/exit markers (useful for reporting).

    Events do not embed vector clocks: each detector derives its own
    happens-before relation from the event stream under its own edge policy
    (see {!Rf_detect.Hbclock}). *)

open Rf_util

type access = Read | Write

let pp_access ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"

let access_equal a b =
  match (a, b) with Read, Read | Write, Write -> true | _ -> false

(** Why a SND/RCV pair was generated (paper §2.2: thread start, join,
    notify→wait). *)
type sync_reason = Fork | Join | Notify

let pp_sync_reason ppf = function
  | Fork -> Fmt.string ppf "fork"
  | Join -> Fmt.string ppf "join"
  | Notify -> Fmt.string ppf "notify"

type t =
  | Mem of {
      tid : int;
      site : Site.t;
      loc : Loc.t;
      access : access;
      lockset : Lockset.t;
    }
  | Acquire of { tid : int; lock : int; site : Site.t }
  | Release of { tid : int; lock : int; site : Site.t }
  | Snd of { tid : int; msg : int; reason : sync_reason }
  | Rcv of { tid : int; msg : int; reason : sync_reason }
  | Start of { tid : int; name : string }
  | Exit of { tid : int }

let tid = function
  | Mem { tid; _ }
  | Acquire { tid; _ }
  | Release { tid; _ }
  | Snd { tid; _ }
  | Rcv { tid; _ }
  | Start { tid; _ }
  | Exit { tid } ->
      tid

let site = function
  | Mem { site; _ } | Acquire { site; _ } | Release { site; _ } -> Some site
  | Snd _ | Rcv _ | Start _ | Exit _ -> None

let is_mem = function Mem _ -> true | _ -> false
let is_sync = function Mem _ -> false | _ -> true

let equal a b =
  match (a, b) with
  | Mem x, Mem y ->
      x.tid = y.tid && Site.equal x.site y.site && Loc.equal x.loc y.loc
      && access_equal x.access y.access
      && Lockset.equal x.lockset y.lockset
  | Acquire x, Acquire y ->
      x.tid = y.tid && x.lock = y.lock && Site.equal x.site y.site
  | Release x, Release y ->
      x.tid = y.tid && x.lock = y.lock && Site.equal x.site y.site
  | Snd x, Snd y -> x.tid = y.tid && x.msg = y.msg && x.reason = y.reason
  | Rcv x, Rcv y -> x.tid = y.tid && x.msg = y.msg && x.reason = y.reason
  | Start x, Start y -> x.tid = y.tid && String.equal x.name y.name
  | Exit x, Exit y -> x.tid = y.tid
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Structural streaming hash (FNV-1a folded into OCaml's 63-bit int).

   [hash_fold acc ev] mixes every field of [ev] into [acc].  Unlike
   [Hashtbl.hash (to_string ev)] — which this replaced — the digest is a
   full-width streaming hash with no input truncation, and sites are
   hashed by their stable interning key (file, line, col, label) rather
   than their registry id, so the value is reproducible across processes
   and independent of interning order. *)

let fnv_prime = 0x100000001B3

let[@inline] fold_int acc i = (acc lxor i) * fnv_prime

let fold_string acc s =
  let acc = ref (fold_int acc (String.length s)) in
  String.iter (fun c -> acc := fold_int !acc (Char.code c)) s;
  !acc

let fold_site acc site =
  let acc = fold_string acc (Site.file site) in
  let acc = fold_int acc (Site.line site) in
  let acc = fold_int acc (Site.col site) in
  fold_string acc (Site.label site)

let fold_loc acc = function
  | Loc.Global n -> fold_string (fold_int acc 1) n
  | Loc.Field (o, f) -> fold_string (fold_int (fold_int acc 2) o) f
  | Loc.Elem (a, i) -> fold_int (fold_int (fold_int acc 3) a) i

let fold_access acc = function Read -> fold_int acc 0 | Write -> fold_int acc 1

let fold_reason acc = function
  | Fork -> fold_int acc 0
  | Join -> fold_int acc 1
  | Notify -> fold_int acc 2

let hash_fold acc = function
  | Mem { tid; site; loc; access; lockset } ->
      let acc = fold_int (fold_int acc 11) tid in
      let acc = fold_site acc site in
      let acc = fold_loc acc loc in
      let acc = fold_access acc access in
      List.fold_left fold_int (fold_int acc (Lockset.cardinal lockset))
        (Lockset.to_list lockset)
  | Acquire { tid; lock; site } ->
      fold_site (fold_int (fold_int (fold_int acc 12) tid) lock) site
  | Release { tid; lock; site } ->
      fold_site (fold_int (fold_int (fold_int acc 13) tid) lock) site
  | Snd { tid; msg; reason } ->
      fold_reason (fold_int (fold_int (fold_int acc 14) tid) msg) reason
  | Rcv { tid; msg; reason } ->
      fold_reason (fold_int (fold_int (fold_int acc 15) tid) msg) reason
  | Start { tid; name } -> fold_string (fold_int (fold_int acc 16) tid) name
  | Exit { tid } -> fold_int (fold_int acc 17) tid

let pp ppf = function
  | Mem { tid; site; loc; access; lockset } ->
      Fmt.pf ppf "MEM(t%d %a %a @@ %a locks=%a)" tid pp_access access Loc.pp loc
        Site.pp site Lockset.pp lockset
  | Acquire { tid; lock; site } -> Fmt.pf ppf "ACQ(t%d L%d @@ %a)" tid lock Site.pp site
  | Release { tid; lock; site } -> Fmt.pf ppf "REL(t%d L%d @@ %a)" tid lock Site.pp site
  | Snd { tid; msg; reason } -> Fmt.pf ppf "SND(g%d t%d %a)" msg tid pp_sync_reason reason
  | Rcv { tid; msg; reason } -> Fmt.pf ppf "RCV(g%d t%d %a)" msg tid pp_sync_reason reason
  | Start { tid; name } -> Fmt.pf ppf "START(t%d %s)" tid name
  | Exit { tid } -> Fmt.pf ppf "EXIT(t%d)" tid

let to_string t = Fmt.str "%a" pp t
