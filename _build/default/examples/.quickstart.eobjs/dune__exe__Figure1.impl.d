examples/figure1.ml: Array Fmt Fun List Racefuzzer Rf_events Rf_lang Rf_runtime Rf_util Site Sys
