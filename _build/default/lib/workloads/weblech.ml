(** Analogue of [weblech] (multi-threaded web-site download/mirror tool,
    paper Table 1: 27 potential races, 2 real of which 1 previously known,
    1 exception pair found by RaceFuzzer and occasionally by the simple
    random scheduler).

    Worker threads drain a shared *unsynchronized* work stack of URLs (the
    real weblech guards its queue inconsistently): the
    [if (size > 0) pop()] check-then-act races with other workers' pops,
    and losing the race throws the model's NoSuchElementException — the
    harmful pair.  Because check and pop are adjacent statements, even an
    undirected random scheduler stumbles on this occasionally, matching
    column 10 of the table.  Workers also publish the last URL fetched to
    an unsynchronized status cell the coordinator polls (benign real
    races).  A handshake farm supplies the false-positive bulk. *)

open Rf_util
open Rf_runtime

let file = "weblech"
let s line label = Site.make ~file ~line label

let site_stack_size_r = s 1 "if(queueSize>0)"
let site_stack_pop_r = s 2 "pop:read queue"
let site_stack_pop_w = s 3 "pop:write queue"
let site_last_w = s 4 "lastURL(write)"
let site_last_r = s 5 "lastURL(read)"
let site_visited_sync = s 6 "visited.sync"
let site_visited_r = s 7 "visited(read)"
let site_visited_w = s 8 "visited(write)"

(* The exception fires at the pop, not at the size check: a worker
   postponed at its pop's read while another worker's pop-write empties the
   stack dereferences an empty queue — NoSuchElementException. *)
let harmful_pair = Site.Pair.make site_stack_pop_r site_stack_pop_w

let real_pairs () =
  [
    Site.Pair.make site_stack_size_r site_stack_pop_w;
    Site.Pair.make site_stack_pop_r site_stack_pop_w;
    Site.Pair.make site_stack_pop_w site_stack_pop_w;
    Site.Pair.make site_last_w site_last_r;
    Site.Pair.make site_last_w site_last_w;
  ]

let program ?(nworkers = 3) ?(nurls = 9) () =
  let farm = Common.Farm.create ~file ~base_line:70 21 in
  let stack = Common.Queue_.create () in
  (* seed the frontier before forking: ordered by the fork edges *)
  Api.Cell.unsafe_poke stack.Common.Queue_.items (List.init nurls (fun i -> i + 1));
  let visited = Api.Cell.make ~name:"visited" [] in
  let visited_lock = Lock.create ~name:"visited" () in
  let last_url = Api.Cell.make ~name:"lastURL" 0 in
  let worker _w () =
    let continue_ = ref true in
    while !continue_ do
      if Common.Queue_.size_unsync ~site:site_stack_size_r stack > 0 then begin
        (* the racy window: another worker can empty the stack here *)
        let url =
          Common.Queue_.pop_unsync ~rsite:site_stack_pop_r ~wsite:site_stack_pop_w
            stack
        in
        Api.sync ~site:site_visited_sync visited_lock (fun () ->
            Api.Cell.write ~site:site_visited_w visited
              (url :: Api.Cell.read ~site:site_visited_r visited));
        Api.Cell.write ~site:site_last_w last_url url
      end
      else continue_ := false
    done
  in
  let mon =
    Api.fork ~name:"weblech-status" (fun () ->
        Common.Farm.consume_rounds farm 30;
        for _ = 1 to 6 do
          ignore (Api.Cell.read ~site:site_last_r last_url)
        done)
  in
  let hs =
    List.init nworkers (fun w -> Api.fork ~name:(Printf.sprintf "spider%d" w) (worker w))
  in
  Common.Farm.publish farm 0;
  List.iter Api.join hs;
  Api.join mon

let workload =
  Workload.make ~name:"weblech"
    ~descr:"weblech analogue: unsynchronized URL stack, check-then-pop exception"
    ~sloc:90 ~known_real_races:(Some 1) ~expected_real:(Some 2) (fun () -> program ())
