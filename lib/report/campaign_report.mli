(** Human-readable rendering of campaign statistics: trial and cutoff
    counters, throughput, and per-domain utilization. *)

val render : Format.formatter -> Rf_campaign.Campaign.stats -> unit
val pp : Format.formatter -> Rf_campaign.Campaign.stats -> unit
