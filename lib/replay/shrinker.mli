(** Counterexample minimization: delta-debugging over schedules.

    Given a failing schedule and an {e oracle} that can execute a
    candidate schedule and report whether the failure reproduces, the
    shrinker searches for a shorter, less-preempted schedule with the
    same error fingerprint — Zeller–Hildebrandt ddmin adapted to
    scheduling decisions, plus the two schedule-specific moves from the
    dejafu lineage: truncating everything after the error manifests,
    and coalescing context switches by reordering thread runs.

    The oracle owns execution (typically lenient replay followed by
    re-recording; see [Rf_core.Fuzzer.schedule_oracle]), which keeps
    this module free of engine dependencies and makes every accepted
    shrink validated — the result is always a schedule the oracle
    confirmed, never an unchecked edit.  Minimization is deterministic:
    no randomness, no wall-clock, fixed iteration order, improvements
    accepted only when strict under the (steps, switches) measure. *)

type stats = {
  sh_steps_before : int;
  sh_steps_after : int;
  sh_switches_before : int;
  sh_switches_after : int;
  sh_oracle_runs : int;  (** executions spent, bounded by [fuel] *)
}

val pp_stats : Format.formatter -> stats -> unit

val minimize :
  ?fuel:int ->
  oracle:(Schedule.t -> Schedule.t option) ->
  Schedule.t ->
  (Schedule.t * stats) option
(** [minimize ~oracle sched] — [None] when the oracle cannot reproduce
    [sched]'s failure at all; otherwise the minimized schedule and the
    search statistics.  [oracle candidate] must return [Some exact]
    when executing [candidate] reproduces the original error
    fingerprint, where [exact] is the full re-recording of that
    execution — the shrinker's final answer is always an exact prefix
    of a witnessed run, so it replays under {!Replayer.Exact} with no
    divergence.  [fuel] caps oracle executions (default 500); when it
    runs out the best schedule found so far is returned.  Idempotent on
    the (steps, switches) measure: minimizing a minimized schedule
    finds nothing further to remove. *)
