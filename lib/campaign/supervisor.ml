(* Worker supervision: run a fixed fleet of worker bodies on domains,
   detect crashes, respawn with exponential backoff, give up after a
   budget.

   Each worker slot gets one long-lived supervising domain; each *attempt*
   runs on a freshly spawned child domain, so a respawned worker starts
   with clean domain-local state exactly like the original.  A crash is an
   exception escaping the worker body (in OCaml a domain cannot die any
   other way short of taking the whole process with it). *)

type policy = {
  max_respawns : int;
  backoff_base : float;
  backoff_factor : float;
  backoff_max : float;
  quarantine_crashes : int;
}

let default_policy =
  {
    max_respawns = 3;
    backoff_base = 0.01;
    backoff_factor = 2.0;
    backoff_max = 0.5;
    quarantine_crashes = 3;
  }

let backoff_delay policy attempt =
  min policy.backoff_max
    (policy.backoff_base *. (policy.backoff_factor ** float_of_int attempt))

type outcome = { crashes : int; gave_up : int }

let nothing1 ~domain:_ = ()
let nothing_crash ~domain:_ ~attempt:_ _ = ()
let nothing_respawn ~domain:_ ~attempt:_ ~backoff:_ = ()

(* One attempt, on a fresh child domain (clean domain-local state) or
   inline on the calling domain.  Inline attempts exist for the
   single-worker fleet: with one slot there is no parallelism to win, and
   on a single core the idle supervising/joining domains are pure
   overhead — every minor collection becomes a cross-domain stop-the-world
   synchronization, taxing allocation-heavy workers by double-digit
   percentages.  Crash/respawn semantics are identical either way; the
   engine resets all per-run domain-local state itself, so where an
   attempt runs can never affect what it computes. *)
let spawned_attempt body ~domain =
  Domain.join
    (Domain.spawn (fun () ->
         match body ~domain with () -> Ok () | exception e -> Error e))

let inline_attempt body ~domain =
  match body ~domain with () -> Ok () | exception e -> Error e

let run_slot ~run_attempt ~policy ~on_crash ~on_respawn ~on_give_up ~domain body
    =
  let rec go attempt crashes =
    match (run_attempt body ~domain : (unit, exn) result) with
    | Ok () -> (crashes, false)
    | Error e ->
        on_crash ~domain ~attempt e;
        if attempt >= policy.max_respawns then begin
          on_give_up ~domain;
          (crashes + 1, true)
        end
        else begin
          let backoff = backoff_delay policy attempt in
          if backoff > 0.0 then Unix.sleepf backoff;
          on_respawn ~domain ~attempt:(attempt + 1) ~backoff;
          go (attempt + 1) (crashes + 1)
        end
  in
  go 0 0

let supervise ?(policy = default_policy) ?(on_crash = nothing_crash)
    ?(on_respawn = nothing_respawn) ?(on_give_up = nothing1) ~domains body =
  if domains = 1 then begin
    let crashes, gave_up =
      run_slot ~run_attempt:inline_attempt ~policy ~on_crash ~on_respawn
        ~on_give_up ~domain:0 body
    in
    { crashes; gave_up = (if gave_up then 1 else 0) }
  end
  else
    let slots =
      List.init domains (fun domain ->
          Domain.spawn (fun () ->
              run_slot ~run_attempt:spawned_attempt ~policy ~on_crash
                ~on_respawn ~on_give_up ~domain body))
    in
    let results = List.map Domain.join slots in
    {
      crashes = List.fold_left (fun acc (c, _) -> acc + c) 0 results;
      gave_up =
        List.fold_left (fun acc (_, g) -> acc + if g then 1 else 0) 0 results;
    }
