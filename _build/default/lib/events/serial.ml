(** Textual serialization of events and traces.

    A recorded schedule can be dumped to disk and reloaded later — useful
    for archiving a failure-inducing execution alongside its seed, or for
    feeding a trace to an offline detector in another process.  The format
    is line-oriented, one event per line, with percent-escaping for the
    free-form fields (file names, labels); [of_string . to_string] is the
    identity on traces (property-tested).

    Sites are re-interned on load, so a trace read back in a fresh process
    compares equal site-wise as long as the producing program's statement
    structure is unchanged. *)

open Rf_util

exception Parse_error of int * string
(** line number, message *)

let err line fmt = Fmt.kstr (fun m -> raise (Parse_error (line, m))) fmt

(* ------------------------------------------------------------------ *)
(* Escaping: fields may not contain ' ' , ':' or '%'                   *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | ' ' -> Buffer.add_string buf "%20"
      | ':' -> Buffer.add_string buf "%3a"
      | ',' -> Buffer.add_string buf "%2c"
      | '%' -> Buffer.add_string buf "%25"
      | '\n' -> Buffer.add_string buf "%0a"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape ~line s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' then begin
        if i + 2 >= n then err line "truncated escape in %S" s;
        (match String.sub s (i + 1) 2 with
        | "20" -> Buffer.add_char buf ' '
        | "3a" -> Buffer.add_char buf ':'
        | "2c" -> Buffer.add_char buf ','
        | "25" -> Buffer.add_char buf '%'
        | "0a" -> Buffer.add_char buf '\n'
        | e -> err line "bad escape %%%s" e);
        go (i + 3)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Pieces                                                              *)

let site_to_string (s : Site.t) =
  Printf.sprintf "%s:%d:%d:%s" (escape (Site.file s)) (Site.line s) (Site.col s)
    (escape (Site.label s))

let site_of_string ~line str =
  match String.split_on_char ':' str with
  | [ file; l; c; label ] -> (
      match (int_of_string_opt l, int_of_string_opt c) with
      | Some l, Some c ->
          Site.make ~file:(unescape ~line file) ~line:l ~col:c (unescape ~line label)
      | _ -> err line "bad site coordinates in %S" str)
  | _ -> err line "bad site %S" str

let loc_to_string = function
  | Loc.Global g -> Printf.sprintf "G:%s" (escape g)
  | Loc.Field (o, f) -> Printf.sprintf "F:%d:%s" o (escape f)
  | Loc.Elem (a, i) -> Printf.sprintf "E:%d:%d" a i

let loc_of_string ~line str =
  match String.split_on_char ':' str with
  | [ "G"; g ] -> Loc.global (unescape ~line g)
  | [ "F"; o; f ] -> (
      match int_of_string_opt o with
      | Some o -> Loc.field o (unescape ~line f)
      | None -> err line "bad field loc %S" str)
  | [ "E"; a; i ] -> (
      match (int_of_string_opt a, int_of_string_opt i) with
      | Some a, Some i -> Loc.elem a i
      | _ -> err line "bad elem loc %S" str)
  | _ -> err line "bad loc %S" str

let lockset_to_string ls =
  String.concat "," (List.map string_of_int (Lockset.to_list ls))

let lockset_of_string ~line str =
  if str = "-" then Lockset.empty
  else
    Lockset.of_list
      (List.map
         (fun s ->
           match int_of_string_opt s with
           | Some n -> n
           | None -> err line "bad lockset %S" str)
         (String.split_on_char ',' str))

let access_to_string = function Event.Read -> "R" | Event.Write -> "W"

let access_of_string ~line = function
  | "R" -> Event.Read
  | "W" -> Event.Write
  | s -> err line "bad access %S" s

let reason_to_string = function
  | Event.Fork -> "fork"
  | Event.Join -> "join"
  | Event.Notify -> "notify"

let reason_of_string ~line = function
  | "fork" -> Event.Fork
  | "join" -> Event.Join
  | "notify" -> Event.Notify
  | s -> err line "bad sync reason %S" s

(* ------------------------------------------------------------------ *)
(* Events                                                              *)

let event_to_string (ev : Event.t) =
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } ->
      Printf.sprintf "MEM %d %s %s %s %s" tid (access_to_string access)
        (loc_to_string loc) (site_to_string site)
        (if Lockset.is_empty lockset then "-" else lockset_to_string lockset)
  | Event.Acquire { tid; lock; site } ->
      Printf.sprintf "ACQ %d %d %s" tid lock (site_to_string site)
  | Event.Release { tid; lock; site } ->
      Printf.sprintf "REL %d %d %s" tid lock (site_to_string site)
  | Event.Snd { tid; msg; reason } ->
      Printf.sprintf "SND %d %d %s" tid msg (reason_to_string reason)
  | Event.Rcv { tid; msg; reason } ->
      Printf.sprintf "RCV %d %d %s" tid msg (reason_to_string reason)
  | Event.Start { tid; name } -> Printf.sprintf "START %d %s" tid (escape name)
  | Event.Exit { tid } -> Printf.sprintf "EXIT %d" tid

let int_field ~line s =
  match int_of_string_opt s with Some n -> n | None -> err line "bad integer %S" s

let event_of_string ~line str : Event.t =
  match String.split_on_char ' ' str with
  | [ "MEM"; tid; access; loc; site; locks ] ->
      Event.Mem
        {
          tid = int_field ~line tid;
          access = access_of_string ~line access;
          loc = loc_of_string ~line loc;
          site = site_of_string ~line site;
          lockset = lockset_of_string ~line locks;
        }
  | [ "ACQ"; tid; lock; site ] ->
      Event.Acquire
        {
          tid = int_field ~line tid;
          lock = int_field ~line lock;
          site = site_of_string ~line site;
        }
  | [ "REL"; tid; lock; site ] ->
      Event.Release
        {
          tid = int_field ~line tid;
          lock = int_field ~line lock;
          site = site_of_string ~line site;
        }
  | [ "SND"; tid; msg; reason ] ->
      Event.Snd
        {
          tid = int_field ~line tid;
          msg = int_field ~line msg;
          reason = reason_of_string ~line reason;
        }
  | [ "RCV"; tid; msg; reason ] ->
      Event.Rcv
        {
          tid = int_field ~line tid;
          msg = int_field ~line msg;
          reason = reason_of_string ~line reason;
        }
  | [ "START"; tid; name ] ->
      Event.Start { tid = int_field ~line tid; name = unescape ~line name }
  | [ "EXIT"; tid ] -> Event.Exit { tid = int_field ~line tid }
  | _ -> err line "unrecognized event %S" str

(* ------------------------------------------------------------------ *)
(* Traces                                                              *)

let header = "rf-trace v1"

let trace_to_string (tr : Trace.t) =
  let buf = Buffer.create (64 * Trace.length tr) in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  Trace.iter
    (fun ev ->
      Buffer.add_string buf (event_to_string ev);
      Buffer.add_char buf '\n')
    tr;
  Buffer.contents buf

let trace_of_string s : Trace.t =
  let lines = String.split_on_char '\n' s in
  match lines with
  | hd :: rest when String.trim hd = header ->
      let tr = Trace.create () in
      List.iteri
        (fun i line ->
          let line_no = i + 2 in
          if String.trim line <> "" then Trace.add tr (event_of_string ~line:line_no line))
        rest;
      tr
  | hd :: _ -> err 1 "bad header %S (expected %S)" hd header
  | [] -> err 1 "empty trace"

let save_trace path tr =
  let oc = open_out_bin path in
  output_string oc (trace_to_string tr);
  close_out oc

let load_trace path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  trace_of_string s
