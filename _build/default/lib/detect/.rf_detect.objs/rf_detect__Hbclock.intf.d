lib/detect/hbclock.mli: Event Rf_events Rf_vclock Vclock
