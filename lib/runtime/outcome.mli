(** Result of one engine run. *)

open Rf_util
open Rf_events

type exn_report = {
  xtid : int;
  xthread : string;  (** thread name *)
  exn_ : exn;
  raised_at : Site.t option;  (** site of the thread's last executed op *)
}

(** Why a watchdog cancelled the run.  [Wall_deadline] / [Step_deadline]
    / [Heap_watermark] come from the engine watchdog
    ([config.deadline]); [Detector_budget] is synthesized by the trial
    sandbox when a resource governor refuses to degrade
    ([Rf_resource.Governor.Budget_stop] under [--no-degrade]). *)
type cancel_reason =
  | Wall_deadline
  | Step_deadline
  | Heap_watermark
  | Detector_budget

val pp_cancel_reason : Format.formatter -> cancel_reason -> unit

type t = {
  steps : int;  (** operations executed *)
  switches : int;  (** strategy consultations *)
  threads_spawned : int;
  exceptions : exn_report list;  (** uncaught per-thread exceptions, oldest first *)
  deadlocked : int list;  (** tids alive but permanently blocked at the end *)
  blocked_at : (int * Site.t option) list;
      (** for each deadlocked tid, the statement of its pending operation —
          lets deadlock-directed analyses attribute a deadlock to a
          specific lock-order cycle *)
  timed_out : bool;  (** hit the step bound (livelock guard) *)
  cancelled : cancel_reason option;
      (** cut short by a watchdog deadline; the trial budget was exhausted *)
  trace : Trace.t option;
  wall_time : float;  (** seconds *)
}

val ok : t -> bool
(** No exceptions, no deadlock, no timeout, no cancellation. *)

val has_exception : t -> bool
val deadlocked : t -> bool
val exn_sites : t -> Site.t list
val pp_exn_report : Format.formatter -> exn_report -> unit
val pp : Format.formatter -> t -> unit
