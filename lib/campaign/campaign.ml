open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Algo = Racefuzzer.Algo
module Outcome = Rf_runtime.Outcome
module Engine = Rf_runtime.Engine
module Governor = Rf_resource.Governor
module Static = Rf_static.Static

(* ------------------------------------------------------------------ *)
(* Cooperative stop switch.  An atomic flag so it is safe to flip from a
   signal handler (SIGINT) or from any worker domain (chaos stop_after). *)

type stop_switch = bool Atomic.t

let stop_switch () = Atomic.make false
let request_stop s = Atomic.set s true
let stop_requested s = Atomic.get s

type stats = {
  s_pairs : int;
  s_resolved : int;
  s_trials : int;
  s_cancelled : int;
  s_discarded : int;
  s_waves : int;
  s_wall : float;
  s_phase1_wall : float;
  s_throughput : float;
  s_domains : int;
  s_domain_trials : int array;
  s_domain_busy : float array;
  (* fault-tolerance accounting *)
  s_exhausted : int;
  s_crashes : int;
  s_quarantined : int;
  s_q_skipped : int;
  s_replayed : int;
  s_worker_crashes : int;
  s_worker_respawns : int;
  s_worker_gave_up : int;
  s_proc_active : int;
  s_interrupted : bool;
  (* resource governance *)
  s_degraded : int;
  s_p1_level : string option;
  s_p1_detector : string;
  s_p1_miss_bound : float option;
  s_p1_entries : int;
  s_p1_recording : Fuzzer.recording_stats option;
  s_resume_skipped : int;
  (* reproduction artifacts ([run ~repro_dir]) *)
  s_repro_written : int;
  s_repro_failed : int;
  s_repro_oracle_runs : int;
  (* static pre-filter ([run ~static]) *)
  s_static : static_summary option;
}

(** Accounting for one static pre-filter pass: the syntactic candidate
    universe, the phase-1 frontier classification, and how many frontier
    pairs [--static-filter] actually skipped (each saving a full per-pair
    trial budget). *)
and static_summary = {
  st_universe : int;  (** same-location site pairs before any execution *)
  st_universe_impossible : int;  (** universe pairs refuted statically *)
  st_frontier : int;  (** phase-1 candidate pairs *)
  st_likely : int;  (** frontier pairs classified Likely *)
  st_unknown : int;
  st_impossible : int;
  st_filtered : int;  (** frontier pairs skipped (0 unless filtering on) *)
  st_wall : float;  (** classification time, seconds *)
}

type result = {
  analysis : Fuzzer.analysis;
  stats : stats;
  repro : Repro.summary;
}

(* ------------------------------------------------------------------ *)
(* Per-pair campaign state.

   [ps_first_race]/[ps_first_error] are minima over *executed* trials.
   Because a trial at index i is only ever cancelled when some already-
   known resolution bound k < i exists — and the bound can only shrink as
   more trials finish — every index at or below the final bound is
   guaranteed to execute.  Hence the final minima equal the minima a
   sequential run would observe, and the truncation point

     k* = max (first race index, first error index)

   is a pure function of the seed list: deterministic for any domain
   count and any interleaving.

   Quarantine reuses the same fixpoint argument with a different bound:
   once a pair has crashed the harness [quarantine_crashes] times, its
   bound is the Nth-smallest crash index — also monotone under new
   information, so also deterministic whenever the crashes themselves are
   (which injected chaos crashes are by construction, being pure functions
   of (pair, seed)). *)

type pair_state = {
  ps_pair : Site.Pair.t;
  ps_label : string;
  mutable ps_granted : int;  (** trial indices 0..granted-1 exist *)
  mutable ps_queued : int;  (** indices already pushed to a wave queue *)
  mutable ps_slots : Fuzzer.trial option array;  (** length >= granted *)
  mutable ps_first_race : int;  (** max_int = none yet *)
  mutable ps_first_error : int;
  mutable ps_cancelled : int;  (** trials skipped past the cutoff bound *)
  mutable ps_run : int;
  mutable ps_settled : bool;  (** savings already returned to the pool *)
  mutable ps_crash_idxs : int list;  (** indices whose trial crashed the harness *)
  mutable ps_q_skipped : int;  (** trials skipped past the quarantine bound *)
  mutable ps_exhausted : int;  (** trials cancelled by the watchdog *)
}

let resolution ps =
  if ps.ps_first_race = max_int || ps.ps_first_error = max_int then None
  else Some (max ps.ps_first_race ps.ps_first_error)

let quarantine_bound ~qn ps =
  if qn <= 0 then None
  else
    let crashes = List.length ps.ps_crash_idxs in
    if crashes < qn then None
    else Some (List.nth (List.sort Int.compare ps.ps_crash_idxs) (qn - 1))

(* The index past which this pair runs no more trials: cutoff resolution,
   quarantine, or both (whichever bites first).  Quarantine applies even
   with cutoff disabled — it is a safety boundary, not an optimisation. *)
let skip_bound ~cutoff ~qn ps =
  let r = if cutoff then resolution ps else None in
  let q = quarantine_bound ~qn ps in
  match (r, q) with
  | None, None -> None
  | (Some _ as b), None | None, (Some _ as b) -> b
  | Some a, Some b -> Some (min a b)

let grow ps wanted =
  let len = Array.length ps.ps_slots in
  if wanted > len then begin
    let slots = Array.make (max wanted (2 * len)) None in
    Array.blit ps.ps_slots 0 slots 0 len;
    ps.ps_slots <- slots
  end

(* ------------------------------------------------------------------ *)
(* Resume: a journal's trial records, keyed by (pair label, seed).  A
   resumed campaign recomputes its entire schedule from scratch; whenever
   it reaches a trial the journal already settled, it replays the record
   instead of executing.  Because trials are pure in (pair, seed), the
   resumed control flow — resolutions, quarantines, budget waves —
   matches the uninterrupted run's exactly. *)

type replayed =
  | R_finished of {
      r_race : bool;
      r_deadlock : bool;
      r_steps : int;
      r_switches : int;
      r_exns : int;
      r_wall : float;
      r_degraded : Governor.snapshot option;
    }
  | R_crashed of { r_exn : string }
  | R_exhausted of { r_reason : string; r_steps : int; r_wall : float }

(* Rebuild the journaled degradation summary.  Only the fields that feed
   the fingerprint and the report (level, trigger, evicted) are
   journaled; the run-local counters (trips, entries, peak) are not, and
   replayed trials never read them. *)
let snapshot_of_record ~degraded ~level ~trigger ~evicted =
  if not degraded then None
  else
    Some
      {
        Governor.g_level =
          Option.value ~default:Governor.Sampled (Governor.level_of_string level);
        g_trigger = Governor.trigger_of_string trigger;
        g_trips = 1;
        g_entries = 0;
        g_peak = 0;
        g_evicted = evicted;
      }

let load_resume path =
  let tbl = Hashtbl.create 512 in
  let events, skipped = Event_log.load_result path in
  let resumable =
    match events with
    | Event_log.Journal_opened { schema } :: _ -> schema = Event_log.schema_version
    | _ -> false  (* old journal: observability only, re-run everything *)
  in
  if resumable then
    List.iter
      (function
        | Event_log.Trial_finished
            {
              pair;
              seed;
              race;
              deadlock;
              steps;
              switches;
              exns;
              wall;
              degraded;
              level;
              trigger;
              evicted;
              _;
            } ->
            Hashtbl.replace tbl (pair, seed)
              (R_finished
                 {
                   r_race = race;
                   r_deadlock = deadlock;
                   r_steps = steps;
                   r_switches = switches;
                   r_exns = exns;
                   r_wall = wall;
                   r_degraded =
                     snapshot_of_record ~degraded ~level ~trigger ~evicted;
                 })
        | Event_log.Trial_crashed { pair; seed; exn_; _ } ->
            Hashtbl.replace tbl (pair, seed) (R_crashed { r_exn = exn_ })
        | Event_log.Trial_exhausted { pair; seed; reason; steps; wall; _ } ->
            Hashtbl.replace tbl (pair, seed)
              (R_exhausted { r_reason = reason; r_steps = steps; r_wall = wall })
        | _ -> ())
      events;
  (tbl, skipped)

let reason_string = function
  | Outcome.Wall_deadline -> "wall deadline"
  | Outcome.Step_deadline -> "step deadline"
  | Outcome.Heap_watermark -> "heap watermark"
  | Outcome.Detector_budget -> "detector budget"

(* ------------------------------------------------------------------ *)

let fuzz_pairs ?(domains = 1) ?(seeds = List.init 100 Fun.id) ?(cutoff = false)
    ?budget ?postpone_timeout ?(max_steps = Engine.default_config.max_steps)
    ?(log = Event_log.null ()) ?(supervision = Supervisor.default_policy) ?chaos
    ?trial_deadline ?resume ?stop ?detector_budget ?mem_budget
    ?(no_degrade = false) ?proc ~(program : Fuzzer.program)
    (pairs : Site.Pair.t list) : Fuzzer.pair_result list * stats =
  let t0 = Unix.gettimeofday () in
  let npairs = List.length pairs in
  let base_seeds = Array.of_list seeds in
  let nbase = Array.length base_seeds in
  (* Extra trials past the base list draw fresh seeds above its maximum,
     so reallocated budget never re-runs a base seed. *)
  let extra_seed_base = 1 + Array.fold_left max 0 base_seeds in
  let seed_of idx = if idx < nbase then base_seeds.(idx) else extra_seed_base + (idx - nbase) in
  let total_budget =
    match budget with Some b -> max 0 b | None -> npairs * nbase
  in
  let stop = match stop with Some s -> s | None -> stop_switch () in
  let qn = supervision.Supervisor.quarantine_crashes in
  let resume_tbl, resume_skipped =
    match resume with
    | Some path -> load_resume path
    | None -> (Hashtbl.create 1, 0)
  in
  let chaos_state = Option.map (fun plan -> (plan, Chaos.state ())) chaos in
  let trial_wall =
    match trial_deadline with
    | Some _ as w -> w
    | None -> Option.bind chaos (fun c -> c.Chaos.c_trial_deadline)
  in
  (* Per-trial governor: fresh state for each trial keeps degradation a
     pure function of (pair, seed), never of which domain ran what
     before.  A governor exists only when some budget (or a deterministic
     chaos trip) is in play; otherwise trials run exactly as before. *)
  let governor_for ~tripped =
    if detector_budget = None && mem_budget = None && not tripped then None
    else Some (Governor.create ?max_entries:detector_budget ~no_degrade ())
  in
  (* The heap watermark is a physical backstop: when it fires we first
     ride the ladder down (absorb the trip, keep going lighter), and only
     cancel the trial once the bottom rung is reached.  Without a
     governor there is no ladder, so the watermark cancels directly. *)
  let heap_hook governor =
    Option.map
      (fun g () ->
        if Governor.level g = Governor.Lockset_only then false
        else begin
          Governor.trip g Governor.Heap_watermark;
          true
        end)
      governor
  in
  let make_deadline governor =
    match (trial_wall, mem_budget) with
    | None, None -> None
    | wall, heap_mb ->
        Some (Engine.deadline ?wall ?heap_mb ?heap_hook:(heap_hook governor) ())
  in
  (* Multi-process tier: spawn the worker fleet up front and gate on the
     init handshake.  If no worker ever comes up (exec failure, target
     unresolvable in the child, impossible rlimits) the campaign degrades
     to the in-process domain pool at the same parallel width — results
     are identical either way, only the isolation boundary moves. *)
  let ppool =
    match proc with
    | None -> None
    | Some _ when npairs = 0 || total_budget = 0 -> None
    | Some sp ->
        let init =
          {
            Proc_pool.i_target = sp.Proc_pool.sp_target;
            i_max_steps = max_steps;
            i_postpone = postpone_timeout;
            i_detector_budget = detector_budget;
            i_mem_budget = mem_budget;
            i_no_degrade = no_degrade;
            i_trial_wall = trial_wall;
          }
        in
        let p = Proc_pool.create sp ~init in
        if Proc_pool.await_ready p ~timeout:15.0 then Some p
        else begin
          Proc_pool.kill_all p;
          None
        end
  in
  (* Fleet width actually achieved, for status reporting: a requested
     proc tier that degraded to in-process shows up as 0 live workers. *)
  let proc_active =
    match ppool with Some p -> Proc_pool.alive p | None -> 0
  in
  let ndomains =
    match proc with
    | Some sp -> max 1 sp.Proc_pool.sp_workers
    | None -> max 1 domains
  in
  Event_log.emit log
    (Event_log.Campaign_started
       { domains = ndomains; base_trials = nbase; budget; cutoff });
  (* Journal what --resume reused, and above all how many torn lines it
     skipped: a long-lived resume chain must not eat corruption silently
     (the final report repeats the warning from s_resume_skipped). *)
  if resume <> None then
    Event_log.emit log
      (Event_log.Resume_loaded
         { entries = Hashtbl.length resume_tbl; skipped = resume_skipped });
  let states =
    Array.of_list
      (List.map
         (fun pair ->
           {
             ps_pair = pair;
             ps_label = Site.Pair.to_string pair;
             ps_granted = 0;
             ps_queued = 0;
             ps_slots = Array.make (max nbase 1) None;
             ps_first_race = max_int;
             ps_first_error = max_int;
             ps_cancelled = 0;
             ps_run = 0;
             ps_settled = false;
             ps_crash_idxs = [];
             ps_q_skipped = 0;
             ps_exhausted = 0;
           })
         pairs)
  in
  (* Initial grant: the first [total_budget] tasks in seed-major order,
     i.e. pair i receives q + 1 trials if i < r else q, where
     total_budget = q * npairs + r — capped at the base list length. *)
  let pool = ref total_budget in
  if npairs > 0 then begin
    let q = total_budget / npairs and r = total_budget mod npairs in
    Array.iteri
      (fun i ps ->
        let g = min nbase (q + if i < r then 1 else 0) in
        grow ps g;
        ps.ps_granted <- g;
        pool := !pool - g)
      states
  end;
  let mutex = Mutex.create () in
  let domain_trials = Array.make ndomains 0 in
  let domain_busy = Array.make ndomains 0.0 in
  let executed_n = Atomic.make 0 in
  let replayed_n = Atomic.make 0 in
  let degraded_n = Atomic.make 0 in
  let crashes_n = Atomic.make 0 in
  let worker_crashes_n = Atomic.make 0 in
  let worker_respawns_n = Atomic.make 0 in
  let worker_gave_up_n = Atomic.make 0 in
  let interrupted_remaining = ref 0 in
  (* -------------------------------------------------------------- *)
  (* Trial bookkeeping, shared by fresh executions and journal replays
     so both feed resolution/quarantine state identically.            *)
  let record_trial d ps idx seed (tr : Fuzzer.trial) =
    let o = tr.Fuzzer.t_outcome in
    let race = Algo.race_created tr.Fuzzer.t_report in
    let error = race && Outcome.has_exception o in
    let deadlock = Outcome.deadlocked o in
    let newly_resolved =
      Mutex.protect mutex (fun () ->
          ps.ps_slots.(idx) <- Some tr;
          ps.ps_run <- ps.ps_run + 1;
          let before = resolution ps in
          if race && idx < ps.ps_first_race then ps.ps_first_race <- idx;
          if error && idx < ps.ps_first_error then ps.ps_first_error <- idx;
          match (before, resolution ps) with None, Some k -> Some k | _ -> None)
    in
    let dg = tr.Fuzzer.t_degraded in
    if dg <> None then Atomic.incr degraded_n;
    Event_log.emit log
      (Event_log.Trial_finished
         {
           pair = ps.ps_label;
           seed;
           domain = d;
           race;
           error;
           deadlock;
           steps = o.Outcome.steps;
           switches = o.Outcome.switches;
           exns = List.length o.Outcome.exceptions;
           wall = o.Outcome.wall_time;
           degraded = dg <> None;
           level =
             (match dg with
             | Some s -> Governor.level_to_string s.Governor.g_level
             | None -> "full");
           trigger =
             (match dg with
             | Some { Governor.g_trigger = Some tg; _ } ->
                 Governor.trigger_to_string tg
             | _ -> "");
           evicted =
             (match dg with Some s -> s.Governor.g_evicted | None -> 0);
         });
    Option.iter
      (fun k ->
        Event_log.emit log
          (Event_log.Pair_resolved { pair = ps.ps_label; at_trial = k }))
      newly_resolved
  in
  let record_crash d ps idx seed exn_str backtrace =
    let newly_quarantined =
      Mutex.protect mutex (fun () ->
          let before = quarantine_bound ~qn ps in
          ps.ps_crash_idxs <- idx :: ps.ps_crash_idxs;
          match (before, quarantine_bound ~qn ps) with
          | None, Some k -> Some (k, List.length ps.ps_crash_idxs)
          | _ -> None)
    in
    Atomic.incr crashes_n;
    Event_log.emit log
      (Event_log.Trial_crashed
         { pair = ps.ps_label; seed; domain = d; exn_ = exn_str; backtrace });
    Option.iter
      (fun (k, crashes) ->
        Event_log.emit log
          (Event_log.Pair_quarantined { pair = ps.ps_label; crashes; at_trial = k }))
      newly_quarantined
  in
  let record_exhausted d ps _idx seed reason steps wall =
    Mutex.protect mutex (fun () -> ps.ps_exhausted <- ps.ps_exhausted + 1);
    Event_log.emit log
      (Event_log.Trial_exhausted
         { pair = ps.ps_label; seed; domain = d; reason; steps; wall })
  in
  (* Skip-check and journal-replay, shared verbatim by the in-process
     worker loop (which applies them at pop time) and the multi-process
     dispatcher (which applies them at dispatch time).  Both placements
     are sound by the same argument: the skip bound only ever shrinks, so
     anything skipped under an early bound would also be truncated by the
     final one. *)
  let check_skip ps idx =
    Mutex.protect mutex (fun () ->
        match skip_bound ~cutoff ~qn ps with
        | Some k when idx > k ->
            (match (if cutoff then resolution ps else None) with
            | Some r when idx > r -> ps.ps_cancelled <- ps.ps_cancelled + 1
            | _ -> ps.ps_q_skipped <- ps.ps_q_skipped + 1);
            true
        | _ -> false)
  in
  let try_resume d ps idx seed =
    match Hashtbl.find_opt resume_tbl (ps.ps_label, seed) with
    | Some (R_finished r) ->
        Atomic.incr replayed_n;
        let tr =
          Fuzzer.trial_of_record ~degraded:r.r_degraded ~pair:ps.ps_pair ~seed
            ~race:r.r_race
            ~exns:r.r_exns ~deadlock:r.r_deadlock ~steps:r.r_steps
            ~switches:r.r_switches ~wall:r.r_wall
        in
        record_trial d ps idx seed tr;
        true
    | Some (R_crashed r) ->
        Atomic.incr replayed_n;
        record_crash d ps idx seed r.r_exn "";
        true
    | Some (R_exhausted r) ->
        Atomic.incr replayed_n;
        record_exhausted d ps idx seed r.r_reason r.r_steps r.r_wall;
        true
    | None -> false
  in
  (* One task: skip-check, then replay from the journal or execute inside
     the sandbox.  Nothing a trial does can escape this function. *)
  let process d (idx, p) =
    let ps = states.(p) in
    if not (check_skip ps idx) then begin
      let seed = seed_of idx in
      if not (try_resume d ps idx seed) then begin
          Event_log.emit log
            (Event_log.Trial_started { pair = ps.ps_label; seed; domain = d });
          let tripped =
            match chaos with
            | Some plan -> Chaos.trips_budget plan ~label:ps.ps_label ~seed
            | None -> false
          in
          let governor = governor_for ~tripped in
          let deadline = make_deadline governor in
          let chaos_inject =
            match chaos with
            | Some plan -> Chaos.inject plan ~label:ps.ps_label ~seed
            | None -> ignore
          in
          (* The injected trip runs inside the sandbox so that, under
             [no_degrade], the resulting [Budget_stop] is converted to a
             Budget_exhausted result rather than killing the worker. *)
          let inject =
            match governor with
            | Some g when tripped ->
                fun () ->
                  chaos_inject ();
                  Governor.trip g Governor.Injected
            | _ -> chaos_inject
          in
          let w0 = Unix.gettimeofday () in
          let res =
            Fuzzer.run_trial ?postpone_timeout ?deadline ?governor ~inject
              ~max_steps ~program ps.ps_pair seed
          in
          let wall = Unix.gettimeofday () -. w0 in
          domain_trials.(d) <- domain_trials.(d) + 1;
          domain_busy.(d) <- domain_busy.(d) +. wall;
          let n = Atomic.fetch_and_add executed_n 1 + 1 in
          (match chaos with
          | Some { Chaos.c_stop_after = Some m; _ } when n >= m ->
              request_stop stop
          | _ -> ());
          (match res with
          | Fuzzer.Completed tr -> record_trial d ps idx seed tr
          | Fuzzer.Harness_crash (e, bt) ->
              record_crash d ps idx seed (Printexc.to_string e) bt
          | Fuzzer.Budget_exhausted { bx_reason; bx_steps; bx_wall; _ } ->
              record_exhausted d ps idx seed (reason_string bx_reason) bx_steps
                bx_wall)
      end
    end
  in
  let run_wave wave tasks =
    Event_log.emit log (Event_log.Wave_started { wave; tasks = List.length tasks });
    let queue = Work_queue.create tasks in
    let n = max 1 (min ndomains (List.length tasks)) in
    let inflight = Array.make n None in
    let worker ~allow_death ~domain =
      let rec loop () =
        if stop_requested stop then ()
        else
          match Work_queue.pop queue with
          | None -> ()
          | Some task ->
              inflight.(domain) <- Some task;
              (match chaos_state with
              | Some (plan, st) when allow_death && Chaos.kills_worker plan st ->
                  (* The in-flight task is recorded; the supervisor's
                     on_crash hook requeues it. *)
                  raise Chaos.Injected_death
              | _ -> ());
              process domain task;
              inflight.(domain) <- None;
              loop ()
      in
      loop ()
    in
    let on_crash ~domain ~attempt e =
      (match inflight.(domain) with
      | Some task ->
          inflight.(domain) <- None;
          Work_queue.requeue queue task
      | None -> ());
      Atomic.incr worker_crashes_n;
      Event_log.emit log
        (Event_log.Worker_crashed { domain; attempt; exn_ = Printexc.to_string e })
    in
    let on_respawn ~domain ~attempt ~backoff =
      Atomic.incr worker_respawns_n;
      Event_log.emit log (Event_log.Worker_respawned { domain; attempt; backoff })
    in
    let on_give_up ~domain =
      Atomic.incr worker_gave_up_n;
      Event_log.emit log (Event_log.Worker_gave_up { domain })
    in
    let (_ : Supervisor.outcome) =
      Supervisor.supervise ~policy:supervision ~on_crash ~on_respawn ~on_give_up
        ~domains:n
        (worker ~allow_death:true)
    in
    (* If every surviving worker exited but slots gave up mid-queue, finish
       the stragglers inline, immune to injected deaths. *)
    if (not (stop_requested stop)) && Work_queue.remaining queue > 0 then
      worker ~allow_death:false ~domain:0;
    if stop_requested stop then
      interrupted_remaining :=
        !interrupted_remaining + List.length (Work_queue.drain queue)
  in
  (* ---------------------------------------------------------------- *)
  (* Multi-process wave driver.  Skip-checks and journal replays happen
     at dispatch time (see [check_skip]); only real executions ship to a
     worker process.  The assignment counter is campaign-global and
     1-based — chaos process faults ([c_kill_assignment] etc.) key on it,
     and a requeued task gets a fresh number, so a fault fires once
     rather than chasing its own retry forever. *)
  let assign_ctr = ref 0 in
  let proc_inflight : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let run_wave_proc pool wave tasks =
    Event_log.emit log (Event_log.Wave_started { wave; tasks = List.length tasks });
    let pending = Queue.create () in
    List.iter (fun t -> Queue.add t pending) tasks;
    (* Pop until a task actually ships: skipped and replayed tasks are
       satisfied supervisor-side and consume no worker. *)
    let rec dispatch worker =
      match Queue.take_opt pending with
      | None -> ()
      | Some (idx, p) ->
          let ps = states.(p) in
          if check_skip ps idx then dispatch worker
          else begin
            let seed = seed_of idx in
            if try_resume worker ps idx seed then dispatch worker
            else begin
              incr assign_ctr;
              let id = !assign_ctr in
              let die =
                (match chaos_state with
                | Some (plan, st) -> Chaos.kills_worker plan st
                | None -> false)
                ||
                match chaos with
                | Some { Chaos.c_kill_assignment = Some n; _ } -> n = id
                | _ -> false
              in
              let at n = match n with Some n -> n = id | None -> false in
              let torn =
                match chaos with
                | Some pl -> at pl.Chaos.c_torn_frame
                | None -> false
              in
              let hang =
                match chaos with
                | Some pl -> at pl.Chaos.c_hang_assignment
                | None -> false
              in
              let crash =
                match chaos with
                | Some pl -> Chaos.crashes pl ~label:ps.ps_label ~seed
                | None -> false
              in
              let stall =
                match chaos with
                | Some pl when Chaos.stalls pl ~label:ps.ps_label ~seed ->
                    pl.Chaos.c_stall_seconds
                | _ -> 0.0
              in
              let tripped =
                match chaos with
                | Some pl -> Chaos.trips_budget pl ~label:ps.ps_label ~seed
                | None -> false
              in
              Event_log.emit log
                (Event_log.Trial_started
                   { pair = ps.ps_label; seed; domain = worker });
              Hashtbl.replace proc_inflight id (idx, p);
              Proc_pool.assign pool ~worker
                {
                  Proc_pool.a_id = id;
                  a_pair = ps.ps_pair;
                  a_seed = seed;
                  a_crash = crash;
                  a_stall = stall;
                  a_tripped = tripped;
                  a_die = die;
                  a_torn = torn;
                  a_hang = hang;
                }
            end
          end
    in
    let handle_event = function
      | Proc_pool.Ev_ready { ev_worker; ev_pid } ->
          Event_log.emit log
            (Event_log.Worker_spawned { worker = ev_worker; pid = ev_pid })
      | Proc_pool.Ev_result { ev_worker; ev_id; ev_result } -> (
          match Hashtbl.find_opt proc_inflight ev_id with
          | None -> ()  (* late result from a worker already declared dead *)
          | Some (idx, p) ->
              Hashtbl.remove proc_inflight ev_id;
              let ps = states.(p) in
              let seed = seed_of idx in
              domain_trials.(ev_worker) <- domain_trials.(ev_worker) + 1;
              let n = Atomic.fetch_and_add executed_n 1 + 1 in
              (match chaos with
              | Some { Chaos.c_stop_after = Some m; _ } when n >= m ->
                  request_stop stop
              | _ -> ());
              (match ev_result with
              | Proc_pool.T_finished
                  { t_race; t_deadlock; t_steps; t_switches; t_exns; t_wall;
                    t_degraded; t_level; t_trigger; t_evicted } ->
                  domain_busy.(ev_worker) <- domain_busy.(ev_worker) +. t_wall;
                  (* The exact resume-replay path: worker results are
                     journal-shaped records, so rebuilding the trial with
                     [trial_of_record] makes multi-process aggregation
                     byte-identical to in-process execution. *)
                  let tr =
                    Fuzzer.trial_of_record
                      ~degraded:
                        (snapshot_of_record ~degraded:t_degraded
                           ~level:t_level ~trigger:t_trigger
                           ~evicted:t_evicted)
                      ~pair:ps.ps_pair ~seed ~race:t_race ~exns:t_exns
                      ~deadlock:t_deadlock ~steps:t_steps ~switches:t_switches
                      ~wall:t_wall
                  in
                  record_trial ev_worker ps idx seed tr
              | Proc_pool.T_crashed { t_exn; t_backtrace } ->
                  record_crash ev_worker ps idx seed t_exn t_backtrace
              | Proc_pool.T_exhausted { t_reason; t_steps; t_wall } ->
                  domain_busy.(ev_worker) <- domain_busy.(ev_worker) +. t_wall;
                  record_exhausted ev_worker ps idx seed t_reason t_steps
                    t_wall))
      | Proc_pool.Ev_died
          { ev_worker; ev_pid; ev_in_flight; ev_reason; ev_killed; _ } ->
          (match ev_in_flight with
          | Some id -> (
              match Hashtbl.find_opt proc_inflight id with
              | Some task ->
                  Hashtbl.remove proc_inflight id;
                  Queue.add task pending
              | None -> ())
          | None -> ());
          Atomic.incr worker_crashes_n;
          if ev_killed then
            Event_log.emit log
              (Event_log.Worker_killed
                 { worker = ev_worker; pid = ev_pid; reason = ev_reason });
          Event_log.emit log
            (Event_log.Worker_crashed
               { domain = ev_worker; attempt = 0; exn_ = ev_reason })
      | Proc_pool.Ev_respawned { ev_worker; ev_pid; ev_attempt; ev_backoff } ->
          Atomic.incr worker_respawns_n;
          Event_log.emit log
            (Event_log.Worker_spawned { worker = ev_worker; pid = ev_pid });
          Event_log.emit log
            (Event_log.Worker_respawned
               { domain = ev_worker; attempt = ev_attempt; backoff = ev_backoff })
      | Proc_pool.Ev_gave_up w ->
          Atomic.incr worker_gave_up_n;
          Event_log.emit log (Event_log.Worker_gave_up { domain = w })
    in
    let finished () =
      Queue.is_empty pending && Hashtbl.length proc_inflight = 0
    in
    while
      (not (finished ()))
      && (not (stop_requested stop))
      && not (Proc_pool.gone pool)
    do
      List.iter
        (fun w -> if not (Queue.is_empty pending) then dispatch w)
        (Proc_pool.idle_workers pool);
      if not (finished ()) then
        List.iter handle_event (Proc_pool.poll pool ~timeout:0.05)
    done;
    if stop_requested stop then begin
      interrupted_remaining :=
        !interrupted_remaining + Queue.length pending
        + Hashtbl.length proc_inflight;
      Queue.clear pending;
      Hashtbl.reset proc_inflight
    end
    else if Proc_pool.gone pool then begin
      (* The whole fleet died past its respawn budget: requeue whatever
         was in flight and finish the wave inline, immune to process
         faults — the same degradation the in-process pool applies when
         every domain slot gives up. *)
      Hashtbl.iter (fun _ task -> Queue.add task pending) proc_inflight;
      Hashtbl.reset proc_inflight;
      let rec drain () =
        if stop_requested stop then
          interrupted_remaining :=
            !interrupted_remaining + Queue.length pending
        else
          match Queue.take_opt pending with
          | None -> ()
          | Some task ->
              process 0 task;
              drain ()
      in
      drain ()
    end
  in
  (* Wave loop.  Each wave queues every granted-but-unqueued trial in
     seed-major order (trial 0 of every pair, then trial 1, ...) so all
     pairs make progress toward their resolution points together.  Between
     waves — a deterministic barrier — resolved and quarantined pairs
     return their unused budget to the pool, which is re-granted
     round-robin to unresolved pairs.  The refund is *logical*:
     granted - (bound + 1), a pure function of the bound, never of how
     many trials some worker happened to skip first — so reallocation is
     as deterministic as the bounds themselves. *)
  let waves = ref 0 in
  let continue_ = ref (npairs > 0 && total_budget > 0 && not (stop_requested stop)) in
  while !continue_ do
    let tasks = ref [] in
    Array.iteri
      (fun p ps ->
        for idx = ps.ps_queued to ps.ps_granted - 1 do
          tasks := (idx, p) :: !tasks
        done;
        ps.ps_queued <- ps.ps_granted)
      states;
    let tasks =
      List.sort
        (fun (i1, p1) (i2, p2) ->
          match Int.compare i1 i2 with 0 -> Int.compare p1 p2 | c -> c)
        !tasks
    in
    if tasks <> [] then begin
      (match ppool with
      | Some pool -> run_wave_proc pool !waves tasks
      | None -> run_wave !waves tasks);
      incr waves
    end;
    if stop_requested stop then continue_ := false
    else begin
      (* settle pairs that hit a bound: unused grants refill the pool *)
      Array.iter
        (fun ps ->
          match skip_bound ~cutoff ~qn ps with
          | Some b when not ps.ps_settled ->
              ps.ps_settled <- true;
              pool := !pool + max 0 (ps.ps_granted - (b + 1))
          | _ -> ())
        states;
      let unresolved =
        Array.to_list states |> List.filter (fun ps -> not ps.ps_settled)
      in
      if (not cutoff) || !pool <= 0 || unresolved = [] then continue_ := false
      else begin
        (* round-robin reallocation, at most one base-list worth per pair
           per wave so a single unresolved pair cannot absorb a huge pool
           in one indivisible chunk *)
        let granted_now = Array.make (List.length unresolved) 0 in
        let progress = ref true in
        while !pool > 0 && !progress do
          progress := false;
          List.iteri
            (fun i ps ->
              if !pool > 0 && granted_now.(i) < nbase then begin
                grow ps (ps.ps_granted + 1);
                ps.ps_granted <- ps.ps_granted + 1;
                granted_now.(i) <- granted_now.(i) + 1;
                decr pool;
                progress := true
              end)
            unresolved
        done;
        List.iteri
          (fun i ps ->
            if granted_now.(i) > 0 then
              Event_log.emit log
                (Event_log.Budget_granted { pair = ps.ps_label; extra = granted_now.(i) }))
          unresolved;
        continue_ := List.exists (fun ps -> ps.ps_queued < ps.ps_granted) unresolved
      end
    end
  done;
  (* Tear the fleet down before the final journal writes: on interrupt
     every child is SIGKILLed and reaped immediately (no orphans survive
     the campaign), otherwise workers get a grace period to exit on the
     Shutdown frame. *)
  (match ppool with
  | None -> ()
  | Some pool ->
      if stop_requested stop then Proc_pool.kill_all pool
      else Proc_pool.shutdown pool ~grace:2.0);
  let interrupted = stop_requested stop in
  if interrupted then
    Event_log.emit log
      (Event_log.Campaign_interrupted
         { executed = Atomic.get executed_n; remaining = !interrupted_remaining });
  (* ---------------------------------------------------------------- *)
  (* Deterministic aggregation: truncate each pair at its skip bound
     (cutoff resolution and/or quarantine), discarding speculative trials
     run past it.                                                       *)
  let discarded = ref 0 in
  let results =
    Array.to_list
      (Array.map
         (fun ps ->
           if ps.ps_cancelled > 0 then
             Event_log.emit log
               (Event_log.Trials_cancelled { pair = ps.ps_label; count = ps.ps_cancelled });
           let upto =
             match skip_bound ~cutoff ~qn ps with
             | Some k -> min (k + 1) ps.ps_granted
             | None -> ps.ps_granted
           in
           let kept = ref [] in
           for idx = ps.ps_granted - 1 downto 0 do
             match ps.ps_slots.(idx) with
             | None -> ()  (* cancelled, skipped, crashed or exhausted slot *)
             | Some tr -> if idx < upto then kept := tr :: !kept else incr discarded
           done;
           let kept = !kept in
           let wall =
             List.fold_left
               (fun acc (t : Fuzzer.trial) -> acc +. t.Fuzzer.t_outcome.Outcome.wall_time)
               0.0 kept
           in
           Fuzzer.aggregate_trials ~pair:ps.ps_pair ~wall kept)
         states)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let trials = Array.fold_left ( + ) 0 domain_trials in
  let cancelled = Array.fold_left (fun acc ps -> acc + ps.ps_cancelled) 0 states in
  let stats =
    {
      s_pairs = npairs;
      s_resolved =
        Array.fold_left (fun acc ps -> if resolution ps <> None then acc + 1 else acc) 0 states;
      s_trials = trials;
      s_cancelled = cancelled;
      s_discarded = !discarded;
      s_waves = !waves;
      s_wall = wall;
      s_phase1_wall = 0.0;
      s_throughput = (if wall > 0.0 then float_of_int trials /. wall else 0.0);
      s_domains = ndomains;
      s_domain_trials = domain_trials;
      s_domain_busy = domain_busy;
      s_exhausted = Array.fold_left (fun acc ps -> acc + ps.ps_exhausted) 0 states;
      s_crashes = Atomic.get crashes_n;
      s_quarantined =
        Array.fold_left
          (fun acc ps -> if quarantine_bound ~qn ps <> None then acc + 1 else acc)
          0 states;
      s_q_skipped = Array.fold_left (fun acc ps -> acc + ps.ps_q_skipped) 0 states;
      s_replayed = Atomic.get replayed_n;
      s_worker_crashes = Atomic.get worker_crashes_n;
      s_worker_respawns = Atomic.get worker_respawns_n;
      s_worker_gave_up = Atomic.get worker_gave_up_n;
      s_proc_active = proc_active;
      s_interrupted = interrupted;
      s_degraded = Atomic.get degraded_n;
      s_p1_level = None;
      s_p1_detector = "hybrid";
      s_p1_miss_bound = None;
      s_p1_entries = 0;
      s_p1_recording = None;
      s_resume_skipped = resume_skipped;
      s_repro_written = 0;
      s_repro_failed = 0;
      s_repro_oracle_runs = 0;
      s_static = None;
    }
  in
  Event_log.emit log
    (Event_log.Campaign_finished
       { wall; trials; cancelled; throughput = stats.s_throughput });
  (results, stats)

(* ------------------------------------------------------------------ *)

let run ?(domains = 1) ?(phase1_seeds = [ 0 ]) ?(seeds_per_pair = List.init 100 Fun.id)
    ?(cutoff = false) ?budget ?postpone_timeout ?max_steps
    ?(log = Event_log.null ()) ?supervision ?chaos ?trial_deadline ?resume ?stop
    ?detector_budget ?mem_budget ?(no_degrade = false) ?proc ?repro_dir
    ?(target = "") ?repro_fuel ?static ?(static_filter = false) ?offline_detect
    ?save_traces ?corpus ?detector ?phase1 (program : Fuzzer.program) : result =
  (* A corpus wants reproduction artifacts; without an explicit repro
     directory they are written inside the corpus itself (whose directory
     must then exist before the repro pass mkdirs beneath it). *)
  let repro_dir =
    match (repro_dir, corpus) with
    | (Some _ as d), _ | d, None -> d
    | None, Some dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        Some (Filename.concat dir "repros")
  in
  (* Phase 1 is where detector state lives (phase-2 trials attach no
     detector), so this is where the entry budget really bites.  The
     governor is shared across the phase-1 seeds: detection precision is
     a whole-phase property, and the entry budget is a cap on detector
     state, which persists across seeds. *)
  let p1_gov =
    if detector_budget = None && mem_budget = None then None
    else Some (Governor.create ?max_entries:detector_budget ~no_degrade ())
  in
  let p1_deadline =
    Option.map
      (fun mb ->
        let heap_hook =
          Option.map
            (fun g () ->
              if Governor.level g = Governor.Lockset_only then false
              else begin
                Governor.trip g Governor.Heap_watermark;
                true
              end)
            p1_gov
        in
        Engine.deadline ~heap_mb:mb ?heap_hook ())
      mem_budget
  in
  let detect =
    match (offline_detect, save_traces) with
    | None, None -> Fuzzer.Inline
    | shards, _ ->
        (* Saving traces requires the record-then-detect pipeline: with
           inline detection there is no recording to persist. *)
        Fuzzer.Recorded { shards = max 1 (Option.value ~default:1 shards) }
  in
  let saved_traces = ref [] in
  let trace_sink =
    Option.map
      (fun dir ->
        if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
        fun ~seed recording ->
          let name = Printf.sprintf "trace-seed%d.rfbt" seed in
          let path = Filename.concat dir name in
          Rf_events.Btrace.save path recording;
          saved_traces :=
            (seed, path, Rf_events.Btrace.byte_size recording) :: !saved_traces)
      save_traces
  in
  (* A caller-supplied phase-1 result (serve mode re-analyzing cached
     recordings) replaces the live pass entirely: no execution, no trace
     sink — the recordings already live wherever the caller keeps them. *)
  let p1 =
    match phase1 with
    | Some p1 -> p1
    | None ->
        Fuzzer.phase1 ~seeds:phase1_seeds ?max_steps ?deadline:p1_deadline
          ?governor:p1_gov ~detect ?detector ?trace_sink program
  in
  (match (save_traces, !saved_traces) with
  | Some dir, traces ->
      Event_log.emit log
        (Event_log.Traces_saved
           {
             dir;
             count = List.length traces;
             bytes = List.fold_left (fun acc (_, _, b) -> acc + b) 0 traces;
           })
  | None, _ -> ());
  (match p1.Fuzzer.p1_recording with
  | None -> ()
  | Some r ->
      Event_log.emit log
        (Event_log.Phase1_recorded
           {
             events = r.Fuzzer.rec_events;
             bytes = r.Fuzzer.rec_bytes;
             shards = r.Fuzzer.rec_shards;
             record_wall = r.Fuzzer.rec_wall;
             detect_wall = r.Fuzzer.detect_wall;
           }));
  let p1_level =
    Option.map
      (fun s -> Governor.level_to_string s.Governor.g_level)
      p1.Fuzzer.p1_degraded
  in
  let potential = Fuzzer.potential_pairs p1 in
  Event_log.emit log
    (Event_log.Phase1_finished
       {
         potential = Site.Pair.Set.cardinal potential;
         wall = p1.Fuzzer.p1_wall;
         degraded = p1_level <> None;
         level = Option.value ~default:"full" p1_level;
         detector = p1.Fuzzer.p1_name;
         miss_bound = p1.Fuzzer.p1_stats.Rf_detect.Detector.st_miss_bound;
       });
  let pairs = Site.Pair.Set.elements potential in
  (* Static pre-filter: classify the frontier, journal every skipped pair
     with its reason, order the survivors Likely-first.  The classification
     is a pure function of the program's AST/model, so a resumed campaign
     given the same summary recomputes the same filtered set and the same
     wave order — journals and fingerprints stay deterministic. *)
  let static_sum, pairs, filtered =
    match static with
    | None -> (None, pairs, [])
    | Some st ->
        let t0 = Unix.gettimeofday () in
        let uni = Static.universe st in
        let ucounts = Static.count st uni in
        let fcounts =
          List.fold_left
            (fun c p -> Static.count_verdict c (Static.classify st p))
            Static.no_counts pairs
        in
        let surviving, filtered =
          if static_filter then Fuzzer.partition_frontier ~static:st pairs
          else (pairs, [])
        in
        let ordered = Fuzzer.order_pairs ~static:st surviving in
        let st_wall = Unix.gettimeofday () -. t0 in
        List.iter
          (fun (p, v) ->
            Event_log.emit log
              (Event_log.Pair_filtered
                 {
                   pair = Site.Pair.to_string p;
                   reason = Static.verdict_to_string v;
                 }))
          filtered;
        let sum =
          {
            st_universe = Site.Pair.Set.cardinal uni;
            st_universe_impossible = ucounts.Static.n_impossible;
            st_frontier = List.length pairs;
            st_likely = fcounts.Static.n_likely;
            st_unknown = fcounts.Static.n_unknown;
            st_impossible = fcounts.Static.n_impossible;
            st_filtered = List.length filtered;
            st_wall;
          }
        in
        Event_log.emit log
          (Event_log.Static_classified
             {
               universe = sum.st_universe;
               universe_impossible = sum.st_universe_impossible;
               frontier = sum.st_frontier;
               likely = sum.st_likely;
               unknown = sum.st_unknown;
               impossible = sum.st_impossible;
               filtered = sum.st_filtered;
               wall = st_wall;
             });
        (Some sum, ordered, filtered)
  in
  let results, stats =
    fuzz_pairs ~domains ~seeds:seeds_per_pair ~cutoff ?budget ?postpone_timeout
      ?max_steps ~log ?supervision ?chaos ?trial_deadline ?resume ?stop
      ?detector_budget ?mem_budget ~no_degrade ?proc ~program pairs
  in
  let collect p =
    List.fold_left
      (fun acc (r : Fuzzer.pair_result) ->
        if p r then Site.Pair.Set.add r.Fuzzer.pr_pair acc else acc)
      Site.Pair.Set.empty results
  in
  let analysis =
    {
      Fuzzer.a_phase1 = p1;
      results;
      real_pairs = collect Fuzzer.is_real;
      error_pairs = collect Fuzzer.is_harmful;
      deadlock_pairs = collect (fun r -> r.Fuzzer.deadlock_trials > 0);
      a_filtered = filtered;
    }
  in
  (* Reproduction pass: sequential and after the fact, so it never
     perturbs the deterministic trial aggregation above. *)
  let repro =
    match repro_dir with
    | None -> Repro.no_summary
    | Some dir ->
        let summary =
          Repro.write_all ?fuel:repro_fuel ~dir ~target ?max_steps ~program
            results
        in
        List.iter
          (fun (e : Repro.entry) ->
            let st = e.Repro.r_stats in
            Event_log.emit log
              (Event_log.Repro_written
                 {
                   pair = Site.Pair.to_string e.Repro.r_pair;
                   fingerprint = e.Repro.r_fingerprint;
                   seed = e.Repro.r_seed;
                   file = e.Repro.r_file;
                   steps_before = st.Rf_replay.Shrinker.sh_steps_before;
                   steps_after = st.Rf_replay.Shrinker.sh_steps_after;
                   switches_before = st.Rf_replay.Shrinker.sh_switches_before;
                   switches_after = st.Rf_replay.Shrinker.sh_switches_after;
                   oracle_runs = st.Rf_replay.Shrinker.sh_oracle_runs;
                 }))
          summary.Repro.written;
        summary
  in
  (* Corpus absorption: one entry per distinct error fingerprint (with
     its minimized schedule copied in), per degraded trial, and per
     saved phase-1 trace.  Deduplication across campaigns happens inside
     {!Corpus.update}; re-running the same campaign adds nothing. *)
  (match corpus with
  | None -> ()
  | Some dir ->
      let error_entries =
        List.map
          (fun (e : Repro.entry) ->
            Corpus.ingest_file ~dir ~kind:"error" ~key:e.Repro.r_fingerprint
              ~target
              ~pair:(Site.Pair.to_string e.Repro.r_pair)
              ~seed:e.Repro.r_seed ~src:e.Repro.r_file ())
          repro.Repro.written
      in
      let degraded_entries =
        List.concat_map
          (fun (r : Fuzzer.pair_result) ->
            let pair = Site.Pair.to_string r.Fuzzer.pr_pair in
            List.filter_map
              (fun (t : Fuzzer.trial) ->
                match t.Fuzzer.t_degraded with
                | None -> None
                | Some s ->
                    let level = Governor.level_to_string s.Governor.g_level in
                    Some
                      (Corpus.entry ~kind:"degraded"
                         ~key:
                           (Printf.sprintf "%s#%d@%s" pair t.Fuzzer.t_seed
                              level)
                         ~target ~pair ~seed:t.Fuzzer.t_seed ()))
              r.Fuzzer.trials)
          results
      in
      let trace_entries =
        List.rev_map
          (fun (seed, path, _) ->
            Corpus.ingest_file ~dir ~kind:"trace"
              ~key:(Printf.sprintf "%s#seed%d" target seed)
              ~target ~seed ~src:path ())
          !saved_traces
      in
      let sum =
        Corpus.update ~dir (error_entries @ degraded_entries @ trace_entries)
      in
      Event_log.emit log
        (Event_log.Corpus_updated
           {
             dir;
             added = sum.Corpus.cs_added;
             deduped = sum.Corpus.cs_deduped;
             total = sum.Corpus.cs_total;
           }));
  ({
     analysis;
     stats =
       {
         stats with
         s_phase1_wall = p1.Fuzzer.p1_wall;
         s_p1_level = p1_level;
         s_p1_detector = p1.Fuzzer.p1_name;
         s_p1_miss_bound = p1.Fuzzer.p1_stats.Rf_detect.Detector.st_miss_bound;
         s_p1_entries = p1.Fuzzer.p1_stats.Rf_detect.Detector.st_entries;
         s_p1_recording = p1.Fuzzer.p1_recording;
         s_static = static_sum;
         s_repro_written = List.length repro.Repro.written;
         s_repro_failed = repro.Repro.failed;
         s_repro_oracle_runs = repro.Repro.oracle_runs;
       };
     repro;
   }
    : result)

(* ------------------------------------------------------------------ *)
(* Determinism fingerprint                                             *)

let add_pair_record buf (r : Fuzzer.pair_result) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "pair %s race=%d err=%d dead=%d n=%d p=%.17g rs=%s es=%s\n"
    (Site.Pair.to_string r.Fuzzer.pr_pair)
    r.Fuzzer.race_trials r.Fuzzer.error_trials r.Fuzzer.deadlock_trials
    (List.length r.Fuzzer.trials)
    r.Fuzzer.probability
    (match r.Fuzzer.race_seed with Some s -> string_of_int s | None -> "-")
    (match r.Fuzzer.error_seed with Some s -> string_of_int s | None -> "-");
  List.iter
    (fun (t : Fuzzer.trial) ->
      let o = t.Fuzzer.t_outcome in
      add "  t%d race=%b exn=%d dead=%b steps=%d sw=%d%s\n" t.Fuzzer.t_seed
        (Algo.race_created t.Fuzzer.t_report)
        (List.length o.Outcome.exceptions)
        (Outcome.deadlocked o) o.Outcome.steps o.Outcome.switches
        (match t.Fuzzer.t_degraded with
        | Some s ->
            Printf.sprintf " degraded=%s ev=%d"
              (Governor.level_to_string s.Governor.g_level)
              s.Governor.g_evicted
        | None -> ""))
    r.Fuzzer.trials

(* Results are canonicalized by pair before hashing, so the fingerprint is
   independent of wave scheduling order (in particular of the Likely-first
   reordering the static pre-filter applies). *)
let sorted_results (a : Fuzzer.analysis) =
  List.sort
    (fun (x : Fuzzer.pair_result) (y : Fuzzer.pair_result) ->
      Site.Pair.compare x.Fuzzer.pr_pair y.Fuzzer.pr_pair)
    a.Fuzzer.results

let fingerprint (a : Fuzzer.analysis) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_pair_set tag set =
    add "%s:" tag;
    Site.Pair.Set.iter (fun p -> add "%s;" (Site.Pair.to_string p)) set;
    add "\n"
  in
  add_pair_set "potential" (Fuzzer.potential_pairs a.Fuzzer.a_phase1);
  (* Degradation is part of the verdict: a degraded run must fingerprint
     identically to the same degraded run elsewhere, and differently from
     a full-precision run.  Non-degraded runs add no bytes here, so their
     fingerprints are unchanged from earlier schema. *)
  (match a.Fuzzer.a_phase1.Fuzzer.p1_degraded with
  | Some s ->
      add "p1-degraded:%s ev=%d\n"
        (Governor.level_to_string s.Governor.g_level)
        s.Governor.g_evicted
  | None -> ());
  List.iter (add_pair_record buf) (sorted_results a);
  add_pair_set "real" a.Fuzzer.real_pairs;
  add_pair_set "error" a.Fuzzer.error_pairs;
  add_pair_set "deadlock" a.Fuzzer.deadlock_pairs;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let equal_verdicts a b = String.equal (fingerprint a) (fingerprint b)

(** Fingerprint of the {e confirmed} verdicts only: the real/error/deadlock
    pair sets plus the full per-trial records of every pair in them.
    Filtering Impossible pairs must not change this digest — that is the
    CI gate for [--static-filter]: all the filter may do is skip pairs that
    confirm nothing. *)
let confirmed_fingerprint (a : Fuzzer.analysis) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let add_pair_set tag set =
    add "%s:" tag;
    Site.Pair.Set.iter (fun p -> add "%s;" (Site.Pair.to_string p)) set;
    add "\n"
  in
  add_pair_set "real" a.Fuzzer.real_pairs;
  add_pair_set "error" a.Fuzzer.error_pairs;
  add_pair_set "deadlock" a.Fuzzer.deadlock_pairs;
  let confirmed =
    Site.Pair.Set.union a.Fuzzer.real_pairs
      (Site.Pair.Set.union a.Fuzzer.error_pairs a.Fuzzer.deadlock_pairs)
  in
  List.iter
    (fun (r : Fuzzer.pair_result) ->
      if Site.Pair.Set.mem r.Fuzzer.pr_pair confirmed then
        add_pair_record buf r)
    (sorted_results a);
  Digest.to_hex (Digest.string (Buffer.contents buf))
