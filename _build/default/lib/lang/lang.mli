(** Front-end for RFL, the little concurrent language: parse, statically
    check, and package programs as engine-runnable mains.

    RFL exists so closed litmus programs — the paper's Figure 1 / Figure 2
    style — can be written as source files with statement-level source
    positions, which become the {!Rf_util.Site.t}s that races are reported
    at. *)

exception Error of string
(** Lexical, syntax, and static errors, rendered as
    ["file:line:col: message"]. *)

val parse_string : ?file:string -> string -> Ast.program
(** Parse only. *)

val load_string : ?file:string -> string -> Ast.program
(** Parse and statically check (names, types, arities, constant
    initializers). *)

val load_file : string -> Ast.program
(** [load_string] on a file's contents; the basename becomes the site
    file. *)

val program : ?print:(string -> unit) -> Ast.program -> unit -> unit
(** The runnable main for {!Rf_runtime.Engine.run} /
    {!Racefuzzer.Fuzzer}: allocates globals and locks, forks every
    declared thread, joins them all.  [print] receives the output of
    [print] statements (default: stdout). *)

val program_of_string : ?file:string -> ?print:(string -> unit) -> string -> unit -> unit
