(** Lock (monitor) handles: reentrant Java-style object monitors with wait
    sets.  The handle is pure identity; the engine owns the mutable state.
    Ids come from a domain-local counter reset per run, keeping monitor
    identity deterministic per seed. *)

type t

val create : ?name:string -> unit -> t
val reset_counter : unit -> unit
(** Called by {!Engine.run}; not for user code. *)

val id : t -> int
val name : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
