lib/util/prng.mli: Format
