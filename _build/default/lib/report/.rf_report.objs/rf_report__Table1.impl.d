lib/report/table1.ml: Engine Float Fmt Fun Fuzzer List Outcome Racefuzzer Rf_detect Rf_runtime Rf_util Rf_workloads Site Stats Strategy String
