(** Test drivers for the open (library) benchmarks — paper §5.1: "A test
    driver starts by creating two empty objects of the class.  The test
    driver also creates and starts a set of threads, where each thread
    executes different methods of either of the two objects concurrently.
    We created two objects because some of the methods, such as
    containsAll, take as an argument an object of the same type."

    Drivers for Vector (JDK 1.1) and for synchronized wrappers over
    ArrayList, LinkedList, HashSet, TreeSet (JDK 1.4.2).  The wrapper
    drivers exercise exactly the buggy combination of §5.3 —
    [l1.containsAll(l2)] against mutations of [l2] — whose races RaceFuzzer
    confirms and whose resolutions throw ConcurrentModificationException /
    NoSuchElementException. *)

open Rf_runtime
open Rf_collections

(* ------------------------------------------------------------------ *)
(* Vector 1.1: internally synchronized, but Enumeration and copyInto    *)
(* read fields with no lock — every reported pair is real; the driver   *)
(* only grows the vectors, so the races stay benign (paper: 9/9, 0 exc) *)

let vector_program () =
  let v1 = Vector.create () and v2 = Vector.create () in
  for i = 1 to 3 do
    ignore (Vector.add v1 i)
  done;
  let t1 =
    Api.fork ~name:"vec-writer" (fun () ->
        for i = 4 to 8 do
          ignore (Vector.add v1 (i * 10));
          (* in-place overwrites: the element writes that race with the
             enumeration/copyInto element reads *)
          Vector.set_element_at v1 (i mod 3) (i * 100);
          ignore (Vector.add v2 i)
        done)
  in
  let t2 =
    Api.fork ~name:"vec-enum" (fun () ->
        (* grow-only driver: the enumeration races but cannot throw *)
        let it = Vector.elements v1 in
        let sum = ref 0 in
        while it.Jcoll.has_next () do
          sum := !sum + it.Jcoll.next ()
        done;
        ignore !sum)
  in
  let t3 =
    Api.fork ~name:"vec-copy" (fun () ->
        let dst = Array.make 64 0 in
        ignore (Vector.copy_into v1 dst))
  in
  let t4 =
    Api.fork ~name:"vec-reader" (fun () ->
        ignore (Vector.contains v1 2);
        ignore (Vector.get v1 0);
        ignore (Vector.size v2))
  in
  List.iter Api.join [ t1; t2; t3; t4 ]

(* ------------------------------------------------------------------ *)
(* Synchronized-wrapper drivers (JDK 1.4.2)                             *)

(* Build the paper's §5.3 scenario around any two synchronized
   collections: bulk reads of (c1, c2) racing with mutations of c2. *)
let wrapper_driver ~mk () =
  let c1 = Collections.synchronized (mk ()) and c2 = Collections.synchronized (mk ()) in
  (* seed before forking (ordered by fork edges) *)
  for i = 1 to 3 do
    ignore (c1.Jcoll.add i);
    ignore (c2.Jcoll.add (i + 1))
  done;
  let t1 =
    Api.fork ~name:"bulk-reader" (fun () ->
        (* l1.containsAll(l2): holds l1, iterates l2 unlocked; the CME /
           NoSuchElementException escapes and kills the thread, as in the
           paper's JDK experiments *)
        ignore (Collections.contains_all c1 c2))
  in
  let t2 =
    Api.fork ~name:"mutator" (fun () ->
        (* mutations of l2 under its own lock: modCount bumps that the
           unlocked iterator of t1/t4 may or may not observe *)
        ignore (c2.Jcoll.add 99);
        ignore (c2.Jcoll.remove 2);
        ignore (c2.Jcoll.add 77))
  in
  let t3 =
    Api.fork ~name:"adder" (fun () ->
        ignore (c1.Jcoll.add 42);
        ignore (c1.Jcoll.contains 1))
  in
  let t4 =
    Api.fork ~name:"equals-caller" (fun () ->
        (* equals iterates both receivers lock-free *)
        ignore (Jcoll.equals c1 c2))
  in
  List.iter Api.join [ t1; t2; t3; t4 ]

let arraylist_program () = wrapper_driver ~mk:(fun () -> Array_list.as_coll (Array_list.create ())) ()
let linkedlist_program () = wrapper_driver ~mk:(fun () -> Linked_list.as_coll (Linked_list.create ())) ()
let hashset_program () = wrapper_driver ~mk:(fun () -> Hash_set.as_coll (Hash_set.create ())) ()
let treeset_program () = wrapper_driver ~mk:(fun () -> Tree_set.as_coll (Tree_set.create ())) ()

(* ------------------------------------------------------------------ *)
(* Workload records                                                    *)

let vector =
  Workload.make ~name:"vector1.1"
    ~descr:"JDK 1.1 Vector driver: unsynchronized Enumeration/copyInto reads"
    ~sloc:45 ~known_real_races:(Some 9) ~expected_real:(Some 3)
    vector_program

let arraylist =
  Workload.make ~name:"ArrayList"
    ~descr:"synchronizedList(ArrayList) driver: containsAll/equals vs mutators"
    ~sloc:40 ~expected_real:(Some 2) arraylist_program

let linkedlist =
  Workload.make ~name:"LinkedList"
    ~descr:"synchronizedList(LinkedList) driver: containsAll/equals vs mutators"
    ~sloc:40 ~known_real_races:(Some 12) ~expected_real:(Some 2) linkedlist_program

let hashset =
  Workload.make ~name:"HashSet"
    ~descr:"synchronizedSet(HashSet) driver: containsAll/addAll vs mutators"
    ~sloc:40 ~expected_real:(Some 2) hashset_program

let treeset =
  Workload.make ~name:"TreeSet"
    ~descr:"synchronizedSet(TreeSet) driver: containsAll/addAll vs mutators"
    ~sloc:40 ~expected_real:(Some 2) treeset_program
