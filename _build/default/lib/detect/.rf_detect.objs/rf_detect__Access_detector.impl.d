lib/detect/access_detector.ml: Event Hbclock List Loc Lockset Race Rf_events Rf_util Rf_vclock Site Vclock
