(** Scheduling strategies.

    At every switch point the engine shows the strategy the *enabled*
    threads with their pending operations and the run's PRNG; the strategy
    answers with the tid to execute.  Implementations carry state in their
    closures (RaceFuzzer keeps its postponed set this way).  All randomness
    must come from the view's PRNG to preserve seed-replayability. *)

open Rf_util

type entry = { tid : int; tname : string; pend : Op.pend }

type view = {
  step : int;  (** operations executed so far *)
  enabled : entry list;  (** never empty; ascending tid order *)
  prng : Prng.t;
}

type t = { sname : string; choose : view -> int }

val name : t -> string

val make : name:string -> (view -> int) -> t
(** [choose] must return the tid of some entry in [view.enabled]. *)

val tids : view -> int list

val random : unit -> t
(** Uniform choice among enabled threads — the paper's "simple random
    scheduler" baseline (Table 1, column "Simple"). *)

val round_robin : unit -> t
(** Fair deterministic rotation. *)

val run_until_block : unit -> t
(** Keep the current thread running until it blocks: a fully
    non-preemptive scheduler. *)

val timesliced : ?quantum:int -> unit -> t
(** Preemptive fair scheduling with a fixed quantum — our model of a JVM's
    default scheduler on a lightly loaded machine, under which the paper's
    Figure 2 window virtually never lines up. *)
