(** Campaign observability {e and} durability: a structured event stream
    that doubles as the crash-recovery journal.

    Every significant campaign step — trials starting and finishing, pairs
    getting resolved or quarantined, budget moving between pairs, workers
    crashing and respawning — is an {!event}.  Sinks render events as JSONL
    (one JSON object per line, with a sequence number and
    seconds-since-start timestamp), so a campaign run can be tailed live or
    analyzed offline.  All sinks are safe to share between worker domains:
    one mutex serializes rendering, writing and closing, so lines are never
    interleaved or torn by concurrent writers.

    A file journal ({!open_file}) begins with a [Journal_opened] schema
    header and can be {!load}ed back: [Trial_finished] / [Trial_crashed] /
    [Trial_exhausted] records carry everything deterministic aggregation
    needs, which is what makes checkpoint/resume
    ([Campaign.fuzz_pairs ~resume]) possible. *)

val schema_version : int
(** Journal schema of this writer (4: static pre-filter events).  Older
    journals (v1: no header, leaner [Trial_finished]; v2: no checksums or
    degradation fields; v3: no [Pair_filtered] / [Static_classified])
    load as observability events only — the resume gate compares schemas,
    so resuming from one simply re-runs everything. *)

type event =
  | Journal_opened of { schema : int }  (** first line of a file journal *)
  | Campaign_started of {
      domains : int;
      base_trials : int;  (** trials initially granted per pair *)
      budget : int option;  (** total trial budget; [None] = pairs * base *)
      cutoff : bool;
    }
  | Phase1_finished of {
      potential : int;
      wall : float;
      degraded : bool;  (** detection ran under a tripped governor *)
      level : string;  (** final ladder level ("full" when not degraded) *)
      detector : string;  (** which detector ran ("hybrid", "sampling") *)
      miss_bound : float option;
          (** sampling only: upper bound on the probability that any
              particular racing pair went unobserved this run *)
    }
  | Phase1_recorded of {
      events : int;  (** engine events captured in the binary recordings *)
      bytes : int;  (** total sealed {!Rf_events.Btrace} size *)
      shards : int;  (** offline detection shards *)
      record_wall : float;  (** executing + recording, seconds *)
      detect_wall : float;  (** offline detection pass, seconds *)
    }
      (** phase 1 ran record-then-detect ([--offline-detect]); emitted
          just before [Phase1_finished], whose [wall] covers both
          spans *)
  | Wave_started of { wave : int; tasks : int }
  | Trial_started of { pair : string; seed : int; domain : int }
  | Trial_finished of {
      pair : string;
      seed : int;
      domain : int;
      race : bool;
      error : bool;  (** race created and an uncaught exception followed *)
      deadlock : bool;
      steps : int;
      switches : int;
      exns : int;  (** uncaught program exceptions in the trial *)
      wall : float;
      degraded : bool;  (** the trial's governor tripped at least once *)
      level : string;  (** final {!Rf_resource.Governor.level} as string *)
      trigger : string;  (** first trip trigger; [""] when not degraded *)
      evicted : int;  (** state entries shed by degradation *)
    }
      (** Carries every field deterministic aggregation and the campaign
          fingerprint read, so resume can replay it without re-executing. *)
  | Trial_crashed of {
      pair : string;
      seed : int;
      domain : int;
      exn_ : string;
      backtrace : string;
    }
      (** The harness (not the program under test) raised; the trial was
          sandboxed and the campaign continued. *)
  | Trial_exhausted of {
      pair : string;
      seed : int;
      domain : int;
      reason : string;
          (** "wall deadline", "step deadline", "heap watermark" or
              "detector budget" *)
      steps : int;
      wall : float;
    }  (** A watchdog cancelled the trial ({!Rf_runtime.Engine.deadline}). *)
  | Pair_filtered of { pair : string; reason : string }
      (** the static pre-filter proved the pair [Impossible] ([reason] is
          the {!Rf_static.Static.verdict} rendering); no phase-2 trial
          will run for it *)
  | Static_classified of {
      universe : int;  (** same-variable site pairs in the whole program *)
      universe_impossible : int;
      frontier : int;  (** phase-1 candidate pairs handed to the filter *)
      likely : int;
      unknown : int;
      impossible : int;  (** frontier pairs classified [Impossible] *)
      filtered : int;  (** pairs actually skipped (0 unless filtering) *)
      wall : float;  (** classification time, seconds *)
    }
      (** summary of one {!Rf_static.Static.classify} pass over the
          phase-1 frontier, emitted whether or not [--static-filter]
          actually skips anything *)
  | Pair_resolved of { pair : string; at_trial : int }
      (** the pair is classified real and harmful by its trial prefix
          [0..at_trial]; queued trials past that index will be cancelled *)
  | Pair_quarantined of { pair : string; crashes : int; at_trial : int }
      (** the pair crashed the harness [crashes] times; trials past
          [at_trial] are skipped and the pair is reported, not fatal *)
  | Trials_cancelled of { pair : string; count : int }
  | Budget_granted of { pair : string; extra : int }
      (** trials freed by a resolved pair, reallocated to this one *)
  | Worker_crashed of { domain : int; attempt : int; exn_ : string }
  | Worker_respawned of { domain : int; attempt : int; backoff : float }
  | Worker_gave_up of { domain : int }
      (** respawn budget exhausted; the campaign continues degraded *)
  | Worker_spawned of { worker : int; pid : int }
      (** a multi-process campaign worker process started ({!Proc_pool}) *)
  | Worker_killed of { worker : int; pid : int; reason : string }
      (** the supervisor SIGKILLed a worker process: heartbeat deadline
          exceeded, corrupt IPC frame, or campaign interruption *)
  | Traces_saved of { dir : string; count : int; bytes : int }
      (** phase-1 binary recordings persisted ([--save-traces]) *)
  | Corpus_updated of { dir : string; added : int; deduped : int; total : int }
      (** the persistent corpus absorbed this campaign's artifacts
          ([--corpus]): [added] new entries, [deduped] already present *)
  | Resume_loaded of { entries : int; skipped : int }
      (** [--resume] replayed a prior journal: [entries] finished trials
          reused, [skipped] corrupt lines dropped (those trials re-ran) *)
  | Campaign_interrupted of { executed : int; remaining : int }
      (** graceful stop: workers drained, journal flushed, partial report *)
  | Repro_written of {
      pair : string;
      fingerprint : string;  (** error fingerprint the schedule reproduces *)
      seed : int;  (** witness seed of the emitted schedule *)
      file : string;  (** the [*.sched.json] path *)
      steps_before : int;
      steps_after : int;
      switches_before : int;
      switches_after : int;
      oracle_runs : int;
    }
      (** a minimized reproduction schedule was written ([--repro-dir]);
          before/after counts are the {!Rf_replay.Shrinker} measure *)
  | Campaign_finished of {
      wall : float;
      trials : int;
      cancelled : int;
      throughput : float;  (** trials per second of phase-2 wall time *)
    }

val event_name : event -> string

val to_json : seq:int -> elapsed:float -> event -> string
(** One JSON object, no trailing newline. *)

(** {1 Reading journals back} *)

val event_of_json : string -> event option
(** Parse one journal line.  [None] for torn lines, non-JSON, or unknown
    event shapes. *)

val seal : string -> string
(** Append a ["crc"] field (FNV-1a-64 hex of the unsealed line) before
    the closing brace.  {!emit} seals every line it writes. *)

type seal_status =
  | Sealed_ok  (** checksum present and matching *)
  | Sealed_bad  (** checksum present but wrong: corrupted in place *)
  | Unsealed  (** no checksum (pre-v3 journal line) *)

val check_seal : string -> seal_status

(** {1 Flat-object JSON codec}

    The journal's line format — one flat JSON object, scalar fields only —
    reused by sibling artifacts (the {!Corpus} index) so the repo has one
    hand-rolled JSON codec, not several. *)

type jv = I of int | F of float | S of string | B of bool | Null

val render_flat : (string * jv) list -> string
(** One flat JSON object, unsealed; compose with {!seal} for durable
    lines. *)

val parse_flat : string -> (string * jv) list option
(** Inverse of {!render_flat} (field order preserved); [None] on torn or
    non-flat input. *)

val load_result : string -> event list * int
(** Read a JSONL journal; also count the checksum-bad lines that were
    skipped.  Unknown-but-well-formed lines are skipped (forward
    compatibility); a torn trailing line — the signature of a crashed
    writer — ends the journal without error; a checksum-bad line is
    skipped and counted, and reading continues (in-place corruption does
    not invalidate the rest of the journal).  Raises [Sys_error] if the
    file cannot be opened. *)

val load : string -> event list
(** {!load_result} without the skip count. *)

(** {1 Sinks} *)

type t

val null : unit -> t
(** Drops everything (and skips rendering). *)

val to_channel : out_channel -> t
(** JSONL to a channel, flushed per line; the channel is not closed by
    {!close}. *)

val open_file : string -> t
(** JSONL journal in a fresh file, starting with a [Journal_opened] schema
    header; closed by {!close}. *)

val memory : unit -> t
(** Accumulates events in memory for tests; read back with {!events}. *)

val emit : t -> event -> unit
(** Thread-safe from any domain; a no-op after {!close}. *)

val events : t -> event list
(** Events seen so far, oldest first; [[]] for non-memory sinks. *)

val flush_log : t -> unit

val close : t -> unit
(** Flush and (for {!open_file}) close the underlying channel.
    Idempotent; serialized against concurrent {!emit}s. *)
