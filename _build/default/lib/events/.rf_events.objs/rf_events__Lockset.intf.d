lib/events/lockset.mli: Format
