(** Regeneration of the paper's Table 1: per workload, the runtime of
    normal / hybrid-detection / RaceFuzzer execution, hybrid's potential
    race count, RaceFuzzer's confirmed-real count, known races, exception
    pairs (RaceFuzzer vs the simple random scheduler), and the empirical
    race-creation probability estimated over 100 trials per pair. *)

type row = {
  r_name : string;
  r_sloc : int;
  r_time_normal : float;  (** seconds, mean; negative = not measured *)
  r_time_hybrid : float;
  r_time_rf : float;
  r_potential : int;
  r_real : int;
  r_known : int option;
  r_exceptions_rf : int;
  r_exceptions_simple : int;
  r_probability : float;  (** NaN when no real race *)
  r_steps_normal : float;
  r_steps_hybrid : float;
}

type config = {
  phase1_seeds : int list;
  seeds_per_pair : int list;
  baseline_seeds : int list;
  timing_seeds : int list;
}

val default_config : config
(** The paper's protocol: 100 seeds per pair. *)

val quick_config : config
(** Reduced trials for tests and demos. *)

val row_of_workload : ?config:config -> Rf_workloads.Workload.t -> row
val generate : ?config:config -> ?workloads:Rf_workloads.Workload.t list -> unit -> row list
val render : Format.formatter -> row list -> unit
val pp_rows : Format.formatter -> row list -> unit
