examples/dsl_tour.ml: Fmt Fun List Racefuzzer Rf_detect Rf_lang Rf_runtime Rf_util Site
