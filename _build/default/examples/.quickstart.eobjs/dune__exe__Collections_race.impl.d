examples/collections_race.ml: Api Collections Fmt Fun Jcoll Linked_list List Option Outcome Printexc Racefuzzer Rf_collections Rf_runtime Rf_util Site
