(** Model of [java.util.HashSet] (JDK 1.4.2): chained hash table, not
    synchronized, fail-fast iterator over the bucket array. *)

open Rf_util
open Rf_runtime

let file = "hash_set"
let s line label = Site.make ~file ~line label

let site_size_r = s 1 "size(read)"
let site_size_w = s 2 "size(write)"
let site_mod_r = s 3 "modCount(read)"
let site_mod_w = s 4 "modCount++"
let site_bucket_r = s 5 "table[i](read)"
let site_bucket_w = s 6 "table[i](write)"
let site_it_mod = s 7 "iterator.checkForComodification"
let site_it_bucket = s 8 "iterator.next:table[i]"
let site_it_size = s 9 "iterator.hasNext:size"

type t = {
  buckets : int list Api.Sarray.t;  (** each slot is one heap location *)
  nbuckets : int;
  size : int Api.Cell.t;
  mod_count : int Api.Cell.t;
  monitor : Lock.t;
}

let create ?(nbuckets = 16) () =
  {
    buckets = Api.Sarray.make nbuckets [];
    nbuckets;
    size = Api.Cell.make ~name:"size" 0;
    mod_count = Api.Cell.make ~name:"modCount" 0;
    monitor = Lock.create ~name:"HashSet" ();
  }

let hash t e = ((e * 0x9e3779b1) land max_int) mod t.nbuckets

let size t = Api.Cell.read ~site:site_size_r t.size
let is_empty t = size t = 0

let bump_mod t =
  Api.Cell.write ~site:site_mod_w t.mod_count
    (Api.Cell.read ~site:site_mod_r t.mod_count + 1)

let contains t e =
  let b = Api.Sarray.get ~site:site_bucket_r t.buckets (hash t e) in
  List.mem e b

let add t e =
  let i = hash t e in
  let b = Api.Sarray.get ~site:site_bucket_r t.buckets i in
  if List.mem e b then false
  else begin
    Api.Sarray.set ~site:site_bucket_w t.buckets i (e :: b);
    Api.Cell.write ~site:site_size_w t.size (Api.Cell.read ~site:site_size_r t.size + 1);
    bump_mod t;
    true
  end

let remove t e =
  let i = hash t e in
  let b = Api.Sarray.get ~site:site_bucket_r t.buckets i in
  if not (List.mem e b) then false
  else begin
    Api.Sarray.set ~site:site_bucket_w t.buckets i (List.filter (fun x -> x <> e) b);
    Api.Cell.write ~site:site_size_w t.size (Api.Cell.read ~site:site_size_r t.size - 1);
    bump_mod t;
    true
  end

let clear t =
  for i = 0 to t.nbuckets - 1 do
    Api.Sarray.set ~site:site_bucket_w t.buckets i []
  done;
  Api.Cell.write ~site:site_size_w t.size 0;
  bump_mod t

let iterator t : Jcoll.iter =
  let expected = Api.Cell.read ~site:site_it_mod t.mod_count in
  let bucket = ref 0 in
  let chain = ref [] in
  let advance () =
    while !chain = [] && !bucket < t.nbuckets do
      chain := Api.Sarray.get ~site:site_it_bucket t.buckets !bucket;
      incr bucket
    done
  in
  {
    Jcoll.has_next =
      (fun () ->
        (* HashIterator keeps a cursor over the table; the size read models
           its liveness probe. *)
        ignore (Api.Cell.read ~site:site_it_size t.size);
        advance ();
        !chain <> []);
    next =
      (fun () ->
        let m = Api.Cell.read ~site:site_it_mod t.mod_count in
        if m <> expected then raise (Op.Concurrent_modification "HashSet iterator");
        advance ();
        match !chain with
        | [] -> raise (Op.No_such_element "HashSet iterator")
        | e :: rest ->
            chain := rest;
            e);
  }

let to_list_dbg t =
  let acc = ref [] in
  for i = 0 to t.nbuckets - 1 do
    acc := Api.Sarray.unsafe_peek t.buckets i @ !acc
  done;
  List.sort compare !acc

let as_coll t : Jcoll.t =
  {
    Jcoll.cname = "HashSet";
    monitor = t.monitor;
    size = (fun () -> size t);
    is_empty = (fun () -> is_empty t);
    add = (fun e -> add t e);
    remove = (fun e -> remove t e);
    contains = (fun e -> contains t e);
    clear = (fun () -> clear t);
    iterator = (fun () -> iterator t);
    to_list_dbg = (fun () -> to_list_dbg t);
    synchronized = false;
  }
