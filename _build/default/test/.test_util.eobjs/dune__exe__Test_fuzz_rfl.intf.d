test/test_fuzz_rfl.mli:
