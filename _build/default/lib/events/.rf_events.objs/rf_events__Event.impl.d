lib/events/event.ml: Fmt Loc Lockset Rf_util Site String
