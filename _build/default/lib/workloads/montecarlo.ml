(** Analogue of [montecarlo] (Java Grande, paper Table 1: 5 potential
    races, 1 real and previously known, no exceptions).

    Worker threads price paths and publish per-task results through four
    lock-guarded flag handshakes — implicit synchronization that hybrid
    detection cannot see, contributing four false-alarm pairs.  The one
    real race: worker 0 publishes a [latest_result] sample without any
    lock, which the coordinator polls unsynchronized (single-writer, so
    benign). *)

open Rf_util
open Rf_runtime

let file = "montecarlo"
let s line label = Site.make ~file ~line label

let site_latest_w = s 1 "latest_result(write)"
let site_latest_r = s 2 "latest_result(read)"
let site_sum_sync = s 3 "results.sync"
let site_sum_r = s 4 "sum(read)"
let site_sum_w = s 5 "sum(write)"

let real_pairs () = [ Site.Pair.make site_latest_w site_latest_r ]

let program ?(nworkers = 4) ?(ntasks = 8) () =
  let handshakes =
    List.init 4 (fun i ->
        Common.Handshake.create
          ~name:(Printf.sprintf "mc.result%d" i)
          ~write_site:(s (10 + (2 * i)) (Printf.sprintf "result%d(write)" i))
          ~read_site:(s (11 + (2 * i)) (Printf.sprintf "result%d(read)" i))
          ())
  in
  let sum = Api.Cell.make ~name:"sum" 0 in
  let sum_lock = Lock.create ~name:"results" () in
  let latest = Api.Cell.make ~name:"latest_result" 0 in
  let price w task =
    (* toy geometric-walk pricing, deterministic per (w, task) *)
    let p = ref 100 in
    for i = 1 to 12 do
      p := !p + (((w + 1) * (task + 1) * i) mod 7) - 3
    done;
    !p
  in
  let worker w () =
    let task = ref w in
    while !task < ntasks do
      let value = price w !task in
      Api.sync ~site:site_sum_sync sum_lock (fun () ->
          Api.Cell.write ~site:site_sum_w sum
            (Api.Cell.read ~site:site_sum_r sum + value));
      (* real race: single-writer sample published by worker 0 only *)
      if w = 0 then Api.Cell.write ~site:site_latest_w latest value;
      (* handshake publication of the worker's first result only: the data
         cell must never be written again once the flag is up, or the
         handshake would become a real race *)
      (if !task = w then
         match List.nth_opt handshakes (w mod 4) with
         | Some hs -> Common.Handshake.publish hs value
         | None -> ());
      task := !task + nworkers
    done
  in
  let hs_threads =
    List.init nworkers (fun w -> Api.fork ~name:(Printf.sprintf "mc%d" w) (worker w))
  in
  (* The coordinator polls while the workers are still alive: the
     handshake data reads must be concurrent with the writes under weak
     happens-before (after join they would be ordered by the join edge and
     hybrid would stay silent). *)
  let consumed = Array.make (List.length handshakes) false in
  for _round = 1 to 25 do
    ignore (Api.Cell.read ~site:site_latest_r latest);
    List.iteri
      (fun i hs ->
        if not consumed.(i) then
          match Common.Handshake.consume hs with
          | Some _ -> consumed.(i) <- true
          | None -> ())
      handshakes
  done;
  List.iter Api.join hs_threads;
  ignore (Api.Cell.read ~site:site_latest_r latest)

let workload =
  Workload.make ~name:"montecarlo"
    ~descr:"Java Grande Monte Carlo analogue: handshake false alarms + one real sample race"
    ~sloc:74 ~known_real_races:(Some 1) ~expected_real:(Some 1) (fun () -> program ())
