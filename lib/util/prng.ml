(** Deterministic pseudo-random number generation.

    RaceFuzzer's replay guarantee (paper §2.2: "we can trivially replay a
    concurrent execution by picking the same seed for random number
    generation") requires that every source of nondeterminism in the engine
    draws from a single seeded stream.  We implement SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014), a small, fast, well-distributed
    generator with a trivially serializable 64-bit state. *)

type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let of_int64 state = { state }

let copy t = { state = t.state }

let state t = t.state
let set_state t s = t.state <- s

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A fresh generator whose seed is drawn from [t]; streams are
   statistically independent. *)
let split t = { state = next_int64 t }

let bool t = Int64.equal (Int64.logand (next_int64 t) 1L) 1L

(* Uniform int in [0, bound).  Rejection sampling over the low 62 bits keeps
   the distribution exact for any bound representable as a positive int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = 0x3FFF_FFFF_FFFF_FFFFL in
  let rec go () =
    let r = Int64.to_int (Int64.logand (next_int64 t) mask) in
    (* [r] is in [0, 2^62); avoid modulo bias by rejecting the tail. *)
    let limit = max_int - (max_int mod bound) in
    if r >= limit then go () else r mod bound
  in
  go ()

let float t =
  (* 53 random bits scaled to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_arr: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pp ppf t = Fmt.pf ppf "prng<%Ld>" t.state
