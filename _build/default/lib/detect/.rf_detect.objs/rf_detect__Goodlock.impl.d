lib/detect/goodlock.ml: Event Fmt Hashtbl List Rf_events Rf_util Site
