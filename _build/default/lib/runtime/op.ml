(** Pending operations: the runtime's yield points.

    Every shared-memory access and synchronization operation of a model
    program is performed as an OCaml effect carrying an ['a Op.t].
    Performing the effect suspends the thread *at* the pending operation —
    before it takes effect — which is exactly the hook RaceFuzzer needs: the
    scheduler can inspect [NextStmt(s, t)] (the pending site) and, for
    memory operations, the *dynamic* address about to be touched, and decide
    to postpone the thread simply by not resuming it (paper §2.2,
    Algorithms 1 and 2).

    The operation's side effect happens when the engine later executes the
    suspended thread, which serializes the whole run: at any moment at most
    one thread is between yield points, matching the paper's execution
    model. *)

open Rf_util

(** Model-level exceptions, mirroring their Java counterparts. *)
exception Interrupted
exception Illegal_monitor_state of string
exception Model_error of string
exception Concurrent_modification of string
exception No_such_element of string

(** Info carried by a pending memory access. *)
type mem = { site : Site.t; loc : Loc.t; access : Rf_events.Event.access }

type 'a t =
  | Mem : mem -> unit t
  | Acquire : Lock.t * Site.t -> unit t
  | Release : Lock.t * Site.t -> unit t
  | Wait : Lock.t * Site.t -> unit t
      (** entry into [o.wait()]: releases the monitor, parks in the wait set *)
  | Reacquire : Lock.t * int * bool * Site.t -> unit t
      (** engine-internal: a notified/interrupted waiter re-contending for the
          monitor at saved depth; the flag records a pending
          [InterruptedException] to deliver after reacquisition *)
  | Notify : Lock.t * bool * Site.t -> unit t  (** [true] = notifyAll *)
  | Fork : string * (unit -> unit) -> Handle.t t
  | Join : Handle.t * Site.t -> unit t
  | Interrupt : Handle.t * Site.t -> unit t
  | Sleep : Site.t -> unit t
  | Pause : unit t
      (** safepoint: a pure scheduling point with no event — inserted by
          the RFL interpreter at loop back-edges and function entries so
          that a thread computing on locals only cannot starve the
          cooperative scheduler (the analogue of JVM preemption at
          backward branches) *)

type _ Effect.t += Eff : 'a t -> 'a Effect.t

let perform (op : 'a t) : 'a = Effect.perform (Eff op)

(** Type-erased view of a pending operation, exposed to strategies. *)
type pend =
  | P_start
  | P_pause
  | P_mem of mem
  | P_acquire of { lock : int; site : Site.t }
  | P_release of { lock : int; site : Site.t }
  | P_wait of { lock : int; site : Site.t }
  | P_reacquire of { lock : int; site : Site.t }
  | P_notify of { lock : int; all : bool; site : Site.t }
  | P_fork of { child_name : string }
  | P_join of { target : int; site : Site.t }
  | P_interrupt of { target : int; site : Site.t }
  | P_sleep of { site : Site.t }

let pend_of (type a) (op : a t) : pend =
  match op with
  | Mem m -> P_mem m
  | Acquire (l, site) -> P_acquire { lock = Lock.id l; site }
  | Release (l, site) -> P_release { lock = Lock.id l; site }
  | Wait (l, site) -> P_wait { lock = Lock.id l; site }
  | Reacquire (l, _, _, site) -> P_reacquire { lock = Lock.id l; site }
  | Notify (l, all, site) -> P_notify { lock = Lock.id l; all; site }
  | Fork (name, _) -> P_fork { child_name = name }
  | Join (h, site) -> P_join { target = Handle.tid h; site }
  | Interrupt (h, site) -> P_interrupt { target = Handle.tid h; site }
  | Sleep site -> P_sleep { site }
  | Pause -> P_pause

let pend_site = function
  | P_start | P_pause | P_fork _ -> None
  | P_mem { site; _ }
  | P_acquire { site; _ }
  | P_release { site; _ }
  | P_wait { site; _ }
  | P_reacquire { site; _ }
  | P_notify { site; _ }
  | P_join { site; _ }
  | P_interrupt { site; _ }
  | P_sleep { site } ->
      Some site

let pend_mem = function P_mem m -> Some m | _ -> None

(** Synchronization (non-memory) pending operations; the paper restricts
    thread switches to these plus the racing statements (§4, citing [31]). *)
let pend_is_sync = function P_mem _ -> false | _ -> true

let pp_pend ppf =
  let open Rf_events in
  function
  | P_start -> Fmt.string ppf "start"
  | P_pause -> Fmt.string ppf "pause"
  | P_mem { site; loc; access } ->
      Fmt.pf ppf "%a %a @@ %a" Event.pp_access access Loc.pp loc Site.pp site
  | P_acquire { lock; site } -> Fmt.pf ppf "acquire L%d @@ %a" lock Site.pp site
  | P_release { lock; site } -> Fmt.pf ppf "release L%d @@ %a" lock Site.pp site
  | P_wait { lock; site } -> Fmt.pf ppf "wait L%d @@ %a" lock Site.pp site
  | P_reacquire { lock; site } -> Fmt.pf ppf "reacquire L%d @@ %a" lock Site.pp site
  | P_notify { lock; all; site } ->
      Fmt.pf ppf "%s L%d @@ %a" (if all then "notifyAll" else "notify") lock Site.pp site
  | P_fork { child_name } -> Fmt.pf ppf "fork %s" child_name
  | P_join { target; site } -> Fmt.pf ppf "join t%d @@ %a" target Site.pp site
  | P_interrupt { target; site } -> Fmt.pf ppf "interrupt t%d @@ %a" target Site.pp site
  | P_sleep { site } -> Fmt.pf ppf "sleep @@ %a" Site.pp site
