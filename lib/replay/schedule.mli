(** Recorded schedules: the self-contained, replayable artifact of one
    engine run.

    A schedule is the sequence of scheduling decisions a strategy made —
    one step per strategy consultation, carrying the chosen tid, a
    {e stability key} for the operation the chosen thread was about to
    execute (op kind + statement site, never engine-internal ids), and the
    PRNG state left behind by the decision so engine-internal draws
    (notify target selection) replay bit-exactly.  Together with the
    run metadata (target program, seed, switch policy pair, step budget)
    that is everything needed to re-create the execution on a fresh
    engine — the replay literature's observation (Ronsse–De Bosschere;
    Guo et al., see PAPERS.md) that logging scheduling decisions suffices
    for deterministic replay.

    Schedules serialize to a versioned JSON file ([rf-schedule/1],
    conventionally [*.sched.json]); {!load} rejects version drift rather
    than guessing. *)

open Rf_util
open Rf_runtime

val version : string
(** The on-disk format tag, ["rf-schedule/1"]. *)

(** {1 Stability keys} *)

(** Process-independent identity of a statement site: exactly the fields
    {!Rf_util.Site.make} interns by, so a key re-interns to the same site
    in any process. *)
type site_key = { sk_file : string; sk_line : int; sk_col : int; sk_label : string }

val site_key : Site.t -> site_key
val intern_site : site_key -> Site.t

type kind =
  | Start
  | Pause
  | Read
  | Write
  | Acquire
  | Release
  | Wait
  | Reacquire
  | Notify
  | Notify_all
  | Fork
  | Join
  | Interrupt
  | Sleep

(** What the chosen thread was about to do: op kind plus its static site
    (sites are the stable coordinates races are defined over; dynamic ids
    like lock numbers or addresses can shift under shrinking edits). *)
type key = { k_kind : kind; k_site : site_key option }

val key_of_pend : Op.pend -> key
val equal_key : key -> key -> bool
val pp_key : Format.formatter -> key -> unit

(** {1 Steps and schedules} *)

type step = {
  st_tid : int;  (** the chosen thread *)
  st_key : key;  (** stability key of its pending operation *)
  st_rng : int64;  (** PRNG state {e after} the decision, restored on replay *)
}

type meta = {
  m_target : string;  (** workload name or RFL path; [""] when unknown *)
  m_seed : int;  (** engine seed of the recorded run *)
  m_pair : (site_key * site_key) option;
      (** the RaceSet under test; replay rebuilds the [Sync_and] policy
          from it, [None] meaning [Every_op] *)
  m_max_steps : int;
  m_steps : int;  (** engine steps of the recorded outcome *)
  m_error : string option;  (** {!error_fingerprint} of the recorded outcome *)
}

type t = { meta : meta; steps : step array }

val length : t -> int
(** Recorded decisions. *)

val switches : t -> int
(** Context switches inside the schedule: adjacent steps with different
    tids. *)

val with_steps : t -> step array -> t
val pair : t -> Site.Pair.t option
(** The recorded RaceSet, re-interned. *)

val equal : t -> t -> bool

(** {1 Error fingerprints} *)

val error_fingerprint : Outcome.t -> string option
(** Classify what went wrong, stably across processes: the first uncaught
    exception (constructor text plus the site it was raised at) or a
    deadlock (blocked sites).  [None] for clean runs — including timeouts
    and watchdog cancellations, which are budget artifacts, not program
    errors. *)

(** {1 Persistence} *)

exception Format_error of string
(** Unparseable JSON, missing fields, or a version other than
    {!version}. *)

val to_json : t -> string
val of_json : string -> t
(** Raises {!Format_error}. *)

val save : string -> t -> unit
(** Atomic: writes [path.tmp] then renames, so a crash mid-write leaves
    the previous artifact (or none), never a torn file. *)

val load : string -> t
(** Raises {!Format_error} (message prefixed with the file path, covering
    truncation and corruption) and [Sys_error] (unreadable file). *)

(** {1 Rendering} *)

val pp : Format.formatter -> t -> unit
(** One-line summary: target, seed, length, switches, error. *)

val pp_narrative : Format.formatter -> t -> unit
(** The human-readable reproduction story: run metadata, then every
    decision with context-switch markers. *)
