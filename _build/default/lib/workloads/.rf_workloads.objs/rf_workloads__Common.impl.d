lib/workloads/common.ml: Api Array List Lock Op Printf Rf_runtime Rf_util Site
