lib/runtime/engine.ml: Effect Event Fmt Handle Hashtbl List Loc Lock Lockset Op Outcome Prng Rf_events Rf_util Site Strategy Trace Unix
