lib/collections/collections.ml: Api Jcoll Rf_runtime
