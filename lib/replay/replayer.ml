open Rf_util
open Rf_runtime

type mode = Strict | Exact | Lenient

type divergence = {
  d_step : int;
  d_expected_tid : int;
  d_expected : Schedule.key;
  d_got : string;
}

let pp_divergence ppf d =
  Fmt.pf ppf "step %d: expected t%d doing %a, got %s" d.d_step d.d_expected_tid
    Schedule.pp_key d.d_expected d.d_got

type status = {
  mutable taken : int;
  mutable skipped : int;
  mutable mismatched : int;
  mutable divergence : divergence option;
  mutable fell_back : bool;
}

exception Diverged of divergence

let describe_enabled (view : Strategy.view) =
  view.Strategy.enabled
  |> List.map (fun (e : Strategy.entry) ->
         Fmt.str "t%d:%a" e.Strategy.tid Schedule.pp_key
           (Schedule.key_of_pend e.Strategy.pend))
  |> String.concat " "

let strategy ?(mode = Exact) (sched : Schedule.t) ~(fallback : Strategy.t) :
    Strategy.t * status =
  let steps = sched.Schedule.steps in
  let n = Array.length steps in
  let pos = ref 0 in
  let status =
    { taken = 0; skipped = 0; mismatched = 0; divergence = None; fell_back = false }
  in
  let diverge d =
    match mode with
    | Strict -> raise (Diverged d)
    | Exact | Lenient ->
        if status.divergence = None then status.divergence <- Some d;
        status.fell_back <- true
  in
  let take (view : Strategy.view) (st : Schedule.step) =
    status.taken <- status.taken + 1;
    incr pos;
    Prng.set_state view.Strategy.prng st.Schedule.st_rng;
    st.Schedule.st_tid
  in
  let rec choose (view : Strategy.view) =
    if status.fell_back || !pos >= n then begin
      status.fell_back <- true;
      fallback.Strategy.choose view
    end
    else begin
      let st = steps.(!pos) in
      let tid = st.Schedule.st_tid in
      match List.find_opt (fun e -> e.Strategy.tid = tid) view.Strategy.enabled with
      | Some entry ->
          let live_key = Schedule.key_of_pend entry.Strategy.pend in
          if Schedule.equal_key live_key st.Schedule.st_key then take view st
          else begin
            match mode with
            | Lenient ->
                (* Edits shift keys without invalidating the interleaving
                   recipe; the tid is what steers the run. *)
                status.mismatched <- status.mismatched + 1;
                take view st
            | Strict | Exact ->
                diverge
                  {
                    d_step = !pos;
                    d_expected_tid = tid;
                    d_expected = st.Schedule.st_key;
                    d_got = Fmt.str "t%d doing %a" tid Schedule.pp_key live_key;
                  };
                fallback.Strategy.choose view
          end
      | None -> (
          match mode with
          | Lenient ->
              (* The step's thread is blocked or gone; drop the step and
                 try the next recorded decision at this same switch
                 point. *)
              status.skipped <- status.skipped + 1;
              incr pos;
              choose view
          | Strict | Exact ->
              diverge
                {
                  d_step = !pos;
                  d_expected_tid = tid;
                  d_expected = st.Schedule.st_key;
                  d_got =
                    Fmt.str "t%d not enabled (enabled: %s)" tid
                      (describe_enabled view);
                };
              fallback.Strategy.choose view)
    end
  in
  (Strategy.make ~name:("replay+" ^ fallback.Strategy.sname) choose, status)
