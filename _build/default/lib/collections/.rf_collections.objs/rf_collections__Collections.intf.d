lib/collections/collections.mli: Jcoll
