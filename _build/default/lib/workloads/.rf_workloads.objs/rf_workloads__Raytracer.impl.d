lib/workloads/raytracer.ml: Api List Printf Rf_runtime Rf_util Site Workload
