(** Recorded event traces: the input to offline detection and the witness
    used to verify seed-based replay (two runs with one seed must produce
    [equal] traces). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val add : t -> Event.t -> unit

val get : t -> int -> Event.t
(** Raises [Invalid_argument] out of bounds. *)

val iter : (Event.t -> unit) -> t -> unit
val iteri : (int -> Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Event.t list

val equal : t -> t -> bool
(** Event-by-event equality: the replay check. *)

val fingerprint : t -> int
(** Cheap order-sensitive digest for quick replay comparisons. *)

val count_mem : t -> int
val count_sync : t -> int
val pp : Format.formatter -> t -> unit
