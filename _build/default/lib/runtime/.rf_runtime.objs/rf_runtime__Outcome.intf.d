lib/runtime/outcome.mli: Format Rf_events Rf_util Site Trace
