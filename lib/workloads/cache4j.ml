(** Analogue of [cache4j] (paper Table 1: 18 potential, 2 real races, 1
    exception pair — previously unknown; §5.3 describes the bug).

    The cache itself is a properly synchronized map.  The bug lives in the
    cleaner thread (cache4j's [CacheCleaner]):

    {v
      Cleaner (Thread2):                 User (Thread1):
        _sleep = true;                     synchronized (cleaner) {
        <unprotected window>                 if (_sleep) { cleaner.interrupt(); }
        try { sleep(interval); }           }
        catch (Throwable t) {}
        finally { _sleep = false; }
    v}

    [_sleep] is written by the cleaner with no lock and read by the user
    thread under the cleaner's monitor: two real racing statement pairs
    ((write-true, read) and (write-false, read)).  When the interrupt lands
    while the cleaner sits in the window between setting [_sleep] and
    entering the protected sleep — the adjacency RaceFuzzer creates — the
    InterruptedException is delivered outside the try and kills the
    cleaner: the paper's previously unknown uncaught exception.

    The window is modelled as an explicit interruptible [Api.sleep] before
    the protected one; in cache4j it is the code between the assignment and
    the JVM's actual parking of the thread.  A farm of handshakes supplies
    the remaining (false) potential races of the 18 the paper reports. *)

open Rf_util
open Rf_runtime

let file = "cache4j"
let s line label = Site.make ~file ~line label

let site_sleep_w_true = s 1 "_sleep=true"
let site_sleep_w_false = s 2 "_sleep=false"
let site_sleep_r = s 3 "if(_sleep)"
let site_window = s 4 "pre-try window"
let site_sleep_protected = s 5 "sleep(_cleanInterval)"
let site_map_sync = s 6 "cache.sync"
let site_map_r = s 7 "cache.buckets(read)"
let site_map_w = s 8 "cache.buckets(write)"

let real_pairs () =
  [
    Site.Pair.make site_sleep_w_true site_sleep_r;
    Site.Pair.make site_sleep_w_false site_sleep_r;
  ]

(* The harmful adjacency is (read, write-false): bringing [if (_sleep)]
   temporally next to [_sleep = false] lets the user observe [true] at the
   last possible moment and interrupt a cleaner that is about to leave the
   protected region — the InterruptedException then fires in the next
   cycle's unprotected window. Fuzzing the (write-true, read) pair instead
   always lines the read up *before* the flag goes up, so it reads false
   and never interrupts: a real but harmless adjacency. *)
let harmful_pair = Site.Pair.make site_sleep_w_false site_sleep_r

let program ?(ncycles = 3) ?(nops = 10) () =
  let farm = Common.Farm.create ~file ~base_line:100 8 in
  (* synchronized cache: int -> int, 8 buckets *)
  let cache_lock = Lock.create ~name:"cache" () in
  let buckets = Api.Sarray.make 8 [] in
  let put k v =
    Api.sync ~site:site_map_sync cache_lock (fun () ->
        let i = k mod 8 in
        let b = Api.Sarray.get ~site:site_map_r buckets i in
        Api.Sarray.set ~site:site_map_w buckets i ((k, v) :: List.remove_assoc k b))
  in
  let get k =
    Api.sync ~site:site_map_sync cache_lock (fun () ->
        let b = Api.Sarray.get ~site:site_map_r buckets (k mod 8) in
        List.assoc_opt k b)
  in
  let sleep_flag = Api.Cell.make ~name:"_sleep" false in
  let cleaner_monitor = Lock.create ~name:"cleaner" () in
  let cleaner () =
    Common.Farm.publish farm 1000;
    for _cycle = 1 to ncycles do
      Api.Cell.write ~site:site_sleep_w_true sleep_flag true;
      (* the unprotected window: an interrupt landing here is uncaught *)
      Api.sleep ~site:site_window ();
      (* the long protected sleep: in cache4j the cleaner parks here for
         _cleanInterval, so an interrupt almost always lands here (caught)
         unless a scheduler deliberately squeezes it into the window *)
      (try
         for _ = 1 to 30 do
           Api.sleep ~site:site_sleep_protected ()
         done
       with Op.Interrupted -> ());
      Api.Cell.write ~site:site_sleep_w_false sleep_flag false;
      (* sweep: drop half the entries *)
      Api.sync ~site:site_map_sync cache_lock (fun () ->
          for i = 0 to 7 do
            let b = Api.Sarray.get ~site:site_map_r buckets i in
            Api.Sarray.set ~site:site_map_w buckets i
              (List.filter (fun (k, _) -> k mod 2 = 0) b)
          done)
    done
  in
  let h = Api.fork ~name:"CacheCleaner" cleaner in
  (* user thread: cache traffic + the racy interrupt idiom (the interrupt
     is a one-shot wake-up request, as in cache4j's shutdown path) *)
  let interrupted = ref false in
  for i = 1 to nops do
    put i (i * i);
    ignore (get (i / 2));
    if (i mod 3 = 0) && not !interrupted then
      Api.sync ~site:(s 9 "synchronized(cleaner)") cleaner_monitor (fun () ->
          if Api.Cell.read ~site:site_sleep_r sleep_flag then begin
            Api.interrupt ~site:(s 10 "cleaner.interrupt()") h;
            interrupted := true
          end)
  done;
  Common.Farm.consume_rounds farm 20;
  Api.join h

(* Ground-truth static model.  The cache map is consistently protected by
   the "cache" lock — provably race-free.  The [_sleep] pairs are the real
   bug: writes carry no lock, the read holds only the cleaner monitor, so
   no common must-lock and they survive as Likely.  The handshake farm's
   data accesses are lock-free on both sides (their synchronization is the
   implicit flag protocol, invisible to a lockset analysis) and survive
   too — phase 2 is what refutes them.  The shared flag sites live in
   [wl_common] and each occurrence holds a {e different} per-handshake
   lock, so their must-intersection is empty. *)
let static_model =
  let open Rf_static.Static in
  let b = Model.create () in
  Model.access b ~site:site_sleep_w_true ~var:"_sleep" ~write:true
    ~thread:"CacheCleaner" ~locks:[];
  Model.access b ~site:site_sleep_w_false ~var:"_sleep" ~write:true
    ~thread:"CacheCleaner" ~locks:[];
  Model.access b ~site:site_sleep_r ~var:"_sleep" ~write:false ~thread:"main"
    ~locks:[ "cleaner" ];
  List.iter
    (fun thread ->
      Model.access b ~site:site_map_r ~var:"cache.buckets" ~write:false ~thread
        ~locks:[ "cache" ];
      Model.access b ~site:site_map_w ~var:"cache.buckets" ~write:true ~thread
        ~locks:[ "cache" ])
    [ "main"; "CacheCleaner" ];
  for i = 0 to 7 do
    let var = Printf.sprintf "hs%d.data" i in
    Model.access b
      ~site:(Site.make ~file ~line:(100 + (2 * i)) (Printf.sprintf "hs%d.data(write)" i))
      ~var ~write:true ~thread:"CacheCleaner" ~locks:[];
    Model.access b
      ~site:(Site.make ~file ~line:(100 + (2 * i) + 1) (Printf.sprintf "hs%d.data(read)" i))
      ~var ~write:false ~thread:"main" ~locks:[]
  done;
  Model.access b
    ~site:(Site.make ~file:"wl_common" ~line:20 "hs.flag=1")
    ~var:"hs.flag" ~write:true ~thread:"CacheCleaner" ~locks:[];
  Model.access b
    ~site:(Site.make ~file:"wl_common" ~line:21 "hs.flag?")
    ~var:"hs.flag" ~write:false ~thread:"main" ~locks:[];
  Model.build b

let workload =
  Workload.make ~name:"cache4j"
    ~descr:"cache4j analogue: _sleep/interrupt race crashes the cleaner (paper §5.3)"
    ~sloc:96 ~expected_real:(Some 2) ~static:(Some static_model)
    (fun () -> program ())
