(** Model of [java.util.Vector] as of JDK 1.1 (paper Table 1: 9 potential
    races, all 9 real and previously known).

    Mutators and point queries are internally synchronized on the vector's
    own monitor, but — as in JDK 1.1 — the [Enumeration] returned by
    [elements()] reads [elementCount] and [elementData] with *no* lock, and
    the bulk helpers [copy_into]/[last_index_of] re-read fields between
    synchronized sections.  Every racy pair here is a *real* race: there is
    no implicit synchronization to fool phase 2, matching the paper's
    potential = real = known column for vector 1.1. *)

open Rf_util
open Rf_runtime

let file = "vector"
let s line label = Site.make ~file ~line label

let site_count_r = s 1 "elementCount(read,sync)"
let site_count_w = s 2 "elementCount(write,sync)"
let site_data_r = s 3 "elementData[i](read,sync)"
let site_data_w = s 4 "elementData[i](write,sync)"
let site_enum_count = s 5 "Enumeration.elementCount(read,unsync)"
let site_enum_data = s 6 "Enumeration.elementData[i](read,unsync)"
let site_copy_count = s 7 "copyInto.elementCount(read,unsync)"
let site_copy_data = s 8 "copyInto.elementData[i](read,unsync)"

type t = {
  data : int Api.Sarray.t Api.Cell.t;
  count : int Api.Cell.t;  (** elementCount *)
  monitor : Lock.t;
}

let site_arr_r = s 9 "elementData(read)"
let site_arr_w = s 10 "elementData(write)"

let create ?(capacity = 8) () =
  {
    data = Api.Cell.make ~name:"elementData" (Api.Sarray.make (max 1 capacity) 0);
    count = Api.Cell.make ~name:"elementCount" 0;
    monitor = Lock.create ~name:"Vector" ();
  }

let sync t f = Api.sync t.monitor f

let size t = sync t (fun () -> Api.Cell.read ~site:site_count_r t.count)
let is_empty t = size t = 0

let ensure_capacity_locked t needed =
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  if needed > Api.Sarray.length arr then begin
    let bigger = Api.Sarray.make (2 * Api.Sarray.length arr) 0 in
    let n = Api.Cell.read ~site:site_count_r t.count in
    for i = 0 to n - 1 do
      Api.Sarray.set ~site:site_data_w bigger i (Api.Sarray.get ~site:site_data_r arr i)
    done;
    Api.Cell.write ~site:site_arr_w t.data bigger
  end

let add t e =
  sync t (fun () ->
      let n = Api.Cell.read ~site:site_count_r t.count in
      ensure_capacity_locked t (n + 1);
      let arr = Api.Cell.read ~site:site_arr_r t.data in
      Api.Sarray.set ~site:site_data_w arr n e;
      Api.Cell.write ~site:site_count_w t.count (n + 1));
  true

let get t i =
  sync t (fun () ->
      let n = Api.Cell.read ~site:site_count_r t.count in
      if i < 0 || i >= n then
        raise (Op.No_such_element (Printf.sprintf "Vector.elementAt(%d) of size %d" i n));
      let arr = Api.Cell.read ~site:site_arr_r t.data in
      Api.Sarray.get ~site:site_data_r arr i)

(** [setElementAt(e, i)]: in-place overwrite under the monitor.  Its
    element write genuinely races with the Enumeration's and copyInto's
    unsynchronized element reads — unlike append, whose writes are ordered
    before any read through the (racy but directional) elementCount
    publication. *)
let set_element_at t i e =
  sync t (fun () ->
      let n = Api.Cell.read ~site:site_count_r t.count in
      if i < 0 || i >= n then
        raise (Op.No_such_element (Printf.sprintf "Vector.setElementAt(%d) of size %d" i n));
      let arr = Api.Cell.read ~site:site_arr_r t.data in
      Api.Sarray.set ~site:site_data_w arr i e)

let index_of t e =
  sync t (fun () ->
      let n = Api.Cell.read ~site:site_count_r t.count in
      let arr = Api.Cell.read ~site:site_arr_r t.data in
      let rec go i =
        if i >= n then -1
        else if Api.Sarray.get ~site:site_data_r arr i = e then i
        else go (i + 1)
      in
      go 0)

let contains t e = index_of t e >= 0

let remove_at_locked t i =
  let n = Api.Cell.read ~site:site_count_r t.count in
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  for j = i to n - 2 do
    Api.Sarray.set ~site:site_data_w arr j (Api.Sarray.get ~site:site_data_r arr (j + 1))
  done;
  Api.Cell.write ~site:site_count_w t.count (n - 1)

let remove t e =
  sync t (fun () ->
      let n = Api.Cell.read ~site:site_count_r t.count in
      let arr = Api.Cell.read ~site:site_arr_r t.data in
      let rec find i =
        if i >= n then -1
        else if Api.Sarray.get ~site:site_data_r arr i = e then i
        else find (i + 1)
      in
      let i = find 0 in
      if i < 0 then false
      else begin
        remove_at_locked t i;
        true
      end)

let clear t =
  sync t (fun () -> Api.Cell.write ~site:site_count_w t.count 0)

(** JDK 1.1 [Vector.elements()]: the Enumeration reads the fields with no
    synchronization — each of its reads races with every synchronized
    mutator write.  These are the table's "all real" races. *)
let elements t : Jcoll.iter =
  let cursor = ref 0 in
  {
    Jcoll.has_next =
      (fun () -> !cursor < Api.Cell.read ~site:site_enum_count t.count);
    next =
      (fun () ->
        let n = Api.Cell.read ~site:site_enum_count t.count in
        if !cursor >= n then raise (Op.No_such_element "Vector enumeration");
        let arr = Api.Cell.read ~site:site_arr_r t.data in
        let v = Api.Sarray.get ~site:site_enum_data arr !cursor in
        incr cursor;
        v);
  }

(** [copyInto(dst)] as in JDK 1.1: reads the count unsynchronized before
    copying — races with concurrent mutators and can throw when the vector
    shrinks mid-copy. *)
let copy_into t (dst : int array) =
  let n = Api.Cell.read ~site:site_copy_count t.count in
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  for i = 0 to n - 1 do
    if i < Array.length dst then
      dst.(i) <- Api.Sarray.get ~site:site_copy_data arr i
    else raise (Op.No_such_element "Vector.copyInto: destination too small")
  done;
  n

let to_list_dbg t =
  let n = Api.Cell.unsafe_peek t.count in
  let arr = Api.Cell.unsafe_peek t.data in
  List.init n (fun i -> Api.Sarray.unsafe_peek arr i)

let as_coll t : Jcoll.t =
  {
    Jcoll.cname = "Vector";
    monitor = t.monitor;
    size = (fun () -> size t);
    is_empty = (fun () -> is_empty t);
    add = (fun e -> add t e);
    remove = (fun e -> remove t e);
    contains = (fun e -> contains t e);
    clear = (fun () -> clear t);
    iterator = (fun () -> elements t);
    to_list_dbg = (fun () -> to_list_dbg t);
    synchronized = true;
  }
