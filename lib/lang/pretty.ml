(** Pretty-printer for RFL programs.

    Produces valid RFL concrete syntax: [parse (print p)] yields a program
    structurally equal to [p] up to source positions (checked by the
    round-trip property tests).  Used by tooling and by the random-program
    fuzzer to shrink and display counterexamples. *)

let prec_of_binop = function
  | Ast.Or -> 1
  | Ast.And -> 2
  | Ast.Eq | Ast.Neq -> 3
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> 4
  | Ast.Add | Ast.Sub -> 5
  | Ast.Mul | Ast.Div | Ast.Mod -> 6

let rec pp_expr_prec min_prec ppf (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Eint n -> if n < 0 then Fmt.pf ppf "(-%d)" (-n) else Fmt.int ppf n
  | Ast.Ebool b -> Fmt.bool ppf b
  | Ast.Estring s -> Fmt.pf ppf "%S" s
  | Ast.Evar x -> Fmt.string ppf x
  | Ast.Eindex (a, i) -> Fmt.pf ppf "%s[%a]" a (pp_expr_prec 0) i
  | Ast.Ebin (op, l, r) ->
      let p = prec_of_binop op in
      let body ppf () =
        Fmt.pf ppf "%a %a %a" (pp_expr_prec p) l Ast.pp_binop op (pp_expr_prec (p + 1)) r
      in
      if p < min_prec then Fmt.pf ppf "(%a)" body () else body ppf ()
  | Ast.Eneg a -> Fmt.pf ppf "-%a" (pp_expr_prec 7) a
  | Ast.Enot a -> Fmt.pf ppf "!%a" (pp_expr_prec 7) a
  | Ast.Ecall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_expr_prec 0)) args

let pp_expr ppf e = pp_expr_prec 0 ppf e

let rec pp_stmt ind ppf (st : Ast.stmt) =
  let pad = String.make ind ' ' in
  match st.Ast.s with
  | Ast.Sassign (x, e) -> Fmt.pf ppf "%s%s = %a;" pad x pp_expr e
  | Ast.Sindex_assign (a, i, e) ->
      Fmt.pf ppf "%s%s[%a] = %a;" pad a pp_expr i pp_expr e
  | Ast.Slet (x, e) -> Fmt.pf ppf "%slet %s = %a;" pad x pp_expr e
  | Ast.Sif (c, t, eo) -> (
      Fmt.pf ppf "%sif (%a) %a" pad pp_expr c (pp_block ind) t;
      match eo with
      | None -> ()
      | Some e -> Fmt.pf ppf " else %a" (pp_block ind) e)
  | Ast.Swhile (c, b) -> Fmt.pf ppf "%swhile (%a) %a" pad pp_expr c (pp_block ind) b
  | Ast.Sfor (init, c, step, b) ->
      Fmt.pf ppf "%sfor (%a %a; %a) %a" pad (pp_simple_no_pad) init pp_expr c
        pp_simple_bare step (pp_block ind) b
  | Ast.Ssync (l, b) -> Fmt.pf ppf "%ssync (%s) %a" pad l (pp_block ind) b
  | Ast.Slock l -> Fmt.pf ppf "%slock(%s);" pad l
  | Ast.Sunlock l -> Fmt.pf ppf "%sunlock(%s);" pad l
  | Ast.Swait l -> Fmt.pf ppf "%swait(%s);" pad l
  | Ast.Snotify l -> Fmt.pf ppf "%snotify(%s);" pad l
  | Ast.Snotify_all l -> Fmt.pf ppf "%snotifyall(%s);" pad l
  | Ast.Ssleep -> Fmt.pf ppf "%ssleep;" pad
  | Ast.Sassert e -> Fmt.pf ppf "%sassert %a;" pad pp_expr e
  | Ast.Serror m -> Fmt.pf ppf "%serror %S;" pad m
  | Ast.Sprint e -> Fmt.pf ppf "%sprint %a;" pad pp_expr e
  | Ast.Sskip -> Fmt.pf ppf "%sskip;" pad
  | Ast.Sreturn None -> Fmt.pf ppf "%sreturn;" pad
  | Ast.Sreturn (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_expr e
  | Ast.Scall (f, args) ->
      Fmt.pf ppf "%s%s(%a);" pad f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args

(* 'for' header components: a simple statement with trailing ';' (init) or
   bare (step) and no indentation *)
and pp_simple_no_pad ppf st =
  match st.Ast.s with
  | Ast.Slet (x, e) -> Fmt.pf ppf "let %s = %a;" x pp_expr e
  | Ast.Sassign (x, e) -> Fmt.pf ppf "%s = %a;" x pp_expr e
  | Ast.Sindex_assign (a, i, e) -> Fmt.pf ppf "%s[%a] = %a;" a pp_expr i pp_expr e
  | Ast.Scall (f, args) ->
      Fmt.pf ppf "%s(%a);" f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | _ -> invalid_arg "Pretty: non-simple statement in for header"

and pp_simple_bare ppf st =
  match st.Ast.s with
  | Ast.Slet (x, e) -> Fmt.pf ppf "let %s = %a" x pp_expr e
  | Ast.Sassign (x, e) -> Fmt.pf ppf "%s = %a" x pp_expr e
  | Ast.Sindex_assign (a, i, e) -> Fmt.pf ppf "%s[%a] = %a" a pp_expr i pp_expr e
  | Ast.Scall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | _ -> invalid_arg "Pretty: non-simple statement in for header"

and pp_block ind ppf (b : Ast.block) =
  if b = [] then Fmt.pf ppf "{ }"
  else begin
    Fmt.pf ppf "{@.";
    List.iter (fun st -> Fmt.pf ppf "%a@." (pp_stmt (ind + 2)) st) b;
    Fmt.pf ppf "%s}" (String.make ind ' ')
  end

let pp_ty = Ast.pp_ty

let pp_program ppf (p : Ast.program) =
  List.iter
    (fun (g : Ast.shared_decl) ->
      match g.Ast.garray with
      | Some n ->
          Fmt.pf ppf "shared %a[%d] %s = %a;@." pp_ty g.Ast.gty n g.Ast.gname pp_expr
            g.Ast.ginit
      | None -> Fmt.pf ppf "shared %a %s = %a;@." pp_ty g.Ast.gty g.Ast.gname pp_expr g.Ast.ginit)
    p.Ast.shareds;
  List.iter (fun (l, _) -> Fmt.pf ppf "lock %s;@." l) p.Ast.locks;
  List.iter
    (fun (f : Ast.func) ->
      Fmt.pf ppf "def %s(%a)%a %a@." f.Ast.fname
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (x, ty) -> Fmt.pf ppf "%a %s" pp_ty ty x))
        f.Ast.fparams
        (fun ppf -> function
          | None -> ()
          | Some ty -> Fmt.pf ppf " -> %a" pp_ty ty)
        f.Ast.fret (pp_block 0) f.Ast.fbody)
    p.Ast.funcs;
  List.iter
    (fun (t : Ast.thread_decl) ->
      match t.Ast.tafter with
      | [] -> Fmt.pf ppf "thread %s %a@." t.Ast.tname (pp_block 0) t.Ast.tbody
      | deps ->
          Fmt.pf ppf "thread %s after %a %a@." t.Ast.tname
            (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
            deps (pp_block 0) t.Ast.tbody)
    p.Ast.threads

let program_to_string p = Fmt.str "%a" pp_program p

(* ------------------------------------------------------------------ *)
(* Structural equality modulo positions (for round-trip tests)         *)

let rec expr_equal (a : Ast.expr) (b : Ast.expr) =
  match (a.Ast.e, b.Ast.e) with
  | Ast.Eint x, Ast.Eint y -> x = y
  | Ast.Ebool x, Ast.Ebool y -> x = y
  | Ast.Estring x, Ast.Estring y -> String.equal x y
  | Ast.Evar x, Ast.Evar y -> String.equal x y
  | Ast.Eindex (x, i), Ast.Eindex (y, j) -> String.equal x y && expr_equal i j
  | Ast.Ebin (o1, l1, r1), Ast.Ebin (o2, l2, r2) ->
      o1 = o2 && expr_equal l1 l2 && expr_equal r1 r2
  | Ast.Eneg x, Ast.Eneg y | Ast.Enot x, Ast.Enot y -> expr_equal x y
  (* printing folds negative literals: -1 prints as (-1) which re-parses as
     Eneg(Eint 1) or Eint(-1) depending on path; normalize *)
  | Ast.Eint x, Ast.Eneg { Ast.e = Ast.Eint y; _ } -> x = -y
  | Ast.Eneg { Ast.e = Ast.Eint x; _ }, Ast.Eint y -> -x = y
  | Ast.Ecall (f, xs), Ast.Ecall (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 expr_equal xs ys
  | _ -> false

let rec stmt_equal (a : Ast.stmt) (b : Ast.stmt) =
  match (a.Ast.s, b.Ast.s) with
  | Ast.Sassign (x, e), Ast.Sassign (y, f) -> String.equal x y && expr_equal e f
  | Ast.Sindex_assign (x, i, e), Ast.Sindex_assign (y, j, f) ->
      String.equal x y && expr_equal i j && expr_equal e f
  | Ast.Slet (x, e), Ast.Slet (y, f) -> String.equal x y && expr_equal e f
  | Ast.Sif (c1, t1, e1), Ast.Sif (c2, t2, e2) ->
      expr_equal c1 c2 && block_equal t1 t2
      && (match (e1, e2) with
         | None, None -> true
         | Some b1, Some b2 -> block_equal b1 b2
         | _ -> false)
  | Ast.Swhile (c1, b1), Ast.Swhile (c2, b2) -> expr_equal c1 c2 && block_equal b1 b2
  | Ast.Sfor (i1, c1, s1, b1), Ast.Sfor (i2, c2, s2, b2) ->
      stmt_equal i1 i2 && expr_equal c1 c2 && stmt_equal s1 s2 && block_equal b1 b2
  | Ast.Ssync (l1, b1), Ast.Ssync (l2, b2) -> String.equal l1 l2 && block_equal b1 b2
  | Ast.Slock a, Ast.Slock b
  | Ast.Sunlock a, Ast.Sunlock b
  | Ast.Swait a, Ast.Swait b
  | Ast.Snotify a, Ast.Snotify b
  | Ast.Snotify_all a, Ast.Snotify_all b ->
      String.equal a b
  | Ast.Ssleep, Ast.Ssleep | Ast.Sskip, Ast.Sskip -> true
  | Ast.Sassert e, Ast.Sassert f | Ast.Sprint e, Ast.Sprint f -> expr_equal e f
  | Ast.Serror m, Ast.Serror n -> String.equal m n
  | Ast.Sreturn None, Ast.Sreturn None -> true
  | Ast.Sreturn (Some e), Ast.Sreturn (Some f) -> expr_equal e f
  | Ast.Scall (f, xs), Ast.Scall (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 expr_equal xs ys
  | _ -> false

and block_equal a b = List.length a = List.length b && List.for_all2 stmt_equal a b

let program_equal (a : Ast.program) (b : Ast.program) =
  List.length a.Ast.shareds = List.length b.Ast.shareds
  && List.for_all2
       (fun (g : Ast.shared_decl) (h : Ast.shared_decl) ->
         String.equal g.Ast.gname h.Ast.gname
         && g.Ast.gty = h.Ast.gty && g.Ast.garray = h.Ast.garray
         && expr_equal g.Ast.ginit h.Ast.ginit)
       a.Ast.shareds b.Ast.shareds
  && List.map fst a.Ast.locks = List.map fst b.Ast.locks
  && List.length a.Ast.funcs = List.length b.Ast.funcs
  && List.for_all2
       (fun (f : Ast.func) (g : Ast.func) ->
         String.equal f.Ast.fname g.Ast.fname
         && f.Ast.fparams = g.Ast.fparams && f.Ast.fret = g.Ast.fret
         && block_equal f.Ast.fbody g.Ast.fbody)
       a.Ast.funcs b.Ast.funcs
  && List.length a.Ast.threads = List.length b.Ast.threads
  && List.for_all2
       (fun (t : Ast.thread_decl) (u : Ast.thread_decl) ->
         String.equal t.Ast.tname u.Ast.tname
         && t.Ast.tafter = u.Ast.tafter
         && block_equal t.Ast.tbody u.Ast.tbody)
       a.Ast.threads b.Ast.threads
