let offset = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let hash64_sub s ~pos ~len =
  let h = ref offset in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) prime
  done;
  !h

let hash64 s = hash64_sub s ~pos:0 ~len:(String.length s)

(* Native-int (63-bit) variant.  The journal seal, chaos keys and
   reservoir victim picks all predate this module and used native-int
   arithmetic with a 63-bit-truncated offset basis; existing sealed
   journals and chaos plans must keep behaving identically, so these
   folds reproduce that computation bit-for-bit rather than masking
   {!hash64}. *)
let basis63 = 0x3bf29ce484222325
let prime63 = 0x100000001b3
let fold_byte63 h byte = (h lxor (byte land 0xff)) * prime63

let fold_int63 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fold_byte63 !h (v asr (shift * 8))
  done;
  !h

let fold_string63 h s =
  let h = ref h in
  String.iter (fun c -> h := fold_byte63 !h (Char.code c)) s;
  !h

let mask63 h = h land max_int
let hex63 s = Printf.sprintf "%016x" (mask63 (fold_string63 basis63 s))
