lib/util/prng.ml: Array Fmt Int64 List
