(** Vector clocks.

    The happens-before relation of the paper (§2.1) is computed "by
    maintaining a vector clock with every thread".  A clock maps thread ids
    to logical timestamps; missing entries are implicitly 0.

    The usual lattice laws hold: [join] is the least upper bound under
    [leq], [bottom] is the unit, and [leq] is a partial order.  Events [e1]
    and [e2] with clocks [c1], [c2] are concurrent iff neither [leq c1 c2]
    nor [leq c2 c1]. *)

module Imap = Map.Make (Int)

type t = int Imap.t

let bottom : t = Imap.empty

let get t tid = match Imap.find_opt tid t with Some n -> n | None -> 0

let set t tid n = if n = 0 then Imap.remove tid t else Imap.add tid n t

let tick t tid = Imap.add tid (get t tid + 1) t

let of_list l = List.fold_left (fun acc (tid, n) -> set acc tid n) bottom l

let to_list t = Imap.bindings t

let join a b =
  Imap.union (fun _tid x y -> Some (max x y)) a b

let leq a b =
  (* a <= b iff every component of a is <= the corresponding one in b. *)
  Imap.for_all (fun tid n -> n <= get b tid) a

let equal a b = Imap.equal Int.equal a b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let compare = Imap.compare Int.compare

let is_bottom t = Imap.is_empty t

let cardinal = Imap.cardinal

let pp ppf t =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ",@ ") (fun ppf (tid, n) -> Fmt.pf ppf "t%d:%d" tid n))
    (Imap.bindings t)

let to_string t = Fmt.str "%a" pp t
