(** Render a campaign's reproduction-artifact summary
    ({!Rf_campaign.Repro.summary}) as the repro table: one line per
    distinct error fingerprint with its witness seed, shrink measure
    (steps and context switches before → after), reduction ratio,
    replay confirmation and artifact file.  Silent when the campaign
    ran without [--repro-dir] and nothing failed. *)

val render : Format.formatter -> Rf_campaign.Repro.summary -> unit
val pp : Format.formatter -> Rf_campaign.Repro.summary -> unit
