(** Happens-before clock builder: assigns every event of a stream a vector
    clock under a configurable edge policy.

    [lock_edges = false] gives the *weak* relation of hybrid detection
    (program order + fork/join/notify messages only — deliberately blind to
    lock ordering, which is what makes hybrid predictive and imprecise);
    [lock_edges = true] adds release→acquire edges, giving the classical
    precise happens-before relation. *)

open Rf_events
open Rf_vclock

type t

val create : ?governor:Rf_resource.Governor.t -> lock_edges:bool -> unit -> t
(** [governor] meters the clock tables (one logical entry per thread,
    per pending SND message, and per lock-release clock) against the
    shared trial budget.  On degradation the oldest (lowest-id) half of
    the pending message clocks is evicted; a matching RCV then simply
    contributes no edge, which can only weaken the happens-before
    relation — degraded runs over-approximate concurrency, never
    invent false orderings. *)

val feed : t -> Event.t -> Vclock.t
(** Process one event (in trace order) and return its clock: for events
    [e1] fed before [e2], [Vclock.leq (feed e1) (feed e2)] iff [e1]
    happens-before-or-equals [e2] under the policy. *)

val thread_clock : t -> int -> Vclock.t
(** Current clock of a thread (bottom if unseen). *)

val msg_evictions : t -> int
(** Pending message clocks dropped by governor compaction. *)
