lib/core/algo.ml: Fmt Hashtbl List Loc Op Prng Rf_events Rf_runtime Rf_util Site Strategy
