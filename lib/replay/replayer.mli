(** Replay: turn a recorded schedule back into a strategy.

    The replayer re-issues the recorded tids step by step, validating
    each decision against the live engine: the recorded thread must be
    enabled, and its pending operation must match the recorded stability
    key.  When the recorded thread is taken, the PRNG is restored to the
    recorded post-decision state, so engine-internal draws (notify
    target selection) consume exactly the stream of the original run —
    replaying an unedited recording is bit-exact.

    Divergence (a schedule that no longer matches the program, e.g.
    after source changes or schedule edits) is handled per {!mode}:
    validation either raises, reports and falls back, or — for the
    shrinker's oracle runs — tolerates mismatches and keeps going. *)

open Rf_runtime

type mode =
  | Strict  (** raise {!Diverged} at the first mismatch *)
  | Exact
      (** record the first mismatch in the status and fall back to the
          fallback strategy for the rest of the run (default) *)
  | Lenient
      (** shrinking mode: a key mismatch still takes the recorded tid
          (edits shift keys), a disabled recorded tid is skipped; only
          schedule exhaustion falls back *)

type divergence = {
  d_step : int;  (** index of the first mismatching schedule step *)
  d_expected_tid : int;
  d_expected : Schedule.key;
  d_got : string;  (** what the live engine offered instead *)
}

val pp_divergence : Format.formatter -> divergence -> unit

type status = {
  mutable taken : int;  (** schedule steps re-issued *)
  mutable skipped : int;  (** schedule steps dropped (lenient mode) *)
  mutable mismatched : int;  (** key mismatches tolerated (lenient mode) *)
  mutable divergence : divergence option;  (** first mismatch (exact mode) *)
  mutable fell_back : bool;  (** the fallback strategy took over *)
}

exception Diverged of divergence
(** Raised in {!Strict} mode only. *)

val strategy :
  ?mode:mode -> Schedule.t -> fallback:Strategy.t -> Strategy.t * status
(** [strategy sched ~fallback] — a strategy replaying [sched], plus the
    live status to inspect after the run.  Once the schedule is
    exhausted (every recording ends before the run does: the final
    steps after an error, or the fallback's share of a shrunk prefix)
    [fallback] drives the rest; a replay {e reproduces} when the run's
    error fingerprint matches the schedule's and [divergence = None]. *)
