test/test_report.ml: Alcotest Float Fmt Fun List Racefuzzer Rf_report Rf_util Rf_workloads String
