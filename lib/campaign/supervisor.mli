(** Worker supervision for campaign domains: detect a crashed worker,
    respawn it with exponential backoff up to a retry budget, and requeue
    whatever it had in flight (via the [on_crash] hook — the caller owns
    the in-flight bookkeeping).

    Each worker slot is supervised independently.  Every attempt runs on a
    freshly spawned domain, so a respawned worker starts with clean
    domain-local state — which, combined with the engine resetting its
    per-run counters, is why worker deaths cannot perturb trial results,
    only who computes them. *)

type policy = {
  max_respawns : int;  (** respawn budget per worker slot *)
  backoff_base : float;  (** seconds before the first respawn *)
  backoff_factor : float;  (** multiplier per subsequent respawn *)
  backoff_max : float;  (** backoff ceiling, seconds *)
  quarantine_crashes : int;
      (** harness crashes before a pair is quarantined (used by the
          campaign, carried here so one policy value configures the whole
          fault model) *)
}

val default_policy : policy
(** 3 respawns, 10ms base doubling to a 500ms cap, quarantine at 3
    crashes. *)

val backoff_delay : policy -> int -> float
(** Delay before respawn number [attempt + 1]. *)

type outcome = {
  crashes : int;  (** total worker crashes across all slots *)
  gave_up : int;  (** slots that exhausted their respawn budget *)
}

val supervise :
  ?policy:policy ->
  ?on_crash:(domain:int -> attempt:int -> exn -> unit) ->
  ?on_respawn:(domain:int -> attempt:int -> backoff:float -> unit) ->
  ?on_give_up:(domain:int -> unit) ->
  domains:int ->
  (domain:int -> unit) ->
  outcome
(** [supervise ~domains body] runs [body ~domain] for each slot
    [0..domains-1] and blocks until every slot either returns normally or
    gives up.  An exception escaping [body] is a worker crash: [on_crash]
    fires (requeue the in-flight task here), then either the slot respawns
    after {!backoff_delay} (preceded by [on_respawn]) or, past the budget,
    [on_give_up] fires and the slot stays down.  Hooks are called from the
    supervising domains and must be thread-safe.

    With [~domains:1] the single slot runs inline on the calling domain
    (same crash/respawn semantics, no domains spawned): one slot has no
    parallelism to win, and on a single core the idle supervising domains
    would turn every minor collection into a cross-domain stop-the-world
    pause.  Worker identity never affects trial results — the engine
    resets all per-run domain-local state — so the two execution shapes
    are observationally identical. *)
