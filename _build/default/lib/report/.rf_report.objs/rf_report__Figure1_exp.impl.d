lib/report/figure1_exp.ml: Fmt Fun Fuzzer List Racefuzzer Rf_util Rf_workloads Site
