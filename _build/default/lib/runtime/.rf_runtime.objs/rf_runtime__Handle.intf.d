lib/runtime/handle.mli: Format
