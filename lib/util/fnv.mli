(** FNV-1a-64 — the one hash used to seal every durable artifact.

    The campaign journal, binary trace frames, IPC frames and the corpus
    index all seal their payloads with the same polynomial; this module
    is the single definition.  Two presentations are exposed:

    - {!hash64} / {!hash64_sub}: the full 64-bit digest, used for binary
      frame seals where the checksum is stored as a little-endian
      [int64];
    - {!hex63}: the historical journal [crc] field encoding — native
      [int] arithmetic from a 63-bit-truncated offset basis, masked to
      [max_int] and rendered as 16 lowercase hex digits.  Kept
      bit-for-bit compatible so journals sealed before this module
      existed still verify; new binary formats should use {!hash64}. *)

val offset : int64
(** [0xCBF29CE484222325L], the FNV-1a-64 offset basis. *)

val prime : int64
(** [0x100000001B3L], the FNV-1a-64 prime. *)

val hash64_sub : string -> pos:int -> len:int -> int64
(** Digest of [len] bytes of the string starting at [pos]. *)

val hash64 : string -> int64
(** Digest of the whole string. *)

val hex63 : string -> string
(** [hash64 s] masked to 63 bits, as 16 lowercase hex digits. *)
