(* Benchmark & experiment harness.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- table1       -- Table 1 rows only
     dune exec bench/main.exe -- table1-quick -- Table 1 with reduced trials
     dune exec bench/main.exe -- figure1      -- Figure 1 walkthrough
     dune exec bench/main.exe -- figure2      -- Figure 2 probability series
     dune exec bench/main.exe -- micro        -- bechamel micro-benchmarks
     dune exec bench/main.exe -- ablation     -- design-choice ablations
     dune exec bench/main.exe -- parallel [TRIALS] [DOMAINS]
                                              -- sequential vs N-domain campaign speedup

   The micro benchmarks measure the per-mode execution cost (normal /
   hybrid-detection / RaceFuzzer) on representative workloads — the
   Table 1 runtime-ratio claim — plus detector and scheduler primitives. *)

open Bechamel
open Toolkit
module W = Rf_workloads

let run_engine ?(policy = Rf_runtime.Engine.Every_op) ?(listeners = []) ~seed program
    =
  ignore
    (Rf_runtime.Engine.run
       ~config:{ Rf_runtime.Engine.default_config with seed; policy }
       ~listeners ~strategy:(Rf_runtime.Strategy.random ()) program)

(* ------------------------------------------------------------------ *)
(* Bechamel micro benchmarks: one Test.make per Table-1 runtime mode    *)

let bench_mode name (w : W.Workload.t) mode =
  Test.make ~name:(Printf.sprintf "%s/%s" w.W.Workload.name name)
    (Staged.stage (fun () ->
         match mode with
         | `Normal ->
             run_engine ~policy:(Rf_runtime.Engine.Sync_and Rf_util.Site.Set.empty)
               ~seed:1 w.W.Workload.program
         | `Hybrid ->
             let d = Rf_detect.Detector.hybrid () in
             run_engine ~policy:Rf_runtime.Engine.Every_op
               ~listeners:[ Rf_detect.Detector.feed d ]
               ~seed:1 w.W.Workload.program
         | `Racefuzzer pair ->
             let report = Racefuzzer.Algo.fresh_report () in
             let strategy = Racefuzzer.Algo.strategy ~pair ~report () in
             let watch =
               Rf_util.Site.Set.add
                 (Rf_util.Site.Pair.fst pair)
                 (Rf_util.Site.Set.singleton (Rf_util.Site.Pair.snd pair))
             in
             ignore
               (Rf_runtime.Engine.run
                  ~config:
                    {
                      Rf_runtime.Engine.default_config with
                      seed = 1;
                      policy = Rf_runtime.Engine.Sync_and watch;
                    }
                  ~strategy w.W.Workload.program)))

let micro_tests () =
  [
    (* Table 1 runtime columns on the compute-heavy and an I/O-ish program *)
    bench_mode "normal" W.Moldyn.workload `Normal;
    bench_mode "hybrid" W.Moldyn.workload `Hybrid;
    bench_mode "racefuzzer" W.Moldyn.workload
      (`Racefuzzer (Rf_util.Site.Pair.make W.Moldyn.site_steps_r W.Moldyn.site_steps_w));
    bench_mode "normal" W.Weblech.workload `Normal;
    bench_mode "hybrid" W.Weblech.workload `Hybrid;
    bench_mode "racefuzzer" W.Weblech.workload (`Racefuzzer W.Weblech.harmful_pair);
    (* detector cost comparison on the same access-heavy trace *)
    Test.make ~name:"detect/hb-precise"
      (Staged.stage (fun () ->
           let d = Rf_detect.Detector.hb_precise ~cap:1024 () in
           run_engine ~listeners:[ Rf_detect.Detector.feed d ] ~seed:1
             W.Moldyn.workload.W.Workload.program));
    Test.make ~name:"detect/fasttrack"
      (Staged.stage (fun () ->
           let d = Rf_detect.Detector.fasttrack () in
           run_engine ~listeners:[ Rf_detect.Detector.feed d ] ~seed:1
             W.Moldyn.workload.W.Workload.program));
    Test.make ~name:"detect/eraser"
      (Staged.stage (fun () ->
           let d = Rf_detect.Detector.eraser () in
           run_engine ~listeners:[ Rf_detect.Detector.feed d ] ~seed:1
             W.Moldyn.workload.W.Workload.program));
    (* primitive costs *)
    Test.make ~name:"prim/vclock-join"
      (Staged.stage
         (let a = Rf_vclock.Vclock.of_list (List.init 8 (fun i -> (i, i * 3))) in
          let b = Rf_vclock.Vclock.of_list (List.init 8 (fun i -> (i, 25 - i))) in
          fun () -> ignore (Rf_vclock.Vclock.join a b)));
    Test.make ~name:"prim/prng-int"
      (Staged.stage
         (let p = Rf_util.Prng.create 7 in
          fun () -> ignore (Rf_util.Prng.int p 1000)));
    Test.make ~name:"prim/figure1-run"
      (Staged.stage (fun () -> run_engine ~seed:3 W.Figure1.program));
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"rf" ~fmt:"%s/%s" (micro_tests ()))
  in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw) instances
  in
  let results2 = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Hashtbl.iter
    (fun measure tbl ->
      Fmt.pr "## %s@." measure;
      Hashtbl.iter
        (fun name (res : Analyze.OLS.t) ->
          match Analyze.OLS.estimates res with
          | Some [ est ] -> Fmt.pr "  %-28s %12.2f ns/run@." name est
          | _ -> Fmt.pr "  %-28s (no estimate)@." name)
        tbl)
    results2

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let run_ablation () =
  let seeds = List.init 100 Fun.id in
  Fmt.pr "=== Ablation: postpone timeout (figure2, k=100) ===@.";
  Fmt.pr "%-12s %8s %8s@." "timeout" "P(race)" "P(error)";
  List.iter
    (fun timeout ->
      let r =
        Racefuzzer.Fuzzer.fuzz_pair ~seeds
          ~postpone_timeout:(match timeout with 0 -> None | t -> Some t)
          ~program:(fun () -> W.Figure2.program ~k:100 ())
          W.Figure2.race_pair
      in
      let n = List.length r.Racefuzzer.Fuzzer.trials in
      Fmt.pr "%-12s %8.2f %8.2f@."
        (if timeout = 0 then "none" else string_of_int timeout)
        r.Racefuzzer.Fuzzer.probability
        (float_of_int r.Racefuzzer.Fuzzer.error_trials /. float_of_int n))
    [ 0; 5; 50; 2000 ];
  Fmt.pr "@.=== Ablation: race resolution (always vs random), figure1 ===@.";
  (* resolution ablation is approximated by measuring the ERROR1 rate:
     random resolution gives ~0.5; a scheduler without the coin flip would
     sit at 0 or 1. We measure the achieved split as evidence. *)
  let r =
    Racefuzzer.Fuzzer.fuzz_pair ~seeds ~program:W.Figure1.program W.Figure1.real_pair
  in
  let n = List.length r.Racefuzzer.Fuzzer.trials in
  Fmt.pr "random resolution: ERROR1 in %d/%d trials (expected ~%d)@."
    r.Racefuzzer.Fuzzer.error_trials n (n / 2);
  Fmt.pr "@.=== Ablation: switch policy steps (moldyn) ===@.";
  let steps policy =
    let o =
      Rf_runtime.Engine.run
        ~config:{ Rf_runtime.Engine.default_config with seed = 2; policy }
        ~strategy:(Rf_runtime.Strategy.random ()) W.Moldyn.workload.W.Workload.program
    in
    (o.Rf_runtime.Outcome.steps, o.Rf_runtime.Outcome.switches)
  in
  let s1, w1 = steps Rf_runtime.Engine.Every_op in
  let s2, w2 = steps (Rf_runtime.Engine.Sync_and Rf_util.Site.Set.empty) in
  Fmt.pr "every-op:  %d steps, %d strategy consultations@." s1 w1;
  Fmt.pr "sync-only: %d steps, %d strategy consultations@." s2 w2

(* ------------------------------------------------------------------ *)
(* Parallel campaign: sequential vs N-domain speedup (Table 1 rows)    *)

let run_parallel ?(trials = 50) ?(domains = 4) () =
  Fmt.pr "=== Parallel campaign: 1 domain vs %d domains (%d trials/pair) ===@." domains
    trials;
  Fmt.pr "(host reports %d recommended domain(s); speedup needs real cores)@.@."
    (Domain.recommended_domain_count ());
  Fmt.pr "%-14s %6s %7s %10s %10s %8s  %s@." "workload" "pairs" "trials" "seq(s)"
    "par(s)" "speedup" "identical";
  let seeds = List.init trials Fun.id in
  let phase1_seeds = List.init 3 Fun.id in
  let seq_total = ref 0.0 and par_total = ref 0.0 and all_equal = ref true in
  List.iter
    (fun (w : W.Workload.t) ->
      let campaign d =
        Rf_campaign.Campaign.run ~domains:d ~cutoff:false ~phase1_seeds
          ~seeds_per_pair:seeds w.W.Workload.program
      in
      let seq = campaign 1 in
      let par = campaign domains in
      let s = seq.Rf_campaign.Campaign.stats.Rf_campaign.Campaign.s_wall in
      let p = par.Rf_campaign.Campaign.stats.Rf_campaign.Campaign.s_wall in
      let same =
        Rf_campaign.Campaign.equal_verdicts seq.Rf_campaign.Campaign.analysis
          par.Rf_campaign.Campaign.analysis
      in
      if not same then all_equal := false;
      seq_total := !seq_total +. s;
      par_total := !par_total +. p;
      Fmt.pr "%-14s %6d %7d %10.3f %10.3f %7.2fx  %s@." w.W.Workload.name
        seq.Rf_campaign.Campaign.stats.Rf_campaign.Campaign.s_pairs
        seq.Rf_campaign.Campaign.stats.Rf_campaign.Campaign.s_trials s p
        (if p > 0.0 then s /. p else 0.0)
        (if same then "yes" else "MISMATCH"))
    W.Registry.all;
  Fmt.pr "%-14s %6s %7s %10.3f %10.3f %7.2fx  %s@." "TOTAL" "" "" !seq_total !par_total
    (if !par_total > 0.0 then !seq_total /. !par_total else 0.0)
    (if !all_equal then "yes" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Experiment drivers                                                  *)

let run_table1 ~quick () =
  let config =
    if quick then Rf_report.Table1.quick_config else Rf_report.Table1.default_config
  in
  Fmt.pr "=== Table 1 (paper: Sen, PLDI 2008) ===@.";
  let t0 = Unix.gettimeofday () in
  let rows = Rf_report.Table1.generate ~config () in
  Rf_report.Table1.render Fmt.stdout rows;
  Fmt.pr "@.(generated in %.1fs)@." (Unix.gettimeofday () -. t0)

let run_figure1 () =
  Fmt.pr "=== Figure 1 experiment ===@.";
  Rf_report.Figure1_exp.render Fmt.stdout (Rf_report.Figure1_exp.generate ())

let run_figure2 () =
  Fmt.pr "=== Figure 2 experiment: P(race)/P(error) vs padding k ===@.";
  Rf_report.Figure2_exp.render Fmt.stdout (Rf_report.Figure2_exp.generate ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      run_table1 ~quick:false ();
      Fmt.pr "@.";
      run_figure1 ();
      Fmt.pr "@.";
      run_figure2 ();
      Fmt.pr "@.";
      run_ablation ();
      Fmt.pr "@.";
      run_micro ()
  | [ "table1" ] -> run_table1 ~quick:false ()
  | [ "table1-quick" ] -> run_table1 ~quick:true ()
  | [ "figure1" ] -> run_figure1 ()
  | [ "figure2" ] -> run_figure2 ()
  | [ "micro" ] -> run_micro ()
  | [ "ablation" ] -> run_ablation ()
  | "parallel" :: rest -> (
      match List.map int_of_string_opt rest with
      | [] -> run_parallel ()
      | [ Some trials ] -> run_parallel ~trials ()
      | [ Some trials; Some domains ] -> run_parallel ~trials ~domains ()
      | _ ->
          Fmt.epr "usage: main.exe parallel [TRIALS] [DOMAINS]@.";
          exit 2)
  | _ ->
      Fmt.epr
        "usage: main.exe [table1|table1-quick|figure1|figure2|micro|ablation|parallel]@.";
      exit 2
