test/test_core.ml: Alcotest Algo Fun Fuzzer List Loc Printexc Printf Racefuzzer Rapos Rf_events Rf_runtime Rf_util Rf_workloads Site
