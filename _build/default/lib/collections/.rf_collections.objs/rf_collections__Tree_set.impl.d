lib/collections/tree_set.ml: Api Jcoll Lock Op Rf_runtime Rf_util Site
