lib/runtime/handle.ml: Fmt
