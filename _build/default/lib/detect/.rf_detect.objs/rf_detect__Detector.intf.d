lib/detect/detector.mli: Event Race Rf_events Rf_util Site Trace
