open Rf_util
module R = Rf_campaign.Repro
module Shrinker = Rf_replay.Shrinker

let ratio (st : Shrinker.stats) =
  float_of_int st.Shrinker.sh_steps_before
  /. float_of_int (max 1 st.Shrinker.sh_steps_after)

let render ppf (s : R.summary) =
  match s.R.written with
  | [] ->
      if s.R.failed > 0 then
        Fmt.pf ppf "repro:    %d witness(es) failed to minimize, nothing written@."
          s.R.failed
  | entries ->
      Fmt.pf ppf
        "repro:    %d schedule(s) written (%d duplicate witness(es) folded, %d failed, %d oracle runs)@."
        (List.length entries) s.R.duplicates s.R.failed s.R.oracle_runs;
      Fmt.pf ppf "  %-28s %5s %14s %14s %7s %6s  %s@." "pair" "seed"
        "steps" "switches" "ratio" "replay" "file";
      List.iter
        (fun (e : R.entry) ->
          let st = e.R.r_stats in
          Fmt.pf ppf "  %-28s %5d %6d -> %-5d %6d -> %-5d %6.1fx %6s  %s@."
            (Site.Pair.to_string e.R.r_pair)
            e.R.r_seed st.Shrinker.sh_steps_before st.Shrinker.sh_steps_after
            st.Shrinker.sh_switches_before st.Shrinker.sh_switches_after
            (ratio st)
            (if e.R.r_replay_ok then "ok" else "FAIL")
            (Filename.basename e.R.r_file))
        entries

let pp = render
