(** Happens-before clock builder.

    Consumes the event stream of a run and assigns every event a vector
    clock such that [Vclock.leq (clock e1) (clock e2)] iff e1 happens-before
    (or equals) e2 under the chosen edge policy.

    Two policies are needed (paper §2.1 vs related work [44]):

    - [lock_edges = false]: edges are program order plus the SND/RCV
      messages generated at thread start, join, and notify→wait.  This is
      the *weak* relation used by hybrid race detection — deliberately
      ignoring lock release→acquire ordering so that accesses merely
      serialized by a lock still count as concurrent (that is what makes
      the technique predictive, and imprecise).

    - [lock_edges = true]: additionally order each lock release before every
      later acquire of the same lock.  This yields the classical precise
      happens-before relation of Schonberg-style detectors.

    State growth is dominated by [msgs] (one clock per SND, never
    reclaimed: any future RCV may still match it).  Under a resource
    governor each table entry is charged against the shared budget, and
    on degradation the {e lowest} message ids are evicted — they are the
    oldest messages, hence the least likely to still have an unmatched
    receive.  An evicted message's RCV simply contributes no edge, which
    weakens (never strengthens) the happens-before relation: degraded
    runs can only over-report concurrency, preserving the hybrid
    detector's predictive direction. *)

open Rf_events
open Rf_vclock
open Rf_resource

type t = {
  lock_edges : bool;
  governor : Governor.t option;
  threads : (int, Vclock.t) Hashtbl.t;
  msgs : (int, Vclock.t) Hashtbl.t;
  lock_release : (int, Vclock.t) Hashtbl.t;
  mutable msg_evictions : int;
}

(* Shed the lowest-id half of the message clocks.  Deterministic: the
   surviving set depends only on the key set, never on hash order. *)
let compact_msgs t =
  let n = Hashtbl.length t.msgs in
  if n > 1 then begin
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.msgs [] in
    let keys = List.sort compare keys in
    let drop = n / 2 in
    List.iteri (fun i k -> if i < drop then Hashtbl.remove t.msgs k) keys;
    t.msg_evictions <- t.msg_evictions + drop;
    match t.governor with Some g -> Governor.evict g drop | None -> ()
  end

let create ?governor ~lock_edges () =
  let t =
    {
      lock_edges;
      governor;
      threads = Hashtbl.create 16;
      msgs = Hashtbl.create 64;
      lock_release = Hashtbl.create 16;
      msg_evictions = 0;
    }
  in
  (match governor with
  | Some g -> Governor.subscribe g (fun _level -> compact_msgs t)
  | None -> ());
  t

let charge_new t tbl key =
  match t.governor with
  | Some g when not (Hashtbl.mem tbl key) -> Governor.charge g 1
  | _ -> ()

let thread_clock t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some c -> c
  | None -> Vclock.bottom

let msg_evictions t = t.msg_evictions

(** Process one event; returns the event's vector clock. *)
let feed t ev =
  let tid = Event.tid ev in
  let c = thread_clock t tid in
  (* Incoming edges join into the thread clock before the event ticks. *)
  let c =
    match ev with
    | Event.Rcv { msg; _ } -> (
        match Hashtbl.find_opt t.msgs msg with
        | Some m -> Vclock.join c m
        | None -> c (* unmatched (or evicted) receive: no edge *))
    | Event.Acquire { lock; _ } when t.lock_edges -> (
        match Hashtbl.find_opt t.lock_release lock with
        | Some r -> Vclock.join c r
        | None -> c)
    | _ -> c
  in
  let c = Vclock.tick c tid in
  charge_new t t.threads tid;
  Hashtbl.replace t.threads tid c;
  (* Outgoing edges snapshot the thread clock after the tick. *)
  (match ev with
  | Event.Snd { msg; _ } ->
      charge_new t t.msgs msg;
      Hashtbl.replace t.msgs msg c
  | Event.Release { lock; _ } when t.lock_edges ->
      charge_new t t.lock_release lock;
      Hashtbl.replace t.lock_release lock c
  | _ -> ());
  c
