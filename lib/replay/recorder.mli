(** Recording: turn any strategy into one that logs its decisions.

    {!wrap} interposes on the {!Rf_runtime.Strategy.t} seam — the one
    place all scheduling nondeterminism flows through — so recording
    needs no engine changes and composes with every strategy, including
    a {!Replayer} strategy (replay-and-re-record is how the shrinker
    turns an edited schedule back into an exact one). *)

open Rf_util
open Rf_runtime

type t
(** An in-progress recording; grows by one step per strategy
    consultation of the wrapped strategy. *)

val wrap : Strategy.t -> Strategy.t * t
(** [wrap inner] delegates every decision to [inner] and logs, per
    switch point: the chosen tid, the stability key of the chosen
    thread's pending operation, and the PRNG state after the decision
    (see {!Rf_replay.Schedule.step}). *)

val length : t -> int
(** Decisions recorded so far. *)

val schedule :
  ?target:string ->
  ?pair:Site.Pair.t ->
  seed:int ->
  ?max_steps:int ->
  outcome:Outcome.t ->
  t ->
  Schedule.t
(** Seal the recording into a schedule.  [seed], [pair] and [max_steps]
    must be the engine configuration of the recorded run ([max_steps]
    defaults to [Engine.default_config.max_steps], the drivers'
    default); the outcome supplies step counts and the error
    fingerprint. *)
