lib/workloads/jigsaw.ml: Api Array Common List Lock Printf Rf_runtime Rf_util Site Workload
