(** Analogue of [moldyn] (Java Grande molecular dynamics, paper Table 1:
    many potential races, 2 real-but-benign races that prior dynamic tools
    had missed, no exceptions, compute-heavy).

    Structure: [nworkers] threads simulate [nparticles] particles over
    [nsteps] timesteps.  Each step has a force phase (read all positions,
    write own slice of forces) and an update phase (read own forces, write
    own positions), separated by cyclic barriers.

    Race topology:
    - position arrays are written by their owner slice and read by every
      worker in the next force phase.  The barrier orders these for real,
      but its ordering is invisible to the *weak* happens-before of hybrid
      detection for most arrival orders, so the (position-write,
      position-read) statement pairs across the three coordinate arrays are
      reported as potential races — all false alarms;
    - [steps_done], a progress counter, is incremented by every worker with
      no lock: genuinely racy (read-write and write-write pairs) but benign
      — the paper's "2 real (but benign) races missed by previous dynamic
      analysis tools";
    - the potential-energy accumulator is guarded by a lock: never
      reported. *)

open Rf_util
open Rf_runtime

let file = "moldyn"
let s line label = Site.make ~file ~line label

let site_force_read_x = s 1 "force:read x[j]"
let site_force_read_y = s 2 "force:read y[j]"
let site_force_read_z = s 3 "force:read z[j]"
let site_force_write = s 4 "force:write f[i]"
let site_update_read_f = s 5 "update:read f[i]"
let site_update_write_x = s 6 "update:write x[i]"
let site_update_write_y = s 7 "update:write y[i]"
let site_update_write_z = s 8 "update:write z[i]"
let site_update_read_x = s 14 "update:read x[i]"
let site_update_read_y = s 15 "update:read y[i]"
let site_update_read_z = s 16 "update:read z[i]"
let site_steps_r = s 9 "steps_done(read)"
let site_steps_w = s 10 "steps_done(write)"
let site_epot_sync = s 11 "epot.sync"
let site_epot_r = s 12 "epot(read)"
let site_epot_w = s 13 "epot(write)"

(* The two real (benign) statement pairs. *)
let real_pairs () =
  [ Site.Pair.make site_steps_r site_steps_w; Site.Pair.make site_steps_w site_steps_w ]

let program ?(nworkers = 3) ?(nparticles = 12) ?(nsteps = 3) () =
  let x = Api.Sarray.init nparticles (fun i -> i * 7) in
  let y = Api.Sarray.init nparticles (fun i -> i * 13) in
  let z = Api.Sarray.init nparticles (fun i -> i * 29) in
  let f = Api.Sarray.make nparticles 0 in
  let epot = Api.Cell.make ~name:"epot" 0 in
  let epot_lock = Lock.create ~name:"epot" () in
  let steps_done = Api.Cell.make ~name:"steps_done" 0 in
  let barrier = Common.Barrier.create nworkers in
  let slice w =
    let chunk = (nparticles + nworkers - 1) / nworkers in
    let lo = w * chunk in
    (lo, min nparticles (lo + chunk) - 1)
  in
  let worker w () =
    let lo, hi = slice w in
    for _step = 1 to nsteps do
      (* force phase: all-pairs interaction against own slice *)
      let local_e = ref 0 in
      for i = lo to hi do
        let acc = ref 0 in
        for j = 0 to nparticles - 1 do
          if j <> i then begin
            let dx = Api.Sarray.get ~site:site_force_read_x x j in
            let dy = Api.Sarray.get ~site:site_force_read_y y j in
            let dz = Api.Sarray.get ~site:site_force_read_z z j in
            let r2 = (dx * dx) + (dy * dy) + (dz * dz) + 1 in
            acc := !acc + ((dx + dy + dz) mod r2);
            local_e := !local_e + (r2 mod 97)
          end
        done;
        Api.Sarray.set ~site:site_force_write f i !acc
      done;
      Api.sync ~site:site_epot_sync epot_lock (fun () ->
          Api.Cell.write ~site:site_epot_w epot
            (Api.Cell.read ~site:site_epot_r epot + !local_e));
      Common.Barrier.await barrier;
      (* update phase: integrate own slice *)
      for i = lo to hi do
        let fi = Api.Sarray.get ~site:site_update_read_f f i in
        Api.Sarray.set ~site:site_update_write_x x i
          ((Api.Sarray.get ~site:site_update_read_x x i + fi) mod 1009);
        Api.Sarray.set ~site:site_update_write_y y i
          ((Api.Sarray.get ~site:site_update_read_y y i + (fi * 3)) mod 1013);
        Api.Sarray.set ~site:site_update_write_z z i
          ((Api.Sarray.get ~site:site_update_read_z z i + (fi * 7)) mod 1019);
      done;
      (* benign real race: unsynchronized progress counter *)
      Api.Cell.write ~site:site_steps_w steps_done
        (Api.Cell.read ~site:site_steps_r steps_done + 1);
      Common.Barrier.await barrier
    done
  in
  let hs = List.init nworkers (fun w -> Api.fork ~name:(Printf.sprintf "mold%d" w) (worker w)) in
  List.iter Api.join hs

let workload =
  Workload.make ~name:"moldyn"
    ~descr:"Java Grande molecular dynamics analogue: barrier phases, benign counter races"
    ~sloc:118 ~known_real_races:(Some 0) ~expected_real:(Some 2) (fun () -> program ())
