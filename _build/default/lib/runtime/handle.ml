(** Thread handles, as returned by [Api.fork] and consumed by
    [Api.join]/[Api.interrupt]. *)

type t = { tid : int; name : string }

let make ~tid ~name = { tid; name }
let tid t = t.tid
let name t = t.name
let equal a b = a.tid = b.tid
let pp ppf t = Fmt.pf ppf "%s<t%d>" t.name t.tid
