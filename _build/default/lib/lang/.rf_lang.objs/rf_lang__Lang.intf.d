lib/lang/lang.mli: Ast
