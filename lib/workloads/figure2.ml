(** The paper's Figure 2: "A program with a hard to reproduce real race".

    {v
      Initially: x = 0
      thread1 {                 thread2 {
        1.  lock(L);              10. x = 1;
        2..6. f1() .. f5();       11. lock(L);
        7.  unlock(L);            12. f6();
        8.  if (x == 0)           13. unlock(L);
        9.    ERROR;            }
      }
    v}

    The body statements f1()..f5() are modelled as [k] shared writes to
    thread-local cells performed while holding [L] — work that makes
    statement 8 execute late.  The paper argues (§3.2):

    - under a default or simple random scheduler, the probability of
      executing statements 8 and 10 adjacently — and of reaching ERROR —
      decays as [k] grows;
    - RaceFuzzer creates the race with probability 1 and reaches ERROR with
      probability 0.5, independent of [k].

    This module is parametric in [k] to regenerate that series. *)

open Rf_util
open Rf_runtime

let file = "figure2"

let s8_read_x = Site.make ~file ~line:8 "if(x==0)"
let s10_write_x = Site.make ~file ~line:10 "x=1"

let race_pair = Site.Pair.make s8_read_x s10_write_x

let program ?(k = 50) () =
  let x = Api.Cell.global "x" 0 in
  let l = Lock.create ~name:"L" () in
  let thread1 () =
    Api.sync ~site:(Site.make ~file ~line:1 "lock(L)") l (fun () ->
        (* f1() .. f5(): k statements of local-object work under the lock *)
        let scratch = Api.Cell.make ~name:"scratch" 0 in
        for i = 1 to k do
          Api.Cell.write ~site:(Site.make ~file ~line:2 "f_i()") scratch i
        done);
    if Api.Cell.read ~site:s8_read_x x = 0 then Api.error "ERROR"
  in
  let thread2 () =
    Api.Cell.write ~site:s10_write_x x 1;
    Api.sync ~site:(Site.make ~file ~line:11 "lock(L)") l (fun () ->
        let scratch2 = Api.Cell.make ~name:"scratch2" 0 in
        Api.Cell.write ~site:(Site.make ~file ~line:12 "f6()") scratch2 1)
  in
  let h1 = Api.fork ~name:"thread1" thread1 in
  let h2 = Api.fork ~name:"thread2" thread2 in
  Api.join h1;
  Api.join h2

(* Ground-truth static model.  The scratch cells are single-thread (and
   lock-protected) — provably race-free; the x pair is the real race and
   survives.  Independent of [k]: the loop reuses one site. *)
let static_model =
  let open Rf_static.Static in
  let b = Model.create () in
  Model.access b ~site:s8_read_x ~var:"x" ~write:false ~thread:"thread1" ~locks:[];
  Model.access b ~site:s10_write_x ~var:"x" ~write:true ~thread:"thread2" ~locks:[];
  Model.access b
    ~site:(Site.make ~file ~line:2 "f_i()")
    ~var:"scratch" ~write:true ~thread:"thread1" ~locks:[ "L" ];
  Model.access b
    ~site:(Site.make ~file ~line:12 "f6()")
    ~var:"scratch2" ~write:true ~thread:"thread2" ~locks:[ "L" ];
  Model.build b

let workload_of_k k =
  Workload.make ~name:(Printf.sprintf "figure2[k=%d]" k)
    ~descr:"paper Figure 2: hard-to-reproduce real race on x"
    ~sloc:14
    ~expected_real:(Some 1)
    ~static:(Some static_model)
    (fun () -> program ~k ())

let workload = workload_of_k 50
