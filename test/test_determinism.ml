(* Determinism properties of the campaign orchestrator (Rf_campaign):

   1. Campaign.run ~domains:1 ≡ Campaign.run ~domains:4 ≡ sequential
      Fuzzer.analyze on the same seed lists — same real_pairs /
      error_pairs / per-pair trial outcomes (QCheck over seeds, trial
      counts and workloads).
   2. With early cutoff enabled, results are still bit-identical across
      domain counts (the cutoff point is logical, not temporal).
   3. Cutoff actually saves work, and budget freed by resolved pairs is
      reallocated to unresolved ones. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Campaign = Rf_campaign.Campaign
module Event_log = Rf_campaign.Event_log
module W = Rf_workloads

let fp = Campaign.fingerprint

(* A pool of cheap workloads with interesting race topology: figure1 has
   one real+harmful pair and one false alarm; figure2 has one real pair
   whose error shows up in ~half the trials. *)
let workload_pool : (string * Fuzzer.program) list =
  [
    ("figure1", W.Figure1.program);
    ("figure2-k5", fun () -> W.Figure2.program ~k:5 ());
    ("figure2-k25", fun () -> W.Figure2.program ~k:25 ());
  ]

let gen_case =
  QCheck.Gen.(
    let* wi = int_bound (List.length workload_pool - 1) in
    let* trials = map (fun n -> 3 + (n mod 15)) nat in
    let* seed0 = int_bound 1000 in
    let* p1 = map (fun n -> 1 + (n mod 3)) nat in
    return (wi, trials, seed0, p1))

let arb_case =
  QCheck.make
    ~print:(fun (wi, trials, seed0, p1) ->
      Printf.sprintf "workload=%s trials=%d seed0=%d p1=%d"
        (fst (List.nth workload_pool wi))
        trials seed0 p1)
    gen_case

(* 1. No cutoff: campaign at any domain count ≡ sequential analyze. *)
let prop_campaign_equals_analyze =
  QCheck.Test.make ~name:"campaign(d=1) = campaign(d=4) = Fuzzer.analyze" ~count:12
    arb_case (fun (wi, trials, seed0, p1) ->
      let _, program = List.nth workload_pool wi in
      let phase1_seeds = List.init p1 Fun.id in
      let seeds_per_pair = List.init trials (fun i -> seed0 + i) in
      let a = Fuzzer.analyze ~phase1_seeds ~seeds_per_pair program in
      let c1 =
        Campaign.run ~domains:1 ~cutoff:false ~phase1_seeds ~seeds_per_pair program
      in
      let c4 =
        Campaign.run ~domains:4 ~cutoff:false ~phase1_seeds ~seeds_per_pair program
      in
      fp a = fp c1.Campaign.analysis && fp a = fp c4.Campaign.analysis)

(* 2. Cutoff mode is still domain-count invariant. *)
let prop_cutoff_domain_invariant =
  QCheck.Test.make ~name:"cutoff campaign: d=1 = d=2 = d=4" ~count:12 arb_case
    (fun (wi, trials, seed0, p1) ->
      let _, program = List.nth workload_pool wi in
      let phase1_seeds = List.init p1 Fun.id in
      let seeds_per_pair = List.init trials (fun i -> seed0 + i) in
      let run d =
        Campaign.run ~domains:d ~cutoff:true ~phase1_seeds ~seeds_per_pair program
      in
      let c1 = run 1 and c2 = run 2 and c4 = run 4 in
      fp c1.Campaign.analysis = fp c2.Campaign.analysis
      && fp c1.Campaign.analysis = fp c4.Campaign.analysis)

(* ------------------------------------------------------------------ *)
(* Deterministic unit checks on figure1                                *)

let seeds n = List.init n Fun.id

let test_equals_analyze_exact () =
  let phase1_seeds = seeds 10 and seeds_per_pair = seeds 40 in
  let a = Fuzzer.analyze ~phase1_seeds ~seeds_per_pair W.Figure1.program in
  let c =
    Campaign.run ~domains:4 ~cutoff:false ~phase1_seeds ~seeds_per_pair
      W.Figure1.program
  in
  Alcotest.(check string) "fingerprints equal" (fp a) (fp c.Campaign.analysis);
  Alcotest.(check bool) "equal_verdicts agrees" true
    (Campaign.equal_verdicts a c.Campaign.analysis)

let test_cutoff_cancels_and_truncates () =
  let c =
    Campaign.run ~domains:1 ~cutoff:true ~phase1_seeds:(seeds 10)
      ~seeds_per_pair:(seeds 40) W.Figure1.program
  in
  let s = c.Campaign.stats in
  Alcotest.(check bool) "some trials cancelled" true (s.Campaign.s_cancelled > 0);
  Alcotest.(check bool) "one pair resolved" true (s.Campaign.s_resolved = 1);
  let real =
    List.find
      (fun (r : Fuzzer.pair_result) -> Site.Pair.equal r.Fuzzer.pr_pair W.Figure1.real_pair)
      c.Campaign.analysis.Fuzzer.results
  in
  (* the real pair's list stops at its resolution point: its last trial is
     the first error trial, everything after is cancelled or discarded *)
  Alcotest.(check bool) "real pair truncated" true
    (List.length real.Fuzzer.trials < 40);
  Alcotest.(check bool) "still classified harmful" true (Fuzzer.is_harmful real)

let test_budget_reallocation () =
  (* figure1: the real pair resolves almost immediately; with cutoff on,
     its unused budget must flow to the unresolved false-alarm pair. *)
  let log = Event_log.memory () in
  let c =
    Campaign.run ~domains:1 ~cutoff:true ~phase1_seeds:(seeds 10)
      ~seeds_per_pair:(seeds 20) ~budget:40 ~log W.Figure1.program
  in
  let false_r =
    List.find
      (fun (r : Fuzzer.pair_result) ->
        Site.Pair.equal r.Fuzzer.pr_pair W.Figure1.false_pair)
      c.Campaign.analysis.Fuzzer.results
  in
  Alcotest.(check bool)
    (Printf.sprintf "false pair granted extra trials (got %d > 20)"
       (List.length false_r.Fuzzer.trials))
    true
    (List.length false_r.Fuzzer.trials > 20);
  Alcotest.(check bool) "still a false alarm" false (Fuzzer.is_real false_r);
  let evs = Event_log.events log in
  let has p = List.exists p evs in
  Alcotest.(check bool) "budget_granted event emitted" true
    (has (function Event_log.Budget_granted _ -> true | _ -> false));
  Alcotest.(check bool) "pair_resolved event emitted" true
    (has (function Event_log.Pair_resolved _ -> true | _ -> false));
  Alcotest.(check bool) "trials_cancelled event emitted" true
    (has (function Event_log.Trials_cancelled _ -> true | _ -> false))

let test_event_log_jsonl_shape () =
  (* every event renders as one JSON object per line with seq/t/ev keys *)
  let path = Filename.temp_file "campaign" ".jsonl" in
  let log = Event_log.open_file path in
  let _ =
    Campaign.run ~domains:2 ~cutoff:true ~phase1_seeds:(seeds 5)
      ~seeds_per_pair:(seeds 10) ~log W.Figure1.program
  in
  Event_log.close log;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check bool) "log non-empty" true (List.length lines > 4);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "line is a JSON object: %s" l)
        true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      Alcotest.(check bool) "has seq/t/ev fields" true
        (String.length l > 10 && String.sub l 1 6 = "\"seq\":"))
    lines;
  (* the journal opens with a schema header, then phase1_finished and
     campaign_started *)
  match lines with
  | l1 :: l2 :: l3 :: _ ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "journal_opened header first" true
        (contains l1 "journal_opened");
      Alcotest.(check bool) "phase1 event second" true (contains l2 "phase1_finished");
      Alcotest.(check bool) "campaign_started third" true (contains l3 "campaign_started")
  | _ -> Alcotest.fail "log too short"

let test_stats_accounting () =
  let c =
    Campaign.run ~domains:2 ~cutoff:false ~phase1_seeds:(seeds 10)
      ~seeds_per_pair:(seeds 15) W.Figure1.program
  in
  let s = c.Campaign.stats in
  Alcotest.(check int) "pairs = potential" 2 s.Campaign.s_pairs;
  Alcotest.(check int) "all granted trials run (no cutoff)" (2 * 15) s.Campaign.s_trials;
  Alcotest.(check int) "nothing cancelled" 0 s.Campaign.s_cancelled;
  Alcotest.(check int) "nothing discarded" 0 s.Campaign.s_discarded;
  Alcotest.(check int) "per-domain trials sum to total" s.Campaign.s_trials
    (Array.fold_left ( + ) 0 s.Campaign.s_domain_trials)

let () =
  Alcotest.run "campaign_determinism"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_campaign_equals_analyze; prop_cutoff_domain_invariant ] );
      ( "cutoff",
        [
          Alcotest.test_case "equals analyze exactly" `Quick test_equals_analyze_exact;
          Alcotest.test_case "cancels and truncates" `Quick
            test_cutoff_cancels_and_truncates;
          Alcotest.test_case "budget reallocation" `Quick test_budget_reallocation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "jsonl shape" `Quick test_event_log_jsonl_shape;
          Alcotest.test_case "stats accounting" `Quick test_stats_accounting;
        ] );
    ]
