(* Differential testing of the phase-1 detectors against each other on
   randomly generated RFL programs.  The detectors sit on a precision
   lattice, and the lattice order is checkable per-trace:

   - FastTrack is precise happens-before: every race it reports on a
     trace is also flagged by the hybrid detector, whose weak
     happens-before relation is a subset of the real one (fewer HB edges
     => more reports).  So pairs(fasttrack) ⊆ pairs(hybrid) when both
     observe the same execution.
   - On lockset-only programs (no notify_all / sleep, so lock discipline
     is the only synchronization), Eraser's state machine must flag the
     location of every FastTrack race whose second access is a write:
     the two accesses share no lock (a common lock would order them by
     its release→acquire edge), so the candidate lockset is empty when
     the write arrives and the cell is in a Shared* state.  Read-second
     races are legitimately missed by Eraser (its Shared state never
     reports), which is why the property is restricted to writes. *)

open Rf_util
module A = Rf_lang.Ast
module D = Rf_detect.Detector

let run ?(seed = 0) ~listeners main =
  ignore
    (Rf_runtime.Engine.run
       ~config:
         { Rf_runtime.Engine.default_config with seed; max_steps = 100_000 }
       ~listeners
       ~strategy:(Rf_runtime.Strategy.random ())
       main)

let main_of prog = Rf_lang.Lang.program ~print:ignore prog

(* Rewrite a program so lock discipline is its only synchronization:
   wait/notify/notify_all/sleep become no-ops.  The result is still
   well-formed (skip is legal everywhere). *)
let rec lockset_only_stmt (st : A.stmt) =
  let k =
    match st.A.s with
    | A.Swait _ | A.Snotify _ | A.Snotify_all _ | A.Ssleep -> A.Sskip
    | A.Sif (e, b1, b2) ->
        A.Sif (e, lockset_only_block b1, Option.map lockset_only_block b2)
    | A.Swhile (e, b) -> A.Swhile (e, lockset_only_block b)
    | A.Sfor (init, cond, step, b) ->
        A.Sfor
          (lockset_only_stmt init, cond, lockset_only_stmt step, lockset_only_block b)
    | A.Ssync (l, b) -> A.Ssync (l, lockset_only_block b)
    | k -> k
  in
  { st with A.s = k }

and lockset_only_block b = List.map lockset_only_stmt b

let lockset_only (p : A.program) =
  {
    p with
    A.funcs =
      List.map (fun f -> { f with A.fbody = lockset_only_block f.A.fbody }) p.A.funcs;
    A.threads =
      List.map
        (fun t -> { t with A.tbody = lockset_only_block t.A.tbody })
        p.A.threads;
  }

(* 1. FastTrack never reports a pair the hybrid detector misses. *)
let prop_fasttrack_subset_hybrid =
  QCheck.Test.make ~name:"fasttrack pairs ⊆ hybrid pairs (same trace)" ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let ft = D.fasttrack () and hy = D.hybrid ~cap:4096 () in
      run ~seed ~listeners:[ D.feed ft; D.feed hy ] (main_of prog);
      Site.Pair.Set.subset (D.pairs ft) (D.pairs hy))

(* Same containment for the unoptimized precise-HB baseline: FastTrack's
   epoch compression only forgets *older* accesses, so each of its
   reports must also appear in the full-history precise detector.  (The
   converse does not hold — epochs can't attribute races against
   forgotten accesses — so this is ⊆, not equality.) *)
let prop_fasttrack_subset_hb =
  QCheck.Test.make ~name:"fasttrack pairs ⊆ hb_precise pairs (same trace)"
    ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let ft = D.fasttrack () and hb = D.hb_precise ~cap:4096 () in
      run ~seed ~listeners:[ D.feed ft; D.feed hb ] (main_of prog);
      Site.Pair.Set.subset (D.pairs ft) (D.pairs hb))

(* 2. On lockset-only programs, Eraser covers every FastTrack
   write-second race location. *)
let prop_eraser_covers_fasttrack_writes =
  QCheck.Test.make
    ~name:"eraser flags every fasttrack write-race location (lockset-only)"
    ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let prog = lockset_only prog in
      let ft = D.fasttrack () in
      let er = Rf_detect.Eraser.create ~site_cap:4096 () in
      run ~seed ~listeners:[ D.feed ft; Rf_detect.Eraser.feed er ] (main_of prog);
      let racy = Rf_detect.Eraser.racy_locations er in
      List.for_all
        (fun (r : Rf_detect.Race.t) ->
          match snd r.Rf_detect.Race.accesses with
          | Rf_events.Event.Read -> true (* out of Eraser's scope *)
          | Rf_events.Event.Write ->
              List.exists (Loc.equal r.Rf_detect.Race.loc) racy)
        (D.races ft))

(* ------------------------------------------------------------------ *)
(* Deterministic cases: figure 1, plus a hand-fed trace that pins down
   exactly where Eraser's blind spot is.                               *)

let test_figure1_lattice () =
  let ft = D.fasttrack () and hy = D.hybrid ~cap:4096 () in
  run ~seed:7 ~listeners:[ D.feed ft; D.feed hy ] Rf_workloads.Figure1.program;
  Alcotest.(check bool) "ft ⊆ hybrid on figure1" true
    (Site.Pair.Set.subset (D.pairs ft) (D.pairs hy))

let mem ~tid ~site ~access ?(lockset = Rf_events.Lockset.empty) loc =
  Rf_events.Event.Mem { tid; site; loc; access; lockset }

let sa = Site.make ~file:"diff.rfl" ~line:1 "wa"
let sb = Site.make ~file:"diff.rfl" ~line:2 "wb"

let test_eraser_write_write () =
  (* two unprotected writes by different threads: Eraser must fire *)
  let er = D.eraser ~site_cap:4096 () in
  let x = Loc.global "diff_x" in
  D.feed er (mem ~tid:0 ~site:sa ~access:Rf_events.Event.Write x);
  D.feed er (mem ~tid:1 ~site:sb ~access:Rf_events.Event.Write x);
  Alcotest.(check int) "one pair reported" 1 (D.race_count er)

let test_eraser_misses_read_second () =
  (* unprotected write then read: a real race, but the cell only reaches
     the Shared state, which never reports — the documented blind spot
     that restricts the QCheck property above to write-second races *)
  let er = D.eraser ~site_cap:4096 () in
  let y = Loc.global "diff_y" in
  D.feed er (mem ~tid:0 ~site:sa ~access:Rf_events.Event.Write y);
  D.feed er (mem ~tid:1 ~site:sb ~access:Rf_events.Event.Read y);
  Alcotest.(check int) "nothing reported" 0 (D.race_count er)

let () =
  Alcotest.run "differential_detectors"
    [
      ( "lattice",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_fasttrack_subset_hybrid;
            prop_fasttrack_subset_hb;
            prop_eraser_covers_fasttrack_writes;
          ] );
      ( "deterministic",
        [
          Alcotest.test_case "ft subset hybrid on figure1" `Quick
            test_figure1_lattice;
          Alcotest.test_case "eraser write-write fires" `Quick
            test_eraser_write_write;
          Alcotest.test_case "eraser read-second blind spot" `Quick
            test_eraser_misses_read_second;
        ] );
    ]
