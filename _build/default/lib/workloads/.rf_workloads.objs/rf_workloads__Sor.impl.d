lib/workloads/sor.ml: Api Common Lock Rf_runtime Rf_util Site Workload
