lib/runtime/strategy.mli: Op Prng Rf_util
