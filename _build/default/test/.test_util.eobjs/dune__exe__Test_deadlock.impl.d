test/test_deadlock.ml: Alcotest Api Array Engine Fun List Lock Outcome Printf Racefuzzer Rf_detect Rf_runtime Rf_util Rf_workloads Site Strategy
