(* The O(1)-sample phase-1 detector: soundness relative to full
   tracking, seed determinism, inline/offline/shard invariance, the
   miss-probability bound's arithmetic, and the stress-serve family's
   golden pair inventory.

   The load-bearing property is the first one: a sample-limited bucket
   only ever *forgets* accesses, so every pair the sampling detector
   reports is one an ample-capacity hybrid detector reports on the same
   trace — sampling trades recall, never precision, and the trade is
   priced by the reported miss bound. *)

open Rf_util
open Rf_events
module D = Rf_detect.Detector
module Fuzzer = Racefuzzer.Fuzzer

let run ?(seed = 0) ~listeners main =
  ignore
    (Rf_runtime.Engine.run
       ~config:
         { Rf_runtime.Engine.default_config with seed; max_steps = 100_000 }
       ~listeners
       ~strategy:(Rf_runtime.Strategy.random ())
       main)

let run_recording ?(seed = 0) ~listeners main =
  let w = Btrace.writer () in
  ignore
    (Rf_runtime.Engine.run
       ~config:
         { Rf_runtime.Engine.default_config with seed; max_steps = 100_000 }
       ~listeners ~btrace:w
       ~strategy:(Rf_runtime.Strategy.random ())
       main);
  Btrace.seal w

let main_of prog = Rf_lang.Lang.program ~print:ignore prog
let pair_of (r : Rf_detect.Race.t) = r.Rf_detect.Race.pair

(* ------------------------------------------------------------------ *)
(* 1. Soundness: sampled pairs ⊆ full-tracking pairs on the same trace,
   for every sample budget and sample seed. *)

let prop_sampling_subset_hybrid =
  QCheck.Test.make ~name:"sampling pairs ⊆ hybrid pairs (same trace, any k/seed)"
    ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program (pair small_int small_int))
    (fun (prog, (seed, sample_seed)) ->
      let k = 1 + (sample_seed mod 4) in
      let sa = D.sampling ~k ~seed:sample_seed () in
      let hy = D.hybrid ~cap:4096 () in
      run ~seed ~listeners:[ D.feed sa; D.feed hy ] (main_of prog);
      Site.Pair.Set.subset (D.pairs sa) (D.pairs hy))

(* 2. Seed determinism: the sample set is a pure function of
   (sample seed, location, arrival index), so two detectors with the
   same configuration report identical race lists and miss bounds. *)

let prop_same_seed_deterministic =
  QCheck.Test.make ~name:"sampling is deterministic in (k, sample seed)"
    ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let d1 = D.sampling ~k:2 ~seed:17 () in
      let d2 = D.sampling ~k:2 ~seed:17 () in
      run ~seed ~listeners:[ D.feed d1; D.feed d2 ] (main_of prog);
      List.map pair_of (D.races d1) = List.map pair_of (D.races d2)
      && (D.stats d1).D.st_miss_bound = (D.stats d2).D.st_miss_bound)

(* 3. Mode and shard invariance: offline replay of a recording matches
   inline detection byte-for-byte with one shard, and set-for-set (with
   identical merged accounting) under sharding — the property that makes
   inline and offline campaign fingerprints interchangeable. *)

let prop_offline_equals_inline =
  QCheck.Test.make
    ~name:"offline sampling = inline sampling (1 shard byte-identical, n shards set-identical)"
    ~count:50
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let make () = D.sampling ~k:2 ~seed:5 () in
      let inline_d = make () in
      let bt = run_recording ~seed ~listeners:[ D.feed inline_d ] (main_of prog) in
      let inline_stats = D.stats inline_d in
      let one, one_stats = Rf_detect.Offline.detect_stats ~make [ bt ] in
      let sharded, sharded_stats =
        Rf_detect.Offline.detect_stats ~shards:3 ~make [ bt ]
      in
      List.map pair_of one = List.map pair_of (D.races inline_d)
      && one_stats = inline_stats
      && Site.Pair.Set.equal
           (Site.Pair.Set.of_list (List.map pair_of sharded))
           (D.pairs inline_d)
      && sharded_stats = inline_stats)

(* ------------------------------------------------------------------ *)
(* Deterministic cases: the miss bound's arithmetic on hand-fed traces. *)

let site i = Site.make ~file:"samp.rfl" ~line:i (Printf.sprintf "s%d" i)

let mem ~tid ~site ~access ?(lockset = Lockset.empty) loc =
  Event.Mem { tid; site; loc; access; lockset }

let test_miss_bound_zero_when_untruncated () =
  (* at most k accesses per location: nothing is ever dropped, so the
     detector must claim a zero miss probability — and still report the
     write-write race *)
  let d = D.sampling ~k:4 ~seed:0 () in
  let x = Loc.global "samp_x" in
  D.feed d (mem ~tid:0 ~site:(site 1) ~access:Event.Write x);
  D.feed d (mem ~tid:1 ~site:(site 2) ~access:Event.Write x);
  Alcotest.(check int) "race reported" 1 (D.race_count d);
  Alcotest.(check (float 0.0))
    "miss bound 0"
    0.0
    (Option.get (D.stats d).D.st_miss_bound)

let test_miss_bound_counts_drops () =
  (* 10 single-site writes into a k=2 bucket: whatever the reservoir
     kept, the per-location bound is 1 - live/seen = 1 - 2/10 — the
     bound depends on the counters only, not on which samples survived *)
  let d = D.sampling ~k:2 ~seed:0 () in
  let y = Loc.global "samp_y" in
  for t = 0 to 9 do
    D.feed d (mem ~tid:t ~site:(site (10 + t)) ~access:Event.Write y)
  done;
  Alcotest.(check (float 1e-9))
    "miss bound 1 - 2/10"
    0.8
    (Option.get (D.stats d).D.st_miss_bound);
  Alcotest.(check bool) "still reports some races" true (D.race_count d > 0)

let test_hybrid_has_no_miss_bound () =
  let d = D.hybrid ~cap:4096 () in
  let z = Loc.global "samp_z" in
  D.feed d (mem ~tid:0 ~site:(site 30) ~access:Event.Write z);
  D.feed d (mem ~tid:1 ~site:(site 31) ~access:Event.Write z);
  Alcotest.(check bool)
    "full tracking reports no bound" true
    ((D.stats d).D.st_miss_bound = None)

(* ------------------------------------------------------------------ *)
(* The stress-serve family: fixed pair inventory, detector agreement,
   and phase-1 determinism at test scale. *)

let serve_small () =
  match Rf_workloads.Registry.find "stress-serve-small" with
  | Some w -> w.Rf_workloads.Workload.program
  | None -> Alcotest.fail "stress-serve-small not registered"

let phase1_pairs ~detector program =
  let r = Fuzzer.phase1 ~seeds:[ 0; 1; 2 ] ~detector program in
  ( Site.Pair.Set.of_list
      (List.map (fun (x : Rf_detect.Race.t) -> x.Rf_detect.Race.pair) r.Fuzzer.potential),
    r )

let test_serve_golden_inventory () =
  let program = serve_small () in
  let hybrid, rh = phase1_pairs ~detector:Fuzzer.Hybrid program in
  let sampled, rs =
    phase1_pairs ~detector:(Fuzzer.Sampling { sample_k = 4; sample_seed = 0 }) program
  in
  (* the golden inventory: 2 session + 2 hit-counter + 1 config + 3
     backlog check-then-act + 3 handshake false alarms *)
  Alcotest.(check int) "11 potential pairs" 11 (Site.Pair.Set.cardinal hybrid);
  Alcotest.(check bool) "sampling finds the same inventory" true
    (Site.Pair.Set.equal hybrid sampled);
  Alcotest.(check string) "detector identities" "hybrid/sampling"
    (rh.Fuzzer.p1_name ^ "/" ^ rs.Fuzzer.p1_name);
  (match rs.Fuzzer.p1_stats.D.st_miss_bound with
  | Some b -> Alcotest.(check bool) "miss bound in [0,1]" true (b >= 0.0 && b <= 1.0)
  | None -> Alcotest.fail "sampling phase 1 must report a miss bound");
  Alcotest.(check bool) "hybrid reports no miss bound" true
    (rh.Fuzzer.p1_stats.D.st_miss_bound = None)

let test_serve_phase1_deterministic () =
  let program = serve_small () in
  let detector = Fuzzer.Sampling { sample_k = 4; sample_seed = 0 } in
  let p1, r1 = phase1_pairs ~detector program in
  let p2, r2 = phase1_pairs ~detector program in
  Alcotest.(check bool) "same pair set" true (Site.Pair.Set.equal p1 p2);
  Alcotest.(check bool) "same miss bound" true
    (r1.Fuzzer.p1_stats.D.st_miss_bound = r2.Fuzzer.p1_stats.D.st_miss_bound)

let () =
  Alcotest.run "sampling_detector"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sampling_subset_hybrid;
            prop_same_seed_deterministic;
            prop_offline_equals_inline;
          ] );
      ( "miss bound",
        [
          Alcotest.test_case "zero when untruncated" `Quick
            test_miss_bound_zero_when_untruncated;
          Alcotest.test_case "counts drops" `Quick test_miss_bound_counts_drops;
          Alcotest.test_case "hybrid has none" `Quick test_hybrid_has_no_miss_bound;
        ] );
      ( "stress-serve",
        [
          Alcotest.test_case "golden pair inventory" `Quick
            test_serve_golden_inventory;
          Alcotest.test_case "phase 1 deterministic" `Quick
            test_serve_phase1_deterministic;
        ] );
    ]
