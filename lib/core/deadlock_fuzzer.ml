(** Deadlock-directed random testing — the paper's §1 generalization of
    RaceFuzzer: "we can bias the random scheduler by other potential
    concurrency problems such as ... potential deadlocks.  The only thing
    that the random scheduler needs to know is a set of statements whose
    simultaneous execution could lead to a concurrency problem."

    Phase 1 ({!Rf_detect.Goodlock}) yields a pair of inner lock-acquire
    statements forming a lock-order cycle.  Phase 2 postpones any thread
    about to execute one of those statements (it already holds the outer
    lock); once the partner thread has grabbed the other lock, both block
    on each other and the engine's deadlock detector (Algorithm 1, lines
    30–32: "print ERROR: actual deadlock found") confirms a *real*
    deadlock — false Goodlock cycles (e.g. gate-lock protected ones) never
    materialize and are rejected exactly like false races. *)

open Rf_util
open Rf_runtime

type report = { mutable postponed_total : int; mutable evictions : int }

let fresh_report () = { postponed_total = 0; evictions = 0 }

(** The postponement strategy for one candidate cycle. *)
let strategy ?(postpone_timeout = Some Algo.default_postpone_timeout) ~sites
    ~(report : report) () : Strategy.t =
  let postponed : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let target_site = function
    | Op.P_acquire { site; _ } -> Site.Set.mem site sites
    | _ -> false
  in
  let choose (view : Strategy.view) =
    (match postpone_timeout with
    | None -> ()
    | Some bound ->
        (* sorted so release order never depends on hash-table internals *)
        Hashtbl.fold
          (fun tid since acc ->
            if view.Strategy.step - since > bound then tid :: acc else acc)
          postponed []
        |> List.sort compare
        |> List.iter (Hashtbl.remove postponed));
    let rec pick_loop () =
      let avail =
        List.filter
          (fun (e : Strategy.entry) -> not (Hashtbl.mem postponed e.Strategy.tid))
          view.Strategy.enabled
      in
      match avail with
      | [] ->
          let victims =
            List.filter
              (fun (e : Strategy.entry) -> Hashtbl.mem postponed e.Strategy.tid)
              view.Strategy.enabled
          in
          let v = Prng.pick view.Strategy.prng victims in
          Hashtbl.remove postponed v.Strategy.tid;
          report.evictions <- report.evictions + 1;
          v.Strategy.tid
      | _ ->
          let e = Prng.pick view.Strategy.prng avail in
          if target_site e.Strategy.pend then begin
            (* Hold this thread at the inner acquire; if a partner thread
               then takes the other lock of the cycle, both end up blocked
               and the engine reports the real deadlock. *)
            Hashtbl.replace postponed e.Strategy.tid view.Strategy.step;
            report.postponed_total <- report.postponed_total + 1;
            pick_loop ()
          end
          else e.Strategy.tid
    in
    pick_loop ()
  in
  Strategy.make ~name:"deadlockfuzzer" choose

(* ------------------------------------------------------------------ *)
(* Two-phase driver                                                    *)

type candidate_result = {
  dc_candidate : Rf_detect.Goodlock.candidate;
  dc_trials : int;
  dc_deadlock_trials : int;
  dc_probability : float;
  dc_seed : int option;  (** a seed reproducing the deadlock *)
}

let is_real r = r.dc_deadlock_trials > 0

(** Phase 1: observe executions, collect lock-order cycles. *)
let phase1 ?(seeds = [ 0 ]) (program : unit -> unit) =
  let d = Rf_detect.Goodlock.create () in
  List.iter
    (fun seed ->
      ignore
        (Engine.run
           ~config:{ Engine.default_config with seed }
           ~listeners:[ Rf_detect.Goodlock.feed d ]
           ~strategy:(Strategy.random ()) program))
    seeds;
  Rf_detect.Goodlock.candidates d

(** Phase 2: try to realize one candidate cycle. *)
let fuzz_candidate ?(seeds = List.init 100 Fun.id) ~(program : unit -> unit)
    (c : Rf_detect.Goodlock.candidate) : candidate_result =
  let watch =
    List.fold_left
      (fun acc s -> Site.Set.add s acc)
      Site.Set.empty c.Rf_detect.Goodlock.sites
  in
  let outcomes =
    List.map
      (fun seed ->
        let report = fresh_report () in
        let strategy = strategy ~sites:watch ~report () in
        ( seed,
          Engine.run
            ~config:
              { Engine.default_config with seed; policy = Engine.Sync_and watch }
            ~strategy program ))
      seeds
  in
  (* Attribute a deadlock to this candidate only if *every* inner-acquire
     statement of the cycle has a thread blocked at it: a genuinely
     realized cycle blocks each participant at its own inner acquire,
     whereas a thread merely caught downstream of an unrelated deadlock
     blocks at one candidate site at most. *)
  let realizes (o : Outcome.t) =
    Outcome.deadlocked o
    &&
    let blocked =
      List.fold_left
        (fun acc (_, site) ->
          match site with Some s -> Site.Set.add s acc | None -> acc)
        Site.Set.empty o.Outcome.blocked_at
    in
    Site.Set.subset watch blocked
  in
  let deadlocked = List.filter (fun (_, o) -> realizes o) outcomes in
  {
    dc_candidate = c;
    dc_trials = List.length outcomes;
    dc_deadlock_trials = List.length deadlocked;
    dc_probability =
      float_of_int (List.length deadlocked) /. float_of_int (max 1 (List.length outcomes));
    dc_seed = (match deadlocked with [] -> None | (s, _) :: _ -> Some s);
  }

let analyze ?(phase1_seeds = [ 0; 1; 2 ]) ?(seeds_per_candidate = List.init 50 Fun.id)
    (program : unit -> unit) : candidate_result list =
  phase1 ~seeds:phase1_seeds program
  |> List.map (fuzz_candidate ~seeds:seeds_per_candidate ~program)
