lib/core/fuzzer.ml: Algo Array Domain Engine Fun Int List Outcome Rf_detect Rf_runtime Rf_util Site Strategy Unix
