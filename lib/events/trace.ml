(** Recorded execution traces.

    A trace is the event sequence of one run.  Traces serve two purposes:
    offline race detection (phase 1 feeds a trace to the hybrid detector)
    and replay validation — the paper's replay feature re-runs with the same
    seed and must reproduce the identical schedule, which we check by
    comparing trace fingerprints. *)

type t = { mutable events : Event.t array; mutable len : int }

let create ?(capacity = 256) () = { events = Array.make (max 1 capacity) (Event.Exit { tid = -1 }); len = 0 }

let length t = t.len

let add t ev =
  if t.len = Array.length t.events then begin
    let bigger = Array.make (2 * t.len) ev in
    Array.blit t.events 0 bigger 0 t.len;
    t.events <- bigger
  end;
  t.events.(t.len) <- ev;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: out of bounds";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.events.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.events.(i))

let equal a b =
  a.len = b.len
  &&
  let rec go i = i >= a.len || (Event.equal a.events.(i) b.events.(i) && go (i + 1)) in
  go 0

(* Order-sensitive structural digest.  Streams every event field through
   {!Event.hash_fold} (FNV-style, full 63-bit width) — the previous
   implementation hashed [Event.to_string] through [Hashtbl.hash], whose
   30-bit output made collisions between distinct schedules cheap.  The
   final mix is SplitMix64-style avalanching so single-field differences
   flip high bits too; masking keeps the result a non-negative [int]. *)
let fingerprint t =
  let h = fold (fun acc ev -> Event.hash_fold acc ev) 0x1505 t in
  let h = (h lxor (h lsr 30)) * 0x2545F4914F6CDD1D in
  let h = (h lxor (h lsr 27)) * 0x1B03738712FAD5C9 in
  (h lxor (h lsr 31)) land max_int

let count_mem t = fold (fun n ev -> if Event.is_mem ev then n + 1 else n) 0 t
let count_sync t = fold (fun n ev -> if Event.is_sync ev then n + 1 else n) 0 t

let pp ppf t = iteri (fun i ev -> Fmt.pf ppf "%4d %a@." i Event.pp ev) t
