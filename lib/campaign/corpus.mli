(** A persistent cross-campaign corpus: every distinct error
    fingerprint, minimized reproduction schedule, degraded-run record
    and saved phase-1 trace a campaign produces accumulates in one
    directory, deduplicated across runs ([--corpus DIR]).

    {2 Layout}

    {v
    DIR/
      index.json          JSONL: sealed {"corpus":1} header, then one
                          sealed flat object per entry
      repro-<fp>.sched.json   error artifacts (copied or written here)
      trace-seed<N>.rfbt      saved phase-1 recordings
    v}

    Every index line carries the journal's FNV-1a CRC seal
    ({!Event_log.seal}), and updates go through {!Rf_util.Atomic_file}
    (write-tmp, flush, rename) — a campaign SIGKILLed mid-update leaves
    the previous index byte-intact and loadable, which {!verify} checks
    and the chaos tests exercise.

    {2 Deduplication}

    Entries are keyed by ([kind], [key]): an error by its fingerprint, a
    degraded-run record by (pair, seed, final level), a trace by
    (target, seed).  Re-observing a known key bumps its [e_seen] count
    instead of appending — two consecutive campaigns over the same
    target converge to one entry per distinct artifact. *)

type entry = {
  e_kind : string;  (** ["error"], ["degraded"] or ["trace"] *)
  e_key : string;  (** dedup key, unique within the kind *)
  e_target : string;  (** workload name / RFL path; [""] if unknown *)
  e_pair : string;  (** racing pair label; [""] when not pair-specific *)
  e_seed : int;  (** witness seed; [-1] when not seed-specific *)
  e_file : string;
      (** artifact path relative to the corpus dir; [""] = record-only *)
  e_crc : string;
      (** FNV-1a hex of the artifact bytes ({!Rf_util.Fnv.hex63});
          [""] when there is no file *)
  e_seen : int;  (** campaigns that produced this entry (>= 1) *)
}

type summary = { cs_added : int; cs_deduped : int; cs_total : int }

val entry :
  kind:string ->
  key:string ->
  ?target:string ->
  ?pair:string ->
  ?seed:int ->
  unit ->
  entry
(** A record-only entry (no artifact file), [e_seen = 1]. *)

val ingest_file :
  dir:string ->
  kind:string ->
  key:string ->
  ?target:string ->
  ?pair:string ->
  ?seed:int ->
  src:string ->
  unit ->
  entry
(** Copy [src] into the corpus directory (no-op when it already lives
    there), seal its content CRC, and return the entry describing it.
    Creates [dir] if missing. *)

val load : string -> entry list
(** Entries of [DIR/index.json], insertion order; [[]] when the index
    does not exist.  Tolerant: checksum-bad or torn lines are skipped
    (the crash-recovery read — {!verify} is the strict one). *)

val update : dir:string -> entry list -> summary
(** Merge entries into the corpus: known ([kind], [key]) pairs bump
    [e_seen], new ones append; then atomically rewrite the index.
    Creates [dir] and the index on first use. *)

val verify : dir:string -> (int, string list) result
(** Strict integrity check: index header present, every line
    CRC-sealed and well-formed, every referenced artifact file present
    with matching content CRC, no duplicate ([kind], [key]).  [Ok n] is
    the entry count; [Error problems] lists every violation. *)
