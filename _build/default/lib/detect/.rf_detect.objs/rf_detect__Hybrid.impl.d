lib/detect/hybrid.ml: Access_detector
