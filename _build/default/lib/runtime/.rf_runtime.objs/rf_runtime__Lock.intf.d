lib/runtime/lock.mli: Format
