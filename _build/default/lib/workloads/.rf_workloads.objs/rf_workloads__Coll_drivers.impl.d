lib/workloads/coll_drivers.ml: Api Array Array_list Collections Hash_set Jcoll Linked_list List Rf_collections Rf_runtime Tree_set Vector Workload
