(** Statement sites.

    A site identifies a static program statement — the unit over which the
    paper defines racing pairs ("we count the number of distinct pairs of
    statements for which there is a race", §5.2).  DSL statements get a site
    per source position; embedded model programs (workloads, collections)
    declare sites explicitly.

    Sites are interned in a global registry so that re-parsing the same file
    or re-constructing the same workload yields physically stable ids, which
    keeps racing pairs comparable across engine runs. *)

type t = { id : int; file : string; line : int; col : int; label : string }

let id t = t.id
let file t = t.file
let line t = t.line
let col t = t.col
let label t = t.label

type key = string * int * int * string

(* The registry is global, program-structure state (sites are *static*
   statements).  It is shared across domains during parallel fuzzing, so
   interning is mutex-protected; identity is by key, so which domain
   interned first does not affect semantics. *)
let registry : (key, t) Hashtbl.t = Hashtbl.create 256
let by_id : (int, t) Hashtbl.t = Hashtbl.create 256
let next_id = ref 0
let registry_mutex = Mutex.create ()

let make ?(file = "<model>") ?(line = 0) ?(col = 0) label =
  let key = (file, line, col, label) in
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry key with
      | Some s -> s
      | None ->
          let s = { id = !next_id; file; line; col; label } in
          incr next_id;
          Hashtbl.add registry key s;
          Hashtbl.add by_id s.id s;
          s)

let find_by_id id = Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt by_id id)

(** All registered sites on a given line of a file (used by the CLI to let
    users name racing statements by line number, like the paper's figures). *)
let find_by_line ~file ~line =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold
        (fun (f, l, _, _) s acc ->
          if String.equal f file && l = line then s :: acc else acc)
        registry [])
  |> List.sort compare

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash t = t.id

let pp ppf t =
  if t.line = 0 && String.equal t.file "<model>" then Fmt.pf ppf "%s" t.label
  else if t.col = 0 then Fmt.pf ppf "%s:%d(%s)" t.file t.line t.label
  else Fmt.pf ppf "%s:%d:%d(%s)" t.file t.line t.col t.label

let to_string t = Fmt.str "%a" pp t

(** Unordered pairs of sites: the paper's "racing pair of statements".
    Normalized so that [fst] has the smaller id; a pair may be reflexive
    (the same statement racing with itself in two threads). *)
module Pair = struct
  type site = t
  type t = { fst : site; snd : site }

  let make a b = if a.id <= b.id then { fst = a; snd = b } else { fst = b; snd = a }
  let fst t = t.fst
  let snd t = t.snd
  let equal a b = equal a.fst b.fst && equal a.snd b.snd
  let compare a b =
    match Int.compare a.fst.id b.fst.id with
    | 0 -> Int.compare a.snd.id b.snd.id
    | c -> c

  let hash t = (t.fst.id * 65599) + t.snd.id

  let equal_site (a : site) (b : site) = a.id = b.id
  let mem s t = equal_site s t.fst || equal_site s t.snd

  let other s t =
    if equal_site s t.fst then Some t.snd
    else if equal_site s t.snd then Some t.fst
    else None

  let pp_site ppf (s : site) =
    if s.line = 0 && String.equal s.file "<model>" then Fmt.pf ppf "%s" s.label
    else if s.col = 0 then Fmt.pf ppf "%s:%d(%s)" s.file s.line s.label
    else Fmt.pf ppf "%s:%d:%d(%s)" s.file s.line s.col s.label

  let pp ppf t = Fmt.pf ppf "(%a, %a)" pp_site t.fst pp_site t.snd
  let to_string t = Fmt.str "%a" pp t

  module Set = Set.Make (struct
    type nonrec t = t
    let compare = compare
  end)
end

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)
