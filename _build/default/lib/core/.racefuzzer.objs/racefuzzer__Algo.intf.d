lib/core/algo.mli: Format Loc Rf_runtime Rf_util Site Strategy
