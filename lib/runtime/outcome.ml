(** Result of one engine run. *)

open Rf_util
open Rf_events

type exn_report = {
  xtid : int;
  xthread : string;
  exn_ : exn;
  raised_at : Site.t option;
}

type cancel_reason =
  | Wall_deadline
  | Step_deadline
  | Heap_watermark
  | Detector_budget

let pp_cancel_reason ppf = function
  | Wall_deadline -> Fmt.string ppf "wall deadline"
  | Step_deadline -> Fmt.string ppf "step deadline"
  | Heap_watermark -> Fmt.string ppf "heap watermark"
  | Detector_budget -> Fmt.string ppf "detector budget"

type t = {
  steps : int;  (** operations executed *)
  switches : int;  (** strategy consultations *)
  threads_spawned : int;
  exceptions : exn_report list;  (** uncaught per-thread exceptions, oldest first *)
  deadlocked : int list;  (** tids alive but permanently blocked at the end *)
  blocked_at : (int * Site.t option) list;
      (** for each deadlocked tid, the statement site of its pending
          operation — lets deadlock-directed analyses attribute a deadlock
          to a specific lock-order cycle *)
  timed_out : bool;  (** hit the step bound (livelock guard) *)
  cancelled : cancel_reason option;
      (** the run was cut short by a watchdog deadline (engine [config.deadline]) *)
  trace : Trace.t option;
  wall_time : float;  (** seconds *)
}

let ok t =
  t.exceptions = [] && t.deadlocked = [] && (not t.timed_out) && t.cancelled = None

let has_exception t = t.exceptions <> []
let deadlocked t = t.deadlocked <> []

let exn_sites t =
  List.filter_map (fun r -> r.raised_at) t.exceptions

let pp_exn_report ppf r =
  Fmt.pf ppf "t%d(%s): %s%a" r.xtid r.xthread
    (Printexc.to_string r.exn_)
    (Fmt.option (fun ppf s -> Fmt.pf ppf " at %a" Site.pp s))
    r.raised_at

let pp ppf t =
  Fmt.pf ppf
    "@[<v>steps: %d; switches: %d; threads: %d; wall: %.4fs%a%a%a%a@]" t.steps
    t.switches t.threads_spawned t.wall_time
    (fun ppf -> function
      | [] -> ()
      | exns ->
          Fmt.pf ppf "@,exceptions:@,  %a"
            (Fmt.list ~sep:(Fmt.any "@,  ") pp_exn_report)
            exns)
    t.exceptions
    (fun ppf -> function
      | [] -> ()
      | tids ->
          Fmt.pf ppf "@,DEADLOCK: threads %a blocked forever"
            (Fmt.list ~sep:Fmt.comma Fmt.int) tids)
    t.deadlocked
    (fun ppf timed_out -> if timed_out then Fmt.pf ppf "@,TIMED OUT (step bound)")
    t.timed_out
    (fun ppf -> function
      | Some r -> Fmt.pf ppf "@,CANCELLED (%a)" pp_cancel_reason r
      | None -> ())
    t.cancelled
