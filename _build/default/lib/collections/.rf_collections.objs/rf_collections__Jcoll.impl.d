lib/collections/jcoll.ml: List Lock Op Rf_runtime
