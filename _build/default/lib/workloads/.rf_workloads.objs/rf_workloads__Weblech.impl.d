lib/workloads/weblech.ml: Api Common List Lock Printf Rf_runtime Rf_util Site Workload
