lib/collections/vector.ml: Api Array Jcoll List Lock Op Printf Rf_runtime Rf_util Site
