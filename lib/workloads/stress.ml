(** Adversarial resource-stress workloads: programs built to blow up
    detector state, not to model any benchmark.

    Each one attacks a different axis of analysis-state growth, so
    together they exercise every rung of the degradation ladder
    ({!Rf_resource.Governor}):

    - {b stress-threads}: a storm of short-lived threads inflates the
      vector-clock tables (one clock per thread, each O(threads) wide).
    - {b stress-locks}: two threads churning through thousands of locks
      inflate the happens-before message table (one entry per release).
    - {b stress-hotloc}: many threads hammering one location from
      distinct sites grow a single access-history bucket to its cap,
      exercising per-bucket reservoir sampling.
    - {b stress-sweep}: two threads sweeping a ~1.2M-element shared
      array create one access-history bucket, one clock and one lockset
      {e per element} — several hundred bytes each, comfortably past a
      256MB address-space limit when ungoverned.  Under an entry budget
      the governor compacts the history to a bounded working set and the
      sweep completes degraded in tens of MB.

    All four are deterministic programs of the usual kind — state growth
    is a pure function of the schedule, so governed runs fingerprint
    identically on any domain count. *)

open Rf_util
open Rf_runtime

let file = "stress"
let s line label = Site.make ~file ~line label

(* ------------------------------------------------------------------ *)
(* Thread storm: clock-table pressure.                                 *)

let thread_storm ?(threads = 48) ?(writes = 4) () =
  let mine =
    Array.init threads (fun i ->
        Api.Cell.make ~name:(Printf.sprintf "storm.%d" i) 0)
  in
  let shared = Api.Cell.global "storm.shared" 0 in
  let worker i () =
    for w = 1 to writes do
      Api.Cell.write ~site:(s 10 "storm.mine(write)") mine.(i) w
    done;
    (* unsynchronized rmw: every pair of storm threads conflicts here *)
    Api.Cell.update ~rsite:(s 11 "storm.shared(read)")
      ~wsite:(s 12 "storm.shared(write)") shared succ
  in
  let hs =
    List.init threads (fun i ->
        Api.fork ~name:(Printf.sprintf "storm%d" i) (worker i))
  in
  List.iter Api.join hs

(* ------------------------------------------------------------------ *)
(* Lock churn: happens-before message-table pressure.                  *)

let lock_churn ?(locks = 2000) ?(rounds = 2) () =
  let ls =
    Array.init locks (fun i -> Lock.create ~name:(Printf.sprintf "churn.%d" i) ())
  in
  let x = Api.Cell.global "churn.x" 0 in
  let worker rsite wsite () =
    for _ = 1 to rounds do
      Array.iter
        (fun l ->
          Api.sync ~site:(s 20 "churn.sync") l (fun () ->
              Api.Cell.update ~rsite ~wsite x succ))
        ls
    done
  in
  let h1 =
    Api.fork ~name:"churn-a"
      (worker (s 21 "churn.x(read,a)") (s 22 "churn.x(write,a)"))
  in
  let h2 =
    Api.fork ~name:"churn-b"
      (worker (s 23 "churn.x(read,b)") (s 24 "churn.x(write,b)"))
  in
  Api.join h1;
  Api.join h2

(* ------------------------------------------------------------------ *)
(* Hot location: single-bucket access-history pressure.                *)

let hot_location ?(threads = 16) ?(rounds = 32) () =
  let hot = Api.Cell.global "hot" 0 in
  let worker i () =
    (* distinct site per thread: every access is history-worthy, none
       supersedes another, so the bucket grows to whatever cap the
       current ladder rung allows *)
    let site = Site.make ~file ~line:(100 + i) (Printf.sprintf "hot.t%d" i) in
    for r = 1 to rounds do
      Api.Cell.write ~site hot ((i * rounds) + r)
    done
  in
  let hs =
    List.init threads (fun i ->
        Api.fork ~name:(Printf.sprintf "hot%d" i) (worker i))
  in
  List.iter Api.join hs

(* ------------------------------------------------------------------ *)
(* Address sweep: one-location-per-entry state explosion.              *)

let address_sweep ?(locs = 1_200_000) ?(overlap = 256) () =
  let arr = Api.Sarray.make locs 0 in
  let half = locs / 2 in
  let overlap = min overlap half in
  (* Private ranges first, the shared overlap window last: both threads
     reach the racy region at about the same time, so even a governed
     run whose compaction keeps only the newest buckets still has one
     side's accesses in history when the other side arrives. *)
  let sweep site lo hi () =
    for i = lo to hi - 1 do
      Api.Sarray.set ~site arr i i
    done;
    for i = half to half + overlap - 1 do
      Api.Sarray.set ~site arr i (i + 1)
    done
  in
  let h1 = Api.fork ~name:"sweep-lo" (sweep (s 200 "sweep(lo)") 0 half) in
  let h2 =
    Api.fork ~name:"sweep-hi" (sweep (s 201 "sweep(hi)") (half + overlap) locs)
  in
  Api.join h1;
  Api.join h2

(* ------------------------------------------------------------------ *)
(* Static models.

   Coarse but sound: the storm's per-thread [mine] cells share one site,
   so the model merges them into one over-approximated shared variable
   (Likely, never fuzzed into a confirmation — an accepted imprecision);
   the churn accesses hold a different lock on every occurrence, so the
   must-intersection is empty and the real cross-lock race survives.  The
   reflexive single-thread and read-read pairs are what the filter can
   actually prove Impossible here. *)

let storm_model ~threads =
  let open Rf_static.Static in
  let b = Model.create () in
  for i = 0 to threads - 1 do
    let thread = Printf.sprintf "storm%d" i in
    Model.access b ~site:(s 10 "storm.mine(write)") ~var:"storm.mine"
      ~write:true ~thread ~locks:[];
    Model.access b ~site:(s 11 "storm.shared(read)") ~var:"storm.shared"
      ~write:false ~thread ~locks:[];
    Model.access b ~site:(s 12 "storm.shared(write)") ~var:"storm.shared"
      ~write:true ~thread ~locks:[]
  done;
  Model.build b

let churn_model =
  let open Rf_static.Static in
  let b = Model.create () in
  Model.access b ~site:(s 21 "churn.x(read,a)") ~var:"churn.x" ~write:false
    ~thread:"churn-a" ~locks:[];
  Model.access b ~site:(s 22 "churn.x(write,a)") ~var:"churn.x" ~write:true
    ~thread:"churn-a" ~locks:[];
  Model.access b ~site:(s 23 "churn.x(read,b)") ~var:"churn.x" ~write:false
    ~thread:"churn-b" ~locks:[];
  Model.access b ~site:(s 24 "churn.x(write,b)") ~var:"churn.x" ~write:true
    ~thread:"churn-b" ~locks:[];
  Model.build b

let hotloc_model ~threads =
  let open Rf_static.Static in
  let b = Model.create () in
  for i = 0 to threads - 1 do
    Model.access b
      ~site:(Site.make ~file ~line:(100 + i) (Printf.sprintf "hot.t%d" i))
      ~var:"hot" ~write:true
      ~thread:(Printf.sprintf "hot%d" i)
      ~locks:[]
  done;
  Model.build b

let sweep_model =
  let open Rf_static.Static in
  let b = Model.create () in
  Model.access b ~site:(s 200 "sweep(lo)") ~var:"sweep.arr" ~write:true
    ~thread:"sweep-lo" ~locks:[];
  Model.access b ~site:(s 201 "sweep(hi)") ~var:"sweep.arr" ~write:true
    ~thread:"sweep-hi" ~locks:[];
  Model.build b

(* ------------------------------------------------------------------ *)

let workloads =
  [
    Workload.make ~name:"stress-threads"
      ~descr:"thread storm: clock-table pressure (48 threads)" ~sloc:30
      ~static:(Some (storm_model ~threads:48))
      (thread_storm ?threads:None ?writes:None);
    Workload.make ~name:"stress-locks"
      ~descr:"lock churn: happens-before message-table pressure (2000 locks)"
      ~sloc:30 ~static:(Some churn_model)
      (lock_churn ?locks:None ?rounds:None);
    Workload.make ~name:"stress-hotloc"
      ~descr:"hot location: single-bucket history pressure (16 writers)"
      ~sloc:25
      ~static:(Some (hotloc_model ~threads:16))
      (hot_location ?threads:None ?rounds:None);
    Workload.make ~name:"stress-sweep"
      ~descr:"address sweep: per-element detector state, OOMs ungoverned (1.2M locations)"
      ~sloc:25 ~static:(Some sweep_model)
      (address_sweep ?locs:None ?overlap:None);
  ]

(* Small variants for tests: same shapes, budgets of a few hundred still
   trip, but a whole trial finishes in milliseconds. *)
let small =
  [
    Workload.make ~name:"stress-threads-small" ~descr:"thread storm (12 threads)"
      ~sloc:30
      ~static:(Some (storm_model ~threads:12))
      (thread_storm ~threads:12 ~writes:2);
    Workload.make ~name:"stress-locks-small" ~descr:"lock churn (64 locks)"
      ~sloc:30 ~static:(Some churn_model)
      (lock_churn ~locks:64 ~rounds:1);
    Workload.make ~name:"stress-hotloc-small" ~descr:"hot location (8 writers)"
      ~sloc:25
      ~static:(Some (hotloc_model ~threads:8))
      (hot_location ~threads:8 ~rounds:8);
    Workload.make ~name:"stress-sweep-small" ~descr:"address sweep (4096 locations)"
      ~sloc:25 ~static:(Some sweep_model)
      (address_sweep ~locs:4096 ~overlap:64);
  ]
