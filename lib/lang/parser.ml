(** Recursive-descent parser for RFL.

    Grammar sketch (';'-terminated statements, C-like expressions):

    {v
      program   ::= decl*
      decl      ::= 'shared' ty ('[' INT ']')? IDENT ('=' expr)? ';'
                  | 'lock' IDENT ';'
                  | 'def' IDENT '(' params ')' ('->' ty)? block
                  | 'thread' IDENT ('after' IDENT (',' IDENT)... )? block
      stmt      ::= IDENT '=' expr ';'            | IDENT '[' expr ']' '=' expr ';'
                  | 'let' IDENT '=' expr ';'      | 'if' '(' expr ')' block ('else' (block|if-stmt))?
                  | 'while' '(' expr ')' block    | 'for' '(' simple ';' expr ';' simple ')' block
                  | 'sync' '(' IDENT ')' block    | 'lock' '(' IDENT ')' ';'
                  | 'unlock' '(' IDENT ')' ';'    | 'wait' '(' IDENT ')' ';'
                  | 'notify' '(' IDENT ')' ';'    | 'notifyall' '(' IDENT ')' ';'
                  | 'sleep' ';'                   | 'assert' expr ';'
                  | 'error' STRING ';'            | 'print' expr ';'
                  | 'skip' ';'                    | 'return' expr? ';'
                  | IDENT '(' args ')' ';'
      expr      ::= precedence-climbing over || && == != < <= > >= + - * / % ! unary-
    v} *)

exception Parse_error of Token.pos * string

type t = {
  toks : (Token.t * Token.pos) array;
  mutable idx : int;
  file : string;
}

let create ~file src = { toks = Array.of_list (Lexer.tokenize src); idx = 0; file }

let peek p = fst p.toks.(p.idx)
let peek_pos p = snd p.toks.(p.idx)

let peek2 p =
  if p.idx + 1 < Array.length p.toks then fst p.toks.(p.idx + 1) else Token.EOF

let error p fmt =
  Fmt.kstr (fun m -> raise (Parse_error (peek_pos p, m))) fmt

let advance p = if p.idx + 1 < Array.length p.toks then p.idx <- p.idx + 1

let expect p tok =
  if peek p = tok then advance p
  else error p "expected %s but found %s" (Token.to_string tok) (Token.to_string (peek p))

let expect_ident p =
  match peek p with
  | Token.IDENT s ->
      advance p;
      s
  | t -> error p "expected identifier but found %s" (Token.to_string t)

let expect_string p =
  match peek p with
  | Token.STRING s ->
      advance p;
      s
  | t -> error p "expected string literal but found %s" (Token.to_string t)

let expect_int p =
  match peek p with
  | Token.INT n ->
      advance p;
      n
  | t -> error p "expected integer literal but found %s" (Token.to_string t)

let parse_ty p =
  match peek p with
  | Token.INT_T ->
      advance p;
      Ast.Tint
  | Token.BOOL_T ->
      advance p;
      Ast.Tbool
  | t -> error p "expected a type but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions: precedence climbing                                    *)

let binop_of_token = function
  | Token.OR -> Some (Ast.Or, 1)
  | Token.AND -> Some (Ast.And, 2)
  | Token.EQ -> Some (Ast.Eq, 3)
  | Token.NEQ -> Some (Ast.Neq, 3)
  | Token.LT -> Some (Ast.Lt, 4)
  | Token.LE -> Some (Ast.Le, 4)
  | Token.GT -> Some (Ast.Gt, 4)
  | Token.GE -> Some (Ast.Ge, 4)
  | Token.PLUS -> Some (Ast.Add, 5)
  | Token.MINUS -> Some (Ast.Sub, 5)
  | Token.STAR -> Some (Ast.Mul, 6)
  | Token.SLASH -> Some (Ast.Div, 6)
  | Token.PERCENT -> Some (Ast.Mod, 6)
  | _ -> None

let rec parse_expr p = parse_binary p 1

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec go lhs =
    match binop_of_token (peek p) with
    | Some (op, prec) when prec >= min_prec ->
        let pos = peek_pos p in
        advance p;
        let rhs = parse_binary p (prec + 1) in
        go { Ast.e = Ast.Ebin (op, lhs, rhs); epos = pos }
    | _ -> lhs
  in
  go lhs

and parse_unary p =
  let pos = peek_pos p in
  match peek p with
  | Token.MINUS ->
      advance p;
      { Ast.e = Ast.Eneg (parse_unary p); epos = pos }
  | Token.NOT ->
      advance p;
      { Ast.e = Ast.Enot (parse_unary p); epos = pos }
  | _ -> parse_primary p

and parse_primary p =
  let pos = peek_pos p in
  match peek p with
  | Token.INT n ->
      advance p;
      { Ast.e = Ast.Eint n; epos = pos }
  | Token.TRUE ->
      advance p;
      { Ast.e = Ast.Ebool true; epos = pos }
  | Token.FALSE ->
      advance p;
      { Ast.e = Ast.Ebool false; epos = pos }
  | Token.STRING s ->
      advance p;
      { Ast.e = Ast.Estring s; epos = pos }
  | Token.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Token.RPAREN;
      e
  | Token.IDENT name -> (
      advance p;
      match peek p with
      | Token.LPAREN ->
          advance p;
          let args = parse_args p in
          { Ast.e = Ast.Ecall (name, args); epos = pos }
      | Token.LBRACKET ->
          advance p;
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          { Ast.e = Ast.Eindex (name, idx); epos = pos }
      | _ -> { Ast.e = Ast.Evar name; epos = pos })
  | t -> error p "expected an expression but found %s" (Token.to_string t)

and parse_args p =
  if peek p = Token.RPAREN then begin
    advance p;
    []
  end
  else
    let rec go acc =
      let e = parse_expr p in
      match peek p with
      | Token.COMMA ->
          advance p;
          go (e :: acc)
      | Token.RPAREN ->
          advance p;
          List.rev (e :: acc)
      | t -> error p "expected ',' or ')' in arguments, found %s" (Token.to_string t)
    in
    go []

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

let rec parse_block p =
  expect p Token.LBRACE;
  let rec go acc =
    if peek p = Token.RBRACE then begin
      advance p;
      List.rev acc
    end
    else go (parse_stmt p :: acc)
  in
  go []

and mono_paren_ident p kw =
  (* kw '(' IDENT ')' ';' *)
  advance p;
  expect p Token.LPAREN;
  let name = expect_ident p in
  expect p Token.RPAREN;
  expect p Token.SEMI;
  ignore kw;
  name

and parse_simple_stmt p =
  (* assignment / let / call, without the trailing ';' — used by 'for' *)
  let pos = peek_pos p in
  match peek p with
  | Token.LET ->
      advance p;
      let name = expect_ident p in
      expect p Token.ASSIGN;
      let e = parse_expr p in
      { Ast.s = Ast.Slet (name, e); spos = pos }
  | Token.IDENT name -> (
      advance p;
      match peek p with
      | Token.ASSIGN ->
          advance p;
          let e = parse_expr p in
          { Ast.s = Ast.Sassign (name, e); spos = pos }
      | Token.LBRACKET ->
          advance p;
          let idx = parse_expr p in
          expect p Token.RBRACKET;
          expect p Token.ASSIGN;
          let e = parse_expr p in
          { Ast.s = Ast.Sindex_assign (name, idx, e); spos = pos }
      | Token.LPAREN ->
          advance p;
          let args = parse_args p in
          { Ast.s = Ast.Scall (name, args); spos = pos }
      | t ->
          error p "expected '=', '[' or '(' after identifier, found %s"
            (Token.to_string t))
  | t -> error p "expected a simple statement, found %s" (Token.to_string t)

and parse_stmt p : Ast.stmt =
  let pos = peek_pos p in
  match peek p with
  | Token.LET | Token.IDENT _ ->
      let s = parse_simple_stmt p in
      expect p Token.SEMI;
      s
  | Token.IF ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let then_ = parse_block p in
      let else_ =
        if peek p = Token.ELSE then begin
          advance p;
          if peek p = Token.IF then Some [ parse_stmt p ] else Some (parse_block p)
        end
        else None
      in
      { Ast.s = Ast.Sif (cond, then_, else_); spos = pos }
  | Token.WHILE ->
      advance p;
      expect p Token.LPAREN;
      let cond = parse_expr p in
      expect p Token.RPAREN;
      let body = parse_block p in
      { Ast.s = Ast.Swhile (cond, body); spos = pos }
  | Token.FOR ->
      advance p;
      expect p Token.LPAREN;
      let init = parse_simple_stmt p in
      expect p Token.SEMI;
      let cond = parse_expr p in
      expect p Token.SEMI;
      let step = parse_simple_stmt p in
      expect p Token.RPAREN;
      let body = parse_block p in
      { Ast.s = Ast.Sfor (init, cond, step, body); spos = pos }
  | Token.SYNC ->
      advance p;
      expect p Token.LPAREN;
      let name = expect_ident p in
      expect p Token.RPAREN;
      let body = parse_block p in
      { Ast.s = Ast.Ssync (name, body); spos = pos }
  | Token.LOCK -> { Ast.s = Ast.Slock (mono_paren_ident p "lock"); spos = pos }
  | Token.UNLOCK -> { Ast.s = Ast.Sunlock (mono_paren_ident p "unlock"); spos = pos }
  | Token.WAIT -> { Ast.s = Ast.Swait (mono_paren_ident p "wait"); spos = pos }
  | Token.NOTIFY -> { Ast.s = Ast.Snotify (mono_paren_ident p "notify"); spos = pos }
  | Token.NOTIFYALL ->
      { Ast.s = Ast.Snotify_all (mono_paren_ident p "notifyall"); spos = pos }
  | Token.SLEEP ->
      advance p;
      expect p Token.SEMI;
      { Ast.s = Ast.Ssleep; spos = pos }
  | Token.ASSERT ->
      advance p;
      let e = parse_expr p in
      expect p Token.SEMI;
      { Ast.s = Ast.Sassert e; spos = pos }
  | Token.ERROR_KW ->
      advance p;
      let msg = expect_string p in
      expect p Token.SEMI;
      { Ast.s = Ast.Serror msg; spos = pos }
  | Token.PRINT ->
      advance p;
      let e = parse_expr p in
      expect p Token.SEMI;
      { Ast.s = Ast.Sprint e; spos = pos }
  | Token.SKIP ->
      advance p;
      expect p Token.SEMI;
      { Ast.s = Ast.Sskip; spos = pos }
  | Token.RETURN ->
      advance p;
      if peek p = Token.SEMI then begin
        advance p;
        { Ast.s = Ast.Sreturn None; spos = pos }
      end
      else begin
        let e = parse_expr p in
        expect p Token.SEMI;
        { Ast.s = Ast.Sreturn (Some e); spos = pos }
      end
  | t -> error p "expected a statement but found %s" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)

let parse_shared p =
  let pos = peek_pos p in
  expect p Token.SHARED;
  let ty = parse_ty p in
  let garray =
    if peek p = Token.LBRACKET then begin
      advance p;
      let n = expect_int p in
      expect p Token.RBRACKET;
      Some n
    end
    else None
  in
  let name = expect_ident p in
  let init =
    if peek p = Token.ASSIGN then begin
      advance p;
      parse_expr p
    end
    else
      {
        Ast.e = (match ty with Ast.Tbool -> Ast.Ebool false | _ -> Ast.Eint 0);
        epos = pos;
      }
  in
  expect p Token.SEMI;
  { Ast.gname = name; gty = ty; ginit = init; garray; gpos = pos }

let parse_func p =
  let pos = peek_pos p in
  expect p Token.DEF;
  let name = expect_ident p in
  expect p Token.LPAREN;
  let params =
    if peek p = Token.RPAREN then begin
      advance p;
      []
    end
    else
      let rec go acc =
        let ty = parse_ty p in
        let pname = expect_ident p in
        match peek p with
        | Token.COMMA ->
            advance p;
            go ((pname, ty) :: acc)
        | Token.RPAREN ->
            advance p;
            List.rev ((pname, ty) :: acc)
        | t -> error p "expected ',' or ')' in parameters, found %s" (Token.to_string t)
      in
      go []
  in
  let ret =
    if peek p = Token.ARROW then begin
      advance p;
      Some (parse_ty p)
    end
    else None
  in
  let body = parse_block p in
  { Ast.fname = name; fparams = params; fret = ret; fbody = body; fpos = pos }

let parse_program ~file src : Ast.program =
  let p = create ~file src in
  let shareds = ref [] and locks = ref [] and funcs = ref [] and threads = ref [] in
  let rec go () =
    match peek p with
    | Token.EOF -> ()
    | Token.SHARED ->
        shareds := parse_shared p :: !shareds;
        go ()
    | Token.LOCK when peek2 p <> Token.LPAREN ->
        (* top-level 'lock L;' is a declaration *)
        let pos = peek_pos p in
        advance p;
        let name = expect_ident p in
        expect p Token.SEMI;
        locks := (name, pos) :: !locks;
        go ()
    | Token.DEF ->
        funcs := parse_func p :: !funcs;
        go ()
    | Token.THREAD ->
        let pos = peek_pos p in
        advance p;
        let name = expect_ident p in
        let after =
          if peek p = Token.AFTER then begin
            advance p;
            let rec deps acc =
              let d = expect_ident p in
              if peek p = Token.COMMA then begin
                advance p;
                deps (d :: acc)
              end
              else List.rev (d :: acc)
            in
            deps []
          end
          else []
        in
        let body = parse_block p in
        threads :=
          { Ast.tname = name; tafter = after; tbody = body; tpos = pos } :: !threads;
        go ()
    | t -> error p "expected a declaration but found %s" (Token.to_string t)
  in
  go ();
  {
    Ast.file;
    shareds = List.rev !shareds;
    locks = List.rev !locks;
    funcs = List.rev !funcs;
    threads = List.rev !threads;
  }
