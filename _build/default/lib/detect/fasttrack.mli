(** Epoch-optimized precise happens-before race detection, after FastTrack
    (Flanagan & Freund, PLDI 2009): last-write epochs with on-demand
    inflation of read vector clocks.  Reports a subset of
    {!Hb_precise}'s statement pairs but flags exactly the same racy
    locations (property-tested), with O(1) fast-path checks. *)

open Rf_util
open Rf_events

type t

val create : unit -> t
val feed : t -> Event.t -> unit
val races : t -> Race.t list
val pairs : t -> Site.Pair.Set.t
val race_count : t -> int

val epoch_hits : t -> int
(** Accesses settled by the O(1) epoch comparison. *)

val vc_ops : t -> int
(** Accesses that needed full read-vector work. *)
