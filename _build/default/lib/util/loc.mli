(** Dynamic shared-memory locations: the addresses compared by the paper's
    [Racing] function (Algorithm 2) — two postponed statements race only
    when they touch the same {e dynamic} location. *)

type t =
  | Global of string  (** a named shared global (DSL [shared] variables) *)
  | Field of int * string  (** heap-object field: (object id, field name) *)
  | Elem of int * int  (** array element: (array id, index) *)

val reset_counter : unit -> unit
(** Reset the (domain-local) object-id counter; called by the engine at the
    start of every run so allocation order — hence location identity — is
    deterministic per seed. *)

val fresh_obj : unit -> int
(** Allocate a fresh object id from the domain-local counter. *)

val global : string -> t
val field : int -> string -> t
val elem : int -> int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
