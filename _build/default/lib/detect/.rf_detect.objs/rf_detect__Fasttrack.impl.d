lib/detect/fasttrack.ml: Event Hashtbl Hbclock List Loc Race Rf_events Rf_util Rf_vclock Site Vclock
