lib/core/rapos.ml: Array List Loc Op Prng Rf_events Rf_runtime Rf_util Strategy
