(** Eraser-style lockset race detection (Savage et al. [43]).

    The classical lockset discipline checker, included as the second
    imprecise baseline the paper discusses.  Each location carries a state
    machine:

    {v
      Virgin --first access--> Exclusive(t)
      Exclusive(t) --access by t'<>t--> Shared (read) | SharedModified (write)
      Shared --write--> SharedModified
    v}

    and a candidate lockset [C(v)], initialized to the full lockset of the
    first shared access and refined by intersection on every subsequent
    access.  A race is reported when [C(v)] becomes empty in the
    [SharedModified] state.  No happens-before reasoning at all, so
    fork/join and wait/notify ordering produce false positives that even
    hybrid detection avoids.

    Reported pairs combine the emptying access's site with the previously
    recorded access sites of the location (bounded), approximating the
    statement-pair granularity of the other detectors. *)

open Rf_util
open Rf_events
open Rf_resource

type state =
  | Virgin
  | Exclusive of int * Lockset.t  (** owning thread, candidate lockset so far *)
  | Shared of Lockset.t
  | Shared_modified of Lockset.t

type cell = {
  mutable st : state;
  mutable sites : (Site.t * Event.access * int) list;  (* bounded, newest first *)
  mutable racy : bool;
}

type t = {
  cells : cell Loc.Tbl.t;
  site_cap : int;
  governor : Governor.t option;
  mutable races : Race.t list;
  mutable reported : Site.Pair.Set.t;
}

let charge t n = match t.governor with Some g -> Governor.charge g n | None -> ()
let credit t n = match t.governor with Some g -> Governor.credit g n | None -> ()
let evict t n = match t.governor with Some g -> Governor.evict g n | None -> ()

let level t =
  match t.governor with Some g -> Governor.level g | None -> Governor.Full

(* Effective per-location site cap: shrinks at Sampled and below. *)
let site_cap_at t = function
  | Governor.Full -> t.site_cap
  | Governor.Sampled -> min t.site_cap 4
  | Governor.Lockset_only -> min t.site_cap 2

(* Governor hook: truncate every site list to the new (smaller) cap.
   Per-cell truncation is independent of iteration order. *)
let truncate_sites t lv =
  let cap = site_cap_at t lv in
  Loc.Tbl.iter
    (fun _loc c ->
      let n = List.length c.sites in
      if n > cap then begin
        c.sites <- List.filteri (fun i _ -> i < cap) c.sites;
        evict t (n - cap)
      end)
    t.cells

let create ?(site_cap = 16) ?governor () =
  let t =
    {
      cells = Loc.Tbl.create 256;
      site_cap;
      governor;
      races = [];
      reported = Site.Pair.Set.empty;
    }
  in
  (match governor with
  | Some g -> Governor.subscribe g (fun lv -> truncate_sites t lv)
  | None -> ());
  t

(* At the bottom rung the cell table is frozen: unseen locations go
   untracked. *)
let cell t loc =
  match Loc.Tbl.find_opt t.cells loc with
  | Some c -> Some c
  | None ->
      if level t = Governor.Lockset_only then None
      else begin
        let c = { st = Virgin; sites = []; racy = false } in
        Loc.Tbl.add t.cells loc c;
        charge t 1;
        Some c
      end

let report t ~loc ~site ~access ~tid (prior : (Site.t * Event.access * int) list) =
  List.iter
    (fun (psite, pacc, ptid) ->
      if
        ptid <> tid
        && (Event.access_equal access Event.Write || Event.access_equal pacc Event.Write)
      then begin
        let pair = Site.Pair.make psite site in
        if not (Site.Pair.Set.mem pair t.reported) then begin
          t.reported <- Site.Pair.Set.add pair t.reported;
          t.races <-
            Race.make ~pair ~loc ~tids:(ptid, tid) ~accesses:(pacc, access) :: t.races
        end
      end)
    prior

let feed t ev =
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } -> (
      match cell t loc with
      | None -> ()
      | Some c ->
      let next_state =
        match (c.st, access) with
        | Virgin, _ -> Exclusive (tid, lockset)
        | Exclusive (t0, ls), _ when t0 = tid ->
            Exclusive (t0, Lockset.inter ls lockset)
        | Exclusive (_, ls), Event.Read -> Shared (Lockset.inter ls lockset)
        | Exclusive (_, ls), Event.Write -> Shared_modified (Lockset.inter ls lockset)
        | Shared ls, Event.Read -> Shared (Lockset.inter ls lockset)
        | Shared ls, Event.Write -> Shared_modified (Lockset.inter ls lockset)
        | Shared_modified ls, _ -> Shared_modified (Lockset.inter ls lockset)
      in
      c.st <- next_state;
      (match next_state with
      | Shared_modified ls when Lockset.is_empty ls ->
          if not c.racy then c.racy <- true;
          report t ~loc ~site ~access ~tid c.sites
      | _ -> ());
      let cap = site_cap_at t (level t) in
      let before = List.length c.sites in
      let kept = List.filteri (fun i _ -> i < cap - 1) c.sites in
      let dropped = before - List.length kept in
      if dropped > 0 then credit t dropped;
      charge t 1;
      c.sites <- (site, access, tid) :: kept)
  | _ -> ()

let races t = List.rev t.races
let pairs t = t.reported
let race_count t = Site.Pair.Set.cardinal t.reported

(** Locations whose discipline was violated, regardless of pair dedup. *)
let racy_locations t =
  Loc.Tbl.fold (fun loc c acc -> if c.racy then loc :: acc else acc) t.cells []
