lib/core/fuzzer.mli: Algo Engine Outcome Rf_detect Rf_runtime Rf_util Site Strategy
