(** All Table 1 workloads, in the paper's row order. *)

let all : Workload.t list =
  [
    Moldyn.workload;
    Raytracer.workload;
    Montecarlo.workload;
    Cache4j.workload;
    Sor.workload;
    Hedc.workload;
    Weblech.workload;
    Jspider.workload;
    Jigsaw.workload;
    Coll_drivers.vector;
    Coll_drivers.linkedlist;
    Coll_drivers.arraylist;
    Coll_drivers.hashset;
    Coll_drivers.treeset;
  ]

let litmus : Workload.t list = [ Figure1.workload; Figure2.workload ]

(** Classic benchmarks beyond Table 1 (tsp, elevator, philosophers); the
    philosophers workload deadlocks by design, so it is excluded from the
    termination-asserting suites. *)
let extras : Workload.t list = [ Extras.tsp; Extras.elevator; Extras.philosophers ]

(** Adversarial resource-stress programs ({!Stress}); excluded from the
    Table 1 suites, addressable by name for governed campaigns and the
    [@stress] test tier. *)
let stress : Workload.t list = Stress.workloads @ Stress.small

(** Server-shaped stress programs ({!Serve}); like {!stress}, they are
    addressable by name but excluded from the Table 1 suites. *)
let serve : Workload.t list = Serve.workloads @ Serve.small

let find name =
  List.find_opt
    (fun w -> String.lowercase_ascii w.Workload.name = String.lowercase_ascii name)
    (all @ litmus @ extras @ stress @ serve)

let names () = List.map (fun w -> w.Workload.name) (all @ litmus @ extras @ stress @ serve)
