(** Multi-process campaign execution: crash-isolated worker processes.

    The in-process domain pool ({!Supervisor}) survives harness crashes
    because trials are carefully sandboxed; it cannot survive a segfault,
    a runaway allocation, or a C-level hang — anything that takes the
    whole process takes the campaign.  This module moves the isolation
    boundary to the OS: trial assignments are shipped over pipes to
    worker {e processes} (a hidden [campaign-worker] mode of the CLI
    binary), so the kernel reclaims whatever a worker leaks and a kill
    costs one in-flight trial, never the run.

    {2 Wire format}

    Both pipe directions carry length-prefixed FNV-1a-64-sealed frames —
    the {!Rf_events.Btrace} framing idiom:

    {v
    frame   := u32:len payload[len] u64:fnv1a64(payload)   (len > 0)
    payload := tag:u8 fields...
    v}

    All integers little-endian; strings [u32]-length-prefixed; floats as
    IEEE-754 bits.  A torn, truncated or bit-flipped frame raises
    {!Frame.Corrupt} with the offending byte offset, and the supervisor
    treats the sender as dead — corrupt IPC is detected, never misparsed
    into a wrong result.

    Racing pairs cross the process boundary {e structurally}: a site is
    shipped as its (file, line, col, label) key and re-interned in the
    worker ({!Rf_util.Site.make}), so workers never rerun phase 1 and
    wire ids never touch the site registry.

    {2 Supervision}

    The pool keeps one pipe pair per worker and multiplexes them with
    [select].  Any frame from a worker refreshes its heartbeat; a worker
    that stays silent past the deadline while holding an assignment is
    SIGKILLed and its assignment requeued.  Dead workers respawn with the
    {!Supervisor} backoff curve until the policy's respawn budget is
    exhausted; every child is [waitpid]-reaped (no zombies, no orphans).
    Per-worker rlimits (address space, CPU) are applied by spawning
    through [sh -c 'ulimit ...; exec "$@"'], so an OOM or spin kills one
    worker, not the campaign.

    Results are {e records}, not live values: the supervisor rebuilds
    each trial with [Fuzzer.trial_of_record] — the checkpoint/resume
    machinery — which is what makes multi-process fingerprints
    byte-identical to in-process ones. *)

open Rf_util

(** {1 Frames} *)

module Frame : sig
  exception Corrupt of string
  (** Malformed frame: zero or oversized length, truncated payload, or
      checksum mismatch.  The message pinpoints the byte offset. *)

  val max_len : int
  (** Sanity cap on a frame's payload size (16 MiB). *)

  val encode : string -> string
  (** Seal one payload into a frame. *)

  val decode : Buffer.t -> string option
  (** Extract the first complete frame's payload from an inbound byte
      buffer, consuming it; [None] when the buffer holds only a frame
      prefix (read more and retry).  Raises {!Corrupt} on a defective
      frame. *)
end

(** {1 Messages} *)

type init = {
  i_target : string;
      (** workload name or RFL path, resolved by the worker *)
  i_max_steps : int;
  i_postpone : int option option;
      (** the campaign's [?postpone_timeout] argument, all three states *)
  i_detector_budget : int option;
  i_mem_budget : float option;
  i_no_degrade : bool;
  i_trial_wall : float option;  (** per-trial wall watchdog, seconds *)
}

type assignment = {
  a_id : int;  (** unique per campaign; echoed in the result *)
  a_pair : Site.Pair.t;
  a_seed : int;
  (* chaos faults, precomputed supervisor-side so the worker needs no plan *)
  a_crash : bool;  (** raise [Chaos.Injected_crash] inside the sandbox *)
  a_stall : float;  (** sleep this long before the trial (0 = none) *)
  a_tripped : bool;  (** trip the trial's governor one rung at start *)
  a_die : bool;  (** SIGKILL self on receipt (real process death) *)
  a_torn : bool;  (** reply with a deliberately corrupted frame *)
  a_hang : bool;  (** hang forever (exercises the heartbeat deadline) *)
}

(** A finished trial, as the wire carries it: exactly the journal's
    [Trial_finished]/[Trial_crashed]/[Trial_exhausted] payload, so the
    supervisor merges worker results through the same
    [Fuzzer.trial_of_record] path as a journal resume. *)
type tresult =
  | T_finished of {
      t_race : bool;
      t_deadlock : bool;
      t_steps : int;
      t_switches : int;
      t_exns : int;
      t_wall : float;
      t_degraded : bool;
      t_level : string;
      t_trigger : string;
      t_evicted : int;
    }
  | T_crashed of { t_exn : string; t_backtrace : string }
  | T_exhausted of { t_reason : string; t_steps : int; t_wall : float }

(** {1 The worker half} *)

val worker_main : resolve:(string -> (unit -> unit) option) -> unit -> 'a
(** Run the [campaign-worker] protocol over stdin/stdout: read {!init},
    resolve the target, send Ready, then execute assignments until a
    Shutdown frame or EOF.  Never returns; exits 0 on orderly shutdown,
    2 when the init frame is corrupt or the target does not resolve.
    SIGINT is ignored (the supervisor owns worker lifecycles — a
    terminal ^C must not race the supervisor's kill-and-reap) and
    SIGPIPE is disabled in favour of EPIPE. *)

(** {1 The supervisor half} *)

type spec = {
  sp_cmd : string array;
      (** argv to exec a worker, e.g. [[| exe; "campaign-worker" |]] *)
  sp_workers : int;
  sp_heartbeat : float;
      (** SIGKILL a busy worker silent for this many seconds; make it
          comfortably larger than any trial deadline *)
  sp_rlimit_as_mb : int option;  (** per-worker address-space cap *)
  sp_rlimit_cpu_s : int option;  (** per-worker CPU-seconds cap *)
  sp_policy : Supervisor.policy;  (** respawn budget + backoff curve *)
  sp_target : string;  (** forwarded to workers in {!init} *)
}

val default_heartbeat : float

type t

type event =
  | Ev_ready of { ev_worker : int; ev_pid : int }
      (** worker completed its init handshake *)
  | Ev_result of { ev_worker : int; ev_id : int; ev_result : tresult }
  | Ev_died of {
      ev_worker : int;
      ev_pid : int;
      ev_in_flight : int option;  (** assignment to requeue, if any *)
      ev_reason : string;
      ev_killed : bool;  (** the supervisor killed it (heartbeat/corrupt) *)
      ev_respawning : bool;
    }
  | Ev_respawned of { ev_worker : int; ev_pid : int; ev_attempt : int; ev_backoff : float }
  | Ev_gave_up of int  (** respawn budget exhausted for this worker slot *)

val create : spec -> init:init -> t
(** Spawn the fleet and send every worker its {!init} frame.  Spawning is
    asynchronous: exec failures surface as early worker deaths, so gate
    on {!await_ready} before dispatching. *)

val await_ready : t -> timeout:float -> bool
(** Wait until at least one worker completes its handshake; [false] when
    the whole fleet died first or the timeout expired — the caller
    should {!kill_all} and fall back to the in-process domain pool. *)

val idle_workers : t -> int list
(** Workers ready for an assignment, in slot order. *)

val alive : t -> int
(** Workers currently running (including ones mid-respawn-handshake). *)

val gone : t -> bool
(** Every worker slot is dead with its respawn budget exhausted. *)

val assign : t -> worker:int -> assignment -> unit
(** Ship an assignment to an idle worker.  A write failure (worker died
    under us) is absorbed: the death, with this assignment in flight,
    surfaces from the next {!poll}. *)

val poll : t -> timeout:float -> event list
(** Multiplex the fleet: drain readable pipes, decode complete frames,
    enforce heartbeat deadlines, execute due respawns, reap the dead.
    Blocks at most [timeout] seconds; returns accumulated events (possibly
    none). *)

val shutdown : t -> grace:float -> unit
(** Orderly teardown: Shutdown frames to idle workers, up to [grace]
    seconds for voluntary exits, then SIGKILL and reap every survivor.
    Idempotent; no children remain afterwards. *)

val kill_all : t -> unit
(** [shutdown ~grace:0.] — immediate SIGKILL + reap of the whole fleet
    (the SIGINT path: reap all children {e before} the final journal
    write). *)

val pids : t -> int list
(** Live worker pids (for tests). *)
