(* The static pre-filter's test suite (Rf_static.Static):

   1. Differential QCheck soundness: over generated RFL programs
      (rfl_gen's filter-adversarial shapes), a pair the analysis marks
      [Impossible] must never be confirmable by phase 2 — checked both at
      the frontier (analyze's confirmed sets vs the classifier) and
      directly (fuzzing Impossible universe pairs and demanding zero race
      trials).  Deadlocks are deliberately out of scope: a trial can
      deadlock while fuzzing any pair, racy or not, so only race
      confirmations (real/error) falsify an [Impossible] verdict.
   2. Litmus units for each fact family: must-hold locksets (branch
      joins, loop fixpoints, call release-closures), thread reach /
      escape, fork/join ordering (declared [after] chains and the
      accumulated-join rule), plus the hand-model builder's
      merge-by-site semantics.
   3. Golden classification counts per registry workload model — drift in
      the analysis or the models fails loudly here.
   4. Campaign integration: a starved phase-1 detector (tiny
      [detector_budget]) loses fork/join edges and over-reports ordered
      pairs; [--static-filter] removes exactly those, and the filtered
      campaign fingerprints as the unfiltered one restricted to surviving
      pairs, with an identical confirmed fingerprint, through journal
      resume included. *)

open Rf_util
module Static = Rf_static.Static
module Fuzzer = Racefuzzer.Fuzzer
module Campaign = Rf_campaign.Campaign
module Event_log = Rf_campaign.Event_log
module W = Rf_workloads

let max_steps = 100_000
let main_of prog = Rf_lang.Lang.program ~print:ignore prog
let load ~file src = Rf_lang.Lang.load_string ~file src

let confirmed_races (a : Fuzzer.analysis) =
  Site.Pair.Set.union a.Fuzzer.real_pairs a.Fuzzer.error_pairs

let is_impossible st p =
  match Static.classify st p with Static.Impossible _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* 1. Differential soundness                                           *)

(* Frontier differential: run both phases for real, then demand that no
   pair phase 2 confirmed classifies Impossible. *)
let prop_confirmed_never_impossible =
  QCheck.Test.make ~name:"confirmed race => not Impossible" ~count:500
    Rfl_gen.arbitrary_program (fun prog ->
      let st = Static.of_program prog in
      let a =
        Fuzzer.analyze ~phase1_seeds:[ 0 ] ~seeds_per_pair:[ 0; 1; 2; 3 ]
          ~max_steps (main_of prog)
      in
      Site.Pair.Set.for_all
        (fun p -> not (is_impossible st p))
        (confirmed_races a))

(* Universe differential: phase 2 can fuzz *any* pair, not just frontier
   pairs, so Impossible verdicts anywhere in the candidate universe can be
   ground-truthed directly.  A bounded, reason-diverse sample keeps the
   property affordable; every reason family gets fuzzed. *)
let reason_tag = function
  | Static.No_write -> 0
  | Static.Single_thread -> 1
  | Static.Fork_join_ordered -> 2
  | Static.Common_lock _ -> 3

let impossible_sample ?(per_reason = 3) st =
  let tagged =
    List.filter_map
      (fun p ->
        match Static.classify st p with
        | Static.Impossible r -> Some (reason_tag r, p)
        | _ -> None)
      (Site.Pair.Set.elements (Static.universe st))
  in
  List.concat_map
    (fun tag ->
      List.filteri
        (fun i _ -> i < per_reason)
        (List.filter_map
           (fun (t, p) -> if t = tag then Some p else None)
           tagged))
    [ 0; 1; 2; 3 ]

let prop_impossible_unfuzzable =
  QCheck.Test.make ~name:"Impossible universe pairs create no race" ~count:120
    Rfl_gen.arbitrary_program (fun prog ->
      let main = main_of prog in
      List.for_all
        (fun p ->
          let r = Fuzzer.fuzz_pair ~seeds:[ 0; 1; 2 ] ~max_steps ~program:main p in
          r.Fuzzer.race_trials = 0)
        (impossible_sample (Static.of_program prog)))

(* Filtered analyze agrees with unfiltered on every race confirmation, and
   never filters a pair the unfiltered run confirmed. *)
let prop_filtered_analyze_sound =
  QCheck.Test.make ~name:"analyze ~static_filter confirms the same races"
    ~count:60 Rfl_gen.arbitrary_program (fun prog ->
      let st = Static.of_program prog in
      let main = main_of prog in
      let run filter =
        Fuzzer.analyze ~phase1_seeds:[ 0 ] ~seeds_per_pair:[ 0; 1; 2 ]
          ~max_steps ~static:st ~static_filter:filter main
      in
      let unfiltered = run false and filtered = run true in
      Site.Pair.Set.equal (confirmed_races unfiltered) (confirmed_races filtered)
      && List.for_all
           (fun (p, _) -> not (Site.Pair.Set.mem p (confirmed_races unfiltered)))
           filtered.Fuzzer.a_filtered)

(* ------------------------------------------------------------------ *)
(* 2. Litmus units                                                     *)

let static_of ~file src = Static.of_program (load ~file src)

let sites_of st var =
  List.filter
    (fun s ->
      match Static.facts_of st s with
      | Some f -> String.equal f.Static.sf_var var
      | None -> false)
    (Static.sites st)

(* The unique cross pair of a variable with exactly two access sites. *)
let cross_pair st var =
  match sites_of st var with
  | [ a; b ] -> Site.Pair.make a b
  | l ->
      Alcotest.failf "expected exactly 2 sites for %s, got %d" var
        (List.length l)

let vcheck what expected st pair =
  Alcotest.(check string)
    what expected
    (Static.verdict_to_string (Static.classify st pair))

let test_common_lock () =
  let st =
    static_of ~file:"lock.rfl"
      {|
shared int g;
lock L;
thread t1 { sync (L) { g = 1; } }
thread t2 { sync (L) { g = 2; } }
|}
  in
  vcheck "consistently locked" "impossible:common-lock:L" st (cross_pair st "g");
  let c = Static.universe_counts st in
  Alcotest.(check int) "whole universe impossible" 3 c.Static.n_impossible

let test_lock_alias () =
  let st =
    static_of ~file:"alias.rfl"
      {|
shared int g;
lock L0;
lock L1;
thread t1 { sync (L0) { g = 1; } }
thread t2 { sync (L1) { g = 2; } }
|}
  in
  vcheck "aliased locks do not protect" "likely" st (cross_pair st "g")

let test_read_read () =
  let st =
    static_of ~file:"rr.rfl"
      {|
shared int g;
thread t1 { if (g == 1) { skip; } }
thread t2 { if (g == 0) { skip; } }
|}
  in
  vcheck "read/read" "impossible:no-write" st (cross_pair st "g")

let test_single_thread () =
  let st =
    static_of ~file:"single.rfl"
      {|
shared int g;
thread t1 { g = 1; g = 2; }
thread t2 { skip; }
|}
  in
  vcheck "one thread only" "impossible:single-thread" st (cross_pair st "g");
  Alcotest.(check bool) "g does not escape" false (Static.escaped st "g")

let test_fork_join_chain () =
  let st =
    static_of ~file:"chain3.rfl"
      {|
shared int g;
thread t1 { g = 1; }
thread t2 after t1 { skip; }
thread t3 after t2 { g = 2; }
|}
  in
  Alcotest.(check bool) "t1 < t3 transitively" true (Static.is_ordered st "t1" "t3");
  Alcotest.(check bool) "no parallelism t1/t3" false (Static.may_parallel st "t1" "t3");
  vcheck "ordered writes" "impossible:fork-join-ordered" st (cross_pair st "g");
  Alcotest.(check bool) "g does not escape" false (Static.escaped st "g")

(* Once a dependency has been joined, every *later-declared* thread forks
   after its death — the accumulated-join rule of the sequential main. *)
let test_fork_join_accumulated () =
  let st =
    static_of ~file:"accum.rfl"
      {|
shared int g;
thread t1 { g = 1; }
thread t2 after t1 { skip; }
thread t3 { g = 2; }
|}
  in
  Alcotest.(check bool) "t1 dead before t3 forks" true (Static.is_ordered st "t1" "t3");
  vcheck "ordered via accumulated join" "impossible:fork-join-ordered" st
    (cross_pair st "g")

let test_unordered_still_parallel () =
  let st =
    static_of ~file:"diamond.rfl"
      {|
shared int g;
thread t1 { skip; }
thread t2 after t1 { g = 1; }
thread t3 after t1 { g = 2; }
|}
  in
  Alcotest.(check bool) "siblings unordered" true (Static.may_parallel st "t2" "t3");
  vcheck "diamond siblings race" "likely" st (cross_pair st "g");
  Alcotest.(check bool) "g escapes" true (Static.escaped st "g")

(* Branch join is intersection: a lock held in only one branch protects
   nothing downstream, and a bare write in the other branch is exposed. *)
let test_conditional_lock () =
  let st =
    static_of ~file:"cond.rfl"
      {|
shared int g;
shared bool b;
lock L;
thread t1 {
  if (b) { sync (L) { g = 1; } } else { g = 2; }
}
thread t2 { sync (L) { g = 3; } }
|}
  in
  let bare, locked =
    match
      List.partition
        (fun s ->
          match Static.facts_of st s with
          | Some f -> Static.SS.is_empty f.Static.sf_locks
          | None -> false)
        (List.filter
           (fun s ->
             match Static.facts_of st s with
             | Some f -> f.Static.sf_write
             | None -> false)
           (sites_of st "g"))
    with
    | [ bare ], locked :: _ -> (bare, locked)
    | _ -> Alcotest.fail "expected one bare and two locked writes"
  in
  let t2_site =
    List.find
      (fun s ->
        match Static.facts_of st s with
        | Some f -> Static.SS.mem "t2" f.Static.sf_threads
        | None -> false)
      (sites_of st "g")
  in
  vcheck "bare branch exposes the write" "likely" st (Site.Pair.make bare t2_site);
  vcheck "locked branch is protected" "impossible:common-lock:L" st
    (Site.Pair.make locked t2_site)

(* A statement after the branch join must hold only the intersection. *)
let test_branch_join_intersection () =
  let st =
    static_of ~file:"join.rfl"
      {|
shared int g;
shared bool b;
lock L;
thread t1 {
  lock(L);
  if (b) { unlock(L); } else { skip; }
  g = 1;
}
thread t2 { sync (L) { g = 2; } }
|}
  in
  vcheck "post-join lockset is the intersection" "likely" st (cross_pair st "g")

(* Loop fixpoint: a lock released inside the body is not must-held at the
   body's entry on later iterations. *)
let test_loop_fixpoint () =
  let st =
    static_of ~file:"loop.rfl"
      {|
shared int g;
lock L;
thread t1 {
  lock(L);
  for (let i = 0; i < 3; i = i + 1) { g = 1; unlock(L); lock(L); }
  unlock(L);
}
thread t2 { sync (L) { g = 2; } }
|}
  in
  (* the body re-acquires before looping, so L *is* must-held at g=1 *)
  vcheck "balanced body keeps the lock" "impossible:common-lock:L" st
    (cross_pair st "g");
  let st2 =
    static_of ~file:"loop2.rfl"
      {|
shared int g;
lock L;
thread t1 {
  lock(L);
  for (let i = 0; i < 3; i = i + 1) { g = 1; unlock(L); }
}
thread t2 { sync (L) { g = 2; } }
|}
  in
  (* unbalanced body: the fixpoint empties the entry set, g=1 unprotected *)
  vcheck "unbalanced body loses the lock" "likely" st2 (cross_pair st2 "g")

(* A call's release closure is subtracted: sync (L) { f(); g = 1; } where f
   might unlock L cannot claim L at the write. *)
let test_call_release_closure () =
  let st =
    static_of ~file:"call.rfl"
      {|
shared int g;
lock L;
def f() { unlock(L); lock(L); }
thread t1 { sync (L) { f(); g = 1; } }
thread t2 { sync (L) { g = 2; } }
|}
  in
  vcheck "callee may release the lock" "likely" st (cross_pair st "g")

(* Thread reach flows through the call graph: a helper's site belongs to
   every thread that can transitively reach it. *)
let test_call_graph_reach () =
  let st =
    static_of ~file:"reach.rfl"
      {|
shared int g;
def helper() { g = 1; }
def wrap() { helper(); }
thread t1 { wrap(); }
thread t2 { helper(); }
|}
  in
  match sites_of st "g" with
  | [ s ] -> (
      match Static.facts_of st s with
      | Some f ->
          Alcotest.(check bool) "t1 reaches via wrap" true
            (Static.SS.mem "t1" f.Static.sf_threads);
          Alcotest.(check bool) "t2 reaches directly" true
            (Static.SS.mem "t2" f.Static.sf_threads);
          vcheck "reflexive pair races" "likely" st (Site.Pair.make s s)
      | None -> Alcotest.fail "no facts for helper's write")
  | l -> Alcotest.failf "expected 1 site, got %d" (List.length l)

let test_unknown_cases () =
  let st = static_of ~file:"unk.rfl" {|
shared int g;
shared int h;
thread t1 { g = 1; h = 1; }
thread t2 { g = 2; }
|} in
  let foreign = Site.make ~file:"elsewhere" ~line:1 "mystery" in
  let g_site = List.hd (sites_of st "g") in
  vcheck "unseen site" "unknown:no-facts" st (Site.Pair.make foreign g_site);
  let h_site = List.hd (sites_of st "h") in
  vcheck "different locations" "unknown:different-locations" st
    (Site.Pair.make g_site h_site)

(* ------------------------------------------------------------------ *)
(* Model builder litmus: merge-by-site semantics                       *)

let msite line label = Site.make ~file:"model" ~line label

let test_model_merge_keeps_common_lock () =
  let open Static in
  let b = Model.create () in
  let s = msite 1 "x=" and s2 = msite 2 "x=" in
  Model.access b ~site:s ~var:"x" ~write:true ~thread:"t1" ~locks:[ "A"; "B" ];
  Model.access b ~site:s ~var:"x" ~write:true ~thread:"t2" ~locks:[ "B" ];
  Model.access b ~site:s2 ~var:"x" ~write:true ~thread:"t3" ~locks:[ "B" ];
  let st = Model.build b in
  (* occurrences merge: threads union, locks intersect *)
  vcheck "intersected lock survives" "impossible:common-lock:B" st
    (Site.Pair.make s s2);
  vcheck "reflexive pair still protected" "impossible:common-lock:B" st
    (Site.Pair.make s s)

let test_model_merge_drops_lost_lock () =
  let open Static in
  let b = Model.create () in
  let s = msite 3 "y=" in
  Model.access b ~site:s ~var:"y" ~write:true ~thread:"t1" ~locks:[ "A" ];
  Model.access b ~site:s ~var:"y" ~write:true ~thread:"t2" ~locks:[];
  let st = Model.build b in
  vcheck "one bare occurrence empties the lockset" "likely" st
    (Site.Pair.make s s)

let test_model_merge_write_or () =
  let open Static in
  let b = Model.create () in
  let s = msite 4 "z" and s2 = msite 5 "z" in
  Model.access b ~site:s ~var:"z" ~write:false ~thread:"t1" ~locks:[];
  Model.access b ~site:s ~var:"z" ~write:true ~thread:"t1" ~locks:[];
  Model.access b ~site:s2 ~var:"z" ~write:false ~thread:"t2" ~locks:[];
  let st = Model.build b in
  vcheck "merged occurrence counts as a write" "likely" st (Site.Pair.make s s2)

let test_model_order_transitive () =
  let open Static in
  let b = Model.create () in
  let s = msite 6 "w=" and s2 = msite 7 "w=" in
  Model.access b ~site:s ~var:"w" ~write:true ~thread:"a" ~locks:[];
  Model.access b ~site:s2 ~var:"w" ~write:true ~thread:"c" ~locks:[];
  Model.order b ~first:"a" ~then_:"b";
  Model.order b ~first:"b" ~then_:"c";
  let st = Model.build b in
  Alcotest.(check bool) "a < c transitively" true (Static.is_ordered st "a" "c");
  vcheck "ordered model threads" "impossible:fork-join-ordered" st
    (Site.Pair.make s s2)

(* ------------------------------------------------------------------ *)
(* 3. Golden classification counts                                     *)

(* (workload, universe, impossible, likely, unknown).  These are checked-in
   expectations: a change to the analysis or to a workload's hand model
   that shifts any verdict fails here and must update the table
   deliberately. *)
let workload_golden =
  [
    ("figure1", 9, 7, 2, 0);
    ("figure2[k=50]", 5, 4, 1, 0);
    ("cache4j", 36, 25, 11, 0);
    ("stress-threads", 4, 1, 3, 0);
    ("stress-locks", 10, 7, 3, 0);
    ("stress-hotloc", 136, 16, 120, 0);
    ("stress-sweep", 3, 2, 1, 0);
    ("stress-threads-small", 4, 1, 3, 0);
    ("stress-locks-small", 10, 7, 3, 0);
    ("stress-hotloc-small", 36, 8, 28, 0);
    ("stress-sweep-small", 3, 2, 1, 0);
  ]

let test_workload_goldens () =
  List.iter
    (fun (name, universe, imp, likely, unknown) ->
      match W.Registry.find name with
      | None -> Alcotest.failf "workload %s not registered" name
      | Some w -> (
          match w.W.Workload.static with
          | None -> Alcotest.failf "workload %s lost its static model" name
          | Some st ->
              let c = Static.universe_counts st in
              let u = Site.Pair.Set.cardinal (Static.universe st) in
              let fmt = Printf.sprintf "%s: %s" name in
              Alcotest.(check int) (fmt "universe") universe u;
              Alcotest.(check int) (fmt "impossible") imp c.Static.n_impossible;
              Alcotest.(check int) (fmt "likely") likely c.Static.n_likely;
              Alcotest.(check int) (fmt "unknown") unknown c.Static.n_unknown))
    workload_golden

(* Same drift guard for the AST path, on the shipped Figure 1 source. *)
let figure1_src =
  {|
shared int x;
shared int y;
shared int z;
lock L;

thread thread1 {
  x = 1;
  sync (L) { y = 1; }
  if (z == 1) {
    error "ERROR1";
  }
}

thread thread2 {
  z = 1;
  sync (L) {
    if (y == 1) {
      if (x != 1) {
        error "ERROR2";
      }
    }
  }
}
|}

let test_figure1_ast_golden () =
  let st = static_of ~file:"figure1.rfl" figure1_src in
  let c = Static.universe_counts st in
  let u = Site.Pair.Set.cardinal (Static.universe st) in
  Alcotest.(check int) "universe" 9 u;
  Alcotest.(check int) "impossible" 7 c.Static.n_impossible;
  Alcotest.(check int) "likely" 2 c.Static.n_likely;
  Alcotest.(check int) "unknown" 0 c.Static.n_unknown;
  (* the two survivors are the paper's candidates: the real race on z and
     the apparent (implicitly synchronized) race on x *)
  vcheck "z pair survives" "likely" st (cross_pair st "z");
  vcheck "x pair survives" "likely" st (cross_pair st "x");
  vcheck "y is lock-protected" "impossible:common-lock:L" st (cross_pair st "y")

(* ------------------------------------------------------------------ *)
(* 4. Campaign integration                                             *)

(* t1 -> t2 is fork/join ordered; t2 and t3 race on r.  A starved phase-1
   detector (detector_budget 8) evicts the fork edge and over-reports the
   ordered g pair, which the filter then removes — so filtering is
   exercised for real, not vacuously. *)
let chain_src =
  {|
shared int g;
shared int r;

thread t1 {
  g = 1;
}

thread t2 after t1 {
  g = 2;
  r = 1;
}

thread t3 {
  r = 2;
}
|}

let chain_prog = lazy (load ~file:"chain.rfl" chain_src)
let chain_static = lazy (Static.of_program (Lazy.force chain_prog))

let run_chain ?log ?resume ~static_filter () =
  Campaign.run ~domains:2 ~cutoff:false ~phase1_seeds:[ 0; 1; 2 ]
    ~seeds_per_pair:(List.init 6 Fun.id) ~max_steps ~detector_budget:8 ?log
    ?resume
    ~static:(Lazy.force chain_static)
    ~static_filter
    (main_of (Lazy.force chain_prog))

let test_campaign_filter_projection () =
  let st = Lazy.force chain_static in
  let unfiltered = run_chain ~static_filter:false () in
  let filtered = run_chain ~static_filter:true () in
  (* the starved detector flagged the ordered pair; the filter removed it *)
  (match filtered.Campaign.stats.Campaign.s_static with
  | None -> Alcotest.fail "no static summary"
  | Some s ->
      Alcotest.(check int) "universe" 6 s.Campaign.st_universe;
      Alcotest.(check int) "universe impossible" 5 s.Campaign.st_universe_impossible;
      Alcotest.(check int) "frontier" 2 s.Campaign.st_frontier;
      Alcotest.(check int) "likely" 1 s.Campaign.st_likely;
      Alcotest.(check int) "impossible" 1 s.Campaign.st_impossible;
      Alcotest.(check int) "filtered" 1 s.Campaign.st_filtered);
  (match unfiltered.Campaign.stats.Campaign.s_static with
  | None -> Alcotest.fail "no static summary (unfiltered)"
  | Some s -> Alcotest.(check int) "unfiltered skips nothing" 0 s.Campaign.st_filtered);
  Alcotest.(check int) "one pair recorded as filtered" 1
    (List.length filtered.Campaign.analysis.Fuzzer.a_filtered);
  (match filtered.Campaign.analysis.Fuzzer.a_filtered with
  | [ (_, Static.Impossible Static.Fork_join_ordered) ] -> ()
  | _ -> Alcotest.fail "expected one fork-join-ordered filtered pair");
  (* filtered run = unfiltered run projected onto surviving pairs *)
  let projected =
    Fuzzer.restrict_analysis
      ~keep:(fun p -> not (is_impossible st p))
      unfiltered.Campaign.analysis
  in
  Alcotest.(check string) "projection fingerprint"
    (Campaign.fingerprint projected)
    (Campaign.fingerprint filtered.Campaign.analysis);
  (* the soundness gate: confirmed verdicts are byte-identical *)
  Alcotest.(check string) "confirmed fingerprint"
    (Campaign.confirmed_fingerprint unfiltered.Campaign.analysis)
    (Campaign.confirmed_fingerprint filtered.Campaign.analysis);
  Alcotest.(check int) "the real race is still found" 1
    (Site.Pair.Set.cardinal filtered.Campaign.analysis.Fuzzer.real_pairs)

let test_campaign_filter_events () =
  let log = Event_log.memory () in
  let _ = run_chain ~log ~static_filter:true () in
  let evs = Event_log.events log in
  let filtered_evs =
    List.filter_map
      (function
        | Event_log.Pair_filtered { pair; reason } -> Some (pair, reason)
        | _ -> None)
      evs
  in
  (match filtered_evs with
  | [ (_, reason) ] ->
      Alcotest.(check string) "journaled reason" "impossible:fork-join-ordered"
        reason
  | l -> Alcotest.failf "expected 1 Pair_filtered event, got %d" (List.length l));
  match
    List.find_opt
      (function Event_log.Static_classified _ -> true | _ -> false)
      evs
  with
  | Some (Event_log.Static_classified c) ->
      Alcotest.(check int) "event universe" 6 c.universe;
      Alcotest.(check int) "event filtered" 1 c.filtered
  | _ -> Alcotest.fail "no Static_classified event"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_campaign_filter_resume () =
  let path = Filename.temp_file "static_filter" ".jsonl" in
  let log = Event_log.open_file path in
  let first = run_chain ~log ~static_filter:true () in
  Event_log.close log;
  (* full-journal resume: every trial replays, nothing re-executes *)
  let mem = Event_log.memory () in
  let resumed = run_chain ~log:mem ~resume:path ~static_filter:true () in
  Alcotest.(check string) "resumed fingerprint"
    (Campaign.fingerprint first.Campaign.analysis)
    (Campaign.fingerprint resumed.Campaign.analysis);
  Alcotest.(check bool) "trials actually replayed" true
    (resumed.Campaign.stats.Campaign.s_replayed > 0);
  (* the resumed run re-journals the same filtering decision *)
  let filtered_of evs =
    List.filter_map
      (function
        | Event_log.Pair_filtered { pair; reason } -> Some (pair, reason)
        | _ -> None)
      evs
  in
  let first_lines = read_lines path in
  Alcotest.(check bool) "journal mentions pair_filtered" true
    (List.exists
       (fun l ->
         let n = String.length l and sub = "pair_filtered" in
         let m = String.length sub in
         let rec go i = i + m <= n && (String.sub l i m = sub || go (i + 1)) in
         go 0)
       first_lines);
  Alcotest.(check int) "same filtering on resume" 1
    (List.length (filtered_of (Event_log.events mem)));
  (* killed-campaign shape: resume from a truncated journal prefix and
     still converge to the identical analysis *)
  let half = List.filteri (fun i _ -> 2 * i < List.length first_lines) first_lines in
  let part = Filename.temp_file "static_filter_part" ".jsonl" in
  let oc = open_out part in
  List.iter (fun l -> output_string oc (l ^ "\n")) half;
  close_out oc;
  let partial = run_chain ~resume:part ~static_filter:true () in
  Alcotest.(check string) "truncated-journal resume fingerprint"
    (Campaign.fingerprint first.Campaign.analysis)
    (Campaign.fingerprint partial.Campaign.analysis);
  Sys.remove path;
  Sys.remove part

let test_order_pairs_likely_first () =
  let st = Lazy.force chain_static in
  let pairs = Site.Pair.Set.elements (Static.universe st) in
  let ordered = Fuzzer.order_pairs ~static:st pairs in
  let ranks =
    List.map (fun p -> Fuzzer.verdict_rank (Static.classify st p)) ordered
  in
  Alcotest.(check (list int)) "ranks ascend" (List.sort compare ranks) ranks;
  let surviving, filtered = Fuzzer.partition_frontier ~static:st pairs in
  Alcotest.(check int) "survivors + filtered = universe" (List.length pairs)
    (List.length surviving + List.length filtered);
  List.iter
    (fun (p, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s filtered as Impossible" (Site.Pair.to_string p))
        true
        (match v with Static.Impossible _ -> true | _ -> false))
    filtered

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "static_filter"
    [
      ( "soundness",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_confirmed_never_impossible;
            prop_impossible_unfuzzable;
            prop_filtered_analyze_sound;
          ] );
      ( "litmus",
        [
          Alcotest.test_case "common lock" `Quick test_common_lock;
          Alcotest.test_case "lock aliasing" `Quick test_lock_alias;
          Alcotest.test_case "read/read" `Quick test_read_read;
          Alcotest.test_case "single thread" `Quick test_single_thread;
          Alcotest.test_case "fork/join chain" `Quick test_fork_join_chain;
          Alcotest.test_case "accumulated join" `Quick test_fork_join_accumulated;
          Alcotest.test_case "diamond siblings" `Quick test_unordered_still_parallel;
          Alcotest.test_case "conditional lock" `Quick test_conditional_lock;
          Alcotest.test_case "branch join" `Quick test_branch_join_intersection;
          Alcotest.test_case "loop fixpoint" `Quick test_loop_fixpoint;
          Alcotest.test_case "call release closure" `Quick test_call_release_closure;
          Alcotest.test_case "call graph reach" `Quick test_call_graph_reach;
          Alcotest.test_case "unknown cases" `Quick test_unknown_cases;
        ] );
      ( "model",
        [
          Alcotest.test_case "merge keeps common lock" `Quick
            test_model_merge_keeps_common_lock;
          Alcotest.test_case "merge drops lost lock" `Quick
            test_model_merge_drops_lost_lock;
          Alcotest.test_case "merge ors writes" `Quick test_model_merge_write_or;
          Alcotest.test_case "order is transitive" `Quick
            test_model_order_transitive;
        ] );
      ( "golden",
        [
          Alcotest.test_case "workload models" `Quick test_workload_goldens;
          Alcotest.test_case "figure1 AST analysis" `Quick test_figure1_ast_golden;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "filter = projection" `Quick
            test_campaign_filter_projection;
          Alcotest.test_case "filter events" `Quick test_campaign_filter_events;
          Alcotest.test_case "filter + resume" `Quick test_campaign_filter_resume;
          Alcotest.test_case "likely-first ordering" `Quick
            test_order_pairs_likely_first;
        ] );
    ]
