(* Tests for the event model and trace recording. *)

open Rf_util
open Rf_events

let s1 = Site.make ~file:"ev.rfl" ~line:1 "w"
let s2 = Site.make ~file:"ev.rfl" ~line:2 "r"

let mem ?(tid = 0) ?(site = s1) ?(loc = Loc.global "x") ?(access = Event.Write)
    ?(lockset = Lockset.empty) () =
  Event.Mem { tid; site; loc; access; lockset }

let test_lockset_basics () =
  let l = Lockset.of_list [ 1; 2; 3 ] in
  Alcotest.(check bool) "mem" true (Lockset.mem 2 l);
  Alcotest.(check int) "cardinal" 3 (Lockset.cardinal l);
  let m = Lockset.of_list [ 3; 4 ] in
  Alcotest.(check bool) "not disjoint" false (Lockset.disjoint l m);
  Alcotest.(check bool) "disjoint" true (Lockset.disjoint l (Lockset.of_list [ 9 ]));
  Alcotest.(check (list int)) "inter" [ 3 ] (Lockset.to_list (Lockset.inter l m));
  Alcotest.(check bool) "empty is empty" true (Lockset.is_empty Lockset.empty)

let test_event_equality () =
  Alcotest.(check bool) "mem self equal" true (Event.equal (mem ()) (mem ()));
  Alcotest.(check bool) "different access" false
    (Event.equal (mem ()) (mem ~access:Event.Read ()));
  Alcotest.(check bool) "different loc" false
    (Event.equal (mem ()) (mem ~loc:(Loc.global "y") ()));
  Alcotest.(check bool) "different kind" false
    (Event.equal (mem ()) (Event.Exit { tid = 0 }));
  Alcotest.(check bool) "snd equal" true
    (Event.equal
       (Event.Snd { tid = 1; msg = 7; reason = Event.Fork })
       (Event.Snd { tid = 1; msg = 7; reason = Event.Fork }));
  Alcotest.(check bool) "snd reason differs" false
    (Event.equal
       (Event.Snd { tid = 1; msg = 7; reason = Event.Fork })
       (Event.Snd { tid = 1; msg = 7; reason = Event.Join }))

let test_event_accessors () =
  Alcotest.(check int) "tid" 3 (Event.tid (mem ~tid:3 ()));
  Alcotest.(check bool) "site of mem" true (Event.site (mem ()) <> None);
  Alcotest.(check bool) "site of exit" true (Event.site (Event.Exit { tid = 0 }) = None);
  Alcotest.(check bool) "is_mem" true (Event.is_mem (mem ()));
  Alcotest.(check bool) "is_sync exit" true (Event.is_sync (Event.Exit { tid = 0 }))

let test_trace_grow_and_get () =
  let tr = Trace.create ~capacity:2 () in
  for i = 0 to 99 do
    Trace.add tr (Event.Exit { tid = i })
  done;
  Alcotest.(check int) "length" 100 (Trace.length tr);
  Alcotest.(check int) "get 57" 57 (Event.tid (Trace.get tr 57));
  Alcotest.check_raises "oob" (Invalid_argument "Trace.get: out of bounds") (fun () ->
      ignore (Trace.get tr 100))

let test_trace_equal_and_fingerprint () =
  let mk () =
    let tr = Trace.create () in
    Trace.add tr (mem ());
    Trace.add tr (Event.Acquire { tid = 0; lock = 1; site = s2 });
    Trace.add tr (Event.Exit { tid = 0 });
    tr
  in
  let a = mk () and b = mk () in
  Alcotest.(check bool) "equal traces" true (Trace.equal a b);
  Alcotest.(check int) "equal fingerprints" (Trace.fingerprint a) (Trace.fingerprint b);
  Trace.add b (Event.Exit { tid = 1 });
  Alcotest.(check bool) "not equal after add" false (Trace.equal a b)

let test_fingerprint_structural () =
  (* Single-field sensitivity: the streaming hash must separate traces that
     differ in any one event field, including fields the old
     string+Hashtbl.hash digest was prone to colliding on. *)
  let fp evs =
    let tr = Trace.create () in
    List.iter (Trace.add tr) evs;
    Trace.fingerprint tr
  in
  let base = [ mem (); Event.Acquire { tid = 0; lock = 1; site = s2 } ] in
  let variants =
    [
      [ mem ~access:Event.Read (); Event.Acquire { tid = 0; lock = 1; site = s2 } ];
      [ mem ~loc:(Loc.elem 0 1) (); Event.Acquire { tid = 0; lock = 1; site = s2 } ];
      [ mem ~loc:(Loc.elem 1 0) (); Event.Acquire { tid = 0; lock = 1; site = s2 } ];
      [ mem ~lockset:(Lockset.of_list [ 2 ]) ();
        Event.Acquire { tid = 0; lock = 1; site = s2 } ];
      [ mem ~tid:1 (); Event.Acquire { tid = 0; lock = 1; site = s2 } ];
      [ mem (); Event.Acquire { tid = 0; lock = 2; site = s2 } ];
      [ mem (); Event.Release { tid = 0; lock = 1; site = s2 } ];
      [ Event.Acquire { tid = 0; lock = 1; site = s2 }; mem () ] (* order *);
    ]
  in
  let fps = List.map fp (base :: variants) in
  List.iter
    (fun f -> Alcotest.(check bool) "non-negative" true (f >= 0))
    fps;
  Alcotest.(check int) "all variants distinct" (List.length fps)
    (List.length (List.sort_uniq compare fps));
  (* Pinned value: the digest is part of the golden-file contract (CI
     compares recomputed fingerprints against checked-in ones), so an
     accidental change to the hash must fail loudly here first. *)
  Alcotest.(check int) "pinned digest" 2392111145469299187 (fp base)

let test_trace_sentinel_invisible () =
  (* [Trace.create] pads the backing array with an [Exit { tid = -1 }]
     sentinel; growth in [add] seeds the bigger array with the incoming
     event.  Neither filler is a recorded event, so no consumer may ever
     observe one on a partially filled trace — every accessor must be
     bounded by [length], not capacity. *)
  let sentinel = Event.Exit { tid = -1 } in
  let check_clean label tr =
    Trace.iter
      (fun ev ->
        if Event.equal ev sentinel then
          Alcotest.failf "%s: iter leaked the sentinel" label)
      tr;
    Alcotest.(check bool)
      (label ^ ": to_list has no sentinel")
      false
      (List.exists (Event.equal sentinel) (Trace.to_list tr));
    let visited = Trace.fold (fun n _ -> n + 1) 0 tr in
    Alcotest.(check int) (label ^ ": fold is length-bounded") (Trace.length tr)
      visited
  in
  (* fresh trace with excess capacity: all slots are sentinels, none visible *)
  let tr = Trace.create ~capacity:64 () in
  check_clean "empty" tr;
  Alcotest.(check int) "empty sync count" 0 (Trace.count_sync tr);
  Trace.add tr (mem ());
  Trace.add tr (mem ~access:Event.Read ());
  check_clean "partial" tr;
  (* capacity (hence sentinel population) must not affect the digest *)
  let small = Trace.create ~capacity:1 () in
  Trace.add small (mem ());
  Trace.add small (mem ~access:Event.Read ());
  Alcotest.(check int) "fingerprint is capacity-independent"
    (Trace.fingerprint small) (Trace.fingerprint tr);
  Alcotest.(check bool) "equal across capacities" true (Trace.equal small tr);
  (* a *recorded* Exit{tid=-1} is data, not padding: it must survive *)
  let tr' = Trace.create ~capacity:8 () in
  Trace.add tr' sentinel;
  Alcotest.(check int) "recorded sentinel-shaped event kept" 1
    (Trace.length tr');
  Alcotest.(check bool) "and visible" true
    (List.exists (Event.equal sentinel) (Trace.to_list tr'))

let test_trace_counts () =
  let tr = Trace.create () in
  Trace.add tr (mem ());
  Trace.add tr (mem ~access:Event.Read ());
  Trace.add tr (Event.Exit { tid = 0 });
  Alcotest.(check int) "mem count" 2 (Trace.count_mem tr);
  Alcotest.(check int) "sync count" 1 (Trace.count_sync tr)

let test_trace_fold_iter () =
  let tr = Trace.create () in
  for i = 1 to 10 do
    Trace.add tr (Event.Exit { tid = i })
  done;
  let sum = Trace.fold (fun acc ev -> acc + Event.tid ev) 0 tr in
  Alcotest.(check int) "fold sums tids" 55 sum;
  let n = ref 0 in
  Trace.iter (fun _ -> incr n) tr;
  Alcotest.(check int) "iter visits all" 10 !n;
  Alcotest.(check int) "to_list length" 10 (List.length (Trace.to_list tr))

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let sample_trace () =
  let tr = Trace.create () in
  Trace.add tr (Event.Start { tid = 0; name = "main thread" });
  Trace.add tr
    (mem ~site:(Site.make ~file:"a file.rfl" ~line:3 ~col:9 "x = y:z%w") ());
  Trace.add tr (mem ~loc:(Loc.field 4 "next ptr") ~access:Event.Read ~lockset:(Lockset.of_list [ 1; 5 ]) ());
  Trace.add tr (mem ~loc:(Loc.elem 2 7) ());
  Trace.add tr (Event.Acquire { tid = 1; lock = 5; site = s2 });
  Trace.add tr (Event.Snd { tid = 1; msg = 3; reason = Event.Notify });
  Trace.add tr (Event.Rcv { tid = 2; msg = 3; reason = Event.Notify });
  Trace.add tr (Event.Release { tid = 1; lock = 5; site = s2 });
  Trace.add tr (Event.Exit { tid = 0 });
  tr

let test_serial_roundtrip () =
  let tr = sample_trace () in
  let tr' = Serial.trace_of_string (Serial.trace_to_string tr) in
  Alcotest.(check bool) "roundtrip equal" true (Trace.equal tr tr')

let test_serial_file_roundtrip () =
  let tr = sample_trace () in
  let path = Filename.temp_file "rf_trace" ".txt" in
  Serial.save_trace path tr;
  let tr' = Serial.load_trace path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Trace.equal tr tr')

let test_serial_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try
       ignore (Serial.trace_of_string "not a trace\n");
       false
     with Serial.Parse_error (1, _) -> true);
  Alcotest.(check bool) "bad event" true
    (try
       ignore (Serial.trace_of_string "rf-trace v1\nBOGUS 1 2 3\n");
       false
     with Serial.Parse_error (2, _) -> true)

let test_serial_escaping () =
  let nasty = "a b:c,d%e\nf" in
  let site = Site.make ~file:nasty ~line:1 ~col:1 nasty in
  let ev = Event.Mem { tid = 0; site; loc = Loc.global nasty; access = Event.Write; lockset = Lockset.empty } in
  let ev' = Serial.event_of_string ~line:1 (Serial.event_to_string ev) in
  Alcotest.(check bool) "nasty strings survive" true (Event.equal ev ev')

let gen_event =
  QCheck.Gen.(
    let site = map (fun n -> Site.make ~file:"g.rfl" ~line:(n mod 40) "st") small_nat in
    let loc =
      oneof
        [
          map (fun n -> Loc.global (Printf.sprintf "g%d" (n mod 5))) small_nat;
          map (fun n -> Loc.field (n mod 6) "f") small_nat;
          map2 (fun a i -> Loc.elem (a mod 4) (i mod 8)) small_nat small_nat;
        ]
    in
    oneof
      [
        (let* tid = small_nat and* st = site and* l = loc and* w = bool in
         let* locks = small_list (map (fun n -> n mod 9) small_nat) in
         return
           (Event.Mem
              {
                tid;
                site = st;
                loc = l;
                access = (if w then Event.Write else Event.Read);
                lockset = Lockset.of_list locks;
              }));
        (let* tid = small_nat and* lock = small_nat and* st = site in
         return (Event.Acquire { tid; lock; site = st }));
        (let* tid = small_nat and* lock = small_nat and* st = site in
         return (Event.Release { tid; lock; site = st }));
        (let* tid = small_nat and* msg = small_nat in
         return (Event.Snd { tid; msg; reason = Event.Fork }));
        (let* tid = small_nat and* msg = small_nat in
         return (Event.Rcv { tid; msg; reason = Event.Join }));
        map (fun tid -> Event.Start { tid; name = "t" }) small_nat;
        map (fun tid -> Event.Exit { tid }) small_nat;
      ])

let prop_serial_roundtrip_random =
  QCheck.Test.make ~name:"random traces roundtrip" ~count:150
    (QCheck.make QCheck.Gen.(small_list gen_event))
    (fun evs ->
      let tr = Trace.create () in
      List.iter (Trace.add tr) evs;
      Trace.equal tr (Serial.trace_of_string (Serial.trace_to_string tr)))

(* ------------------------------------------------------------------ *)
(* Serial error paths: every malformed input must raise [Parse_error]
   with the right line number, never a stray [Failure]/[Invalid_argument]
   from the parsing internals. *)

let check_parse_error name ~line input =
  Alcotest.(check bool) name true
    (try
       ignore (Serial.trace_of_string input);
       false
     with
    | Serial.Parse_error (l, _) -> l = line
    | _ -> false)

let with_header lines = String.concat "\n" ("rf-trace v1" :: lines) ^ "\n"

let test_serial_malformed_events () =
  check_parse_error "empty input" ~line:1 "";
  check_parse_error "wrong header version" ~line:1 "rf-trace v2\n";
  check_parse_error "non-integer tid" ~line:2 (with_header [ "EXIT banana" ]);
  check_parse_error "bad access letter" ~line:2
    (with_header [ "MEM 0 X G:x ev.rfl:1:0:w -" ]);
  check_parse_error "bad sync reason" ~line:2 (with_header [ "SND 0 1 telepathy" ]);
  check_parse_error "bad loc tag" ~line:2
    (with_header [ "MEM 0 W Q:x ev.rfl:1:0:w -" ]);
  check_parse_error "bad field loc offset" ~line:2
    (with_header [ "MEM 0 W F:no:f ev.rfl:1:0:w -" ]);
  check_parse_error "bad elem loc index" ~line:2
    (with_header [ "MEM 0 W E:1:no ev.rfl:1:0:w -" ]);
  check_parse_error "bad site arity" ~line:2
    (with_header [ "MEM 0 W G:x ev.rfl:1:w -" ]);
  check_parse_error "bad site coordinates" ~line:2
    (with_header [ "MEM 0 W G:x ev.rfl:one:0:w -" ]);
  check_parse_error "bad lockset element" ~line:2
    (with_header [ "MEM 0 W G:x ev.rfl:1:0:w 1,zap" ]);
  check_parse_error "wrong event arity" ~line:2 (with_header [ "ACQ 0 5" ]);
  check_parse_error "unknown event kind" ~line:2 (with_header [ "HCF 0" ]);
  (* blank lines are skipped, so the error lands on the real line number *)
  check_parse_error "error after blank line" ~line:4
    (with_header [ "EXIT 0"; ""; "EXIT nope" ])

let test_serial_truncated_escapes () =
  (* '%' at end of field, '%' with one hex char, and an undefined escape *)
  check_parse_error "escape at end of field" ~line:2
    (with_header [ "START 0 abc%" ]);
  check_parse_error "escape one char short" ~line:2
    (with_header [ "START 0 ab%2" ]);
  check_parse_error "undefined escape code" ~line:2
    (with_header [ "START 0 a%q1b" ])

let test_serial_reinterning () =
  (* Serialized sites re-intern to the same physical site when the
     producing program is unchanged... *)
  let tr = Trace.create () in
  Trace.add tr (mem ~site:s1 ());
  let tr' = Serial.trace_of_string (Serial.trace_to_string tr) in
  (match Trace.to_list tr' with
  | [ Event.Mem { site; _ } ] ->
      Alcotest.(check int) "same site id after reload" (Site.id s1) (Site.id site)
  | _ -> Alcotest.fail "expected one MEM event");
  (* ...but a statement that moved (same label, new line) is a different
     site: re-interning is keyed on the full position, so stale traces
     cannot silently alias against a changed program. *)
  let replace ~sub ~by s =
    let n = String.length sub and buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i < String.length s do
      if !i + n <= String.length s && String.sub s !i n = sub then begin
        Buffer.add_string buf by;
        i := !i + n
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let moved =
    replace ~sub:"ev.rfl:1:" ~by:"ev.rfl:99:" (Serial.trace_to_string tr)
  in
  let tr_moved = Serial.trace_of_string moved in
  match Trace.to_list tr_moved with
  | [ Event.Mem { site; _ } ] ->
      Alcotest.(check bool) "moved statement is a new site" false
        (Site.id site = Site.id s1);
      Alcotest.(check int) "label survives the move" 0
        (compare (Site.label site) (Site.label s1))
  | _ -> Alcotest.fail "expected one MEM event"

let prop_lockset_disjoint_iff_empty_inter =
  QCheck.Test.make ~name:"disjoint iff empty intersection" ~count:300
    QCheck.(pair (small_list small_nat) (small_list small_nat))
    (fun (a, b) ->
      let la = Lockset.of_list a and lb = Lockset.of_list b in
      Lockset.disjoint la lb = Lockset.is_empty (Lockset.inter la lb))

let () =
  Alcotest.run "rf_events"
    [
      ( "lockset",
        [
          Alcotest.test_case "basics" `Quick test_lockset_basics;
          QCheck_alcotest.to_alcotest prop_lockset_disjoint_iff_empty_inter;
        ] );
      ( "event",
        [
          Alcotest.test_case "equality" `Quick test_event_equality;
          Alcotest.test_case "accessors" `Quick test_event_accessors;
        ] );
      ( "trace",
        [
          Alcotest.test_case "grow and get" `Quick test_trace_grow_and_get;
          Alcotest.test_case "equal/fingerprint" `Quick test_trace_equal_and_fingerprint;
          Alcotest.test_case "fingerprint structural" `Quick
            test_fingerprint_structural;
          Alcotest.test_case "sentinel invisible" `Quick
            test_trace_sentinel_invisible;
          Alcotest.test_case "counts" `Quick test_trace_counts;
          Alcotest.test_case "fold/iter" `Quick test_trace_fold_iter;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_serial_file_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_serial_rejects_garbage;
          Alcotest.test_case "escaping" `Quick test_serial_escaping;
          Alcotest.test_case "malformed events" `Quick test_serial_malformed_events;
          Alcotest.test_case "truncated escapes" `Quick test_serial_truncated_escapes;
          Alcotest.test_case "re-interning" `Quick test_serial_reinterning;
          QCheck_alcotest.to_alcotest prop_serial_roundtrip_random;
        ] );
    ]
