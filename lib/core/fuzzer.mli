(** The two-phase RaceFuzzer driver.

    Phase 1 ({!phase1}) observes random executions with the hybrid
    detector attached and collects potential racing statement pairs.
    Phase 2 ({!fuzz_pair}) re-executes once per (pair, seed) under the
    {!Algo} strategy, classifying a pair as {e real} when a race is
    actually created and {e harmful} when a trial with a created race ends
    in an uncaught exception.  {!analyze} chains both phases.

    Invocations are independent, so {!fuzz_pair_parallel} distributes
    trials over OCaml domains — the paper's "embarrassingly parallel"
    observation — with results identical to the sequential run. *)

open Rf_util
open Rf_runtime

type program = unit -> unit

(** {1 Phase 1} *)

(** How phase 1 attaches its detector.  [Inline] has the hybrid detector
    listen to every engine event as it happens — the classic, per-step
    taxed configuration.  [Recorded] is the record-then-detect pipeline:
    the engine runs detector-free while appending a compact binary
    recording ({!Rf_events.Btrace}) at small constant cost per step, and
    the detector replays the recording offline, sharded by memory
    location over [shards] passes ({!Rf_detect.Offline}).  The candidate
    pair set is identical in both modes; with [shards = 1] the race list
    is byte-identical, report order included. *)
type detect_mode = Inline | Recorded of { shards : int }

(** Which detector phase 1 attaches.  [Hybrid] (the default) is the
    paper's full-tracking hybrid detection; [Sampling] keeps [sample_k]
    reservoir samples per dynamic location ({!Rf_detect.Sampling}) — the
    reported pairs are a subset of [Hybrid]'s and the probability of any
    particular miss is bounded by the run's reported miss bound.
    Orthogonal to {!detect_mode}: either detector runs inline or over
    recordings, with identical results (sampling decisions are keyed on
    the location and per-location access index, never on a shared
    stream). *)
type p1_detector =
  | Hybrid
  | Sampling of { sample_k : int; sample_seed : int }

val p1_detector_name : p1_detector -> string
(** ["hybrid"] / ["sampling"] — the journal/report identity. *)

(** Cost accounting of a [Recorded] phase 1. *)
type recording_stats = {
  rec_events : int;  (** events recorded across all seeds *)
  rec_bytes : int;  (** total sealed recording size *)
  rec_wall : float;  (** wall spent executing + recording *)
  detect_wall : float;  (** wall spent in offline detection *)
  rec_shards : int;
}

type phase1_result = {
  potential : Rf_detect.Race.t list;  (** deduplicated by statement pair *)
  p1_outcomes : Outcome.t list;
  p1_wall : float;
  p1_degraded : Rf_resource.Governor.snapshot option;
      (** governor state when detection ran degraded; [None] otherwise *)
  p1_recording : recording_stats option;
      (** filled iff phase 1 ran in [Recorded] mode *)
  p1_name : string;  (** which detector ran ("hybrid", "sampling", ...) *)
  p1_stats : Rf_detect.Detector.stats;
      (** end-of-run accounting: live state entries, memory events, and
          (sampling only) the miss-probability bound *)
}

val phase1 :
  ?seeds:int list ->
  ?max_steps:int ->
  ?deadline:Engine.deadline ->
  ?governor:Rf_resource.Governor.t ->
  ?detect:detect_mode ->
  ?detector:p1_detector ->
  ?trace_sink:(seed:int -> Rf_events.Btrace.t -> unit) ->
  program ->
  phase1_result
(** Default: one execution (seed 0), like the paper; more seeds widen the
    candidate set.  [governor] meters the hybrid detector's state budget
    (degradation ladder; see {!Rf_resource.Governor}); [deadline] attaches
    the engine watchdog, including its heap watermark.  With a no-degrade
    governor, {!Rf_resource.Governor.Budget_stop} escapes: phase 1 has no
    sandbox, so an unshed budget overrun is the caller's failure.

    [detect] (default [Inline]) selects the detection pipeline.  In
    [Recorded] mode the governor budget applies to the offline pass —
    that is where detector state lives — and a governed pass runs its
    shards sequentially so the shared budget stays deterministic;
    ungoverned multi-shard passes run one domain per shard.

    [detector] (default [Hybrid]) selects which phase-1 analysis runs;
    [p1_name] and [p1_stats] record its identity and end-of-run
    accounting (for sampling, including the miss bound).

    [trace_sink] receives each seed's sealed binary recording before the
    offline pass replays it (persistence hook for [--save-traces]); it
    requires [Recorded] detection — with [Inline] there is no recording
    to hand out, so the combination is an [Invalid_argument]. *)

val phase1_of_recordings :
  ?shards:int ->
  ?governor:Rf_resource.Governor.t ->
  ?detector:p1_detector ->
  Rf_events.Btrace.t list ->
  phase1_result
(** Offline-only phase 1 over previously saved recordings: the detectors
    replay the [Btrace.t]s without executing anything, producing the same
    candidate set as a live [Recorded] pass over those executions.  This
    is how long-lived serve mode amortises phase 1 across campaign waves.
    [p1_outcomes] is empty (no program ran); [rec_events]/[rec_wall] are
    zero since recording happened in some earlier run. *)

val potential_pairs : phase1_result -> Site.Pair.Set.t

(** {1 Phase 2} *)

type trial = {
  t_seed : int;
  t_outcome : Outcome.t;
  t_report : Algo.report;
  t_degraded : Rf_resource.Governor.snapshot option;
      (** governor state when the trial ran degraded; [None] otherwise *)
}

type pair_result = {
  pr_pair : Site.Pair.t;
  trials : trial list;
  race_trials : int;  (** trials that created a real race *)
  error_trials : int;  (** racing trials with an uncaught exception *)
  deadlock_trials : int;
  probability : float;  (** race_trials / trials — Table 1's last column *)
  race_seed : int option;  (** a seed reproducing the race, for replay *)
  error_seed : int option;
  pr_wall : float;
}

val is_real : pair_result -> bool
val is_harmful : pair_result -> bool

(** {2 The shared trial interface}

    [run_trial] and [aggregate_trials] are the two primitives every phase-2
    driver is built from: {!fuzz_pair}, {!fuzz_pair_parallel} and the
    campaign orchestrator ([Rf_campaign.Campaign]) all execute the same
    single-trial function and fold trial lists with the same aggregation,
    which is what makes their results comparable bit-for-bit. *)

(** Sandboxed result of one phase-2 execution.  Program misbehaviour
    (exceptions, deadlocks, timeouts) is data inside a [Completed] trial's
    {!Rf_runtime.Outcome.t}; [Harness_crash] is an exception escaping the
    {e engine} (strategy or listener bug, injected chaos) with its raw
    backtrace; [Budget_exhausted] is a watchdog cancellation
    ({!Rf_runtime.Engine.deadline}). *)
type trial_result =
  | Completed of trial
  | Harness_crash of exn * string
  | Budget_exhausted of {
      bx_seed : int;
      bx_reason : Outcome.cancel_reason;
      bx_steps : int;
      bx_wall : float;
    }

val run_trial :
  ?postpone_timeout:int option ->
  ?deadline:Engine.deadline ->
  ?governor:Rf_resource.Governor.t ->
  ?listeners:(Rf_events.Event.t -> unit) list ->
  ?inject:(unit -> unit) ->
  max_steps:int ->
  program:program ->
  Site.Pair.t ->
  int ->
  trial_result
(** One phase-2 execution of [program] against the candidate pair from the
    given seed, run inside the trial sandbox: no exception escapes.
    Deterministic: the same (pair, seed, max_steps) yields the same trial
    on any domain, because the engine resets its domain-local counters per
    run.  [inject] runs inside the sandbox just before the engine starts
    (the chaos-injection hook); [deadline] attaches a watchdog.

    [governor] is the trial's resource governor: if it degraded by the
    time the engine returns, the snapshot lands in [t_degraded]; if it
    raises {!Rf_resource.Governor.Budget_stop} (no-degrade mode), the
    sandbox converts it to [Budget_exhausted] with reason
    [Detector_budget] or [Heap_watermark].  [listeners] attach extra
    event observers (e.g. a governed detector) to the trial's engine
    run — phase 2 normally runs detector-free. *)

val run_trial_exn :
  ?postpone_timeout:int option ->
  max_steps:int ->
  program:program ->
  Site.Pair.t ->
  int ->
  trial
(** Unsandboxed [run_trial]: re-raises a harness crash.  The historical
    contract of the sequential drivers ({!fuzz_pair} et al.). *)

exception Journal_replayed
(** Placeholder exception inside trials rebuilt by {!trial_of_record}. *)

val trial_of_record :
  degraded:Rf_resource.Governor.snapshot option ->
  pair:Site.Pair.t ->
  seed:int ->
  race:bool ->
  exns:int ->
  deadlock:bool ->
  steps:int ->
  switches:int ->
  wall:float ->
  trial
(** Rebuild a trial from its journal record without re-executing — the
    checkpoint/resume path.  The synthetic trial carries exactly the
    fields {!aggregate_trials} and the campaign fingerprint read, so a
    resumed campaign aggregates bit-identically to the run that wrote the
    journal. *)

val aggregate_trials : pair:Site.Pair.t -> wall:float -> trial list -> pair_result
(** Fold trials (in seed order) into a {!pair_result}.  Pure: the result
    depends only on the trial list, never on who ran the trials or when. *)

val fuzz_pair :
  ?seeds:int list ->
  ?postpone_timeout:int option ->
  ?max_steps:int ->
  program:program ->
  Site.Pair.t ->
  pair_result
(** Default 100 seeds, like the paper's probability estimates.  Engine
    switch points are restricted to sync operations plus the pair (§4). *)

val fuzz_pair_parallel :
  ?domains:int ->
  ?seeds:int list ->
  ?postpone_timeout:int option ->
  ?max_steps:int ->
  program:program ->
  Site.Pair.t ->
  pair_result
(** Same result as {!fuzz_pair} on the same seed list, computed on
    [domains] cores. *)

val replay :
  ?postpone_timeout:int option ->
  ?record_trace:bool ->
  ?max_steps:int ->
  seed:int ->
  program:program ->
  Site.Pair.t ->
  Outcome.t * Algo.report
(** One phase-2 execution from its seed: the paper's record-free replay. *)

(** {1 Schedule record / replay / shrink}

    Integration of the {!Rf_replay} combinators with the phase-2
    building blocks.  A schedule file is self-contained: replay
    rebuilds the engine configuration (seed, [Sync_and] switch policy,
    step budget) from its metadata. *)

val record_trial :
  ?target:string ->
  ?postpone_timeout:int option ->
  ?max_steps:int ->
  program:program ->
  Site.Pair.t ->
  int ->
  trial * Rf_replay.Schedule.t
(** One phase-2 execution with the {!Algo} strategy wrapped in a
    {!Rf_replay.Recorder}: the trial plus its recorded schedule.
    Deterministic, and outcome-identical to {!run_trial_exn} on the
    same (pair, seed, max_steps). *)

val replay_schedule :
  ?mode:Rf_replay.Replayer.mode ->
  program:program ->
  Rf_replay.Schedule.t ->
  Outcome.t * Rf_replay.Replayer.status
(** Re-execute a recorded schedule.  After the schedule is exhausted
    (or after a divergence in [Exact] mode, the default) a {e neutral}
    deterministic scheduler — non-preemptive run-until-block, never the
    steering {!Algo} strategy — finishes the run; that is what makes a
    minimized prefix meaningful rather than "the seed reproduces
    anyway".  The replay
    {e reproduces} when the outcome's
    {!Rf_replay.Schedule.error_fingerprint} equals the schedule's and
    the status reports no divergence. *)

val schedule_oracle :
  program:program -> unit -> Rf_replay.Schedule.t -> Rf_replay.Schedule.t option
(** The shrinking oracle over [program]: leniently replay a candidate
    (neutral fallback, as in {!replay_schedule}), re-record, and return
    the exact re-recording iff the run reproduces the candidate's error
    fingerprint. *)

val minimize_schedule :
  ?fuel:int ->
  program:program ->
  Rf_replay.Schedule.t ->
  (Rf_replay.Schedule.t * Rf_replay.Shrinker.stats) option
(** {!Rf_replay.Shrinker.minimize} against {!schedule_oracle}. *)

(** {1 Static pre-filtering}

    Hooks for the {!Rf_static.Static} pre-filter: candidate pairs the
    analysis proves [Impossible] are skipped before any phase-2 trial, and
    surviving pairs are fuzzed [Likely]-first.  Soundness (an [Impossible]
    verdict never hides a phase-2-confirmable race) is established by the
    differential QCheck harness in [test/test_static.ml]. *)

val verdict_rank : Rf_static.Static.verdict -> int
(** [Likely] = 0, [Unknown] = 1, [Impossible] = 2. *)

val order_pairs :
  static:Rf_static.Static.t -> Site.Pair.t list -> Site.Pair.t list
(** Stable sort by {!verdict_rank}: Likely-first wave scheduling. *)

val partition_frontier :
  static:Rf_static.Static.t ->
  Site.Pair.t list ->
  Site.Pair.t list * (Site.Pair.t * Rf_static.Static.verdict) list
(** [(surviving, filtered)]: only [Impossible] pairs are filtered. *)

(** {1 Whole-program analysis} *)

type analysis = {
  a_phase1 : phase1_result;
  results : pair_result list;
  real_pairs : Site.Pair.Set.t;
  error_pairs : Site.Pair.Set.t;
  deadlock_pairs : Site.Pair.Set.t;
  a_filtered : (Site.Pair.t * Rf_static.Static.verdict) list;
      (** phase-1 candidates refuted statically and never fuzzed *)
}

val restrict_analysis : keep:(Site.Pair.t -> bool) -> analysis -> analysis
(** Drop per-pair results (and their membership in the verdict sets) for
    pairs [keep] rejects, leaving phase 1 untouched: the unfiltered run
    projected onto a surviving-pair set. *)

val analyze :
  ?phase1_seeds:int list ->
  ?seeds_per_pair:int list ->
  ?postpone_timeout:int option ->
  ?max_steps:int ->
  ?detector_budget:int ->
  ?mem_budget:float ->
  ?no_degrade:bool ->
  ?static:Rf_static.Static.t ->
  ?static_filter:bool ->
  ?detect:detect_mode ->
  ?detector:p1_detector ->
  program ->
  analysis
(** [detector_budget] caps phase-1 detector-state entries; [mem_budget]
    (MB) arms the heap-watermark backstop.  Either makes phase 1 run
    under a {!Rf_resource.Governor.t} — over budget, it degrades down
    the ladder and completes with [p1_degraded] set.  With
    [~no_degrade:true] the first trip raises
    {!Rf_resource.Governor.Budget_stop} instead.  Phase-2 trials carry
    no detector and run ungoverned here. *)

(** {1 Baselines} *)

type baseline_result = {
  b_trials : int;
  b_error_trials : int;
  b_exception_sites : Site.Set.t;
  b_deadlock_trials : int;
}

val baseline :
  ?seeds:int list ->
  ?policy:Engine.switch_policy ->
  ?max_steps:int ->
  make_strategy:(unit -> Strategy.t) ->
  program ->
  baseline_result
(** Exception behaviour under an undirected scheduler (simple random,
    default, RAPOS): Table 1's comparison column. *)
