lib/lang/interp.ml: Api Ast Fmt Hashtbl List Lock Op Option Rf_runtime Rf_util Site Token
