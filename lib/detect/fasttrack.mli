(** Epoch-optimized precise happens-before race detection, after FastTrack
    (Flanagan & Freund, PLDI 2009): last-write epochs with on-demand
    inflation of read vector clocks.  Reports a subset of
    {!Hb_precise}'s statement pairs but flags exactly the same racy
    locations (property-tested), with O(1) fast-path checks. *)

open Rf_util
open Rf_events

type t

val create : ?governor:Rf_resource.Governor.t -> unit -> t
(** [governor] meters location cells and inflated read-vector slots.
    At [Sampled] and below, read vectors deflate to single epochs
    (newest read wins); at [Lockset_only] the cell table freezes and
    accesses to unseen locations are ignored. *)

val feed : t -> Event.t -> unit
val races : t -> Race.t list
val pairs : t -> Site.Pair.Set.t
val race_count : t -> int

val epoch_hits : t -> int
(** Accesses settled by the O(1) epoch comparison. *)

val vc_ops : t -> int
(** Accesses that needed full read-vector work. *)
