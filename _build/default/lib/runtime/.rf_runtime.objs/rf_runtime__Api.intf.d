lib/runtime/api.mli: Handle Loc Lock Rf_util Site
