(** Small numeric helpers for experiment reporting. *)

val mean : float list -> float
val minimum : float list -> float
val maximum : float list -> float
val stddev : float list -> float
val mean_int : int list -> float

val pp_prob : Format.formatter -> float -> unit
(** Renders NaN (no real race) as ['-'], like the paper's table. *)

val pp_time_ms : Format.formatter -> float -> unit
(** Seconds rendered as milliseconds; negative means "not measured"
    (rendered ['-'], like the paper's jigsaw row). *)
