(** A domain-safe work queue with a fixed, deterministic base order.

    The queue is filled once at creation and drained concurrently by worker
    domains.  Base items come out in exactly the order they were put in —
    the only scheduling freedom is {e which worker} takes each item, never
    the item sequence itself, which is what keeps campaign task dispatch
    reproducible enough to reason about.

    Fault tolerance adds two controlled exceptions to "filled once":
    {!requeue} returns a task recovered from a crashed worker (it is
    re-issued before the remaining base items), and {!close}/{!drain} let a
    supervisor cancel cleanly — workers see [None] and exit, and the
    unconsumed tasks are accounted for rather than lost. *)

type 'a t

val create : 'a list -> 'a t

val pop : 'a t -> 'a option
(** Take the next item, or [None] when the queue is exhausted or closed.
    Safe to call from any domain. *)

val requeue : 'a t -> 'a -> unit
(** Return a task taken by a worker that died before completing it.  The
    task is re-issued ahead of the remaining base items.  Requeueing after
    {!close} is safe: the task is retained and comes back out of
    {!drain}, so nothing is lost. *)

val close : 'a t -> unit
(** Stop issuing tasks: every subsequent {!pop} returns [None].  Tasks not
    yet consumed stay in the queue for {!drain} to collect. *)

val is_closed : 'a t -> bool

val drain : 'a t -> 'a list
(** Close the queue and remove all unconsumed tasks, returning them in the
    order {!pop} would have issued them. *)

val total : 'a t -> int
(** Number of base items (excludes requeues). *)

val remaining : 'a t -> int
(** Unconsumed tasks, including requeued ones. *)
