lib/runtime/outcome.ml: Fmt List Printexc Rf_events Rf_util Site Trace
