(** Locksets: the set of lock ids a thread holds at an event.

    The hybrid race condition (paper §2.2, phase 1) requires
    [Li ∩ Lj = ∅] for two accesses to race; Eraser-style detection
    intersects candidate locksets per location. *)

module Iset = Set.Make (Int)

type t = Iset.t

let empty : t = Iset.empty
let add = Iset.add
let remove = Iset.remove
let mem = Iset.mem
let is_empty = Iset.is_empty
let inter = Iset.inter
let union = Iset.union
let disjoint = Iset.disjoint
let of_list = Iset.of_list
let to_list = Iset.elements
let cardinal = Iset.cardinal
let equal = Iset.equal
let compare = Iset.compare
let subset = Iset.subset

let pp ppf t =
  Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ",") (fun ppf l -> Fmt.pf ppf "L%d" l))
    (Iset.elements t)

let to_string t = Fmt.str "%a" pp t
