(* The paper's Figure 1, loaded from RFL source and pushed through the full
   pipeline: hybrid prediction, RaceFuzzer confirmation/rejection, replay.

   Run with:  dune exec examples/figure1.exe [path/to/figure1.rfl] *)

open Rf_util

let default_path = "examples/programs/figure1.rfl"

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_path in
  let prog =
    try Rf_lang.Lang.load_file path
    with Sys_error _ ->
      Fmt.epr "cannot read %s (run from the repository root)@." path;
      exit 1
  in
  let main = Rf_lang.Lang.program ~print:ignore prog in
  Fmt.pr "== Figure 1 (paper §3.1) ==@.@.";
  (* Phase 1 *)
  let p1 = Racefuzzer.Fuzzer.phase1 ~seeds:(List.init 10 Fun.id) main in
  let pairs = Racefuzzer.Fuzzer.potential_pairs p1 in
  Fmt.pr "hybrid detection predicts %d potential pair(s):@."
    (Site.Pair.Set.cardinal pairs);
  Site.Pair.Set.iter (fun p -> Fmt.pr "  %a@." Site.Pair.pp p) pairs;
  (* Phase 2 on each *)
  Fmt.pr "@.RaceFuzzer, 100 seeds per pair:@.";
  Site.Pair.Set.iter
    (fun pair ->
      let r =
        Racefuzzer.Fuzzer.fuzz_pair ~seeds:(List.init 100 Fun.id) ~program:main pair
      in
      Fmt.pr "  %a: race created %d/100, ERROR1 raised %d/100 -> %s@." Site.Pair.pp
        pair r.Racefuzzer.Fuzzer.race_trials r.Racefuzzer.Fuzzer.error_trials
        (if Racefuzzer.Fuzzer.is_harmful r then "real, harmful"
         else if Racefuzzer.Fuzzer.is_real r then "real"
         else "false alarm — rejected without manual inspection"))
    pairs;
  (* Replay demonstration: two runs with one seed are bit-identical. *)
  Fmt.pr "@.replay (same seed, twice):@.";
  let real =
    Site.Pair.Set.filter
      (fun p ->
        Racefuzzer.Fuzzer.is_real
          (Racefuzzer.Fuzzer.fuzz_pair ~seeds:(List.init 10 Fun.id) ~program:main p))
      pairs
  in
  match Site.Pair.Set.choose_opt real with
  | None -> Fmt.pr "  (no real race?)@."
  | Some pair ->
      let run () =
        let o, rep =
          Racefuzzer.Fuzzer.replay ~record_trace:true ~seed:7 ~program:main pair
        in
        ( (match o.Rf_runtime.Outcome.trace with
          | Some t -> Rf_events.Trace.fingerprint t
          | None -> 0),
          List.length (Racefuzzer.Algo.hits rep) )
      in
      let f1, h1 = run () in
      let f2, h2 = run () in
      Fmt.pr "  trace fingerprints %d = %d, hits %d = %d -> %s@." f1 f2 h1 h2
        (if f1 = f2 && h1 = h2 then "deterministic" else "MISMATCH")
