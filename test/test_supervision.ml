(* Fault-tolerance properties of the campaign layer:

   1. Work_queue close/drain semantics, plus a concurrent property: no
      task is lost or duplicated under concurrent pop/requeue/close.
   2. Event_log is domain-safe (no torn or interleaved lines under
      concurrent writers), journals round-trip through [load], and a torn
      trailing line — a crashed writer's signature — is tolerated.
   3. Fuzzer.run_trial sandboxes harness crashes and enforces watchdog
      deadlines.
   4. Supervisor respawns crashed workers with a budget and gives up past
      it; a campaign survives even permanently dying workers.
   5. Chaos campaigns complete with a report: crashes are quarantined,
      worker deaths never change results, and chaos itself is
      deterministic in its seed.
   6. Checkpoint/resume: a campaign killed mid-run and resumed from its
      journal fingerprints identically to an uninterrupted run. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Engine = Rf_runtime.Engine
module Outcome = Rf_runtime.Outcome
module Campaign = Rf_campaign.Campaign
module Event_log = Rf_campaign.Event_log
module Work_queue = Rf_campaign.Work_queue
module Chaos = Rf_campaign.Chaos
module Supervisor = Rf_campaign.Supervisor
module W = Rf_workloads

let fp = Campaign.fingerprint
let seeds n = List.init n Fun.id

(* ------------------------------------------------------------------ *)
(* Work queue                                                          *)

let test_queue_close_stops_pops () =
  let q = Work_queue.create [ 1; 2; 3; 4 ] in
  Alcotest.(check (option int)) "first pop" (Some 1) (Work_queue.pop q);
  Work_queue.close q;
  Alcotest.(check bool) "closed" true (Work_queue.is_closed q);
  Alcotest.(check (option int)) "pop after close" None (Work_queue.pop q);
  Alcotest.(check (list int)) "drain returns the rest in pop order" [ 2; 3; 4 ]
    (Work_queue.drain q)

let test_queue_requeue_order_and_retention () =
  let q = Work_queue.create [ 10; 20; 30 ] in
  let a = Work_queue.pop q in
  Alcotest.(check (option int)) "base order" (Some 10) a;
  Work_queue.requeue q 10;
  Alcotest.(check (option int)) "requeued item re-issued first" (Some 10)
    (Work_queue.pop q);
  Work_queue.close q;
  (* a worker that died after close still returns its task *)
  Work_queue.requeue q 99;
  Alcotest.(check (list int)) "requeue after close retained" [ 99; 20; 30 ]
    (Work_queue.drain q)

(* No task lost or duplicated under concurrent pop/requeue/close: for
   every item, (times processed) + (1 if drained) = 1. *)
let prop_queue_accounting =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 60 in
      let* workers = int_range 1 4 in
      let* close_midway = bool in
      return (n, workers, close_midway))
  in
  let arb =
    QCheck.make
      ~print:(fun (n, w, c) -> Printf.sprintf "items=%d workers=%d close=%b" n w c)
      gen
  in
  QCheck.Test.make ~name:"queue: no task lost or duplicated" ~count:20 arb
    (fun (n, workers, close_midway) ->
      let q = Work_queue.create (List.init n Fun.id) in
      let requeued = Array.init n (fun _ -> Atomic.make false) in
      let processed = Array.init n (fun _ -> Atomic.make 0) in
      let worker () =
        let rec loop () =
          match Work_queue.pop q with
          | None -> ()
          | Some i ->
              (* every 7th task simulates a crash: it is requeued once and
                 must still be processed (or drained) exactly once *)
              if i mod 7 = 3 && not (Atomic.exchange requeued.(i) true) then
                Work_queue.requeue q i
              else Atomic.incr processed.(i);
              loop ()
        in
        loop ()
      in
      let closer =
        Domain.spawn (fun () -> if close_midway then Work_queue.close q)
      in
      let doms = List.init workers (fun _ -> Domain.spawn worker) in
      List.iter Domain.join doms;
      Domain.join closer;
      let drained = Work_queue.drain q in
      List.for_all
        (fun i ->
          let p = Atomic.get processed.(i) in
          let d = if List.mem i drained then 1 else 0 in
          p + d = 1)
        (List.init n Fun.id))

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)

let sample_events =
  Event_log.
    [
      Campaign_started { domains = 2; base_trials = 10; budget = Some 40; cutoff = true };
      Phase1_finished
        {
          potential = 3;
          wall = 0.25;
          degraded = false;
          level = "full";
          detector = "hybrid";
          miss_bound = None;
        };
      Wave_started { wave = 0; tasks = 20 };
      Trial_started { pair = "(a, b)"; seed = 7; domain = 1 };
      Trial_finished
        {
          pair = "(a, b)";
          seed = 7;
          domain = 1;
          race = true;
          error = false;
          deadlock = false;
          steps = 42;
          switches = 9;
          exns = 0;
          wall = 0.5;
          degraded = false;
          level = "full";
          trigger = "";
          evicted = 0;
        };
      Trial_finished
        {
          pair = "(a, b)";
          seed = 11;
          domain = 0;
          race = true;
          error = true;
          deadlock = false;
          steps = 77;
          switches = 14;
          exns = 1;
          wall = 0.75;
          degraded = true;
          level = "sampled";
          trigger = "entry-budget";
          evicted = 512;
        };
      Trial_crashed
        { pair = "(a, b)"; seed = 8; domain = 0; exn_ = "Failure(\"boom\")"; backtrace = "" };
      Trial_exhausted
        { pair = "(a, b)"; seed = 9; domain = 0; reason = "wall deadline"; steps = 5; wall = 2.0 };
      Pair_resolved { pair = "(a, b)"; at_trial = 3 };
      Pair_quarantined { pair = "(a, b)"; crashes = 3; at_trial = 6 };
      Trials_cancelled { pair = "(a, b)"; count = 12 };
      Budget_granted { pair = "(c, d)"; extra = 5 };
      Worker_crashed { domain = 1; attempt = 0; exn_ = "Chaos.Injected_death" };
      Worker_respawned { domain = 1; attempt = 1; backoff = 0.015625 };
      Worker_gave_up { domain = 1 };
      Campaign_interrupted { executed = 17; remaining = 23 };
      Campaign_finished { wall = 1.5; trials = 17; cancelled = 12; throughput = 11.333333 };
    ]

let test_journal_round_trip () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let log = Event_log.open_file path in
  List.iter (Event_log.emit log) sample_events;
  Event_log.close log;
  let loaded = Event_log.load path in
  Sys.remove path;
  Alcotest.(check int) "all events load (incl. header)"
    (1 + List.length sample_events)
    (List.length loaded);
  Alcotest.(check bool) "header first" true
    (match loaded with
    | Event_log.Journal_opened { schema } :: _ -> schema = Event_log.schema_version
    | _ -> false);
  Alcotest.(check bool) "events round-trip structurally" true
    (List.tl loaded = sample_events)

let test_journal_tolerates_torn_line () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let log = Event_log.open_file path in
  List.iter (Event_log.emit log) sample_events;
  Event_log.close log;
  let before = Event_log.load path in
  (* simulate a writer killed mid-line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"seq\":999,\"t\":9.9,\"ev\":\"trial_fini";
  close_out oc;
  let after = Event_log.load path in
  Sys.remove path;
  Alcotest.(check bool) "torn trailing line ignored" true (before = after)

let test_log_concurrent_writers () =
  let path = Filename.temp_file "journal" ".jsonl" in
  let log = Event_log.open_file path in
  let per_domain = 100 and writers = 4 in
  let doms =
    List.init writers (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Event_log.emit log
                (Event_log.Trial_started { pair = "(a, b)"; seed = i; domain = d })
            done))
  in
  List.iter Domain.join doms;
  Event_log.close log;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Sys.remove path;
  Alcotest.(check int) "no line lost or torn"
    (1 + (writers * per_domain))
    (List.length lines);
  Alcotest.(check bool) "every line parses" true
    (List.for_all (fun l -> Event_log.event_of_json l <> None) lines);
  (* seq numbers must be the exact sequence 1..n: proof the mutex kept
     rendering and writing atomic per event *)
  let seq_of l = Scanf.sscanf l "{\"seq\":%d" Fun.id in
  Alcotest.(check bool) "seq contiguous" true
    (List.mapi (fun i _ -> i + 1) lines = List.map seq_of lines)

(* ------------------------------------------------------------------ *)
(* Trial sandbox                                                       *)

let figure1_pair () =
  let p1 = Fuzzer.phase1 ~seeds:(seeds 5) W.Figure1.program in
  match Site.Pair.Set.elements (Fuzzer.potential_pairs p1) with
  | p :: _ -> p
  | [] -> Alcotest.fail "figure1 produced no potential pairs"

let max_steps = Engine.default_config.Engine.max_steps

let test_sandbox_completes () =
  let pair = figure1_pair () in
  match Fuzzer.run_trial ~max_steps ~program:W.Figure1.program pair 0 with
  | Fuzzer.Completed t -> Alcotest.(check int) "seed recorded" 0 t.Fuzzer.t_seed
  | _ -> Alcotest.fail "expected Completed"

let test_sandbox_catches_crash () =
  let pair = figure1_pair () in
  match
    Fuzzer.run_trial
      ~inject:(fun () -> failwith "boom")
      ~max_steps ~program:W.Figure1.program pair 0
  with
  | Fuzzer.Harness_crash (Failure m, _) -> Alcotest.(check string) "exn" "boom" m
  | _ -> Alcotest.fail "expected Harness_crash"

let test_sandbox_step_deadline () =
  let pair = figure1_pair () in
  match
    Fuzzer.run_trial
      ~deadline:(Engine.deadline ~steps:3 ())
      ~max_steps ~program:W.Figure1.program pair 0
  with
  | Fuzzer.Budget_exhausted { bx_reason = Outcome.Step_deadline; bx_steps; _ } ->
      Alcotest.(check bool) "cancelled at the step cap" true (bx_steps <= 3)
  | _ -> Alcotest.fail "expected Budget_exhausted (step)"

let test_sandbox_wall_deadline () =
  let pair = figure1_pair () in
  (* an already-expired deadline: the engine's first poll fires before
     step 0, so the trial is cancelled without executing at all — the
     fate of a trial whose harness stalled past its budget *)
  match
    Fuzzer.run_trial
      ~deadline:(Engine.deadline ~wall:(-1.0) ())
      ~max_steps ~program:W.Figure1.program pair 0
  with
  | Fuzzer.Budget_exhausted { bx_reason = Outcome.Wall_deadline; bx_steps; _ } ->
      (* the watchdog polls before step 0: a stalled trial is cancelled
         without executing at all *)
      Alcotest.(check int) "cancelled before executing" 0 bx_steps
  | _ -> Alcotest.fail "expected Budget_exhausted (wall)"

(* ------------------------------------------------------------------ *)
(* Supervisor                                                          *)

let fast_policy =
  { Supervisor.default_policy with backoff_base = 0.001; backoff_max = 0.002 }

let test_supervisor_respawns_flaky_worker () =
  let attempts = Array.init 2 (fun _ -> Atomic.make 0) in
  let body ~domain =
    if Atomic.fetch_and_add attempts.(domain) 1 < 2 then failwith "flaky"
  in
  let o = Supervisor.supervise ~policy:fast_policy ~domains:2 body in
  Alcotest.(check int) "two crashes per slot" 4 o.Supervisor.crashes;
  Alcotest.(check int) "nobody gave up" 0 o.Supervisor.gave_up;
  Array.iter
    (fun a -> Alcotest.(check int) "third attempt succeeded" 3 (Atomic.get a))
    attempts

let test_supervisor_gives_up_past_budget () =
  let policy = { fast_policy with Supervisor.max_respawns = 1 } in
  let gave_up = Atomic.make 0 in
  let o =
    Supervisor.supervise ~policy
      ~on_give_up:(fun ~domain:_ -> Atomic.incr gave_up)
      ~domains:2
      (fun ~domain:_ -> failwith "always")
  in
  Alcotest.(check int) "initial + one respawn per slot" 4 o.Supervisor.crashes;
  Alcotest.(check int) "both slots gave up" 2 o.Supervisor.gave_up;
  Alcotest.(check int) "hook fired per slot" 2 (Atomic.get gave_up)

(* ------------------------------------------------------------------ *)
(* Chaos campaigns                                                     *)

let run_fig1 ?chaos ?supervision ?log ?resume () =
  Campaign.run ~domains:2 ~cutoff:true ~phase1_seeds:(seeds 5)
    ~seeds_per_pair:(seeds 20) ?chaos ?supervision ?log ?resume
    W.Figure1.program

let test_chaos_crashes_are_quarantined () =
  (* every trial crashes: every pair must be quarantined and the campaign
     must still complete with a (empty-trials) report *)
  let chaos = Chaos.plan ~crash_rate:1.0 0 in
  let r = run_fig1 ~chaos () in
  let s = r.Campaign.stats in
  Alcotest.(check int) "every pair quarantined" s.Campaign.s_pairs
    s.Campaign.s_quarantined;
  Alcotest.(check bool) "crashes recorded" true (s.Campaign.s_crashes > 0);
  Alcotest.(check bool) "quarantine skipped trials" true (s.Campaign.s_q_skipped > 0);
  List.iter
    (fun (pr : Fuzzer.pair_result) ->
      Alcotest.(check int) "no trials survive" 0 (List.length pr.Fuzzer.trials))
    r.Campaign.analysis.Fuzzer.results

let test_chaos_is_deterministic () =
  let chaos () = Chaos.plan ~crash_rate:0.3 ~stall_rate:0.2 ~stall_seconds:0.001 42 in
  let a = run_fig1 ~chaos:(chaos ()) () and b = run_fig1 ~chaos:(chaos ()) () in
  Alcotest.(check string) "same chaos seed, same fingerprint"
    (fp a.Campaign.analysis) (fp b.Campaign.analysis);
  Alcotest.(check int) "same crash count" a.Campaign.stats.Campaign.s_crashes
    b.Campaign.stats.Campaign.s_crashes

let test_worker_deaths_do_not_change_results () =
  let clean = run_fig1 () in
  let chaos = Chaos.plan ~death_every:5 ~max_deaths:3 7 in
  let noisy = run_fig1 ~chaos () in
  Alcotest.(check bool) "workers actually died" true
    (noisy.Campaign.stats.Campaign.s_worker_crashes > 0);
  Alcotest.(check string) "fingerprint unchanged by worker deaths"
    (fp clean.Campaign.analysis) (fp noisy.Campaign.analysis)

let test_campaign_survives_permanent_worker_loss () =
  (* workers die on their first pop and may not respawn: the inline drain
     fallback must still finish every trial, with identical results *)
  let clean = run_fig1 () in
  let chaos = Chaos.plan ~death_every:1 ~max_deaths:1000 1 in
  let supervision = { fast_policy with Supervisor.max_respawns = 0 } in
  let r = run_fig1 ~chaos ~supervision () in
  Alcotest.(check bool) "slots gave up" true
    (r.Campaign.stats.Campaign.s_worker_gave_up > 0);
  Alcotest.(check string) "results identical" (fp clean.Campaign.analysis)
    (fp r.Campaign.analysis)

(* ------------------------------------------------------------------ *)
(* Checkpoint / resume                                                 *)

let test_kill_resume_matches_uninterrupted () =
  let journal = Filename.temp_file "journal" ".jsonl" in
  let chaos_base () = Chaos.plan ~crash_rate:0.15 ~death_every:9 ~max_deaths:2 5 in
  (* run 1: killed deterministically after 12 executed trials *)
  let log = Event_log.open_file journal in
  let killed =
    run_fig1 ~chaos:(Chaos.plan ~crash_rate:0.15 ~death_every:9 ~max_deaths:2 ~stop_after:12 5) ~log ()
  in
  Event_log.close log;
  Alcotest.(check bool) "run 1 was interrupted" true
    killed.Campaign.stats.Campaign.s_interrupted;
  (* run 2: resumed from run 1's journal, same chaos minus the kill *)
  let resumed = run_fig1 ~chaos:(chaos_base ()) ~resume:journal () in
  Sys.remove journal;
  Alcotest.(check bool) "run 2 completed" false
    resumed.Campaign.stats.Campaign.s_interrupted;
  Alcotest.(check bool) "run 2 replayed journalled trials" true
    (resumed.Campaign.stats.Campaign.s_replayed > 0);
  (* reference: the same chaotic campaign, never interrupted *)
  let full = run_fig1 ~chaos:(chaos_base ()) () in
  Alcotest.(check string) "kill + resume = uninterrupted"
    (fp full.Campaign.analysis) (fp resumed.Campaign.analysis)

let test_resume_from_complete_journal_runs_nothing () =
  let journal = Filename.temp_file "journal" ".jsonl" in
  let log = Event_log.open_file journal in
  let first = run_fig1 ~log () in
  Event_log.close log;
  let resumed = run_fig1 ~resume:journal () in
  Sys.remove journal;
  Alcotest.(check int) "no trial re-executed" 0
    resumed.Campaign.stats.Campaign.s_trials;
  Alcotest.(check int) "everything replayed" first.Campaign.stats.Campaign.s_trials
    resumed.Campaign.stats.Campaign.s_replayed;
  Alcotest.(check string) "identical analysis" (fp first.Campaign.analysis)
    (fp resumed.Campaign.analysis)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "campaign_supervision"
    [
      ( "work_queue",
        [
          Alcotest.test_case "close stops pops" `Quick test_queue_close_stops_pops;
          Alcotest.test_case "requeue order and retention" `Quick
            test_queue_requeue_order_and_retention;
          QCheck_alcotest.to_alcotest prop_queue_accounting;
        ] );
      ( "event_log",
        [
          Alcotest.test_case "journal round-trips" `Quick test_journal_round_trip;
          Alcotest.test_case "torn trailing line tolerated" `Quick
            test_journal_tolerates_torn_line;
          Alcotest.test_case "concurrent writers, no torn lines" `Quick
            test_log_concurrent_writers;
        ] );
      ( "sandbox",
        [
          Alcotest.test_case "completes normally" `Quick test_sandbox_completes;
          Alcotest.test_case "catches harness crash" `Quick test_sandbox_catches_crash;
          Alcotest.test_case "step deadline" `Quick test_sandbox_step_deadline;
          Alcotest.test_case "wall deadline" `Quick test_sandbox_wall_deadline;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "respawns flaky worker" `Quick
            test_supervisor_respawns_flaky_worker;
          Alcotest.test_case "gives up past budget" `Quick
            test_supervisor_gives_up_past_budget;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "crashes quarantined, campaign completes" `Quick
            test_chaos_crashes_are_quarantined;
          Alcotest.test_case "chaos is deterministic" `Quick test_chaos_is_deterministic;
          Alcotest.test_case "worker deaths don't change results" `Quick
            test_worker_deaths_do_not_change_results;
          Alcotest.test_case "survives permanent worker loss" `Quick
            test_campaign_survives_permanent_worker_loss;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill + resume = uninterrupted" `Quick
            test_kill_resume_matches_uninterrupted;
          Alcotest.test_case "complete journal replays everything" `Quick
            test_resume_from_complete_journal_runs_nothing;
        ] );
    ]
