(** Front-end for RFL: parse, check, and package programs for the engine
    and the fuzzer. *)

exception Error of string

let () =
  Printexc.register_printer (function
    | Error m -> Some (Printf.sprintf "RFL error: %s" m)
    | _ -> None)

let wrap_errors file f =
  try f () with
  | Lexer.Lex_error (pos, m) ->
      raise (Error (Fmt.str "%s:%a: lexical error: %s" file Token.pp_pos pos m))
  | Parser.Parse_error (pos, m) ->
      raise (Error (Fmt.str "%s:%a: parse error: %s" file Token.pp_pos pos m))
  | Check.Check_error (pos, m) ->
      raise (Error (Fmt.str "%s:%a: %s" file Token.pp_pos pos m))

(** Parse only (no static checks). *)
let parse_string ?(file = "<string>") src =
  wrap_errors file (fun () -> Parser.parse_program ~file src)

(** Parse and statically check. *)
let load_string ?(file = "<string>") src =
  wrap_errors file (fun () ->
      let prog = Parser.parse_program ~file src in
      Check.check prog;
      prog)

let load_file path =
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  load_string ~file:(Filename.basename path) src

(** The [unit -> unit] main suitable for {!Rf_runtime.Engine.run} and
    {!Racefuzzer.Fuzzer}. *)
let program ?print (prog : Ast.program) : unit -> unit = Interp.main_of ?print prog

(** Convenience: source text straight to a runnable main. *)
let program_of_string ?file ?print src = program ?print (load_string ?file src)
