(** Pretty-printer for RFL: emits valid concrete syntax such that
    [parse (print p)] is structurally equal to [p] up to source positions
    (property-tested), plus the position-insensitive structural equality
    used to state that property. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : int -> Format.formatter -> Ast.stmt -> unit
(** [pp_stmt indent]. *)

val pp_block : int -> Format.formatter -> Ast.block -> unit
val pp_program : Format.formatter -> Ast.program -> unit
val program_to_string : Ast.program -> string

val expr_equal : Ast.expr -> Ast.expr -> bool
val stmt_equal : Ast.stmt -> Ast.stmt -> bool
val block_equal : Ast.block -> Ast.block -> bool
val program_equal : Ast.program -> Ast.program -> bool
(** Equality modulo positions (and negative-literal normalization). *)
