lib/workloads/jspider.ml: Api Common List Lock Printf Rf_runtime Rf_util Site Workload
