(* Scratch diagnostics for workload race topology (not part of runtest). *)

open Rf_util
open Racefuzzer
module W = Rf_workloads

let seeds n = List.init n Fun.id

let dump name (w : W.Workload.t) =
  let a =
    Fuzzer.analyze ~phase1_seeds:(seeds 6) ~seeds_per_pair:(seeds 40)
      w.W.Workload.program
  in
  Fmt.pr "=== %s ===@." name;
  let potential = Fuzzer.potential_pairs a.Fuzzer.a_phase1 in
  Fmt.pr "potential: %d, real: %d, error: %d@."
    (Site.Pair.Set.cardinal potential)
    (Site.Pair.Set.cardinal a.Fuzzer.real_pairs)
    (Site.Pair.Set.cardinal a.Fuzzer.error_pairs);
  List.iter
    (fun (r : Fuzzer.pair_result) ->
      Fmt.pr "  %a: races=%d/%d errors=%d deadlocks=%d@." Site.Pair.pp r.Fuzzer.pr_pair
        r.Fuzzer.race_trials (List.length r.Fuzzer.trials) r.Fuzzer.error_trials
        r.Fuzzer.deadlock_trials;
      if r.Fuzzer.error_trials = 0 && r.Fuzzer.race_trials > 0 then
        (* show exceptions seen in trials even without race attribution *)
        List.iter
          (fun (t : Fuzzer.trial) ->
            List.iter
              (fun (x : Rf_runtime.Outcome.exn_report) ->
                Fmt.pr "    [seed %d, no-race-attr] %s in %s@." t.Fuzzer.t_seed
                  (Printexc.to_string x.Rf_runtime.Outcome.exn_)
                  x.Rf_runtime.Outcome.xthread)
              t.Fuzzer.t_outcome.Rf_runtime.Outcome.exceptions)
          r.Fuzzer.trials)
    a.Fuzzer.results

let () =
  match Sys.argv with
  | [| _; name |] -> (
      match W.Registry.find name with
      | Some w -> dump name w
      | None -> Fmt.epr "unknown workload %s@." name)
  | _ ->
      dump "cache4j" W.Cache4j.workload;
      dump "vector1.1" W.Coll_drivers.vector;
      dump "weblech" W.Weblech.workload
