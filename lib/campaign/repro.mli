(** Reproduction artifacts: one minimized, confirmed schedule per
    distinct error fingerprint of a campaign ([--repro-dir]).

    For each harmful pair, the first few erroring witness seeds are
    re-recorded, grouped by error fingerprint across {e all} pairs,
    minimized ({!Rf_replay.Shrinker} against the
    {!Racefuzzer.Fuzzer.schedule_oracle}), and the shortest confirmed
    schedule per fingerprint is written as [repro-<digest>.sched.json]
    plus a human-readable [repro-<digest>.txt] narrative.  Sequential,
    deterministic, fuel-bounded. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer

type entry = {
  r_pair : Site.Pair.t;  (** the pair whose witness won *)
  r_fingerprint : string;
  r_seed : int;  (** witness seed of the emitted schedule *)
  r_file : string;  (** the [*.sched.json] path *)
  r_narrative : string;  (** the [*.txt] path *)
  r_stats : Rf_replay.Shrinker.stats;
  r_replay_ok : bool;
      (** the on-disk artifact was reloaded and exactly replayed to its
          claimed fingerprint *)
}

type summary = {
  written : entry list;  (** one per distinct fingerprint, discovery order *)
  duplicates : int;  (** witnesses folded into an already-covered fingerprint *)
  failed : int;  (** witnesses whose minimization could not reproduce *)
  oracle_runs : int;  (** total minimization executions across all artifacts *)
}

val no_summary : summary
(** The empty summary (campaign ran without [--repro-dir]). *)

val write_all :
  ?fuel:int ->
  ?witnesses:int ->
  ?witness_scan:int ->
  dir:string ->
  target:string ->
  ?max_steps:int ->
  program:Fuzzer.program ->
  Fuzzer.pair_result list ->
  summary
(** Walk the harmful results and emit artifacts into [dir] (created if
    missing).  [fuel] (default 400) bounds oracle executions per
    minimization — repro work is budgeted like trial work, a few hundred
    extra engine runs per artifact.  [witnesses] (default 3) caps
    erroring seeds minimized per pair; when the pair's trial list yields
    fewer (early cutoff truncates it), seeds [0..witness_scan-1]
    (default 32) are scanned deterministically to fill the quota —
    erroring runs cluster into shapes with very different minimal
    prefixes, so more witness shapes means shorter artifacts. *)
