type 'a t = { mutex : Mutex.t; items : 'a array; mutable next : int }

let create items = { mutex = Mutex.create (); items = Array.of_list items; next = 0 }

let pop t =
  Mutex.protect t.mutex (fun () ->
      if t.next >= Array.length t.items then None
      else begin
        let x = t.items.(t.next) in
        t.next <- t.next + 1;
        Some x
      end)

let total t = Array.length t.items
let remaining t = Mutex.protect t.mutex (fun () -> Array.length t.items - t.next)
