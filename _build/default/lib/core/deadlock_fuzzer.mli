(** Deadlock-directed random testing — the paper's §1 generalization: bias
    the random scheduler by "a set of statements whose simultaneous
    execution could lead to a concurrency problem", here the inner-acquire
    statements of a {!Rf_detect.Goodlock} lock-order cycle.  Postponing
    threads at those statements steers the cycle's participants into
    holding one lock each; the engine's deadlock detection then confirms a
    *real* deadlock, while gate-protected (false) cycles never materialize. *)

open Rf_runtime

type report = { mutable postponed_total : int; mutable evictions : int }

val fresh_report : unit -> report

val strategy :
  ?postpone_timeout:int option ->
  sites:Rf_util.Site.Set.t ->
  report:report ->
  unit ->
  Strategy.t
(** The postponement strategy for one candidate cycle's inner sites. *)

type candidate_result = {
  dc_candidate : Rf_detect.Goodlock.candidate;
  dc_trials : int;
  dc_deadlock_trials : int;
      (** trials whose deadlock blocked a thread at *every* cycle site —
          unrelated deadlocks are not credited *)
  dc_probability : float;
  dc_seed : int option;  (** a seed reproducing the deadlock *)
}

val is_real : candidate_result -> bool

val phase1 : ?seeds:int list -> (unit -> unit) -> Rf_detect.Goodlock.candidate list

val fuzz_candidate :
  ?seeds:int list ->
  program:(unit -> unit) ->
  Rf_detect.Goodlock.candidate ->
  candidate_result

val analyze :
  ?phase1_seeds:int list ->
  ?seeds_per_candidate:int list ->
  (unit -> unit) ->
  candidate_result list
