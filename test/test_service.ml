(* The long-lived campaign service (`serve`):

   1. Retry policy as pure units: jitter determinism and bounds, the
      backoff curve and its cap, budget exhaustion.
   2. Ledger codec: save/load round-trip, tolerance of torn and
      checksum-bad lines, healing on the next save.
   3. Revalidation semantics in-process: verdicts settle exactly once
      per cycle, quarantine after N strikes under injected failures,
      fixed -> regressed transitions, and the corpus stays strictly
      verifiable through torn-index chaos.
   4. Crash safety end to end: a re-exec'd serve process SIGKILLs
      itself mid-cycle (chaos die_reval); the restarted service resumes
      from the ledger without redoing settled items and produces the
      byte-identical cycle verdict fingerprint of an unkilled run. *)

module Campaign = Rf_campaign.Campaign
module Chaos = Rf_campaign.Chaos
module Corpus = Rf_campaign.Corpus
module Service = Rf_campaign.Service
module Retry = Rf_campaign.Service.Retry
module Ledger = Rf_campaign.Service.Ledger
module W = Rf_workloads

let seeds n = List.init n Fun.id

let resolve name =
  match W.Registry.find name with
  | Some w -> Ok w.W.Workload.program
  | None -> Error ("unknown workload " ^ name)

let tmpdir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  dir

let rec copy_dir src dst =
  Unix.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let s = Filename.concat src name and d = Filename.concat dst name in
      if Sys.is_directory s then copy_dir s d
      else begin
        let ic = open_in_bin s in
        let content = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let oc = open_out_bin d in
        output_string oc content;
        close_out oc
      end)
    (Sys.readdir src)

(* One figure1 campaign with saved traces: the corpus ends up with one
   error repro plus one trace entry per phase-1 seed — several items of
   both revalidation flavors (replay and integrity). *)
let build_corpus dir =
  let traces = Filename.concat dir "traces" in
  ignore
    (Campaign.run ~domains:2 ~cutoff:true ~phase1_seeds:(seeds 3)
       ~seeds_per_pair:(seeds 20) ~target:"figure1" ~corpus:dir
       ~save_traces:traces W.Figure1.program)

(* Revalidation-only config: the token bucket never grants a campaign,
   so cycle content is purely the corpus re-check — the deterministic
   half the crash-resume fingerprint contract covers. *)
let reval_only ?chaos ?(cycles = 1) ?(retry = Retry.default) () =
  {
    Service.default_config with
    Service.v_cycles = cycles;
    v_period = 0.0;
    v_rate = 0.0;
    v_burst = 0.0;
    v_retry = retry;
    v_chaos = chaos;
  }

(* ------------------------------------------------------------------ *)
(* 1. Retry policy                                                     *)

let test_retry_jitter_deterministic () =
  let u1 = Retry.jitter_unit ~key:"error:abc" ~attempt:1 in
  let u2 = Retry.jitter_unit ~key:"error:abc" ~attempt:1 in
  Alcotest.(check (float 0.0)) "same (key, attempt) draws identically" u1 u2;
  let d1 = Retry.delay Retry.default ~key:"error:abc" ~attempt:2 in
  let d2 = Retry.delay Retry.default ~key:"error:abc" ~attempt:2 in
  Alcotest.(check (float 0.0)) "delay is reproducible" d1 d2;
  Alcotest.(check bool) "different keys decorrelate" true
    (Retry.jitter_unit ~key:"error:abc" ~attempt:1
    <> Retry.jitter_unit ~key:"error:xyz" ~attempt:1);
  Alcotest.(check bool) "different attempts decorrelate" true
    (Retry.jitter_unit ~key:"error:abc" ~attempt:1
    <> Retry.jitter_unit ~key:"error:abc" ~attempt:2)

let test_retry_jitter_bounds () =
  for a = 1 to 50 do
    let u = Retry.jitter_unit ~key:(Printf.sprintf "k%d" a) ~attempt:a in
    Alcotest.(check bool) "unit draw in [0, 1)" true (u >= 0.0 && u < 1.0)
  done

let test_retry_backoff_curve () =
  let p = { Retry.default with Retry.rp_jitter = 0.0 } in
  Alcotest.(check (float 1e-9)) "first delay = base" p.Retry.rp_base
    (Retry.delay p ~key:"k" ~attempt:1);
  Alcotest.(check (float 1e-9)) "second delay doubles"
    (p.Retry.rp_base *. p.Retry.rp_factor)
    (Retry.delay p ~key:"k" ~attempt:2);
  Alcotest.(check (float 1e-9)) "deep attempts hit the cap" p.Retry.rp_max
    (Retry.delay p ~key:"k" ~attempt:30)

let test_retry_jitter_stays_in_band () =
  let p = Retry.default in
  for a = 1 to 20 do
    let d = Retry.delay p ~key:"band" ~attempt:a in
    let nominal =
      Float.min p.Retry.rp_max
        (p.Retry.rp_base *. (p.Retry.rp_factor ** float_of_int (a - 1)))
    in
    Alcotest.(check bool) "jittered delay within +/- rp_jitter" true
      (d >= nominal *. (1.0 -. p.Retry.rp_jitter) -. 1e-9
      && d <= nominal *. (1.0 +. p.Retry.rp_jitter) +. 1e-9
      && d >= 0.0)
  done

let test_retry_exhaustion () =
  let p = { Retry.default with Retry.rp_max_attempts = 3 } in
  Alcotest.(check bool) "attempt 2 of 3 not exhausted" false
    (Retry.exhausted p ~attempt:2);
  Alcotest.(check bool) "attempt 3 of 3 exhausted" true
    (Retry.exhausted p ~attempt:3);
  Alcotest.(check bool) "past the budget stays exhausted" true
    (Retry.exhausted p ~attempt:7)

(* ------------------------------------------------------------------ *)
(* 2. Ledger codec                                                     *)

let sample_ledger () =
  let t = Ledger.load "/nonexistent-serve-dir" |> fst in
  t.Ledger.l_cycle <- 3;
  Hashtbl.replace t.Ledger.l_items ("error", "fp1")
    {
      Ledger.li_kind = "error";
      li_key = "fp1";
      li_verdict = Ledger.Still_racy;
      li_cycle = 2;
      li_attempts = 2;
      li_strikes = 0;
      li_quarantine = "";
    };
  Hashtbl.replace t.Ledger.l_items ("trace", "figure1:0")
    {
      Ledger.li_kind = "trace";
      li_key = "figure1:0";
      li_verdict = Ledger.Failed;
      li_cycle = 2;
      li_attempts = 3;
      li_strikes = 3;
      li_quarantine = "3 consecutive failed cycle(s); last: boom";
    };
  Hashtbl.replace t.Ledger.l_targets "figure1"
    {
      Ledger.lt_name = "figure1";
      lt_tokens = 1.5;
      lt_mtime = 0.0;
      lt_campaigns = 4;
      lt_confirmed = "cafe";
    };
  t.Ledger.l_cycles <-
    [
      {
        Ledger.lc_cycle = 1;
        lc_fingerprint = "aaaa";
        lc_checked = 2;
        lc_still = 1;
        lc_fixed = 0;
        lc_regressed = 0;
        lc_intact = 0;
        lc_failed = 1;
        lc_campaigns = 2;
        lc_wreq = 2;
        lc_wact = 1;
      };
    ];
  t

let test_ledger_roundtrip () =
  let dir = tmpdir "rf-ledger-rt" in
  Unix.mkdir dir 0o755;
  let t = sample_ledger () in
  Ledger.save ~dir t;
  let got, skipped = Ledger.load dir in
  Alcotest.(check int) "no skips on a clean file" 0 skipped;
  Alcotest.(check int) "cycle counter survives" 3 got.Ledger.l_cycle;
  Alcotest.(check int) "items survive" 2 (Hashtbl.length got.Ledger.l_items);
  let q = Hashtbl.find got.Ledger.l_items ("trace", "figure1:0") in
  Alcotest.(check string) "quarantine reason survives"
    "3 consecutive failed cycle(s); last: boom" q.Ledger.li_quarantine;
  Alcotest.(check int) "strikes survive" 3 q.Ledger.li_strikes;
  let tg = Hashtbl.find got.Ledger.l_targets "figure1" in
  Alcotest.(check (float 1e-9)) "tokens survive" 1.5 tg.Ledger.lt_tokens;
  Alcotest.(check int) "campaign count survives" 4 tg.Ledger.lt_campaigns;
  (match got.Ledger.l_cycles with
  | [ c ] ->
      Alcotest.(check string) "cycle fingerprint survives" "aaaa"
        c.Ledger.lc_fingerprint;
      Alcotest.(check int) "fleet width survives" 1 c.Ledger.lc_wact
  | l -> Alcotest.failf "expected 1 completed cycle, got %d" (List.length l))

let test_ledger_tolerates_torn_lines () =
  let dir = tmpdir "rf-ledger-torn" in
  Unix.mkdir dir 0o755;
  let t = sample_ledger () in
  Ledger.save ~dir t;
  (* a torn tail (no newline, invalid JSON) and a bit-flipped seal *)
  let path = Ledger.path dir in
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let flipped =
    (* corrupt the last sealed line's payload without touching others *)
    let i = String.rindex_from content (String.length content - 2) '{' in
    String.mapi (fun j c -> if j = i + 1 then '~' else c) content
  in
  let oc = open_out_bin path in
  output_string oc flipped;
  output_string oc "{\"torn\":tru";
  close_out oc;
  let got, skipped = Ledger.load dir in
  Alcotest.(check int) "both bad lines skipped" 2 skipped;
  Alcotest.(check int) "intact items still load" 2
    (Hashtbl.length got.Ledger.l_items);
  (* the next save heals: a fresh load sees zero skips *)
  Ledger.save ~dir got;
  let _, skipped' = Ledger.load dir in
  Alcotest.(check int) "save heals the file" 0 skipped'

(* ------------------------------------------------------------------ *)
(* 3. Revalidation semantics, in process                               *)

let test_serve_revalidates_and_seals_cycles () =
  let dir = tmpdir "rf-serve-basic" in
  build_corpus dir;
  let n = List.length (Corpus.load dir) in
  Alcotest.(check bool) "corpus has error + trace entries" true (n >= 2);
  let code = Service.serve (reval_only ~cycles:2 ()) ~resolve ~dir in
  Alcotest.(check int) "clean exit" 0 code;
  let ledger, skipped = Ledger.load dir in
  Alcotest.(check int) "clean ledger" 0 skipped;
  Alcotest.(check int) "two cycles sealed" 2
    (List.length ledger.Ledger.l_cycles);
  (match ledger.Ledger.l_cycles with
  | [ c1; c2 ] ->
      Alcotest.(check int) "every entry checked in cycle 1" n
        c1.Ledger.lc_checked;
      Alcotest.(check bool) "the repro still replays" true
        (c1.Ledger.lc_still >= 1);
      Alcotest.(check bool) "traces are intact" true (c1.Ledger.lc_intact >= 1);
      Alcotest.(check int) "no failures" 0 c1.Ledger.lc_failed;
      Alcotest.(check string) "stable corpus, stable fingerprint"
        c1.Ledger.lc_fingerprint c2.Ledger.lc_fingerprint
  | _ -> Alcotest.fail "expected exactly 2 cycles");
  match Corpus.verify ~dir with
  | Ok _ -> ()
  | Error p -> Alcotest.failf "corpus broken: %s" (String.concat "; " p)

let test_serve_quarantines_after_strikes () =
  let dir = tmpdir "rf-serve-quarantine" in
  build_corpus dir;
  (* item 1's every attempt fails; one strike quarantines *)
  let chaos = Chaos.plan ~fail_reval:1 0 in
  let retry =
    { Retry.default with Retry.rp_base = 0.001; rp_strikes = 1 }
  in
  let code = Service.serve (reval_only ~chaos ~retry ()) ~resolve ~dir in
  Alcotest.(check int) "fault never crashes the loop" 0 code;
  let ledger, _ = Ledger.load dir in
  let quarantined =
    Hashtbl.fold
      (fun _ i acc -> if i.Ledger.li_quarantine <> "" then i :: acc else acc)
      ledger.Ledger.l_items []
  in
  (match quarantined with
  | [ i ] ->
      Alcotest.(check bool) "verdict is failed" true
        (i.Ledger.li_verdict = Ledger.Failed);
      Alcotest.(check int) "full retry budget spent"
        Retry.default.Retry.rp_max_attempts i.Ledger.li_attempts;
      Alcotest.(check bool) "reason is journaled" true
        (i.Ledger.li_quarantine <> "")
  | l -> Alcotest.failf "expected 1 quarantined item, got %d" (List.length l));
  (* a second cycle skips the quarantined item instead of retrying it
     (cycle budgets count ledger-completed cycles, so ask for 2) *)
  let code = Service.serve (reval_only ~cycles:2 ()) ~resolve ~dir in
  Alcotest.(check int) "second run clean" 0 code;
  let ledger, _ = Ledger.load dir in
  (match List.rev ledger.Ledger.l_cycles with
  | last :: _ ->
      let n = List.length (Corpus.load dir) in
      Alcotest.(check int) "quarantined item not re-checked" (n - 1)
        last.Ledger.lc_checked
  | [] -> Alcotest.fail "no cycles sealed");
  match Corpus.verify ~dir with
  | Ok _ -> ()
  | Error p -> Alcotest.failf "corpus broken: %s" (String.concat "; " p)

let test_serve_flags_regressions () =
  let dir = tmpdir "rf-serve-regress" in
  build_corpus dir;
  ignore (Service.serve (reval_only ()) ~resolve ~dir);
  (* rewrite the repro's ledger verdict to "fixed": the next cycle's
     successful replay must flag it regressed, not merely still-racy *)
  let ledger, _ = Ledger.load dir in
  Hashtbl.iter
    (fun key (i : Ledger.item) ->
      if i.Ledger.li_kind = "error" then
        Hashtbl.replace ledger.Ledger.l_items key
          { i with Ledger.li_verdict = Ledger.Fixed })
    (Hashtbl.copy ledger.Ledger.l_items);
  Ledger.save ~dir ledger;
  ignore (Service.serve (reval_only ~cycles:2 ()) ~resolve ~dir);
  let ledger, _ = Ledger.load dir in
  let regressed =
    Hashtbl.fold
      (fun _ i acc ->
        if i.Ledger.li_verdict = Ledger.Regressed then i :: acc else acc)
      ledger.Ledger.l_items []
  in
  Alcotest.(check int) "fixed -> reproducing is a regression" 1
    (List.length regressed)

let test_serve_heals_torn_index () =
  let dir = tmpdir "rf-serve-torn" in
  build_corpus dir;
  let chaos = Chaos.plan ~torn_index_cycle:1 ~torn_ledger_cycle:1 0 in
  let code = Service.serve (reval_only ~chaos ()) ~resolve ~dir in
  Alcotest.(check int) "torn stores never crash the loop" 0 code;
  (match Corpus.verify ~dir with
  | Ok _ -> ()
  | Error p ->
      Alcotest.failf "corpus not healed: %s" (String.concat "; " p));
  let _, skipped = Ledger.load dir in
  Alcotest.(check int) "ledger healed" 0 skipped

(* ------------------------------------------------------------------ *)
(* 4. SIGKILL mid-cycle -> restart -> identical fingerprint            *)

(* Child mode (re-exec'd): serve with die_reval chaos — settles one
   item, then SIGKILLs itself just before persisting the second. *)
let serve_kill_child dir =
  let chaos = Chaos.plan ~die_reval:2 0 in
  ignore (Service.serve (reval_only ~chaos ()) ~resolve ~dir);
  (* unreachable: the chaos kill fires first *)
  exit 99

let test_serve_kill_restart_fingerprint_parity () =
  let src = tmpdir "rf-serve-src" in
  build_corpus src;
  Alcotest.(check bool) "needs >= 2 items for a mid-cycle kill" true
    (List.length (Corpus.load src) >= 2);
  (* baseline: one unkilled revalidation cycle *)
  let base = tmpdir "rf-serve-base" in
  copy_dir src base;
  ignore (Service.serve (reval_only ()) ~resolve ~dir:base);
  let baseline, _ = Ledger.load base in
  let baseline_fp =
    match baseline.Ledger.l_cycles with
    | [ c ] -> c.Ledger.lc_fingerprint
    | _ -> Alcotest.fail "baseline did not seal exactly one cycle"
  in
  (* killed: re-exec this binary in child mode; it SIGKILLs itself *)
  let dir = tmpdir "rf-serve-kill" in
  copy_dir src dir;
  let env =
    Array.append (Unix.environment ()) [| "RF_SERVE_KILL=" ^ dir |]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin devnull devnull
  in
  let _, status = Unix.waitpid [] pid in
  Unix.close devnull;
  (match status with
  | Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | s ->
      Alcotest.failf "child should die by SIGKILL, got %s"
        (match s with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stop %d" s));
  (* mid-crash state: exactly the one settled verdict, no seal *)
  let mid, _ = Ledger.load dir in
  Alcotest.(check int) "one item settled before the kill" 1
    (Hashtbl.length mid.Ledger.l_items);
  Alcotest.(check int) "interrupted cycle not sealed" 0
    (List.length mid.Ledger.l_cycles);
  (* restart: resumes cycle 1, does not redo the settled item *)
  let code = Service.serve (reval_only ()) ~resolve ~dir in
  Alcotest.(check int) "restart drains cleanly" 0 code;
  let resumed, _ = Ledger.load dir in
  (match resumed.Ledger.l_cycles with
  | [ c ] ->
      Alcotest.(check string)
        "kill + restart fingerprints byte-identical to unkilled run"
        baseline_fp c.Ledger.lc_fingerprint;
      Alcotest.(check int) "every item settled exactly once in cycle 1"
        (Hashtbl.length baseline.Ledger.l_items)
        c.Ledger.lc_checked
  | _ -> Alcotest.fail "restart did not seal exactly one cycle");
  Hashtbl.iter
    (fun _ (i : Ledger.item) ->
      Alcotest.(check int)
        (Printf.sprintf "item %s:%s settled in cycle 1 only" i.Ledger.li_kind
           i.Ledger.li_key)
        1 i.Ledger.li_cycle;
      Alcotest.(check int) "no retry inflation across the kill" 1
        i.Ledger.li_attempts)
    resumed.Ledger.l_items;
  match Corpus.verify ~dir with
  | Ok _ -> ()
  | Error p -> Alcotest.failf "corpus broken: %s" (String.concat "; " p)

(* ------------------------------------------------------------------ *)

let () =
  (match Sys.getenv_opt "RF_SERVE_KILL" with
  | Some dir -> serve_kill_child dir
  | None -> ());
  Alcotest.run "service"
    [
      ( "retry",
        [
          Alcotest.test_case "jitter deterministic" `Quick
            test_retry_jitter_deterministic;
          Alcotest.test_case "jitter bounds" `Quick test_retry_jitter_bounds;
          Alcotest.test_case "backoff curve" `Quick test_retry_backoff_curve;
          Alcotest.test_case "jitter band" `Quick
            test_retry_jitter_stays_in_band;
          Alcotest.test_case "budget exhaustion" `Quick test_retry_exhaustion;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "roundtrip" `Quick test_ledger_roundtrip;
          Alcotest.test_case "torn lines" `Quick
            test_ledger_tolerates_torn_lines;
        ] );
      ( "revalidation",
        [
          Alcotest.test_case "cycles seal verdicts" `Quick
            test_serve_revalidates_and_seals_cycles;
          Alcotest.test_case "quarantine after strikes" `Quick
            test_serve_quarantines_after_strikes;
          Alcotest.test_case "fixed -> regressed" `Quick
            test_serve_flags_regressions;
          Alcotest.test_case "torn index healed" `Quick
            test_serve_heals_torn_index;
        ] );
      ( "crash-safety",
        [
          Alcotest.test_case "SIGKILL mid-cycle, restart, identical print"
            `Quick test_serve_kill_restart_fingerprint_parity;
        ] );
    ]
