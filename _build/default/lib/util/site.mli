(** Statement sites: the static program statements over which races are
    defined — the paper counts "distinct pairs of statements" (§5.2).

    Sites are interned in a global, mutex-protected registry: constructing
    the same (file, line, col, label) twice yields the same site, so racing
    pairs are stable across runs, seeds, and domains. *)

type t

val make : ?file:string -> ?line:int -> ?col:int -> string -> t
(** [make ~file ~line ~col label] — intern a site.  Defaults place embedded
    model code in the pseudo-file ["<model>"]. *)

val id : t -> int
val file : t -> string
val line : t -> int
val col : t -> int
val label : t -> string

val find_by_id : int -> t option

val find_by_line : file:string -> line:int -> t list
(** All registered sites on one line, sorted — how the CLI resolves
    [--pair L1:L2] the way the paper's figures number statements.  Sites
    register on first execution, so callers warm the registry with a run. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Unordered statement pairs — the paper's "racing pair of statements"
    [RaceSet].  Construction normalizes order; reflexive pairs (a statement
    racing with itself across threads) are allowed. *)
module Pair : sig
  type site := t
  type t

  val make : site -> site -> t
  val fst : t -> site
  (** The smaller-id site. *)

  val snd : t -> site
  val mem : site -> t -> bool
  val other : site -> t -> site option
  (** The opposite component, or [None] if the site is not in the pair. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string

  module Set : Set.S with type elt = t
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
