(* QCheck generator of well-formed RFL programs.

   Programs are well-typed *by construction* (the checker must accept every
   generated program — itself one of the properties).  The shape is
   constrained to keep every execution finite and monitor-safe:
   - loops are literal-bounded [for] loops,
   - locking is block-structured ([sync] only),
   - division/modulo use non-zero literal divisors,
   - [wait] is generated rarely (deadlocks are legitimate outcomes the
     properties account for; step-bound timeouts are not). *)

open QCheck.Gen

let pos : Rf_lang.Token.pos = { Rf_lang.Token.line = 0; col = 0 }

let e k : Rf_lang.Ast.expr = { Rf_lang.Ast.e = k; epos = pos }
let s k : Rf_lang.Ast.stmt = { Rf_lang.Ast.s = k; spos = pos }

(* fixed declaration pools *)
let int_globals = [ "g0"; "g1"; "g2" ]
let bool_globals = [ "b0"; "b1" ]
let arrays = [ ("arr0", 4) ]
let locks = [ "L0"; "L1" ]

type scope = { ints : string list; bools : string list; mutable fresh : int }

let new_scope () = { ints = []; bools = []; fresh = 0 }

let rec gen_int_expr scope depth =
  if depth <= 0 then
    frequency
      [
        (3, map (fun n -> e (Rf_lang.Ast.Eint (n mod 20))) small_nat);
        (2, map (fun v -> e (Rf_lang.Ast.Evar v)) (oneofl (int_globals @ scope.ints)));
      ]
  else
    frequency
      [
        (2, gen_int_expr scope 0);
        ( 2,
          let* op = oneofl [ Rf_lang.Ast.Add; Rf_lang.Ast.Sub; Rf_lang.Ast.Mul ] in
          let* l = gen_int_expr scope (depth - 1) in
          let* r = gen_int_expr scope (depth - 1) in
          return (e (Rf_lang.Ast.Ebin (op, l, r))) );
        ( 1,
          (* safe division: non-zero literal divisor *)
          let* op = oneofl [ Rf_lang.Ast.Div; Rf_lang.Ast.Mod ] in
          let* l = gen_int_expr scope (depth - 1) in
          let* d = map (fun n -> 1 + (n mod 7)) small_nat in
          return (e (Rf_lang.Ast.Ebin (op, l, e (Rf_lang.Ast.Eint d)))) );
        ( 1,
          let* a, n = oneofl arrays in
          let* i = map (fun i -> i mod n) small_nat in
          return (e (Rf_lang.Ast.Eindex (a, e (Rf_lang.Ast.Eint i)))) );
        (1, map (fun x -> e (Rf_lang.Ast.Eneg x)) (gen_int_expr scope (depth - 1)));
      ]

and gen_bool_expr scope depth =
  if depth <= 0 then
    frequency
      [
        (2, map (fun b -> e (Rf_lang.Ast.Ebool b)) bool);
        (2, map (fun v -> e (Rf_lang.Ast.Evar v)) (oneofl (bool_globals @ scope.bools)));
      ]
  else
    frequency
      [
        (2, gen_bool_expr scope 0);
        ( 3,
          let* op =
            oneofl
              [ Rf_lang.Ast.Lt; Rf_lang.Ast.Le; Rf_lang.Ast.Gt; Rf_lang.Ast.Ge;
                Rf_lang.Ast.Eq; Rf_lang.Ast.Neq ]
          in
          let* l = gen_int_expr scope (depth - 1) in
          let* r = gen_int_expr scope (depth - 1) in
          return (e (Rf_lang.Ast.Ebin (op, l, r))) );
        ( 1,
          let* op = oneofl [ Rf_lang.Ast.And; Rf_lang.Ast.Or ] in
          let* l = gen_bool_expr scope (depth - 1) in
          let* r = gen_bool_expr scope (depth - 1) in
          return (e (Rf_lang.Ast.Ebin (op, l, r))) );
        (1, map (fun x -> e (Rf_lang.Ast.Enot x)) (gen_bool_expr scope (depth - 1)));
      ]

(* Assignments target globals and arrays only: loop counters stay
   read-only so every generated loop is genuinely bounded. *)
let gen_assign scope =
  frequency
    [
      ( 3,
        let* v = oneofl int_globals in
        let* ex = gen_int_expr scope 1 in
        return (s (Rf_lang.Ast.Sassign (v, ex))) );
      ( 1,
        let* v = oneofl bool_globals in
        let* ex = gen_bool_expr scope 1 in
        return (s (Rf_lang.Ast.Sassign (v, ex))) );
      ( 1,
        let* a, n = oneofl arrays in
        let* i = map (fun i -> i mod n) small_nat in
        let* ex = gen_int_expr scope 1 in
        return (s (Rf_lang.Ast.Sindex_assign (a, e (Rf_lang.Ast.Eint i), ex))) );
    ]

let rec gen_stmt scope depth =
  if depth <= 0 then gen_assign scope
  else
    frequency
      [
        (4, gen_assign scope);
        ( 2,
          (* bounded for loop over a fresh local *)
          let v = Printf.sprintf "i%d" scope.fresh in
          scope.fresh <- scope.fresh + 1;
          let inner = { scope with ints = v :: scope.ints } in
          let* bound = map (fun n -> 1 + (n mod 3)) small_nat in
          let* body = gen_block inner (depth - 1) in
          return
            (s
               (Rf_lang.Ast.Sfor
                  ( s (Rf_lang.Ast.Slet (v, e (Rf_lang.Ast.Eint 0))),
                    e
                      (Rf_lang.Ast.Ebin
                         (Rf_lang.Ast.Lt, e (Rf_lang.Ast.Evar v), e (Rf_lang.Ast.Eint bound))),
                    s
                      (Rf_lang.Ast.Sassign
                         ( v,
                           e
                             (Rf_lang.Ast.Ebin
                                (Rf_lang.Ast.Add, e (Rf_lang.Ast.Evar v), e (Rf_lang.Ast.Eint 1)))
                         )),
                    body ))) );
        ( 2,
          let* c = gen_bool_expr scope 1 in
          let* t = gen_block scope (depth - 1) in
          let* eo = opt (gen_block scope (depth - 1)) in
          return (s (Rf_lang.Ast.Sif (c, t, eo))) );
        ( 2,
          let* l = oneofl locks in
          let* b = gen_block scope (depth - 1) in
          return (s (Rf_lang.Ast.Ssync (l, b))) );
        ( 1,
          let* l = oneofl locks in
          return (s (Rf_lang.Ast.Snotify_all l)) );
        (1, return (s Rf_lang.Ast.Ssleep));
        (1, return (s Rf_lang.Ast.Sskip));
        ( 1,
          let* ex = gen_int_expr scope 1 in
          return (s (Rf_lang.Ast.Sprint ex)) );
      ]

and gen_block scope depth =
  let* n = map (fun n -> 1 + (n mod 3)) small_nat in
  let rec go k acc = if k = 0 then return (List.rev acc)
    else
      let* st = gen_stmt scope (depth - 1) in
      go (k - 1) (st :: acc)
  in
  go n []

let gen_thread idx =
  let scope = new_scope () in
  let* body = gen_block scope 3 in
  return { Rf_lang.Ast.tname = Printf.sprintf "t%d" idx; tbody = body; tpos = pos }

let gen_program : Rf_lang.Ast.program t =
  let* nthreads = map (fun n -> 2 + (n mod 2)) small_nat in
  let rec threads k acc =
    if k = nthreads then return (List.rev acc)
    else
      let* t = gen_thread k in
      threads (k + 1) (t :: acc)
  in
  let* threads = threads 0 [] in
  return
    {
      Rf_lang.Ast.file = "gen.rfl";
      shareds =
        List.map
          (fun name ->
            {
              Rf_lang.Ast.gname = name;
              gty = Rf_lang.Ast.Tint;
              ginit = e (Rf_lang.Ast.Eint 0);
              garray = None;
              gpos = pos;
            })
          int_globals
        @ List.map
            (fun name ->
              {
                Rf_lang.Ast.gname = name;
                gty = Rf_lang.Ast.Tbool;
                ginit = e (Rf_lang.Ast.Ebool false);
                garray = None;
                gpos = pos;
              })
            bool_globals
        @ List.map
            (fun (name, n) ->
              {
                Rf_lang.Ast.gname = name;
                gty = Rf_lang.Ast.Tint;
                ginit = e (Rf_lang.Ast.Eint 0);
                garray = Some n;
                gpos = pos;
              })
            arrays;
      locks = List.map (fun l -> (l, pos)) locks;
      funcs = [];
      threads;
    }

let arbitrary_program =
  QCheck.make ~print:Rf_lang.Pretty.program_to_string gen_program
