(** Tokens of RFL, the little concurrent language used to write closed
    litmus programs (the paper's Figure 1 / Figure 2 style) against the
    instrumented runtime. *)

type pos = { line : int; col : int }

let pp_pos ppf p = Fmt.pf ppf "%d:%d" p.line p.col

type t =
  (* literals and identifiers *)
  | INT of int
  | STRING of string
  | IDENT of string
  (* keywords *)
  | SHARED
  | THREAD
  | AFTER
  | DEF
  | LET
  | IF
  | ELSE
  | WHILE
  | FOR
  | RETURN
  | SYNC
  | LOCK
  | UNLOCK
  | WAIT
  | NOTIFY
  | NOTIFYALL
  | SLEEP
  | ASSERT
  | ERROR_KW
  | PRINT
  | SKIP
  | TRUE
  | FALSE
  | INT_T
  | BOOL_T
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ARROW
  | ASSIGN
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | AND
  | OR
  | NOT
  | EOF

let keyword_of_string = function
  | "shared" -> Some SHARED
  | "thread" -> Some THREAD
  | "after" -> Some AFTER
  | "def" -> Some DEF
  | "let" -> Some LET
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "while" -> Some WHILE
  | "for" -> Some FOR
  | "return" -> Some RETURN
  | "sync" -> Some SYNC
  | "lock" -> Some LOCK
  | "unlock" -> Some UNLOCK
  | "wait" -> Some WAIT
  | "notify" -> Some NOTIFY
  | "notifyall" -> Some NOTIFYALL
  | "sleep" -> Some SLEEP
  | "assert" -> Some ASSERT
  | "error" -> Some ERROR_KW
  | "print" -> Some PRINT
  | "skip" -> Some SKIP
  | "true" -> Some TRUE
  | "false" -> Some FALSE
  | "int" -> Some INT_T
  | "bool" -> Some BOOL_T
  | _ -> None

let pp ppf = function
  | INT n -> Fmt.pf ppf "INT(%d)" n
  | STRING s -> Fmt.pf ppf "STRING(%S)" s
  | IDENT s -> Fmt.pf ppf "IDENT(%s)" s
  | SHARED -> Fmt.string ppf "shared"
  | THREAD -> Fmt.string ppf "thread"
  | AFTER -> Fmt.string ppf "after"
  | DEF -> Fmt.string ppf "def"
  | LET -> Fmt.string ppf "let"
  | IF -> Fmt.string ppf "if"
  | ELSE -> Fmt.string ppf "else"
  | WHILE -> Fmt.string ppf "while"
  | FOR -> Fmt.string ppf "for"
  | RETURN -> Fmt.string ppf "return"
  | SYNC -> Fmt.string ppf "sync"
  | LOCK -> Fmt.string ppf "lock"
  | UNLOCK -> Fmt.string ppf "unlock"
  | WAIT -> Fmt.string ppf "wait"
  | NOTIFY -> Fmt.string ppf "notify"
  | NOTIFYALL -> Fmt.string ppf "notifyall"
  | SLEEP -> Fmt.string ppf "sleep"
  | ASSERT -> Fmt.string ppf "assert"
  | ERROR_KW -> Fmt.string ppf "error"
  | PRINT -> Fmt.string ppf "print"
  | SKIP -> Fmt.string ppf "skip"
  | TRUE -> Fmt.string ppf "true"
  | FALSE -> Fmt.string ppf "false"
  | INT_T -> Fmt.string ppf "int"
  | BOOL_T -> Fmt.string ppf "bool"
  | LPAREN -> Fmt.string ppf "("
  | RPAREN -> Fmt.string ppf ")"
  | LBRACE -> Fmt.string ppf "{"
  | RBRACE -> Fmt.string ppf "}"
  | LBRACKET -> Fmt.string ppf "["
  | RBRACKET -> Fmt.string ppf "]"
  | SEMI -> Fmt.string ppf ";"
  | COMMA -> Fmt.string ppf ","
  | ARROW -> Fmt.string ppf "->"
  | ASSIGN -> Fmt.string ppf "="
  | PLUS -> Fmt.string ppf "+"
  | MINUS -> Fmt.string ppf "-"
  | STAR -> Fmt.string ppf "*"
  | SLASH -> Fmt.string ppf "/"
  | PERCENT -> Fmt.string ppf "%"
  | EQ -> Fmt.string ppf "=="
  | NEQ -> Fmt.string ppf "!="
  | LT -> Fmt.string ppf "<"
  | LE -> Fmt.string ppf "<="
  | GT -> Fmt.string ppf ">"
  | GE -> Fmt.string ppf ">="
  | AND -> Fmt.string ppf "&&"
  | OR -> Fmt.string ppf "||"
  | NOT -> Fmt.string ppf "!"
  | EOF -> Fmt.string ppf "<eof>"

let to_string t = Fmt.str "%a" pp t
