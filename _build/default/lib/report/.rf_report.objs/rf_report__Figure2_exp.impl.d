lib/report/figure2_exp.ml: Float Fmt Fun Fuzzer List Printf Racefuzzer Rapos Rf_runtime Rf_workloads Strategy String
