(** Unified detector interface and drivers.

    Wraps the concrete detectors behind one record type so callers (phase-1
    drivers, the CLI, benches) can treat them uniformly, either as engine
    listeners (online) or over a recorded trace (offline). *)

open Rf_util
open Rf_events

type t = {
  dname : string;
  feed : Event.t -> unit;
  races : unit -> Race.t list;
  pairs : unit -> Site.Pair.Set.t;
}

let name t = t.dname
let feed t ev = t.feed ev
let races t = t.races ()
let pairs t = t.pairs ()
let race_count t = Site.Pair.Set.cardinal (t.pairs ())

let hybrid ?cap ?governor () =
  let d = Hybrid.create ?cap ?governor () in
  {
    dname = "hybrid";
    feed = Hybrid.feed d;
    races = (fun () -> Hybrid.races d);
    pairs = (fun () -> Hybrid.pairs d);
  }

let hb_precise ?cap ?governor () =
  let d = Hb_precise.create ?cap ?governor () in
  {
    dname = "happens-before";
    feed = Hb_precise.feed d;
    races = (fun () -> Hb_precise.races d);
    pairs = (fun () -> Hb_precise.pairs d);
  }

let fasttrack ?governor () =
  let d = Fasttrack.create ?governor () in
  {
    dname = "fasttrack";
    feed = Fasttrack.feed d;
    races = (fun () -> Fasttrack.races d);
    pairs = (fun () -> Fasttrack.pairs d);
  }

let eraser ?site_cap ?governor () =
  let d = Eraser.create ?site_cap ?governor () in
  {
    dname = "eraser";
    feed = Eraser.feed d;
    races = (fun () -> Eraser.races d);
    pairs = (fun () -> Eraser.pairs d);
  }

(** Feed a recorded trace through a detector (offline analysis). *)
let run_on_trace t trace =
  Trace.iter (fun ev -> feed t ev) trace;
  races t
