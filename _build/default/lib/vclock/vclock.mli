(** Vector clocks for happens-before reasoning (paper §2.1: the relation
    "is done by maintaining a vector clock with every thread").

    A clock maps thread ids to logical timestamps; absent entries read 0.
    [join] is the least upper bound of the [leq] partial order and [bottom]
    its unit (laws are property-tested). *)

type t

val bottom : t
(** The all-zero clock. *)

val get : t -> int -> int
(** [get c tid] — [tid]'s component (0 when absent). *)

val set : t -> int -> int -> t
(** Functional update; setting 0 removes the entry. *)

val tick : t -> int -> t
(** Increment one component: a thread takes a local step. *)

val of_list : (int * int) list -> t
val to_list : t -> (int * int) list

val join : t -> t -> t
(** Componentwise maximum — receiving knowledge of another clock. *)

val leq : t -> t -> bool
(** [leq a b] — [a] happens-before-or-equals [b]. *)

val lt : t -> t -> bool
(** Strict happens-before. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool
(** Neither clock precedes the other: the racing condition. *)

val compare : t -> t -> int
(** Arbitrary total order for containers (not the causal order). *)

val is_bottom : t -> bool
val cardinal : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
