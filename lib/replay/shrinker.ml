type stats = {
  sh_steps_before : int;
  sh_steps_after : int;
  sh_switches_before : int;
  sh_switches_after : int;
  sh_oracle_runs : int;
}

let pp_stats ppf s =
  Fmt.pf ppf "steps %d -> %d, switches %d -> %d (%d oracle runs)"
    s.sh_steps_before s.sh_steps_after s.sh_switches_before s.sh_switches_after
    s.sh_oracle_runs

(* The shrink order: fewer decisions first, fewer preemptions second.
   Every acceptance is strict under this measure, which is what makes the
   search terminate and {!minimize} idempotent at its fixpoint. *)
let measure s = (Schedule.length s, Schedule.switches s)

let prefix sched k =
  Schedule.with_steps sched (Array.sub sched.Schedule.steps 0 k)

(* Shortest reproducing prefix of a validated [exact] schedule, by binary
   search.  The returned prefix is always one the oracle confirmed (or
   [exact] itself): [hi] starts validated and only moves to validated
   midpoints, so fuel exhaustion degrades minimality, never soundness. *)
let truncate try_oracle exact =
  let n = Schedule.length exact in
  if n = 0 then exact
  else
    match try_oracle (prefix exact 0) with
    | Some _ -> prefix exact 0
    | None ->
        let rec go lo hi =
          if hi - lo <= 1 then prefix exact hi
          else
            let mid = (lo + hi) / 2 in
            match try_oracle (prefix exact mid) with
            | Some _ -> go lo mid
            | None -> go mid hi
        in
        go 0 n

(* Zeller–Hildebrandt ddmin, complement-deletion form: split into [g]
   chunks, try dropping each chunk; on success restart at coarser
   granularity, otherwise refine until chunks are single steps. *)
let ddmin try_oracle fuel_left sched =
  let current = ref sched in
  let g = ref 2 in
  let running = ref true in
  while !running && fuel_left () do
    let steps = (!current).Schedule.steps in
    let n = Array.length steps in
    if n < 2 || !g > n then running := false
    else begin
      let g' = min !g n in
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < g' && fuel_left () do
        let lo = !i * n / g' and hi = (!i + 1) * n / g' in
        (if hi > lo then
           let cand =
             Schedule.with_steps !current
               (Array.append (Array.sub steps 0 lo) (Array.sub steps hi (n - hi)))
           in
           match try_oracle cand with
           | Some _ ->
               current := cand;
               found := true
           | None -> ());
        incr i
      done;
      if !found then g := max (!g - 1) 2
      else if g' >= n then running := false
      else g := min (2 * g') n
    end
  done;
  !current

(* Maximal same-tid blocks as (start, len) pairs, in order. *)
let thread_runs (steps : Schedule.step array) =
  let n = Array.length steps in
  let out = ref [] in
  let start = ref 0 in
  for i = 1 to n do
    if i = n || steps.(i).Schedule.st_tid <> steps.(!start).Schedule.st_tid then begin
      out := (!start, i - !start) :: !out;
      start := i
    end
  done;
  Array.of_list (List.rev !out)

(* Context-switch coalescing (the dejafu move): in a run pattern
   A B A, hoist the second A-block next to the first (A A B), which
   merges the two A-blocks and removes at least two preemptions.  Step
   count is unchanged, so each acceptance strictly shrinks the switch
   component of the measure. *)
let coalesce try_oracle fuel_left sched =
  let current = ref sched in
  let progress = ref true in
  while !progress && fuel_left () do
    progress := false;
    let steps = (!current).Schedule.steps in
    let rs = thread_runs steps in
    let nr = Array.length rs in
    let tid_of (start, _) = steps.(start).Schedule.st_tid in
    let i = ref 0 in
    while (not !progress) && !i + 2 < nr && fuel_left () do
      (if tid_of rs.(!i) = tid_of rs.(!i + 2) then begin
         let s1, l1 = rs.(!i + 1) and s2, l2 = rs.(!i + 2) in
         let cand_steps =
           Array.concat
             [
               Array.sub steps 0 s1;
               Array.sub steps s2 l2;
               Array.sub steps s1 l1;
               Array.sub steps (s2 + l2) (Array.length steps - s2 - l2);
             ]
         in
         let cand = Schedule.with_steps !current cand_steps in
         if Schedule.switches cand < Schedule.switches !current then
           match try_oracle cand with
           | Some _ ->
               current := cand;
               progress := true
           | None -> ()
       end);
      incr i
    done
  done;
  !current

let minimize ?(fuel = 500) ~oracle (sched0 : Schedule.t) :
    (Schedule.t * stats) option =
  let runs = ref 0 in
  let fuel_left () = !runs < fuel in
  let try_oracle cand =
    if not (fuel_left ()) then None
    else begin
      incr runs;
      oracle cand
    end
  in
  let finish best =
    ( best,
      {
        sh_steps_before = Schedule.length sched0;
        sh_steps_after = Schedule.length best;
        sh_switches_before = Schedule.switches sched0;
        sh_switches_after = Schedule.switches best;
        sh_oracle_runs = !runs;
      } )
  in
  match try_oracle sched0 with
  | None -> None
  | Some exact0 ->
      (* [best] is invariantly an exact prefix of a witnessed reproducing
         run — the only thing we ever return. *)
      let best = ref (truncate try_oracle exact0) in
      let improved = ref true in
      while !improved && fuel_left () do
        improved := false;
        let edited = coalesce try_oracle fuel_left (ddmin try_oracle fuel_left !best) in
        if edited != !best then
          (* Re-record the edited (possibly inexact) schedule into a real
             run, then re-truncate so the round's winner is exact again. *)
          match try_oracle edited with
          | None -> ()
          | Some exact ->
              let cand = truncate try_oracle exact in
              if measure cand < measure !best then begin
                best := cand;
                improved := true
              end
      done;
      Some (finish !best)
