(** Offline detection over binary recordings — see the interface for the
    sharding/determinism argument. *)

open Rf_util
open Rf_events

let shard_of_loc ~shards loc =
  if shards <= 1 then 0 else Loc.hash loc mod shards

let feed_shard ~shard ~shards d bt =
  Btrace.iter
    ~keep_mem:(fun loc -> shard_of_loc ~shards loc = shard)
    (Detector.feed d) bt

let replay f recordings = List.iter (fun bt -> Btrace.iter f bt) recordings

let run_shard ~shard ~shards ~make recordings =
  let d = make () in
  List.iter (fun bt -> feed_shard ~shard ~shards d bt) recordings;
  (Detector.races d, Detector.stats d)

(* Dedup by statement pair, keeping the lowest-shard witness: shard
   assignment is a pure function of the location, so the surviving
   witness — hence the merged list — is independent of evaluation
   order. *)
let merge per_shard =
  let seen = ref Site.Pair.Set.empty in
  List.concat per_shard
  |> List.filter (fun (r : Race.t) ->
         if Site.Pair.Set.mem r.Race.pair !seen then false
         else begin
           seen := Site.Pair.Set.add r.Race.pair !seen;
           true
         end)
  |> List.sort (fun (a : Race.t) (b : Race.t) ->
         Site.Pair.compare a.Race.pair b.Race.pair)

(* Shard stats aggregate exactly: locations partition across shards, so
   entries and memory events sum to the inline totals, and a sampling
   miss bound — a max over locations — is the max over shard bounds. *)
let merge_stats per_shard =
  List.fold_left
    (fun acc (s : Detector.stats) ->
      {
        Detector.st_entries = acc.Detector.st_entries + s.Detector.st_entries;
        st_mem_events = acc.Detector.st_mem_events + s.Detector.st_mem_events;
        st_miss_bound =
          (match (acc.Detector.st_miss_bound, s.Detector.st_miss_bound) with
          | None, b | b, None -> b
          | Some a, Some b -> Some (Float.max a b));
      })
    { Detector.st_entries = 0; st_mem_events = 0; st_miss_bound = None }
    per_shard

let detect_stats ?(shards = 1) ?(parallel = false) ~make recordings =
  let shards = max 1 shards in
  if shards = 1 then
    let races, stats = run_shard ~shard:0 ~shards:1 ~make recordings in
    (races, stats)
  else
    let per_shard =
      if not parallel then
        List.init shards (fun shard -> run_shard ~shard ~shards ~make recordings)
      else
        List.init shards (fun shard ->
            Domain.spawn (fun () -> run_shard ~shard ~shards ~make recordings))
        |> List.map Domain.join
    in
    (merge (List.map fst per_shard), merge_stats (List.map snd per_shard))

let detect ?shards ?parallel ~make recordings =
  fst (detect_stats ?shards ?parallel ~make recordings)
