lib/collections/jcoll.mli: Lock Rf_runtime
