(** Compact binary execution traces: the recording half of the offline
    detection pipeline.

    The textual {!Serial} format is for archiving and inspection; this
    format is for the engine hot path.  A {!writer} appends fixed-width,
    id-keyed records into a [Buffer]-backed block arena — no [Event.t]
    is allocated, no lockset is snapshotted — so a detector-free engine
    run can record at a small fraction of the cost of feeding an inline
    detector.  The sealed recording is then decoded (possibly several
    times, by several detectors, possibly sharded by memory location)
    into the ordinary {!Event.t} stream.

    {2 Wire format (version 1)}

    {v
    header   := "RFBT" u16:version
    stream   := header frame* trailer
    frame    := u32:len payload[len] u64:fnv1a64(payload)   (len > 0)
    trailer  := u32:0 u64:event_count
    payload  := record*
    record   := tag:u8 fields...
    v}

    All integers are little-endian; strings are [u32] length-prefixed
    bytes.  Records are either {e definitions} — a site, location or
    lockset is defined once, on first use, and referenced by id
    afterwards — or {e events}, whose fields are ids and small scalars
    only (a [Mem] record is 17 bytes).  Frames are sealed with an
    FNV-1a-64 checksum like the campaign journal, so torn or bit-flipped
    recordings are rejected with a precise error instead of decoding
    into garbage.  The trailer (a zero frame length, impossible for a
    real frame, plus the sealed event count) makes truncation at a frame
    boundary detectable too: frames are self-delimiting, so without it a
    recording missing its tail frames would decode as a valid shorter
    stream.

    Sites are re-interned on decode from their structural key
    (file, line, col, label), so a recording read back in a fresh
    process compares site-equal with live detection — the same contract
    as {!Serial}. *)

open Rf_util

exception Corrupt of string
(** Raised on malformed input: bad magic, unsupported version, truncated
    frame, checksum mismatch, unknown record tag, or a reference to an
    undefined site/location/lockset id.  The message pinpoints the
    offending byte offset. *)

val version : int

type t
(** A sealed recording. *)

(** {1 Recording} *)

type writer

val writer : ?block:int -> unit -> writer
(** A fresh recording.  [block] (default 64 KiB) is the frame
    granularity: records accumulate in a scratch block that is sealed
    into a checksummed frame whenever it fills. *)

val intern_lockset : writer -> Lockset.t -> int
(** Intern a lockset, emitting its definition record if new.  Callers on
    a hot path should cache the returned id across events — the engine
    re-interns only when a thread's lockset actually changes. *)

val mem :
  writer ->
  tid:int ->
  site:Site.t ->
  loc:Loc.t ->
  access:Event.access ->
  lockset_id:int ->
  unit
(** Append one memory access.  [lockset_id] must come from
    {!intern_lockset} on this writer. *)

val acquire : writer -> tid:int -> lock:int -> site:Site.t -> unit
val release : writer -> tid:int -> lock:int -> site:Site.t -> unit
val snd_ : writer -> tid:int -> msg:int -> reason:Event.sync_reason -> unit
val rcv : writer -> tid:int -> msg:int -> reason:Event.sync_reason -> unit
val start : writer -> tid:int -> name:string -> unit
val exit_ : writer -> tid:int -> unit

val add : writer -> Event.t -> unit
(** Generic append: dispatches to the specialized emitters, interning
    the event's lockset on the spot.  Convenience for tests and
    {!of_trace}; the engine uses the specialized forms directly. *)

val written : writer -> int
(** Events appended so far. *)

val seal : writer -> t
(** Flush the open block and freeze the recording.  The writer must not
    be used afterwards. *)

(** {1 Sealed recordings} *)

val byte_size : t -> int

val iter : ?keep_mem:(Loc.t -> bool) -> (Event.t -> unit) -> t -> unit
(** Decode in recording order.  [keep_mem] filters {e memory} events by
    their dynamic location before the event is materialized — the shard
    predicate of the offline detector; synchronization events are always
    delivered (clock state is stream-global).  May raise {!Corrupt} on a
    recording that bypassed {!of_string} validation. *)

val length : t -> int
(** Event count (decodes the recording; O(n)). *)

val to_trace : t -> Trace.t
val of_trace : Trace.t -> t

val to_string : t -> string

val of_string : string -> t
(** Validates the whole recording — header, framing, checksums, record
    structure and id references — raising {!Corrupt} on the first
    defect.  A returned [t] always decodes cleanly. *)

val save : string -> t -> unit
val load : string -> t
