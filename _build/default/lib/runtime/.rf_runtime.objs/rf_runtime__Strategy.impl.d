lib/runtime/strategy.ml: List Op Prng Rf_util
