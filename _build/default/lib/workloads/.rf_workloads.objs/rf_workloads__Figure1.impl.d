lib/workloads/figure1.ml: Api Lock Rf_runtime Rf_util Site Workload
