lib/detect/detector.ml: Eraser Event Fasttrack Hb_precise Hybrid Race Rf_events Rf_util Site Trace
