(** Recorded schedules: versioned, serializable scheduling-decision logs.
    See the interface for the model; this file is mostly the JSON codec
    (hand-rolled, like {!Rf_campaign.Event_log}: the toolchain has no JSON
    dependency, and the format is small enough that owning it keeps the
    version gate honest). *)

open Rf_util
open Rf_runtime

let version = "rf-schedule/1"

(* ------------------------------------------------------------------ *)
(* Stability keys                                                      *)

type site_key = { sk_file : string; sk_line : int; sk_col : int; sk_label : string }

let site_key s =
  {
    sk_file = Site.file s;
    sk_line = Site.line s;
    sk_col = Site.col s;
    sk_label = Site.label s;
  }

let intern_site k =
  Site.make ~file:k.sk_file ~line:k.sk_line ~col:k.sk_col k.sk_label

let pp_site_key ppf k =
  Fmt.pf ppf "%s:%d:%d:%s" k.sk_file k.sk_line k.sk_col k.sk_label

type kind =
  | Start
  | Pause
  | Read
  | Write
  | Acquire
  | Release
  | Wait
  | Reacquire
  | Notify
  | Notify_all
  | Fork
  | Join
  | Interrupt
  | Sleep

let kind_to_string = function
  | Start -> "start"
  | Pause -> "pause"
  | Read -> "read"
  | Write -> "write"
  | Acquire -> "acquire"
  | Release -> "release"
  | Wait -> "wait"
  | Reacquire -> "reacquire"
  | Notify -> "notify"
  | Notify_all -> "notifyAll"
  | Fork -> "fork"
  | Join -> "join"
  | Interrupt -> "interrupt"
  | Sleep -> "sleep"

let kind_of_string = function
  | "start" -> Some Start
  | "pause" -> Some Pause
  | "read" -> Some Read
  | "write" -> Some Write
  | "acquire" -> Some Acquire
  | "release" -> Some Release
  | "wait" -> Some Wait
  | "reacquire" -> Some Reacquire
  | "notify" -> Some Notify
  | "notifyAll" -> Some Notify_all
  | "fork" -> Some Fork
  | "join" -> Some Join
  | "interrupt" -> Some Interrupt
  | "sleep" -> Some Sleep
  | _ -> None

type key = { k_kind : kind; k_site : site_key option }

let key_of_pend (p : Op.pend) : key =
  let kind =
    match p with
    | Op.P_start -> Start
    | Op.P_pause -> Pause
    | Op.P_mem { access = Rf_events.Event.Read; _ } -> Read
    | Op.P_mem { access = Rf_events.Event.Write; _ } -> Write
    | Op.P_acquire _ -> Acquire
    | Op.P_release _ -> Release
    | Op.P_wait _ -> Wait
    | Op.P_reacquire _ -> Reacquire
    | Op.P_notify { all = false; _ } -> Notify
    | Op.P_notify { all = true; _ } -> Notify_all
    | Op.P_fork _ -> Fork
    | Op.P_join _ -> Join
    | Op.P_interrupt _ -> Interrupt
    | Op.P_sleep _ -> Sleep
  in
  { k_kind = kind; k_site = Option.map site_key (Op.pend_site p) }

let equal_key a b =
  a.k_kind = b.k_kind
  &&
  match (a.k_site, b.k_site) with
  | None, None -> true
  | Some x, Some y -> x = y
  | _ -> false

let pp_key ppf k =
  match k.k_site with
  | None -> Fmt.string ppf (kind_to_string k.k_kind)
  | Some s -> Fmt.pf ppf "%s @@ %a" (kind_to_string k.k_kind) pp_site_key s

(* ------------------------------------------------------------------ *)
(* Steps and schedules                                                 *)

type step = { st_tid : int; st_key : key; st_rng : int64 }

type meta = {
  m_target : string;
  m_seed : int;
  m_pair : (site_key * site_key) option;
  m_max_steps : int;
  m_steps : int;
  m_error : string option;
}

type t = { meta : meta; steps : step array }

let length t = Array.length t.steps

let switches t =
  let n = Array.length t.steps in
  let c = ref 0 in
  for i = 1 to n - 1 do
    if t.steps.(i).st_tid <> t.steps.(i - 1).st_tid then incr c
  done;
  !c

let with_steps t steps = { t with steps }

let pair t =
  Option.map
    (fun (a, b) -> Site.Pair.make (intern_site a) (intern_site b))
    t.meta.m_pair

let equal a b = a.meta = b.meta && a.steps = b.steps

(* ------------------------------------------------------------------ *)
(* Error fingerprints                                                  *)

let error_fingerprint (o : Outcome.t) : string option =
  match o.Outcome.exceptions with
  | x :: _ ->
      let where =
        match x.Outcome.raised_at with
        | Some s -> Fmt.str "%a" pp_site_key (site_key s)
        | None -> "?"
      in
      Some (Fmt.str "exn:%s@%s" (Printexc.to_string x.Outcome.exn_) where)
  | [] ->
      if o.Outcome.deadlocked <> [] then
        let sites =
          o.Outcome.blocked_at
          |> List.filter_map (fun (_, s) -> s)
          |> List.map (fun s -> Fmt.str "%a" pp_site_key (site_key s))
          |> List.sort compare
        in
        Some (Fmt.str "deadlock:%s" (String.concat ";" sites))
      else None

(* ------------------------------------------------------------------ *)
(* JSON codec.  The writer emits one step object per line so schedules
   diff and grep cleanly; the reader is a tiny recursive-descent parser
   for the full JSON subset the writer uses (objects, arrays, strings,
   ints, bools, null — no floats needed). *)

exception Format_error of string

let fail fmt = Fmt.kstr (fun s -> raise (Format_error s)) fmt

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_site_key buf k =
  Buffer.add_string buf
    (Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"label\":\"%s\"}"
       (escape k.sk_file) k.sk_line k.sk_col (escape k.sk_label))

let to_json t =
  let buf = Buffer.create (256 + (Array.length t.steps * 64)) in
  let m = t.meta in
  Buffer.add_string buf (Printf.sprintf "{\"version\":\"%s\",\n" (escape version));
  Buffer.add_string buf (Printf.sprintf " \"target\":\"%s\",\n" (escape m.m_target));
  Buffer.add_string buf (Printf.sprintf " \"seed\":%d,\n" m.m_seed);
  (match m.m_pair with
  | None -> Buffer.add_string buf " \"pair\":null,\n"
  | Some (a, b) ->
      Buffer.add_string buf " \"pair\":[";
      json_site_key buf a;
      Buffer.add_char buf ',';
      json_site_key buf b;
      Buffer.add_string buf "],\n");
  Buffer.add_string buf (Printf.sprintf " \"max_steps\":%d,\n" m.m_max_steps);
  Buffer.add_string buf (Printf.sprintf " \"steps\":%d,\n" m.m_steps);
  Buffer.add_string buf
    (Printf.sprintf " \"error\":%s,\n"
       (match m.m_error with
       | Some e -> Printf.sprintf "\"%s\"" (escape e)
       | None -> "null"));
  Buffer.add_string buf (Printf.sprintf " \"length\":%d,\n" (Array.length t.steps));
  Buffer.add_string buf (Printf.sprintf " \"switches\":%d,\n" (switches t));
  Buffer.add_string buf " \"schedule\":[";
  Array.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf
        (Printf.sprintf "{\"tid\":%d,\"op\":\"%s\"," st.st_tid
           (kind_to_string st.st_key.k_kind));
      (match st.st_key.k_site with
      | None -> Buffer.add_string buf "\"site\":null,"
      | Some k ->
          Buffer.add_string buf "\"site\":";
          json_site_key buf k;
          Buffer.add_char buf ',');
      Buffer.add_string buf (Printf.sprintf "\"rng\":\"%Ld\"}" st.st_rng))
    t.steps;
  Buffer.add_string buf "\n ]}\n";
  Buffer.contents buf

(* --- parser --- *)

type jv =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_string of string
  | J_list of jv list
  | J_obj of (string * jv) list

let parse_json (s : string) : jv =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then fail "unexpected end of input" else s.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if peek () <> c then fail "expected %C at offset %d" c !pos else advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                with _ -> fail "bad \\u escape"
              in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
          | c -> fail "bad escape \\%C" c);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> J_string (parse_string ())
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); J_obj [])
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ()
            | '}' -> advance ()
            | c -> fail "expected ',' or '}', got %C" c
          in
          members ();
          J_obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); J_list [])
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements ()
            | ']' -> advance ()
            | c -> fail "expected ',' or ']', got %C" c
          in
          elements ();
          J_list (List.rev !items)
        end
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; J_bool true)
        else fail "bad literal at offset %d" !pos
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; J_bool false)
        else fail "bad literal at offset %d" !pos
    | 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; J_null)
        else fail "bad literal at offset %d" !pos
    | _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with '0' .. '9' | '-' | '+' -> true | _ -> false
        do
          advance ()
        done;
        let tok = String.sub s start (!pos - start) in
        J_int (try int_of_string tok with _ -> fail "bad number %S" tok)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let obj_field fields k =
  match List.assoc_opt k fields with
  | Some v -> v
  | None -> fail "missing field %S" k

let j_int = function J_int i -> i | _ -> fail "expected int"
let j_string = function J_string s -> s | _ -> fail "expected string"

let j_site_key = function
  | J_obj fields ->
      {
        sk_file = j_string (obj_field fields "file");
        sk_line = j_int (obj_field fields "line");
        sk_col = j_int (obj_field fields "col");
        sk_label = j_string (obj_field fields "label");
      }
  | _ -> fail "expected site object"

let of_json text =
  match parse_json text with
  | J_obj fields ->
      let v = j_string (obj_field fields "version") in
      if v <> version then
        fail "schedule version %S, this reader speaks %S" v version;
      let meta =
        {
          m_target = j_string (obj_field fields "target");
          m_seed = j_int (obj_field fields "seed");
          m_pair =
            (match obj_field fields "pair" with
            | J_null -> None
            | J_list [ a; b ] -> Some (j_site_key a, j_site_key b)
            | _ -> fail "expected pair as null or a 2-element array");
          m_max_steps = j_int (obj_field fields "max_steps");
          m_steps = j_int (obj_field fields "steps");
          m_error =
            (match obj_field fields "error" with
            | J_null -> None
            | J_string e -> Some e
            | _ -> fail "expected error as string or null");
        }
      in
      let steps =
        match obj_field fields "schedule" with
        | J_list items ->
            List.map
              (function
                | J_obj f ->
                    let op = j_string (obj_field f "op") in
                    let kind =
                      match kind_of_string op with
                      | Some k -> k
                      | None -> fail "unknown op kind %S" op
                    in
                    {
                      st_tid = j_int (obj_field f "tid");
                      st_key =
                        {
                          k_kind = kind;
                          k_site =
                            (match obj_field f "site" with
                            | J_null -> None
                            | site -> Some (j_site_key site));
                        };
                      st_rng =
                        (let raw = j_string (obj_field f "rng") in
                         try Int64.of_string raw
                         with _ -> fail "bad rng state %S" raw);
                    }
                | _ -> fail "expected step object")
              items
        | _ -> fail "expected schedule array"
      in
      { meta; steps = Array.of_list steps }
  | _ -> fail "expected top-level object"

(* Atomic save: a kill mid-write must leave either the previous artifact
   or the complete new one, never a torn file a later [load] chokes on. *)
let save path t = Atomic_file.write_string path (to_json t)

let load path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try really_input_string ic (in_channel_length ic)
        with End_of_file -> fail "%s: truncated schedule file" path)
  in
  try of_json text
  with Format_error msg -> fail "%s: %s" path msg

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp ppf t =
  Fmt.pf ppf "schedule[%s seed=%d len=%d switches=%d%a]"
    (if t.meta.m_target = "" then "?" else t.meta.m_target)
    t.meta.m_seed (length t) (switches t)
    (fun ppf -> function
      | Some e -> Fmt.pf ppf " error=%s" e
      | None -> ())
    t.meta.m_error

let pp_narrative ppf t =
  let m = t.meta in
  Fmt.pf ppf "# Reproduction schedule (%s)@." version;
  Fmt.pf ppf "target:    %s@." (if m.m_target = "" then "<unknown>" else m.m_target);
  Fmt.pf ppf "seed:      %d@." m.m_seed;
  (match m.m_pair with
  | Some (a, b) -> Fmt.pf ppf "race set:  (%a, %a)@." pp_site_key a pp_site_key b
  | None -> Fmt.pf ppf "race set:  <none — every op is a switch point>@.");
  (match m.m_error with
  | Some e -> Fmt.pf ppf "error:     %s@." e
  | None -> Fmt.pf ppf "error:     <none recorded>@.");
  Fmt.pf ppf "decisions: %d (%d context switches)@.@." (length t) (switches t);
  Array.iteri
    (fun i st ->
      let switch = i > 0 && st.st_tid <> t.steps.(i - 1).st_tid in
      Fmt.pf ppf "%4d %s t%d: %a@." i
        (if switch then ">>" else "  ")
        st.st_tid pp_key st.st_key)
    t.steps
