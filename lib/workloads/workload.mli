(** Workload descriptor: one benchmark-program analogue plus the metadata
    Table 1 reports about it. *)

type t = {
  name : string;
  descr : string;
  sloc : int;  (** model size, reported like the paper's SLOC column *)
  program : unit -> unit;  (** fresh main; run inside an engine *)
  known_real_races : int option;  (** paper column 8; [None] renders '-' *)
  expected_real : int option;  (** planted real races (asserted by tests) *)
  interactive : bool;  (** paper omits runtime columns for jigsaw *)
  static : Rf_static.Static.t option;
      (** hand-built {!Rf_static.Static.Model} of the workload's shared
          accesses, for the [--static-filter] pre-filter; [None] = no
          model, campaigns run unfiltered *)
}

val make :
  ?known_real_races:int option ->
  ?expected_real:int option ->
  ?interactive:bool ->
  ?static:Rf_static.Static.t option ->
  name:string ->
  descr:string ->
  sloc:int ->
  (unit -> unit) ->
  t

val pp : Format.formatter -> t -> unit
