(** Static race pre-filter.

    A flow-insensitive-but-sound analysis of which candidate pairs of
    statement sites can possibly race, run before RaceFuzzer's phase 2
    spends a full randomized execution per pair (the RacerF observation:
    most candidate pairs are statically refutable).  Facts are computed
    either from an RFL AST ({!of_program}) or declared by hand for embedded
    workload models ({!Model}).

    Three fact families, each with an explicit soundness direction:

    - {b thread escape} — the set of threads that may execute each site
      ({e over}-approximated through the call graph).  A location touched
      by at most one thread cannot race.
    - {b must-hold locksets} — locks that are provably held whenever the
      site executes ({e under}-approximated: branch join is intersection,
      loops reach a fixpoint by intersection, calls subtract every lock
      their callee closure might release).  A lock held at both sites of a
      pair excludes adjacency.
    - {b fork/join order} — pairs of threads strictly ordered by the
      spawn/join structure ({e under}-approximated from the declared
      [after] DAG plus the main thread's sequential fork loop).  Ordered
      threads never run concurrently.

    {!classify} composes them into [Impossible | Likely | Unknown] with a
    machine-checkable reason; [Impossible] is the only verdict the campaign
    acts on, so every approximation above errs away from it. *)

open Rf_util
module SS = Set.Make (String)

type reason =
  | No_write  (** both sites only read the location *)
  | Single_thread  (** at most one thread ever reaches either site *)
  | Fork_join_ordered
      (** every pair of threads reaching the two sites is strictly ordered
          by fork/join structure *)
  | Common_lock of string  (** this lock is must-held at both sites *)

type verdict = Impossible of reason | Likely | Unknown of string

let reason_to_string = function
  | No_write -> "no-write"
  | Single_thread -> "single-thread"
  | Fork_join_ordered -> "fork-join-ordered"
  | Common_lock l -> "common-lock:" ^ l

let verdict_to_string = function
  | Impossible r -> "impossible:" ^ reason_to_string r
  | Likely -> "likely"
  | Unknown why -> "unknown:" ^ why

let pp_verdict ppf v = Fmt.string ppf (verdict_to_string v)

type site_facts = {
  sf_var : string;  (** memory location (array = one location, all indices) *)
  sf_write : bool;
  sf_threads : SS.t;  (** over-approx: threads that may execute this site *)
  sf_locks : SS.t;  (** under-approx: locks held whenever this site runs *)
}

type t = {
  facts : site_facts Site.Map.t;
  ordered : (string * string) list;
      (** transitively closed: [(a, b)] means thread [a] is dead before
          thread [b] is forked *)
}

let facts_of t site = Site.Map.find_opt site t.facts
let sites t = List.map fst (Site.Map.bindings t.facts)

let is_ordered t a b =
  List.exists (fun (x, y) -> String.equal x a && String.equal y b) t.ordered

(* Two distinct threads may run concurrently unless fork/join order
   separates them; a thread never runs concurrently with itself. *)
let may_parallel t a b =
  (not (String.equal a b)) && (not (is_ordered t a b)) && not (is_ordered t b a)

(** A location escapes when two threads that may run in parallel both touch
    it. *)
let escaped t var =
  let threads =
    Site.Map.fold
      (fun _ f acc -> if String.equal f.sf_var var then SS.union f.sf_threads acc else acc)
      t.facts SS.empty
  in
  SS.exists (fun a -> SS.exists (fun b -> may_parallel t a b) threads) threads

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

let classify t pair =
  let s1 = Site.Pair.fst pair and s2 = Site.Pair.snd pair in
  match (Site.Map.find_opt s1 t.facts, Site.Map.find_opt s2 t.facts) with
  | None, _ | _, None ->
      (* a site the analysis never saw (e.g. model code without a static
         model): no claim at all *)
      Unknown "no-facts"
  | Some f1, Some f2 ->
      if not (String.equal f1.sf_var f2.sf_var) then Unknown "different-locations"
      else if (not f1.sf_write) && not f2.sf_write then Impossible No_write
      else
        let cross =
          SS.exists
            (fun a -> SS.exists (fun b -> may_parallel t a b) f2.sf_threads)
            f1.sf_threads
        in
        if not cross then
          if SS.cardinal (SS.union f1.sf_threads f2.sf_threads) <= 1 then
            Impossible Single_thread
          else Impossible Fork_join_ordered
        else
          match SS.min_elt_opt (SS.inter f1.sf_locks f2.sf_locks) with
          | Some l -> Impossible (Common_lock l)
          | None -> Likely

let impossible t pair = match classify t pair with Impossible _ -> true | _ -> false

(** All unordered pairs of sites on the same location (including reflexive
    pairs: one statement racing with itself in two threads) — the
    syntactic candidate universe a location-based phase 1 starts from. *)
let universe t =
  Site.Map.fold
    (fun s1 f1 acc ->
      Site.Map.fold
        (fun s2 f2 acc ->
          if Site.compare s1 s2 <= 0 && String.equal f1.sf_var f2.sf_var then
            Site.Pair.Set.add (Site.Pair.make s1 s2) acc
          else acc)
        t.facts acc)
    t.facts Site.Pair.Set.empty

type counts = { n_impossible : int; n_likely : int; n_unknown : int }

let no_counts = { n_impossible = 0; n_likely = 0; n_unknown = 0 }

let count_verdict c = function
  | Impossible _ -> { c with n_impossible = c.n_impossible + 1 }
  | Likely -> { c with n_likely = c.n_likely + 1 }
  | Unknown _ -> { c with n_unknown = c.n_unknown + 1 }

let count t pairs =
  Site.Pair.Set.fold (fun p c -> count_verdict c (classify t p)) pairs no_counts

let universe_counts t = count t (universe t)

(* ------------------------------------------------------------------ *)
(* Transitive closure over thread-order edges                          *)

let close_order names edges =
  let reach = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.replace reach (a, b) ()) edges;
  (* Floyd-Warshall on the (small) thread set *)
  List.iter
    (fun k ->
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              if Hashtbl.mem reach (i, k) && Hashtbl.mem reach (k, j) then
                Hashtbl.replace reach (i, j) ())
            names)
        names)
    names;
  Hashtbl.fold (fun (a, b) () acc -> (a, b) :: acc) reach []
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Hand-declared models for embedded (OCaml) workloads                 *)

module Model = struct
  type access = {
    m_site : Site.t;
    m_var : string;
    m_write : bool;
    m_thread : string;
    m_locks : SS.t;
  }

  type builder = {
    mutable accesses : access list;
    mutable orders : (string * string) list;
    mutable threads : SS.t;
  }

  let create () = { accesses = []; orders = []; threads = SS.empty }

  let access b ~site ~var ~write ~thread ~locks =
    b.threads <- SS.add thread b.threads;
    b.accesses <-
      { m_site = site; m_var = var; m_write = write; m_thread = thread;
        m_locks = SS.of_list locks }
      :: b.accesses

  (** [order b ~first ~then_]: thread [first] is joined before [then_] is
      forked. *)
  let order b ~first ~then_ =
    b.threads <- SS.add first (SS.add then_ b.threads);
    b.orders <- (first, then_) :: b.orders

  let build b =
    let facts =
      List.fold_left
        (fun m a ->
          let merged =
            match Site.Map.find_opt a.m_site m with
            | None ->
                {
                  sf_var = a.m_var;
                  sf_write = a.m_write;
                  sf_threads = SS.singleton a.m_thread;
                  sf_locks = a.m_locks;
                }
            | Some f ->
                (* one site, many occurrences: threads union (over-approx),
                   locks intersect (under-approx) *)
                {
                  f with
                  sf_write = f.sf_write || a.m_write;
                  sf_threads = SS.add a.m_thread f.sf_threads;
                  sf_locks = SS.inter f.sf_locks a.m_locks;
                }
          in
          Site.Map.add a.m_site merged m)
        Site.Map.empty (List.rev b.accesses)
    in
    { facts; ordered = close_order (SS.elements b.threads) b.orders }
end

(* ------------------------------------------------------------------ *)
(* RFL AST analysis                                                    *)

module A = Rf_lang.Ast

(* Collect names of functions called anywhere in an expression / block. *)
let rec calls_in_expr acc (e : A.expr) =
  match e.A.e with
  | A.Eint _ | A.Ebool _ | A.Estring _ | A.Evar _ -> acc
  | A.Eindex (_, i) -> calls_in_expr acc i
  | A.Ebin (_, l, r) -> calls_in_expr (calls_in_expr acc l) r
  | A.Eneg x | A.Enot x -> calls_in_expr acc x
  | A.Ecall (f, args) -> List.fold_left calls_in_expr (SS.add f acc) args

let rec calls_in_stmt acc (st : A.stmt) =
  match st.A.s with
  | A.Sassign (_, e) | A.Slet (_, e) | A.Sassert e | A.Sprint e -> calls_in_expr acc e
  | A.Sindex_assign (_, i, e) -> calls_in_expr (calls_in_expr acc i) e
  | A.Sif (c, t, eo) ->
      let acc = calls_in_block (calls_in_expr acc c) t in
      Option.fold ~none:acc ~some:(calls_in_block acc) eo
  | A.Swhile (c, b) -> calls_in_block (calls_in_expr acc c) b
  | A.Sfor (i, c, s, b) ->
      calls_in_block (calls_in_stmt (calls_in_expr (calls_in_stmt acc i) c) s) b
  | A.Ssync (_, b) -> calls_in_block acc b
  | A.Slock _ | A.Sunlock _ | A.Swait _ | A.Snotify _ | A.Snotify_all _ | A.Ssleep
  | A.Serror _ | A.Sskip ->
      acc
  | A.Sreturn eo -> Option.fold ~none:acc ~some:(calls_in_expr acc) eo
  | A.Scall (f, args) -> List.fold_left calls_in_expr (SS.add f acc) args

and calls_in_block acc b = List.fold_left calls_in_stmt acc b

(* Locks a block may textually release ([unlock]; [wait] re-acquires before
   returning, so it never invalidates must-hold downstream). *)
let rec unlocks_in_stmt acc (st : A.stmt) =
  match st.A.s with
  | A.Sunlock l -> SS.add l acc
  | A.Sif (_, t, eo) ->
      let acc = unlocks_in_block acc t in
      Option.fold ~none:acc ~some:(unlocks_in_block acc) eo
  | A.Swhile (_, b) | A.Ssync (_, b) -> unlocks_in_block acc b
  | A.Sfor (i, _, s, b) ->
      unlocks_in_block (unlocks_in_stmt (unlocks_in_stmt acc i) s) b
  | _ -> acc

and unlocks_in_block acc b = List.fold_left unlocks_in_stmt acc b

let of_program (prog : A.program) : t =
  let file = prog.A.file in
  let site (pos : Rf_lang.Token.pos) label =
    Site.make ~file ~line:pos.Rf_lang.Token.line ~col:pos.Rf_lang.Token.col label
  in
  let globals =
    List.fold_left (fun s (g : A.shared_decl) -> SS.add g.A.gname s) SS.empty
      prog.A.shareds
  in
  let funcs = Hashtbl.create 8 in
  List.iter (fun (f : A.func) -> Hashtbl.replace funcs f.A.fname f) prog.A.funcs;
  (* call-graph closure: for each function, every function transitively
     reachable from it (including itself) *)
  let closure_of direct =
    let rec grow seen frontier =
      match frontier with
      | [] -> seen
      | f :: rest ->
          if SS.mem f seen then grow seen rest
          else
            let callees =
              match Hashtbl.find_opt funcs f with
              | None -> SS.empty
              | Some fn -> calls_in_block SS.empty fn.A.fbody
            in
            grow (SS.add f seen) (SS.elements callees @ rest)
    in
    grow SS.empty (SS.elements direct)
  in
  (* locks a call to [f] might have released by the time it returns *)
  let release_closure f =
    SS.fold
      (fun g acc ->
        match Hashtbl.find_opt funcs g with
        | None -> acc
        | Some fn -> SS.union acc (unlocks_in_block SS.empty fn.A.fbody))
      (closure_of (SS.singleton f))
      SS.empty
  in
  let release_of_calls calls =
    SS.fold (fun f acc -> SS.union acc (release_closure f)) calls SS.empty
  in
  (* threads that may (transitively) execute each function's body *)
  let reach = Hashtbl.create 8 in
  List.iter
    (fun (t : A.thread_decl) ->
      let cl = closure_of (calls_in_block SS.empty t.A.tbody) in
      SS.iter
        (fun f ->
          let cur = Option.value ~default:SS.empty (Hashtbl.find_opt reach f) in
          Hashtbl.replace reach f (SS.add t.A.tname cur))
        cl)
    prog.A.threads;
  (* --- the walker: record sites under the current must-lockset --- *)
  let tbl : (Site.t, site_facts) Hashtbl.t = Hashtbl.create 64 in
  let record ~threads ~locks s ~var ~write =
    match Hashtbl.find_opt tbl s with
    | None ->
        Hashtbl.replace tbl s
          { sf_var = var; sf_write = write; sf_threads = threads; sf_locks = locks }
    | Some f ->
        Hashtbl.replace tbl s
          {
            f with
            sf_write = f.sf_write || write;
            sf_threads = SS.union f.sf_threads threads;
            sf_locks = SS.inter f.sf_locks locks;
          }
  in
  (* [recording=false] walks are pure lock-transfer passes (loop fixpoints
     run the body repeatedly; only the converged pass records). *)
  let rec walk_expr ~recording ~threads ~locals locks (e : A.expr) =
    if recording then
      match e.A.e with
      | A.Evar name ->
          if (not (SS.mem name locals)) && SS.mem name globals then
            record ~threads ~locks (site e.A.epos (name ^ "(read)")) ~var:name
              ~write:false
      | A.Eindex (name, i) ->
          walk_expr ~recording ~threads ~locals locks i;
          if SS.mem name globals then
            record ~threads ~locks
              (site e.A.epos (Fmt.str "%s[](read)" name))
              ~var:name ~write:false
      | A.Ebin (_, l, r) ->
          walk_expr ~recording ~threads ~locals locks l;
          walk_expr ~recording ~threads ~locals locks r
      | A.Eneg x | A.Enot x -> walk_expr ~recording ~threads ~locals locks x
      | A.Ecall (_, args) ->
          List.iter (walk_expr ~recording ~threads ~locals locks) args
      | A.Eint _ | A.Ebool _ | A.Estring _ -> ()
  in
  let rec walk_stmt ~recording ~threads locals locks (st : A.stmt) :
      SS.t * SS.t =
    (* returns (locals, locks) after the statement *)
    let pos = st.A.spos in
    (* any call reachable from this statement's expressions may release
       locks; under-approximate by assuming it already has *)
    let locks =
      let calls = calls_in_stmt SS.empty { st with A.s = simple_view st.A.s } in
      if SS.is_empty calls then locks else SS.diff locks (release_of_calls calls)
    in
    let we e = walk_expr ~recording ~threads ~locals locks e in
    match st.A.s with
    | A.Sassign (name, e) ->
        we e;
        if recording && (not (SS.mem name locals)) && SS.mem name globals then
          record ~threads ~locks (site pos (name ^ "=")) ~var:name ~write:true;
        (locals, locks)
    | A.Sindex_assign (name, i, e) ->
        we i;
        we e;
        if recording && SS.mem name globals then
          record ~threads ~locks (site pos (Fmt.str "%s[]=" name)) ~var:name
            ~write:true;
        (locals, locks)
    | A.Slet (name, e) ->
        we e;
        (SS.add name locals, locks)
    | A.Sif (c, then_, else_) ->
        we c;
        let l1 = walk_block ~recording ~threads locals locks then_ in
        let l2 =
          match else_ with
          | None -> locks
          | Some b -> walk_block ~recording ~threads locals locks b
        in
        (locals, SS.inter l1 l2)
    | A.Swhile (c, body) ->
        let fix = loop_fixpoint ~threads locals locks [ body ] in
        walk_expr ~recording ~threads ~locals fix c;
        ignore (walk_block ~recording ~threads locals fix body);
        (locals, fix)
    | A.Sfor (init, c, step, body) ->
        let locals', locks' = walk_stmt ~recording ~threads locals locks init in
        let fix = loop_fixpoint ~threads locals' locks' [ body; [ step ] ] in
        walk_expr ~recording ~threads ~locals:locals' fix c;
        ignore (walk_block ~recording ~threads locals' fix body);
        ignore (walk_stmt ~recording ~threads locals' fix step);
        (locals, fix)
    | A.Ssync (l, body) ->
        let out = walk_block ~recording ~threads locals (SS.add l locks) body in
        (locals, SS.inter locks out)
    | A.Slock l -> (locals, SS.add l locks)
    | A.Sunlock l -> (locals, SS.remove l locks)
    | A.Swait _ | A.Snotify _ | A.Snotify_all _ | A.Ssleep | A.Sskip
    | A.Serror _ ->
        (locals, locks)
    | A.Sassert e | A.Sprint e ->
        we e;
        (locals, locks)
    | A.Sreturn eo ->
        Option.iter we eo;
        (locals, locks)
    | A.Scall (_, args) ->
        List.iter we args;
        (locals, locks)
  and walk_block ~recording ~threads locals locks (b : A.block) : SS.t =
    let _, locks =
      List.fold_left
        (fun (locals, locks) st -> walk_stmt ~recording ~threads locals locks st)
        (locals, locks) b
    in
    locks
  and loop_fixpoint ~threads locals locks blocks =
    (* greatest must-set stable under one more iteration, intersected with
       the zero-iteration entry state *)
    let transfer entry =
      List.fold_left
        (fun lk b -> walk_block ~recording:false ~threads locals lk b)
        entry blocks
    in
    let rec go entry =
      let entry' = SS.inter entry (transfer entry) in
      if SS.equal entry' entry then entry else go entry'
    in
    go locks
  and simple_view s =
    (* restrict the call-release scan to this statement's own header
       expressions: nested statements account for their own calls *)
    match s with
    | A.Sif (c, _, _) -> A.Sassert c
    | A.Swhile (c, _) -> A.Sassert c
    | A.Sfor (_, c, _, _) -> A.Sassert c
    | A.Ssync (_, _) -> A.Sskip
    | s -> s
  in
  List.iter
    (fun (t : A.thread_decl) ->
      ignore
        (walk_block ~recording:true ~threads:(SS.singleton t.A.tname) SS.empty
           SS.empty t.A.tbody))
    prog.A.threads;
  List.iter
    (fun (f : A.func) ->
      let threads =
        Option.value ~default:SS.empty (Hashtbl.find_opt reach f.A.fname)
      in
      let locals =
        List.fold_left (fun s (p, _) -> SS.add p s) SS.empty f.A.fparams
      in
      (* intraprocedural: entry lockset is empty (callers may hold more;
         claiming less is sound) *)
      ignore (walk_block ~recording:true ~threads locals SS.empty f.A.fbody))
    prog.A.funcs;
  (* fork/join order: main forks declared threads in order, joining each
     [after] dependency first — so a dependency is dead before its
     dependent *and* every later-declared thread* is forked *)
  let joined = ref SS.empty in
  let edges = ref [] in
  List.iter
    (fun (t : A.thread_decl) ->
      joined := SS.union !joined (SS.of_list t.A.tafter);
      SS.iter (fun d -> edges := (d, t.A.tname) :: !edges) !joined)
    prog.A.threads;
  let names = List.map (fun (t : A.thread_decl) -> t.A.tname) prog.A.threads in
  let facts = Hashtbl.fold Site.Map.add tbl Site.Map.empty in
  { facts; ordered = close_order names !edges }
