(** Model of [java.util.LinkedList] (JDK 1.4.2): doubly-linked list with a
    sentinel header node, not synchronized, fail-fast iterator.

    Node link fields are instrumented cells with per-node heap locations,
    so unsynchronized structural updates race observably — including the
    [containsAll]/[removeAll] combination of the paper's §5.3 that throws
    both ConcurrentModificationException and NoSuchElementException. *)

open Rf_util
open Rf_runtime

let file = "linked_list"
let s line label = Site.make ~file ~line label

let site_size_r = s 1 "size(read)"
let site_size_w = s 2 "size(write)"
let site_mod_r = s 3 "modCount(read)"
let site_mod_w = s 4 "modCount++"
let site_next_r = s 5 "node.next(read)"
let site_next_w = s 6 "node.next(write)"
let site_prev_r = s 7 "node.prev(read)"
let site_prev_w = s 8 "node.prev(write)"
let site_item_r = s 9 "node.item(read)"
let site_it_mod = s 10 "iterator.checkForComodification"
let site_it_next = s 11 "iterator.next:node.next"
let site_it_size = s 12 "iterator.hasNext:size"

type node = {
  item : int;  (** immutable payload, like a final field *)
  next : node option Api.Cell.t;
  prev : node option Api.Cell.t;
}

type t = {
  header : node;  (** sentinel; circular list *)
  size : int Api.Cell.t;
  mod_count : int Api.Cell.t;
  monitor : Lock.t;
}

let make_node item =
  { item; next = Api.Cell.make ~name:"next" None; prev = Api.Cell.make ~name:"prev" None }

let create () =
  let header = make_node min_int in
  Api.Cell.unsafe_poke header.next (Some header);
  Api.Cell.unsafe_poke header.prev (Some header);
  {
    header;
    size = Api.Cell.make ~name:"size" 0;
    mod_count = Api.Cell.make ~name:"modCount" 0;
    monitor = Lock.create ~name:"LinkedList" ();
  }

let size t = Api.Cell.read ~site:site_size_r t.size
let is_empty t = size t = 0

let bump_mod t =
  Api.Cell.write ~site:site_mod_w t.mod_count
    (Api.Cell.read ~site:site_mod_r t.mod_count + 1)

let next_of n =
  match Api.Cell.read ~site:site_next_r n.next with
  | Some m -> m
  | None -> raise (Op.No_such_element "LinkedList: broken next link")

let prev_of n =
  match Api.Cell.read ~site:site_prev_r n.prev with
  | Some m -> m
  | None -> raise (Op.No_such_element "LinkedList: broken prev link")

(* insert [e] before node [succ] *)
let add_before t e succ =
  let pred = prev_of succ in
  let fresh = make_node e in
  Api.Cell.write ~site:site_next_w fresh.next (Some succ);
  Api.Cell.write ~site:site_prev_w fresh.prev (Some pred);
  Api.Cell.write ~site:site_next_w pred.next (Some fresh);
  Api.Cell.write ~site:site_prev_w succ.prev (Some fresh);
  Api.Cell.write ~site:site_size_w t.size (Api.Cell.read ~site:site_size_r t.size + 1);
  bump_mod t

let add t e =
  add_before t e t.header;
  true

let add_first t e = add_before t e (next_of t.header)

let unlink t n =
  let pred = prev_of n and succ = next_of n in
  Api.Cell.write ~site:site_next_w pred.next (Some succ);
  Api.Cell.write ~site:site_prev_w succ.prev (Some pred);
  Api.Cell.write ~site:site_size_w t.size (Api.Cell.read ~site:site_size_r t.size - 1);
  bump_mod t

let find_node t e =
  let rec go n =
    if n == t.header then None
    else if n.item = e then Some n
    else go (next_of n)
  in
  go (next_of t.header)

let contains t e = find_node t e <> None

let remove t e =
  match find_node t e with
  | None -> false
  | Some n ->
      unlink t n;
      true

let remove_first t =
  let n = next_of t.header in
  if n == t.header then raise (Op.No_such_element "LinkedList.removeFirst");
  unlink t n;
  n.item

let get t i =
  let n = size t in
  if i < 0 || i >= n then
    raise (Op.No_such_element (Printf.sprintf "LinkedList.get(%d) of size %d" i n));
  let rec go node j = if j = 0 then node.item else go (next_of node) (j - 1) in
  go (next_of t.header) i

let clear t =
  Api.Cell.write ~site:site_next_w t.header.next (Some t.header);
  Api.Cell.write ~site:site_prev_w t.header.prev (Some t.header);
  Api.Cell.write ~site:site_size_w t.size 0;
  bump_mod t

let iterator t : Jcoll.iter =
  let expected = Api.Cell.read ~site:site_it_mod t.mod_count in
  let cursor = ref (next_of t.header) in
  {
    Jcoll.has_next = (fun () -> Api.Cell.read ~site:site_it_size t.size > 0 && !cursor != t.header);
    next =
      (fun () ->
        let m = Api.Cell.read ~site:site_it_mod t.mod_count in
        if m <> expected then raise (Op.Concurrent_modification "LinkedList iterator");
        let n = !cursor in
        if n == t.header then raise (Op.No_such_element "LinkedList iterator");
        cursor :=
          (match Api.Cell.read ~site:site_it_next n.next with
          | Some m' -> m'
          | None -> raise (Op.No_such_element "LinkedList iterator: broken link"));
        n.item);
  }

let to_list_dbg t =
  let rec go n acc =
    if n == t.header then List.rev acc
    else
      match Api.Cell.unsafe_peek n.next with
      | Some m -> go m (n.item :: acc)
      | None -> List.rev acc
  in
  match Api.Cell.unsafe_peek t.header.next with
  | Some first -> go first []
  | None -> []

let as_coll t : Jcoll.t =
  {
    Jcoll.cname = "LinkedList";
    monitor = t.monitor;
    size = (fun () -> size t);
    is_empty = (fun () -> is_empty t);
    add = (fun e -> add t e);
    remove = (fun e -> remove t e);
    contains = (fun e -> contains t e);
    clear = (fun () -> clear t);
    iterator = (fun () -> iterator t);
    to_list_dbg = (fun () -> to_list_dbg t);
    synchronized = false;
  }
