(** The two-phase RaceFuzzer driver.

    Phase 1 executes the program under an unconstrained random scheduler
    with the hybrid detector attached and collects potential racing
    statement pairs.  Phase 2 re-executes the program once per (pair, seed)
    under the {!Algo} strategy, classifying each pair as real when a race
    is actually created, and as harmful when the created race leads to an
    uncaught exception or deadlock.  Different invocations are independent
    (the paper's "embarrassingly parallel" remark), so everything is
    driven by explicit seed lists. *)

open Rf_util
open Rf_runtime
open Rf_resource

type program = unit -> unit

(* ------------------------------------------------------------------ *)
(* Phase 1                                                             *)

(** How phase 1 attaches its detector to the executions it observes.

    [Inline] is the classic configuration: the hybrid detector listens to
    every engine event as it happens, taxing every step.  [Recorded]
    decouples the two: the engine runs detector-free, appending a compact
    binary recording ({!Rf_events.Btrace}) at a small constant cost per
    step, and the detector replays the recording afterwards — sharded by
    memory location over [shards] analysis passes ({!Rf_detect.Offline}).
    The candidate pair set is identical either way; with [shards = 1]
    the race list is byte-identical, report order included. *)
type detect_mode = Inline | Recorded of { shards : int }

(** Which detector phase 1 attaches.  [Hybrid] is the paper's full
    tracking; [Sampling] keeps [sample_k] reservoir samples per location
    ({!Rf_detect.Sampling}), trading bounded misses — quantified by the
    reported miss bound — for O(1) state per location.  Orthogonal to
    {!detect_mode}: either detector runs inline or over recordings, with
    identical results. *)
type p1_detector =
  | Hybrid
  | Sampling of { sample_k : int; sample_seed : int }

let p1_detector_name = function
  | Hybrid -> "hybrid"
  | Sampling _ -> "sampling"

let make_p1_detector ?governor = function
  | Hybrid -> Rf_detect.Detector.hybrid ?governor ()
  | Sampling { sample_k; sample_seed } ->
      Rf_detect.Detector.sampling ~k:sample_k ~seed:sample_seed ?governor ()

(** Cost accounting of a [Recorded] phase 1. *)
type recording_stats = {
  rec_events : int;  (** events recorded across all seeds *)
  rec_bytes : int;  (** total sealed recording size *)
  rec_wall : float;  (** wall spent executing + recording *)
  detect_wall : float;  (** wall spent in offline detection *)
  rec_shards : int;
}

type phase1_result = {
  potential : Rf_detect.Race.t list;  (** deduplicated by statement pair *)
  p1_outcomes : Outcome.t list;
  p1_wall : float;
  p1_degraded : Governor.snapshot option;
      (** the governor's final state when it tripped during detection *)
  p1_recording : recording_stats option;
      (** filled iff phase 1 ran in [Recorded] mode *)
  p1_name : string;  (** which detector ran ("hybrid", "sampling", ...) *)
  p1_stats : Rf_detect.Detector.stats;
      (** end-of-run accounting: live state entries, memory events, and
          (sampling only) the miss-probability bound *)
}

let potential_pairs r =
  List.fold_left
    (fun acc (race : Rf_detect.Race.t) -> Site.Pair.Set.add race.Rf_detect.Race.pair acc)
    Site.Pair.Set.empty r.potential

(** Run hybrid race detection over [seeds] executions (the paper uses one;
    more executions can only widen the candidate set).  [governor] meters
    the detector's state; a [Budget_stop] (no-degrade governor) escapes to
    the caller — phase 1 has no sandbox, running out of budget there is a
    campaign-level failure. *)
let phase1 ?(seeds = [ 0 ]) ?(max_steps = Engine.default_config.max_steps)
    ?deadline ?governor ?(detect = Inline) ?(detector = Hybrid) ?trace_sink
    (program : program) : phase1_result =
  let t0 = Unix.gettimeofday () in
  let degraded () =
    match governor with
    | Some g when Governor.degraded g -> Some (Governor.snapshot g)
    | _ -> None
  in
  (match (trace_sink, detect) with
  | Some _, Inline ->
      invalid_arg "Fuzzer.phase1: trace_sink requires Recorded detection"
  | _ -> ());
  match detect with
  | Inline ->
      let d = make_p1_detector ?governor detector in
      let outcomes =
        List.map
          (fun seed ->
            Engine.run
              ~config:{ Engine.default_config with seed; max_steps; deadline }
              ~listeners:[ Rf_detect.Detector.feed d ]
              ~strategy:(Strategy.random ()) program)
          seeds
      in
      {
        potential = Rf_detect.Detector.races d;
        p1_outcomes = outcomes;
        p1_wall = Unix.gettimeofday () -. t0;
        p1_degraded = degraded ();
        p1_recording = None;
        p1_name = p1_detector_name detector;
        p1_stats = Rf_detect.Detector.stats d;
      }
  | Recorded { shards } ->
      (* Record: detector-free engine runs, one sealed recording per
         seed (locations are per-run, so recordings never share ids). *)
      let outcomes, recordings, events =
        List.fold_left
          (fun (os, rs, n) seed ->
            let w = Rf_events.Btrace.writer () in
            let o =
              Engine.run
                ~config:{ Engine.default_config with seed; max_steps; deadline }
                ~btrace:w
                ~strategy:(Strategy.random ()) program
            in
            let n = n + Rf_events.Btrace.written w in
            (o :: os, Rf_events.Btrace.seal w :: rs, n))
          ([], [], 0) seeds
      in
      let outcomes = List.rev outcomes and recordings = List.rev recordings in
      (* Hand each sealed recording out (e.g. [--save-traces]) before the
         offline pass consumes it — the sink sees exactly the bytes the
         detector will replay. *)
      (match trace_sink with
      | None -> ()
      | Some sink -> List.iter2 (fun seed r -> sink ~seed r) seeds recordings);
      let t1 = Unix.gettimeofday () in
      (* Detect: a fresh detector per shard replays the recordings.  A
         governed pass runs its shards sequentially so the shared
         governor meters combined state deterministically; ungoverned
         multi-shard passes fan out across domains. *)
      let potential, stats =
        Rf_detect.Offline.detect_stats ~shards
          ~parallel:(governor = None && shards > 1)
          ~make:(fun () -> make_p1_detector ?governor detector)
          recordings
      in
      let t2 = Unix.gettimeofday () in
      {
        potential;
        p1_outcomes = outcomes;
        p1_wall = t2 -. t0;
        p1_degraded = degraded ();
        p1_name = p1_detector_name detector;
        p1_stats = stats;
        p1_recording =
          Some
            {
              rec_events = events;
              rec_bytes =
                List.fold_left
                  (fun acc r -> acc + Rf_events.Btrace.byte_size r)
                  0 recordings;
              rec_wall = t1 -. t0;
              detect_wall = t2 -. t1;
              rec_shards = shards;
            };
      }

(** Offline-only phase 1: replay previously saved recordings through the
    detectors without executing the program at all.  This is how the serve
    loop amortises phase 1 across campaigns — record once per target, then
    re-analyze the saved [Btrace.t]s on every subsequent wave.  The
    candidate set is identical to a live [Recorded] pass over the same
    executions; [p1_outcomes] is empty because nothing ran. *)
let phase1_of_recordings ?(shards = 1) ?governor ?(detector = Hybrid)
    (recordings : Rf_events.Btrace.t list) : phase1_result =
  let t0 = Unix.gettimeofday () in
  let potential, stats =
    Rf_detect.Offline.detect_stats ~shards
      ~parallel:(governor = None && shards > 1)
      ~make:(fun () -> make_p1_detector ?governor detector)
      recordings
  in
  let t1 = Unix.gettimeofday () in
  {
    potential;
    p1_outcomes = [];
    p1_wall = t1 -. t0;
    p1_degraded =
      (match governor with
      | Some g when Governor.degraded g -> Some (Governor.snapshot g)
      | _ -> None);
    p1_name = p1_detector_name detector;
    p1_stats = stats;
    p1_recording =
      Some
        {
          rec_events = 0;
          rec_bytes =
            List.fold_left
              (fun acc r -> acc + Rf_events.Btrace.byte_size r)
              0 recordings;
          rec_wall = 0.0;
          detect_wall = t1 -. t0;
          rec_shards = shards;
        };
  }

(* ------------------------------------------------------------------ *)
(* Phase 2                                                             *)

type trial = {
  t_seed : int;
  t_outcome : Outcome.t;
  t_report : Algo.report;
  t_degraded : Governor.snapshot option;
      (** filled when a governor degraded detector state during the trial *)
}

type pair_result = {
  pr_pair : Site.Pair.t;
  trials : trial list;
  race_trials : int;  (** trials that created a real race *)
  error_trials : int;  (** trials with an uncaught exception *)
  deadlock_trials : int;
  probability : float;  (** race_trials / trials — Table 1's last column *)
  race_seed : int option;  (** a seed reproducing the race, for replay *)
  error_seed : int option;
  pr_wall : float;
}

let is_real r = r.race_trials > 0
let is_harmful r = r.error_trials > 0

(* ------------------------------------------------------------------ *)
(* The sandboxed trial boundary.

   The programs phase 2 drives are *expected* to misbehave — that is the
   point of the tool — so anything the engine tracks (program exceptions,
   deadlocks, step-bound timeouts) comes back inside [Outcome.t] as a
   [Completed] trial.  [trial_result] classifies the two failure modes
   that are NOT program behaviour: an exception escaping the engine
   itself (strategy bug, listener bug, injected chaos) becomes
   [Harness_crash] instead of tearing down the caller, and a watchdog
   cancellation ([Engine.deadline]) becomes [Budget_exhausted]. *)

type trial_result =
  | Completed of trial
  | Harness_crash of exn * string  (* raw backtrace at the catch point *)
  | Budget_exhausted of {
      bx_seed : int;
      bx_reason : Outcome.cancel_reason;
      bx_steps : int;
      bx_wall : float;
    }

let run_trial ?postpone_timeout ?deadline ?governor ?(listeners = [])
    ?(inject = ignore) ~max_steps ~(program : program) (pair : Site.Pair.t)
    seed : trial_result =
  let watch =
    Site.Set.add (Site.Pair.fst pair) (Site.Set.singleton (Site.Pair.snd pair))
  in
  let report = Algo.fresh_report () in
  let strategy = Algo.strategy ?postpone_timeout ~pair ~report () in
  match
    inject ();
    Engine.run
      ~config:
        {
          Engine.default_config with
          seed;
          policy = Engine.Sync_and watch;
          max_steps;
          deadline;
        }
      ~listeners ~strategy program
  with
  | outcome -> (
      match outcome.Outcome.cancelled with
      | Some reason ->
          Budget_exhausted
            {
              bx_seed = seed;
              bx_reason = reason;
              bx_steps = outcome.Outcome.steps;
              bx_wall = outcome.Outcome.wall_time;
            }
      | None ->
          Completed
            {
              t_seed = seed;
              t_outcome = outcome;
              t_report = report;
              t_degraded =
                (match governor with
                | Some g when Governor.degraded g -> Some (Governor.snapshot g)
                | _ -> None);
            })
  | exception Governor.Budget_stop trigger ->
      (* A no-degrade governor refused to shed state: the trial budget is
         spent, same contract as a watchdog cancellation. *)
      Budget_exhausted
        {
          bx_seed = seed;
          bx_reason =
            (match trigger with
            | Governor.Heap_watermark -> Outcome.Heap_watermark
            | Governor.Entry_budget | Governor.Injected ->
                Outcome.Detector_budget);
          bx_steps = 0;
          bx_wall = 0.0;
        }
  | exception e -> Harness_crash (e, Printexc.get_backtrace ())

let run_trial_exn ?postpone_timeout ~max_steps ~(program : program)
    (pair : Site.Pair.t) seed : trial =
  match run_trial ?postpone_timeout ~max_steps ~program pair seed with
  | Completed t -> t
  | Harness_crash (e, _) -> raise e
  | Budget_exhausted _ -> assert false (* no deadline was passed *)

(* Reconstruct a trial from its journal record ([Rf_campaign.Event_log]
   Trial_finished) without re-executing: the synthetic outcome and report
   carry exactly the fields deterministic aggregation and fingerprinting
   read — seed, race flag, exception count, deadlock flag, steps,
   switches — never engine internals. *)

exception Journal_replayed

let trial_of_record ~degraded ~(pair : Site.Pair.t) ~seed ~race ~exns
    ~deadlock ~steps ~switches ~wall : trial =
  let outcome =
    {
      Outcome.steps;
      switches;
      threads_spawned = 0;
      exceptions =
        List.init exns (fun i ->
            {
              Outcome.xtid = i;
              xthread = "journal";
              exn_ = Journal_replayed;
              raised_at = None;
            });
      deadlocked = (if deadlock then [ 0 ] else []);
      blocked_at = [];
      timed_out = false;
      cancelled = None;
      trace = None;
      wall_time = wall;
    }
  in
  let report = Algo.fresh_report () in
  if race then
    report.Algo.hits <-
      [
        {
          Algo.hit_pair = pair;
          hit_sites = (Site.Pair.fst pair, Site.Pair.snd pair);
          hit_loc = Loc.global "journal-replay";
          hit_arriving = -1;
          hit_postponed = [];
          hit_step = 0;
          resolved_arriving = false;
        };
      ];
  { t_seed = seed; t_outcome = outcome; t_report = report; t_degraded = degraded }

let aggregate_trials ~pair ~wall trials : pair_result =
  let race_trials = List.filter (fun t -> Algo.race_created t.t_report) trials in
  let error_trials =
    (* an error is attributed to the race only if the race was created in
       that run (the exception must be a consequence we can tie to it) *)
    List.filter
      (fun t -> Algo.race_created t.t_report && Outcome.has_exception t.t_outcome)
      trials
  in
  let deadlock_trials = List.filter (fun t -> Outcome.deadlocked t.t_outcome) trials in
  {
    pr_pair = pair;
    trials;
    race_trials = List.length race_trials;
    error_trials = List.length error_trials;
    deadlock_trials = List.length deadlock_trials;
    probability =
      (if trials = [] then 0.0
       else float_of_int (List.length race_trials) /. float_of_int (List.length trials));
    race_seed = (match race_trials with [] -> None | t :: _ -> Some t.t_seed);
    error_seed = (match error_trials with [] -> None | t :: _ -> Some t.t_seed);
    pr_wall = wall;
  }

(** Fuzz one candidate pair across [seeds].  Engine switch points are
    restricted to synchronization operations plus the pair's two sites —
    the paper's low-overhead configuration (§4). *)
let fuzz_pair ?(seeds = List.init 100 Fun.id) ?postpone_timeout
    ?(max_steps = Engine.default_config.max_steps) ~(program : program)
    (pair : Site.Pair.t) : pair_result =
  let t0 = Unix.gettimeofday () in
  let trials = List.map (run_trial_exn ?postpone_timeout ~max_steps ~program pair) seeds in
  aggregate_trials ~pair ~wall:(Unix.gettimeofday () -. t0) trials

(** Parallel variant: trials are split across [domains] OCaml domains —
    the paper's observation that "different invocations of RaceFuzzer are
    independent of each other [so] performance can be increased linearly
    with the number of processors or cores".  Result is identical to the
    sequential {!fuzz_pair} on the same seed list (trials are re-sorted by
    seed), modulo wall-clock time. *)
let fuzz_pair_parallel ?(domains = 4) ?(seeds = List.init 100 Fun.id)
    ?postpone_timeout ?(max_steps = Engine.default_config.max_steps)
    ~(program : program) (pair : Site.Pair.t) : pair_result =
  let t0 = Unix.gettimeofday () in
  let domains = max 1 (min domains (List.length seeds)) in
  let chunks = Array.make domains [] in
  List.iteri (fun i seed -> chunks.(i mod domains) <- seed :: chunks.(i mod domains)) seeds;
  let workers =
    Array.map
      (fun chunk ->
        Domain.spawn (fun () ->
            List.map (run_trial_exn ?postpone_timeout ~max_steps ~program pair) chunk))
      chunks
  in
  let trials = Array.to_list workers |> List.concat_map Domain.join in
  let trials = List.sort (fun a b -> Int.compare a.t_seed b.t_seed) trials in
  aggregate_trials ~pair ~wall:(Unix.gettimeofday () -. t0) trials

(** Re-run a single phase-2 execution from its seed: the paper's replay
    mechanism.  Returns the outcome and the race report. *)
let replay ?postpone_timeout ?(record_trace = false)
    ?(max_steps = Engine.default_config.max_steps) ~seed ~(program : program)
    (pair : Site.Pair.t) =
  let watch =
    Site.Set.add (Site.Pair.fst pair) (Site.Set.singleton (Site.Pair.snd pair))
  in
  let report = Algo.fresh_report () in
  let strategy = Algo.strategy ?postpone_timeout ~pair ~report () in
  let outcome =
    Engine.run
      ~config:
        {
          Engine.default_config with
          seed;
          policy = Engine.Sync_and watch;
          record_trace;
          max_steps;
        }
      ~strategy program
  in
  (outcome, report)

(* ------------------------------------------------------------------ *)
(* Schedule record / replay / shrink.

   The strategies below compose the Rf_replay combinators with the
   phase-2 building blocks: a recorded trial is run_trial with the
   strategy wrapped in a Recorder; replay rebuilds the engine
   configuration (seed, Sync_and policy, step budget) from the
   schedule's own metadata so a *.sched.json file is self-contained;
   and the shrinker's oracle is "replay leniently, re-record, compare
   error fingerprints". *)

module Schedule = Rf_replay.Schedule
module Recorder = Rf_replay.Recorder
module Replayer = Rf_replay.Replayer
module Shrinker = Rf_replay.Shrinker

let pair_watch pair =
  Site.Set.add (Site.Pair.fst pair) (Site.Set.singleton (Site.Pair.snd pair))

let pair_policy = function
  | Some pair -> Engine.Sync_and (pair_watch pair)
  | None -> Engine.Every_op

(* The deterministic fallback that finishes a run once a schedule is
   exhausted (or, in Exact mode, after a divergence).  Deliberately a
   *neutral* scheduler, not the Algo strategy the recording was made
   under: the Algo strategy re-creates the race from the seed alone,
   which would let the shrinker discard the entire schedule as "already
   reproducing" — the dejafu lesson is that a minimized prefix is only
   meaningful against a scheduler that does not steer.  Non-preemptive
   run-until-block is the least-steering completion: the prefix must
   contain every preemption the failure needs, and nothing else.  It is
   deterministic and draws no randomness, so the engine-internal PRNG
   stream stays exactly where the last replayed step restored it. *)
let replay_fallback () = Strategy.run_until_block ()

let record_trial ?(target = "") ?postpone_timeout
    ?(max_steps = Engine.default_config.max_steps) ~(program : program)
    (pair : Site.Pair.t) seed : trial * Schedule.t =
  let report = Algo.fresh_report () in
  let strategy, recorder =
    Recorder.wrap (Algo.strategy ?postpone_timeout ~pair ~report ())
  in
  let outcome =
    Engine.run
      ~config:
        {
          Engine.default_config with
          seed;
          policy = pair_policy (Some pair);
          max_steps;
        }
      ~strategy program
  in
  ( { t_seed = seed; t_outcome = outcome; t_report = report; t_degraded = None },
    Recorder.schedule ~target ~pair ~seed ~max_steps ~outcome recorder )

let replay_schedule ?mode ~(program : program) (sched : Schedule.t) :
    Outcome.t * Replayer.status =
  let strategy, status =
    Replayer.strategy ?mode sched ~fallback:(replay_fallback ())
  in
  let outcome =
    Engine.run
      ~config:
        {
          Engine.default_config with
          seed = sched.Schedule.meta.Schedule.m_seed;
          policy = pair_policy (Schedule.pair sched);
          max_steps = sched.Schedule.meta.Schedule.m_max_steps;
        }
      ~strategy program
  in
  (outcome, status)

let schedule_oracle ~(program : program) () : Schedule.t -> Schedule.t option =
 fun cand ->
  match cand.Schedule.meta.Schedule.m_error with
  | None -> None (* nothing to reproduce *)
  | Some want ->
      let replaying, _status =
        Replayer.strategy ~mode:Replayer.Lenient cand
          ~fallback:(replay_fallback ())
      in
      let strategy, recorder = Recorder.wrap replaying in
      let meta = cand.Schedule.meta in
      let outcome =
        Engine.run
          ~config:
            {
              Engine.default_config with
              seed = meta.Schedule.m_seed;
              policy = pair_policy (Schedule.pair cand);
              max_steps = meta.Schedule.m_max_steps;
            }
          ~strategy program
      in
      if Schedule.error_fingerprint outcome = Some want then
        Some
          (Recorder.schedule ~target:meta.Schedule.m_target
             ?pair:(Schedule.pair cand) ~seed:meta.Schedule.m_seed
             ~max_steps:meta.Schedule.m_max_steps ~outcome recorder)
      else None

let minimize_schedule ?fuel ~(program : program) (sched : Schedule.t) :
    (Schedule.t * Shrinker.stats) option =
  Shrinker.minimize ?fuel ~oracle:(schedule_oracle ~program ()) sched

(* ------------------------------------------------------------------ *)
(* Static pre-filtering of the candidate frontier                      *)

(** Likely pairs first, then Unknown, then Impossible: the campaign fuzzes
    the pairs the static analysis believes in before spending trials on
    the rest.  Stable within a rank (pairs keep their canonical order), so
    the wave schedule is a pure function of the frontier + the summary. *)
let verdict_rank = function
  | Rf_static.Static.Likely -> 0
  | Rf_static.Static.Unknown _ -> 1
  | Rf_static.Static.Impossible _ -> 2

let order_pairs ~static pairs =
  List.stable_sort
    (fun a b ->
      Int.compare
        (verdict_rank (Rf_static.Static.classify static a))
        (verdict_rank (Rf_static.Static.classify static b)))
    pairs

(** Split a frontier into (surviving, filtered-with-verdicts): only
    [Impossible] pairs are filtered — the analysis is sound in exactly
    that direction, so skipping them loses no confirmable race. *)
let partition_frontier ~static pairs =
  let filtered, surviving =
    List.partition_map
      (fun pair ->
        match Rf_static.Static.classify static pair with
        | Rf_static.Static.Impossible _ as v -> Either.Left (pair, v)
        | _ -> Either.Right pair)
      pairs
  in
  (surviving, filtered)

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)

type analysis = {
  a_phase1 : phase1_result;
  results : pair_result list;
  real_pairs : Site.Pair.Set.t;
  error_pairs : Site.Pair.Set.t;
  deadlock_pairs : Site.Pair.Set.t;
  a_filtered : (Site.Pair.t * Rf_static.Static.verdict) list;
      (** phase-1 candidates refuted statically and never fuzzed *)
}

(** Project an unfiltered analysis onto the pairs [keep] accepts, as if the
    others had been filtered before phase 2: used by the integration tests
    to state that filtering only ever *removes* per-pair records. *)
let restrict_analysis ~keep (a : analysis) : analysis =
  let results = List.filter (fun r -> keep r.pr_pair) a.results in
  let restrict = Site.Pair.Set.filter keep in
  {
    a with
    results;
    real_pairs = restrict a.real_pairs;
    error_pairs = restrict a.error_pairs;
    deadlock_pairs = restrict a.deadlock_pairs;
  }

let analyze ?(phase1_seeds = [ 0 ]) ?(seeds_per_pair = List.init 100 Fun.id)
    ?postpone_timeout ?max_steps ?detector_budget ?mem_budget
    ?(no_degrade = false) ?static ?(static_filter = false) ?detect ?detector
    (program : program) : analysis =
  (* Resource governance lives in phase 1: that is where the detector —
     and hence the unbounded analysis state — is.  Phase-2 trials carry
     no detector, so they run ungoverned here (the campaign orchestrator
     additionally governs trials for its chaos/watermark paths). *)
  let governor =
    if detector_budget = None && mem_budget = None then None
    else Some (Governor.create ?max_entries:detector_budget ~no_degrade ())
  in
  let deadline =
    Option.map
      (fun mb ->
        let heap_hook =
          Option.map
            (fun g () ->
              if Governor.level g = Governor.Lockset_only then false
              else begin
                Governor.trip g Governor.Heap_watermark;
                true
              end)
            governor
        in
        Engine.deadline ~heap_mb:mb ?heap_hook ())
      mem_budget
  in
  let p1 =
    phase1 ~seeds:phase1_seeds ?max_steps ?deadline ?governor ?detect ?detector
      program
  in
  let pairs = Site.Pair.Set.elements (potential_pairs p1) in
  let pairs, filtered =
    match static with
    | None -> (pairs, [])
    | Some st ->
        if static_filter then
          let surviving, filtered = partition_frontier ~static:st pairs in
          (order_pairs ~static:st surviving, filtered)
        else (order_pairs ~static:st pairs, [])
  in
  let results =
    List.map
      (fun pair -> fuzz_pair ~seeds:seeds_per_pair ?postpone_timeout ?max_steps ~program pair)
      pairs
  in
  let collect p =
    List.fold_left
      (fun acc r -> if p r then Site.Pair.Set.add r.pr_pair acc else acc)
      Site.Pair.Set.empty results
  in
  {
    a_phase1 = p1;
    results;
    real_pairs = collect is_real;
    error_pairs = collect is_harmful;
    deadlock_pairs = collect (fun r -> r.deadlock_trials > 0);
    a_filtered = filtered;
  }

(* ------------------------------------------------------------------ *)
(* Baselines                                                           *)

(** Count exception behaviour of a program under an arbitrary baseline
    scheduler (simple random, default, ...): returns the number of trials
    that raised, and the set of distinct exception sites observed. *)
type baseline_result = {
  b_trials : int;
  b_error_trials : int;
  b_exception_sites : Site.Set.t;
  b_deadlock_trials : int;
}

let baseline ?(seeds = List.init 100 Fun.id) ?(policy = Engine.Every_op)
    ?max_steps ~(make_strategy : unit -> Strategy.t) (program : program) :
    baseline_result =
  let outcomes =
    List.map
      (fun seed ->
        Engine.run
          ~config:
            {
              Engine.default_config with
              seed;
              policy;
              max_steps =
                (match max_steps with
                | Some m -> m
                | None -> Engine.default_config.max_steps);
            }
          ~strategy:(make_strategy ()) program)
      seeds
  in
  {
    b_trials = List.length outcomes;
    b_error_trials =
      List.length (List.filter Outcome.has_exception outcomes);
    b_exception_sites =
      List.fold_left
        (fun acc o ->
          List.fold_left
            (fun acc s -> Site.Set.add s acc)
            acc (Outcome.exn_sites o))
        Site.Set.empty outcomes;
    b_deadlock_trials = List.length (List.filter Outcome.deadlocked outcomes);
  }
