(* Tests for the deadlock-direction extension (paper §1: biasing the
   random scheduler by potential deadlocks): Goodlock cycle detection and
   the deadlock-realizing scheduler. *)

open Rf_util
open Rf_runtime

let s = Api.site

(* Classic deadlock: two threads acquire two locks in opposite order. *)
let classic_cycle () =
  let a = Lock.create ~name:"A" () and b = Lock.create ~name:"B" () in
  let t1 =
    Api.fork ~name:"t1" (fun () ->
        Api.sync ~site:(s "t1:lock A") a (fun () ->
            Api.sync ~site:(s "t1:lock B") b (fun () -> ())))
  in
  let t2 =
    Api.fork ~name:"t2" (fun () ->
        Api.sync ~site:(s "t2:lock B") b (fun () ->
            Api.sync ~site:(s "t2:lock A") a (fun () -> ())))
  in
  Api.join t1;
  Api.join t2

(* Gate-protected cycle: the opposite-order sections are serialized by an
   enclosing gate lock, so the Goodlock cycle is a FALSE alarm — no
   schedule can realize it. *)
let gated_cycle () =
  let g = Lock.create ~name:"G" () in
  let a = Lock.create ~name:"A" () and b = Lock.create ~name:"B" () in
  let t1 =
    Api.fork ~name:"t1" (fun () ->
        Api.sync ~site:(s "g1") g (fun () ->
            Api.sync ~site:(s "g1:lock A") a (fun () ->
                Api.sync ~site:(s "g1:lock B") b (fun () -> ()))))
  in
  let t2 =
    Api.fork ~name:"t2" (fun () ->
        Api.sync ~site:(s "g2") g (fun () ->
            Api.sync ~site:(s "g2:lock B") b (fun () ->
                Api.sync ~site:(s "g2:lock A") a (fun () -> ()))))
  in
  Api.join t1;
  Api.join t2

(* Dining philosophers, 3 seats, everyone right-handed: cyclic. *)
let philosophers () =
  let forks = Array.init 3 (fun i -> Lock.create ~name:(Printf.sprintf "fork%d" i) ()) in
  let hs =
    List.init 3 (fun i ->
        Api.fork ~name:(Printf.sprintf "phil%d" i) (fun () ->
            let first = forks.(i) and second = forks.((i + 1) mod 3) in
            Api.sync ~site:(s (Printf.sprintf "phil%d:first" i)) first (fun () ->
                Api.sync ~site:(s (Printf.sprintf "phil%d:second" i)) second (fun () ->
                    ()))))
  in
  List.iter Api.join hs

(* ------------------------------------------------------------------ *)
(* Goodlock (phase 1)                                                  *)

let candidates_of program seeds = Racefuzzer.Deadlock_fuzzer.phase1 ~seeds program

let test_goodlock_finds_classic_cycle () =
  let cands = candidates_of classic_cycle (List.init 10 Fun.id) in
  Alcotest.(check bool) "at least one candidate" true (List.length cands >= 1);
  let c = List.hd cands in
  Alcotest.(check bool) "inner sites are the second acquires" true
    (let labels =
       List.sort compare (List.map Site.label c.Rf_detect.Goodlock.sites)
     in
     labels = [ "t1:lock B"; "t2:lock A" ])

let test_goodlock_no_cycle_without_nesting () =
  let flat () =
    let a = Lock.create ~name:"A" () and b = Lock.create ~name:"B" () in
    let t1 =
      Api.fork ~name:"t1" (fun () ->
          Api.sync ~site:(s "f1a") a (fun () -> ());
          Api.sync ~site:(s "f1b") b (fun () -> ()))
    in
    let t2 =
      Api.fork ~name:"t2" (fun () ->
          Api.sync ~site:(s "f2b") b (fun () -> ());
          Api.sync ~site:(s "f2a") a (fun () -> ()))
    in
    Api.join t1;
    Api.join t2
  in
  Alcotest.(check int) "no candidates" 0
    (List.length (candidates_of flat (List.init 10 Fun.id)))

let test_goodlock_same_order_no_cycle () =
  let same_order () =
    let a = Lock.create ~name:"A" () and b = Lock.create ~name:"B" () in
    let body tag () =
      Api.sync ~site:(s (tag ^ ":A")) a (fun () ->
          Api.sync ~site:(s (tag ^ ":B")) b (fun () -> ()))
    in
    let t1 = Api.fork ~name:"t1" (body "s1") in
    let t2 = Api.fork ~name:"t2" (body "s2") in
    Api.join t1;
    Api.join t2
  in
  Alcotest.(check int) "consistent order: no candidates" 0
    (List.length (candidates_of same_order (List.init 10 Fun.id)))

let test_goodlock_reports_gated_cycle_as_potential () =
  (* plain Goodlock over-approximates: the gated cycle IS reported *)
  let cands = candidates_of gated_cycle (List.init 10 Fun.id) in
  Alcotest.(check bool) "gated cycle reported (imprecision)" true
    (List.length cands >= 1)

(* ------------------------------------------------------------------ *)
(* DeadlockFuzzer (phase 2)                                            *)

let test_deadlockfuzzer_realizes_classic_cycle () =
  let results =
    Racefuzzer.Deadlock_fuzzer.analyze
      ~phase1_seeds:(List.init 10 Fun.id)
      ~seeds_per_candidate:(List.init 50 Fun.id)
      classic_cycle
  in
  Alcotest.(check bool) "candidate exists" true (results <> []);
  let r = List.hd results in
  Alcotest.(check bool)
    (Printf.sprintf "high deadlock probability (%f)" r.Racefuzzer.Deadlock_fuzzer.dc_probability)
    true
    (r.Racefuzzer.Deadlock_fuzzer.dc_probability > 0.8);
  Alcotest.(check bool) "classified real" true
    (Racefuzzer.Deadlock_fuzzer.is_real r)

let test_deadlockfuzzer_rejects_gated_cycle () =
  let results =
    Racefuzzer.Deadlock_fuzzer.analyze
      ~phase1_seeds:(List.init 10 Fun.id)
      ~seeds_per_candidate:(List.init 50 Fun.id)
      gated_cycle
  in
  Alcotest.(check bool) "candidate exists (phase 1 imprecise)" true (results <> []);
  List.iter
    (fun r ->
      Alcotest.(check int) "never realized: false alarm" 0
        r.Racefuzzer.Deadlock_fuzzer.dc_deadlock_trials)
    results

let test_deadlockfuzzer_beats_random_on_classic () =
  (* undirected random scheduling deadlocks the classic cycle only when the
     interleaving happens to align; the directed scheduler nearly always *)
  let random_deadlocks =
    List.length
      (List.filter
         (fun seed ->
           Outcome.deadlocked
             (Engine.run
                ~config:{ Engine.default_config with seed }
                ~strategy:(Strategy.random ()) classic_cycle))
         (List.init 50 Fun.id))
  in
  let results =
    Racefuzzer.Deadlock_fuzzer.analyze
      ~phase1_seeds:(List.init 10 Fun.id)
      ~seeds_per_candidate:(List.init 50 Fun.id)
      classic_cycle
  in
  let directed = (List.hd results).Racefuzzer.Deadlock_fuzzer.dc_deadlock_trials in
  Alcotest.(check bool)
    (Printf.sprintf "directed (%d/50) > random (%d/50)" directed random_deadlocks)
    true
    (directed > random_deadlocks)

let test_deadlockfuzzer_philosophers () =
  let results =
    Racefuzzer.Deadlock_fuzzer.analyze
      ~phase1_seeds:(List.init 10 Fun.id)
      ~seeds_per_candidate:(List.init 40 Fun.id)
      philosophers
  in
  Alcotest.(check bool) "cycles found" true (List.length results >= 1);
  Alcotest.(check bool) "some cycle realized" true
    (List.exists Racefuzzer.Deadlock_fuzzer.is_real results)

let test_deadlock_replay () =
  let results =
    Racefuzzer.Deadlock_fuzzer.analyze
      ~phase1_seeds:(List.init 10 Fun.id)
      ~seeds_per_candidate:(List.init 30 Fun.id)
      classic_cycle
  in
  match results with
  | [] -> Alcotest.fail "no candidate"
  | r :: _ -> (
      match r.Racefuzzer.Deadlock_fuzzer.dc_seed with
      | None -> Alcotest.fail "no deadlock seed"
      | Some seed ->
          let again =
            Racefuzzer.Deadlock_fuzzer.fuzz_candidate ~seeds:[ seed ]
              ~program:classic_cycle r.Racefuzzer.Deadlock_fuzzer.dc_candidate
          in
          Alcotest.(check int) "seed replays the deadlock" 1
            again.Racefuzzer.Deadlock_fuzzer.dc_deadlock_trials)

(* ------------------------------------------------------------------ *)
(* Parallel fuzzing equivalence (embarrassingly parallel claim)        *)

let test_parallel_fuzz_matches_sequential () =
  let program = Rf_workloads.Figure1.program in
  let pair = Rf_workloads.Figure1.real_pair in
  let seeds = List.init 40 Fun.id in
  let seq = Racefuzzer.Fuzzer.fuzz_pair ~seeds ~program pair in
  let par = Racefuzzer.Fuzzer.fuzz_pair_parallel ~domains:4 ~seeds ~program pair in
  Alcotest.(check int) "race trials equal" seq.Racefuzzer.Fuzzer.race_trials
    par.Racefuzzer.Fuzzer.race_trials;
  Alcotest.(check int) "error trials equal" seq.Racefuzzer.Fuzzer.error_trials
    par.Racefuzzer.Fuzzer.error_trials;
  Alcotest.(check bool) "same per-seed outcomes" true
    (List.for_all2
       (fun (a : Racefuzzer.Fuzzer.trial) (b : Racefuzzer.Fuzzer.trial) ->
         a.Racefuzzer.Fuzzer.t_seed = b.Racefuzzer.Fuzzer.t_seed
         && Racefuzzer.Algo.race_created a.Racefuzzer.Fuzzer.t_report
            = Racefuzzer.Algo.race_created b.Racefuzzer.Fuzzer.t_report
         && a.Racefuzzer.Fuzzer.t_outcome.Rf_runtime.Outcome.steps
            = b.Racefuzzer.Fuzzer.t_outcome.Rf_runtime.Outcome.steps)
       seq.Racefuzzer.Fuzzer.trials par.Racefuzzer.Fuzzer.trials)

let test_parallel_fuzz_collections () =
  (* domain-safety of the whole stack: collections allocate locs and locks *)
  let program = Rf_workloads.Coll_drivers.linkedlist.Rf_workloads.Workload.program in
  let seeds = List.init 24 Fun.id in
  let pair =
    let p1 = Racefuzzer.Fuzzer.phase1 ~seeds:[ 0; 1; 2 ] program in
    Site.Pair.Set.choose (Racefuzzer.Fuzzer.potential_pairs p1)
  in
  let seq = Racefuzzer.Fuzzer.fuzz_pair ~seeds ~program pair in
  let par = Racefuzzer.Fuzzer.fuzz_pair_parallel ~domains:3 ~seeds ~program pair in
  Alcotest.(check int) "collections: race trials equal"
    seq.Racefuzzer.Fuzzer.race_trials par.Racefuzzer.Fuzzer.race_trials

let () =
  Alcotest.run "rf_deadlock_and_parallel"
    [
      ( "goodlock",
        [
          Alcotest.test_case "classic cycle" `Quick test_goodlock_finds_classic_cycle;
          Alcotest.test_case "no nesting no cycle" `Quick
            test_goodlock_no_cycle_without_nesting;
          Alcotest.test_case "same order no cycle" `Quick
            test_goodlock_same_order_no_cycle;
          Alcotest.test_case "gated cycle reported" `Quick
            test_goodlock_reports_gated_cycle_as_potential;
        ] );
      ( "deadlockfuzzer",
        [
          Alcotest.test_case "realizes classic" `Quick
            test_deadlockfuzzer_realizes_classic_cycle;
          Alcotest.test_case "rejects gated" `Quick test_deadlockfuzzer_rejects_gated_cycle;
          Alcotest.test_case "beats random" `Quick
            test_deadlockfuzzer_beats_random_on_classic;
          Alcotest.test_case "philosophers" `Quick test_deadlockfuzzer_philosophers;
          Alcotest.test_case "replay" `Quick test_deadlock_replay;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "matches sequential" `Quick
            test_parallel_fuzz_matches_sequential;
          Alcotest.test_case "collections domain-safety" `Quick
            test_parallel_fuzz_collections;
        ] );
    ]
