(** Lock (monitor) handles.

    A [Lock.t] models a Java object monitor: reentrant mutual exclusion plus
    a wait set usable with [wait]/[notify]/[notify_all].  The handle only
    carries identity; the engine owns the mutable monitor state.

    Ids come from a counter reset at the start of every engine run, so
    monitor identity is deterministic per run (model code executes
    single-threaded under the cooperative scheduler). *)

type t = { id : int; name : string }

(* Domain-local for the same reason as {!Rf_util.Loc}: parallel fuzzing
   runs one engine per domain and ids must be deterministic per run. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)
let reset_counter () = Domain.DLS.get counter := 0

let create ?(name = "lock") () =
  let c = Domain.DLS.get counter in
  let id = !c in
  incr c;
  { id; name = (if name = "lock" then Printf.sprintf "lock%d" id else name) }

let id t = t.id
let name t = t.name
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let pp ppf t = Fmt.pf ppf "%s#%d" t.name t.id
