(** Epoch-optimized precise happens-before race detection, after FastTrack
    (Flanagan & Freund, PLDI 2009) — the standard answer to the overhead
    problem the paper attributes to happens-before detectors ("this
    technique has a very large runtime overhead as it needs to track every
    shared memory access", §1).

    Instead of a full vector clock per access, each location carries:
    - a write *epoch* [(tid, clock)] — the last write, which in race-free
      executions is totally ordered with everything that follows;
    - a read epoch, inflated on demand to a full read vector clock only
      while reads are concurrent (the "shared read" state).

    Race checks become O(1) epoch comparisons on the fast paths.  The
    detector reports exactly the races that {!Hb_precise} reports on the
    same trace (checked by an equivalence property in the test suite) while
    doing asymptotically less work.

    Analysis state is driven by the same happens-before clocks as the other
    detectors ({!Hbclock} with lock edges).

    Under a resource governor each location cell and each slot of an
    inflated read vector is one charged entry.  Degradation semantics:
    at {b Sampled} and below, inflated read vectors are collapsed back
    to the epoch fast path (keeping only the newest read — concurrent
    older reads may be forgotten, trading recall for bounded state); at
    {b Lockset-only} the cell table is frozen — accesses to locations
    not yet tracked are ignored outright, so state stops growing
    entirely.  A trip also sweeps existing cells, deflating every
    [Rshared] table (order-independent, hence deterministic). *)

open Rf_util
open Rf_events
open Rf_vclock
open Rf_resource

type epoch = { etid : int; eclock : int }

let epoch_of_vc tid vc = { etid = tid; eclock = Vclock.get vc tid }

(* epoch e happened-before (or equals) clock c *)
let epoch_leq e c = e.eclock <= Vclock.get c e.etid

type read_state =
  | Rnone
  | Repoch of epoch * Site.t
  | Rshared of (int, int * Site.t) Hashtbl.t  (* tid -> clock, site *)

type cell = {
  mutable wr : (epoch * Site.t) option;
  mutable rd : read_state;
}

type t = {
  clocks : Hbclock.t;
  governor : Governor.t option;
  cells : cell Loc.Tbl.t;
  mutable races : Race.t list;
  mutable reported : Site.Pair.Set.t;
  mutable epoch_hits : int;  (** fast-path comparisons that sufficed *)
  mutable vc_ops : int;  (** slow-path full-clock operations *)
}

let charge t n = match t.governor with Some g -> Governor.charge g n | None -> ()
let credit t n = match t.governor with Some g -> Governor.credit g n | None -> ()
let evict t n = match t.governor with Some g -> Governor.evict g n | None -> ()

let level t =
  match t.governor with Some g -> Governor.level g | None -> Governor.Full

(* Deflate every inflated read vector back to the epoch fast path.
   Collapsing all of them is independent of hashtable iteration order,
   so this is safe to run from a governor hook. *)
let deflate_reads t =
  Loc.Tbl.iter
    (fun _loc c ->
      match c.rd with
      | Rshared tbl ->
          evict t (Hashtbl.length tbl);
          c.rd <- Rnone
      | Rnone | Repoch _ -> ())
    t.cells

let create ?governor () =
  let t =
    {
      clocks = Hbclock.create ?governor ~lock_edges:true ();
      governor;
      cells = Loc.Tbl.create 256;
      races = [];
      reported = Site.Pair.Set.empty;
      epoch_hits = 0;
      vc_ops = 0;
    }
  in
  (match governor with
  | Some g -> Governor.subscribe g (fun _level -> deflate_reads t)
  | None -> ());
  t

(* At the bottom rung the cell table is frozen: unseen locations return
   no cell and their accesses go untracked. *)
let cell t loc =
  match Loc.Tbl.find_opt t.cells loc with
  | Some c -> Some c
  | None ->
      if level t = Governor.Lockset_only then None
      else begin
        let c = { wr = None; rd = Rnone } in
        Loc.Tbl.add t.cells loc c;
        charge t 1;
        Some c
      end

let report t ~loc ~tids ~accesses s1 s2 =
  let pair = Site.Pair.make s1 s2 in
  if not (Site.Pair.Set.mem pair t.reported) then begin
    t.reported <- Site.Pair.Set.add pair t.reported;
    t.races <- Race.make ~pair ~loc ~tids ~accesses :: t.races
  end

let rec feed t ev =
  let vc = Hbclock.feed t.clocks ev in
  match ev with
  | Event.Mem { tid; site; loc; access = Event.Read; _ } -> (
      match cell t loc with
      | None -> ()
      | Some c -> (
          (* write-read race? *)
          (match c.wr with
          | Some (we, wsite) when we.etid <> tid && not (epoch_leq we vc) ->
              report t ~loc ~tids:(we.etid, tid)
                ~accesses:(Event.Write, Event.Read) wsite site
          | _ -> t.epoch_hits <- t.epoch_hits + 1);
          let my = epoch_of_vc tid vc in
          match c.rd with
          | Rnone -> c.rd <- Repoch (my, site)
          | Repoch (prev, psite) ->
              if prev.etid = tid || epoch_leq prev vc then begin
                (* previous read ordered before us: stay in epoch state *)
                t.epoch_hits <- t.epoch_hits + 1;
                c.rd <- Repoch (my, site)
              end
              else if level t <> Governor.Full then begin
                (* degraded: keep only the newest read instead of
                   inflating — bounded state, possible missed
                   read-write races *)
                t.epoch_hits <- t.epoch_hits + 1;
                c.rd <- Repoch (my, site)
              end
              else begin
                (* concurrent reads: inflate to read vector *)
                t.vc_ops <- t.vc_ops + 1;
                let tbl = Hashtbl.create 4 in
                Hashtbl.replace tbl prev.etid (prev.eclock, psite);
                Hashtbl.replace tbl tid (my.eclock, site);
                charge t 2;
                c.rd <- Rshared tbl
              end
          | Rshared tbl ->
              t.vc_ops <- t.vc_ops + 1;
              if not (Hashtbl.mem tbl tid) then charge t 1;
              Hashtbl.replace tbl tid (my.eclock, site)))
  | Event.Mem { tid; site; loc; access = Event.Write; _ } -> (
      match cell t loc with
      | None -> ()
      | Some c ->
          feed_write t vc ~tid ~site ~loc c)
  | _ -> ()

and feed_write t vc ~tid ~site ~loc c =
      (* write-write race? *)
      (match c.wr with
      | Some (we, wsite) when we.etid <> tid && not (epoch_leq we vc) ->
          report t ~loc ~tids:(we.etid, tid) ~accesses:(Event.Write, Event.Write)
            wsite site
      | _ -> t.epoch_hits <- t.epoch_hits + 1);
      (* read-write races? *)
      (match c.rd with
      | Rnone -> ()
      | Repoch (re, rsite) ->
          if re.etid <> tid && not (epoch_leq re vc) then
            report t ~loc ~tids:(re.etid, tid) ~accesses:(Event.Read, Event.Write)
              rsite site
      | Rshared tbl ->
          t.vc_ops <- t.vc_ops + 1;
          Hashtbl.iter
            (fun rtid (rclock, rsite) ->
              if rtid <> tid && rclock > Vclock.get vc rtid then
                report t ~loc ~tids:(rtid, tid) ~accesses:(Event.Read, Event.Write)
                  rsite site)
            tbl;
          (* after an ordered write, reads collapse back to the fast path *)
          if
            Hashtbl.fold
              (fun rtid (rclock, _) acc -> acc && rclock <= Vclock.get vc rtid)
              tbl true
          then begin
            credit t (Hashtbl.length tbl);
            c.rd <- Rnone
          end);
      c.wr <- Some (epoch_of_vc tid vc, site)

let races t = List.rev t.races
let pairs t = t.reported
let race_count t = Site.Pair.Set.cardinal t.reported
let epoch_hits t = t.epoch_hits
let vc_ops t = t.vc_ops
