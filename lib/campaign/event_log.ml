(* Journal schema v5: v1 (PR 1) had no header and a Trial_finished without
   the steps/switches/exns fields the resume path replays; v2 (PR 3) had
   no degradation fields and no per-line checksum; v3 (PR 5) added both;
   v4 added the static pre-filter events (Pair_filtered,
   Static_classified); v5 adds the phase-1 detector identity and
   (sampling) miss bound to Phase1_finished.  The reader skips records it
   cannot parse, so an old journal degrades to "nothing to resume"
   instead of failing. *)
let schema_version = 5

type event =
  | Journal_opened of { schema : int }
  | Campaign_started of {
      domains : int;
      base_trials : int;
      budget : int option;
      cutoff : bool;
    }
  | Phase1_finished of {
      potential : int;
      wall : float;
      degraded : bool;
      level : string;
      detector : string;
      miss_bound : float option;
    }
  | Phase1_recorded of {
      events : int;
      bytes : int;
      shards : int;
      record_wall : float;
      detect_wall : float;
    }
  | Wave_started of { wave : int; tasks : int }
  | Trial_started of { pair : string; seed : int; domain : int }
  | Trial_finished of {
      pair : string;
      seed : int;
      domain : int;
      race : bool;
      error : bool;
      deadlock : bool;
      steps : int;
      switches : int;
      exns : int;
      wall : float;
      degraded : bool;
      level : string;
      trigger : string;
      evicted : int;
    }
  | Trial_crashed of {
      pair : string;
      seed : int;
      domain : int;
      exn_ : string;
      backtrace : string;
    }
  | Trial_exhausted of {
      pair : string;
      seed : int;
      domain : int;
      reason : string;
      steps : int;
      wall : float;
    }
  | Pair_filtered of { pair : string; reason : string }
  | Static_classified of {
      universe : int;
      universe_impossible : int;
      frontier : int;
      likely : int;
      unknown : int;
      impossible : int;
      filtered : int;
      wall : float;
    }
  | Pair_resolved of { pair : string; at_trial : int }
  | Pair_quarantined of { pair : string; crashes : int; at_trial : int }
  | Trials_cancelled of { pair : string; count : int }
  | Budget_granted of { pair : string; extra : int }
  | Worker_crashed of { domain : int; attempt : int; exn_ : string }
  | Worker_respawned of { domain : int; attempt : int; backoff : float }
  | Worker_gave_up of { domain : int }
  | Worker_spawned of { worker : int; pid : int }
  | Worker_killed of { worker : int; pid : int; reason : string }
  | Traces_saved of { dir : string; count : int; bytes : int }
  | Corpus_updated of { dir : string; added : int; deduped : int; total : int }
  | Resume_loaded of { entries : int; skipped : int }
  | Campaign_interrupted of { executed : int; remaining : int }
  | Repro_written of {
      pair : string;
      fingerprint : string;
      seed : int;
      file : string;
      steps_before : int;
      steps_after : int;
      switches_before : int;
      switches_after : int;
      oracle_runs : int;
    }
  | Campaign_finished of {
      wall : float;
      trials : int;
      cancelled : int;
      throughput : float;
    }

(* ------------------------------------------------------------------ *)
(* JSON rendering (hand-rolled: no JSON dependency in the toolchain)   *)

type jv = I of int | F of float | S of string | B of bool | Null

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jv_to_string = function
  | I n -> string_of_int n
  | F x -> Printf.sprintf "%.6f" x
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | B b -> if b then "true" else "false"
  | Null -> "null"

let fields_of_event = function
  | Journal_opened { schema } -> ("journal_opened", [ ("schema", I schema) ])
  | Campaign_started { domains; base_trials; budget; cutoff } ->
      ( "campaign_started",
        [
          ("domains", I domains);
          ("base_trials", I base_trials);
          ("budget", (match budget with Some b -> I b | None -> Null));
          ("cutoff", B cutoff);
        ] )
  | Phase1_finished { potential; wall; degraded; level; detector; miss_bound }
    ->
      ( "phase1_finished",
        [
          ("potential", I potential);
          ("wall", F wall);
          ("degraded", B degraded);
          ("level", S level);
          ("detector", S detector);
          ("miss_bound", (match miss_bound with Some x -> F x | None -> Null));
        ] )
  | Phase1_recorded { events; bytes; shards; record_wall; detect_wall } ->
      ( "phase1_recorded",
        [
          ("events", I events);
          ("bytes", I bytes);
          ("shards", I shards);
          ("record_wall", F record_wall);
          ("detect_wall", F detect_wall);
        ] )
  | Wave_started { wave; tasks } ->
      ("wave_started", [ ("wave", I wave); ("tasks", I tasks) ])
  | Trial_started { pair; seed; domain } ->
      ("trial_started", [ ("pair", S pair); ("seed", I seed); ("domain", I domain) ])
  | Trial_finished
      {
        pair;
        seed;
        domain;
        race;
        error;
        deadlock;
        steps;
        switches;
        exns;
        wall;
        degraded;
        level;
        trigger;
        evicted;
      } ->
      ( "trial_finished",
        [
          ("pair", S pair);
          ("seed", I seed);
          ("domain", I domain);
          ("race", B race);
          ("error", B error);
          ("deadlock", B deadlock);
          ("steps", I steps);
          ("switches", I switches);
          ("exns", I exns);
          ("wall", F wall);
          ("degraded", B degraded);
          ("level", S level);
          ("trigger", S trigger);
          ("evicted", I evicted);
        ] )
  | Trial_crashed { pair; seed; domain; exn_; backtrace } ->
      ( "trial_crashed",
        [
          ("pair", S pair);
          ("seed", I seed);
          ("domain", I domain);
          ("exn", S exn_);
          ("backtrace", S backtrace);
        ] )
  | Trial_exhausted { pair; seed; domain; reason; steps; wall } ->
      ( "trial_exhausted",
        [
          ("pair", S pair);
          ("seed", I seed);
          ("domain", I domain);
          ("reason", S reason);
          ("steps", I steps);
          ("wall", F wall);
        ] )
  | Pair_filtered { pair; reason } ->
      ("pair_filtered", [ ("pair", S pair); ("reason", S reason) ])
  | Static_classified
      {
        universe;
        universe_impossible;
        frontier;
        likely;
        unknown;
        impossible;
        filtered;
        wall;
      } ->
      ( "static_classified",
        [
          ("universe", I universe);
          ("universe_impossible", I universe_impossible);
          ("frontier", I frontier);
          ("likely", I likely);
          ("unknown", I unknown);
          ("impossible", I impossible);
          ("filtered", I filtered);
          ("wall", F wall);
        ] )
  | Pair_resolved { pair; at_trial } ->
      ("pair_resolved", [ ("pair", S pair); ("at_trial", I at_trial) ])
  | Pair_quarantined { pair; crashes; at_trial } ->
      ( "pair_quarantined",
        [ ("pair", S pair); ("crashes", I crashes); ("at_trial", I at_trial) ] )
  | Trials_cancelled { pair; count } ->
      ("trials_cancelled", [ ("pair", S pair); ("count", I count) ])
  | Budget_granted { pair; extra } ->
      ("budget_granted", [ ("pair", S pair); ("extra", I extra) ])
  | Worker_crashed { domain; attempt; exn_ } ->
      ( "worker_crashed",
        [ ("domain", I domain); ("attempt", I attempt); ("exn", S exn_) ] )
  | Worker_respawned { domain; attempt; backoff } ->
      ( "worker_respawned",
        [ ("domain", I domain); ("attempt", I attempt); ("backoff", F backoff) ] )
  | Worker_gave_up { domain } -> ("worker_gave_up", [ ("domain", I domain) ])
  | Worker_spawned { worker; pid } ->
      ("worker_spawned", [ ("worker", I worker); ("pid", I pid) ])
  | Worker_killed { worker; pid; reason } ->
      ( "worker_killed",
        [ ("worker", I worker); ("pid", I pid); ("reason", S reason) ] )
  | Traces_saved { dir; count; bytes } ->
      ( "traces_saved",
        [ ("dir", S dir); ("count", I count); ("bytes", I bytes) ] )
  | Corpus_updated { dir; added; deduped; total } ->
      ( "corpus_updated",
        [
          ("dir", S dir);
          ("added", I added);
          ("deduped", I deduped);
          ("total", I total);
        ] )
  | Resume_loaded { entries; skipped } ->
      ("resume_loaded", [ ("entries", I entries); ("skipped", I skipped) ])
  | Campaign_interrupted { executed; remaining } ->
      ( "campaign_interrupted",
        [ ("executed", I executed); ("remaining", I remaining) ] )
  | Repro_written
      {
        pair;
        fingerprint;
        seed;
        file;
        steps_before;
        steps_after;
        switches_before;
        switches_after;
        oracle_runs;
      } ->
      ( "repro_written",
        [
          ("pair", S pair);
          ("fingerprint", S fingerprint);
          ("seed", I seed);
          ("file", S file);
          ("steps_before", I steps_before);
          ("steps_after", I steps_after);
          ("switches_before", I switches_before);
          ("switches_after", I switches_after);
          ("oracle_runs", I oracle_runs);
        ] )
  | Campaign_finished { wall; trials; cancelled; throughput } ->
      ( "campaign_finished",
        [
          ("wall", F wall);
          ("trials", I trials);
          ("cancelled", I cancelled);
          ("throughput", F throughput);
        ] )

let event_name ev = fst (fields_of_event ev)

let to_json ~seq ~elapsed ev =
  let name, fields = fields_of_event ev in
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "{\"seq\":%d,\"t\":%.6f,\"ev\":\"%s\"" seq elapsed name);
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf ",\"%s\":%s" k (jv_to_string v)))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON parsing: exactly the flat-object subset [to_json] emits.       *)

exception Parse_error

let parse_object (line : string) : (string * jv) list =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Parse_error else line.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Parse_error else advance () in
  let skip_ws () =
    while !pos < n && (peek () = ' ' || peek () = '\t') do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'u' ->
              if !pos + 4 >= n then raise Parse_error;
              let code =
                try int_of_string ("0x" ^ String.sub line (!pos + 1) 4)
                with _ -> raise Parse_error
              in
              pos := !pos + 4;
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%04x" code)
          | _ -> raise Parse_error);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    match peek () with
    | '"' -> S (parse_string ())
    | 't' ->
        pos := !pos + 4;
        if !pos > n then raise Parse_error;
        B true
    | 'f' ->
        pos := !pos + 5;
        if !pos > n then raise Parse_error;
        B false
    | 'n' ->
        pos := !pos + 4;
        if !pos > n then raise Parse_error;
        Null
    | _ ->
        let start = !pos in
        let is_float = ref false in
        while
          !pos < n
          &&
          match line.[!pos] with
          | '0' .. '9' | '-' | '+' -> true
          | '.' | 'e' | 'E' ->
              is_float := true;
              true
          | _ -> false
        do
          advance ()
        done;
        let s = String.sub line start (!pos - start) in
        if s = "" then raise Parse_error
        else if !is_float then
          F (try float_of_string s with _ -> raise Parse_error)
        else I (try int_of_string s with _ -> raise Parse_error)
  in
  expect '{';
  skip_ws ();
  if peek () = '}' then []
  else begin
    let fields = ref [] in
    let rec members () =
      skip_ws ();
      let k = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v = parse_value () in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | ',' ->
          advance ();
          members ()
      | '}' -> advance ()
      | _ -> raise Parse_error
    in
    members ();
    List.rev !fields
  end

let str_f fields k = match List.assoc_opt k fields with Some (S s) -> Some s | _ -> None
let int_f fields k = match List.assoc_opt k fields with Some (I n) -> Some n | _ -> None
let bool_f fields k = match List.assoc_opt k fields with Some (B b) -> Some b | _ -> None

let float_f fields k =
  match List.assoc_opt k fields with
  | Some (F x) -> Some x
  | Some (I n) -> Some (float_of_int n)
  | _ -> None

let opt_int_f fields k =
  match List.assoc_opt k fields with
  | Some (I n) -> Some (Some n)
  | Some Null -> Some None
  | _ -> None

let event_of_fields fields : event option =
  let ( let* ) = Option.bind in
  match str_f fields "ev" with
  | Some "journal_opened" ->
      let* schema = int_f fields "schema" in
      Some (Journal_opened { schema })
  | Some "campaign_started" ->
      let* domains = int_f fields "domains" in
      let* base_trials = int_f fields "base_trials" in
      let* budget = opt_int_f fields "budget" in
      let* cutoff = bool_f fields "cutoff" in
      Some (Campaign_started { domains; base_trials; budget; cutoff })
  | Some "phase1_finished" ->
      let* potential = int_f fields "potential" in
      let* wall = float_f fields "wall" in
      (* degradation fields arrived in v3, detector identity in v5;
         default for older journals *)
      let degraded = Option.value ~default:false (bool_f fields "degraded") in
      let level = Option.value ~default:"full" (str_f fields "level") in
      let detector = Option.value ~default:"hybrid" (str_f fields "detector") in
      let miss_bound = float_f fields "miss_bound" in
      Some (Phase1_finished { potential; wall; degraded; level; detector; miss_bound })
  | Some "phase1_recorded" ->
      let* events = int_f fields "events" in
      let* bytes = int_f fields "bytes" in
      let* shards = int_f fields "shards" in
      let* record_wall = float_f fields "record_wall" in
      let* detect_wall = float_f fields "detect_wall" in
      Some (Phase1_recorded { events; bytes; shards; record_wall; detect_wall })
  | Some "wave_started" ->
      let* wave = int_f fields "wave" in
      let* tasks = int_f fields "tasks" in
      Some (Wave_started { wave; tasks })
  | Some "trial_started" ->
      let* pair = str_f fields "pair" in
      let* seed = int_f fields "seed" in
      let* domain = int_f fields "domain" in
      Some (Trial_started { pair; seed; domain })
  | Some "trial_finished" ->
      let* pair = str_f fields "pair" in
      let* seed = int_f fields "seed" in
      let* domain = int_f fields "domain" in
      let* race = bool_f fields "race" in
      let* error = bool_f fields "error" in
      let* deadlock = bool_f fields "deadlock" in
      let* steps = int_f fields "steps" in
      let* switches = int_f fields "switches" in
      let* exns = int_f fields "exns" in
      let* wall = float_f fields "wall" in
      let degraded = Option.value ~default:false (bool_f fields "degraded") in
      let level = Option.value ~default:"full" (str_f fields "level") in
      let trigger = Option.value ~default:"" (str_f fields "trigger") in
      let evicted = Option.value ~default:0 (int_f fields "evicted") in
      Some
        (Trial_finished
           {
             pair;
             seed;
             domain;
             race;
             error;
             deadlock;
             steps;
             switches;
             exns;
             wall;
             degraded;
             level;
             trigger;
             evicted;
           })
  | Some "trial_crashed" ->
      let* pair = str_f fields "pair" in
      let* seed = int_f fields "seed" in
      let* domain = int_f fields "domain" in
      let* exn_ = str_f fields "exn" in
      let* backtrace = str_f fields "backtrace" in
      Some (Trial_crashed { pair; seed; domain; exn_; backtrace })
  | Some "trial_exhausted" ->
      let* pair = str_f fields "pair" in
      let* seed = int_f fields "seed" in
      let* domain = int_f fields "domain" in
      let* reason = str_f fields "reason" in
      let* steps = int_f fields "steps" in
      let* wall = float_f fields "wall" in
      Some (Trial_exhausted { pair; seed; domain; reason; steps; wall })
  | Some "pair_filtered" ->
      let* pair = str_f fields "pair" in
      let* reason = str_f fields "reason" in
      Some (Pair_filtered { pair; reason })
  | Some "static_classified" ->
      let* universe = int_f fields "universe" in
      let* universe_impossible = int_f fields "universe_impossible" in
      let* frontier = int_f fields "frontier" in
      let* likely = int_f fields "likely" in
      let* unknown = int_f fields "unknown" in
      let* impossible = int_f fields "impossible" in
      let* filtered = int_f fields "filtered" in
      let* wall = float_f fields "wall" in
      Some
        (Static_classified
           {
             universe;
             universe_impossible;
             frontier;
             likely;
             unknown;
             impossible;
             filtered;
             wall;
           })
  | Some "pair_resolved" ->
      let* pair = str_f fields "pair" in
      let* at_trial = int_f fields "at_trial" in
      Some (Pair_resolved { pair; at_trial })
  | Some "pair_quarantined" ->
      let* pair = str_f fields "pair" in
      let* crashes = int_f fields "crashes" in
      let* at_trial = int_f fields "at_trial" in
      Some (Pair_quarantined { pair; crashes; at_trial })
  | Some "trials_cancelled" ->
      let* pair = str_f fields "pair" in
      let* count = int_f fields "count" in
      Some (Trials_cancelled { pair; count })
  | Some "budget_granted" ->
      let* pair = str_f fields "pair" in
      let* extra = int_f fields "extra" in
      Some (Budget_granted { pair; extra })
  | Some "worker_crashed" ->
      let* domain = int_f fields "domain" in
      let* attempt = int_f fields "attempt" in
      let* exn_ = str_f fields "exn" in
      Some (Worker_crashed { domain; attempt; exn_ })
  | Some "worker_respawned" ->
      let* domain = int_f fields "domain" in
      let* attempt = int_f fields "attempt" in
      let* backoff = float_f fields "backoff" in
      Some (Worker_respawned { domain; attempt; backoff })
  | Some "worker_gave_up" ->
      let* domain = int_f fields "domain" in
      Some (Worker_gave_up { domain })
  | Some "worker_spawned" ->
      let* worker = int_f fields "worker" in
      let* pid = int_f fields "pid" in
      Some (Worker_spawned { worker; pid })
  | Some "worker_killed" ->
      let* worker = int_f fields "worker" in
      let* pid = int_f fields "pid" in
      let* reason = str_f fields "reason" in
      Some (Worker_killed { worker; pid; reason })
  | Some "traces_saved" ->
      let* dir = str_f fields "dir" in
      let* count = int_f fields "count" in
      let* bytes = int_f fields "bytes" in
      Some (Traces_saved { dir; count; bytes })
  | Some "corpus_updated" ->
      let* dir = str_f fields "dir" in
      let* added = int_f fields "added" in
      let* deduped = int_f fields "deduped" in
      let* total = int_f fields "total" in
      Some (Corpus_updated { dir; added; deduped; total })
  | Some "resume_loaded" ->
      let* entries = int_f fields "entries" in
      let* skipped = int_f fields "skipped" in
      Some (Resume_loaded { entries; skipped })
  | Some "campaign_interrupted" ->
      let* executed = int_f fields "executed" in
      let* remaining = int_f fields "remaining" in
      Some (Campaign_interrupted { executed; remaining })
  | Some "repro_written" ->
      let* pair = str_f fields "pair" in
      let* fingerprint = str_f fields "fingerprint" in
      let* seed = int_f fields "seed" in
      let* file = str_f fields "file" in
      let* steps_before = int_f fields "steps_before" in
      let* steps_after = int_f fields "steps_after" in
      let* switches_before = int_f fields "switches_before" in
      let* switches_after = int_f fields "switches_after" in
      let* oracle_runs = int_f fields "oracle_runs" in
      Some
        (Repro_written
           {
             pair;
             fingerprint;
             seed;
             file;
             steps_before;
             steps_after;
             switches_before;
             switches_after;
             oracle_runs;
           })
  | Some "campaign_finished" ->
      let* wall = float_f fields "wall" in
      let* trials = int_f fields "trials" in
      let* cancelled = int_f fields "cancelled" in
      let* throughput = float_f fields "throughput" in
      Some (Campaign_finished { wall; trials; cancelled; throughput })
  | _ -> None

let event_of_json line =
  match parse_object line with
  | fields -> event_of_fields fields
  | exception Parse_error -> None

(* ------------------------------------------------------------------ *)
(* Per-line checksums.

   Each journal line is sealed with an FNV-1a-64 hex digest of the line
   as rendered *without* the checksum, appended as a final "crc" field.
   Detects the silent-corruption cases a torn-tail check cannot: a
   partially overwritten middle line, filesystem bit rot, a hand-edited
   journal.  Unsealed lines (v2 and earlier journals) verify as absent,
   not bad, so old journals still load as observability streams. *)

let fnv_hex = Rf_util.Fnv.hex63

let crc_marker = ",\"crc\":\""
(* marker + 16 hex digits + closing quote and brace *)
let crc_suffix_len = String.length crc_marker + 16 + 2

let seal line =
  let n = String.length line in
  if n = 0 || line.[n - 1] <> '}' then line
  else
    String.sub line 0 (n - 1) ^ crc_marker ^ fnv_hex line ^ "\"}"

type seal_status = Sealed_ok | Sealed_bad | Unsealed

let check_seal line =
  let n = String.length line in
  if n < crc_suffix_len + 2 then Unsealed
  else if
    String.sub line (n - crc_suffix_len) (String.length crc_marker)
    <> crc_marker
    || line.[n - 1] <> '}'
    || line.[n - 2] <> '"'
  then Unsealed
  else
    let crc = String.sub line (n - 18) 16 in
    let original = String.sub line 0 (n - crc_suffix_len) ^ "}" in
    if fnv_hex original = crc then Sealed_ok else Sealed_bad

(* The flat-object JSON codec, exposed so sibling artifacts (the corpus
   index) can share the journal's exact line format and seal instead of
   growing a second hand-rolled parser. *)

let parse_flat line =
  match parse_object line with
  | fields -> Some fields
  | exception Parse_error -> None

let render_flat fields =
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%s" (escape k) (jv_to_string v)))
    fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let load_result path =
  let ic = open_in path in
  let events = ref [] in
  let skipped = ref 0 in
  (try
     let torn = ref false in
     while not !torn do
       let line = input_line ic in
       (* a crash mid-write leaves at most one torn line, necessarily the
          last complete-line-less tail; a line that fails to parse as a
          whole object ends the useful journal prefix *)
       if String.length line = 0 then ()
       else
         match check_seal line with
         | Sealed_bad ->
             (* checksum mismatch: corrupted in place, not torn — skip
                the record, keep reading, and let the caller warn *)
             incr skipped
         | Sealed_ok | Unsealed -> (
             match event_of_json line with
             | Some ev -> events := ev :: !events
             | None ->
                 if
                   String.length line < 2
                   || line.[0] <> '{'
                   || line.[String.length line - 1] <> '}'
                 then torn := true
                 (* else: well-formed object of an unknown/newer event — skip *))
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !events, !skipped)

let load path = fst (load_result path)

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

type sink = Drop | Lines of out_channel * bool (* close channel on close *) | Memory

type t = {
  mutex : Mutex.t;
  mutable seq : int;
  started : float;
  sink : sink;
  mutable mem : event list;  (** newest first; Memory sink only *)
  mutable closed : bool;
}

let make sink =
  {
    mutex = Mutex.create ();
    seq = 0;
    started = Unix.gettimeofday ();
    sink;
    mem = [];
    closed = false;
  }

let null () = make Drop
let to_channel oc = make (Lines (oc, false))

let open_file path =
  let t = make (Lines (open_out path, true)) in
  t

let memory () = make Memory

let emit t ev =
  match t.sink with
  | Drop -> ()
  | Memory ->
      Mutex.protect t.mutex (fun () ->
          t.seq <- t.seq + 1;
          t.mem <- ev :: t.mem)
  | Lines (oc, _) ->
      Mutex.protect t.mutex (fun () ->
          if not t.closed then begin
            t.seq <- t.seq + 1;
            let line =
              seal (to_json ~seq:t.seq ~elapsed:(Unix.gettimeofday () -. t.started) ev)
            in
            output_string oc line;
            output_char oc '\n';
            flush oc
          end)

let open_file path =
  let t = open_file path in
  emit t (Journal_opened { schema = schema_version });
  t

let events t = Mutex.protect t.mutex (fun () -> List.rev t.mem)

let flush_log t =
  match t.sink with
  | Lines (oc, _) ->
      Mutex.protect t.mutex (fun () -> if not t.closed then flush oc)
  | _ -> ()

(* [close] shares the emit mutex so a worker mid-write can never race the
   channel teardown, and is idempotent. *)
let close t =
  match t.sink with
  | Lines (oc, close_ch) ->
      Mutex.protect t.mutex (fun () ->
          if not t.closed then begin
            t.closed <- true;
            if close_ch then close_out oc else flush oc
          end)
  | _ -> ()
