(** Regeneration of the paper's Table 1.

    For every workload analogue the harness reports the paper's columns:

    1. program name,
    2. SLOC of the model,
    3. average runtime of a normal execution (no analysis),
    4. average runtime under hybrid race detection (phase 1),
    5. average runtime under RaceFuzzer (phase 2),
    6. number of potential racing statement pairs found by hybrid,
    7. number of real races confirmed by RaceFuzzer,
    8. number of real races known from prior case studies ('-' if none),
    9. number of racing pairs whose resolution threw an uncaught exception,
    10. number of exception-throwing trials under the simple random
        scheduler (the paper's default-scheduler column),
    11. empirical probability of creating a real race, estimated like the
        paper "we ran RaceFuzzer 100 times for each racing pair" and
        averaged over the confirmed-real pairs.

    Wall-clock columns are model-simulation times — the *ratios* between
    columns 3–5 are the reproducible signal (hybrid tracks every access;
    RaceFuzzer only synchronization plus one pair), not the absolute
    values. *)

open Rf_util
open Rf_runtime
open Racefuzzer
module W = Rf_workloads

type row = {
  r_name : string;
  r_sloc : int;
  r_time_normal : float;  (** seconds, mean; negative = not measured *)
  r_time_hybrid : float;
  r_time_rf : float;  (** mean wall time of one phase-2 execution *)
  r_potential : int;
  r_real : int;
  r_known : int option;
  r_exceptions_rf : int;  (** distinct pairs with an exception *)
  r_exceptions_simple : int;  (** distinct crash sites under simple random *)
  r_probability : float;  (** NaN when no real race *)
  r_steps_normal : float;
  r_steps_hybrid : float;
}

type config = {
  phase1_seeds : int list;
  seeds_per_pair : int list;
  baseline_seeds : int list;
  timing_seeds : int list;
}

let default_config =
  {
    phase1_seeds = List.init 5 Fun.id;
    seeds_per_pair = List.init 100 Fun.id;
    baseline_seeds = List.init 100 Fun.id;
    timing_seeds = List.init 5 Fun.id;
  }

(** A faster configuration for tests and quick demos. *)
let quick_config =
  {
    phase1_seeds = List.init 3 Fun.id;
    seeds_per_pair = List.init 25 Fun.id;
    baseline_seeds = List.init 25 Fun.id;
    timing_seeds = List.init 2 Fun.id;
  }

let time_runs ~seeds ~policy ~listeners_of program =
  let outs =
    List.map
      (fun seed ->
        Engine.run
          ~config:{ Engine.default_config with seed; policy }
          ~listeners:(listeners_of ()) ~strategy:(Strategy.random ()) program)
      seeds
  in
  ( Stats.mean (List.map (fun (o : Outcome.t) -> o.Outcome.wall_time) outs),
    Stats.mean_int (List.map (fun (o : Outcome.t) -> o.Outcome.steps) outs) )

let row_of_workload ?(config = default_config) (w : W.Workload.t) : row =
  let program = w.W.Workload.program in
  (* timing: normal execution — sync-only switching, no listeners *)
  let t_normal, steps_normal =
    time_runs ~seeds:config.timing_seeds
      ~policy:(Engine.Sync_and Site.Set.empty)
      ~listeners_of:(fun () -> [])
      program
  in
  (* timing: hybrid detection — every access observed *)
  let t_hybrid, steps_hybrid =
    time_runs ~seeds:config.timing_seeds ~policy:Engine.Every_op
      ~listeners_of:(fun () ->
        let d = Rf_detect.Detector.hybrid () in
        [ Rf_detect.Detector.feed d ])
      program
  in
  (* the actual two-phase analysis *)
  let a =
    Fuzzer.analyze ~phase1_seeds:config.phase1_seeds
      ~seeds_per_pair:config.seeds_per_pair program
  in
  let potential = Fuzzer.potential_pairs a.Fuzzer.a_phase1 in
  let real_results = List.filter Fuzzer.is_real a.Fuzzer.results in
  let t_rf =
    (* mean wall time of a single phase-2 execution across all pairs *)
    let per_run =
      List.concat_map
        (fun (r : Fuzzer.pair_result) ->
          [ r.Fuzzer.pr_wall /. float_of_int (max 1 (List.length r.Fuzzer.trials)) ])
        a.Fuzzer.results
    in
    Stats.mean per_run
  in
  let simple =
    Fuzzer.baseline ~seeds:config.baseline_seeds ~make_strategy:Strategy.random program
  in
  {
    r_name = w.W.Workload.name;
    r_sloc = w.W.Workload.sloc;
    r_time_normal = (if w.W.Workload.interactive then -1.0 else t_normal);
    r_time_hybrid = (if w.W.Workload.interactive then -1.0 else t_hybrid);
    r_time_rf = t_rf;
    r_potential = Site.Pair.Set.cardinal potential;
    r_real = Site.Pair.Set.cardinal a.Fuzzer.real_pairs;
    r_known = w.W.Workload.known_real_races;
    r_exceptions_rf = Site.Pair.Set.cardinal a.Fuzzer.error_pairs;
    r_exceptions_simple = Site.Set.cardinal simple.Fuzzer.b_exception_sites;
    r_probability =
      (if real_results = [] then Float.nan
       else Stats.mean (List.map (fun r -> r.Fuzzer.probability) real_results));
    r_steps_normal = steps_normal;
    r_steps_hybrid = steps_hybrid;
  }

let generate ?(config = default_config) ?(workloads = W.Registry.all) () =
  List.map (row_of_workload ~config) workloads

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let header =
  [
    "Program"; "SLOC"; "Normal(ms)"; "Hybrid(ms)"; "RF(ms)"; "Hybrid#"; "RF(real)";
    "known"; "Exc RF"; "Exc Simple"; "Prob";
  ]

let cells_of_row r =
  [
    r.r_name;
    string_of_int r.r_sloc;
    Fmt.str "%a" Stats.pp_time_ms r.r_time_normal;
    Fmt.str "%a" Stats.pp_time_ms r.r_time_hybrid;
    Fmt.str "%a" Stats.pp_time_ms r.r_time_rf;
    string_of_int r.r_potential;
    string_of_int r.r_real;
    (match r.r_known with Some k -> string_of_int k | None -> "-");
    string_of_int r.r_exceptions_rf;
    string_of_int r.r_exceptions_simple;
    Fmt.str "%a" Stats.pp_prob r.r_probability;
  ]

let render ppf rows =
  let table = header :: List.map cells_of_row rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 table)
  in
  let line row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Fmt.pf ppf "%-*s" w cell else Fmt.pf ppf "  %*s" w cell)
      row;
    Fmt.pf ppf "@."
  in
  line header;
  line (List.map (fun w -> String.make w '-') widths);
  List.iter (fun r -> line (cells_of_row r)) rows

let pp_rows ppf rows = render ppf rows
