(* The cache4j cleaner crash from the paper's §5.3: the `_sleep` flag is
   written by the cleaner without a lock and read by the user thread under
   the cleaner's monitor; resolving the race lets an interrupt land in the
   cleaner's unprotected window, killing it with an uncaught
   InterruptedException.

   Run with:  dune exec examples/cache4j_bug.exe *)

open Rf_util
module W = Rf_workloads

let () =
  Fmt.pr "== cache4j _sleep/interrupt bug (paper §5.3) ==@.@.";
  let program = W.Cache4j.workload.W.Workload.program in
  (* fuzz just the harmful pair, as phase 2 would after phase 1 *)
  let r =
    Racefuzzer.Fuzzer.fuzz_pair ~seeds:(List.init 100 Fun.id) ~program
      W.Cache4j.harmful_pair
  in
  Fmt.pr "pair %a:@." Site.Pair.pp W.Cache4j.harmful_pair;
  Fmt.pr "  race created in %d/100 runs@." r.Racefuzzer.Fuzzer.race_trials;
  Fmt.pr "  cleaner crashed in %d/100 runs@." r.Racefuzzer.Fuzzer.error_trials;
  (* contrast with undirected random testing *)
  let b =
    Racefuzzer.Fuzzer.baseline ~seeds:(List.init 100 Fun.id)
      ~make_strategy:Rf_runtime.Strategy.random program
  in
  Fmt.pr "  (simple random scheduler crashed it in %d/100 runs)@.@."
    b.Racefuzzer.Fuzzer.b_error_trials;
  match r.Racefuzzer.Fuzzer.error_seed with
  | None -> Fmt.pr "no crash to replay@."
  | Some seed ->
      Fmt.pr "replaying crash seed %d:@." seed;
      let o, rep = Racefuzzer.Fuzzer.replay ~seed ~program W.Cache4j.harmful_pair in
      List.iter
        (fun h -> Fmt.pr "  %a@." Racefuzzer.Algo.pp_hit h)
        (Racefuzzer.Algo.hits rep);
      List.iter
        (fun (x : Rf_runtime.Outcome.exn_report) ->
          Fmt.pr "  uncaught %s in %s@."
            (Printexc.to_string x.Rf_runtime.Outcome.exn_)
            x.Rf_runtime.Outcome.xthread)
        o.Rf_runtime.Outcome.exceptions
