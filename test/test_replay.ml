(* Record/replay/shrink tier.  A recording must replay bit-for-bit;
   divergence must be detected and located; the shrinker must be a
   fixpoint whose output still reproduces the recorded error. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Schedule = Rf_replay.Schedule
module Replayer = Rf_replay.Replayer

let fig1 () = Rf_workloads.Figure1.program ()
let fig1_pair = Rf_workloads.Figure1.real_pair

(* The first seed whose figure1 trial under Algo ends in ERROR1. *)
let error_seed =
  lazy
    (let rec go s =
       if s > 199 then Alcotest.fail "figure1: no erroring seed in 0..199"
       else
         let tr = Fuzzer.run_trial_exn ~max_steps:10_000 ~program:fig1 fig1_pair s in
         match Schedule.error_fingerprint tr.Fuzzer.t_outcome with
         | Some _ -> s
         | None -> go (s + 1)
     in
     go 0)

let record_fig1 () =
  let seed = Lazy.force error_seed in
  Fuzzer.record_trial ~target:"figure1" ~max_steps:10_000 ~program:fig1 fig1_pair
    seed

(* 1. Exact replay of a full recording takes every recorded step and
   reproduces the recorded outcome exactly. *)
let test_exact_replay () =
  let trial, sched = record_fig1 () in
  Alcotest.(check bool)
    "recording carries an error" true
    (sched.Schedule.meta.Schedule.m_error <> None);
  let outcome, status = Fuzzer.replay_schedule ~mode:Replayer.Exact ~program:fig1 sched in
  Alcotest.(check int) "taken = length" (Schedule.length sched)
    status.Replayer.taken;
  Alcotest.(check bool) "no divergence" true (status.Replayer.divergence = None);
  Alcotest.(check bool) "no fallback" false status.Replayer.fell_back;
  Alcotest.(check int) "same step count" trial.Fuzzer.t_outcome.Rf_runtime.Outcome.steps
    outcome.Rf_runtime.Outcome.steps;
  Alcotest.(check (option string))
    "same error fingerprint" sched.Schedule.meta.Schedule.m_error
    (Schedule.error_fingerprint outcome)

(* 2. JSON round-trip, including through a file. *)
let test_json_roundtrip () =
  let _, sched = record_fig1 () in
  let sched' = Schedule.of_json (Schedule.to_json sched) in
  Alcotest.(check bool) "of_json . to_json = id" true (Schedule.equal sched sched');
  let file = Filename.temp_file "rf_test" ".sched.json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      Schedule.save file sched;
      Alcotest.(check bool) "load . save = id" true
        (Schedule.equal sched (Schedule.load file)))

(* 3. A reader never guesses at a future format. *)
let test_version_drift () =
  let _, sched = record_fig1 () in
  let json = Schedule.to_json sched in
  let drift =
    (* Splice a bogus version over the (unique) real one. *)
    let sub = Schedule.version in
    let rec find i =
      if i + String.length sub > String.length json then
        Alcotest.fail "version tag not found in JSON"
      else if String.sub json i (String.length sub) = sub then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub json 0 i ^ "rf-schedule/9"
    ^ String.sub json
        (i + String.length sub)
        (String.length json - i - String.length sub)
  in
  Alcotest.check_raises "version drift rejected"
    (Schedule.Format_error
       (Printf.sprintf "schedule version %S, this reader speaks %S" "rf-schedule/9"
          Schedule.version))
    (fun () -> ignore (Schedule.of_json drift))

(* 4. Divergence is detected at the first bad step and reported with its
   index. *)
let test_divergence_located () =
  let _, sched = record_fig1 () in
  let n = Schedule.length sched in
  Alcotest.(check bool) "recording is non-trivial" true (n >= 2);
  let bad = n - 1 in
  let steps = Array.copy sched.Schedule.steps in
  steps.(bad) <- { steps.(bad) with Schedule.st_tid = 97 };
  let mutated = Schedule.with_steps sched steps in
  let _, status = Fuzzer.replay_schedule ~mode:Replayer.Exact ~program:fig1 mutated in
  (match status.Replayer.divergence with
  | None -> Alcotest.fail "mutated schedule replayed without divergence"
  | Some d ->
      Alcotest.(check int) "divergence at the mutated step" bad d.Replayer.d_step;
      Alcotest.(check int) "expected tid is the mutated one" 97
        d.Replayer.d_expected_tid);
  Alcotest.(check bool) "fell back after divergence" true status.Replayer.fell_back

(* 5. Strict mode raises instead of falling back. *)
let test_strict_raises () =
  let _, sched = record_fig1 () in
  let steps = Array.copy sched.Schedule.steps in
  steps.(0) <- { steps.(0) with Schedule.st_tid = 97 };
  let mutated = Schedule.with_steps sched steps in
  match Fuzzer.replay_schedule ~mode:Replayer.Strict ~program:fig1 mutated with
  | exception Replayer.Diverged d ->
      Alcotest.(check int) "raised at step 0" 0 d.Replayer.d_step
  | _ -> Alcotest.fail "Strict replay of a mutated schedule did not raise"

(* 6. The minimized schedule reproduces, and minimization is idempotent:
   re-minimizing moves nothing. *)
let test_shrink_reproduces_and_fixpoint () =
  let _, sched = record_fig1 () in
  match Fuzzer.minimize_schedule ~program:fig1 sched with
  | None -> Alcotest.fail "minimization lost the error"
  | Some (min1, st1) ->
      Alcotest.(check bool) "shrunk, not grown" true
        (st1.Rf_replay.Shrinker.sh_steps_after
        <= st1.Rf_replay.Shrinker.sh_steps_before);
      let outcome, status = Fuzzer.replay_schedule ~program:fig1 min1 in
      Alcotest.(check bool) "minimized replay has no divergence" true
        (status.Replayer.divergence = None);
      Alcotest.(check (option string))
        "minimized replay reproduces the fingerprint"
        sched.Schedule.meta.Schedule.m_error
        (Schedule.error_fingerprint outcome);
      (match Fuzzer.minimize_schedule ~program:fig1 min1 with
      | None -> Alcotest.fail "re-minimization lost the error"
      | Some (min2, _) ->
          Alcotest.(check (pair int int))
            "idempotent: (steps, switches) is a fixpoint"
            (Schedule.length min1, Schedule.switches min1)
            (Schedule.length min2, Schedule.switches min2))

(* 7. QCheck: over arbitrary well-formed RFL programs, recording any
   phase-2 trial and replaying it exactly reproduces the outcome — same
   error fingerprint, no divergence — and the schedule survives JSON. *)
let prop_record_replay_roundtrip =
  QCheck.Test.make ~name:"record -> replay reproduces on generated programs"
    ~count:20
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let main = Rf_lang.Lang.program ~print:ignore prog in
      let pairs =
        Site.Pair.Set.elements
          (Fuzzer.potential_pairs (Fuzzer.phase1 ~seeds:[ 0; 1 ] ~max_steps:100_000 main))
      in
      (* Bound the cost: two candidate pairs per generated program. *)
      let pairs = List.filteri (fun i _ -> i < 2) pairs in
      List.for_all
        (fun pair ->
          let trial, sched =
            Fuzzer.record_trial ~max_steps:100_000 ~program:main pair seed
          in
          let sched = Schedule.of_json (Schedule.to_json sched) in
          let outcome, status = Fuzzer.replay_schedule ~program:main sched in
          status.Replayer.divergence = None
          && (not status.Replayer.fell_back)
          && status.Replayer.taken = Schedule.length sched
          && outcome.Rf_runtime.Outcome.steps
             = trial.Fuzzer.t_outcome.Rf_runtime.Outcome.steps
          && Schedule.error_fingerprint outcome
             = sched.Schedule.meta.Schedule.m_error)
        pairs)

let () =
  Alcotest.run "replay"
    [
      ( "unit",
        [
          Alcotest.test_case "exact replay reproduces" `Quick test_exact_replay;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "version drift rejected" `Quick test_version_drift;
          Alcotest.test_case "divergence located" `Quick test_divergence_located;
          Alcotest.test_case "strict mode raises" `Quick test_strict_raises;
          Alcotest.test_case "shrink reproduces + fixpoint" `Slow
            test_shrink_reproduces_and_fixpoint;
        ] );
      ( "qcheck",
        [ QCheck_alcotest.to_alcotest prop_record_replay_roundtrip ] );
    ]
