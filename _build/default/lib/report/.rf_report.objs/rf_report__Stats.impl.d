lib/report/stats.ml: Float Fmt List
