(* Multi-process campaign tier and the persistent corpus:

   1. Frame codec precision: every way a frame can be defective —
      truncated, bit-flipped, absurd length — is detected, never
      misparsed; intact frames round-trip through a streaming buffer.
   2. Real worker processes: a SIGKILLed worker surfaces as Ev_died
      with its in-flight assignment requeued, a torn result frame is
      rejected with a checksum-mismatch reason, and the fleet respawns.
   3. Fingerprint parity: a campaign over real worker processes — even
      one whose workers are SIGKILLed mid-wave by chaos — produces the
      exact fingerprints of the in-process run.
   4. Corpus: (kind, key) dedup across consecutive campaigns, strict
      [verify] after tampering, and SIGKILL during an index rewrite
      leaves the previous index byte-intact and loadable. *)

open Rf_util
module Campaign = Rf_campaign.Campaign
module Event_log = Rf_campaign.Event_log
module Chaos = Rf_campaign.Chaos
module Corpus = Rf_campaign.Corpus
module Proc_pool = Rf_campaign.Proc_pool
module Frame = Rf_campaign.Proc_pool.Frame
module Supervisor = Rf_campaign.Supervisor
module W = Rf_workloads

let fp r = Campaign.fingerprint r.Campaign.analysis
let cfp r = Campaign.confirmed_fingerprint r.Campaign.analysis
let seeds n = List.init n Fun.id

(* The test binary has no campaign-worker mode; the CLI binary does.
   Tests run from _build/default/test, and test/dune declares the dep. *)
let worker_cmd = [| "../bin/main.exe"; "campaign-worker" |]

let spec ?(workers = 2) ?(heartbeat = 30.) () =
  {
    Proc_pool.sp_cmd = worker_cmd;
    sp_workers = workers;
    sp_heartbeat = heartbeat;
    sp_rlimit_as_mb = None;
    sp_rlimit_cpu_s = None;
    sp_policy = Supervisor.default_policy;
    sp_target = "figure1";
  }

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)

let test_frame_roundtrip_streaming () =
  let buf = Buffer.create 64 in
  (* feed two frames byte by byte: decode must return None on every
     prefix and each payload exactly once, in order *)
  let wire = Frame.encode "hello" ^ Frame.encode "world" in
  let got = ref [] in
  String.iter
    (fun c ->
      Buffer.add_char buf c;
      match Frame.decode buf with
      | Some p -> got := p :: !got
      | None -> ())
    wire;
  Alcotest.(check (list string)) "both payloads, in order" [ "hello"; "world" ]
    (List.rev !got);
  Alcotest.(check int) "buffer fully consumed" 0 (Buffer.length buf)

let test_frame_prefix_is_not_an_error () =
  let whole = Frame.encode "payload" in
  for cut = 0 to String.length whole - 1 do
    let buf = Buffer.create 32 in
    Buffer.add_string buf (String.sub whole 0 cut);
    match Frame.decode buf with
    | None -> ()
    | Some _ -> Alcotest.failf "truncated frame (cut at %d) decoded" cut
  done

let test_frame_bitflip_is_corrupt () =
  let whole = Frame.encode "some payload bytes" in
  (* flipping any payload or checksum byte must raise Corrupt naming a
     checksum mismatch (length-prefix flips may instead report a bad
     length, tested separately) *)
  for i = 4 to String.length whole - 1 do
    let b = Bytes.of_string whole in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    let buf = Buffer.create 32 in
    Buffer.add_bytes buf b;
    match Frame.decode buf with
    | Some _ | None -> Alcotest.failf "bit-flip at byte %d went undetected" i
    | exception Frame.Corrupt msg ->
        if not (contains ~needle:"checksum mismatch" msg) then
          Alcotest.failf "flip at %d: imprecise error %S" i msg
  done

let test_frame_bad_length_is_corrupt () =
  let check name wire =
    let buf = Buffer.create 32 in
    Buffer.add_string buf wire;
    match Frame.decode buf with
    | Some _ | None -> Alcotest.failf "%s went undetected" name
    | exception Frame.Corrupt msg ->
        Alcotest.(check bool)
          (name ^ ": error mentions the length")
          true
          (contains ~needle:"length" msg)
  in
  (* zero length *)
  check "zero-length frame" "\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00";
  (* length far beyond the sanity cap *)
  check "oversized frame" "\xff\xff\xff\x7f rest never read"

(* ------------------------------------------------------------------ *)
(* Real worker processes                                               *)

let mk_init () =
  {
    Proc_pool.i_target = "figure1";
    i_max_steps = 10_000;
    i_postpone = None;
    i_detector_budget = None;
    i_mem_budget = None;
    i_no_degrade = false;
    i_trial_wall = None;
  }

let mk_assignment ?(id = 1) ?(die = false) ?(torn = false) () =
  let s1 = Site.make ~file:"figure1" ~line:1 "t" in
  let s2 = Site.make ~file:"figure1" ~line:2 "u" in
  {
    Proc_pool.a_id = id;
    a_pair = Site.Pair.make s1 s2;
    a_seed = 0;
    a_crash = false;
    a_stall = 0.;
    a_tripped = false;
    a_die = die;
    a_torn = torn;
    a_hang = false;
  }

(* Drive the pool until [pred] accepts an event; fail after [deadline]. *)
let poll_until t ~deadline pred =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if Unix.gettimeofday () -. t0 > deadline then
      Alcotest.fail "pool event did not arrive before the deadline";
    let evs = Proc_pool.poll t ~timeout:0.2 in
    match List.find_opt pred evs with Some e -> e | None -> go ()
  in
  go ()

let with_pool ?workers f =
  let t = Proc_pool.create (spec ?workers ()) ~init:(mk_init ()) in
  Fun.protect ~finally:(fun () -> Proc_pool.kill_all t) (fun () ->
      if not (Proc_pool.await_ready t ~timeout:30.) then
        Alcotest.fail "no worker completed its handshake";
      f t)

let test_worker_runs_an_assignment () =
  with_pool (fun t ->
      let w =
        match Proc_pool.idle_workers t with
        | w :: _ -> w
        | [] -> Alcotest.fail "ready pool has no idle worker"
      in
      Proc_pool.assign t ~worker:w (mk_assignment ~id:7 ());
      match
        poll_until t ~deadline:15. (function
          | Proc_pool.Ev_result _ -> true
          | _ -> false)
      with
      | Proc_pool.Ev_result { ev_id; ev_result; _ } ->
          Alcotest.(check int) "assignment id echoed" 7 ev_id;
          (match ev_result with
          | Proc_pool.T_finished _ -> ()
          | T_crashed { t_exn; _ } -> Alcotest.failf "worker crashed: %s" t_exn
          | T_exhausted { t_reason; _ } ->
              Alcotest.failf "worker exhausted: %s" t_reason)
      | _ -> assert false)

let test_sigkilled_worker_requeues_in_flight () =
  with_pool (fun t ->
      let w = List.hd (Proc_pool.idle_workers t) in
      (* a_die: the worker SIGKILLs itself on receipt — a real process
         death with the assignment in flight *)
      Proc_pool.assign t ~worker:w (mk_assignment ~id:42 ~die:true ());
      match
        poll_until t ~deadline:15. (function
          | Proc_pool.Ev_died _ -> true
          | _ -> false)
      with
      | Proc_pool.Ev_died { ev_in_flight; ev_respawning; _ } ->
          Alcotest.(check (option int)) "in-flight assignment surfaced"
            (Some 42) ev_in_flight;
          Alcotest.(check bool) "slot respawns" true ev_respawning;
          (* the slot must come back: a fresh handshake after backoff *)
          (match
             poll_until t ~deadline:20. (function
               | Proc_pool.Ev_ready _ -> true
               | _ -> false)
           with
          | Proc_pool.Ev_ready _ -> ()
          | _ -> assert false)
      | _ -> assert false)

let test_torn_result_frame_kills_the_worker () =
  with_pool (fun t ->
      let w = List.hd (Proc_pool.idle_workers t) in
      (* a_torn: the worker replies with a deliberately corrupted frame;
         the supervisor must report a checksum mismatch, kill the
         worker, and requeue the assignment — never misparse *)
      Proc_pool.assign t ~worker:w (mk_assignment ~id:9 ~torn:true ());
      match
        poll_until t ~deadline:15. (function
          | Proc_pool.Ev_died _ -> true
          | _ -> false)
      with
      | Proc_pool.Ev_died { ev_in_flight; ev_reason; ev_killed; _ } ->
          Alcotest.(check (option int)) "assignment requeued" (Some 9)
            ev_in_flight;
          Alcotest.(check bool) "supervisor killed it" true ev_killed;
          Alcotest.(check bool)
            ("reason pinpoints the corruption: " ^ ev_reason)
            true
            (contains ~needle:"checksum mismatch" ev_reason)
      | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Fingerprint parity across execution tiers                           *)

let run_fig1 ?chaos ?proc ?corpus ?log () =
  Campaign.run ~domains:2 ~cutoff:true ~phase1_seeds:(seeds 5)
    ~seeds_per_pair:(seeds 20) ?chaos ?proc ?corpus ?log ~target:"figure1"
    W.Figure1.program

let test_proc_campaign_fingerprint_parity () =
  let inproc = run_fig1 () in
  let journal = Filename.temp_file "rf-proc" ".journal" in
  let log = Event_log.open_file journal in
  let proc = Fun.protect ~finally:(fun () -> Event_log.close log)
      (fun () -> run_fig1 ~proc:(spec ()) ~log ()) in
  (* prove the proc tier really ran (no silent in-process fallback) *)
  let spawned =
    List.exists
      (function Event_log.Worker_spawned _ -> true | _ -> false)
      (Event_log.load journal)
  in
  Alcotest.(check bool) "worker processes were spawned" true spawned;
  Alcotest.(check string) "fingerprint parity" (fp inproc) (fp proc);
  Alcotest.(check string) "confirmed parity" (cfp inproc) (cfp proc)

let test_proc_campaign_survives_worker_sigkill () =
  let inproc = run_fig1 () in
  (* chaos kill_assignment SIGKILLs the worker holding the Nth
     assignment: a real mid-wave process death.  The requeue/respawn
     path must reproduce the in-process fingerprints exactly. *)
  let chaos = Chaos.plan ~kill_assignment:5 0 in
  let killed = run_fig1 ~chaos ~proc:(spec ()) () in
  Alcotest.(check bool) "a worker actually died" true
    (killed.Campaign.stats.Campaign.s_worker_crashes > 0);
  Alcotest.(check string) "fingerprint parity under SIGKILL" (fp inproc)
    (fp killed);
  Alcotest.(check string) "confirmed parity under SIGKILL" (cfp inproc)
    (cfp killed)

(* ------------------------------------------------------------------ *)
(* Corpus                                                              *)

let tmpdir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s-%d" prefix (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then (
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Unix.rmdir path)
    else Sys.remove path
  in
  if Sys.file_exists dir then rm dir;
  dir

let test_corpus_dedup_and_seen () =
  let dir = tmpdir "rf-corpus" in
  let e = Corpus.entry ~kind:"error" ~key:"deadbeef" ~target:"figure1" () in
  let s1 = Corpus.update ~dir [ e ] in
  Alcotest.(check int) "first update adds" 1 s1.Corpus.cs_added;
  let s2 = Corpus.update ~dir [ e ] in
  Alcotest.(check int) "second update dedups" 0 s2.Corpus.cs_added;
  Alcotest.(check int) "dedup counted" 1 s2.Corpus.cs_deduped;
  (match Corpus.load dir with
  | [ got ] ->
      Alcotest.(check string) "key kept" "deadbeef" got.Corpus.e_key;
      Alcotest.(check int) "seen bumped" 2 got.Corpus.e_seen
  | l -> Alcotest.failf "expected exactly one entry, got %d" (List.length l));
  match Corpus.verify ~dir with
  | Ok n -> Alcotest.(check int) "verify count" 1 n
  | Error problems ->
      Alcotest.failf "verify failed: %s" (String.concat "; " problems)

let test_corpus_verify_catches_tampering () =
  let dir = tmpdir "rf-corpus-tamper" in
  let src = Filename.temp_file "rf-artifact" ".json" in
  let oc = open_out src in
  output_string oc "{\"sched\":[1,2,3]}\n";
  close_out oc;
  let e =
    Corpus.ingest_file ~dir ~kind:"error" ~key:"cafe" ~target:"figure1" ~src ()
  in
  ignore (Corpus.update ~dir [ e ]);
  Sys.remove src;
  (match Corpus.verify ~dir with
  | Ok 1 -> ()
  | Ok n -> Alcotest.failf "expected 1 entry, verify saw %d" n
  | Error p -> Alcotest.failf "fresh corpus must verify: %s" (String.concat "; " p));
  (* tamper with the artifact bytes: strict verify must object, the
     tolerant load must still return the entry *)
  let artifact = Filename.concat dir e.Corpus.e_file in
  let oc = open_out_gen [ Open_append ] 0o644 artifact in
  output_string oc "garbage";
  close_out oc;
  (match Corpus.verify ~dir with
  | Ok _ -> Alcotest.fail "verify accepted a tampered artifact"
  | Error problems ->
      Alcotest.(check bool) "problem names the artifact" true
        (List.exists (contains ~needle:e.Corpus.e_file) problems));
  Alcotest.(check int) "tolerant load still works" 1
    (List.length (Corpus.load dir))

(* SIGKILL during an index rewrite: the child appends entries in a hot
   loop (each [update] is an Atomic_file tmp-write + rename); the parent
   kills it at an arbitrary moment.  Whatever instant the kill lands —
   mid-tmp-write or between renames — the index must remain a complete,
   strictly verifiable previous version. *)
let corpus_kill_child dir =
  let n = ref 0 in
  while true do
    incr n;
    ignore
      (Corpus.update ~dir
         [ Corpus.entry ~kind:"degraded" ~key:(Printf.sprintf "k%06d" !n) () ])
  done

let test_corpus_survives_sigkill_mid_write () =
  let dir = tmpdir "rf-corpus-kill" in
  ignore (Corpus.update ~dir [ Corpus.entry ~kind:"error" ~key:"seed" () ]);
  let env =
    Array.append (Unix.environment ()) [| "RF_CORPUS_KILL=" ^ dir |]
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  (* let the child do real index rewrites, then kill it cold *)
  let deadline = Unix.gettimeofday () +. 10. in
  let grown () = List.length (Corpus.load dir) > 1 in
  while (not (grown ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Alcotest.(check bool) "child made progress before the kill" true (grown ());
  let entries = Corpus.load dir in
  Alcotest.(check bool) "seed entry survived" true
    (List.exists (fun e -> e.Corpus.e_key = "seed") entries);
  match Corpus.verify ~dir with
  | Ok n ->
      Alcotest.(check int) "verify agrees with load" (List.length entries) n
  | Error problems ->
      Alcotest.failf "index corrupt after SIGKILL: %s"
        (String.concat "; " problems)

let test_campaign_corpus_dedups_across_runs () =
  let dir = tmpdir "rf-corpus-campaign" in
  let r1 = run_fig1 ~corpus:dir () in
  let n1 = List.length (Corpus.load dir) in
  Alcotest.(check bool) "first campaign populated the corpus" true (n1 > 0);
  let r2 = run_fig1 ~corpus:dir () in
  Alcotest.(check string) "identical campaigns" (fp r1) (fp r2);
  let entries = Corpus.load dir in
  Alcotest.(check int) "second campaign added nothing" n1
    (List.length entries);
  Alcotest.(check bool) "every entry re-observed" true
    (List.for_all (fun e -> e.Corpus.e_seen = 2) entries);
  match Corpus.verify ~dir with
  | Ok _ -> ()
  | Error p -> Alcotest.failf "verify failed: %s" (String.concat "; " p)

(* ------------------------------------------------------------------ *)

let () =
  (match Sys.getenv_opt "RF_CORPUS_KILL" with
  | Some dir -> corpus_kill_child dir
  | None -> ());
  Alcotest.run "procpool"
    [
      ( "frame",
        [
          Alcotest.test_case "streaming roundtrip" `Quick
            test_frame_roundtrip_streaming;
          Alcotest.test_case "prefix is not an error" `Quick
            test_frame_prefix_is_not_an_error;
          Alcotest.test_case "bit-flip raises Corrupt" `Quick
            test_frame_bitflip_is_corrupt;
          Alcotest.test_case "bad length raises Corrupt" `Quick
            test_frame_bad_length_is_corrupt;
        ] );
      ( "workers",
        [
          Alcotest.test_case "assignment round-trips" `Quick
            test_worker_runs_an_assignment;
          Alcotest.test_case "SIGKILL requeues in-flight" `Quick
            test_sigkilled_worker_requeues_in_flight;
          Alcotest.test_case "torn result frame detected" `Quick
            test_torn_result_frame_kills_the_worker;
        ] );
      ( "parity",
        [
          Alcotest.test_case "proc tier fingerprint parity" `Quick
            test_proc_campaign_fingerprint_parity;
          Alcotest.test_case "parity under worker SIGKILL" `Quick
            test_proc_campaign_survives_worker_sigkill;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "dedup bumps seen" `Quick test_corpus_dedup_and_seen;
          Alcotest.test_case "verify catches tampering" `Quick
            test_corpus_verify_catches_tampering;
          Alcotest.test_case "SIGKILL mid-write leaves loadable index" `Quick
            test_corpus_survives_sigkill_mid_write;
          Alcotest.test_case "campaign corpus dedups across runs" `Quick
            test_campaign_corpus_dedups_across_runs;
        ] );
    ]
