lib/detect/hb_precise.ml: Access_detector
