(** Recursive-descent parser for RFL: C-like statements and
    precedence-climbing expressions.  See the grammar sketch in the
    implementation header. *)

exception Parse_error of Token.pos * string

val parse_program : file:string -> string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)
