test/test_vclock.ml: Alcotest List QCheck QCheck_alcotest Rf_vclock Vclock
