lib/util/site.mli: Format Map Set
