test/test_lang.ml: Alcotest Ast Fun Lang Lexer List Option Racefuzzer Rf_events Rf_lang Rf_runtime Rf_util Site String Token
