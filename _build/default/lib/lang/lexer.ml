(** Hand-written lexer for RFL (menhir/ocamllex are deliberately not used:
    the toolchain in this environment ships neither, and the language is
    small enough for a direct scanner with precise positions). *)

exception Lex_error of Token.pos * string

type t = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable col : int;
}

let create src = { src; off = 0; line = 1; col = 1 }

let pos lx = { Token.line = lx.line; col = lx.col }

let error lx fmt = Fmt.kstr (fun m -> raise (Lex_error (pos lx, m))) fmt

let peek lx = if lx.off < String.length lx.src then Some lx.src.[lx.off] else None

let peek2 lx =
  if lx.off + 1 < String.length lx.src then Some lx.src.[lx.off + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.off <- lx.off + 1

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when peek2 lx = Some '/' ->
      let rec to_eol () =
        match peek lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws lx
  | Some '/' when peek2 lx = Some '*' ->
      advance lx;
      advance lx;
      let rec to_close () =
        match (peek lx, peek2 lx) with
        | Some '*', Some '/' ->
            advance lx;
            advance lx
        | Some _, _ ->
            advance lx;
            to_close ()
        | None, _ -> error lx "unterminated block comment"
      in
      to_close ();
      skip_ws lx
  | _ -> ()

let lex_number lx =
  let start = lx.off in
  while match peek lx with Some c when is_digit c -> true | _ -> false do
    advance lx
  done;
  let s = String.sub lx.src start (lx.off - start) in
  match int_of_string_opt s with
  | Some n -> Token.INT n
  | None -> error lx "integer literal %s out of range" s

let lex_ident lx =
  let start = lx.off in
  while match peek lx with Some c when is_alnum c -> true | _ -> false do
    advance lx
  done;
  let s = String.sub lx.src start (lx.off - start) in
  match Token.keyword_of_string s with Some kw -> kw | None -> Token.IDENT s

let lex_string lx =
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek lx with
    | Some '"' ->
        advance lx;
        Token.STRING (Buffer.contents buf)
    | Some '\\' -> (
        advance lx;
        match peek lx with
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance lx;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance lx;
            go ()
        | Some (('"' | '\\') as c) ->
            Buffer.add_char buf c;
            advance lx;
            go ()
        | Some c -> error lx "invalid escape \\%c" c
        | None -> error lx "unterminated string literal")
    | Some c ->
        Buffer.add_char buf c;
        advance lx;
        go ()
    | None -> error lx "unterminated string literal"
  in
  go ()

(** Next token with its starting position. *)
let next lx : Token.t * Token.pos =
  skip_ws lx;
  let p = pos lx in
  let tok =
    match peek lx with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_alpha c -> lex_ident lx
    | Some '"' -> lex_string lx
    | Some c -> (
        let two tok =
          advance lx;
          advance lx;
          tok
        in
        let one tok =
          advance lx;
          tok
        in
        match (c, peek2 lx) with
        | '-', Some '>' -> two Token.ARROW
        | '=', Some '=' -> two Token.EQ
        | '!', Some '=' -> two Token.NEQ
        | '<', Some '=' -> two Token.LE
        | '>', Some '=' -> two Token.GE
        | '&', Some '&' -> two Token.AND
        | '|', Some '|' -> two Token.OR
        | '(', _ -> one Token.LPAREN
        | ')', _ -> one Token.RPAREN
        | '{', _ -> one Token.LBRACE
        | '}', _ -> one Token.RBRACE
        | '[', _ -> one Token.LBRACKET
        | ']', _ -> one Token.RBRACKET
        | ';', _ -> one Token.SEMI
        | ',', _ -> one Token.COMMA
        | '=', _ -> one Token.ASSIGN
        | '+', _ -> one Token.PLUS
        | '-', _ -> one Token.MINUS
        | '*', _ -> one Token.STAR
        | '/', _ -> one Token.SLASH
        | '%', _ -> one Token.PERCENT
        | '<', _ -> one Token.LT
        | '>', _ -> one Token.GT
        | '!', _ -> one Token.NOT
        | _ -> error lx "unexpected character %C" c)
  in
  (tok, p)

(** Tokenize a whole source string. *)
let tokenize src =
  let lx = create src in
  let rec go acc =
    let tok, p = next lx in
    if tok = Token.EOF then List.rev ((tok, p) :: acc) else go ((tok, p) :: acc)
  in
  go []
