test/test_atomicity.ml: Alcotest Api Engine Fmt Fun List Lock Printf Racefuzzer Rf_detect Rf_runtime Rf_util Site Strategy
