let write path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     f oc;
     flush oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let write_string path s = write path (fun oc -> output_string oc s)
