lib/lang/check.ml: Ast Fmt Hashtbl List Option Token
