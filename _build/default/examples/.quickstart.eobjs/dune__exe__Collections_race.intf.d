examples/collections_race.mli:
