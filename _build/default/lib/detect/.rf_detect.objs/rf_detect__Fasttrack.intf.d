lib/detect/fasttrack.mli: Event Race Rf_events Rf_util Site
