module C = Rf_campaign.Campaign

let bar width frac =
  let n = int_of_float (frac *. float_of_int width +. 0.5) in
  let n = max 0 (min width n) in
  String.make n '#' ^ String.make (width - n) '.'

let render ppf (s : C.stats) =
  Fmt.pf ppf "campaign: %d pair(s), %d resolved real+harmful, %d wave(s)@."
    s.C.s_pairs s.C.s_resolved s.C.s_waves;
  Fmt.pf ppf "trials:   %d run, %d cancelled by cutoff, %d speculative discarded@."
    s.C.s_trials s.C.s_cancelled s.C.s_discarded;
  if s.C.s_replayed > 0 then
    Fmt.pf ppf "resume:   %d trial(s) replayed from the journal@." s.C.s_replayed;
  if s.C.s_resume_skipped > 0 then
    Fmt.pf ppf
      "WARNING:  %d corrupt journal line(s) skipped on resume — those trials re-ran@."
      s.C.s_resume_skipped;
  (* degradation lines only appear when a governor actually tripped, so an
     ungoverned (or never-over-budget) campaign's report is unchanged *)
  (match s.C.s_p1_level with
  | Some level ->
      Fmt.pf ppf "DEGRADED: phase 1 completed at %s precision (resource budget)@."
        level
  | None -> ());
  if s.C.s_degraded > 0 then
    Fmt.pf ppf "DEGRADED: %d trial(s) completed at reduced precision (resource budget)@."
      s.C.s_degraded;
  (* the detector line only appears for a non-default phase-1 detector,
     so an ordinary hybrid campaign's report is unchanged *)
  if s.C.s_p1_detector <> "hybrid" then
    Fmt.pf ppf "sampled:  phase 1 detector %s, %d state entrie(s)%s@."
      s.C.s_p1_detector s.C.s_p1_entries
      (match s.C.s_p1_miss_bound with
      | Some b -> Printf.sprintf ", miss bound <= %.6f" b
      | None -> "");
  (match s.C.s_p1_recording with
  | Some r ->
      Fmt.pf ppf
        "recorded: phase 1 offline — %d event(s), %d byte(s), %d shard(s); \
         %.3fs record + %.3fs detect@."
        r.Racefuzzer.Fuzzer.rec_events r.Racefuzzer.Fuzzer.rec_bytes
        r.Racefuzzer.Fuzzer.rec_shards r.Racefuzzer.Fuzzer.rec_wall
        r.Racefuzzer.Fuzzer.detect_wall
  | None -> ());
  (* the fault lines only appear when something actually went wrong, so a
     clean campaign's report is unchanged *)
  if s.C.s_crashes > 0 || s.C.s_exhausted > 0 then
    Fmt.pf ppf "faults:   %d harness crash(es) sandboxed, %d trial(s) over deadline@."
      s.C.s_crashes s.C.s_exhausted;
  if s.C.s_quarantined > 0 then
    Fmt.pf ppf "QUARANTINED: %d pair(s) crashed the harness repeatedly (%d trial(s) skipped) — inspect the journal@."
      s.C.s_quarantined s.C.s_q_skipped;
  if s.C.s_worker_crashes > 0 then
    Fmt.pf ppf "workers:  %d crash(es), %d respawn(s), %d slot(s) gave up@."
      s.C.s_worker_crashes s.C.s_worker_respawns s.C.s_worker_gave_up;
  if s.C.s_interrupted then
    Fmt.pf ppf "INTERRUPTED: partial results — resume from the journal with --resume@.";
  (match s.C.s_static with
  | Some st ->
      Fmt.pf ppf
        "static:   universe %d pair(s), %d provably race-free; frontier %d \
         = %d likely + %d unknown + %d impossible@."
        st.C.st_universe st.C.st_universe_impossible st.C.st_frontier
        st.C.st_likely st.C.st_unknown st.C.st_impossible;
      Fmt.pf ppf "          %d pair(s) filtered before phase 2 (%.1f%% of frontier), %.3fs classification@."
        st.C.st_filtered
        (if st.C.st_frontier > 0 then
           100.0 *. float_of_int st.C.st_filtered /. float_of_int st.C.st_frontier
         else 0.0)
        st.C.st_wall
  | None -> ());
  Fmt.pf ppf "wall:     %.3fs phase 2 (+ %.3fs phase 1), %.1f trials/s@."
    s.C.s_wall s.C.s_phase1_wall s.C.s_throughput;
  Array.iteri
    (fun d trials ->
      let busy = s.C.s_domain_busy.(d) in
      let util = if s.C.s_wall > 0.0 then busy /. s.C.s_wall else 0.0 in
      Fmt.pf ppf "domain %d: %5d trials  busy %7.3fs  util %3.0f%% %s@." d trials busy
        (100.0 *. util) (bar 20 util))
    s.C.s_domain_trials

let pp = render

module Fuzzer = Racefuzzer.Fuzzer
open Rf_util

(* The pre-filter precision table: how much of the candidate frontier the
   static analysis removed, against what phase 2 actually confirmed.  A
   sound filter never filters a confirmed pair, so the last row is always
   0 — the table prints it anyway as the visible soundness check. *)
let precision ppf (r : C.result) =
  match r.C.stats.C.s_static with
  | None -> ()
  | Some st ->
      let a = r.C.analysis in
      let confirmed =
        Site.Pair.Set.union a.Fuzzer.real_pairs
          (Site.Pair.Set.union a.Fuzzer.error_pairs a.Fuzzer.deadlock_pairs)
      in
      let filtered_confirmed =
        List.length
          (List.filter
             (fun (p, _) -> Site.Pair.Set.mem p confirmed)
             a.Fuzzer.a_filtered)
      in
      Fmt.pf ppf "static pre-filter precision@.";
      Fmt.pf ppf "  candidate pairs      %6d@." st.C.st_frontier;
      Fmt.pf ppf "  filtered (impossible)%6d@." st.C.st_filtered;
      Fmt.pf ppf "  fuzzed               %6d@." (st.C.st_frontier - st.C.st_filtered);
      Fmt.pf ppf "  confirmed by phase 2 %6d@." (Site.Pair.Set.cardinal confirmed);
      Fmt.pf ppf "  filtered ∩ confirmed %6d%s@." filtered_confirmed
        (if filtered_confirmed > 0 then "  <-- UNSOUND FILTER" else "");
      Fmt.pf ppf "  filter time          %9.3fs@." st.C.st_wall;
      List.iter
        (fun (p, v) ->
          Fmt.pf ppf "  - %s: %s@." (Site.Pair.to_string p)
            (Rf_static.Static.verdict_to_string v))
        a.Fuzzer.a_filtered
