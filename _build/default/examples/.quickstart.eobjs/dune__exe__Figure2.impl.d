examples/figure2.ml: Fmt Rf_report
