lib/workloads/cache4j.ml: Api Common List Lock Op Rf_runtime Rf_util Site Workload
