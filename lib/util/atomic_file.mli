(** Crash-safe file writes: write to [<path>.tmp], flush, then rename.

    A reader (or a post-crash restart) observing [path] sees either the
    old content or the complete new content, never a torn prefix —
    [Sys.rename] is atomic on POSIX filesystems.  If the writer dies
    mid-write, the half-written [.tmp] file is left behind (and
    overwritten by the next attempt); the destination is untouched. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] runs [f] against a channel on [path ^ ".tmp"],
    flushes and closes it, then renames over [path].  If [f] raises,
    the temp file is removed and the exception re-raised; [path] is
    never touched.  Raises [Sys_error] on filesystem failure. *)

val write_string : string -> string -> unit
(** [write_string path s] — {!write} of one [output_string]. *)
