test/test_workloads.ml: Alcotest Fun Fuzzer Hashtbl List Printf Racefuzzer Rf_runtime Rf_util Rf_workloads Site
