lib/util/loc.ml: Domain Fmt Hashtbl Int Map Set String
