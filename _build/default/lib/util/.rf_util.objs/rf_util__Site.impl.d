lib/util/site.ml: Fmt Hashtbl Int List Map Mutex Set String
