let offset = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let hash64_sub s ~pos ~len =
  let h = ref offset in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) prime
  done;
  !h

let hash64 s = hash64_sub s ~pos:0 ~len:(String.length s)

(* The journal seal predates this module and used native-int arithmetic
   with a 63-bit-truncated offset basis; existing sealed journals must
   keep verifying, so this reproduces that computation bit-for-bit
   rather than masking {!hash64}. *)
let hex63 s =
  let fnv_prime = 0x100000001b3 in
  let h = ref 0x3bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) s;
  Printf.sprintf "%016x" (!h land max_int)
