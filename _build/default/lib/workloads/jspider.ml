(** Analogue of [jspider] (configurable web spider engine, paper Table 1:
    29 potential races, 0 real, runtime ≈ normal execution).

    jspider's reported races come from its plugin/configuration machinery:
    the engine publishes configuration values that plugins read behind
    guarded flags — all implicitly synchronized, so every one of the
    potential pairs is a false alarm.  Modelled as a large handshake farm
    published by the engine thread and polled by plugin threads, plus a
    properly synchronized task dispatcher that contributes no reports. *)

open Rf_util
open Rf_runtime

let file = "jspider"
let s line label = Site.make ~file ~line label

let site_dispatch_sync = s 1 "dispatcher.sync"
let site_tasks_r = s 2 "tasks(read)"
let site_tasks_w = s 3 "tasks(write)"

let program ?(nplugins = 3) ?(ntasks = 6) () =
  let farm = Common.Farm.create ~file ~base_line:40 29 in
  let tasks = Api.Cell.make ~name:"tasks" (List.init ntasks (fun i -> i)) in
  let tasks_lock = Lock.create ~name:"dispatcher" () in
  let take_task () =
    Api.sync ~site:site_dispatch_sync tasks_lock (fun () ->
        match Api.Cell.read ~site:site_tasks_r tasks with
        | [] -> None
        | t :: rest ->
            Api.Cell.write ~site:site_tasks_w tasks rest;
            Some t)
  in
  let plugin p () =
    (* plugins poll the engine's configuration handshakes... *)
    Common.Farm.consume_rounds farm (10 + p);
    (* ...and then process dispatched tasks under proper locking *)
    let rec work () =
      match take_task () with
      | Some t ->
          let _ = (t * 17) mod 23 in
          work ()
      | None -> ()
    in
    work ()
  in
  let hs =
    List.init nplugins (fun p -> Api.fork ~name:(Printf.sprintf "plugin%d" p) (plugin p))
  in
  (* the engine publishes its configuration while the plugins poll *)
  Common.Farm.publish farm 500;
  List.iter Api.join hs

let workload =
  Workload.make ~name:"jspider"
    ~descr:"jspider analogue: configuration handshakes only, zero real races"
    ~sloc:58 ~expected_real:(Some 0) (fun () -> program ())
