(** The long-lived campaign service: [racefuzzer serve CORPUS_DIR].

    A batch campaign starts cold, runs once and exits; [serve] keeps the
    corpus {e continuously true}.  Each cycle it (a) re-validates every
    corpus repro by replaying its minimized schedule — flagging entries
    [still-racy], [fixed], [regressed] — and checks non-replayable
    artifacts for integrity; (b) schedules fresh campaign waves over the
    registered targets under per-target token-bucket pacing; and (c)
    with [--watch], polls file targets for mtime changes and re-runs
    them immediately, invalidating their cached phase-1 recordings.

    Robustness is the core contract:

    - {b Crash safety.} All scheduler state lives in a sealed-JSONL
      ledger ([DIR/serve.ledger.jsonl], same codec and {!Rf_util.Atomic_file}
      discipline as the corpus index), rewritten after every verdict.
      SIGKILL + restart resumes the in-progress cycle: items already
      settled this cycle are not re-run, unsettled ones are — no lost or
      duplicated work, and byte-identical cycle verdict fingerprints.
    - {b Retry with backoff.} Flaky replay attempts retry under a
      deterministic exponential-backoff-with-jitter policy ({!Retry},
      jitter keyed by FNV-1a so delays are reproducible); exhausting the
      budget scores a strike, and [rp_strikes] strikes quarantine the
      item with a journaled reason.
    - {b Graceful degradation.} A requested worker fleet that fails its
      handshake degrades to in-process execution; the achieved width is
      recorded per cycle and surfaced by {!status}.
    - {b Deterministic chaos.} The service-tier faults in {!Chaos.plan}
      (kill-mid-revalidation, torn index/ledger lines between cycles,
      watch-event storms) exercise every recovery path in tests. *)

(** {1 Retry policy} *)

module Retry : sig
  type policy = {
    rp_max_attempts : int;  (** attempts per item per cycle before failing *)
    rp_base : float;  (** first backoff delay, seconds *)
    rp_factor : float;  (** backoff multiplier per attempt *)
    rp_max : float;  (** backoff cap, seconds *)
    rp_jitter : float;
        (** relative jitter width: the delay is scaled by a factor drawn
            deterministically from [1 ± rp_jitter] *)
    rp_strikes : int;  (** failed cycles before an item is quarantined *)
  }

  val default : policy
  (** 3 attempts, 10ms base doubling to a 500ms cap, ±25% jitter,
      quarantine after 3 strikes. *)

  val jitter_unit : key:string -> attempt:int -> float
  (** Deterministic uniform draw in [0, 1) from FNV-1a over
      ([key], [attempt]) — the same item's same attempt always jitters
      identically, so backoff schedules are reproducible. *)

  val delay : policy -> key:string -> attempt:int -> float
  (** Backoff before retrying [attempt] (1-based: the delay after the
      first failure is [delay ~attempt:1]).  Never negative. *)

  val exhausted : policy -> attempt:int -> bool
  (** [attempt >= rp_max_attempts]. *)
end

(** {1 The scheduler ledger} *)

module Ledger : sig
  type verdict =
    | Still_racy  (** the repro replayed and reproduced its error *)
    | Regressed  (** previously [Fixed], now reproducing again *)
    | Fixed  (** the repro no longer reproduces its recorded error *)
    | Intact  (** non-replayable artifact present with matching CRC *)
    | Failed  (** every replay/check attempt failed this cycle *)

  val verdict_to_string : verdict -> string
  val verdict_of_string : string -> verdict option

  type item = {
    li_kind : string;  (** corpus entry kind *)
    li_key : string;  (** corpus entry key *)
    li_verdict : verdict;
    li_cycle : int;  (** cycle that last settled this item *)
    li_attempts : int;  (** attempts spent when it settled *)
    li_strikes : int;  (** accumulated failed cycles *)
    li_quarantine : string;  (** quarantine reason; [""] = active *)
  }

  type target = {
    lt_name : string;
    lt_tokens : float;  (** token-bucket level after the last cycle *)
    lt_mtime : float;  (** last observed mtime; [0.] for non-files *)
    lt_campaigns : int;  (** campaign waves run against this target *)
    lt_confirmed : string;  (** last confirmed-verdict fingerprint *)
  }

  type cycle = {
    lc_cycle : int;
    lc_fingerprint : string;
        (** digest of every (kind, key, verdict) settled in this cycle —
            attempt counts excluded, so chaos retries and kill/restart
            boundaries fingerprint identically *)
    lc_checked : int;
    lc_still : int;
    lc_fixed : int;
    lc_regressed : int;
    lc_intact : int;
    lc_failed : int;
    lc_campaigns : int;  (** campaign waves run in this cycle *)
    lc_wreq : int;  (** worker processes requested *)
    lc_wact : int;  (** worker processes achieved ([< lc_wreq] = degraded) *)
  }

  type t = {
    mutable l_cycle : int;  (** the in-progress cycle (1-based) *)
    l_items : (string * string, item) Hashtbl.t;
    l_targets : (string, target) Hashtbl.t;
    mutable l_cycles : cycle list;  (** completed cycles, oldest first *)
  }

  val path : string -> string
  (** [DIR/serve.ledger.jsonl]. *)

  val load : string -> t * int
  (** Ledger of a corpus dir plus the count of checksum-bad or torn
      lines skipped (tolerant, like {!Corpus.load}); a fresh ledger at
      cycle 1 when the file does not exist. *)

  val save : dir:string -> t -> unit
  (** Atomically rewrite the whole ledger (sealed header, then one
      sealed line per item / target / completed cycle). *)
end

(** {1 Serving} *)

type config = {
  v_cycles : int;
      (** stop after this many {e completed-in-ledger} cycles; [0] = run
          until signalled.  Resume-aware: a restart after a crash counts
          the cycles the ledger already finished. *)
  v_period : float;  (** sleep between cycles, seconds (interruptible) *)
  v_watch : bool;  (** poll file targets for mtime changes *)
  v_rate : float;  (** tokens refilled per target per cycle *)
  v_burst : float;  (** token-bucket capacity *)
  v_retry : Retry.policy;
  v_targets : string list;  (** targets beyond those the corpus names *)
  v_domains : int;
  v_phase1_seeds : int;
  v_seeds_per_pair : int;
  v_proc : Proc_pool.spec option;
      (** worker-fleet template; [sp_target] is overridden per target *)
  v_chaos : Chaos.plan option;
}

val default_config : config
(** One cycle budget of everything small: period 1s, rate 1 burst 2,
    {!Retry.default}, 1 domain, 1 phase-1 seed, 20 trials per pair, no
    fleet, no watch, run forever. *)

val serve :
  ?log:Event_log.t ->
  ?stop:Campaign.stop_switch ->
  config ->
  resolve:(string -> (Racefuzzer.Fuzzer.program, string) result) ->
  dir:string ->
  int
(** Run the service loop over corpus [dir]; returns the process exit
    code (0 on clean drain — cycle bound reached or [stop] requested).
    [resolve] maps a target name (registry workload or RFL path) to a
    runnable program; targets that fail to resolve are skipped with a
    console note.  Phase-1 recordings are cached under [DIR/p1cache/]
    and re-analyzed ({!Racefuzzer.Fuzzer.phase1_of_recordings}) instead
    of re-recorded on every wave; a watch change invalidates the
    target's cache. *)

val status : dir:string -> int
(** One-shot report: completed cycles, last-cycle verdict counts and
    fingerprint, quarantined items with reasons, fleet state (requested
    vs achieved workers), corpus strict-verify result, corrupt-line
    counts.  Exit code 0, or 1 when the corpus fails strict
    verification. *)
