lib/lang/interp.mli: Ast Format
