(** Generic access-history race detector.

    Both the hybrid detector [37] and the precise happens-before detector
    [44] follow the same scheme: maintain, per dynamic memory location, a
    bounded history of past access summaries (thread, site, access kind,
    lockset, vector clock) and flag a race whenever a new access *conflicts*
    with a stored one under the detector's predicate.  They differ only in
    the happens-before edge policy and in whether disjoint locksets are
    required — see {!Hybrid} and {!Hb_precise} for the two instantiations.

    The per-location history is capped: locations in tight loops would
    otherwise accumulate unbounded summaries.  An entry made by the same
    thread at the same site with the same lockset as a new access is
    superseded by it (the older clock is smaller, but any race it would
    reveal involves the same statement pair, which we have either already
    reported or will report through another witness).  [truncations]
    counts cap evictions so experiments can report potential missed pairs. *)

open Rf_util
open Rf_events
open Rf_vclock

type entry = {
  e_tid : int;
  e_site : Site.t;
  e_access : Event.access;
  e_lockset : Lockset.t;
  e_vc : Vclock.t;
}

type t = {
  dname : string;
  clocks : Hbclock.t;
  require_disjoint_locksets : bool;
  history : entry list ref Loc.Tbl.t;
  cap : int;
  mutable races : Race.t list;  (* newest first *)
  mutable reported : Site.Pair.Set.t;
  mutable truncations : int;
  mutable mem_events : int;
}

let create ?(cap = 128) ~name ~lock_edges ~require_disjoint_locksets () =
  {
    dname = name;
    clocks = Hbclock.create ~lock_edges ();
    require_disjoint_locksets;
    history = Loc.Tbl.create 256;
    cap;
    races = [];
    reported = Site.Pair.Set.empty;
    truncations = 0;
    mem_events = 0;
  }

let name t = t.dname

let conflicting t (old : entry) (fresh : entry) =
  old.e_tid <> fresh.e_tid
  && (Event.access_equal old.e_access Event.Write
     || Event.access_equal fresh.e_access Event.Write)
  && ((not t.require_disjoint_locksets)
     || Lockset.disjoint old.e_lockset fresh.e_lockset)
  && Vclock.concurrent old.e_vc fresh.e_vc

let feed t ev =
  let vc = Hbclock.feed t.clocks ev in
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } ->
      t.mem_events <- t.mem_events + 1;
      let fresh = { e_tid = tid; e_site = site; e_access = access; e_lockset = lockset; e_vc = vc } in
      let bucket =
        match Loc.Tbl.find_opt t.history loc with
        | Some b -> b
        | None ->
            let b = ref [] in
            Loc.Tbl.add t.history loc b;
            b
      in
      List.iter
        (fun old ->
          if conflicting t old fresh then begin
            let pair = Site.Pair.make old.e_site fresh.e_site in
            if not (Site.Pair.Set.mem pair t.reported) then begin
              t.reported <- Site.Pair.Set.add pair t.reported;
              t.races <-
                Race.make ~pair ~loc
                  ~tids:(old.e_tid, fresh.e_tid)
                  ~accesses:(old.e_access, fresh.e_access)
                :: t.races
            end
          end)
        !bucket;
      (* Supersede a same-thread/site/lockset summary, then cap. *)
      let rest =
        List.filter
          (fun old ->
            not
              (old.e_tid = fresh.e_tid
              && Site.equal old.e_site fresh.e_site
              && Event.access_equal old.e_access fresh.e_access
              && Lockset.equal old.e_lockset fresh.e_lockset))
          !bucket
      in
      let updated = fresh :: rest in
      let updated =
        if List.length updated > t.cap then begin
          t.truncations <- t.truncations + 1;
          (* drop the oldest entry *)
          List.filteri (fun i _ -> i < t.cap) updated
        end
        else updated
      in
      bucket := updated
  | _ -> ()

let races t = List.rev t.races
let pairs t = t.reported
let race_count t = Site.Pair.Set.cardinal t.reported
let truncations t = t.truncations
let mem_events t = t.mem_events
