lib/lang/lang.ml: Ast Check Filename Fmt Interp Lexer Parser Printexc Printf Token
