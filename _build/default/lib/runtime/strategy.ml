(** Scheduling strategies.

    At every switch point the engine presents the strategy with the set of
    *enabled* threads and their pending operations; the strategy answers
    with the tid to execute next.  A strategy is a record of closures so
    implementations can carry arbitrary mutable state (the RaceFuzzer
    strategy keeps its postponed set this way; see {!Racefuzzer}).

    All randomness must be drawn from the view's PRNG, which the engine
    seeds — this is what makes whole runs replayable from a seed. *)

open Rf_util

type entry = { tid : int; tname : string; pend : Op.pend }

type view = {
  step : int;  (** executed-ops counter *)
  enabled : entry list;  (** non-empty; insertion (tid) order *)
  prng : Prng.t;
}

type t = { sname : string; choose : view -> int }

let name t = t.sname
let make ~name choose = { sname = name; choose }

let tids view = List.map (fun e -> e.tid) view.enabled

(** Uniform random choice among enabled threads — the paper's "simple
    random scheduler" baseline (Table 1, column "Simple"). *)
let random () =
  make ~name:"random" (fun view -> (Prng.pick view.prng view.enabled).tid)

(** Round-robin over tids: a fair, deterministic scheduler. *)
let round_robin () =
  let last = ref (-1) in
  make ~name:"round-robin" (fun view ->
      let ts = tids view in
      let next =
        match List.find_opt (fun tid -> tid > !last) ts with
        | Some tid -> tid
        | None -> List.hd ts
      in
      last := next;
      next)

(** Keep running the same thread for as long as it stays enabled, then fall
    over to the lowest enabled tid.  This approximates a default
    non-preemptive scheduler on a lightly loaded machine — the regime in
    which, as the paper observes (§1, §5.2 column 10), insidious
    interleavings almost never show up. *)
let run_until_block () =
  let current = ref (-1) in
  make ~name:"run-until-block" (fun view ->
      match List.find_opt (fun e -> e.tid = !current) view.enabled with
      | Some e -> e.tid
      | None ->
          let tid = (List.hd view.enabled).tid in
          current := tid;
          tid)

(** Preemptive fair scheduler: run the current thread for up to [quantum]
    decisions, then rotate round-robin.  This is our model of the "default
    scheduler" of a JVM on a lightly loaded machine (paper Table 1,
    column 10): threads interleave fairly, so a one-statement window like
    Figure 2's almost never lines up with the racing read. *)
let timesliced ?(quantum = 10) () =
  let current = ref (-1) in
  let used = ref 0 in
  make ~name:"default" (fun view ->
      let still_enabled = List.exists (fun e -> e.tid = !current) view.enabled in
      if still_enabled && !used < quantum then begin
        incr used;
        !current
      end
      else begin
        let ts = tids view in
        let next =
          match List.find_opt (fun tid -> tid > !current) ts with
          | Some tid -> tid
          | None -> List.hd ts
        in
        current := next;
        used := 1;
        next
      end)
