(** Generic access-history race detector.

    Both the hybrid detector [37] and the precise happens-before detector
    [44] follow the same scheme: maintain, per dynamic memory location, a
    bounded history of past access summaries (thread, site, access kind,
    lockset, vector clock) and flag a race whenever a new access *conflicts*
    with a stored one under the detector's predicate.  They differ only in
    the happens-before edge policy and in whether disjoint locksets are
    required — see {!Hybrid} and {!Hb_precise} for the two instantiations.

    The per-location history is capped: locations in tight loops would
    otherwise accumulate unbounded summaries.  An entry made by the same
    thread at the same site with the same lockset as a new access is
    superseded by it (the older clock is smaller, but any race it would
    reveal involves the same statement pair, which we have either already
    reported or will report through another witness).  [truncations]
    counts cap evictions so experiments can report potential missed pairs.

    {2 Resource governance}

    Histories are the detector's dominant state: one summary per retained
    access, one bucket per distinct dynamic location.  With a
    {!Rf_resource.Governor} attached, every retained summary is charged
    one logical entry against the shared trial budget, and the detector
    participates in the degradation ladder:

    - {b Full}: behaviour identical to the ungoverned detector.
    - {b Sampled}: the per-bucket cap shrinks (to min 8) and eviction
      switches from drop-oldest to deterministic reservoir replacement —
      the victim slot is an FNV-1a hash of the global access counter, so
      long-lived summaries survive with uniform probability instead of
      being structurally evicted.  This keeps witness diversity when a
      bucket sees many more accesses than it can store.
    - {b Lockset-only}: the happens-before machinery is switched off
      entirely (no clock feeding, no new vector clocks) and the conflict
      predicate falls back to Eraser-style lockset discipline: different
      threads, at least one write, disjoint locksets.  This rung
      over-approximates (more candidate pairs, zero clock state growth),
      which is the right direction for phase 1 — phase 2 confirms or
      refutes each candidate by directed scheduling.

    On each trip the detector also {e compacts}: buckets are evicted
    whole, oldest last-touch epoch first (ties by creation order), until
    the charged entries fit in half the budget.  Epochs are logical
    (the running access count), so compaction points — and therefore
    everything the detector reports — are a pure function of the event
    stream, independent of heap layout, GC timing, or domain count. *)

open Rf_util
open Rf_events
open Rf_vclock
open Rf_resource

type entry = {
  e_tid : int;
  e_site : Site.t;
  e_access : Event.access;
  e_lockset : Lockset.t;
  e_vc : Vclock.t;
}

type bucket = {
  mutable b_entries : entry list;  (* newest first *)
  mutable b_epoch : int;  (* last-touch: value of [mem_events] *)
  b_id : int;  (* creation index; compaction tie-break *)
}

type t = {
  dname : string;
  clocks : Hbclock.t;
  governor : Governor.t option;
  require_disjoint_locksets : bool;
  history : bucket Loc.Tbl.t;
  cap : int;
  mutable races : Race.t list;  (* newest first *)
  mutable reported : Site.Pair.Set.t;
  mutable truncations : int;
  mutable mem_events : int;
  mutable next_bucket_id : int;
  mutable entries_charged : int;
}

(* FNV-1a over the 8 little-endian bytes of [n]: a cheap, seedless,
   platform-independent hash used to pick reservoir victims.  Must stay
   in sync with nothing — it only needs to be deterministic. *)
let fnv1a64 n = Fnv.(mask63 (fold_int63 basis63 n))

let charge t n =
  t.entries_charged <- t.entries_charged + n;
  match t.governor with Some g -> Governor.charge g n | None -> ()

let credit t n =
  t.entries_charged <- max 0 (t.entries_charged - n);
  match t.governor with Some g -> Governor.credit g n | None -> ()

let evict t n =
  t.entries_charged <- max 0 (t.entries_charged - n);
  match t.governor with Some g -> Governor.evict g n | None -> ()

let level t =
  match t.governor with Some g -> Governor.level g | None -> Governor.Full

(* Effective per-bucket cap at each rung. *)
let cap_at t = function
  | Governor.Full -> t.cap
  | Governor.Sampled -> min t.cap 8
  | Governor.Lockset_only -> 2

(* Evict whole buckets, oldest last-touch first, until the charged
   entries fit in half the budget.  Collect-and-sort: never iterate a
   hashtable in raw order when the result affects what gets reported. *)
let compact t =
  match t.governor with
  | None -> ()
  | Some g ->
      (* Entry budget: shed to half the budget.  Heap-watermark-only
         governor (no entry budget): halve whatever is charged, so a
         physical trip actually releases memory too. *)
      let target =
        match Governor.budget g with
        | Some budget -> max 1 (budget / 2)
        | None -> max 1 (t.entries_charged / 2)
      in
      if t.entries_charged > target then begin
            let buckets =
              Loc.Tbl.fold (fun loc b acc -> (loc, b) :: acc) t.history []
            in
            let buckets =
              List.sort
                (fun (_, a) (_, b) ->
                  match compare a.b_epoch b.b_epoch with
                  | 0 -> compare a.b_id b.b_id
                  | c -> c)
                buckets
            in
            List.iter
              (fun (loc, b) ->
                if t.entries_charged > target then begin
                  let n = List.length b.b_entries in
                  Loc.Tbl.remove t.history loc;
                  evict t n;
                  t.truncations <- t.truncations + n
                end)
              buckets
          end

let create ?(cap = 128) ?governor ~name ~lock_edges ~require_disjoint_locksets
    () =
  let t =
    {
      dname = name;
      clocks = Hbclock.create ?governor ~lock_edges ();
      governor;
      require_disjoint_locksets;
      history = Loc.Tbl.create 256;
      cap;
      races = [];
      reported = Site.Pair.Set.empty;
      truncations = 0;
      mem_events = 0;
      next_bucket_id = 0;
      entries_charged = 0;
    }
  in
  (match governor with
  | Some g -> Governor.subscribe g (fun _level -> compact t)
  | None -> ());
  t

let name t = t.dname

let conflicting t lv (old : entry) (fresh : entry) =
  old.e_tid <> fresh.e_tid
  && (Event.access_equal old.e_access Event.Write
     || Event.access_equal fresh.e_access Event.Write)
  &&
  match lv with
  | Governor.Lockset_only ->
      (* Eraser-style fallback: clocks are frozen, so the only evidence
         left is lock discipline. *)
      Lockset.disjoint old.e_lockset fresh.e_lockset
  | Governor.Full | Governor.Sampled ->
      ((not t.require_disjoint_locksets)
      || Lockset.disjoint old.e_lockset fresh.e_lockset)
      && Vclock.concurrent old.e_vc fresh.e_vc

let feed t ev =
  let lv = level t in
  (* At the bottom rung the clock machinery is frozen: no feeding, no
     new clocks.  Entries recorded before the freeze keep their clocks,
     but the predicate no longer consults them. *)
  let vc =
    match lv with
    | Governor.Lockset_only -> Vclock.bottom
    | Governor.Full | Governor.Sampled -> Hbclock.feed t.clocks ev
  in
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } ->
      t.mem_events <- t.mem_events + 1;
      let fresh = { e_tid = tid; e_site = site; e_access = access; e_lockset = lockset; e_vc = vc } in
      let bucket =
        match Loc.Tbl.find_opt t.history loc with
        | Some b -> b
        | None ->
            let b =
              { b_entries = []; b_epoch = t.mem_events; b_id = t.next_bucket_id }
            in
            t.next_bucket_id <- t.next_bucket_id + 1;
            Loc.Tbl.add t.history loc b;
            b
      in
      bucket.b_epoch <- t.mem_events;
      List.iter
        (fun old ->
          if conflicting t lv old fresh then begin
            let pair = Site.Pair.make old.e_site fresh.e_site in
            if not (Site.Pair.Set.mem pair t.reported) then begin
              t.reported <- Site.Pair.Set.add pair t.reported;
              t.races <-
                Race.make ~pair ~loc
                  ~tids:(old.e_tid, fresh.e_tid)
                  ~accesses:(old.e_access, fresh.e_access)
                :: t.races
            end
          end)
        bucket.b_entries;
      (* Supersede a same-thread/site/lockset summary, then cap. *)
      let before = List.length bucket.b_entries in
      let rest =
        List.filter
          (fun old ->
            not
              (old.e_tid = fresh.e_tid
              && Site.equal old.e_site fresh.e_site
              && Event.access_equal old.e_access fresh.e_access
              && Lockset.equal old.e_lockset fresh.e_lockset))
          bucket.b_entries
      in
      let superseded = before - List.length rest in
      if superseded > 0 then credit t superseded;
      let cap = cap_at t lv in
      (* A degradation step can shrink [cap] under a bucket filled at a
         higher rung; trim the excess (newest-first list, so the tail is
         oldest) before the insert below. *)
      let rest =
        let n = List.length rest in
        if n > cap then begin
          t.truncations <- t.truncations + (n - cap);
          evict t (n - cap);
          List.filteri (fun i _ -> i < cap) rest
        end
        else rest
      in
      let updated =
        if List.length rest >= cap then begin
          t.truncations <- t.truncations + 1;
          evict t 1;
          match lv with
          | Governor.Full ->
              (* drop the oldest entry *)
              fresh :: List.filteri (fun i _ -> i < cap - 1) rest
          | Governor.Sampled | Governor.Lockset_only ->
              (* Deterministic reservoir: a hash of the access counter
                 picks which retained summary the newcomer displaces, so
                 survivors are spread over the bucket's lifetime instead
                 of always being the most recent [cap]. *)
              let victim = fnv1a64 t.mem_events mod cap in
              List.mapi (fun i old -> if i = victim then fresh else old) rest
        end
        else fresh :: rest
      in
      charge t 1;
      bucket.b_entries <- updated
  | _ -> ()

let races t = List.rev t.races
let pairs t = t.reported
let race_count t = Site.Pair.Set.cardinal t.reported
let truncations t = t.truncations
let mem_events t = t.mem_events
let state_entries t = t.entries_charged
