(* End-to-end validation of every Table-1 workload analogue against its
   designed race topology: hybrid potential counts, RaceFuzzer-confirmed
   real pairs, harmful pairs, and absence of false confirmations. *)

open Rf_util
open Racefuzzer
module W = Rf_workloads

let seeds n = List.init n Fun.id

let analyze ?(p1 = 6) ?(per_pair = 40) (w : W.Workload.t) =
  Fuzzer.analyze ~phase1_seeds:(seeds p1) ~seeds_per_pair:(seeds per_pair)
    w.W.Workload.program

(* Cache analyses: several tests inspect the same workload. *)
let analysis_tbl : (string, Fuzzer.analysis) Hashtbl.t = Hashtbl.create 16

let analysis (w : W.Workload.t) =
  match Hashtbl.find_opt analysis_tbl w.W.Workload.name with
  | Some a -> a
  | None ->
      let a = analyze w in
      Hashtbl.add analysis_tbl w.W.Workload.name a;
      a

let potential a = Site.Pair.Set.cardinal (Fuzzer.potential_pairs a.Fuzzer.a_phase1)
let nreal a = Site.Pair.Set.cardinal a.Fuzzer.real_pairs
let nerror a = Site.Pair.Set.cardinal a.Fuzzer.error_pairs

let check_contains_all name expected set =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s confirmed" name (Site.Pair.to_string p))
        true (Site.Pair.Set.mem p set))
    expected

(* ------------------------------------------------------------------ *)
(* Generic properties for every workload                                *)

let test_terminates (w : W.Workload.t) () =
  List.iter
    (fun (mk : unit -> Rf_runtime.Strategy.t) ->
      List.iter
        (fun seed ->
          let o =
            Rf_runtime.Engine.run
              ~config:{ Rf_runtime.Engine.default_config with seed }
              ~strategy:(mk ()) w.W.Workload.program
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d terminates" w.W.Workload.name seed)
            false o.Rf_runtime.Outcome.timed_out;
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d no deadlock" w.W.Workload.name seed)
            true
            (o.Rf_runtime.Outcome.deadlocked = []))
        (seeds 8))
    [
      Rf_runtime.Strategy.random;
      Rf_runtime.Strategy.round_robin;
      (fun () -> Rf_runtime.Strategy.timesliced ~quantum:5 ());
    ]

let test_real_subset_of_potential (w : W.Workload.t) () =
  let a = analysis w in
  Alcotest.(check bool)
    (Printf.sprintf "%s: real ⊆ potential" w.W.Workload.name)
    true
    (Site.Pair.Set.subset a.Fuzzer.real_pairs
       (Fuzzer.potential_pairs a.Fuzzer.a_phase1));
  Alcotest.(check bool)
    (Printf.sprintf "%s: errors ⊆ real" w.W.Workload.name)
    true
    (Site.Pair.Set.subset a.Fuzzer.error_pairs a.Fuzzer.real_pairs)

(* ------------------------------------------------------------------ *)
(* Per-workload topology                                                *)

let test_moldyn () =
  let a = analysis W.Moldyn.workload in
  Alcotest.(check bool) "many potential" true (potential a >= 4);
  check_contains_all "moldyn" (W.Moldyn.real_pairs ()) a.Fuzzer.real_pairs;
  Alcotest.(check int) "exactly the 2 benign counter races" 2 (nreal a);
  Alcotest.(check int) "no exceptions" 0 (nerror a)

let test_raytracer () =
  let a = analysis W.Raytracer.workload in
  check_contains_all "raytracer" (W.Raytracer.real_pairs ()) a.Fuzzer.real_pairs;
  Alcotest.(check int) "both checksum pairs, nothing else" 2 (nreal a);
  Alcotest.(check int) "all potential are real (paper: 2/2)" 2 (potential a);
  Alcotest.(check int) "no exceptions" 0 (nerror a)

let test_montecarlo () =
  let a = analysis W.Montecarlo.workload in
  check_contains_all "montecarlo" (W.Montecarlo.real_pairs ()) a.Fuzzer.real_pairs;
  Alcotest.(check int) "exactly one real race" 1 (nreal a);
  Alcotest.(check bool) "several false alarms (paper: 5/1)" true (potential a >= 3);
  Alcotest.(check int) "no exceptions" 0 (nerror a)

let test_cache4j () =
  let a = analysis W.Cache4j.workload in
  check_contains_all "cache4j" (W.Cache4j.real_pairs ()) a.Fuzzer.real_pairs;
  Alcotest.(check bool) "potential > real" true (potential a > nreal a);
  Alcotest.(check bool) "the _sleep race is harmful" true
    (Site.Pair.Set.mem W.Cache4j.harmful_pair a.Fuzzer.error_pairs)

let test_sor () =
  let a = analysis W.Sor.workload in
  Alcotest.(check bool) "several potential races" true (potential a >= 4);
  Alcotest.(check int) "zero real (paper: 8/0)" 0 (nreal a)

let test_hedc () =
  let a = analysis W.Hedc.workload in
  Alcotest.(check int) "exactly one real race" 1 (nreal a);
  Alcotest.(check bool) "it is the handle race" true
    (Site.Pair.Set.mem W.Hedc.harmful_pair a.Fuzzer.real_pairs);
  Alcotest.(check bool) "it is harmful (NPE)" true
    (Site.Pair.Set.mem W.Hedc.harmful_pair a.Fuzzer.error_pairs);
  Alcotest.(check bool) "several false alarms (paper: 9/1)" true (potential a >= 5)

let test_weblech () =
  let a = analysis W.Weblech.workload in
  Alcotest.(check bool) "real races found" true (nreal a >= 2);
  Alcotest.(check bool) "check-then-pop confirmed harmful" true
    (Site.Pair.Set.mem W.Weblech.harmful_pair a.Fuzzer.error_pairs);
  Alcotest.(check bool) "many false alarms (paper: 27 potential)" true
    (potential a >= 15)

let test_weblech_simple_random_sometimes_crashes () =
  (* paper column 10: the simple random scheduler also finds 1 exception *)
  let b =
    Fuzzer.baseline ~seeds:(seeds 150) ~make_strategy:Rf_runtime.Strategy.random
      W.Weblech.workload.W.Workload.program
  in
  Alcotest.(check bool)
    (Printf.sprintf "random finds the crash occasionally (%d/150)"
       b.Fuzzer.b_error_trials)
    true
    (b.Fuzzer.b_error_trials > 0)

let test_jspider () =
  let a = analysis W.Jspider.workload in
  Alcotest.(check bool) "many potential (paper: 29)" true (potential a >= 20);
  Alcotest.(check int) "zero real" 0 (nreal a);
  Alcotest.(check int) "zero exceptions" 0 (nerror a)

let test_jigsaw () =
  let a = analysis W.Jigsaw.workload in
  Alcotest.(check bool) "most potential of all" true (potential a >= 25);
  Alcotest.(check bool) "many real (paper: 36)" true (nreal a >= 8);
  Alcotest.(check int) "no exceptions" 0 (nerror a);
  (* every confirmed pair is one of the designed counter pairs *)
  let designed = Site.Pair.Set.of_list (W.Jigsaw.real_pairs ()) in
  Alcotest.(check bool) "confirmed ⊆ designed" true
    (Site.Pair.Set.subset a.Fuzzer.real_pairs designed)

let test_vector () =
  let a = analysis W.Coll_drivers.vector in
  Alcotest.(check bool) "several real races" true (nreal a >= 3);
  Alcotest.(check int) "benign: no exceptions (paper: 9/9, 0 exc)" 0 (nerror a);
  (* vector 1.1's defining property: every potential race is real *)
  Alcotest.(check int)
    "potential = real (paper: potential 9 = real 9)"
    (potential a) (nreal a)

let coll_driver_has_harmful (w : W.Workload.t) () =
  let a = analysis w in
  Alcotest.(check bool)
    (Printf.sprintf "%s: real races found" w.W.Workload.name)
    true (nreal a >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "%s: >=1 harmful pair (CME/NSE)" w.W.Workload.name)
    true (nerror a >= 1)

(* ------------------------------------------------------------------ *)
(* Extras: tsp / elevator / philosophers                                *)

let test_tsp () =
  let a = analysis W.Extras.tsp in
  Alcotest.(check int) "one potential pair" 1 (potential a);
  check_contains_all "tsp" (W.Extras.tsp_real_pairs ()) a.Fuzzer.real_pairs;
  Alcotest.(check int) "the benign bound race is real" 1 (nreal a);
  Alcotest.(check int) "benign: no exceptions" 0 (nerror a)

let test_elevator () =
  let a = analysis W.Extras.elevator in
  Alcotest.(check bool) "several real races" true (nreal a >= 2);
  Alcotest.(check bool) "doors check-then-act harmful" true
    (Site.Pair.Set.mem W.Extras.elevator_harmful_pair a.Fuzzer.error_pairs)

let test_philosophers_deadlock () =
  let results =
    Racefuzzer.Deadlock_fuzzer.analyze
      ~phase1_seeds:(seeds 10)
      ~seeds_per_candidate:(seeds 30)
      W.Extras.philosophers.W.Workload.program
  in
  Alcotest.(check bool) "cycles found" true (results <> []);
  Alcotest.(check bool) "a cycle realizes" true
    (List.exists Racefuzzer.Deadlock_fuzzer.is_real results)

let all_cases =
  let generic =
    List.concat_map
      (fun (w : W.Workload.t) ->
        [
          Alcotest.test_case (w.W.Workload.name ^ " terminates") `Slow
            (test_terminates w);
          Alcotest.test_case (w.W.Workload.name ^ " soundness") `Slow
            (test_real_subset_of_potential w);
        ])
      W.Registry.all
  in
  generic
  @ [
      Alcotest.test_case "moldyn topology" `Slow test_moldyn;
      Alcotest.test_case "raytracer topology" `Slow test_raytracer;
      Alcotest.test_case "montecarlo topology" `Slow test_montecarlo;
      Alcotest.test_case "cache4j topology" `Slow test_cache4j;
      Alcotest.test_case "sor topology" `Slow test_sor;
      Alcotest.test_case "hedc topology" `Slow test_hedc;
      Alcotest.test_case "weblech topology" `Slow test_weblech;
      Alcotest.test_case "weblech simple-random" `Slow
        test_weblech_simple_random_sometimes_crashes;
      Alcotest.test_case "jspider topology" `Slow test_jspider;
      Alcotest.test_case "jigsaw topology" `Slow test_jigsaw;
      Alcotest.test_case "vector topology" `Slow test_vector;
      Alcotest.test_case "linkedlist harmful" `Slow
        (coll_driver_has_harmful W.Coll_drivers.linkedlist);
      Alcotest.test_case "arraylist harmful" `Slow
        (coll_driver_has_harmful W.Coll_drivers.arraylist);
      Alcotest.test_case "hashset harmful" `Slow
        (coll_driver_has_harmful W.Coll_drivers.hashset);
      Alcotest.test_case "treeset harmful" `Slow
        (coll_driver_has_harmful W.Coll_drivers.treeset);
      Alcotest.test_case "tsp topology" `Slow test_tsp;
      Alcotest.test_case "elevator topology" `Slow test_elevator;
      Alcotest.test_case "philosophers deadlock" `Slow test_philosophers_deadlock;
      Alcotest.test_case "tsp terminates" `Slow (test_terminates W.Extras.tsp);
      Alcotest.test_case "elevator terminates" `Slow (test_terminates W.Extras.elevator);
      Alcotest.test_case "tsp soundness" `Slow
        (test_real_subset_of_potential W.Extras.tsp);
      Alcotest.test_case "elevator soundness" `Slow
        (test_real_subset_of_potential W.Extras.elevator);
    ]

let () = Alcotest.run "rf_workloads" [ ("workloads", all_cases) ]
