examples/cache4j_bug.mli:
