(* Tests for phase-1 detectors: happens-before clock construction, hybrid
   detection, precise HB detection, Eraser — on synthetic event streams and
   on real engine runs of the paper's Figure 1. *)

open Rf_util
open Rf_events
open Rf_detect

let st n = Site.make ~file:"synthetic" ~line:n "s"

let mem ~tid ~line ?(loc = Loc.global "v") ?(access = Event.Write)
    ?(locks = []) () =
  Event.Mem { tid; site = st line; loc; access; lockset = Lockset.of_list locks }

(* ------------------------------------------------------------------ *)
(* Hbclock                                                             *)

let test_hbclock_program_order () =
  let hb = Hbclock.create ~lock_edges:false () in
  let c1 = Hbclock.feed hb (mem ~tid:0 ~line:1 ()) in
  let c2 = Hbclock.feed hb (mem ~tid:0 ~line:2 ()) in
  Alcotest.(check bool) "program order" true (Rf_vclock.Vclock.lt c1 c2)

let test_hbclock_unrelated_threads_concurrent () =
  let hb = Hbclock.create ~lock_edges:false () in
  let c1 = Hbclock.feed hb (mem ~tid:0 ~line:1 ()) in
  let c2 = Hbclock.feed hb (mem ~tid:1 ~line:2 ()) in
  Alcotest.(check bool) "concurrent" true (Rf_vclock.Vclock.concurrent c1 c2)

let test_hbclock_msg_edge () =
  let hb = Hbclock.create ~lock_edges:false () in
  let c1 = Hbclock.feed hb (mem ~tid:0 ~line:1 ()) in
  let _ = Hbclock.feed hb (Event.Snd { tid = 0; msg = 7; reason = Event.Fork }) in
  let _ = Hbclock.feed hb (Event.Rcv { tid = 1; msg = 7; reason = Event.Fork }) in
  let c2 = Hbclock.feed hb (mem ~tid:1 ~line:2 ()) in
  Alcotest.(check bool) "ordered via message" true (Rf_vclock.Vclock.lt c1 c2)

let test_hbclock_lock_edges_policy () =
  let run ~lock_edges =
    let hb = Hbclock.create ~lock_edges () in
    let c1 = Hbclock.feed hb (mem ~tid:0 ~line:1 ()) in
    let _ = Hbclock.feed hb (Event.Release { tid = 0; lock = 5; site = st 2 }) in
    let _ = Hbclock.feed hb (Event.Acquire { tid = 1; lock = 5; site = st 3 }) in
    let c2 = Hbclock.feed hb (mem ~tid:1 ~line:4 ()) in
    (c1, c2)
  in
  let c1, c2 = run ~lock_edges:true in
  Alcotest.(check bool) "lock edge orders" true (Rf_vclock.Vclock.lt c1 c2);
  let c1, c2 = run ~lock_edges:false in
  Alcotest.(check bool) "no lock edge: concurrent" true
    (Rf_vclock.Vclock.concurrent c1 c2)

let test_hbclock_unmatched_rcv () =
  let hb = Hbclock.create ~lock_edges:false () in
  let c = Hbclock.feed hb (Event.Rcv { tid = 3; msg = 999; reason = Event.Join }) in
  Alcotest.(check int) "own component ticked" 1 (Rf_vclock.Vclock.get c 3)

(* ------------------------------------------------------------------ *)
(* Hybrid on synthetic streams                                         *)

let feed_all d evs = List.iter (Hybrid.feed d) evs

let test_hybrid_basic_race () =
  let d = Hybrid.create () in
  feed_all d [ mem ~tid:0 ~line:1 (); mem ~tid:1 ~line:2 () ];
  Alcotest.(check int) "one pair" 1 (Hybrid.race_count d)

let test_hybrid_read_read_no_race () =
  let d = Hybrid.create () in
  feed_all d
    [ mem ~tid:0 ~line:1 ~access:Event.Read (); mem ~tid:1 ~line:2 ~access:Event.Read () ];
  Alcotest.(check int) "reads don't race" 0 (Hybrid.race_count d)

let test_hybrid_common_lock_no_race () =
  let d = Hybrid.create () in
  feed_all d [ mem ~tid:0 ~line:1 ~locks:[ 5 ] (); mem ~tid:1 ~line:2 ~locks:[ 5; 6 ] () ];
  Alcotest.(check int) "common lock" 0 (Hybrid.race_count d)

let test_hybrid_disjoint_locks_race () =
  let d = Hybrid.create () in
  feed_all d [ mem ~tid:0 ~line:1 ~locks:[ 5 ] (); mem ~tid:1 ~line:2 ~locks:[ 6 ] () ];
  Alcotest.(check int) "disjoint locks race" 1 (Hybrid.race_count d)

let test_hybrid_different_locs_no_race () =
  let d = Hybrid.create () in
  feed_all d
    [ mem ~tid:0 ~line:1 ~loc:(Loc.global "a") (); mem ~tid:1 ~line:2 ~loc:(Loc.global "b") () ];
  Alcotest.(check int) "different locations" 0 (Hybrid.race_count d)

let test_hybrid_same_thread_no_race () =
  let d = Hybrid.create () in
  feed_all d [ mem ~tid:0 ~line:1 (); mem ~tid:0 ~line:2 () ];
  Alcotest.(check int) "same thread" 0 (Hybrid.race_count d)

let test_hybrid_fork_edge_suppresses () =
  let d = Hybrid.create () in
  feed_all d
    [
      mem ~tid:0 ~line:1 ();
      Event.Snd { tid = 0; msg = 1; reason = Event.Fork };
      Event.Rcv { tid = 1; msg = 1; reason = Event.Fork };
      mem ~tid:1 ~line:2 ();
    ];
  Alcotest.(check int) "fork ordering respected" 0 (Hybrid.race_count d)

let test_hybrid_ignores_lock_ordering () =
  (* Two critical sections on the same lock touching v without holding it:
     hybrid treats release->acquire as no edge, so still a race. *)
  let d = Hybrid.create () in
  feed_all d
    [
      mem ~tid:0 ~line:1 ();
      Event.Release { tid = 0; lock = 9; site = st 10 };
      Event.Acquire { tid = 1; lock = 9; site = st 11 };
      mem ~tid:1 ~line:2 ();
    ];
  Alcotest.(check int) "predictive across lock ordering" 1 (Hybrid.race_count d)

let test_hybrid_dedups_pairs () =
  let d = Hybrid.create () in
  for _ = 1 to 10 do
    feed_all d [ mem ~tid:0 ~line:1 (); mem ~tid:1 ~line:2 () ]
  done;
  Alcotest.(check int) "one distinct pair" 1 (Hybrid.race_count d)

let test_hybrid_race_metadata () =
  let d = Hybrid.create () in
  feed_all d [ mem ~tid:0 ~line:1 (); mem ~tid:1 ~line:2 () ];
  match Hybrid.races d with
  | [ r ] ->
      Alcotest.(check bool) "loc recorded" true (Loc.equal r.Race.loc (Loc.global "v"));
      Alcotest.(check bool) "pair has both sites" true
        (Site.Pair.mem (st 1) r.Race.pair && Site.Pair.mem (st 2) r.Race.pair)
  | l -> Alcotest.failf "expected 1 race, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Precise HB vs hybrid                                                *)

let test_hb_precise_respects_lock_order () =
  let d = Hb_precise.create () in
  List.iter (Hb_precise.feed d)
    [
      Event.Acquire { tid = 0; lock = 9; site = st 10 };
      mem ~tid:0 ~line:1 ~locks:[ 9 ] ();
      Event.Release { tid = 0; lock = 9; site = st 10 };
      Event.Acquire { tid = 1; lock = 9; site = st 11 };
      mem ~tid:1 ~line:2 ~locks:[ 9 ] ();
      Event.Release { tid = 1; lock = 9; site = st 11 };
    ];
  Alcotest.(check int) "lock-ordered accesses don't race" 0 (Hb_precise.race_count d)

let test_hb_precise_detects_true_concurrency () =
  let d = Hb_precise.create () in
  List.iter (Hb_precise.feed d) [ mem ~tid:0 ~line:1 (); mem ~tid:1 ~line:2 () ];
  Alcotest.(check int) "unordered conflicting accesses race" 1
    (Hb_precise.race_count d)

let test_hb_precise_ignores_locksets () =
  (* Same lock held but accesses NOT ordered by any release->acquire of it:
     t0 and t1 hold different locks; precise HB reports (locksets are not
     part of its condition). *)
  let d = Hb_precise.create () in
  List.iter (Hb_precise.feed d)
    [ mem ~tid:0 ~line:1 ~locks:[ 5 ] (); mem ~tid:1 ~line:2 ~locks:[ 5 ] () ];
  Alcotest.(check int) "concurrent despite common lockset field" 1
    (Hb_precise.race_count d)

(* ------------------------------------------------------------------ *)
(* Eraser                                                              *)

let test_eraser_consistent_discipline () =
  let d = Eraser.create () in
  List.iter (Eraser.feed d)
    [
      mem ~tid:0 ~line:1 ~locks:[ 5 ] ();
      mem ~tid:1 ~line:2 ~locks:[ 5 ] ();
      mem ~tid:0 ~line:1 ~locks:[ 5 ] ();
    ];
  Alcotest.(check int) "consistent lock: no race" 0 (Eraser.race_count d)

let test_eraser_violation () =
  let d = Eraser.create () in
  List.iter (Eraser.feed d)
    [ mem ~tid:0 ~line:1 ~locks:[ 5 ] (); mem ~tid:1 ~line:2 ~locks:[ 6 ] () ];
  Alcotest.(check int) "discipline violation" 1 (Eraser.race_count d);
  Alcotest.(check int) "racy location recorded" 1 (List.length (Eraser.racy_locations d))

let test_eraser_exclusive_phase_tolerated () =
  (* Initialization by a single thread without locks is fine until sharing. *)
  let d = Eraser.create () in
  List.iter (Eraser.feed d)
    [
      mem ~tid:0 ~line:1 ();
      mem ~tid:0 ~line:1 ();
      mem ~tid:1 ~line:2 ~access:Event.Read ~locks:[ 5 ] ();
    ];
  (* Shared (read) state with candidate lockset {5}: no violation yet. *)
  Alcotest.(check int) "no race during read sharing" 0 (Eraser.race_count d)

let test_eraser_false_positive_on_fork_join () =
  (* Eraser has no happens-before at all: handoff via fork is flagged even
     though it is perfectly ordered — hybrid correctly stays silent. *)
  let evs =
    [
      mem ~tid:0 ~line:1 ();
      Event.Snd { tid = 0; msg = 1; reason = Event.Fork };
      Event.Rcv { tid = 1; msg = 1; reason = Event.Fork };
      mem ~tid:1 ~line:2 ();
    ]
  in
  let e = Eraser.create () in
  List.iter (Eraser.feed e) evs;
  let h = Hybrid.create () in
  List.iter (Hybrid.feed h) evs;
  Alcotest.(check int) "eraser flags ordered handoff" 1 (Eraser.race_count e);
  Alcotest.(check int) "hybrid does not" 0 (Hybrid.race_count h)

(* ------------------------------------------------------------------ *)
(* FastTrack                                                           *)

let feed_ft d evs = List.iter (Fasttrack.feed d) evs

let test_fasttrack_basic_races () =
  let d = Fasttrack.create () in
  feed_ft d [ mem ~tid:0 ~line:1 (); mem ~tid:1 ~line:2 () ];
  Alcotest.(check int) "write-write race" 1 (Fasttrack.race_count d)

let test_fasttrack_read_write () =
  let d = Fasttrack.create () in
  feed_ft d
    [ mem ~tid:0 ~line:1 ~access:Event.Read (); mem ~tid:1 ~line:2 ~access:Event.Write () ];
  Alcotest.(check int) "read-write race" 1 (Fasttrack.race_count d)

let test_fasttrack_lock_ordered_silent () =
  let d = Fasttrack.create () in
  feed_ft d
    [
      Event.Acquire { tid = 0; lock = 9; site = st 10 };
      mem ~tid:0 ~line:1 ~locks:[ 9 ] ();
      Event.Release { tid = 0; lock = 9; site = st 10 };
      Event.Acquire { tid = 1; lock = 9; site = st 11 };
      mem ~tid:1 ~line:2 ~locks:[ 9 ] ();
      Event.Release { tid = 1; lock = 9; site = st 11 };
    ];
  Alcotest.(check int) "ordered: no race" 0 (Fasttrack.race_count d)

let test_fasttrack_shared_read_state () =
  (* two concurrent reads (inflating the read set) then a write racing
     with both *)
  let d = Fasttrack.create () in
  feed_ft d
    [
      mem ~tid:0 ~line:1 ~access:Event.Read ();
      mem ~tid:1 ~line:2 ~access:Event.Read ();
      mem ~tid:2 ~line:3 ~access:Event.Write ();
    ];
  Alcotest.(check bool) "both read-write pairs found" true (Fasttrack.race_count d >= 2);
  Alcotest.(check bool) "slow path used" true (Fasttrack.vc_ops d > 0)

let test_fasttrack_epoch_fast_path () =
  (* same-thread repeated accesses stay on the O(1) fast path *)
  let d = Fasttrack.create () in
  for _ = 1 to 50 do
    feed_ft d [ mem ~tid:0 ~line:1 () ]
  done;
  Alcotest.(check int) "no races" 0 (Fasttrack.race_count d);
  Alcotest.(check int) "no vector-clock ops" 0 (Fasttrack.vc_ops d);
  Alcotest.(check bool) "epoch hits accumulated" true (Fasttrack.epoch_hits d > 40)

let racy_locs detector_races =
  List.fold_left
    (fun acc (r : Race.t) -> Loc.Set.add r.Race.loc acc)
    Loc.Set.empty detector_races

let test_fasttrack_agrees_with_precise_on_figure1 () =
  List.iter
    (fun seed ->
      let ft = Fasttrack.create () in
      let hb = Detector.hb_precise ~cap:1024 () in
      ignore
        (Rf_runtime.Engine.run
           ~config:{ Rf_runtime.Engine.default_config with seed }
           ~listeners:[ Fasttrack.feed ft; Detector.feed hb ]
           ~strategy:(Rf_runtime.Strategy.random ())
           Rf_workloads.Figure1.program);
      (* FastTrack reports a subset of the precise pair set... *)
      Alcotest.(check bool) "pairs subset" true
        (Site.Pair.Set.subset (Fasttrack.pairs ft) (Detector.pairs hb));
      (* ...but flags exactly the same racy locations *)
      Alcotest.(check bool) "same racy locations" true
        (Loc.Set.equal
           (racy_locs (Fasttrack.races ft))
           (racy_locs (Detector.races hb))))
    (List.init 25 Fun.id)

(* ------------------------------------------------------------------ *)
(* Integration: detectors as engine listeners on Figure 1              *)

let figure1_pairs ~seeds detector_of =
  let d = detector_of () in
  List.iter
    (fun seed ->
      ignore
        (Rf_runtime.Engine.run
           ~config:{ Rf_runtime.Engine.default_config with seed }
           ~listeners:[ Detector.feed d ]
           ~strategy:(Rf_runtime.Strategy.random ())
           Rf_workloads.Figure1.program))
    seeds;
  Detector.pairs d

let test_figure1_hybrid_finds_both_candidates () =
  let pairs = figure1_pairs ~seeds:(List.init 20 Fun.id) Detector.hybrid in
  Alcotest.(check bool) "real pair (5,7) found" true
    (Site.Pair.Set.mem Rf_workloads.Figure1.real_pair pairs);
  Alcotest.(check bool) "false pair (1,10) predicted too" true
    (Site.Pair.Set.mem Rf_workloads.Figure1.false_pair pairs);
  (* y is consistently locked: no pair may involve sites 3 or 9 *)
  Site.Pair.Set.iter
    (fun p ->
      Alcotest.(check bool) "y never reported" false
        (Site.Pair.mem Rf_workloads.Figure1.s3_write_y p
        || Site.Pair.mem Rf_workloads.Figure1.s9_read_y p))
    pairs;
  Alcotest.(check int) "exactly the two pairs" 2 (Site.Pair.Set.cardinal pairs)

let test_figure1_hb_precise_subset_of_hybrid () =
  let seeds = List.init 20 Fun.id in
  let hb = figure1_pairs ~seeds Detector.hb_precise in
  let hy = figure1_pairs ~seeds Detector.hybrid in
  Alcotest.(check bool) "precise ⊆ hybrid on figure1" true
    (Site.Pair.Set.subset hb hy)

let prop_hybrid_supseteq_precise =
  (* On arbitrary seeds of the racy figure-1 program, every pair the precise
     HB detector reports is also reported by hybrid (same trace): hybrid's
     happens-before relation is a subset, so its concurrency is a superset;
     the lockset condition can only remove lock-protected pairs, which
     precise HB orders via lock edges anyway. *)
  QCheck.Test.make ~name:"hybrid ⊇ precise-HB per trace" ~count:25 QCheck.small_int
    (fun seed ->
      let d_hy = Detector.hybrid () and d_hb = Detector.hb_precise () in
      ignore
        (Rf_runtime.Engine.run
           ~config:{ Rf_runtime.Engine.default_config with seed; record_trace = false }
           ~listeners:[ Detector.feed d_hy; Detector.feed d_hb ]
           ~strategy:(Rf_runtime.Strategy.random ())
           Rf_workloads.Figure1.program);
      Site.Pair.Set.subset (Detector.pairs d_hb) (Detector.pairs d_hy))

let () =
  Alcotest.run "rf_detect"
    [
      ( "hbclock",
        [
          Alcotest.test_case "program order" `Quick test_hbclock_program_order;
          Alcotest.test_case "threads concurrent" `Quick
            test_hbclock_unrelated_threads_concurrent;
          Alcotest.test_case "msg edge" `Quick test_hbclock_msg_edge;
          Alcotest.test_case "lock edge policy" `Quick test_hbclock_lock_edges_policy;
          Alcotest.test_case "unmatched rcv" `Quick test_hbclock_unmatched_rcv;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "basic race" `Quick test_hybrid_basic_race;
          Alcotest.test_case "read-read" `Quick test_hybrid_read_read_no_race;
          Alcotest.test_case "common lock" `Quick test_hybrid_common_lock_no_race;
          Alcotest.test_case "disjoint locks" `Quick test_hybrid_disjoint_locks_race;
          Alcotest.test_case "different locs" `Quick test_hybrid_different_locs_no_race;
          Alcotest.test_case "same thread" `Quick test_hybrid_same_thread_no_race;
          Alcotest.test_case "fork edge" `Quick test_hybrid_fork_edge_suppresses;
          Alcotest.test_case "ignores lock order" `Quick
            test_hybrid_ignores_lock_ordering;
          Alcotest.test_case "dedups" `Quick test_hybrid_dedups_pairs;
          Alcotest.test_case "metadata" `Quick test_hybrid_race_metadata;
        ] );
      ( "hb-precise",
        [
          Alcotest.test_case "lock order respected" `Quick
            test_hb_precise_respects_lock_order;
          Alcotest.test_case "true concurrency" `Quick
            test_hb_precise_detects_true_concurrency;
          Alcotest.test_case "ignores locksets" `Quick test_hb_precise_ignores_locksets;
        ] );
      ( "eraser",
        [
          Alcotest.test_case "consistent discipline" `Quick
            test_eraser_consistent_discipline;
          Alcotest.test_case "violation" `Quick test_eraser_violation;
          Alcotest.test_case "exclusive phase" `Quick
            test_eraser_exclusive_phase_tolerated;
          Alcotest.test_case "fork-join false positive" `Quick
            test_eraser_false_positive_on_fork_join;
        ] );
      ( "fasttrack",
        [
          Alcotest.test_case "basic races" `Quick test_fasttrack_basic_races;
          Alcotest.test_case "read-write" `Quick test_fasttrack_read_write;
          Alcotest.test_case "lock ordered" `Quick test_fasttrack_lock_ordered_silent;
          Alcotest.test_case "shared read state" `Quick test_fasttrack_shared_read_state;
          Alcotest.test_case "epoch fast path" `Quick test_fasttrack_epoch_fast_path;
          Alcotest.test_case "agrees with precise" `Quick
            test_fasttrack_agrees_with_precise_on_figure1;
        ] );
      ( "figure1",
        [
          Alcotest.test_case "hybrid candidates" `Quick
            test_figure1_hybrid_finds_both_candidates;
          Alcotest.test_case "precise subset" `Quick
            test_figure1_hb_precise_subset_of_hybrid;
          QCheck_alcotest.to_alcotest prop_hybrid_supseteq_precise;
        ] );
    ]
