(** Happens-before clock builder: assigns every event of a stream a vector
    clock under a configurable edge policy.

    [lock_edges = false] gives the *weak* relation of hybrid detection
    (program order + fork/join/notify messages only — deliberately blind to
    lock ordering, which is what makes hybrid predictive and imprecise);
    [lock_edges = true] adds release→acquire edges, giving the classical
    precise happens-before relation. *)

open Rf_events
open Rf_vclock

type t

val create : lock_edges:bool -> unit -> t

val feed : t -> Event.t -> Vclock.t
(** Process one event (in trace order) and return its clock: for events
    [e1] fed before [e2], [Vclock.leq (feed e1) (feed e2)] iff [e1]
    happens-before-or-equals [e2] under the policy. *)

val thread_clock : t -> int -> Vclock.t
(** Current clock of a thread (bottom if unseen). *)
