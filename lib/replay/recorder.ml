open Rf_util
open Rf_runtime

type t = { mutable rev_steps : Schedule.step list; mutable count : int }

let wrap (inner : Strategy.t) : Strategy.t * t =
  let rec_ = { rev_steps = []; count = 0 } in
  let choose (view : Strategy.view) =
    let tid = inner.Strategy.choose view in
    let entry =
      match List.find_opt (fun e -> e.Strategy.tid = tid) view.Strategy.enabled with
      | Some e -> e
      | None ->
          Fmt.invalid_arg "Recorder: strategy %S chose tid %d, not enabled"
            inner.Strategy.sname tid
    in
    (* The state *after* the decision: replay restores it so engine-internal
       draws (notify target selection) see the recorded stream. *)
    let step =
      {
        Schedule.st_tid = tid;
        st_key = Schedule.key_of_pend entry.Strategy.pend;
        st_rng = Prng.state view.Strategy.prng;
      }
    in
    rec_.rev_steps <- step :: rec_.rev_steps;
    rec_.count <- rec_.count + 1;
    tid
  in
  (Strategy.make ~name:(inner.Strategy.sname ^ "+record") choose, rec_)

let length t = t.count

let schedule ?(target = "") ?pair ~seed
    ?(max_steps = Engine.default_config.max_steps) ~(outcome : Outcome.t) t :
    Schedule.t =
  let meta =
    {
      Schedule.m_target = target;
      m_seed = seed;
      m_pair =
        Option.map
          (fun p ->
            ( Schedule.site_key (Site.Pair.fst p),
              Schedule.site_key (Site.Pair.snd p) ))
          pair;
      m_max_steps = max_steps;
      m_steps = outcome.Outcome.steps;
      m_error = Schedule.error_fingerprint outcome;
    }
  in
  { Schedule.meta; steps = Array.of_list (List.rev t.rev_steps) }
