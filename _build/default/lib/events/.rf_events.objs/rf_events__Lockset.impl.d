lib/events/lockset.ml: Fmt Int Set
