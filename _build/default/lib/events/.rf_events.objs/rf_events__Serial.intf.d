lib/events/serial.mli: Event Loc Rf_util Site Trace
