(** The parallel campaign orchestrator.

    {!Racefuzzer.Fuzzer.analyze} fuzzes candidate pairs strictly one after
    another.  The paper notes that "different invocations of RaceFuzzer are
    independent of each other [so] performance can be increased linearly
    with the number of processors or cores" — a campaign takes that
    globally: {e all} phase-2 (pair, seed) trials go into a single
    deterministic work queue drained by a pool of OCaml domains, instead of
    exploiting parallelism one pair at a time.

    {2 Deterministic aggregation}

    Each trial is a pure function of (pair, seed): the engine resets its
    domain-local counters per run, so a trial computes the same result on
    any domain at any time.  Aggregation sorts trials back into their
    logical (pair, trial-index) slots, so campaign results are
    {b bit-identical} for any domain count and any interleaving — and,
    with cutoff disabled, identical to sequential
    {!Racefuzzer.Fuzzer.analyze} on the same seed lists.

    {2 Early cutoff}

    With [~cutoff:true], once a pair is classified both {e real} and
    {e harmful}, its remaining queued trials are cancelled.  The cutoff
    point is defined {e logically}, not temporally: the pair's trial list
    is truncated at the smallest trial index whose prefix contains a race
    trial and an error trial.  Workers may speculatively run trials past
    that index before it is known; their results are discarded at
    aggregation, so the cutoff semantics are also independent of domain
    count.  Freed trials return to the budget pool — the refund is the
    logical [granted - (bound + 1)], never a temporal "how many did we
    happen to skip" — and are reallocated to still-unresolved pairs in
    deterministic round-robin waves.

    {2 Fault tolerance}

    Trials run inside a sandbox ({!Racefuzzer.Fuzzer.run_trial}): a
    harness crash or watchdog cancellation is recorded in the journal and
    costs one trial, never the campaign.  A pair that crashes the harness
    [quarantine_crashes] times is {e quarantined} at its Nth-smallest
    crash index — the same monotone-bound construction as cutoff, so
    quarantine decisions are deterministic whenever the crashes are.
    Worker domains are supervised ({!Supervisor}): a dead worker's
    in-flight task is requeued and the worker respawned with exponential
    backoff.  A campaign can be stopped gracefully ({!request_stop}) and
    later resumed from its journal ([~resume]), replaying finished trials
    instead of re-executing them — the resumed analysis fingerprints
    identically to an uninterrupted run. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer

(** {1 Graceful stop} *)

type stop_switch
(** A cooperative cancellation flag, safe to flip from a signal handler or
    any domain. *)

val stop_switch : unit -> stop_switch

val request_stop : stop_switch -> unit
(** Workers finish (or skip) their current task and exit; the wave loop
    drains, emits [Campaign_interrupted], and aggregation produces a
    partial — but still deterministic — report. *)

val stop_requested : stop_switch -> bool

(** {1 Stats} *)

type stats = {
  s_pairs : int;
  s_resolved : int;  (** pairs classified real-and-harmful *)
  s_trials : int;  (** trials actually executed (excludes replays) *)
  s_cancelled : int;  (** queued trials skipped by cutoff *)
  s_discarded : int;  (** speculative trials run past a resolution point *)
  s_waves : int;
  s_wall : float;  (** phase-2 wall-clock seconds *)
  s_phase1_wall : float;
  s_throughput : float;  (** executed trials per second of phase-2 wall *)
  s_domains : int;
  s_domain_trials : int array;  (** trials executed per domain *)
  s_domain_busy : float array;  (** busy seconds per domain *)
  s_exhausted : int;  (** trials cancelled by the per-trial watchdog *)
  s_crashes : int;  (** sandboxed harness crashes (incl. injected chaos) *)
  s_quarantined : int;  (** pairs quarantined for repeated crashes *)
  s_q_skipped : int;  (** trials skipped past a quarantine bound *)
  s_replayed : int;  (** trials satisfied from the resume journal *)
  s_worker_crashes : int;
  s_worker_respawns : int;
  s_worker_gave_up : int;  (** worker slots that exhausted their respawns *)
  s_proc_active : int;
      (** worker processes alive after the init handshake: 0 means the
          requested proc tier degraded to the in-process pool (or none was
          requested) — serve status reports this as fleet degradation *)
  s_interrupted : bool;  (** the campaign was stopped before completion *)
  s_degraded : int;
      (** trials that completed under a tripped resource governor
          (degraded precision, explicitly labeled) *)
  s_p1_level : string option;
      (** phase-1 final ladder level when phase 1 degraded ({!run} only) *)
  s_p1_detector : string;
      (** which phase-1 detector ran ("hybrid", "sampling"; {!run} only) *)
  s_p1_miss_bound : float option;
      (** sampling only: upper bound on the probability that any
          particular racing pair went unobserved in phase 1 *)
  s_p1_entries : int;
      (** live phase-1 detector state entries at end of detection *)
  s_p1_recording : Fuzzer.recording_stats option;
      (** recording/offline-detection cost split when phase 1 ran
          record-then-detect ({!run} with [~offline_detect]) *)
  s_resume_skipped : int;
      (** checksum-bad journal lines skipped while loading [~resume] *)
  s_repro_written : int;  (** minimized reproduction schedules emitted *)
  s_repro_failed : int;  (** witnesses whose minimization failed to reproduce *)
  s_repro_oracle_runs : int;  (** engine runs spent minimizing *)
  s_static : static_summary option;
      (** static pre-filter precision summary ({!run} with [~static]) *)
}

and static_summary = {
  st_universe : int;  (** same-variable site pairs in the whole program *)
  st_universe_impossible : int;  (** universe pairs proved [Impossible] *)
  st_frontier : int;  (** phase-1 candidate pairs handed to the filter *)
  st_likely : int;
  st_unknown : int;
  st_impossible : int;  (** frontier pairs classified [Impossible] *)
  st_filtered : int;  (** pairs actually skipped (0 unless filtering) *)
  st_wall : float;  (** classification wall-clock seconds *)
}

type result = {
  analysis : Fuzzer.analysis;
  stats : stats;
  repro : Repro.summary;  (** {!Repro.no_summary} without [~repro_dir] *)
}

val fuzz_pairs :
  ?domains:int ->
  ?seeds:int list ->
  ?cutoff:bool ->
  ?budget:int ->
  ?postpone_timeout:int option ->
  ?max_steps:int ->
  ?log:Event_log.t ->
  ?supervision:Supervisor.policy ->
  ?chaos:Chaos.plan ->
  ?trial_deadline:float ->
  ?resume:string ->
  ?stop:stop_switch ->
  ?detector_budget:int ->
  ?mem_budget:float ->
  ?no_degrade:bool ->
  ?proc:Proc_pool.spec ->
  program:Fuzzer.program ->
  Site.Pair.t list ->
  Fuzzer.pair_result list * stats
(** Fuzz a fixed candidate set.  [seeds] (default 100) is the per-pair
    base seed list; [budget] caps the total number of trials across all
    pairs (default [pairs * seeds]; trials beyond the base list use fresh
    seeds above the base maximum).  Results come back in input pair
    order.

    [supervision] (default {!Supervisor.default_policy}) sets the worker
    respawn budget, backoff curve and quarantine threshold.  [chaos]
    injects deterministic faults ({!Chaos}).  [trial_deadline] attaches a
    wall-clock watchdog to every trial (seconds; chaos plans can also
    carry one).  [resume] replays the [Trial_*] records of an existing
    journal instead of re-executing those trials; checksum-bad journal
    lines are skipped and counted in [s_resume_skipped].  [stop] is
    polled by workers and the wave loop for graceful interruption.

    [detector_budget] caps logical detector-state entries per trial;
    [mem_budget] (MB) arms the heap-watermark backstop at the engine's
    watchdog poll points.  Either gives each trial a fresh
    {!Rf_resource.Governor.t}: on a trip the trial degrades down the
    ladder and completes with [s_degraded]-counted, journal-labeled
    results; with [~no_degrade:true] it is cancelled instead (a
    [Trial_exhausted] record).  Degradation from the entry budget or from
    chaos budget trips is a pure function of (pair, seed), preserving
    cross-domain and resume determinism; the heap watermark is a
    physical backstop and is documented as not determinism-preserving.

    [proc] switches phase 2 to the multi-process tier ({!Proc_pool}):
    trials ship to crash-isolated worker processes instead of running on
    in-process domains, with heartbeat supervision, per-worker rlimits
    and backoff respawn.  Worker results merge through the journal-record
    replay path, so the analysis — and both fingerprints — are
    byte-identical to the in-process run, including under worker SIGKILL
    chaos.  If no worker completes its handshake the campaign silently
    degrades to the in-process pool at the same width; if the whole fleet
    dies past its respawn budget mid-wave, the remaining trials finish
    inline. *)

val run :
  ?domains:int ->
  ?phase1_seeds:int list ->
  ?seeds_per_pair:int list ->
  ?cutoff:bool ->
  ?budget:int ->
  ?postpone_timeout:int option ->
  ?max_steps:int ->
  ?log:Event_log.t ->
  ?supervision:Supervisor.policy ->
  ?chaos:Chaos.plan ->
  ?trial_deadline:float ->
  ?resume:string ->
  ?stop:stop_switch ->
  ?detector_budget:int ->
  ?mem_budget:float ->
  ?no_degrade:bool ->
  ?proc:Proc_pool.spec ->
  ?repro_dir:string ->
  ?target:string ->
  ?repro_fuel:int ->
  ?static:Rf_static.Static.t ->
  ?static_filter:bool ->
  ?offline_detect:int ->
  ?save_traces:string ->
  ?corpus:string ->
  ?detector:Fuzzer.p1_detector ->
  ?phase1:Fuzzer.phase1_result ->
  Fuzzer.program ->
  result
(** Whole-program campaign: phase 1 (sequential, like the paper's single
    observed execution) followed by a campaign over all potential pairs.
    With [~cutoff:false] (the default) and no faults, the analysis equals
    [Fuzzer.analyze ~phase1_seeds ~seeds_per_pair] exactly — see
    {!fingerprint}.  Phase 1 is deterministic and cheap, so a resumed run
    re-executes it and replays only phase-2 trials.

    [repro_dir] enables the {!Repro} pass: after aggregation, a
    minimized reproduction schedule is written per distinct error
    fingerprint (one [Repro_written] journal event each).  [target]
    names the program inside the artifacts so [replay]/[shrink] can
    resolve it later; [repro_fuel] bounds minimization work per artifact
    ({!Repro.write_all}).  The pass runs sequentially after the trial
    queue drains and never affects the analysis or its fingerprint.

    [detector_budget]/[mem_budget]/[no_degrade] govern resources as in
    {!fuzz_pairs}; in addition phase 1 — where the detector (and hence
    the OOM risk) actually lives — runs under a governor shared across
    the phase-1 seeds, and its final ladder level is reported in
    [s_p1_level] and the [Phase1_finished] journal record.  Under
    [~no_degrade:true] a phase-1 budget trip raises
    {!Rf_resource.Governor.Budget_stop} out of [run].

    [static] attaches a {!Rf_static.Static} model of the program: the
    phase-1 frontier is classified (a [Static_classified] journal record
    and [s_static] summary), surviving pairs are fuzzed Likely-first,
    and with [~static_filter:true] pairs proved [Impossible] are skipped
    before any trial runs (one [Pair_filtered] record each, and the
    skipped pairs land in [analysis.a_filtered]).  Filtering composes
    with resume: the surviving pair list is deterministic, so a filtered
    campaign's journal replays exactly like any other.

    [offline_detect] switches phase 1 to record-then-detect
    ({!Fuzzer.detect_mode}[.Recorded]): the engine runs detector-free
    while writing compact binary recordings, and the hybrid detector
    replays them offline in that many shards.  The candidate pair set —
    and therefore the whole analysis and both fingerprints — is
    identical to inline phase 1.  A [Phase1_recorded] journal event and
    [s_p1_recording] report the cost split; the governor budget applies
    to the offline pass, which then runs its shards sequentially.

    [save_traces] persists each phase-1 binary recording as
    [DIR/trace-seed<N>.rfbt] (forcing [Recorded] detection when
    [offline_detect] was not given) and journals a [Traces_saved]
    event; the files reload with {!Rf_events.Btrace.load} for offline
    re-detection.

    [detector] selects the phase-1 analysis ({!Fuzzer.p1_detector}):
    [Hybrid] full tracking (default) or [Sampling] O(1)-per-location
    reservoir sampling.  The detector identity lands in [s_p1_detector]
    and the [Phase1_finished] journal record; with sampling, the run's
    aggregate miss-probability bound is reported in [s_p1_miss_bound]
    and the journal.  Sampling composes with [offline_detect]: reservoir
    decisions are keyed on (seed, location, per-location access index),
    so pairs and bounds are identical inline, sharded and across domain
    counts.

    [corpus] absorbs this campaign's durable artifacts into a
    persistent cross-campaign store ({!Corpus}): every distinct error
    fingerprint with its minimized schedule, every degraded-trial
    record, every saved trace.  Known entries dedup ([e_seen] bumps),
    so consecutive campaigns converge to one entry per distinct
    artifact; a [Corpus_updated] event reports the delta.  Without an
    explicit [repro_dir], reproduction artifacts are written inside
    the corpus ([DIR/repros]).

    [phase1] bypasses the live phase-1 pass entirely, fuzzing the
    supplied result's candidate pairs instead — serve mode feeds
    {!Fuzzer.phase1_of_recordings} output here so one recorded phase 1
    serves many campaign waves.  [phase1_seeds], [save_traces],
    [offline_detect] and [detector] are ignored when [phase1] is
    given. *)

(** {1 Determinism checking} *)

val fingerprint : Fuzzer.analysis -> string
(** Digest of every deterministic field of an analysis: potential pairs,
    per-pair trial outcomes (seed, race, exceptions, deadlock, steps,
    switches), aggregate counts, seeds and verdict sets — everything
    except wall-clock times.  Degradation is part of the verdict: a
    degraded trial (or degraded phase 1) adds its ladder level and
    eviction count, while non-degraded analyses fingerprint exactly as
    they did before resource governance existed.  Two analyses of the
    same program with the same seed lists fingerprint identically iff
    they agree. *)

val equal_verdicts : Fuzzer.analysis -> Fuzzer.analysis -> bool
(** [fingerprint a = fingerprint b]. *)

val confirmed_fingerprint : Fuzzer.analysis -> string
(** Digest of the {e confirmed} verdicts only: the real/error/deadlock
    pair sets plus the full trial records of every pair in them.  This is
    the [--static-filter] soundness gate — a filtered campaign must
    produce the same confirmed fingerprint as the unfiltered campaign,
    because a sound filter only skips pairs that confirm nothing. *)
