(* Smoke and consistency tests for the experiment-regeneration harness
   (Table 1 / Figure 1 / Figure 2 report code). *)

module W = Rf_workloads

let tiny_config =
  {
    Rf_report.Table1.phase1_seeds = [ 0; 1 ];
    seeds_per_pair = List.init 10 Fun.id;
    baseline_seeds = List.init 10 Fun.id;
    timing_seeds = [ 0 ];
  }

let test_table1_row_consistency () =
  List.iter
    (fun w ->
      let r = Rf_report.Table1.row_of_workload ~config:tiny_config w in
      Alcotest.(check string) "name" w.W.Workload.name r.Rf_report.Table1.r_name;
      Alcotest.(check bool) "real <= potential" true
        (r.Rf_report.Table1.r_real <= r.Rf_report.Table1.r_potential);
      Alcotest.(check bool) "exceptions <= real" true
        (r.Rf_report.Table1.r_exceptions_rf <= r.Rf_report.Table1.r_real);
      Alcotest.(check bool) "probability in range" true
        (Float.is_nan r.Rf_report.Table1.r_probability
        || (r.Rf_report.Table1.r_probability >= 0.0
           && r.Rf_report.Table1.r_probability <= 1.0));
      Alcotest.(check bool) "hybrid steps >= 0" true
        (r.Rf_report.Table1.r_steps_hybrid >= 0.0))
    [ W.Raytracer.workload; W.Sor.workload; W.Coll_drivers.vector ]

let test_table1_interactive_row_hides_times () =
  let r = Rf_report.Table1.row_of_workload ~config:tiny_config W.Jigsaw.workload in
  Alcotest.(check bool) "normal time hidden" true (r.Rf_report.Table1.r_time_normal < 0.0);
  Alcotest.(check bool) "hybrid time hidden" true (r.Rf_report.Table1.r_time_hybrid < 0.0)

let test_table1_render_shape () =
  let rows =
    List.map
      (fun w -> Rf_report.Table1.row_of_workload ~config:tiny_config w)
      [ W.Raytracer.workload; W.Montecarlo.workload ]
  in
  let out = Fmt.str "%a" Rf_report.Table1.render rows in
  let lines = String.split_on_char '\n' out |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + separator + 2 rows" 4 (List.length lines);
  Alcotest.(check bool) "mentions raytracer" true
    (List.exists
       (fun l -> String.length l >= 9 && String.sub l 0 9 = "raytracer")
       lines)

let test_figure1_report () =
  let r =
    Rf_report.Figure1_exp.generate ~phase1_seeds:(List.init 8 Fun.id) ~trials:40 ()
  in
  Alcotest.(check int) "two potential pairs" 2
    (Rf_util.Site.Pair.Set.cardinal r.Rf_report.Figure1_exp.potential);
  Alcotest.(check bool) "real confirmed" true
    (Racefuzzer.Fuzzer.is_real r.Rf_report.Figure1_exp.real);
  Alcotest.(check bool) "false alarm rejected" false
    (Racefuzzer.Fuzzer.is_real r.Rf_report.Figure1_exp.false_alarm);
  (* render must not raise *)
  ignore (Fmt.str "%a" Rf_report.Figure1_exp.render r)

let test_figure2_series_shape () =
  let series = Rf_report.Figure2_exp.generate ~ks:[ 1; 20 ] ~trials:40 () in
  Alcotest.(check int) "4 schedulers x 2 ks" 8 (List.length series);
  List.iter
    (fun (p : Rf_report.Figure2_exp.point) ->
      Alcotest.(check bool) "p_error in [0,1]" true
        (p.Rf_report.Figure2_exp.p_error >= 0.0 && p.Rf_report.Figure2_exp.p_error <= 1.0);
      if p.Rf_report.Figure2_exp.strategy_name = "racefuzzer" then
        Alcotest.(check (float 0.001)) "RF race probability 1" 1.0
          p.Rf_report.Figure2_exp.p_race)
    series;
  ignore (Fmt.str "%a" Rf_report.Figure2_exp.render series)

let test_stats_helpers () =
  Alcotest.(check (float 0.001)) "mean" 2.0 (Rf_report.Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 0.001)) "mean empty" 0.0 (Rf_report.Stats.mean []);
  Alcotest.(check (float 0.001)) "min" 1.0 (Rf_report.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 0.001)) "max" 3.0 (Rf_report.Stats.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.(check (float 0.001)) "stddev of constant" 0.0
    (Rf_report.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 0.001)) "mean_int" 1.5 (Rf_report.Stats.mean_int [ 1; 2 ]);
  Alcotest.(check string) "prob nan renders dash" "-"
    (Fmt.str "%a" Rf_report.Stats.pp_prob Float.nan);
  Alcotest.(check string) "negative time renders dash" "-"
    (Fmt.str "%a" Rf_report.Stats.pp_time_ms (-1.0))

let () =
  Alcotest.run "rf_report"
    [
      ( "table1",
        [
          Alcotest.test_case "row consistency" `Slow test_table1_row_consistency;
          Alcotest.test_case "interactive row" `Slow
            test_table1_interactive_row_hides_times;
          Alcotest.test_case "render shape" `Slow test_table1_render_shape;
        ] );
      ( "figures",
        [
          Alcotest.test_case "figure1" `Slow test_figure1_report;
          Alcotest.test_case "figure2" `Slow test_figure2_series_shape;
        ] );
      ( "stats", [ Alcotest.test_case "helpers" `Quick test_stats_helpers ] );
    ]
