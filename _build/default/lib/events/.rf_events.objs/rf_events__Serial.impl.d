lib/events/serial.ml: Buffer Event Fmt List Loc Lockset Printf Rf_util Site String Trace
