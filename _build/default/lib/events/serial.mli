(** Textual (de)serialization of events and traces: archive a
    failure-inducing schedule next to its seed, or analyze a dumped trace
    offline.  [trace_of_string (trace_to_string t)] equals [t]
    (property-tested); sites are re-interned on load. *)

open Rf_util

exception Parse_error of int * string
(** (line number, message). *)

val event_to_string : Event.t -> string
val event_of_string : line:int -> string -> Event.t

val site_to_string : Site.t -> string
val loc_to_string : Loc.t -> string

val trace_to_string : Trace.t -> string
val trace_of_string : string -> Trace.t

val save_trace : string -> Trace.t -> unit
val load_trace : string -> Trace.t
