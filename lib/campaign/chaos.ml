(* Deterministic fault injection for campaign robustness testing.

   Chaos must never change *what* a campaign computes, only how bumpy the
   road there is.  Two rules make that hold:

   - Faults that feed back into results (injected harness crashes, stalls)
     are pure functions of (chaos seed, pair label, trial seed) — the same
     trial misbehaves identically on every run, every domain count, and
     across kill/resume, so quarantine decisions and fingerprints are
     reproducible.

   - Faults that only affect liveness (worker deaths) are keyed off a
     global pop counter.  They perturb *which domain* runs a task and force
     the supervisor's respawn/requeue path, but since aggregation is
     domain-agnostic the report is unchanged. *)

type plan = {
  c_seed : int;
  c_crash_rate : float;
  c_stall_rate : float;
  c_stall_seconds : float;
  c_budget_rate : float;
  c_trial_deadline : float option;
  c_death_every : int option;
  c_max_deaths : int;
  c_stop_after : int option;
  (* real-process faults, keyed by the supervisor's assignment counter
     (1-based): a requeued task gets a fresh assignment number, so a fault
     fires once instead of chasing its own retry forever *)
  c_kill_assignment : int option;
  c_torn_frame : int option;
  c_hang_assignment : int option;
  (* service-tier faults, keyed by the serve loop's own counters: the Nth
     revalidated item or the Nth cycle of the current process run *)
  c_die_reval : int option;
  c_fail_reval : int option;
  c_torn_index_cycle : int option;
  c_torn_ledger_cycle : int option;
  c_watch_storm : int option;
}

let plan ?(crash_rate = 0.0) ?(stall_rate = 0.0) ?(stall_seconds = 0.05)
    ?(budget_rate = 0.0) ?trial_deadline ?death_every ?(max_deaths = 2)
    ?stop_after ?kill_assignment ?torn_frame ?hang_assignment ?die_reval
    ?fail_reval ?torn_index_cycle ?torn_ledger_cycle ?watch_storm seed =
  {
    c_seed = seed;
    c_crash_rate = crash_rate;
    c_stall_rate = stall_rate;
    c_stall_seconds = stall_seconds;
    c_budget_rate = budget_rate;
    c_trial_deadline = trial_deadline;
    c_death_every = (match death_every with Some n when n <= 0 -> None | d -> d);
    c_max_deaths = max_deaths;
    c_stop_after = stop_after;
    c_kill_assignment = kill_assignment;
    c_torn_frame = torn_frame;
    c_hang_assignment = hang_assignment;
    c_die_reval = die_reval;
    c_fail_reval = fail_reval;
    c_torn_index_cycle = torn_index_cycle;
    c_torn_ledger_cycle = torn_ledger_cycle;
    c_watch_storm = watch_storm;
  }

let default seed =
  plan ~crash_rate:0.08 ~stall_rate:0.04 ~stall_seconds:0.05 ~budget_rate:0.05
    ~trial_deadline:2.0 ~death_every:25 seed

exception Injected_crash of string
exception Injected_death

(* FNV-1a over the chaos seed, a salt and the task identity.  Cheap, well
   mixed, and — unlike Random — shared-nothing and order-independent. *)
let hash plan ~salt ~label ~seed =
  let open Rf_util.Fnv in
  let h = fold_int63 basis63 plan.c_seed in
  let h = fold_int63 h salt in
  let h = fold_string63 h label in
  mask63 (fold_int63 h seed)

(* Map a hash to [0, 1) with 30 bits of precision — plenty for rates. *)
let unit_float h = float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

let crashes plan ~label ~seed =
  plan.c_crash_rate > 0.0
  && unit_float (hash plan ~salt:0x1 ~label ~seed) < plan.c_crash_rate

let stalls plan ~label ~seed =
  plan.c_stall_rate > 0.0
  && unit_float (hash plan ~salt:0x2 ~label ~seed) < plan.c_stall_rate

(* Budget trips share the crash/stall determinism contract: whether a
   trial's governor is forced down the degradation ladder is a pure
   function of (chaos seed, pair label, trial seed), so kill/resume and
   cross-domain fingerprints cover degraded trials reproducibly. *)
let trips_budget plan ~label ~seed =
  plan.c_budget_rate > 0.0
  && unit_float (hash plan ~salt:0x3 ~label ~seed) < plan.c_budget_rate

let inject plan ~label ~seed () =
  if stalls plan ~label ~seed then Unix.sleepf plan.c_stall_seconds;
  if crashes plan ~label ~seed then
    raise (Injected_crash (Printf.sprintf "chaos: injected crash (%s seed %d)" label seed))

(* Worker-death state: one counter for pops, one for deaths granted. *)
type state = { pops : int Atomic.t; deaths : int Atomic.t }

let state () = { pops = Atomic.make 0; deaths = Atomic.make 0 }

let kills_worker plan st =
  match plan.c_death_every with
  | None -> false
  | Some every ->
      let n = Atomic.fetch_and_add st.pops 1 + 1 in
      if n mod every <> 0 then false
      else
        (* Grant at most [c_max_deaths] deaths, racing grants resolved by
           the atomic counter itself. *)
        let granted = Atomic.fetch_and_add st.deaths 1 in
        if granted < plan.c_max_deaths then true
        else begin
          Atomic.decr st.deaths;
          false
        end

let deaths st = Atomic.get st.deaths
