(** Extra classic concurrency benchmarks beyond Table 1 — programs that
    recur throughout the literature the paper builds on (Eraser [43],
    RaceTrack [54], object race detection [53]) and exercise topologies the
    Table 1 set does not:

    - {!tsp}: branch-and-bound travelling salesman with the canonical
      *benign* race — the global bound is read without a lock for pruning
      (a stale bound only costs extra work), updated under a lock;
    - {!elevator}: a lift controller with a harmful check-then-act on the
      door state next to properly synchronized job dispatch;
    - {!philosophers}: the deadlock benchmark, for the deadlock-directed
      fuzzer. *)

open Rf_util
open Rf_runtime

(* ------------------------------------------------------------------ *)
(* TSP                                                                 *)

let tsp_file = "tsp"
let ts line label = Site.make ~file:tsp_file ~line label

let site_bound_prune = ts 1 "if(len>=minTour) prune"  (* unsync read *)
let site_bound_check = ts 2 "if(len<minTour)"  (* sync read *)
let site_bound_write = ts 3 "minTour=len"  (* sync write *)

(* The benign real race: the pruning read vs the locked update. *)
let tsp_real_pairs () = [ Site.Pair.make site_bound_prune site_bound_write ]

let tsp_program ?(ncities = 6) ?(nworkers = 3) () =
  (* symmetric distance matrix, deterministic *)
  let dist i j = 1 + ((i * 7) + (j * 13)) mod 17 in
  let min_tour = Api.Cell.make ~name:"minTour" max_int in
  let bound_lock = Lock.create ~name:"minTour" () in
  let work = Common.Queue_.create () in
  (* one unit of work per starting second city *)
  Api.Cell.unsafe_poke work.Common.Queue_.items (List.init (ncities - 1) (fun i -> i + 1));
  let rec search path len visited =
    (* the classic unsynchronized pruning read: stale values are safe *)
    if len < Api.Cell.read ~site:site_bound_prune min_tour then begin
      match path with
      | last :: _ when List.length path = ncities ->
          let total = len + dist last 0 in
          Api.sync bound_lock (fun () ->
              if total < Api.Cell.read ~site:site_bound_check min_tour then
                Api.Cell.write ~site:site_bound_write min_tour total)
      | last :: _ ->
          for next = 1 to ncities - 1 do
            if not (List.mem next visited) then
              search (next :: path) (len + dist last next) (next :: visited)
          done
      | [] -> assert false
    end
  in
  let worker () =
    let rec loop () =
      match Common.Queue_.poll work with
      | Some city ->
          search [ city; 0 ] (dist 0 city) [ city; 0 ];
          loop ()
      | None -> ()
    in
    loop ()
  in
  let hs = List.init nworkers (fun i -> Api.fork ~name:(Printf.sprintf "tsp%d" i) worker) in
  List.iter Api.join hs;
  (* sanity: a tour was found *)
  if Api.Cell.unsafe_peek min_tour = max_int then Api.error "tsp: no tour found"

let tsp =
  Workload.make ~name:"tsp"
    ~descr:"branch-and-bound TSP: the canonical benign race on the global bound"
    ~sloc:70 ~expected_real:(Some 1) (fun () -> tsp_program ())

(* ------------------------------------------------------------------ *)
(* Elevator                                                            *)

let el_file = "elevator"
let es line label = Site.make ~file:el_file ~line label

let site_doors_check = es 1 "if(!doorsOpen)"  (* unsync read *)
let site_doors_write = es 2 "doorsOpen=..."  (* unsync write *)
let site_floor_w = es 3 "currentFloor=..."
let site_floor_r = es 4 "display(currentFloor)"
let site_doors_recheck = es 6 "doors recheck"

(* As with cache4j, the exception fires at the *second* read of the
   check-then-act: bringing the recheck adjacent to the doorman's write
   lets the lift observe the doors opening mid-move. *)
let elevator_harmful_pair = Site.Pair.make site_doors_recheck site_doors_write

let elevator_program ?(njobs = 6) () =
  let jobs = Common.Queue_.create () in
  let doors_open = Api.Cell.make ~name:"doorsOpen" false in
  let floor = Api.Cell.make ~name:"currentFloor" 0 in
  let lift () =
    let continue_ = ref true in
    while !continue_ do
      match Common.Queue_.poll jobs with
      | None -> continue_ := false
      | Some target ->
          (* the harmful check-then-act: the doors can open between the
             check and the move *)
          if not (Api.Cell.read ~site:site_doors_check doors_open) then begin
            if Api.Cell.read ~site:(es 5 "floor(read)") floor <> target then
              Api.Cell.write ~site:site_floor_w floor target;
            if Api.Cell.read ~site:site_doors_recheck doors_open then
              Api.error "elevator moved with doors open"
          end
    done
  in
  let doorman () =
    for _ = 1 to 4 do
      Api.Cell.write ~site:site_doors_write doors_open true;
      Api.sleep ~site:(es 7 "hold doors") ();
      Api.Cell.write ~site:site_doors_write doors_open false
    done
  in
  let display () =
    for _ = 1 to 5 do
      ignore (Api.Cell.read ~site:site_floor_r floor)
    done
  in
  List.iter (fun j -> Common.Queue_.put jobs j) (List.init njobs (fun i -> (i * 3) mod 7));
  let l1 = Api.fork ~name:"lift1" lift in
  let l2 = Api.fork ~name:"lift2" lift in
  let d = Api.fork ~name:"doorman" doorman in
  let disp = Api.fork ~name:"display" display in
  List.iter Api.join [ l1; l2; d; disp ]

let elevator =
  Workload.make ~name:"elevator"
    ~descr:"lift controller: harmful doors check-then-act + benign display races"
    ~sloc:66 ~expected_real:(Some 2) (fun () -> elevator_program ())

(* ------------------------------------------------------------------ *)
(* Dining philosophers (deadlock workload)                             *)

let ph_file = "philosophers"
let ps line label = Site.make ~file:ph_file ~line label

let philosophers_program ?(n = 3) ?(rounds = 2) () =
  let forks = Array.init n (fun i -> Lock.create ~name:(Printf.sprintf "fork%d" i) ()) in
  let meals = Api.Cell.make ~name:"meals" 0 in
  let meals_lock = Lock.create ~name:"meals" () in
  let philosopher i () =
    for _ = 1 to rounds do
      let first = forks.(i) and second = forks.((i + 1) mod n) in
      Api.sync ~site:(ps (10 + i) (Printf.sprintf "phil%d: first fork" i)) first
        (fun () ->
          Api.sync ~site:(ps (20 + i) (Printf.sprintf "phil%d: second fork" i)) second
            (fun () ->
              Api.sync meals_lock (fun () ->
                  Api.Cell.update ~rsite:(ps 1 "meals(read)") ~wsite:(ps 2 "meals(write)")
                    meals (fun v -> v + 1))))
    done
  in
  let hs =
    List.init n (fun i -> Api.fork ~name:(Printf.sprintf "phil%d" i) (philosopher i))
  in
  List.iter Api.join hs

let philosophers =
  Workload.make ~name:"philosophers"
    ~descr:"dining philosophers, all right-handed: the deadlock benchmark"
    ~sloc:40 ~expected_real:(Some 0) (fun () -> philosophers_program ())
