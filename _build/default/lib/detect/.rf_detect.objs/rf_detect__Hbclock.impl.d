lib/detect/hbclock.ml: Event Hashtbl Rf_events Rf_vclock Vclock
