(** Core of the model JDK collection framework: the generic collection
    "object" every concrete class converts to, fail-fast iterators, and
    the AbstractCollection/AbstractList bulk algorithms whose missing
    argument-locking is exactly the JDK 1.4.2 bug of the paper's §5.3
    ([containsAll] iterates its argument with no lock, reading [modCount]
    unprotected). *)

open Rf_runtime

exception Concurrent_modification of string
exception No_such_element of string

type iter = { has_next : unit -> bool; next : unit -> int }

type t = {
  cname : string;  (** concrete class name, for reports *)
  monitor : Lock.t;  (** every Java object has one *)
  size : unit -> int;
  is_empty : unit -> bool;
  add : int -> bool;
  remove : int -> bool;
  contains : int -> bool;
  clear : unit -> unit;
  iterator : unit -> iter;
  to_list_dbg : unit -> int list;  (** uninstrumented snapshot, tests only *)
  synchronized : bool;
}

val fold_iter : ('a -> int -> 'a) -> 'a -> iter -> 'a

val contains_all : t -> t -> bool
(** [contains_all c1 c2] — AbstractCollection: iterates [c2] lock-free. *)

val add_all : t -> t -> bool
val remove_all : t -> t -> bool

val equals : t -> t -> bool
(** AbstractList.equals: lock-free lock-step iteration of both. *)

val elements : t -> int list
(** Drain a fresh iterator (instrumented). *)
