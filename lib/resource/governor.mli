(** Per-trial resource governor: logical budgets and the graceful
    degradation ladder.

    A governor meters the {e logical} size of detector analysis state —
    history entries, vector-clock messages, read-share cells — against a
    per-trial budget.  When the budget trips, the owning trial does not
    die: the governor steps down a deterministic degradation ladder

    {v Full  ->  Sampled  ->  Lockset_only v}

    and notifies its subscribers (the detectors), which compact their
    state to fit the new rung and keep going.  The trial completes with
    results explicitly labeled {e degraded}.

    {2 Why logical counters}

    Every result-affecting decision a governor makes is keyed off entry
    counts and insertion-order epochs — never wall-clock time or raw byte
    sizes.  Entry counts are pure functions of the event stream, and the
    event stream is a pure function of (program, seed), so a degraded run
    is exactly as deterministic as a full-precision one: same seed, same
    ladder level, same compactions, same fingerprint, on any domain
    count.  Heap watermarks ({!Heap_watermark}) are the one physical
    trigger; they exist as a last-resort backstop (the engine polls
    [Gc.quick_stat] at its watchdog points) and are documented as
    {e not} determinism-preserving — OCaml domains share the major heap,
    so a watermark can fire at different logical points across runs. *)

(** The degradation ladder, most precise first. *)
type level =
  | Full  (** every detector at its configured precision *)
  | Sampled
      (** reservoir-sampled access histories, epoch-compacted clock and
          cell state: bounded, still happens-before-aware *)
  | Lockset_only
      (** vector clocks abandoned; detectors fall back to pure lockset
          reasoning (or freeze, for detectors with no lockset mode) *)

val level_to_string : level -> string
val level_of_string : string -> level option
val pp_level : Format.formatter -> level -> unit

(** What tripped a budget. *)
type trigger =
  | Entry_budget  (** logical state-entry budget exceeded *)
  | Heap_watermark  (** physical heap backstop (engine watchdog) *)
  | Injected  (** deterministic chaos fault ([Chaos.trips_budget]) *)

val trigger_to_string : trigger -> string
val trigger_of_string : string -> trigger option

exception Budget_stop of trigger
(** Raised by {!trip} (hence {!charge}) instead of degrading when the
    governor was created with [~no_degrade:true].  The trial sandbox
    ([Fuzzer.run_trial]) converts it into the existing
    [Budget_exhausted] outcome. *)

type t

(** Immutable view of a governor's state, for journals and reports. *)
type snapshot = {
  g_level : level;  (** final ladder level *)
  g_trigger : trigger option;  (** first trigger, [None] if never tripped *)
  g_trips : int;  (** total budget trips (re-compactions included) *)
  g_entries : int;  (** live charged entries at snapshot time *)
  g_peak : int;  (** high-water mark of charged entries *)
  g_evicted : int;  (** entries discarded by compaction *)
}

val create : ?max_entries:int -> ?no_degrade:bool -> unit -> t
(** [max_entries] is the logical state budget ([None] = unlimited: the
    governor only counts).  [no_degrade] converts the first trip into
    {!Budget_stop} instead of stepping down the ladder. *)

val unlimited : unit -> t
(** Accounting-only governor: never trips, level stays {!Full}. *)

val subscribe : t -> (level -> unit) -> unit
(** Register a compaction hook, called (in subscription order) whenever
    the governor settles on a rung — on every trip, including repeat
    trips at the bottom rung (re-compaction).  Hooks shed state and
    report what they dropped via {!evict}. *)

val charge : t -> int -> unit
(** Account [n] new state entries.  If the budget is exceeded, trips the
    ladder (which runs the compaction hooks, which must {!evict} enough
    to get back under budget). *)

val credit : t -> int -> unit
(** Account [n] entries released in the ordinary course of analysis
    (supersession, collapse to a cheaper representation). *)

val evict : t -> int -> unit
(** Account [n] entries discarded by a compaction hook: a {!credit}
    that is also counted in [g_evicted]. *)

val trip : t -> trigger -> unit
(** Force a budget trip: step down one rung (or re-compact at the
    bottom) and notify subscribers; with [no_degrade], raise
    {!Budget_stop}.  Used by the heap-watermark backstop and by chaos
    injection. *)

val level : t -> level
val entries : t -> int

val budget : t -> int option
(** The configured entry budget; compaction hooks shed to half of it. *)

val degraded : t -> bool
(** The governor ever tripped (level below {!Full} or a bottom-rung
    re-compaction occurred). *)

val snapshot : t -> snapshot
val pp_snapshot : Format.formatter -> snapshot -> unit
