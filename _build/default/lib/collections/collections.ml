(** Model of [java.util.Collections.synchronizedList]/[synchronizedSet]
    decorators and the cross-collection operations whose incomplete
    synchronization the paper's §5.3 exposes.

    The decorator wraps every single-collection method in a [synchronized]
    block on the backing collection's monitor — exactly like the JDK.  The
    crucial detail reproduced here: [iterator()] is specified by the JDK to
    be *user-synchronized* — the wrapper hands out the backing iterator,
    and iteration proceeds with no lock.  [AbstractCollection.containsAll],
    [addAll], [removeAll] and [AbstractList.equals] (in {!Jcoll}) iterate
    their *argument* that way even when called through a synchronized
    wrapper, because the wrapper only locks the receiver.  Hence
    [l1.containsAll(l2)] holds [l1]'s monitor while reading [l2.modCount]
    unlocked — the real races RaceFuzzer confirms, leading to
    ConcurrentModificationException / NoSuchElementException. *)

open Rf_runtime

(** [synchronized c] — Collections.synchronizedCollection(c). *)
let synchronized (c : Jcoll.t) : Jcoll.t =
  let sync f = Api.sync c.Jcoll.monitor f in
  {
    c with
    Jcoll.cname = "Synchronized" ^ c.Jcoll.cname;
    size = (fun () -> sync c.Jcoll.size);
    is_empty = (fun () -> sync c.Jcoll.is_empty);
    add = (fun e -> sync (fun () -> c.Jcoll.add e));
    remove = (fun e -> sync (fun () -> c.Jcoll.remove e));
    contains = (fun e -> sync (fun () -> c.Jcoll.contains e));
    clear = (fun () -> sync c.Jcoll.clear);
    (* The iterator is created under the lock (it reads modCount/fields),
       but the returned iterator itself is the backing, unsynchronized
       one — per the JDK specification. *)
    iterator = (fun () -> sync c.Jcoll.iterator);
    synchronized = true;
  }

let synchronized_list = synchronized
let synchronized_set = synchronized

(* ------------------------------------------------------------------ *)
(* Bulk operations as called through a synchronized receiver:          *)
(* synchronized(this) { AbstractCollection.xxxAll(arg) }               *)

let guarded (recv : Jcoll.t) f =
  if recv.Jcoll.synchronized then Api.sync recv.Jcoll.monitor f else f ()

(** [contains_all c1 c2] — l1.containsAll(l2): locks l1 (if synchronized),
    iterates l2 without its lock. *)
let contains_all (c1 : Jcoll.t) (c2 : Jcoll.t) =
  guarded c1 (fun () -> Jcoll.contains_all c1 c2)

let add_all (c1 : Jcoll.t) (c2 : Jcoll.t) = guarded c1 (fun () -> Jcoll.add_all c1 c2)

let remove_all (c1 : Jcoll.t) (c2 : Jcoll.t) =
  guarded c1 (fun () -> Jcoll.remove_all c1 c2)

let equals (c1 : Jcoll.t) (c2 : Jcoll.t) = guarded c1 (fun () -> Jcoll.equals c1 c2)

(** [remove_all_self c] — l2.removeAll() as used in the paper's example: a
    synchronized bulk self-clear that bumps modCount under l2's lock. *)
let clear_sync (c : Jcoll.t) = c.Jcoll.clear ()
