lib/detect/race.ml: Event Fmt List Loc Rf_events Rf_util Site
