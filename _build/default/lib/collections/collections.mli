(** Model of [java.util.Collections.synchronizedList]/[Set] and the bulk
    operations as dispatched through a synchronized receiver.  The wrapper
    locks every single-collection method on the backing monitor but — per
    the JDK specification — hands out the backing, unsynchronized iterator,
    which is what makes [l1.containsAll(l2)] hold [l1]'s monitor while
    reading [l2.modCount] unlocked: the real races of the paper's §5.3. *)

val synchronized : Jcoll.t -> Jcoll.t
val synchronized_list : Jcoll.t -> Jcoll.t
val synchronized_set : Jcoll.t -> Jcoll.t

val contains_all : Jcoll.t -> Jcoll.t -> bool
(** Locks the receiver (if synchronized), iterates the argument unlocked. *)

val add_all : Jcoll.t -> Jcoll.t -> bool
val remove_all : Jcoll.t -> Jcoll.t -> bool
val equals : Jcoll.t -> Jcoll.t -> bool

val clear_sync : Jcoll.t -> unit
(** The paper's [l2.removeAll()] stand-in: a synchronized bulk clear. *)
