(** RFL interpreter: lowers a checked program onto the instrumented
    runtime.

    Every access to a [shared] variable or array element performs the
    corresponding {!Rf_runtime.Api.Cell}/{!Rf_runtime.Api.Sarray} operation
    with a {!Rf_util.Site.t} derived from the source position, so the
    engine, detectors and RaceFuzzer see DSL statements exactly like
    embedded model code — races are reported as [file:line:col].
    Thread-local [let] variables are plain OCaml state: invisible to the
    scheduler, like locals in the paper's 3-address-code model (§2.1,
    "a statement in the program can access at most one shared object"). *)

open Rf_util
open Rf_runtime

type value = Vint of int | Vbool of bool | Vstr of string

let pp_value ppf = function
  | Vint n -> Fmt.int ppf n
  | Vbool b -> Fmt.bool ppf b
  | Vstr s -> Fmt.string ppf s

exception Return_exn of value option

type global = Gcell of value Api.Cell.t | Garr of value Api.Sarray.t

type ctx = {
  prog : Ast.program;
  globals : (string, global) Hashtbl.t;
  locks : (string, Lock.t) Hashtbl.t;
  print : string -> unit;
  mutable frames : (string, value) Hashtbl.t list;  (** current thread's scopes *)
}

let site_of ctx pos label =
  Site.make ~file:ctx.prog.Ast.file ~line:pos.Token.line ~col:pos.Token.col label

let default_of_ty = function
  | Ast.Tint -> Vint 0
  | Ast.Tbool -> Vbool false
  | Ast.Tstring -> Vstr ""

let value_of_const (e : Ast.expr) =
  match e.Ast.e with
  | Ast.Eint n -> Vint n
  | Ast.Ebool b -> Vbool b
  | Ast.Eneg { Ast.e = Ast.Eint n; _ } -> Vint (-n)
  | _ -> assert false (* enforced by Check *)

let find_local ctx name =
  List.find_map
    (fun tbl -> if Hashtbl.mem tbl name then Some tbl else None)
    ctx.frames

let as_int pos = function
  | Vint n -> n
  | v -> raise (Api.Model_error (Fmt.str "expected int at %a, got %a" Token.pp_pos pos pp_value v))

let as_bool pos = function
  | Vbool b -> b
  | v ->
      raise (Api.Model_error (Fmt.str "expected bool at %a, got %a" Token.pp_pos pos pp_value v))

let lock_of ctx name = Hashtbl.find ctx.locks name

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let rec eval ctx (e : Ast.expr) : value =
  let pos = e.Ast.epos in
  match e.Ast.e with
  | Ast.Eint n -> Vint n
  | Ast.Ebool b -> Vbool b
  | Ast.Estring s -> Vstr s
  | Ast.Evar name -> (
      match find_local ctx name with
      | Some tbl -> Hashtbl.find tbl name
      | None -> (
          match Hashtbl.find ctx.globals name with
          | Gcell c -> Api.Cell.read ~site:(site_of ctx pos (name ^ "(read)")) c
          | Garr _ -> assert false))
  | Ast.Eindex (name, idx) -> (
      let i = as_int pos (eval ctx idx) in
      match Hashtbl.find ctx.globals name with
      | Garr a ->
          Api.Sarray.get ~site:(site_of ctx pos (Fmt.str "%s[](read)" name)) a i
      | Gcell _ -> assert false)
  | Ast.Ebin (op, a, b) -> eval_binop ctx pos op a b
  | Ast.Eneg a -> Vint (-as_int pos (eval ctx a))
  | Ast.Enot a -> Vbool (not (as_bool pos (eval ctx a)))
  | Ast.Ecall (name, args) -> (
      match call ctx pos name args with
      | Some v -> v
      | None -> assert false (* checker guarantees a value *))

and eval_binop ctx pos op a b =
  match op with
  | Ast.And ->
      (* short-circuit, like Java && *)
      if as_bool pos (eval ctx a) then Vbool (as_bool pos (eval ctx b)) else Vbool false
  | Ast.Or ->
      if as_bool pos (eval ctx a) then Vbool true else Vbool (as_bool pos (eval ctx b))
  | _ -> (
      let va = eval ctx a in
      let vb = eval ctx b in
      match op with
      | Ast.Add -> Vint (as_int pos va + as_int pos vb)
      | Ast.Sub -> Vint (as_int pos va - as_int pos vb)
      | Ast.Mul -> Vint (as_int pos va * as_int pos vb)
      | Ast.Div ->
          let d = as_int pos vb in
          if d = 0 then
            raise (Api.Model_error (Fmt.str "division by zero at %a" Token.pp_pos pos));
          Vint (as_int pos va / d)
      | Ast.Mod ->
          let d = as_int pos vb in
          if d = 0 then
            raise (Api.Model_error (Fmt.str "modulo by zero at %a" Token.pp_pos pos));
          Vint (as_int pos va mod d)
      | Ast.Lt -> Vbool (as_int pos va < as_int pos vb)
      | Ast.Le -> Vbool (as_int pos va <= as_int pos vb)
      | Ast.Gt -> Vbool (as_int pos va > as_int pos vb)
      | Ast.Ge -> Vbool (as_int pos va >= as_int pos vb)
      | Ast.Eq -> Vbool (va = vb)
      | Ast.Neq -> Vbool (va <> vb)
      | Ast.And | Ast.Or -> assert false)

and call ctx pos name args : value option =
  let f =
    match List.find_opt (fun (f : Ast.func) -> f.Ast.fname = name) ctx.prog.Ast.funcs with
    | Some f -> f
    | None -> raise (Api.Model_error (Fmt.str "unknown function %s at %a" name Token.pp_pos pos))
  in
  let argv = List.map (eval ctx) args in
  (* function-entry safepoint: unbounded local recursion must still yield *)
  Op.perform Op.Pause;
  let frame = Hashtbl.create 8 in
  List.iter2 (fun (p, _) v -> Hashtbl.replace frame p v) f.Ast.fparams argv;
  let saved = ctx.frames in
  ctx.frames <- [ frame ];
  let restore () = ctx.frames <- saved in
  match exec_block ctx f.Ast.fbody with
  | () ->
      restore ();
      (match f.Ast.fret with
      | None -> None
      | Some ty ->
          (* fell off the end of a value-returning function *)
          ignore ty;
          raise
            (Api.Model_error
               (Fmt.str "function %s ended without returning a value" name)))
  | exception Return_exn v ->
      restore ();
      v
  | exception e ->
      restore ();
      raise e

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)

and exec ctx (st : Ast.stmt) : unit =
  let pos = st.Ast.spos in
  match st.Ast.s with
  | Ast.Sassign (name, e) -> (
      let v = eval ctx e in
      match find_local ctx name with
      | Some tbl -> Hashtbl.replace tbl name v
      | None -> (
          match Hashtbl.find ctx.globals name with
          | Gcell c -> Api.Cell.write ~site:(site_of ctx pos (name ^ "=")) c v
          | Garr _ -> assert false))
  | Ast.Sindex_assign (name, idx, e) -> (
      let i = as_int pos (eval ctx idx) in
      let v = eval ctx e in
      match Hashtbl.find ctx.globals name with
      | Garr a -> Api.Sarray.set ~site:(site_of ctx pos (Fmt.str "%s[]=" name)) a i v
      | Gcell _ -> assert false)
  | Ast.Slet (name, e) -> (
      let v = eval ctx e in
      match ctx.frames with
      | tbl :: _ -> Hashtbl.replace tbl name v
      | [] -> assert false)
  | Ast.Sif (cond, then_, else_) ->
      if as_bool pos (eval ctx cond) then exec_block ctx then_
      else Option.iter (exec_block ctx) else_
  | Ast.Swhile (cond, body) ->
      while as_bool pos (eval ctx cond) do
        exec_block ctx body;
        (* loop back-edge safepoint: a pure-local loop must still yield *)
        Op.perform Op.Pause
      done
  | Ast.Sfor (init, cond, step, body) ->
      ctx.frames <- Hashtbl.create 4 :: ctx.frames;
      exec ctx init;
      while as_bool pos (eval ctx cond) do
        exec_block ctx body;
        exec ctx step;
        Op.perform Op.Pause
      done;
      ctx.frames <- List.tl ctx.frames
  | Ast.Ssync (l, body) ->
      Api.sync ~site:(site_of ctx pos (Fmt.str "sync(%s)" l)) (lock_of ctx l) (fun () ->
          exec_block ctx body)
  | Ast.Slock l -> Api.lock ~site:(site_of ctx pos (Fmt.str "lock(%s)" l)) (lock_of ctx l)
  | Ast.Sunlock l ->
      Api.unlock ~site:(site_of ctx pos (Fmt.str "unlock(%s)" l)) (lock_of ctx l)
  | Ast.Swait l -> Api.wait ~site:(site_of ctx pos (Fmt.str "wait(%s)" l)) (lock_of ctx l)
  | Ast.Snotify l ->
      Api.notify ~site:(site_of ctx pos (Fmt.str "notify(%s)" l)) (lock_of ctx l)
  | Ast.Snotify_all l ->
      Api.notify_all ~site:(site_of ctx pos (Fmt.str "notifyall(%s)" l)) (lock_of ctx l)
  | Ast.Ssleep -> Api.sleep ~site:(site_of ctx pos "sleep") ()
  | Ast.Sassert e ->
      if not (as_bool pos (eval ctx e)) then
        raise
          (Api.Model_error (Fmt.str "assertion failed at %a" Token.pp_pos pos))
  | Ast.Serror msg -> raise (Api.Model_error msg)
  | Ast.Sprint e -> ctx.print (Fmt.str "%a" pp_value (eval ctx e))
  | Ast.Sskip -> ()
  | Ast.Sreturn eo -> raise (Return_exn (Option.map (eval ctx) eo))
  | Ast.Scall (name, args) -> ignore (call ctx pos name args)

and exec_block ctx block =
  ctx.frames <- Hashtbl.create 8 :: ctx.frames;
  List.iter (exec ctx) block;
  ctx.frames <- List.tl ctx.frames

(* ------------------------------------------------------------------ *)
(* Program instantiation                                               *)

(** Build the [unit -> unit] main for one run: allocates globals and locks,
    forks every declared thread, and joins them all.  Each thread gets its
    own [ctx] copy so frame stacks don't interfere.

    Threads with an [after] clause are forked only once every dependency
    has been joined, so the declared fork/join DAG induces real
    happens-before edges: statements of a dependent thread can never run
    concurrently with statements of its (transitive) dependencies. *)
let main_of ?(print = print_endline) (prog : Ast.program) () : unit =
  let globals = Hashtbl.create 16 in
  let locks = Hashtbl.create 8 in
  List.iter
    (fun (g : Ast.shared_decl) ->
      let init = value_of_const g.Ast.ginit in
      let slot =
        match g.Ast.garray with
        | None -> Gcell (Api.Cell.global g.Ast.gname init)
        | Some n ->
            ignore (default_of_ty g.Ast.gty);
            Garr (Api.Sarray.make n init)
      in
      Hashtbl.replace globals g.Ast.gname slot)
    prog.Ast.shareds;
  List.iter
    (fun (name, _) -> Hashtbl.replace locks name (Lock.create ~name ()))
    prog.Ast.locks;
  let handle_of = Hashtbl.create 8 in
  let joined = Hashtbl.create 8 in
  let handles =
    List.map
      (fun (t : Ast.thread_decl) ->
        (* dependencies are declared (and hence forked) earlier: join each
           one not yet joined before forking the dependent *)
        List.iter
          (fun dep ->
            if not (Hashtbl.mem joined dep) then begin
              Api.join (Hashtbl.find handle_of dep);
              Hashtbl.add joined dep ()
            end)
          t.Ast.tafter;
        let h =
          Api.fork ~name:t.Ast.tname (fun () ->
              let ctx = { prog; globals; locks; print; frames = [] } in
              exec_block ctx t.Ast.tbody)
        in
        Hashtbl.replace handle_of t.Ast.tname h;
        (t.Ast.tname, h))
      prog.Ast.threads
  in
  List.iter
    (fun (name, h) -> if not (Hashtbl.mem joined name) then Api.join h)
    handles
