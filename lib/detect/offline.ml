(** Offline detection over binary recordings — see the interface for the
    sharding/determinism argument. *)

open Rf_util
open Rf_events

let shard_of_loc ~shards loc =
  if shards <= 1 then 0 else Loc.hash loc mod shards

let feed_shard ~shard ~shards d bt =
  Btrace.iter
    ~keep_mem:(fun loc -> shard_of_loc ~shards loc = shard)
    (Detector.feed d) bt

let replay f recordings = List.iter (fun bt -> Btrace.iter f bt) recordings

let run_shard ~shard ~shards ~make recordings =
  let d = make () in
  List.iter (fun bt -> feed_shard ~shard ~shards d bt) recordings;
  Detector.races d

(* Dedup by statement pair, keeping the lowest-shard witness: shard
   assignment is a pure function of the location, so the surviving
   witness — hence the merged list — is independent of evaluation
   order. *)
let merge per_shard =
  let seen = ref Site.Pair.Set.empty in
  List.concat per_shard
  |> List.filter (fun (r : Race.t) ->
         if Site.Pair.Set.mem r.Race.pair !seen then false
         else begin
           seen := Site.Pair.Set.add r.Race.pair !seen;
           true
         end)
  |> List.sort (fun (a : Race.t) (b : Race.t) ->
         Site.Pair.compare a.Race.pair b.Race.pair)

let detect ?(shards = 1) ?(parallel = false) ~make recordings =
  let shards = max 1 shards in
  if shards = 1 then run_shard ~shard:0 ~shards:1 ~make recordings
  else if not parallel then
    merge
      (List.init shards (fun shard -> run_shard ~shard ~shards ~make recordings))
  else
    merge
      (List.init shards (fun shard ->
           Domain.spawn (fun () -> run_shard ~shard ~shards ~make recordings))
      |> List.map Domain.join)
