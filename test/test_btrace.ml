(* The binary trace codec and the offline detection pipeline built on it.

   Three layers of guarantees:

   - the codec is lossless: encode∘decode is the identity on event
     sequences (QCheck over random traces, plus an engine-produced one);
   - malformed input is rejected with a precise [Corrupt] error — bad
     magic, version drift, truncation at any byte, bit flips under the
     checksum — never decoded into garbage;
   - record-then-detect equals inline detection: a detector replayed
     over a recording reports the same races the same detector saw live,
     byte-identical with one shard and set-identical for any sharding
     (over randomly generated RFL programs, the same generator the
     differential detector suite uses). *)

open Rf_util
open Rf_events
module D = Rf_detect.Detector

let s1 = Site.make ~file:"bt.rfl" ~line:1 "w"
let s2 = Site.make ~file:"bt.rfl" ~line:2 "r"

let mem ?(tid = 0) ?(site = s1) ?(loc = Loc.global "x") ?(access = Event.Write)
    ?(lockset = Lockset.empty) () =
  Event.Mem { tid; site; loc; access; lockset }

let trace_of evs =
  let tr = Trace.create () in
  List.iter (Trace.add tr) evs;
  tr

let sample_events =
  [
    Event.Start { tid = 0; name = "main thread" };
    mem ~site:(Site.make ~file:"a file.rfl" ~line:3 ~col:9 "x = y:z%w") ();
    mem
      ~loc:(Loc.field 4 "next ptr")
      ~access:Event.Read
      ~lockset:(Lockset.of_list [ 1; 5 ])
      ();
    mem ~loc:(Loc.elem 2 7) ~lockset:(Lockset.of_list [ 1; 5 ]) ();
    mem ~loc:(Loc.elem 2 7) ();
    Event.Acquire { tid = 1; lock = 5; site = s2 };
    Event.Snd { tid = 1; msg = 3; reason = Event.Notify };
    Event.Rcv { tid = 2; msg = 3; reason = Event.Notify };
    Event.Release { tid = 1; lock = 5; site = s2 };
    Event.Exit { tid = 0 };
  ]

let test_roundtrip_sample () =
  let tr = trace_of sample_events in
  let bt = Btrace.of_trace tr in
  Alcotest.(check int) "length" (Trace.length tr) (Btrace.length bt);
  Alcotest.(check bool) "to_trace equal" true (Trace.equal tr (Btrace.to_trace bt));
  let bt' = Btrace.of_string (Btrace.to_string bt) in
  Alcotest.(check bool) "string roundtrip equal" true
    (Trace.equal tr (Btrace.to_trace bt'));
  Alcotest.(check int) "fingerprints agree" (Trace.fingerprint tr)
    (Trace.fingerprint (Btrace.to_trace bt'))

let test_roundtrip_file () =
  let tr = trace_of sample_events in
  let path = Filename.temp_file "rf_btrace" ".bin" in
  Btrace.save path (Btrace.of_trace tr);
  let bt = Btrace.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Trace.equal tr (Btrace.to_trace bt))

let test_writer_small_blocks () =
  (* A tiny block size forces many frames; the stream must still decode
     to the same sequence, so framing is invisible to readers. *)
  let w = Btrace.writer ~block:32 () in
  let evs = List.concat (List.init 50 (fun _ -> sample_events)) in
  List.iter (Btrace.add w) evs;
  Alcotest.(check int) "written counts events" (List.length evs) (Btrace.written w);
  let bt = Btrace.of_string (Btrace.to_string (Btrace.seal w)) in
  Alcotest.(check bool) "multi-frame decode equal" true
    (Trace.equal (trace_of evs) (Btrace.to_trace bt))

(* ------------------------------------------------------------------ *)
(* Rejection: every malformed input raises [Corrupt] with a message
   that names the defect, never a stray exception or a garbage trace. *)

let contains ~frag s =
  let n = String.length frag and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = frag || go (i + 1)) in
  n = 0 || go 0

let check_corrupt name ~mentions s =
  Alcotest.(check bool) name true
    (try
       ignore (Btrace.of_string s);
       false
     with
    | Btrace.Corrupt m -> List.for_all (fun frag -> contains ~frag m) mentions
    | _ -> false)

let sealed_sample () = Btrace.to_string (Btrace.of_trace (trace_of sample_events))

let test_rejects_bad_magic () =
  check_corrupt "empty input" ~mentions:[ "truncated header" ] "";
  let s = Bytes.of_string (sealed_sample ()) in
  Bytes.set s 0 'X';
  check_corrupt "bad magic" ~mentions:[ "bad magic" ] (Bytes.to_string s)

let test_rejects_version_drift () =
  (* A future-version recording must be refused up front, not decoded on
     the hope the format didn't change. *)
  let s = Bytes.of_string (sealed_sample ()) in
  Bytes.set_uint16_le s 4 (Btrace.version + 1);
  check_corrupt "version drift"
    ~mentions:
      [ "unsupported version"; string_of_int (Btrace.version + 1) ]
    (Bytes.to_string s)

let test_rejects_truncation () =
  let s = sealed_sample () in
  (* mid-header, mid-frame-header, mid-payload, mid-checksum: every
     prefix must be rejected, and the error must carry a byte offset *)
  List.iter
    (fun k ->
      check_corrupt
        (Printf.sprintf "truncated at %d" k)
        ~mentions:[ "truncated" ]
        (String.sub s 0 k))
    [ 3; 6; 11; String.length s - 3; String.length s - 9 ]

let test_rejects_bit_flip () =
  (* Any payload corruption lands on the checksum before the record
     decoder can be confused by it. *)
  let s = Bytes.of_string (sealed_sample ()) in
  let payload_byte = 6 + 4 + 2 in
  Bytes.set s payload_byte
    (Char.chr (Char.code (Bytes.get s payload_byte) lxor 0x40));
  check_corrupt "bit flip" ~mentions:[ "checksum mismatch" ] (Bytes.to_string s)

let test_corrupt_pinpoints_offset () =
  (* the message must contain the offending byte offset as a number *)
  let s = sealed_sample () in
  let msg =
    try
      ignore (Btrace.of_string (String.sub s 0 (String.length s - 3)));
      ""
    with Btrace.Corrupt m -> m
  in
  Alcotest.(check bool) "offset in message" true
    (contains ~frag:"at byte" msg)

(* ------------------------------------------------------------------ *)
(* QCheck: random event sequences roundtrip through the codec. *)

let gen_event =
  QCheck.Gen.(
    let site =
      map (fun n -> Site.make ~file:"bt-g.rfl" ~line:(n mod 40) "st") small_nat
    in
    let loc =
      oneof
        [
          map (fun n -> Loc.global (Printf.sprintf "g%d" (n mod 5))) small_nat;
          map (fun n -> Loc.field (n mod 6) "f") small_nat;
          map2 (fun a i -> Loc.elem (a mod 4) (i mod 8)) small_nat small_nat;
        ]
    in
    oneof
      [
        (let* tid = small_nat and* st = site and* l = loc and* w = bool in
         let* locks = small_list (map (fun n -> n mod 9) small_nat) in
         return
           (Event.Mem
              {
                tid;
                site = st;
                loc = l;
                access = (if w then Event.Write else Event.Read);
                lockset = Lockset.of_list locks;
              }));
        (let* tid = small_nat and* lock = small_nat and* st = site in
         return (Event.Acquire { tid; lock; site = st }));
        (let* tid = small_nat and* lock = small_nat and* st = site in
         return (Event.Release { tid; lock; site = st }));
        (let* tid = small_nat and* msg = small_nat in
         return (Event.Snd { tid; msg; reason = Event.Fork }));
        (let* tid = small_nat and* msg = small_nat in
         return (Event.Rcv { tid; msg; reason = Event.Join }));
        map (fun tid -> Event.Start { tid; name = "t" }) small_nat;
        map (fun tid -> Event.Exit { tid }) small_nat;
      ])

let prop_roundtrip_random =
  QCheck.Test.make ~name:"random event sequences roundtrip" ~count:200
    (QCheck.make QCheck.Gen.(small_list gen_event))
    (fun evs ->
      let tr = trace_of evs in
      let bt = Btrace.of_string (Btrace.to_string (Btrace.of_trace tr)) in
      Trace.equal tr (Btrace.to_trace bt))

let prop_truncation_always_rejected =
  (* chop a valid recording at every possible byte: no prefix may decode *)
  QCheck.Test.make ~name:"every proper prefix is rejected" ~count:40
    (QCheck.make QCheck.Gen.(small_list gen_event))
    (fun evs ->
      let s = Btrace.to_string (Btrace.of_trace (trace_of evs)) in
      let ok = ref true in
      for k = 0 to String.length s - 1 do
        (try
           ignore (Btrace.of_string (String.sub s 0 k));
           ok := false
         with
        | Btrace.Corrupt _ -> ()
        | _ -> ok := false)
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Record-then-detect equivalence: the offline pipeline reports exactly
   the races the inline detector reported, on engine executions of
   randomly generated RFL programs. *)

let run_recording ?(seed = 0) ~listeners main =
  let w = Btrace.writer () in
  ignore
    (Rf_runtime.Engine.run
       ~config:
         { Rf_runtime.Engine.default_config with seed; max_steps = 100_000 }
       ~listeners ~btrace:w
       ~strategy:(Rf_runtime.Strategy.random ())
       main);
  Btrace.seal w

let main_of prog = Rf_lang.Lang.program ~print:ignore prog

let prop_offline_equals_inline =
  QCheck.Test.make ~name:"offline hybrid = inline hybrid (1 shard, byte-identical)"
    ~count:50
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let inline_d = D.hybrid ~cap:4096 () in
      let bt = run_recording ~seed ~listeners:[ D.feed inline_d ] (main_of prog) in
      let offline =
        Rf_detect.Offline.detect ~make:(fun () -> D.hybrid ~cap:4096 ()) [ bt ]
      in
      (* one shard replays the inline feed verbatim: same races, same order *)
      List.map Rf_detect.Race.to_string offline
      = List.map Rf_detect.Race.to_string (D.races inline_d))

let prop_sharded_offline_pair_set =
  QCheck.Test.make ~name:"sharded offline pair set = inline pair set" ~count:50
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let inline_d = D.hybrid ~cap:4096 () in
      let bt = run_recording ~seed ~listeners:[ D.feed inline_d ] (main_of prog) in
      List.for_all
        (fun shards ->
          let offline =
            Rf_detect.Offline.detect ~shards
              ~make:(fun () -> D.hybrid ~cap:4096 ())
              [ bt ]
          in
          Site.Pair.Set.equal
            (Rf_detect.Race.distinct_pairs offline)
            (D.pairs inline_d))
        [ 2; 3; 7 ])

let prop_recording_is_the_trace =
  (* the recording the engine emits is the same event sequence a trace
     listener observes — the recorder is not a lossy projection *)
  QCheck.Test.make ~name:"engine recording equals listener trace" ~count:50
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let tr = Trace.create () in
      let bt = run_recording ~seed ~listeners:[ Trace.add tr ] (main_of prog) in
      Trace.equal tr (Btrace.to_trace bt))

let () =
  Alcotest.run "rf_btrace"
    [
      ( "codec",
        [
          Alcotest.test_case "sample roundtrip" `Quick test_roundtrip_sample;
          Alcotest.test_case "file roundtrip" `Quick test_roundtrip_file;
          Alcotest.test_case "small blocks" `Quick test_writer_small_blocks;
          QCheck_alcotest.to_alcotest prop_roundtrip_random;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "bad magic" `Quick test_rejects_bad_magic;
          Alcotest.test_case "version drift" `Quick test_rejects_version_drift;
          Alcotest.test_case "truncation" `Quick test_rejects_truncation;
          Alcotest.test_case "bit flip" `Quick test_rejects_bit_flip;
          Alcotest.test_case "offset in errors" `Quick test_corrupt_pinpoints_offset;
          QCheck_alcotest.to_alcotest prop_truncation_always_rejected;
        ] );
      ( "offline",
        [
          QCheck_alcotest.to_alcotest prop_offline_equals_inline;
          QCheck_alcotest.to_alcotest prop_sharded_offline_pair_set;
          QCheck_alcotest.to_alcotest prop_recording_is_the_trace;
        ] );
    ]
