(** Reproduction artifacts: one minimized schedule per distinct error.

    After a campaign classifies its pairs, this pass walks the harmful
    ones, records a schedule for a few erroring witness seeds per pair,
    groups by error fingerprint (so ten pairs surfacing the same
    exception yield one artifact, not ten), minimizes against the
    {!Racefuzzer.Fuzzer.schedule_oracle}, and writes the shortest
    confirmed schedule per fingerprint as [repro-<digest>.sched.json]
    with a human-readable [repro-<digest>.txt] narrative beside it.

    Minimizing over several witnesses matters: erroring runs cluster
    into shapes, and the shortest reproducing prefix can differ a lot
    between shapes (cache4j's clusters minimize to 50 vs 84 decisions).
    Everything is sequential and deterministic — witness seeds come from
    trial lists in seed order, minimization is fuel-bounded and
    randomness-free — so a campaign emits identical artifacts on every
    run. *)

open Rf_util
module Fuzzer = Racefuzzer.Fuzzer
module Schedule = Rf_replay.Schedule
module Shrinker = Rf_replay.Shrinker
module Replayer = Rf_replay.Replayer

type entry = {
  r_pair : Site.Pair.t;
  r_fingerprint : string;
  r_seed : int;
  r_file : string;
  r_narrative : string;
  r_stats : Shrinker.stats;
  r_replay_ok : bool;
}

type summary = {
  written : entry list;  (** one per distinct fingerprint, discovery order *)
  duplicates : int;  (** witnesses folded into an already-covered fingerprint *)
  failed : int;  (** fingerprints whose minimization could not reproduce *)
  oracle_runs : int;  (** total minimization executions across all artifacts *)
}

let no_summary = { written = []; duplicates = 0; failed = 0; oracle_runs = 0 }

(* Filesystem-safe artifact basename: a short stable digest of the error
   fingerprint (the fingerprint itself contains sites and exception
   text). *)
let digest fp = String.sub (Digest.to_hex (Digest.string fp)) 0 12

let error_witnesses ~witnesses (r : Fuzzer.pair_result) =
  r.Fuzzer.trials
  |> List.filter (fun (t : Fuzzer.trial) ->
         Schedule.error_fingerprint t.Fuzzer.t_outcome <> None)
  |> List.filteri (fun i _ -> i < witnesses)
  |> List.map (fun (t : Fuzzer.trial) -> t.Fuzzer.t_seed)

let mkdir_p dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let write_narrative path ~(sched : Schedule.t) ~(stats : Shrinker.stats) =
  Atomic_file.write path (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      Format.fprintf ppf "shrink: %a@.@." Shrinker.pp_stats stats;
      Format.fprintf ppf "%a" Schedule.pp_narrative sched;
      Format.pp_print_flush ppf ())

let write_all ?(fuel = 400) ?(witnesses = 3) ?(witness_scan = 32) ~dir ~target
    ?(max_steps = Rf_runtime.Engine.default_config.max_steps)
    ~(program : Fuzzer.program) (results : Fuzzer.pair_result list) : summary =
  mkdir_p dir;
  let oracle_total = ref 0 in
  let duplicates = ref 0 in
  let failed = ref 0 in
  (* fingerprint -> best (pair, seed, minimized, stats) by the shrink
     measure, first-discovered wins ties *)
  let best : (string, Site.Pair.t * int * Schedule.t * Shrinker.stats) Hashtbl.t =
    Hashtbl.create 8
  in
  let order = ref [] in
  List.iter
    (fun (r : Fuzzer.pair_result) ->
      (* Witnesses come from the pair's trial list first; early cutoff can
         truncate that list to a single erroring trial, so top the pool up
         with a deterministic seed scan — recording is one engine run,
         cheap next to minimization, and more witness shapes means shorter
         minima (see the module comment). *)
      let minimized_here = ref 0 in
      let tried = Hashtbl.create 8 in
      let try_seed seed =
        if !minimized_here < witnesses && not (Hashtbl.mem tried seed) then begin
          Hashtbl.replace tried seed ();
          let _trial, sched =
            Fuzzer.record_trial ~target ~max_steps ~program r.Fuzzer.pr_pair seed
          in
          match sched.Schedule.meta.Schedule.m_error with
          | None -> () (* this seed doesn't error; nothing to reproduce *)
          | Some fp -> (
              match Fuzzer.minimize_schedule ~fuel ~program sched with
              | None -> incr failed
              | Some (minimized, stats) ->
                  incr minimized_here;
                  oracle_total := !oracle_total + stats.Shrinker.sh_oracle_runs;
                  let better (st : Shrinker.stats) (old : Shrinker.stats) =
                    (st.Shrinker.sh_steps_after, st.Shrinker.sh_switches_after)
                    < (old.Shrinker.sh_steps_after, old.Shrinker.sh_switches_after)
                  in
                  (match Hashtbl.find_opt best fp with
                  | None ->
                      order := fp :: !order;
                      Hashtbl.replace best fp
                        (r.Fuzzer.pr_pair, seed, minimized, stats)
                  | Some (_, _, _, old_stats) ->
                      incr duplicates;
                      if better stats old_stats then
                        Hashtbl.replace best fp
                          (r.Fuzzer.pr_pair, seed, minimized, stats)))
        end
      in
      List.iter try_seed (error_witnesses ~witnesses r);
      if !minimized_here > 0 || Fuzzer.is_harmful r then
        for seed = 0 to witness_scan - 1 do
          try_seed seed
        done)
    results;
  let written =
    List.rev_map
      (fun fp ->
        let pair, seed, minimized, stats = Hashtbl.find best fp in
        let d = digest fp in
        let file = Filename.concat dir (Printf.sprintf "repro-%s.sched.json" d) in
        let narrative = Filename.concat dir (Printf.sprintf "repro-%s.txt" d) in
        Schedule.save file minimized;
        write_narrative narrative ~sched:minimized ~stats;
        (* Final paranoia: the artifact on disk replays, exactly, to the
           fingerprint it claims. *)
        let replay_ok =
          let reloaded = Schedule.load file in
          let outcome, status = Fuzzer.replay_schedule ~program reloaded in
          status.Replayer.divergence = None
          && Schedule.error_fingerprint outcome = Some fp
        in
        {
          r_pair = pair;
          r_fingerprint = fp;
          r_seed = seed;
          r_file = file;
          r_narrative = narrative;
          r_stats = stats;
          r_replay_ok = replay_ok;
        })
      !order
  in
  {
    written;
    duplicates = !duplicates;
    failed = !failed;
    oracle_runs = !oracle_total;
  }
