(** Compact binary traces — see the interface for the wire format.

    Implementation notes:

    - the writer keeps two buffers: [block] accumulates records and is
      sealed into [out] (length prefix + payload + FNV-1a-64 checksum)
      whenever it reaches the block size, so a torn write loses at most
      one frame and checksum verification is block-granular;
    - definitions are emitted {e inline}, immediately before the first
      record that references them, which keeps the stream one-pass for
      both writer and reader (no separate symbol-table section to seek
      back to);
    - the decoder re-interns sites through {!Site.make}, so wire ids are
      private to one recording and never clash with the live registry. *)

open Rf_util

exception Corrupt of string

let corrupt fmt = Fmt.kstr (fun m -> raise (Corrupt m)) fmt

let magic = "RFBT"
let version = 1
let default_block = 64 * 1024

(* Tags.  0x0_ = definitions, 0x1_ = events. *)
let tag_sitedef = 0x01
let tag_locdef = 0x02
let tag_locksetdef = 0x03
let tag_mem_read = 0x10
let tag_mem_write = 0x11
let tag_acquire = 0x12
let tag_release = 0x13
let tag_snd = 0x14
let tag_rcv = 0x15
let tag_start = 0x16
let tag_exit = 0x17

(* ------------------------------------------------------------------ *)
(* FNV-1a-64 (same polynomial as the journal seal, full 64-bit width)  *)

let fnv64 s pos len = Fnv.hash64_sub s ~pos ~len

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

type writer = {
  out : Buffer.t;  (* header + sealed frames *)
  block : Buffer.t;  (* open frame payload *)
  block_size : int;
  site_seen : (int, unit) Hashtbl.t;  (* live Site.id -> defined *)
  loc_ids : int Loc.Tbl.t;
  mutable next_loc : int;
  ls_ids : (int list, int) Hashtbl.t;  (* sorted lock ids -> wire id *)
  mutable next_ls : int;
  mutable w_events : int;
  mutable sealed : bool;
}

type t = { raw : string }

let[@inline] add_u8 b i = Buffer.add_uint8 b (i land 0xff)
let[@inline] add_u32 b i = Buffer.add_int32_le b (Int32.of_int i)

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let writer ?(block = default_block) () =
  let w =
    {
      out = Buffer.create (4 * 1024);
      block = Buffer.create (block + 64);
      block_size = max 512 block;
      site_seen = Hashtbl.create 64;
      loc_ids = Loc.Tbl.create 64;
      next_loc = 0;
      ls_ids = Hashtbl.create 16;
      next_ls = 0;
      w_events = 0;
      sealed = false;
    }
  in
  Buffer.add_string w.out magic;
  Buffer.add_uint16_le w.out version;
  (* the empty lockset is ubiquitous; pre-intern it as wire id 0 *)
  add_u8 w.block tag_locksetdef;
  add_u32 w.block 0;
  add_u32 w.block 0;
  Hashtbl.add w.ls_ids [] 0;
  w.next_ls <- 1;
  w

let flush_block w =
  let len = Buffer.length w.block in
  if len > 0 then begin
    add_u32 w.out len;
    Buffer.add_buffer w.out w.block;
    let payload = Buffer.contents w.block in
    Buffer.add_int64_le w.out (fnv64 payload 0 len);
    Buffer.clear w.block
  end

let[@inline] maybe_flush w =
  if Buffer.length w.block >= w.block_size then flush_block w

let ensure_site w site =
  let id = Site.id site in
  if not (Hashtbl.mem w.site_seen id) then begin
    Hashtbl.add w.site_seen id ();
    add_u8 w.block tag_sitedef;
    add_u32 w.block id;
    add_u32 w.block (Site.line site);
    add_u32 w.block (Site.col site);
    add_str w.block (Site.file site);
    add_str w.block (Site.label site)
  end;
  id

let ensure_loc w loc =
  match Loc.Tbl.find_opt w.loc_ids loc with
  | Some id -> id
  | None ->
      let id = w.next_loc in
      w.next_loc <- id + 1;
      Loc.Tbl.add w.loc_ids loc id;
      add_u8 w.block tag_locdef;
      add_u32 w.block id;
      (match loc with
      | Loc.Global n ->
          add_u8 w.block 0;
          add_str w.block n
      | Loc.Field (o, f) ->
          add_u8 w.block 1;
          add_u32 w.block o;
          add_str w.block f
      | Loc.Elem (a, i) ->
          add_u8 w.block 2;
          add_u32 w.block a;
          add_u32 w.block i);
      id

let intern_lockset w ls =
  let key = Lockset.to_list ls in
  match Hashtbl.find_opt w.ls_ids key with
  | Some id -> id
  | None ->
      let id = w.next_ls in
      w.next_ls <- id + 1;
      Hashtbl.add w.ls_ids key id;
      add_u8 w.block tag_locksetdef;
      add_u32 w.block id;
      add_u32 w.block (List.length key);
      List.iter (fun l -> add_u32 w.block l) key;
      maybe_flush w;
      id

let mem w ~tid ~site ~loc ~access ~lockset_id =
  let site_id = ensure_site w site in
  let loc_id = ensure_loc w loc in
  add_u8 w.block
    (match access with Event.Read -> tag_mem_read | Event.Write -> tag_mem_write);
  add_u32 w.block tid;
  add_u32 w.block site_id;
  add_u32 w.block loc_id;
  add_u32 w.block lockset_id;
  w.w_events <- w.w_events + 1;
  maybe_flush w

let lock_event w tag ~tid ~lock ~site =
  let site_id = ensure_site w site in
  add_u8 w.block tag;
  add_u32 w.block tid;
  add_u32 w.block lock;
  add_u32 w.block site_id;
  w.w_events <- w.w_events + 1;
  maybe_flush w

let acquire w ~tid ~lock ~site = lock_event w tag_acquire ~tid ~lock ~site
let release w ~tid ~lock ~site = lock_event w tag_release ~tid ~lock ~site

let reason_code = function Event.Fork -> 0 | Event.Join -> 1 | Event.Notify -> 2

let msg_event w tag ~tid ~msg ~reason =
  add_u8 w.block tag;
  add_u32 w.block tid;
  add_u32 w.block msg;
  add_u8 w.block (reason_code reason);
  w.w_events <- w.w_events + 1;
  maybe_flush w

let snd_ w ~tid ~msg ~reason = msg_event w tag_snd ~tid ~msg ~reason
let rcv w ~tid ~msg ~reason = msg_event w tag_rcv ~tid ~msg ~reason

let start w ~tid ~name =
  add_u8 w.block tag_start;
  add_u32 w.block tid;
  add_str w.block name;
  w.w_events <- w.w_events + 1;
  maybe_flush w

let exit_ w ~tid =
  add_u8 w.block tag_exit;
  add_u32 w.block tid;
  w.w_events <- w.w_events + 1;
  maybe_flush w

let add w (ev : Event.t) =
  match ev with
  | Event.Mem { tid; site; loc; access; lockset } ->
      let lockset_id = intern_lockset w lockset in
      mem w ~tid ~site ~loc ~access ~lockset_id
  | Event.Acquire { tid; lock; site } -> acquire w ~tid ~lock ~site
  | Event.Release { tid; lock; site } -> release w ~tid ~lock ~site
  | Event.Snd { tid; msg; reason } -> snd_ w ~tid ~msg ~reason
  | Event.Rcv { tid; msg; reason } -> rcv w ~tid ~msg ~reason
  | Event.Start { tid; name } -> start w ~tid ~name
  | Event.Exit { tid } -> exit_ w ~tid

let written w = w.w_events

let seal w =
  if w.sealed then invalid_arg "Btrace.seal: writer already sealed";
  w.sealed <- true;
  flush_block w;
  (* trailer: zero frame length (impossible for a real frame) + event
     count.  Frames are self-delimiting, so without this a recording cut
     at a frame boundary would decode as a valid shorter stream —
     silently losing events.  The count cross-checks the decoded stream,
     so a corrupted trailer cannot vouch for a wrong one. *)
  add_u32 w.out 0;
  Buffer.add_int64_le w.out (Int64.of_int w.w_events);
  { raw = Buffer.contents w.out }

(* ------------------------------------------------------------------ *)
(* Decoder                                                             *)

let byte_size t = String.length t.raw

let header_len = String.length magic + 2

let check_header raw =
  let n = String.length raw in
  if n < header_len then corrupt "truncated header: %d bytes" n;
  let m = String.sub raw 0 (String.length magic) in
  if m <> magic then corrupt "bad magic %S (expected %S)" m magic;
  let v = Char.code raw.[4] lor (Char.code raw.[5] lsl 8) in
  if v <> version then corrupt "unsupported version %d (expected %d)" v version

(* Record cursor over one frame payload (a substring view of [raw]). *)
type cursor = { c_raw : string; c_limit : int; mutable c_pos : int }

let need cur n what =
  if cur.c_pos + n > cur.c_limit then
    corrupt "truncated %s at byte %d (need %d bytes, frame ends at %d)" what
      cur.c_pos n cur.c_limit

let get_u8 cur what =
  need cur 1 what;
  let v = Char.code cur.c_raw.[cur.c_pos] in
  cur.c_pos <- cur.c_pos + 1;
  v

let get_u32 cur what =
  need cur 4 what;
  let v = Int32.to_int (String.get_int32_le cur.c_raw cur.c_pos) in
  cur.c_pos <- cur.c_pos + 4;
  v

let get_str cur what =
  let n = get_u32 cur what in
  if n < 0 then corrupt "negative string length %d in %s at byte %d" n what cur.c_pos;
  need cur n what;
  let s = String.sub cur.c_raw cur.c_pos n in
  cur.c_pos <- cur.c_pos + n;
  s

type tables = {
  sites : (int, Site.t) Hashtbl.t;
  locs : (int, Loc.t) Hashtbl.t;
  locksets : (int, Lockset.t) Hashtbl.t;
}

let lookup tbl id what pos =
  match Hashtbl.find_opt tbl id with
  | Some v -> v
  | None -> corrupt "undefined %s id %d referenced at byte %d" what id pos

let decode_record tb cur ~tally ~keep_mem emit =
  let at = cur.c_pos in
  let tag = get_u8 cur "record tag" in
  if tag >= tag_mem_read && tag <= tag_exit then incr tally;
  if tag = tag_sitedef then begin
    let id = get_u32 cur "site definition" in
    let line = get_u32 cur "site definition" in
    let col = get_u32 cur "site definition" in
    let file = get_str cur "site definition" in
    let label = get_str cur "site definition" in
    Hashtbl.replace tb.sites id (Site.make ~file ~line ~col label)
  end
  else if tag = tag_locdef then begin
    let id = get_u32 cur "location definition" in
    let loc =
      match get_u8 cur "location kind" with
      | 0 -> Loc.global (get_str cur "location definition")
      | 1 ->
          let o = get_u32 cur "location definition" in
          Loc.field o (get_str cur "location definition")
      | 2 ->
          let a = get_u32 cur "location definition" in
          Loc.elem a (get_u32 cur "location definition")
      | k -> corrupt "unknown location kind %d at byte %d" k at
    in
    Hashtbl.replace tb.locs id loc
  end
  else if tag = tag_locksetdef then begin
    let id = get_u32 cur "lockset definition" in
    let n = get_u32 cur "lockset definition" in
    if n < 0 then corrupt "negative lockset cardinality %d at byte %d" n at;
    let ls = ref Lockset.empty in
    for _ = 1 to n do
      ls := Lockset.add (get_u32 cur "lockset definition") !ls
    done;
    Hashtbl.replace tb.locksets id !ls
  end
  else if tag = tag_mem_read || tag = tag_mem_write then begin
    let tid = get_u32 cur "memory event" in
    let site_id = get_u32 cur "memory event" in
    let loc_id = get_u32 cur "memory event" in
    let ls_id = get_u32 cur "memory event" in
    let loc = lookup tb.locs loc_id "location" at in
    if keep_mem loc then
      emit
        (Event.Mem
           {
             tid;
             site = lookup tb.sites site_id "site" at;
             loc;
             access = (if tag = tag_mem_read then Event.Read else Event.Write);
             lockset = lookup tb.locksets ls_id "lockset" at;
           })
  end
  else if tag = tag_acquire || tag = tag_release then begin
    let tid = get_u32 cur "lock event" in
    let lock = get_u32 cur "lock event" in
    let site_id = get_u32 cur "lock event" in
    let site = lookup tb.sites site_id "site" at in
    emit
      (if tag = tag_acquire then Event.Acquire { tid; lock; site }
       else Event.Release { tid; lock; site })
  end
  else if tag = tag_snd || tag = tag_rcv then begin
    let tid = get_u32 cur "sync event" in
    let msg = get_u32 cur "sync event" in
    let reason =
      match get_u8 cur "sync reason" with
      | 0 -> Event.Fork
      | 1 -> Event.Join
      | 2 -> Event.Notify
      | r -> corrupt "unknown sync reason %d at byte %d" r at
    in
    emit
      (if tag = tag_snd then Event.Snd { tid; msg; reason }
       else Event.Rcv { tid; msg; reason })
  end
  else if tag = tag_start then begin
    let tid = get_u32 cur "start event" in
    let name = get_str cur "start event" in
    emit (Event.Start { tid; name })
  end
  else if tag = tag_exit then emit (Event.Exit { tid = get_u32 cur "exit event" })
  else corrupt "unknown record tag 0x%02x at byte %d" tag at

let decode_raw raw ~keep_mem emit =
  check_header raw;
  let n = String.length raw in
  let tb =
    { sites = Hashtbl.create 64; locs = Hashtbl.create 64; locksets = Hashtbl.create 16 }
  in
  let pos = ref header_len in
  let tally = ref 0 in
  let sealed_count = ref None in
  while !sealed_count = None && !pos < n do
    if !pos + 4 > n then corrupt "truncated frame header at byte %d" !pos;
    let plen = Int32.to_int (String.get_int32_le raw !pos) in
    if plen < 0 then corrupt "bad frame length %d at byte %d" plen !pos
    else if plen = 0 then begin
      (* trailer: u32 zero + u64 event count, then end of stream *)
      if !pos + 4 + 8 > n then corrupt "truncated trailer at byte %d" !pos;
      sealed_count := Some (Int64.to_int (String.get_int64_le raw (!pos + 4)));
      if !pos + 4 + 8 < n then
        corrupt "trailing data after trailer at byte %d" (!pos + 4 + 8)
    end
    else begin
      let payload_at = !pos + 4 in
      if payload_at + plen + 8 > n then
        corrupt "truncated frame at byte %d: declared %d payload bytes, %d available"
          !pos plen (n - payload_at - 8);
      let stored = String.get_int64_le raw (payload_at + plen) in
      let computed = fnv64 raw payload_at plen in
      if stored <> computed then
        corrupt "frame checksum mismatch at byte %d: stored %Lx, computed %Lx" !pos
          stored computed;
      let cur = { c_raw = raw; c_limit = payload_at + plen; c_pos = payload_at } in
      while cur.c_pos < cur.c_limit do
        decode_record tb cur ~tally ~keep_mem emit
      done;
      pos := payload_at + plen + 8
    end
  done;
  match !sealed_count with
  | None ->
      corrupt "truncated recording: missing trailer (stream ends at byte %d)" n
  | Some c ->
      if c <> !tally then
        corrupt "trailer event count mismatch: sealed %d, decoded %d" c !tally

let iter ?(keep_mem = fun _ -> true) f t = decode_raw t.raw ~keep_mem f

let length t =
  let n = ref 0 in
  iter (fun _ -> incr n) t;
  !n

let to_trace t =
  let tr = Trace.create () in
  iter (Trace.add tr) t;
  tr

let of_trace tr =
  let w = writer () in
  Trace.iter (add w) tr;
  seal w

let to_string t = t.raw

let of_string raw =
  decode_raw raw ~keep_mem:(fun _ -> true) ignore;
  { raw }

let save path t =
  let oc = open_out_bin path in
  output_string oc t.raw;
  close_out oc

let load path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  of_string s
