(** User-facing API for embedded model programs.

    Every shared access and synchronization operation performed through
    this module is a scheduler-visible yield point (an effect handled by
    {!Engine}); thread-local OCaml computation in between is free, like
    uninstrumented bytecode in the paper's tool.  All functions must run
    inside {!Engine.run} — performing them outside raises
    [Effect.Unhandled]. *)

open Rf_util

exception Interrupted
(** Java's [InterruptedException]. *)

exception Illegal_monitor_state of string
exception Model_error of string
(** Generic model failure: the paper's ERROR statements, assertion
    violations, NPE analogues. *)

exception Concurrent_modification of string
exception No_such_element of string

val site : ?file:string -> ?line:int -> ?col:int -> string -> Site.t
(** Shorthand for {!Rf_util.Site.make}: name the statement a shared
    operation belongs to. *)

(** {1 Threads} *)

val fork : ?name:string -> (unit -> unit) -> Handle.t
(** Start a thread (emits the start [SND]/[RCV] ordering edge).  An
    uncaught exception kills the thread and is recorded in the run's
    {!Outcome.t}. *)

val join : ?site:Site.t -> Handle.t -> unit
(** Block until the target dies (join edge); interruptible. *)

val interrupt : ?site:Site.t -> Handle.t -> unit
(** Java [Thread.interrupt]: sets the target's interrupt flag; a target
    blocked in [wait]/[sleep]/[join] receives {!Interrupted}. *)

val sleep : ?site:Site.t -> unit -> unit
(** Abstract-time sleep: one interruptible yield point. *)

(** {1 Monitors} *)

val lock : ?site:Site.t -> Lock.t -> unit
val unlock : ?site:Site.t -> Lock.t -> unit

val sync : ?site:Site.t -> Lock.t -> (unit -> 'a) -> 'a
(** [sync l f] — Java [synchronized (l) { f () }]; releases however [f]
    exits. *)

val wait : ?site:Site.t -> Lock.t -> unit
(** Java [l.wait()]: release the monitor, park in the wait set, reacquire
    after [notify]/[notify_all]/[interrupt].  Raises
    {!Illegal_monitor_state} if the monitor is not held. *)

val notify : ?site:Site.t -> Lock.t -> unit
(** Wake one (randomly chosen, seed-deterministic) waiter. *)

val notify_all : ?site:Site.t -> Lock.t -> unit

(** {1 Shared memory} *)

module Cell : sig
  type 'a t
  (** One instrumented shared memory location holding an ['a]. *)

  val make : ?name:string -> 'a -> 'a t
  (** Fresh heap cell, addressed as a one-field object. *)

  val global : string -> 'a -> 'a t
  (** Named global, addressed by name (DSL [shared] variables). *)

  val loc : 'a t -> Loc.t

  val read : site:Site.t -> 'a t -> 'a
  val write : site:Site.t -> 'a t -> 'a -> unit

  val update : rsite:Site.t -> wsite:Site.t -> 'a t -> ('a -> 'a) -> unit
  (** Unsynchronized read-modify-write: two separate accesses, like the
      3-address compilation of [x = f(x)] — deliberately racy. *)

  val unsafe_peek : 'a t -> 'a
  (** Uninstrumented read, for assertions and reporting only. *)

  val unsafe_poke : 'a t -> 'a -> unit
  (** Uninstrumented write, for test setup only. *)
end

module Sarray : sig
  type 'a t
  (** Instrumented shared array: each element is its own location. *)

  val make : int -> 'a -> 'a t
  val init : int -> (int -> 'a) -> 'a t
  val length : 'a t -> int
  val loc : 'a t -> int -> Loc.t

  val get : site:Site.t -> 'a t -> int -> 'a
  (** Raises {!Model_error} out of bounds. *)

  val set : site:Site.t -> 'a t -> int -> 'a -> unit
  val unsafe_peek : 'a t -> int -> 'a
end

val error : string -> 'a
(** Raise {!Model_error}: the paper's ERROR statement. *)

val check : msg:string -> bool -> unit
(** Model assertion. *)
