(* Tests for the RFL front-end: lexer, parser, static checker, interpreter
   semantics, and end-to-end RaceFuzzer analysis of DSL programs. *)

open Rf_util
open Rf_lang

let run ?(seed = 0) ?(strategy = Rf_runtime.Strategy.random ()) main =
  Rf_runtime.Engine.run
    ~config:{ Rf_runtime.Engine.default_config with seed }
    ~strategy main

let run_collect ?(seed = 0) src =
  let out = ref [] in
  let main = Lang.program_of_string ~print:(fun s -> out := s :: !out) src in
  let o = run ~seed ~strategy:(Rf_runtime.Strategy.round_robin ()) main in
  (o, List.rev !out)

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lex_basic () =
  let toks = List.map fst (Lexer.tokenize "let x = 41 + foo(2); // comment") in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
  | Token.LET :: Token.IDENT "x" :: Token.ASSIGN :: Token.INT 41 :: Token.PLUS
    :: Token.IDENT "foo" :: Token.LPAREN :: Token.INT 2 :: _ ->
      ()
  | _ -> Alcotest.fail "unexpected token stream");
  Alcotest.(check bool) "ends with EOF" true (List.nth toks 10 = Token.EOF)

let test_lex_operators () =
  let toks = List.map fst (Lexer.tokenize "== != <= >= < > && || ! -> = - %") in
  Alcotest.(check (list string)) "operators"
    [ "=="; "!="; "<="; ">="; "<"; ">"; "&&"; "||"; "!"; "->"; "="; "-"; "%"; "<eof>" ]
    (List.map Token.to_string toks)

let test_lex_positions () =
  let toks = Lexer.tokenize "x\n  y" in
  match toks with
  | [ (Token.IDENT "x", p1); (Token.IDENT "y", p2); (Token.EOF, _) ] ->
      Alcotest.(check int) "x line" 1 p1.Token.line;
      Alcotest.(check int) "y line" 2 p2.Token.line;
      Alcotest.(check int) "y col" 3 p2.Token.col
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_string_escapes () =
  match Lexer.tokenize {|"a\nb\"c"|} with
  | [ (Token.STRING s, _); (Token.EOF, _) ] ->
      Alcotest.(check string) "unescaped" "a\nb\"c" s
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_block_comment () =
  let toks = List.map fst (Lexer.tokenize "a /* b\n c */ d") in
  Alcotest.(check int) "comment skipped" 3 (List.length toks)

let test_lex_errors () =
  Alcotest.check_raises "bad char"
    (Lexer.Lex_error ({ Token.line = 1; col = 1 }, "unexpected character '#'"))
    (fun () -> ignore (Lexer.tokenize "#"));
  (try
     ignore (Lexer.tokenize "\"unterminated");
     Alcotest.fail "expected error"
   with Lexer.Lex_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let parse src = Lang.parse_string src

let test_parse_figure1_shape () =
  let prog =
    parse
      {| shared int x; shared int y; shared int z; lock L;
         thread t1 { x = 1; sync (L) { y = 1; } if (z == 1) { error "E1"; } }
         thread t2 { z = 1; sync (L) { if (y == 1) { if (x != 1) { error "E2"; } } } }
      |}
  in
  Alcotest.(check int) "3 shareds" 3 (List.length prog.Ast.shareds);
  Alcotest.(check int) "1 lock" 1 (List.length prog.Ast.locks);
  Alcotest.(check int) "2 threads" 2 (List.length prog.Ast.threads)

let test_parse_precedence () =
  let prog = parse "shared int r; thread t { r = 1 + 2 * 3; }" in
  match (List.hd prog.Ast.threads).Ast.tbody with
  | [ { Ast.s = Ast.Sassign ("r", { Ast.e = Ast.Ebin (Ast.Add, _, rhs); _ }); _ } ] -> (
      match rhs.Ast.e with
      | Ast.Ebin (Ast.Mul, _, _) -> ()
      | _ -> Alcotest.fail "* should bind tighter than +")
  | _ -> Alcotest.fail "unexpected ast"

let test_parse_else_if () =
  let prog =
    parse
      "shared int r; thread t { if (r == 0) { skip; } else if (r == 1) { skip; } else { skip; } }"
  in
  match (List.hd prog.Ast.threads).Ast.tbody with
  | [ { Ast.s = Ast.Sif (_, _, Some [ { Ast.s = Ast.Sif (_, _, Some _); _ } ]); _ } ] ->
      ()
  | _ -> Alcotest.fail "else-if chain not parsed"

let test_parse_for_loop () =
  let prog = parse "shared int r; thread t { for (let i = 0; i < 3; i = i + 1) { r = i; } }" in
  match (List.hd prog.Ast.threads).Ast.tbody with
  | [ { Ast.s = Ast.Sfor _; _ } ] -> ()
  | _ -> Alcotest.fail "for not parsed"

let test_parse_func_decl () =
  let prog = parse "def f(int a, bool b) -> int { return a; } thread t { let x = f(1, true); }" in
  match prog.Ast.funcs with
  | [ f ] ->
      Alcotest.(check string) "name" "f" f.Ast.fname;
      Alcotest.(check int) "2 params" 2 (List.length f.Ast.fparams);
      Alcotest.(check bool) "returns int" true (f.Ast.fret = Some Ast.Tint)
  | _ -> Alcotest.fail "function not parsed"

let test_parse_array_decl () =
  let prog = parse "shared int[8] a; thread t { a[0] = a[1] + 1; }" in
  match prog.Ast.shareds with
  | [ g ] -> Alcotest.(check bool) "array of 8" true (g.Ast.garray = Some 8)
  | _ -> Alcotest.fail "array not parsed"

let test_parse_errors () =
  let bad src =
    try
      ignore (Lang.parse_string src);
      Alcotest.failf "expected parse error for %s" src
    with Lang.Error _ -> ()
  in
  bad "thread t { x = ; }";
  bad "thread t { if x { skip; } }";
  bad "thread { skip; }";
  bad "shared int x thread t { skip; }";
  bad "thread t { lock L; }" (* statement form requires parens *)

(* ------------------------------------------------------------------ *)
(* Checker                                                             *)

let test_check_accepts_valid () =
  ignore
    (Lang.load_string
       {| shared int x = 1; shared bool f = false; shared int[4] a; lock L;
          def inc(int v) -> int { return v + 1; }
          def touch() { a[0] = inc(x); return; }
          thread t1 { let i = 0; while (i < 4) { a[i] = inc(i); i = i + 1; } }
          thread t2 { sync (L) { x = inc(x); } if (f) { touch(); } }
       |})

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let check_fails ?(needle = "") src =
  try
    ignore (Lang.load_string src);
    Alcotest.failf "expected check error for: %s" src
  with Lang.Error m ->
    if needle <> "" && not (contains m needle) then
      Alcotest.failf "error %S does not mention %S" m needle

let test_check_rejects () =
  let bad needle src = check_fails ~needle src in
  bad "unknown variable" "thread t { x = 1; }";
  bad "unknown lock" "thread t { sync (L) { skip; } }";
  bad "unknown function" "thread t { f(); }";
  bad "duplicate shared" "shared int x; shared int x; thread t { skip; }";
  bad "duplicate local" "thread t { let x = 1; let x = 2; }";
  bad "expects 1 argument" "def f(int a) { return; } thread t { f(); }";
  bad "expected bool" "shared int x; thread t { if (x) { skip; } }";
  bad "expected int" "shared int x; thread t { x = true; }";
  bad "not an array" "shared int x; thread t { x[0] = 1; }";
  bad "whole array" "shared int[2] a; thread t { a = 1; }";
  bad "return outside" "thread t { return; }";
  bad "must be a constant" "shared int x; shared int y = 1 + 2; thread t { skip; }";
  bad "no threads" "shared int x;";
  bad "compare" "shared int x; shared bool b; thread t { b = x == b; }"

(* ------------------------------------------------------------------ *)
(* Interpreter semantics                                               *)

let test_interp_arithmetic () =
  let _, out =
    run_collect
      {| shared int r;
         thread t { r = (2 + 3) * 4 - 10 / 2; print r; print r % 3; print -r; } |}
  in
  Alcotest.(check (list string)) "arithmetic" [ "15"; "0"; "-15" ] out

let test_interp_bool_shortcircuit () =
  (* the right operand of && must not evaluate when the left is false:
     division by zero would raise *)
  let o, out =
    run_collect
      {| shared int zero; shared bool r;
         thread t { r = false && (1 / zero == 1); print r;
                    r = true || (1 / zero == 1); print r; } |}
  in
  Alcotest.(check bool) "no exception" true (o.Rf_runtime.Outcome.exceptions = []);
  Alcotest.(check (list string)) "short circuit" [ "false"; "true" ] out

let test_interp_while_for () =
  let _, out =
    run_collect
      {| shared int sum;
         thread t {
           for (let i = 1; i <= 5; i = i + 1) { sum = sum + i; }
           let j = 0;
           while (j < 3) { sum = sum + 100; j = j + 1; }
           print sum;
         } |}
  in
  Alcotest.(check (list string)) "loops" [ "315" ] out

let test_interp_functions () =
  let _, out =
    run_collect
      {| def fact(int n) -> int { if (n <= 1) { return 1; } return n * fact(n - 1); }
         def even(int n) -> bool { if (n % 2 == 0) { return true; } return false; }
         thread t { print fact(6); print even(fact(4)); } |}
  in
  Alcotest.(check (list string)) "recursion" [ "720"; "true" ] out

let test_interp_arrays () =
  let _, out =
    run_collect
      {| shared int[5] a;
         thread t {
           for (let i = 0; i < 5; i = i + 1) { a[i] = i * i; }
           print a[0] + a[1] + a[2] + a[3] + a[4];
         } |}
  in
  Alcotest.(check (list string)) "array sum" [ "30" ] out

let test_interp_locals_shadow_globals () =
  let _, out =
    run_collect
      {| shared int x = 7;
         thread t { let x = 1; print x; }
         thread u { print x; } |}
  in
  Alcotest.(check (list string)) "shadowing" [ "1"; "7" ] out

let test_interp_array_oob () =
  let o, _ = run_collect "shared int[2] a; thread t { a[5] = 1; }" in
  Alcotest.(check int) "one exception" 1 (List.length o.Rf_runtime.Outcome.exceptions)

let test_interp_div_by_zero () =
  let o, _ = run_collect "shared int x; thread t { x = 1 / x; }" in
  match o.Rf_runtime.Outcome.exceptions with
  | [ { Rf_runtime.Outcome.exn_ = Rf_runtime.Api.Model_error m; _ } ] ->
      Alcotest.(check bool) "mentions zero" true (contains m "zero")
  | _ -> Alcotest.fail "expected division error"

let test_interp_assert_error () =
  let o, _ = run_collect "shared int x; thread t { assert x == 1; }" in
  Alcotest.(check int) "assert fails" 1 (List.length o.Rf_runtime.Outcome.exceptions)

let test_interp_sync_mutex () =
  (* locked increments from two threads never lose updates *)
  for seed = 0 to 19 do
    let src =
      {| shared int n; lock L;
         thread a { for (let i = 0; i < 5; i = i + 1) { sync (L) { n = n + 1; } } }
         thread b { for (let i = 0; i < 5; i = i + 1) { sync (L) { n = n + 1; } } }
         thread check { skip; } |}
    in
    let main = Lang.program_of_string src in
    let o = run ~seed main in
    Alcotest.(check bool) "ok" true (Rf_runtime.Outcome.ok o)
  done

let test_interp_wait_notify () =
  let _, out =
    run_collect
      {| shared bool ready; shared int data; lock M;
         thread consumer {
           sync (M) { while (!ready) { wait(M); } }
           print data;
         }
         thread producer {
           data = 42;
           sync (M) { ready = true; notify(M); }
         } |}
  in
  Alcotest.(check (list string)) "handshake value" [ "42" ] out

let test_interp_deadlock_detected () =
  let main =
    Lang.program_of_string
      {| lock A; lock B;
         thread t1 { sync (A) { sync (B) { skip; } } }
         thread t2 { sync (B) { sync (A) { skip; } } } |}
  in
  let deadlocks = ref 0 in
  for seed = 0 to 29 do
    let o = run ~seed main in
    if Rf_runtime.Outcome.deadlocked o then incr deadlocks
  done;
  Alcotest.(check bool) "some seeds deadlock" true (!deadlocks > 0)

(* ------------------------------------------------------------------ *)
(* End-to-end: Figure 1 as a DSL program                               *)

let figure1_src =
  {|// Figure 1 of the paper, in RFL
shared int x; shared int y; shared int z;
lock L;
thread thread1 {
  x = 1;
  sync (L) { y = 1; }
  if (z == 1) { error "ERROR1"; }
}
thread thread2 {
  z = 1;
  sync (L) {
    if (y == 1) {
      if (x != 1) { error "ERROR2"; }
    }
  }
}
|}

let test_dsl_figure1_full_pipeline () =
  let prog = Lang.load_string ~file:"fig1.rfl" figure1_src in
  let main = Lang.program ~print:ignore prog in
  let a =
    Racefuzzer.Fuzzer.analyze
      ~phase1_seeds:(List.init 10 Fun.id)
      ~seeds_per_pair:(List.init 60 Fun.id)
      main
  in
  let potential = Racefuzzer.Fuzzer.potential_pairs a.Racefuzzer.Fuzzer.a_phase1 in
  Alcotest.(check int) "two potential pairs" 2 (Site.Pair.Set.cardinal potential);
  Alcotest.(check int) "one real race" 1
    (Site.Pair.Set.cardinal a.Racefuzzer.Fuzzer.real_pairs);
  Alcotest.(check int) "one harmful race" 1
    (Site.Pair.Set.cardinal a.Racefuzzer.Fuzzer.error_pairs);
  (* the real pair must be the z pair: sites at lines 7 (read) and 11 (write) *)
  let real = Site.Pair.Set.choose a.Racefuzzer.Fuzzer.real_pairs in
  let lines = [ Site.line (Site.Pair.fst real); Site.line (Site.Pair.snd real) ] in
  Alcotest.(check (list int)) "z pair lines" [ 7; 10 ] (List.sort compare lines)

let test_dsl_replay_determinism () =
  let main = Lang.program ~print:ignore (Lang.load_string ~file:"fig1r.rfl" figure1_src) in
  let tr seed =
    let o =
      Rf_runtime.Engine.run
        ~config:{ Rf_runtime.Engine.default_config with seed; record_trace = true }
        ~strategy:(Rf_runtime.Strategy.random ()) main
    in
    Option.get o.Rf_runtime.Outcome.trace
  in
  Alcotest.(check bool) "same seed, same DSL trace" true
    (Rf_events.Trace.equal (tr 11) (tr 11))

let () =
  Alcotest.run "rf_lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "positions" `Quick test_lex_positions;
          Alcotest.test_case "string escapes" `Quick test_lex_string_escapes;
          Alcotest.test_case "block comment" `Quick test_lex_block_comment;
          Alcotest.test_case "errors" `Quick test_lex_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "figure1 shape" `Quick test_parse_figure1_shape;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "else-if" `Quick test_parse_else_if;
          Alcotest.test_case "for" `Quick test_parse_for_loop;
          Alcotest.test_case "func decl" `Quick test_parse_func_decl;
          Alcotest.test_case "array decl" `Quick test_parse_array_decl;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts valid" `Quick test_check_accepts_valid;
          Alcotest.test_case "rejects invalid" `Quick test_check_rejects;
        ] );
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arithmetic;
          Alcotest.test_case "short circuit" `Quick test_interp_bool_shortcircuit;
          Alcotest.test_case "loops" `Quick test_interp_while_for;
          Alcotest.test_case "functions" `Quick test_interp_functions;
          Alcotest.test_case "arrays" `Quick test_interp_arrays;
          Alcotest.test_case "shadowing" `Quick test_interp_locals_shadow_globals;
          Alcotest.test_case "array oob" `Quick test_interp_array_oob;
          Alcotest.test_case "div by zero" `Quick test_interp_div_by_zero;
          Alcotest.test_case "assert" `Quick test_interp_assert_error;
          Alcotest.test_case "sync mutex" `Quick test_interp_sync_mutex;
          Alcotest.test_case "wait/notify" `Quick test_interp_wait_notify;
          Alcotest.test_case "deadlock" `Quick test_interp_deadlock_detected;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "figure1 pipeline" `Quick test_dsl_figure1_full_pipeline;
          Alcotest.test_case "replay determinism" `Quick test_dsl_replay_determinism;
        ] );
    ]
