(** Model of [java.util.ArrayList] (JDK 1.4.2): growable array, not
    synchronized, fail-fast iterator via [modCount]. *)

open Rf_util
open Rf_runtime

let file = "array_list"
let s line label = Site.make ~file ~line label

(* Static sites: one per distinct field-access statement, like bytecode. *)
let site_size_r = s 1 "size(read)"
let site_size_w = s 2 "size(write)"
let site_mod_r = s 3 "modCount(read)"
let site_mod_w = s 4 "modCount++"
let site_data_r = s 5 "elementData[i](read)"
let site_data_w = s 6 "elementData[i](write)"
let site_arr_r = s 7 "elementData(read)"
let site_arr_w = s 8 "elementData(write)"
let site_it_mod = s 9 "iterator.checkForComodification"
let site_it_size = s 10 "iterator.hasNext:size"
let site_it_data = s 11 "iterator.next:elementData[i]"

type t = {
  data : int Api.Sarray.t Api.Cell.t;  (** the elementData reference *)
  size : int Api.Cell.t;
  mod_count : int Api.Cell.t;
  monitor : Lock.t;
}

let create ?(capacity = 8) () =
  {
    data = Api.Cell.make ~name:"elementData" (Api.Sarray.make (max 1 capacity) 0);
    size = Api.Cell.make ~name:"size" 0;
    mod_count = Api.Cell.make ~name:"modCount" 0;
    monitor = Lock.create ~name:"ArrayList" ();
  }

let size t = Api.Cell.read ~site:site_size_r t.size
let is_empty t = size t = 0

let bump_mod t =
  Api.Cell.write ~site:site_mod_w t.mod_count
    (Api.Cell.read ~site:site_mod_r t.mod_count + 1)

let ensure_capacity t needed =
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  if needed > Api.Sarray.length arr then begin
    let bigger = Api.Sarray.make (2 * Api.Sarray.length arr) 0 in
    let n = Api.Cell.read ~site:site_size_r t.size in
    for i = 0 to n - 1 do
      Api.Sarray.set ~site:site_data_w bigger i (Api.Sarray.get ~site:site_data_r arr i)
    done;
    Api.Cell.write ~site:site_arr_w t.data bigger
  end

let add t e =
  let n = Api.Cell.read ~site:site_size_r t.size in
  ensure_capacity t (n + 1);
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  Api.Sarray.set ~site:site_data_w arr n e;
  Api.Cell.write ~site:site_size_w t.size (n + 1);
  bump_mod t;
  true

let get t i =
  let n = Api.Cell.read ~site:site_size_r t.size in
  if i < 0 || i >= n then
    raise (Op.No_such_element (Printf.sprintf "ArrayList.get(%d) of size %d" i n));
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  Api.Sarray.get ~site:site_data_r arr i

let set t i e =
  let n = Api.Cell.read ~site:site_size_r t.size in
  if i < 0 || i >= n then
    raise (Op.No_such_element (Printf.sprintf "ArrayList.set(%d) of size %d" i n));
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  let old = Api.Sarray.get ~site:site_data_r arr i in
  Api.Sarray.set ~site:site_data_w arr i e;
  old

let index_of t e =
  let n = Api.Cell.read ~site:site_size_r t.size in
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  let rec go i =
    if i >= n then -1
    else if Api.Sarray.get ~site:site_data_r arr i = e then i
    else go (i + 1)
  in
  go 0

let contains t e = index_of t e >= 0

let remove_at t i =
  let n = Api.Cell.read ~site:site_size_r t.size in
  if i < 0 || i >= n then
    raise (Op.No_such_element (Printf.sprintf "ArrayList.remove(%d) of size %d" i n));
  let arr = Api.Cell.read ~site:site_arr_r t.data in
  let old = Api.Sarray.get ~site:site_data_r arr i in
  for j = i to n - 2 do
    Api.Sarray.set ~site:site_data_w arr j (Api.Sarray.get ~site:site_data_r arr (j + 1))
  done;
  Api.Cell.write ~site:site_size_w t.size (n - 1);
  bump_mod t;
  old

let remove t e =
  let i = index_of t e in
  if i < 0 then false
  else begin
    ignore (remove_at t i);
    true
  end

let clear t =
  Api.Cell.write ~site:site_size_w t.size 0;
  bump_mod t

(** Fail-fast iterator (java.util.AbstractList.Itr): snapshots [modCount]
    at creation, re-checks it on every [next], raising
    ConcurrentModificationException on mismatch — with no lock held, which
    is the racy read the paper's §5.3 describes. *)
let iterator t : Jcoll.iter =
  let expected = Api.Cell.read ~site:site_it_mod t.mod_count in
  let cursor = ref 0 in
  {
    Jcoll.has_next = (fun () -> !cursor < Api.Cell.read ~site:site_it_size t.size);
    next =
      (fun () ->
        let m = Api.Cell.read ~site:site_it_mod t.mod_count in
        if m <> expected then
          raise (Op.Concurrent_modification "ArrayList iterator");
        let n = Api.Cell.read ~site:site_it_size t.size in
        if !cursor >= n then raise (Op.No_such_element "ArrayList iterator");
        let arr = Api.Cell.read ~site:site_arr_r t.data in
        let v = Api.Sarray.get ~site:site_it_data arr !cursor in
        incr cursor;
        v);
  }

let to_list_dbg t =
  let n = Api.Cell.unsafe_peek t.size in
  let arr = Api.Cell.unsafe_peek t.data in
  List.init n (fun i -> Api.Sarray.unsafe_peek arr i)

(** Wrap as a generic collection object. *)
let as_coll t : Jcoll.t =
  {
    Jcoll.cname = "ArrayList";
    monitor = t.monitor;
    size = (fun () -> size t);
    is_empty = (fun () -> is_empty t);
    add = (fun e -> add t e);
    remove = (fun e -> remove t e);
    contains = (fun e -> contains t e);
    clear = (fun () -> clear t);
    iterator = (fun () -> iterator t);
    to_list_dbg = (fun () -> to_list_dbg t);
    synchronized = false;
  }
