(** User-facing API for model programs.

    Model programs (workloads, collections, the DSL interpreter) express
    every shared access and synchronization through this module, which turns
    them into engine-visible yield points.  Purely thread-local computation
    (OCaml locals, plain refs that are provably unshared) needs no
    instrumentation — mirroring how the paper's tool instruments only
    bytecode touching shared state.

    Conventions:
    - every operation takes a [Site.t] naming the static statement, since
      racing pairs are reported at statement granularity;
    - these functions must run inside {!Engine.run}; performing them outside
      an engine raises [Effect.Unhandled]. *)

open Rf_util

exception Interrupted = Op.Interrupted
exception Illegal_monitor_state = Op.Illegal_monitor_state
exception Model_error = Op.Model_error
exception Concurrent_modification = Op.Concurrent_modification
exception No_such_element = Op.No_such_element

let site = Site.make

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)

let fork ?(name = "worker") body = Op.perform (Op.Fork (name, body))

let join ?(site = Site.make "join") h = Op.perform (Op.Join (h, site))

let interrupt ?(site = Site.make "interrupt") h =
  Op.perform (Op.Interrupt (h, site))

(** Abstract-time sleep: a single interruptible yield point. *)
let sleep ?(site = Site.make "sleep") () = Op.perform (Op.Sleep site)

(* ------------------------------------------------------------------ *)
(* Monitors                                                            *)

let lock ?(site = Site.make "lock") l = Op.perform (Op.Acquire (l, site))
let unlock ?(site = Site.make "unlock") l = Op.perform (Op.Release (l, site))

(** [sync l f] models [synchronized (l) { f () }]: the monitor is released
    however [f] exits, as in Java. *)
let sync ?site l f =
  lock ?site l;
  Fun.protect ~finally:(fun () -> unlock ?site l) f

let wait ?(site = Site.make "wait") l = Op.perform (Op.Wait (l, site))
let notify ?(site = Site.make "notify") l = Op.perform (Op.Notify (l, false, site))

let notify_all ?(site = Site.make "notifyAll") l =
  Op.perform (Op.Notify (l, true, site))

(* ------------------------------------------------------------------ *)
(* Shared memory                                                       *)

module Cell = struct
  type 'a t = { r : 'a ref; loc : Loc.t }

  (** A fresh heap cell, addressed as a one-field object. *)
  let make ?(name = "val") v = { r = ref v; loc = Loc.field (Loc.fresh_obj ()) name }

  (** A named global, addressed by name (DSL [shared] variables). *)
  let global name v = { r = ref v; loc = Loc.global name }

  let loc c = c.loc

  let read ~site c =
    Op.perform (Op.Mem { site; loc = c.loc; access = Rf_events.Event.Read });
    !(c.r)

  let write ~site c v =
    Op.perform (Op.Mem { site; loc = c.loc; access = Rf_events.Event.Write });
    c.r := v

  (** Unsynchronized read-modify-write (two separate accesses, as a model
      program's [x = x + 1] would compile to). *)
  let update ~rsite ~wsite c f =
    let v = read ~site:rsite c in
    write ~site:wsite c (f v)

  (** Peek without instrumentation — for assertions and reporting only;
      never use in model-program logic. *)
  let unsafe_peek c = !(c.r)

  let unsafe_poke c v = c.r := v
end

module Sarray = struct
  type 'a t = { cells : 'a ref array; aid : int }

  let make n v =
    { cells = Array.init n (fun _ -> ref v); aid = Loc.fresh_obj () }

  let init n f = { cells = Array.init n (fun i -> ref (f i)); aid = Loc.fresh_obj () }

  let length a = Array.length a.cells

  let loc a i = Loc.elem a.aid i

  let get ~site a i =
    if i < 0 || i >= Array.length a.cells then
      raise (Model_error (Fmt.str "array index %d out of bounds [0,%d)" i (Array.length a.cells)));
    Op.perform (Op.Mem { site; loc = loc a i; access = Rf_events.Event.Read });
    !(a.cells.(i))

  let set ~site a i v =
    if i < 0 || i >= Array.length a.cells then
      raise (Model_error (Fmt.str "array index %d out of bounds [0,%d)" i (Array.length a.cells)));
    Op.perform (Op.Mem { site; loc = loc a i; access = Rf_events.Event.Write });
    a.cells.(i) := v

  let unsafe_peek a i = !(a.cells.(i))
end

(** Convenience: raise a model assertion failure (the paper's ERROR
    statements). *)
let error msg = raise (Model_error msg)

let check ~msg cond = if not cond then error msg
