(* Persistent cross-campaign corpus.

   Durability discipline is the journal's, reused wholesale: flat JSON
   lines through the one hand-rolled codec ({!Event_log.render_flat}),
   each line CRC-sealed ({!Event_log.seal}), the whole index rewritten
   through {!Atomic_file} so there is never a moment when the on-disk
   index is half-new.  A crash mid-update costs the update, never the
   corpus. *)

open Rf_util

type entry = {
  e_kind : string;
  e_key : string;
  e_target : string;
  e_pair : string;
  e_seed : int;
  e_file : string;
  e_crc : string;
  e_seen : int;
}

type summary = { cs_added : int; cs_deduped : int; cs_total : int }

let index_file dir = Filename.concat dir "index.json"
let header_line = Event_log.seal {|{"corpus":1}|}

let entry ~kind ~key ?(target = "") ?(pair = "") ?(seed = -1) () =
  {
    e_kind = kind;
    e_key = key;
    e_target = target;
    e_pair = pair;
    e_seed = seed;
    e_file = "";
    e_crc = "";
    e_seen = 1;
  }

let mkdir_p dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let file_crc path = Fnv.hex63 (read_file path)

let ingest_file ~dir ~kind ~key ?(target = "") ?(pair = "") ?(seed = -1) ~src ()
    =
  mkdir_p dir;
  let base = Filename.basename src in
  let dst = Filename.concat dir base in
  let already_inside =
    Sys.file_exists dst
    &&
    try (Unix.stat dst).Unix.st_ino = (Unix.stat src).Unix.st_ino
    with Unix.Unix_error _ -> false
  in
  if not already_inside then Atomic_file.write_string dst (read_file src);
  {
    e_kind = kind;
    e_key = key;
    e_target = target;
    e_pair = pair;
    e_seed = seed;
    e_file = base;
    e_crc = file_crc dst;
    e_seen = 1;
  }

(* ------------------------------------------------------------------ *)
(* Index codec: one sealed flat object per entry. *)

let render_entry e =
  Event_log.seal
    (Event_log.render_flat
       [
         ("kind", Event_log.S e.e_kind);
         ("key", Event_log.S e.e_key);
         ("target", Event_log.S e.e_target);
         ("pair", Event_log.S e.e_pair);
         ("seed", Event_log.I e.e_seed);
         ("file", Event_log.S e.e_file);
         ("crc", Event_log.S e.e_crc);
         ("seen", Event_log.I e.e_seen);
       ])

let entry_of_fields fields =
  let str k =
    match List.assoc_opt k fields with Some (Event_log.S s) -> Some s | _ -> None
  in
  let int k =
    match List.assoc_opt k fields with Some (Event_log.I i) -> Some i | _ -> None
  in
  match (str "kind", str "key", int "seed", int "seen") with
  | Some e_kind, Some e_key, Some e_seed, Some e_seen ->
      Some
        {
          e_kind;
          e_key;
          e_target = Option.value ~default:"" (str "target");
          e_pair = Option.value ~default:"" (str "pair");
          e_seed;
          e_file = Option.value ~default:"" (str "file");
          e_crc = Option.value ~default:"" (str "crc");
          e_seen;
        }
  | _ -> None

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Tolerant read: the crash-recovery path.  Bad seals and torn lines are
   skipped — the next [update] rewrites a clean index. *)
let load dir =
  let path = index_file dir in
  if not (Sys.file_exists path) then []
  else
    read_lines path
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match Event_log.check_seal line with
             | Event_log.Sealed_ok -> (
                 match Event_log.parse_flat line with
                 | Some fields when List.mem_assoc "corpus" fields ->
                     None  (* header *)
                 | Some fields -> entry_of_fields fields
                 | None -> None)
             | Event_log.Sealed_bad | Event_log.Unsealed -> None)

let save dir entries =
  mkdir_p dir;
  Atomic_file.write (index_file dir) (fun oc ->
      output_string oc header_line;
      output_char oc '\n';
      List.iter
        (fun e ->
          output_string oc (render_entry e);
          output_char oc '\n')
        entries)

let update ~dir fresh =
  let existing = load dir in
  let by_key = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace by_key (e.e_kind, e.e_key) e) existing;
  let added = ref 0 and deduped = ref 0 in
  let merged =
    List.fold_left
      (fun acc e ->
        match Hashtbl.find_opt by_key (e.e_kind, e.e_key) with
        | Some _ ->
            incr deduped;
            acc
        | None ->
            incr added;
            Hashtbl.replace by_key (e.e_kind, e.e_key) e;
            e :: acc)
      [] fresh
    |> List.rev
  in
  let bump =
    (* A fresh duplicate has already been ingested: when its artifact
       shares the existing entry's basename, the file on disk now holds
       the fresh bytes (a re-minimized repro of the same error), so the
       index must take the fresh file/crc or strict verify would flag a
       mismatch forever.  Distinct basenames keep the original artifact. *)
    let dup_fresh = Hashtbl.create 16 in
    List.iter
      (fun e ->
        if
          List.exists
            (fun x -> x.e_kind = e.e_kind && x.e_key = e.e_key)
            existing
        then Hashtbl.replace dup_fresh (e.e_kind, e.e_key) e)
      fresh;
    fun e ->
      match Hashtbl.find_opt dup_fresh (e.e_kind, e.e_key) with
      | Some f when f.e_file = e.e_file ->
          { e with e_crc = f.e_crc; e_seen = e.e_seen + 1 }
      | Some _ -> { e with e_seen = e.e_seen + 1 }
      | None -> e
  in
  let all = List.map bump existing @ merged in
  save dir all;
  { cs_added = !added; cs_deduped = !deduped; cs_total = List.length all }

let verify ~dir =
  let path = index_file dir in
  if not (Sys.file_exists path) then Error [ "missing index.json" ]
  else begin
    let problems = ref [] in
    let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
    let lines = read_lines path in
    (match lines with
    | [] -> problem "empty index"
    | first :: _ ->
        (match Event_log.check_seal first with
        | Event_log.Sealed_ok -> ()
        | Event_log.Sealed_bad -> problem "header line: bad checksum"
        | Event_log.Unsealed -> problem "header line: unsealed");
        (match Event_log.parse_flat first with
        | Some fields when List.assoc_opt "corpus" fields = Some (Event_log.I 1)
          ->
            ()
        | _ -> problem "header line: not a corpus-v1 header"));
    let seen_keys = Hashtbl.create 64 in
    List.iteri
      (fun i line ->
        if i > 0 && String.trim line <> "" then begin
          let lineno = i + 1 in
          match Event_log.check_seal line with
          | Event_log.Sealed_bad ->
              problem "line %d: bad checksum (corrupted in place)" lineno
          | Event_log.Unsealed -> problem "line %d: unsealed" lineno
          | Event_log.Sealed_ok -> (
              match
                Option.bind (Event_log.parse_flat line) entry_of_fields
              with
              | None -> problem "line %d: not a corpus entry" lineno
              | Some e ->
                  if Hashtbl.mem seen_keys (e.e_kind, e.e_key) then
                    problem "line %d: duplicate (%s, %s)" lineno e.e_kind
                      e.e_key
                  else Hashtbl.replace seen_keys (e.e_kind, e.e_key) ();
                  if e.e_file <> "" then begin
                    let f = Filename.concat dir e.e_file in
                    if not (Sys.file_exists f) then
                      problem "line %d: missing artifact %s" lineno e.e_file
                    else
                      let crc = file_crc f in
                      if not (String.equal crc e.e_crc) then
                        problem
                          "line %d: artifact %s content mismatch (crc %s, index says %s)"
                          lineno e.e_file crc e.e_crc
                  end)
        end)
      lines;
    match !problems with
    | [] -> Ok (Hashtbl.length seen_keys)
    | ps -> Error (List.rev ps)
  end
