(** Offline detection over binary recordings: the detect half of the
    record-then-detect pipeline.

    A detector that runs inline taxes every engine step; run offline it
    reads a {!Rf_events.Btrace} recording instead, so the engine records
    detector-free and the (expensive) analysis replays after the fact —
    several detectors over one recording, optionally sharded by memory
    location across domains.

    {2 Sharding and determinism}

    Shard [k] of [n] sees {e every} synchronization event but only the
    memory events whose dynamic location hashes to [k] — clock state is a
    function of the sync stream alone, while access-history buckets are
    per-location, so giving a shard the full sync stream plus a
    location-disjoint slice of the accesses reproduces exactly the bucket
    contents and happens-before verdicts the inline detector computed for
    those locations.  (Vector clocks tick per {e visible} event, so a
    shard's counter values differ from inline ones; the order relations
    the detectors compare — "was this send issued before or after that
    access" — are preserved, which is all the verdicts read.)

    The merged result is therefore shard-count-independent: the union of
    the shards' race sets equals the inline pair set, deduplicated by
    statement pair and sorted canonically.  With one shard (the default)
    the event feed is the inline feed verbatim and the race list is
    byte-identical to inline detection, including report order.

    Resource governance composes per the caller's [make]: a shared
    governor meters the shards' combined state (run shards sequentially
    for determinism — the default); parallel sharding is for ungoverned
    runs.  Degraded offline runs are deterministic but not guaranteed
    shard-count-invariant, exactly as inline degradation is documented
    deterministic-but-level-dependent. *)

open Rf_util
open Rf_events

val shard_of_loc : shards:int -> Loc.t -> int
(** The shard owning a dynamic location: [Loc.hash mod shards]. *)

val feed_shard : shard:int -> shards:int -> Detector.t -> Btrace.t -> unit
(** Feed one recording into a detector as shard [shard] of [shards]:
    all sync events, plus the memory events owned by the shard. *)

val replay : (Event.t -> unit) -> Btrace.t list -> unit
(** Feed recordings, in order, unsharded — for stream consumers that are
    not location-decomposable ({!Atomicity} section tracking, custom
    listeners). *)

val detect :
  ?shards:int ->
  ?parallel:bool ->
  make:(unit -> Detector.t) ->
  Btrace.t list ->
  Race.t list
(** Run a fresh detector per shard over the recordings and merge.
    [shards] defaults to 1 (exact inline replay).  With [parallel] (only
    meaningful when [shards > 1]) each shard runs on its own domain —
    the caller's [make] must then be safe to call concurrently, i.e. not
    close over a shared governor.  Merged races are deduplicated by
    statement pair and sorted by {!Site.Pair.compare}; with one shard
    the detector's own report order is preserved. *)

val detect_stats :
  ?shards:int ->
  ?parallel:bool ->
  make:(unit -> Detector.t) ->
  Btrace.t list ->
  Race.t list * Detector.stats
(** {!detect}, plus the detectors' merged end-of-run accounting.
    Locations partition across shards, so entries and memory events sum
    to the inline totals and a sampling miss bound — a max over
    locations — is the max over the shards' bounds: the merged stats
    equal the inline detector's, shard-count-independently. *)
