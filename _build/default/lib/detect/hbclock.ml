(** Happens-before clock builder.

    Consumes the event stream of a run and assigns every event a vector
    clock such that [Vclock.leq (clock e1) (clock e2)] iff e1 happens-before
    (or equals) e2 under the chosen edge policy.

    Two policies are needed (paper §2.1 vs related work [44]):

    - [lock_edges = false]: edges are program order plus the SND/RCV
      messages generated at thread start, join, and notify→wait.  This is
      the *weak* relation used by hybrid race detection — deliberately
      ignoring lock release→acquire ordering so that accesses merely
      serialized by a lock still count as concurrent (that is what makes
      the technique predictive, and imprecise).

    - [lock_edges = true]: additionally order each lock release before every
      later acquire of the same lock.  This yields the classical precise
      happens-before relation of Schonberg-style detectors. *)

open Rf_events
open Rf_vclock

type t = {
  lock_edges : bool;
  threads : (int, Vclock.t) Hashtbl.t;
  msgs : (int, Vclock.t) Hashtbl.t;
  lock_release : (int, Vclock.t) Hashtbl.t;
}

let create ~lock_edges () =
  {
    lock_edges;
    threads = Hashtbl.create 16;
    msgs = Hashtbl.create 64;
    lock_release = Hashtbl.create 16;
  }

let thread_clock t tid =
  match Hashtbl.find_opt t.threads tid with
  | Some c -> c
  | None -> Vclock.bottom

(** Process one event; returns the event's vector clock. *)
let feed t ev =
  let tid = Event.tid ev in
  let c = thread_clock t tid in
  (* Incoming edges join into the thread clock before the event ticks. *)
  let c =
    match ev with
    | Event.Rcv { msg; _ } -> (
        match Hashtbl.find_opt t.msgs msg with
        | Some m -> Vclock.join c m
        | None -> c (* unmatched receive: no edge *))
    | Event.Acquire { lock; _ } when t.lock_edges -> (
        match Hashtbl.find_opt t.lock_release lock with
        | Some r -> Vclock.join c r
        | None -> c)
    | _ -> c
  in
  let c = Vclock.tick c tid in
  Hashtbl.replace t.threads tid c;
  (* Outgoing edges snapshot the thread clock after the tick. *)
  (match ev with
  | Event.Snd { msg; _ } -> Hashtbl.replace t.msgs msg c
  | Event.Release { lock; _ } when t.lock_edges -> Hashtbl.replace t.lock_release lock c
  | _ -> ());
  c
