test/test_util.ml: Alcotest Array Fun List Loc Printf Prng QCheck QCheck_alcotest Rf_util Site
