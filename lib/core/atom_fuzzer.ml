(** Atomicity-directed random testing: phase 2 for
    {!Rf_detect.Atomicity} candidates, completing the trio of problem
    classes the paper's §1 says the biased scheduler supports (races,
    atomicity violations, deadlocks).

    Given a candidate — thread [T] splits a transaction on [loc] under
    lock [L] between two critical sections, thread [I] writes [loc] under
    [L] — the scheduler postpones [T] when it is about to re-enter the
    second section (its pending acquire at [second_acquire]) until [I] is
    about to execute the interfering write; then it runs the write first
    and releases [T].  The stale-value window is thereby exercised with
    high probability; whether it is *harmful* shows up exactly as with
    races, through model assertions/exceptions in the subject program.

    A violation is recorded when the interfering write actually executes
    while [T] stands postponed between its sections — an event-level
    witness that the two sections were not serializable. *)

open Rf_util
open Rf_runtime

type hit = {
  ah_candidate : Rf_detect.Atomicity.candidate;
  ah_step : int;
}

type report = {
  mutable ahits : hit list;
  mutable apostponed : int;
  mutable aevictions : int;
}

let fresh_report () = { ahits = []; apostponed = 0; aevictions = 0 }
let violation_created r = r.ahits <> []

let strategy ?(postpone_timeout = Some Algo.default_postpone_timeout)
    ~(candidate : Rf_detect.Atomicity.candidate) ~(report : report) () : Strategy.t =
  let postponed : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let is_second_acquire (e : Strategy.entry) =
    match e.Strategy.pend with
    | Op.P_acquire { site; _ } ->
        Site.equal site candidate.Rf_detect.Atomicity.second_acquire
    | _ -> false
  in
  let is_interfering_write (e : Strategy.entry) =
    match Op.pend_mem e.Strategy.pend with
    | Some m ->
        Site.equal m.Op.site candidate.Rf_detect.Atomicity.interferer_site
        && m.Op.access = Rf_events.Event.Write
    | None -> false
  in
  let choose (view : Strategy.view) =
    (match postpone_timeout with
    | None -> ()
    | Some bound ->
        (* sorted so release order never depends on hash-table internals *)
        Hashtbl.fold
          (fun tid since acc ->
            if view.Strategy.step - since > bound then tid :: acc else acc)
          postponed []
        |> List.sort compare
        |> List.iter (Hashtbl.remove postponed));
    let rec pick_loop () =
      let avail =
        List.filter
          (fun (e : Strategy.entry) -> not (Hashtbl.mem postponed e.Strategy.tid))
          view.Strategy.enabled
      in
      match avail with
      | [] ->
          let victims =
            List.filter
              (fun (e : Strategy.entry) -> Hashtbl.mem postponed e.Strategy.tid)
              view.Strategy.enabled
          in
          let v = Prng.pick view.Strategy.prng victims in
          Hashtbl.remove postponed v.Strategy.tid;
          report.aevictions <- report.aevictions + 1;
          v.Strategy.tid
      | _ -> (
          let e = Prng.pick view.Strategy.prng avail in
          let someone_parked_in_gap =
            Hashtbl.fold
              (fun tid _ acc -> acc || tid <> e.Strategy.tid)
              postponed false
          in
          if is_interfering_write e && someone_parked_in_gap then begin
            (* a transaction thread stands between its two sections and the
               conflicting write is about to land in the gap: violation *)
            report.ahits <-
              { ah_candidate = candidate; ah_step = view.Strategy.step }
              :: report.ahits;
            e.Strategy.tid
          end
          else if is_second_acquire e then begin
            match List.find_opt is_interfering_write view.Strategy.enabled with
            | Some interferer when interferer.Strategy.tid <> e.Strategy.tid ->
                report.ahits <-
                  { ah_candidate = candidate; ah_step = view.Strategy.step }
                  :: report.ahits;
                Hashtbl.replace postponed e.Strategy.tid view.Strategy.step;
                report.apostponed <- report.apostponed + 1;
                interferer.Strategy.tid
            | _ ->
                (* hold the transaction open, wait for the interferer *)
                Hashtbl.replace postponed e.Strategy.tid view.Strategy.step;
                report.apostponed <- report.apostponed + 1;
                pick_loop ()
          end
          else e.Strategy.tid)
    in
    pick_loop ()
  in
  Strategy.make ~name:"atomfuzzer" choose

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

type candidate_result = {
  ac_candidate : Rf_detect.Atomicity.candidate;
  ac_trials : int;
  ac_violation_trials : int;
  ac_error_trials : int;
  ac_probability : float;
  ac_seed : int option;
  ac_error_seed : int option;
}

let is_real r = r.ac_violation_trials > 0
let is_harmful r = r.ac_error_trials > 0

let phase1 ?(seeds = [ 0 ]) ?(record = false) (program : unit -> unit) =
  (* one detector per execution: section state is inherently per-run
     (thread and lock ids restart each run), so sharing a detector across
     seeds would pair sections from different executions.  With [record]
     the detector is detached from the run: the engine writes a binary
     recording and the detector replays it afterwards — same per-seed
     isolation, no location sharding (section state is not decomposable
     by location), identical candidates. *)
  let observe seed =
    let d = Rf_detect.Atomicity.create () in
    if record then begin
      let w = Rf_events.Btrace.writer () in
      ignore
        (Engine.run
           ~config:{ Engine.default_config with seed }
           ~btrace:w ~strategy:(Strategy.random ()) program);
      Rf_detect.Offline.replay (Rf_detect.Atomicity.feed d)
        [ Rf_events.Btrace.seal w ]
    end
    else
      ignore
        (Engine.run
           ~config:{ Engine.default_config with seed }
           ~listeners:[ Rf_detect.Atomicity.feed d ]
           ~strategy:(Strategy.random ()) program);
    Rf_detect.Atomicity.candidates d
  in
  let all = List.concat_map observe seeds in
  let same (a : Rf_detect.Atomicity.candidate) (b : Rf_detect.Atomicity.candidate) =
    a.Rf_detect.Atomicity.av_lock = b.Rf_detect.Atomicity.av_lock
    && Site.equal a.Rf_detect.Atomicity.first_site b.Rf_detect.Atomicity.first_site
    && Site.equal a.Rf_detect.Atomicity.second_acquire
         b.Rf_detect.Atomicity.second_acquire
    && Site.equal a.Rf_detect.Atomicity.interferer_site
         b.Rf_detect.Atomicity.interferer_site
  in
  List.fold_left
    (fun acc c -> if List.exists (same c) acc then acc else acc @ [ c ])
    [] all

let fuzz_candidate ?(seeds = List.init 100 Fun.id) ~(program : unit -> unit)
    (c : Rf_detect.Atomicity.candidate) : candidate_result =
  let watch =
    Site.Set.add c.Rf_detect.Atomicity.second_acquire
      (Site.Set.singleton c.Rf_detect.Atomicity.interferer_site)
  in
  let trials =
    List.map
      (fun seed ->
        let report = fresh_report () in
        let strategy = strategy ~candidate:c ~report () in
        let o =
          Engine.run
            ~config:{ Engine.default_config with seed; policy = Engine.Sync_and watch }
            ~strategy program
        in
        (seed, o, report))
      seeds
  in
  let violations = List.filter (fun (_, _, r) -> violation_created r) trials in
  let errors =
    List.filter
      (fun (_, o, r) -> violation_created r && Outcome.has_exception o)
      trials
  in
  {
    ac_candidate = c;
    ac_trials = List.length trials;
    ac_violation_trials = List.length violations;
    ac_error_trials = List.length errors;
    ac_probability =
      float_of_int (List.length violations) /. float_of_int (max 1 (List.length trials));
    ac_seed = (match violations with [] -> None | (s, _, _) :: _ -> Some s);
    ac_error_seed = (match errors with [] -> None | (s, _, _) :: _ -> Some s);
  }

let analyze ?(phase1_seeds = [ 0; 1; 2 ]) ?(seeds_per_candidate = List.init 50 Fun.id)
    (program : unit -> unit) : candidate_result list =
  phase1 ~seeds:phase1_seeds program
  |> List.map (fuzz_candidate ~seeds:seeds_per_candidate ~program)
