lib/core/deadlock_fuzzer.mli: Rf_detect Rf_runtime Rf_util Strategy
