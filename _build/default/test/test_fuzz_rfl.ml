(* Metamorphic properties over randomly generated RFL programs: the
   front-end, engine and analyses must agree with themselves and with each
   other on arbitrary well-formed inputs. *)

open Rf_util

let run ?(seed = 0) ?(record_trace = false) ?(strategy = Rf_runtime.Strategy.random ())
    main =
  Rf_runtime.Engine.run
    ~config:
      {
        Rf_runtime.Engine.default_config with
        seed;
        record_trace;
        max_steps = 100_000;
      }
    ~strategy main

let main_of prog = Rf_lang.Lang.program ~print:ignore prog

(* 1. Every generated program passes the static checker. *)
let prop_generated_well_formed =
  QCheck.Test.make ~name:"generated programs are well-formed" ~count:120
    Rfl_gen.arbitrary_program (fun prog ->
      Rf_lang.Check.check prog;
      true)

(* 2. Pretty-print then parse is the identity up to positions. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"parse . print = id (modulo positions)" ~count:120
    Rfl_gen.arbitrary_program (fun prog ->
      let src = Rf_lang.Pretty.program_to_string prog in
      let prog' = Rf_lang.Lang.parse_string ~file:"gen.rfl" src in
      Rf_lang.Pretty.program_equal prog prog')

(* 3. Runs are deterministic: same seed, same trace. *)
let prop_deterministic =
  QCheck.Test.make ~name:"same seed => identical trace" ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let main = main_of prog in
      let t1 = run ~seed ~record_trace:true main in
      let t2 = run ~seed ~record_trace:true main in
      match (t1.Rf_runtime.Outcome.trace, t2.Rf_runtime.Outcome.trace) with
      | Some a, Some b -> Rf_events.Trace.equal a b
      | _ -> false)

(* 4. Generated programs terminate (bounded loops): never hit the step
   bound under any built-in scheduler. Deadlock (via sync nesting) is
   impossible here because sync bodies only nest distinct locks... they may
   nest the same ones in both orders — deadlock IS possible, and legal; we
   only require no timeout. *)
let prop_no_timeout =
  QCheck.Test.make ~name:"generated programs never time out" ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let main = main_of prog in
      List.for_all
        (fun strat -> not (run ~seed ~strategy:(strat ()) main).Rf_runtime.Outcome.timed_out)
        [
          Rf_runtime.Strategy.random;
          Rf_runtime.Strategy.round_robin;
          (fun () -> Rf_runtime.Strategy.timesliced ~quantum:4 ());
        ])

(* 5. Per trace: precise happens-before races are a subset of hybrid's. *)
let prop_hybrid_superset =
  QCheck.Test.make ~name:"hybrid ⊇ precise-HB on generated programs" ~count:60
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let main = main_of prog in
      let hy = Rf_detect.Detector.hybrid () in
      let hb = Rf_detect.Detector.hb_precise () in
      ignore
        (Rf_runtime.Engine.run
           ~config:{ Rf_runtime.Engine.default_config with seed; max_steps = 100_000 }
           ~listeners:[ Rf_detect.Detector.feed hy; Rf_detect.Detector.feed hb ]
           ~strategy:(Rf_runtime.Strategy.random ()) main);
      Site.Pair.Set.subset
        (Rf_detect.Detector.pairs hb)
        (Rf_detect.Detector.pairs hy))

(* 6. RaceFuzzer soundness: every race it confirms was a phase-1 candidate,
   and every hit's location belongs to the fuzzed pair's sites. *)
let prop_confirmed_subset_of_candidates =
  QCheck.Test.make ~name:"confirmed ⊆ potential on generated programs" ~count:25
    Rfl_gen.arbitrary_program (fun prog ->
      let main = main_of prog in
      let a =
        Racefuzzer.Fuzzer.analyze
          ~phase1_seeds:[ 0; 1 ]
          ~seeds_per_pair:(List.init 10 Fun.id)
          main
      in
      Site.Pair.Set.subset a.Racefuzzer.Fuzzer.real_pairs
        (Racefuzzer.Fuzzer.potential_pairs a.Racefuzzer.Fuzzer.a_phase1))

(* 7. Every RaceFuzzer hit really names the RaceSet pair. *)
let prop_hits_on_the_pair =
  QCheck.Test.make ~name:"every hit is on the fuzzed pair" ~count:25
    Rfl_gen.arbitrary_program (fun prog ->
      let main = main_of prog in
      let p1 = Racefuzzer.Fuzzer.phase1 ~seeds:[ 0; 1 ] main in
      Site.Pair.Set.for_all
        (fun pair ->
          List.for_all
            (fun seed ->
              let _, rep = Racefuzzer.Fuzzer.replay ~seed ~program:main pair in
              List.for_all
                (fun (h : Racefuzzer.Algo.hit) ->
                  Site.Pair.equal h.Racefuzzer.Algo.hit_pair pair
                  && Site.Pair.mem (fst h.Racefuzzer.Algo.hit_sites) pair
                  && Site.Pair.mem (snd h.Racefuzzer.Algo.hit_sites) pair)
                (Racefuzzer.Algo.hits rep))
            [ 0; 3; 7 ])
        (Racefuzzer.Fuzzer.potential_pairs p1))

(* 8. Printed program behaves like the original (sites differ in position
   only): same step count, same number of uncaught exceptions, same
   deadlock verdict under the same seed and scheduler. *)
let prop_print_preserves_behaviour =
  QCheck.Test.make ~name:"pretty-printing preserves behaviour" ~count:50
    QCheck.(pair Rfl_gen.arbitrary_program small_int)
    (fun (prog, seed) ->
      let src = Rf_lang.Pretty.program_to_string prog in
      let prog' = Rf_lang.Lang.load_string ~file:"gen2.rfl" src in
      let o1 = run ~seed (main_of prog) in
      let o2 = run ~seed (main_of prog') in
      o1.Rf_runtime.Outcome.steps = o2.Rf_runtime.Outcome.steps
      && List.length o1.Rf_runtime.Outcome.exceptions
         = List.length o2.Rf_runtime.Outcome.exceptions
      && (o1.Rf_runtime.Outcome.deadlocked = [])
         = (o2.Rf_runtime.Outcome.deadlocked = []))

let () =
  Alcotest.run "rfl_fuzz"
    [
      ( "metamorphic",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_generated_well_formed;
            prop_roundtrip;
            prop_deterministic;
            prop_no_timeout;
            prop_hybrid_superset;
            prop_confirmed_subset_of_candidates;
            prop_hits_on_the_pair;
            prop_print_preserves_behaviour;
          ] );
    ]
