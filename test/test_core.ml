(* Tests for the RaceFuzzer algorithm (phase 2) and the two-phase driver,
   validated against the paper's ground truth for Figures 1 and 2:

   - Figure 1: the (5,7) race on z is real (created with probability ~1,
     ERROR1 raised ~half the time); the (1,10) candidate on x is a false
     alarm that RaceFuzzer must never "confirm".
   - Figure 2: the (8,10) race is created with probability 1 and ERROR is
     reached with probability ~0.5 independent of padding size k, while a
     simple random scheduler's error probability collapses as k grows. *)

open Rf_util
open Racefuzzer

module F1 = Rf_workloads.Figure1
module F2 = Rf_workloads.Figure2

let seeds n = List.init n Fun.id

(* ------------------------------------------------------------------ *)
(* Figure 1                                                            *)

let test_fig1_real_race_confirmed () =
  let r = Fuzzer.fuzz_pair ~seeds:(seeds 100) ~program:F1.program F1.real_pair in
  Alcotest.(check int) "race created in every trial" 100 r.Fuzzer.race_trials;
  Alcotest.(check (float 0.001)) "probability 1.0" 1.0 r.Fuzzer.probability;
  Alcotest.(check bool) "classified real" true (Fuzzer.is_real r)

let test_fig1_error1_about_half () =
  let r = Fuzzer.fuzz_pair ~seeds:(seeds 200) ~program:F1.program F1.real_pair in
  Alcotest.(check bool) "harmful race" true (Fuzzer.is_harmful r);
  Alcotest.(check bool)
    (Printf.sprintf "ERROR1 rate ~0.5 (got %d/200)" r.Fuzzer.error_trials)
    true
    (r.Fuzzer.error_trials > 60 && r.Fuzzer.error_trials < 140)

let test_fig1_false_alarm_rejected () =
  let r = Fuzzer.fuzz_pair ~seeds:(seeds 100) ~program:F1.program F1.false_pair in
  Alcotest.(check int) "no race ever created" 0 r.Fuzzer.race_trials;
  Alcotest.(check int) "no error" 0 r.Fuzzer.error_trials;
  Alcotest.(check bool) "not real" false (Fuzzer.is_real r)

let test_fig1_error2_never () =
  (* ERROR2 is unreachable in any schedule; no exception other than ERROR1
     may ever appear in any trial of either pair. *)
  List.iter
    (fun pair ->
      let r = Fuzzer.fuzz_pair ~seeds:(seeds 100) ~program:F1.program pair in
      List.iter
        (fun (t : Fuzzer.trial) ->
          List.iter
            (fun (x : Rf_runtime.Outcome.exn_report) ->
              match x.Rf_runtime.Outcome.exn_ with
              | Rf_runtime.Api.Model_error "ERROR1" -> ()
              | e -> Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
            t.Fuzzer.t_outcome.Rf_runtime.Outcome.exceptions)
        r.Fuzzer.trials)
    [ F1.real_pair; F1.false_pair ]

let test_fig1_end_to_end_analysis () =
  let a =
    Fuzzer.analyze ~phase1_seeds:(seeds 10) ~seeds_per_pair:(seeds 50) F1.program
  in
  let potential = Fuzzer.potential_pairs a.Fuzzer.a_phase1 in
  Alcotest.(check int) "phase1: two potential pairs" 2
    (Site.Pair.Set.cardinal potential);
  Alcotest.(check int) "one real pair" 1 (Site.Pair.Set.cardinal a.Fuzzer.real_pairs);
  Alcotest.(check bool) "the real pair is (5,7)" true
    (Site.Pair.Set.mem F1.real_pair a.Fuzzer.real_pairs);
  Alcotest.(check bool) "the false pair is rejected" false
    (Site.Pair.Set.mem F1.false_pair a.Fuzzer.real_pairs);
  Alcotest.(check int) "one harmful pair" 1
    (Site.Pair.Set.cardinal a.Fuzzer.error_pairs)

let test_fig1_postponement_happens () =
  (* For the false pair, thread1 gets postponed at statement 1 and must be
     evicted once everything else has terminated. *)
  let saw_postpone = ref false and saw_evict = ref false in
  List.iter
    (fun seed ->
      let _, report = Fuzzer.replay ~seed ~program:F1.program F1.false_pair in
      if report.Algo.postponements > 0 then saw_postpone := true;
      if report.Algo.evictions > 0 then saw_evict := true)
    (seeds 20);
  Alcotest.(check bool) "postponements observed" true !saw_postpone;
  Alcotest.(check bool) "deadlock-break evictions observed" true !saw_evict

(* ------------------------------------------------------------------ *)
(* Replay                                                              *)

let test_replay_reproduces_trace () =
  let r = Fuzzer.fuzz_pair ~seeds:(seeds 20) ~program:F1.program F1.real_pair in
  match r.Fuzzer.race_seed with
  | None -> Alcotest.fail "no race seed"
  | Some seed ->
      let o1, rep1 = Fuzzer.replay ~record_trace:true ~seed ~program:F1.program F1.real_pair in
      let o2, rep2 = Fuzzer.replay ~record_trace:true ~seed ~program:F1.program F1.real_pair in
      Alcotest.(check bool) "race recreated on replay" true
        (Algo.race_created rep1 && Algo.race_created rep2);
      (match (o1.Rf_runtime.Outcome.trace, o2.Rf_runtime.Outcome.trace) with
      | Some t1, Some t2 ->
          Alcotest.(check bool) "identical event traces" true (Rf_events.Trace.equal t1 t2)
      | _ -> Alcotest.fail "traces missing");
      let h1 = Algo.hits rep1 and h2 = Algo.hits rep2 in
      Alcotest.(check int) "same number of hits" (List.length h1) (List.length h2)

let test_replay_error_seed_reproduces_error () =
  let r = Fuzzer.fuzz_pair ~seeds:(seeds 50) ~program:F1.program F1.real_pair in
  match r.Fuzzer.error_seed with
  | None -> Alcotest.fail "no error seed in 50 trials"
  | Some seed ->
      let o, rep = Fuzzer.replay ~seed ~program:F1.program F1.real_pair in
      Alcotest.(check bool) "error reproduced" true (Rf_runtime.Outcome.has_exception o);
      Alcotest.(check bool) "race reproduced" true (Algo.race_created rep)

(* ------------------------------------------------------------------ *)
(* Hit metadata                                                        *)

let test_hit_metadata () =
  let found = ref false in
  List.iter
    (fun seed ->
      let _, rep = Fuzzer.replay ~seed ~program:F1.program F1.real_pair in
      List.iter
        (fun (h : Algo.hit) ->
          found := true;
          Alcotest.(check bool) "hit pair is the RaceSet" true
            (Site.Pair.equal h.Algo.hit_pair F1.real_pair);
          Alcotest.(check bool) "loc is z" true
            (Loc.equal h.Algo.hit_loc (Loc.global "z"));
          Alcotest.(check bool) "one postponed thread" true
            (List.length h.Algo.hit_postponed = 1);
          Alcotest.(check bool) "arriving differs from postponed" true
            (not (List.mem h.Algo.hit_arriving h.Algo.hit_postponed)))
        (Algo.hits rep))
    (seeds 10);
  Alcotest.(check bool) "at least one hit inspected" true !found

(* ------------------------------------------------------------------ *)
(* Figure 2: probability independent of k                              *)

let test_fig2_probability_one_for_all_k () =
  List.iter
    (fun k ->
      let r =
        Fuzzer.fuzz_pair ~seeds:(seeds 50)
          ~program:(fun () -> F2.program ~k ())
          F2.race_pair
      in
      Alcotest.(check int)
        (Printf.sprintf "k=%d: race always created" k)
        50 r.Fuzzer.race_trials)
    [ 1; 10; 100; 400 ]

let test_fig2_error_half_independent_of_k () =
  List.iter
    (fun k ->
      let r =
        Fuzzer.fuzz_pair ~seeds:(seeds 200)
          ~program:(fun () -> F2.program ~k ())
          F2.race_pair
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: ERROR rate ~0.5 (got %d/200)" k r.Fuzzer.error_trials)
        true
        (r.Fuzzer.error_trials > 60 && r.Fuzzer.error_trials < 140))
    [ 1; 100 ]

let test_fig2_simple_random_decays_with_k () =
  let errors_at k =
    let b =
      Fuzzer.baseline ~seeds:(seeds 200)
        ~make_strategy:Rf_runtime.Strategy.random
        (fun () -> F2.program ~k ())
    in
    b.Fuzzer.b_error_trials
  in
  let e_small = errors_at 1 and e_large = errors_at 200 in
  Alcotest.(check bool)
    (Printf.sprintf "small k has some errors (got %d)" e_small)
    true (e_small > 0);
  Alcotest.(check int) "large k has none" 0 e_large

let test_fig2_default_scheduler_never_errors () =
  let b =
    Fuzzer.baseline ~seeds:(seeds 50)
      ~make_strategy:(fun () -> Rf_runtime.Strategy.timesliced ~quantum:3 ())
      (fun () -> F2.program ~k:25 ())
  in
  Alcotest.(check int) "default scheduler: 0 errors" 0 b.Fuzzer.b_error_trials

(* ------------------------------------------------------------------ *)
(* Livelock relief and postpone timeout                                *)

let test_postpone_timeout_releases () =
  (* With an aggressive timeout, the thread postponed on the false pair is
     released by the relief mechanism rather than by deadlock eviction. *)
  let total_releases = ref 0 in
  List.iter
    (fun seed ->
      let _, rep =
        Fuzzer.replay ~postpone_timeout:(Some 1) ~seed ~program:F1.program
          F1.false_pair
      in
      total_releases := !total_releases + rep.Algo.timeout_releases)
    (seeds 20);
  Alcotest.(check bool) "timeout releases fired" true (!total_releases > 0)

(* A workload that leans on livelock relief: three writers park at the
   watched site on three *distinct* locations (so no two of them ever
   race and every arrival is postponed), while the main thread keeps the
   engine-step clock ticking at an unwatched site until the relief bound
   expires and the whole batch is released at once. *)
let timeout_heavy_program () =
  let open Rf_runtime.Api in
  let a = Cell.global "th-a" 0 in
  let b = Cell.global "th-b" 0 in
  let c = Cell.global "th-c" 0 in
  let spin = Cell.global "th-spin" 0 in
  let w_site = site "th-write" in
  let writer cell () =
    for _ = 1 to 5 do
      Cell.write ~site:w_site cell 1
    done
  in
  let h1 = fork ~name:"w1" (writer a) in
  let h2 = fork ~name:"w2" (writer b) in
  let h3 = fork ~name:"w3" (writer c) in
  let tick = site "th-tick" in
  (* several bursts with a sync point in between, so writers postponed
     between bursts age past the relief bound during the next one *)
  for _ = 1 to 10 do
    for _ = 1 to 100 do
      Cell.write ~site:tick spin 1
    done;
    sleep ()
  done;
  join h1;
  join h2;
  join h3

let timeout_heavy_pair () =
  Site.Pair.make (Rf_runtime.Api.site "th-write") (Rf_runtime.Api.site "th-read")

let test_timeout_heavy_replay_deterministic () =
  (* Stale postponed threads are collected from an unordered hash table;
     the release order must nevertheless be a pure function of the run
     state, so replaying a relief-heavy trial must reproduce the trace
     bit for bit. *)
  let pair = timeout_heavy_pair () in
  List.iter
    (fun seed ->
      let run () =
        Fuzzer.replay ~postpone_timeout:(Some 50) ~record_trace:true ~seed
          ~program:timeout_heavy_program pair
      in
      let o1, rep1 = run () in
      let o2, rep2 = run () in
      Alcotest.(check bool) "relief fired" true (rep1.Algo.timeout_releases > 0);
      Alcotest.(check int)
        "same relief count" rep1.Algo.timeout_releases rep2.Algo.timeout_releases;
      match (o1.Rf_runtime.Outcome.trace, o2.Rf_runtime.Outcome.trace) with
      | Some t1, Some t2 ->
          Alcotest.(check int)
            "same trace fingerprint"
            (Rf_events.Trace.fingerprint t1)
            (Rf_events.Trace.fingerprint t2);
          Alcotest.(check bool) "equal traces" true (Rf_events.Trace.equal t1 t2)
      | _ -> Alcotest.fail "trace not recorded")
    (seeds 10)

let test_timeout_unit_is_engine_steps () =
  (* The postpone timeout is measured on the engine-step clock
     ([view.step]), not in strategy consultations, so livelock relief
     fires under [`Every_op] and under the paper's [`Sync_and] fast-path
     configuration alike: fast-pathed memory accesses advance the clock
     even though they never consult the strategy. *)
  let open Rf_runtime in
  let pair = timeout_heavy_pair () in
  let watch =
    Site.Set.add (Site.Pair.fst pair) (Site.Set.singleton (Site.Pair.snd pair))
  in
  List.iter
    (fun policy ->
      let releases = ref 0 in
      List.iter
        (fun seed ->
          let report = Algo.fresh_report () in
          let strategy = Algo.strategy ~postpone_timeout:(Some 50) ~pair ~report () in
          let outcome =
            Engine.run
              ~config:{ Engine.default_config with seed; policy; max_steps = 100_000 }
              ~strategy timeout_heavy_program
          in
          Alcotest.(check bool) "terminates" true (not outcome.Outcome.timed_out);
          releases := !releases + report.Algo.timeout_releases)
        (seeds 5);
      Alcotest.(check bool) "relief fires under this policy" true (!releases > 0))
    [ Engine.Every_op; Engine.Sync_and watch ]

let test_no_timeout_still_terminates () =
  List.iter
    (fun seed ->
      let o, _ =
        Fuzzer.replay ~postpone_timeout:None ~seed ~program:F1.program F1.false_pair
      in
      Alcotest.(check bool) "terminates without relief" true
        (not o.Rf_runtime.Outcome.timed_out))
    (seeds 10)

(* ------------------------------------------------------------------ *)
(* RAPOS baseline                                                      *)

let test_rapos_runs_figure1 () =
  List.iter
    (fun seed ->
      let o =
        Rf_runtime.Engine.run
          ~config:{ Rf_runtime.Engine.default_config with seed }
          ~strategy:(Rapos.strategy ()) F1.program
      in
      Alcotest.(check bool) "terminates" true
        ((not o.Rf_runtime.Outcome.timed_out) && o.Rf_runtime.Outcome.deadlocked = []))
    (seeds 25)

let test_rapos_deterministic () =
  let run seed =
    Rf_runtime.Engine.run
      ~config:{ Rf_runtime.Engine.default_config with seed; record_trace = true }
      ~strategy:(Rapos.strategy ()) F1.program
  in
  let o1 = run 5 and o2 = run 5 in
  match (o1.Rf_runtime.Outcome.trace, o2.Rf_runtime.Outcome.trace) with
  | Some t1, Some t2 ->
      Alcotest.(check bool) "rapos replayable" true (Rf_events.Trace.equal t1 t2)
  | _ -> Alcotest.fail "traces missing"

let test_rapos_weaker_than_racefuzzer_on_fig2 () =
  (* RAPOS samples partial orders uniformly-ish; with large k it should
     reach ERROR far less often than RaceFuzzer's directed 50%. *)
  let b =
    Fuzzer.baseline ~seeds:(seeds 100) ~make_strategy:Rapos.strategy
      (fun () -> F2.program ~k:200 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "rapos errors rare (got %d/100)" b.Fuzzer.b_error_trials)
    true
    (b.Fuzzer.b_error_trials < 20)

let () =
  Alcotest.run "racefuzzer_core"
    [
      ( "figure1",
        [
          Alcotest.test_case "real race confirmed" `Quick test_fig1_real_race_confirmed;
          Alcotest.test_case "ERROR1 ~half" `Quick test_fig1_error1_about_half;
          Alcotest.test_case "false alarm rejected" `Quick test_fig1_false_alarm_rejected;
          Alcotest.test_case "ERROR2 never" `Quick test_fig1_error2_never;
          Alcotest.test_case "end-to-end analysis" `Quick test_fig1_end_to_end_analysis;
          Alcotest.test_case "postponement/eviction" `Quick
            test_fig1_postponement_happens;
        ] );
      ( "replay",
        [
          Alcotest.test_case "trace reproduced" `Quick test_replay_reproduces_trace;
          Alcotest.test_case "error reproduced" `Quick
            test_replay_error_seed_reproduces_error;
          Alcotest.test_case "hit metadata" `Quick test_hit_metadata;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "probability 1 for all k" `Quick
            test_fig2_probability_one_for_all_k;
          Alcotest.test_case "error ~0.5 independent of k" `Quick
            test_fig2_error_half_independent_of_k;
          Alcotest.test_case "simple random decays" `Quick
            test_fig2_simple_random_decays_with_k;
          Alcotest.test_case "default scheduler blind" `Quick
            test_fig2_default_scheduler_never_errors;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "timeout releases" `Quick test_postpone_timeout_releases;
          Alcotest.test_case "relief-heavy replay deterministic" `Quick
            test_timeout_heavy_replay_deterministic;
          Alcotest.test_case "timeout unit is engine steps" `Quick
            test_timeout_unit_is_engine_steps;
          Alcotest.test_case "terminates without relief" `Quick
            test_no_timeout_still_terminates;
        ] );
      ( "rapos",
        [
          Alcotest.test_case "runs figure1" `Quick test_rapos_runs_figure1;
          Alcotest.test_case "deterministic" `Quick test_rapos_deterministic;
          Alcotest.test_case "weaker on figure2" `Quick
            test_rapos_weaker_than_racefuzzer_on_fig2;
        ] );
    ]
