(** Hybrid dynamic race detection (O'Callahan & Choi [37]) — the paper's
    phase 1.

    Flags a pair of accesses [(ei, ej)] as a potential race when (paper
    §2.2):

    - different threads access the same dynamic memory location,
    - at least one access is a write,
    - the threads hold no common lock ([Li ∩ Lj = ∅]), and
    - the accesses are concurrent under the *weak* happens-before relation
      built from thread start/join and notify→wait messages only (lock
      ordering deliberately excluded).

    Hybrid detection is predictive — it reports races that could manifest
    under a different schedule — and imprecise: implicit synchronization
    (e.g. a flag handshake guarded by a lock, as with variable [x] in the
    paper's Figure 1) produces false positives.  Phase 2 (RaceFuzzer)
    separates the real ones. *)

type t = Access_detector.t

let create ?cap ?governor () =
  Access_detector.create ?cap ?governor ~name:"hybrid" ~lock_edges:false
    ~require_disjoint_locksets:true ()

let feed = Access_detector.feed
let races = Access_detector.races
let pairs = Access_detector.pairs
let race_count = Access_detector.race_count
let truncations = Access_detector.truncations
let mem_events = Access_detector.mem_events
