(** Recorded event traces: the input to offline detection and the witness
    used to verify seed-based replay (two runs with one seed must produce
    [equal] traces). *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val add : t -> Event.t -> unit

val get : t -> int -> Event.t
(** Raises [Invalid_argument] out of bounds. *)

val iter : (Event.t -> unit) -> t -> unit
val iteri : (int -> Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Event.t list

val equal : t -> t -> bool
(** Event-by-event equality: the replay check. *)

val fingerprint : t -> int
(** Order-sensitive structural digest (non-negative).  Streams every event
    field through {!Event.hash_fold}; stable across processes (sites hash
    by stable key, not registry id), so values can be checked into golden
    files and compared in CI. *)

val count_mem : t -> int
val count_sync : t -> int
val pp : Format.formatter -> t -> unit
