(* A tour of RFL, the little concurrent language: write a program inline,
   run it under different schedulers, detect races, fuzz, and replay.

   Run with:  dune exec examples/dsl_tour.exe *)

open Rf_util

let src =
  {|// A tiny job pipeline with a deliberate shutdown race.
shared int produced;
shared int consumed;
shared bool open_;
shared int[4] slots;
lock L;

def clamp(int v, int hi) -> int {
  if (v > hi) { return hi; }
  return v;
}

thread producer {
  open_ = true;
  for (let i = 0; i < 4; i = i + 1) {
    sync (L) {
      slots[i] = i * i;
      produced = produced + 1;
      notifyall(L);
    }
  }
  open_ = false;               // racy shutdown write
}

thread consumer {
  let got = 0;
  sync (L) {
    while (produced < 4) { wait(L); }
  }
  for (let i = 0; i < 4; i = i + 1) {
    got = got + slots[i];
  }
  consumed = clamp(got, 100);
  if (open_) {                 // racy shutdown read
    print "pipeline closed while consumer active";
  }
}
|}

let () =
  Fmt.pr "== RFL tour ==@.@.";
  let prog = Rf_lang.Lang.load_string ~file:"tour.rfl" src in
  let printed = ref [] in
  let main = Rf_lang.Lang.program ~print:(fun s -> printed := s :: !printed) prog in
  (* 1. run under three schedulers *)
  List.iter
    (fun (name, strategy) ->
      let o =
        Rf_runtime.Engine.run
          ~config:{ Rf_runtime.Engine.default_config with seed = 1 }
          ~strategy main
      in
      Fmt.pr "run [%s]: %d steps, %d threads, %s@." name o.Rf_runtime.Outcome.steps
        o.Rf_runtime.Outcome.threads_spawned
        (if Rf_runtime.Outcome.ok o then "clean exit" else "problems!"))
    [
      ("random", Rf_runtime.Strategy.random ());
      ("round-robin", Rf_runtime.Strategy.round_robin ());
      ("default", Rf_runtime.Strategy.timesliced ());
    ];
  (* 2. phase 1 with two detectors *)
  let detect mk name =
    let d = mk () in
    List.iter
      (fun seed ->
        ignore
          (Rf_runtime.Engine.run
             ~config:{ Rf_runtime.Engine.default_config with seed }
             ~listeners:[ Rf_detect.Detector.feed d ]
             ~strategy:(Rf_runtime.Strategy.random ()) main))
      (List.init 8 Fun.id);
    Fmt.pr "@.%s reports %d potential pair(s):@." name (Rf_detect.Detector.race_count d);
    List.iter (fun r -> Fmt.pr "  %a@." Rf_detect.Race.pp r) (Rf_detect.Detector.races d)
  in
  detect (fun () -> Rf_detect.Detector.hybrid ()) "hybrid";
  detect (fun () -> Rf_detect.Detector.eraser ()) "eraser";
  (* 3. fuzz everything hybrid found *)
  let a =
    Racefuzzer.Fuzzer.analyze
      ~phase1_seeds:(List.init 8 Fun.id)
      ~seeds_per_pair:(List.init 50 Fun.id)
      main
  in
  Fmt.pr "@.RaceFuzzer verdicts:@.";
  List.iter
    (fun (r : Racefuzzer.Fuzzer.pair_result) ->
      Fmt.pr "  %a -> %s@." Site.Pair.pp r.Racefuzzer.Fuzzer.pr_pair
        (if Racefuzzer.Fuzzer.is_real r then "REAL" else "false alarm"))
    a.Racefuzzer.Fuzzer.results
